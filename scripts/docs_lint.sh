#!/bin/sh
# docs_lint.sh — fail CI when the prose drifts from the code.
#
# 1. Every `./cmd/...` or `./examples/...` package referenced by an
#    embedded command in README.md / EXPERIMENTS.md / DESIGN.md must
#    exist and build.
# 2. Every internal/* package must carry a non-empty package doc
#    comment (the reliability story is documented at the source).
# 3. Every BENCH_*.json artifact referenced in README.md / DESIGN.md /
#    EXPERIMENTS.md must exist in the repository (a claim citing a
#    bench artifact that was never committed is drift).
# 4. Every numeric `DESIGN §N` / `DESIGN.md §N` cross-reference in the
#    docs and in Go doc comments must resolve to a real `## N.` section
#    header in DESIGN.md (non-numeric references like `§Host BLAS` are
#    out of scope).
#
# Run from the repository root: ./scripts/docs_lint.sh
set -eu

cd "$(dirname "$0")/.."
fail=0

docs="README.md EXPERIMENTS.md DESIGN.md"

# --- embedded commands must reference real, buildable packages --------
pkgs=$(grep -ho '\./\(cmd\|examples\)/[a-z0-9_]*' $docs | sort -u)
if [ -z "$pkgs" ]; then
    echo "docs_lint: no ./cmd or ./examples references found — lint is broken" >&2
    exit 1
fi
for p in $pkgs; do
    if [ ! -d "$p" ]; then
        echo "docs_lint: $docs reference $p but it does not exist" >&2
        fail=1
        continue
    fi
    if ! go build "$p" 2>/dev/null; then
        echo "docs_lint: documented package $p does not build" >&2
        go build "$p" >&2 || true
        fail=1
    fi
done
echo "docs_lint: $(echo "$pkgs" | wc -l) documented packages build"

# --- experiment selectors named in the docs must exist in the harness --
exps=$(grep -ho '\-exp [a-zA-Z0-9_]*' $docs | awk '{print $2}' | sort -u)
for e in $exps; do
    if ! grep -rq "\"$e\"" cmd/experiments internal/bench; then
        echo "docs_lint: docs mention -exp $e but the harness does not" >&2
        fail=1
    fi
done

# --- every internal package needs a package doc -----------------------
for d in internal/*/; do
    pkg=$(basename "$d")
    if ! grep -rql "^// Package $pkg" "$d"; then
        echo "docs_lint: internal/$pkg has no package doc comment" >&2
        fail=1
    fi
done
echo "docs_lint: all internal packages carry package docs"

# --- referenced BENCH artifacts must exist ----------------------------
arts=$(grep -ho 'BENCH_[a-zA-Z0-9_]*\.json' $docs | sort -u)
for a in $arts; do
    if [ ! -f "$a" ]; then
        echo "docs_lint: docs reference $a but it is not committed" >&2
        fail=1
    fi
done
echo "docs_lint: $(echo "$arts" | wc -l) referenced BENCH artifacts exist"

# --- acceptance-gated artifacts must be committed ---------------------
# These artifacts carry acceptance bars enforced by gating tests; a tree
# without them has lost its measured evidence.
for a in BENCH_throughput.json; do
    if [ ! -f "$a" ]; then
        echo "docs_lint: required artifact $a is not committed" >&2
        fail=1
    fi
done
echo "docs_lint: required BENCH artifacts committed"

# --- numeric DESIGN § cross-references must resolve -------------------
secs=$( (grep -rho 'DESIGN\(\.md\)\{0,1\} §[0-9][0-9]*' $docs;
         grep -rho --include='*.go' 'DESIGN\(\.md\)\{0,1\} §[0-9][0-9]*' cmd internal examples) \
        | grep -o '§[0-9][0-9]*' | tr -d '§' | sort -nu)
for s in $secs; do
    if ! grep -q "^## $s\." DESIGN.md; then
        echo "docs_lint: cross-reference to DESIGN §$s but DESIGN.md has no '## $s.' section" >&2
        fail=1
    fi
done
echo "docs_lint: $(echo "$secs" | wc -w) DESIGN § cross-references resolve"

exit $fail
