#!/usr/bin/env bash
# serve_smoke.sh — end-to-end observability smoke against a real fthessd.
#
# Builds the daemon, starts it, submits one FT job over HTTP, waits for it
# to finish, and then asserts the observability surface this repo
# promises for every served job:
#   * /v1/jobs/{id}        reports state=done plus a trace_id and the
#                          per-job FT reliability summary
#   * /metrics             exposes serve_job_duration_seconds with its
#                          companion p50/p95/p99 _quantile gauges
#   * /v1/jobs/{id}/trace  serves a non-empty Chrome trace
#   * /debug/events        holds the job's flight-recorder events
#   * /v1/version          reports the build
#   * batched jobs         a 3-matrix batch runs on fractional lanes and
#                          an identical resubmission is served entirely
#                          from the result cache
#
# Needs only bash + curl (no jq): JSON fields are pulled with grep.
set -euo pipefail

cd "$(dirname "$0")/.."

PORT="${PORT:-18080}"
BASE="http://127.0.0.1:${PORT}"
BIN="$(mktemp -d)/fthessd"
LOG="$(mktemp)"

go build -o "$BIN" ./cmd/fthessd

"$BIN" -addr "127.0.0.1:${PORT}" -capacity 2 -lanes 2 -cache 16 &
DPID=$!
trap 'kill "$DPID" 2>/dev/null || true; wait "$DPID" 2>/dev/null || true' EXIT

for i in $(seq 1 50); do
  curl -fsS "$BASE/healthz" >/dev/null 2>&1 && break
  [ "$i" = 50 ] && { echo "fthessd never became healthy" >&2; exit 1; }
  sleep 0.2
done

echo "== submit"
SUB=$(curl -fsS -X POST "$BASE/v1/jobs" \
  -d '{"n":64,"nb":8,"seed":3,"algorithm":"ft","faults":[{"area":2,"iter":1,"seed":9}]}')
echo "$SUB"
ID=$(echo "$SUB" | grep -o '"id": *"[^"]*"' | head -1 | sed 's/.*"id": *"\([^"]*\)".*/\1/')
[ -n "$ID" ] || { echo "no job id in submit response" >&2; exit 1; }

echo "== poll $ID"
for i in $(seq 1 150); do
  ST=$(curl -fsS "$BASE/v1/jobs/$ID")
  case "$ST" in
    *'"state": "done"'*) break ;;
    *'"state": "failed"'*|*'"state": "cancelled"'*)
      echo "job ended badly: $ST" >&2; exit 1 ;;
  esac
  [ "$i" = 150 ] && { echo "timeout waiting for job: $ST" >&2; exit 1; }
  sleep 0.2
done
echo "$ST"
echo "$ST" | grep -q '"trace_id"' || { echo "status has no trace_id" >&2; exit 1; }
echo "$ST" | grep -q '"reliability"' || { echo "status has no reliability summary" >&2; exit 1; }
echo "$ST" | grep -q '"detections": *[1-9]' || { echo "injected fault not detected" >&2; exit 1; }

echo "== /metrics quantiles"
METRICS=$(curl -fsS "$BASE/metrics")
for want in \
  'serve_job_duration_seconds_bucket' \
  'serve_job_duration_seconds_quantile{outcome="done",quantile="0.5"}' \
  'serve_job_duration_seconds_quantile{outcome="done",quantile="0.95"}' \
  'serve_job_duration_seconds_quantile{outcome="done",quantile="0.99"}' \
  'serve_queue_wait_seconds' \
  'serve_queue_depth'
do
  # grep without -q: -q exits at the first match, and if the metrics page
  # outgrows the pipe buffer the writer dies with SIGPIPE under pipefail.
  echo "$METRICS" | grep -F "$want" >/dev/null \
    || { echo "/metrics missing: $want" >&2; exit 1; }
done
echo "$METRICS" | grep -F 'serve_job_duration_seconds_quantile'

echo "== /v1/jobs/$ID/trace"
TRACE=$(curl -fsS "$BASE/v1/jobs/$ID/trace")
[ -n "$TRACE" ] || { echo "empty trace" >&2; exit 1; }
echo "$TRACE" | grep -q '"ph":"X"' || { echo "trace has no slices" >&2; exit 1; }
echo "$TRACE" | grep -q 'job lifecycle' || { echo "trace missing the lifecycle process" >&2; exit 1; }
echo "$TRACE" | grep -q 'simulated device timeline' || { echo "trace missing the device process" >&2; exit 1; }
echo "trace: $(echo "$TRACE" | grep -o '"ph":"X"' | wc -l) slices"

echo "== /debug/events"
EVENTS=$(curl -fsS "$BASE/debug/events")
echo "$EVENTS" | grep -q '"kind": "job:done"' || { echo "flight recorder missing job:done" >&2; exit 1; }
echo "$EVENTS" | grep -q '"kind": "ft:' || { echo "flight recorder missing FT events" >&2; exit 1; }

echo "== /v1/version"
VER=$(curl -fsS "$BASE/v1/version")
echo "$VER"
echo "$VER" | grep -q '"go_version"' || { echo "version has no go_version" >&2; exit 1; }

echo "== batched job (3 matrices on fractional lanes)"
BATCH_BODY='{"priority":"batch","nb":8,"batch":[{"n":32,"seed":1},{"n":48,"seed":2},{"n":32,"seed":3}]}'
poll_done() {
  local id=$1 st=""
  for i in $(seq 1 150); do
    st=$(curl -fsS "$BASE/v1/jobs/$id")
    case "$st" in
      *'"state": "done"'*) echo "$st"; return 0 ;;
      *'"state": "failed"'*|*'"state": "cancelled"'*)
        echo "batched job ended badly: $st" >&2; return 1 ;;
    esac
    sleep 0.2
  done
  echo "timeout waiting for batched job: $st" >&2
  return 1
}
BSUB=$(curl -fsS -X POST "$BASE/v1/jobs" -d "$BATCH_BODY")
BID=$(echo "$BSUB" | grep -o '"id": *"[^"]*"' | head -1 | sed 's/.*"id": *"\([^"]*\)".*/\1/')
[ -n "$BID" ] || { echo "no job id in batched submit response" >&2; exit 1; }
poll_done "$BID" >/dev/null
BRES=$(curl -fsS "$BASE/v1/jobs/$BID/result")
ITEMS=$(echo "$BRES" | grep -c '"index":') || true
[ "$ITEMS" = 3 ] || { echo "batched result has $ITEMS items, want 3" >&2; exit 1; }
echo "$BRES" | grep -q '"lane": *"d0\.l' || { echo "batched result has no lane assignments" >&2; exit 1; }
echo "$BRES" | grep -q '"result_digest"' || { echo "batched result has no digests" >&2; exit 1; }
echo "batched: $ITEMS items on fractional lanes"

echo "== identical resubmission is served from the cache"
B2SUB=$(curl -fsS -X POST "$BASE/v1/jobs" -d "$BATCH_BODY")
B2ID=$(echo "$B2SUB" | grep -o '"id": *"[^"]*"' | head -1 | sed 's/.*"id": *"\([^"]*\)".*/\1/')
poll_done "$B2ID" >/dev/null
B2RES=$(curl -fsS "$BASE/v1/jobs/$B2ID/result")
CACHED=$(echo "$B2RES" | grep -c '"cached": *true') || true
[ "$CACHED" = 3 ] || { echo "resubmitted batch: $CACHED/3 items cached" >&2; exit 1; }
METRICS2=$(curl -fsS "$BASE/metrics")
echo "$METRICS2" | grep '^serve_cache_hits_total [1-9]' >/dev/null \
  || { echo "/metrics missing cache hits" >&2; exit 1; }
echo "cache: all 3 items served from the result cache"

echo "serve smoke: OK"
