package batch

import (
	"container/list"
	"context"
	"sync"
)

// Key identifies one reduction outcome. Digest is the canonical SHA-256
// input fingerprint (core.MatrixDigest); the other fields are exactly the
// options that change the result's bits. Device count, schedule
// (lookahead on/off), and BLAS substrate are deliberately absent: the
// PR 5/7/9 determinism contracts make the bits invariant to all three,
// so requests differing only there share an entry. Pool distinguishes
// the multi-device schedule family from the legacy single-device one —
// those two produce different (both correct) bits.
type Key struct {
	Digest string
	NB     int
	Alg    string
	Pool   bool
}

// Status of a Cache.Acquire call.
type Status int

const (
	// Hit: the value was cached; use it directly.
	Hit Status = iota
	// Lead: the caller owns the flight — it must compute the value and
	// then Commit or Abort, or every coalesced follower hangs.
	Lead
	// Follow: an identical computation is in flight; Wait on it.
	Follow
)

// Flight is one in-progress computation under a key. The leader resolves
// it through Cache.Commit or Cache.Abort; followers block in Wait.
type Flight struct {
	key  Key
	done chan struct{}
	val  any
	ok   bool
}

// Wait blocks until the leader resolves the flight or ctx is done. ok is
// false when the leader aborted (failed, was cancelled, or chose not to
// cache): the follower must then compute the value itself — it does not
// become a new leader, so one misbehaving submission can never wedge a
// convoy of followers behind a chain of leaders.
func (f *Flight) Wait(ctx context.Context) (val any, ok bool, err error) {
	select {
	case <-f.done:
		return f.val, f.ok, nil
	case <-ctx.Done():
		return nil, false, ctx.Err()
	}
}

// Cache is the digest-keyed result cache: a bounded LRU of immutable
// entries plus single-flight coalescing. Entries are values, never
// evicted or mutated by job lifecycle events — forgetting a served job
// (DELETE /v1/jobs/{id}) prunes that job's metrics and table row but can
// never corrupt an entry an in-flight identical job is about to read;
// only capacity pressure evicts, and eviction just unlinks the entry
// (readers that already fetched the value keep a valid copy).
type Cache struct {
	mu      sync.Mutex
	cap     int
	lru     *list.List // front = most recent; values are *entry
	entries map[Key]*list.Element
	flights map[Key]*Flight

	hits, misses, coalesced, aborted uint64
}

type entry struct {
	key Key
	val any
}

// NewCache builds a cache bounded to capacity entries (minimum 1).
func NewCache(capacity int) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache{
		cap:     capacity,
		lru:     list.New(),
		entries: make(map[Key]*list.Element),
		flights: make(map[Key]*Flight),
	}
}

// Acquire resolves a key: a cached value (Hit), leadership of a new
// flight (Lead — the caller must Commit or Abort), or an existing flight
// to Wait on (Follow).
func (c *Cache) Acquire(k Key) (val any, fl *Flight, st Status) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[k]; ok {
		c.lru.MoveToFront(el)
		c.hits++
		return el.Value.(*entry).val, nil, Hit
	}
	if fl, ok := c.flights[k]; ok {
		c.coalesced++
		return nil, fl, Follow
	}
	fl = &Flight{key: k, done: make(chan struct{})}
	c.flights[k] = fl
	c.misses++
	return nil, fl, Lead
}

// Commit stores the leader's value, wakes the followers with it, and
// retires the flight. The value must be immutable from here on — every
// future hit and every follower shares it.
func (c *Cache) Commit(fl *Flight, val any) {
	c.mu.Lock()
	if c.flights[fl.key] == fl {
		delete(c.flights, fl.key)
	}
	if el, ok := c.entries[fl.key]; ok {
		// A racing leader (possible after an abort) already stored the
		// key; keep the existing entry — both values are bit-identical by
		// the determinism contract.
		c.lru.MoveToFront(el)
	} else {
		c.entries[fl.key] = c.lru.PushFront(&entry{key: fl.key, val: val})
		for c.lru.Len() > c.cap {
			old := c.lru.Back()
			c.lru.Remove(old)
			delete(c.entries, old.Value.(*entry).key)
		}
	}
	c.mu.Unlock()
	fl.val, fl.ok = val, true
	close(fl.done)
}

// Abort retires the flight without storing anything — the leader failed,
// was cancelled, or produced an uncacheable run (faulted, killed).
// Followers wake with ok=false and recompute locally.
func (c *Cache) Abort(fl *Flight) {
	c.mu.Lock()
	if c.flights[fl.key] == fl {
		delete(c.flights, fl.key)
	}
	c.aborted++
	c.mu.Unlock()
	fl.ok = false
	close(fl.done)
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// Stats returns the lifetime counters: hits, misses (flights led),
// coalesced followers, and aborted flights.
func (c *Cache) Stats() (hits, misses, coalesced, aborted uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.coalesced, c.aborted
}
