// Package batch is the small-N throughput engine layered between the
// serving stack and the device pool (DESIGN.md §15). It turns the
// whole-device, one-reduction-per-job serving model into one built for
// fleets of small matrices:
//
//   - batched jobs: a request carries many independent matrices; items
//     with the same (N, nb) form a group executed back-to-back on one
//     leased lane, so lane acquisition and panel-size-specific pool
//     warmup amortize across the group while distinct groups run
//     concurrently;
//   - fractional device leases: each device exposes M lanes over a
//     devpool.LaneClock that models contention on the shared compute and
//     DMA engines, so K devices serve K×M concurrent small jobs with
//     honest modeled completion times (M=1 degenerates to whole-device
//     leasing — the benchmark's comparison arm);
//   - a digest-keyed result cache: bounded LRU over the canonical
//     SHA-256 input digest plus the options that change bits, with
//     single-flight coalescing of concurrent identical submissions;
//   - a weighted-fair queue with starvation aging replacing the FIFO in
//     front of the workers.
//
// The package is policy only — it never runs a reduction itself. The
// serving layer supplies a Runner that builds the per-item device and
// calls core.Reduce; batch decides where and when, and charges the
// modeled cost.
package batch

import (
	"context"
	"fmt"

	"repro/internal/devpool"
)

// Lane is one fractional lease: lane slot Index on device Device.
type Lane struct {
	Device int
	Index  int
}

// Name is the lane's identity in metric labels and trace rows ("d0.l1").
func (l Lane) Name() string { return fmt.Sprintf("d%d.l%d", l.Device, l.Index) }

// Farm hands out fractional leases over K devices × M lanes and owns the
// per-device virtual clocks. Lease blocks until a lane is free, so the
// farm is also the engine's concurrency bound.
type Farm struct {
	devices int
	lanes   int
	free    chan Lane
	clocks  []*devpool.LaneClock
}

// NewFarm builds a farm of devices × lanesPerDevice fractional leases.
// The free list is seeded round-robin by device (d0.l0, d1.l0, …, d0.l1,
// …) so a burst smaller than the capacity spreads across physical
// devices before doubling up on any one of them.
func NewFarm(devices, lanesPerDevice int) *Farm {
	if devices < 1 {
		devices = 1
	}
	if lanesPerDevice < 1 {
		lanesPerDevice = 1
	}
	f := &Farm{
		devices: devices,
		lanes:   lanesPerDevice,
		free:    make(chan Lane, devices*lanesPerDevice),
		clocks:  make([]*devpool.LaneClock, devices),
	}
	for d := range f.clocks {
		f.clocks[d] = devpool.NewLaneClock(lanesPerDevice)
	}
	for l := 0; l < lanesPerDevice; l++ {
		for d := 0; d < devices; d++ {
			f.free <- Lane{Device: d, Index: l}
		}
	}
	return f
}

// Devices returns the physical device count.
func (f *Farm) Devices() int { return f.devices }

// LanesPerDevice returns M.
func (f *Farm) LanesPerDevice() int { return f.lanes }

// Capacity returns the total concurrent-lease capacity (K × M).
func (f *Farm) Capacity() int { return f.devices * f.lanes }

// Lease blocks until a lane is free (or ctx is done) and returns it.
func (f *Farm) Lease(ctx context.Context) (Lane, error) {
	select {
	case l := <-f.free:
		return l, nil
	case <-ctx.Done():
		return Lane{}, ctx.Err()
	}
}

// Release returns a lane to the free list.
func (f *Farm) Release(l Lane) { f.free <- l }

// Charge places one run onto a leased lane's device clock and returns
// its modeled [start, end) window.
func (f *Farm) Charge(l Lane, d devpool.EngineDemand) (start, end float64) {
	return f.clocks[l.Device].Run(l.Index, d)
}

// Makespan is the modeled completion time of everything charged so far,
// across all devices.
func (f *Farm) Makespan() float64 {
	var m float64
	for _, c := range f.clocks {
		if t := c.Makespan(); t > m {
			m = t
		}
	}
	return m
}
