package batch

import (
	"context"
	"sync"

	"repro/internal/devpool"
	"repro/internal/gpu"
	"repro/internal/obs"
)

// Item is one reduction inside a batched job: a generated input of order
// N (seeded) reduced at block size NB. Index is its position in the
// request, preserved through grouping so results line up with inputs.
type Item struct {
	Index int
	N, NB int
	Seed  uint64
}

// ItemRun is one item's outcome: the runner's value, the lane that
// hosted it, and its modeled [Start, End) window on that lane's device
// clock. Dev is the device the runner returned — nil for cache hits,
// which consume no device time (Start/End stay zero then); callers read
// its trace spans for per-lane trace rows.
type ItemRun struct {
	Item       Item
	Lane       string
	Start, End float64
	Value      any
	Dev        *gpu.Device
	Err        error
}

// Runner executes one item on a leased lane and returns its value plus
// the simulated device it ran on. A runner that satisfied the item
// without touching a device (result cache) returns dev == nil and
// nothing is charged to the lane clock. The runner owns device
// construction (gpu.NewNamed with lane.Name()) so the serving layer
// keeps full control of tracing, metrics labels, and reduction options.
type Runner func(ctx context.Context, it Item, lane Lane) (val any, dev *gpu.Device, err error)

// Engine schedules batched jobs onto the farm: items are grouped by
// (N, NB), each group runs back-to-back on one leased lane — lane
// acquisition and the panel-width-specific warmup amortize across the
// group — and distinct groups run concurrently up to the farm capacity.
// One item's failure cancels the job's remaining work (first error wins,
// in item order).
type Engine struct {
	farm  *Farm
	cache *Cache

	gMakespan *obs.Gauge
	cGroups   *obs.Counter
	cItems    *obs.Counter
}

// NewEngine builds an engine over a farm. cache may be nil (caching
// disabled); reg may be nil (no metrics).
func NewEngine(farm *Farm, cache *Cache, reg *obs.Registry) *Engine {
	e := &Engine{farm: farm, cache: cache}
	if reg != nil {
		e.gMakespan = reg.Gauge("batch_farm_makespan_seconds")
		e.cGroups = reg.Counter("batch_groups_total")
		e.cItems = reg.Counter("batch_items_total")
	}
	return e
}

// Farm returns the engine's lane farm.
func (e *Engine) Farm() *Farm { return e.farm }

// Cache returns the engine's result cache (nil when disabled).
func (e *Engine) Cache() *Cache { return e.cache }

// Run executes items and returns their outcomes in item order. The
// returned error is the first item error in item order (the remaining
// groups were cancelled through ctx when it struck); the slice is
// complete either way, with unrun items carrying the cancellation error.
func (e *Engine) Run(ctx context.Context, items []Item, run Runner) ([]ItemRun, error) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// Group by (N, NB), preserving request order within each group.
	type shape struct{ n, nb int }
	var order []shape
	groups := make(map[shape][]Item)
	for _, it := range items {
		s := shape{it.N, it.NB}
		if _, ok := groups[s]; !ok {
			order = append(order, s)
		}
		groups[s] = append(groups[s], it)
	}

	out := make([]ItemRun, len(items))
	pos := make(map[int]int, len(items)) // item index → out slot
	for i, it := range items {
		pos[it.Index] = i
	}

	var wg sync.WaitGroup
	for _, s := range order {
		group := groups[s]
		wg.Add(1)
		go func() {
			defer wg.Done()
			if e.cGroups != nil {
				e.cGroups.Inc()
			}
			lane, err := e.farm.Lease(ctx)
			if err != nil {
				for _, it := range group {
					out[pos[it.Index]] = ItemRun{Item: it, Err: err}
				}
				return
			}
			defer e.farm.Release(lane)
			for _, it := range group {
				r := ItemRun{Item: it, Lane: lane.Name()}
				if err := ctx.Err(); err != nil {
					r.Err = err
					out[pos[it.Index]] = r
					continue
				}
				val, dev, err := run(ctx, it, lane)
				r.Value, r.Dev, r.Err = val, dev, err
				if dev != nil {
					r.Start, r.End = e.farm.Charge(lane, demand(dev))
				}
				if e.cItems != nil {
					e.cItems.Inc()
				}
				out[pos[it.Index]] = r
				if err != nil {
					// First failure aborts the job: siblings observe the
					// cancelled context at their next item boundary.
					cancel()
				}
			}
		}()
	}
	wg.Wait()
	if e.gMakespan != nil {
		e.gMakespan.Set(e.farm.Makespan())
	}
	for _, r := range out {
		if r.Err != nil {
			return out, r.Err
		}
	}
	return out, nil
}

// demand reads one finished run's engine demand off its (fresh,
// single-use) device: the standalone makespan, kernel busy-seconds on
// the compute fabric (compute + lookahead streams), and the two DMA
// directions. These are the three capacities lanes contend for on the
// simulated K40c (one SM fabric, two copy engines).
func demand(dev *gpu.Device) devpool.EngineDemand {
	tb := dev.TimeBreakdown()
	return devpool.EngineDemand{
		Standalone: dev.Elapsed(),
		Compute:    dev.Compute.Busy() + dev.Lookahead.Busy(),
		H2D:        tb["h2d"],
		D2H:        tb["d2h"],
	}
}
