package batch

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/gpu"
	"repro/internal/obs"
	"repro/internal/sim"
)

// --- queue -----------------------------------------------------------

func drain[T any](q *Queue[T], n int) []T {
	out := make([]T, 0, n)
	for i := 0; i < n; i++ {
		v, ok := q.Pop()
		if !ok {
			break
		}
		out = append(out, v)
	}
	return out
}

// Weighted fairness: with 4:1 weights, interactive arrivals submitted
// after a batch backlog still drain first — their virtual finish tags
// advance 4× slower.
func TestQueueWFQInteractiveOvertakesBatchBacklog(t *testing.T) {
	q := NewQueue[string](32, map[string]float64{ClassInteractive: 4, ClassBatch: 1}, 0)
	for i := 0; i < 4; i++ {
		if err := q.Push(ClassBatch, 1, "b"); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		if err := q.Push(ClassInteractive, 1, "i"); err != nil {
			t.Fatal(err)
		}
	}
	got := drain(q, 8)
	// Tags: batch 1,2,3,4; interactive 0.25,0.5,0.75,1.0. The interactive
	// run drains first, with the tag-1.0 tie broken deterministically
	// (class-name order: "batch" < "interactive").
	want := []string{"i", "i", "i", "b", "i", "b", "b", "b"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pop order %v, want %v", got, want)
		}
	}
}

// Work-based fairness: a batched job counts its items, so one 8-item
// batch job weighs like 8 singles and interactive singles interleave
// ahead of a second batch job.
func TestQueueCostIsWork(t *testing.T) {
	q := NewQueue[string](32, map[string]float64{ClassInteractive: 4, ClassBatch: 1}, 0)
	_ = q.Push(ClassBatch, 8, "b8")
	_ = q.Push(ClassBatch, 8, "b8'")
	_ = q.Push(ClassInteractive, 1, "i")
	got := drain(q, 3)
	want := []string{"i", "b8", "b8'"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pop order %v, want %v", got, want)
		}
	}
}

// Aging: a starving batch head is served out of tag order once per
// interval, and only once — the next pops revert to WFQ order.
func TestQueueAgingServesStarvedHeadOncePerInterval(t *testing.T) {
	q := NewQueue[string](64, map[string]float64{ClassInteractive: 4, ClassBatch: 1}, time.Second)
	clock := time.Unix(0, 0)
	q.now = func() time.Time { return clock }

	_ = q.Push(ClassBatch, 1, "b-old")
	_ = q.Push(ClassBatch, 1, "b-old2")
	// A steady interactive flood with fresh arrivals whose tags always
	// undercut the batch heads.
	for i := 0; i < 8; i++ {
		_ = q.Push(ClassInteractive, 1, "i")
	}

	// Within the interval: pure WFQ, interactive first.
	if v, _ := q.Pop(); v != "i" {
		t.Fatalf("pre-aging pop = %q, want interactive", v)
	}

	// Cross the aging threshold: exactly one aged override fires, then
	// WFQ resumes until the next interval elapses.
	clock = clock.Add(1100 * time.Millisecond)
	if v, _ := q.Pop(); v != "b-old" {
		t.Fatalf("aged pop = %q, want the starved batch head", v)
	}
	if v, _ := q.Pop(); v != "i" {
		t.Fatalf("post-aging pop reverted to %q, want interactive (override is rate-limited)", v)
	}
	if got := q.Aged(); got != 1 {
		t.Fatalf("aged counter = %d, want 1", got)
	}

	clock = clock.Add(1100 * time.Millisecond)
	if v, _ := q.Pop(); v != "b-old2" {
		t.Fatalf("second interval pop = %q, want the next starved batch head", v)
	}
	if got := q.Aged(); got != 2 {
		t.Fatalf("aged counter = %d, want 2", got)
	}
}

func TestQueueBoundsAndClose(t *testing.T) {
	q := NewQueue[int](2, nil, 0)
	if err := q.Push("x", 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := q.Push("y", 1, 2); err != nil {
		t.Fatal(err)
	}
	if err := q.Push("x", 1, 3); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("over-depth push: %v, want ErrQueueFull", err)
	}
	q.Close()
	if err := q.Push("x", 1, 4); !errors.Is(err, ErrQueueClosed) {
		t.Fatalf("post-close push: %v, want ErrQueueClosed", err)
	}
	// Close drains what is queued before reporting closed.
	if _, ok := q.Pop(); !ok {
		t.Fatal("queued element lost at close")
	}
	if _, ok := q.Pop(); !ok {
		t.Fatal("queued element lost at close")
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("Pop reported ok on a closed empty queue")
	}
}

// A blocked Pop wakes on Close (worker-exit path).
func TestQueuePopWakesOnClose(t *testing.T) {
	q := NewQueue[int](2, nil, 0)
	done := make(chan bool)
	go func() {
		_, ok := q.Pop()
		done <- ok
	}()
	time.Sleep(10 * time.Millisecond)
	q.Close()
	select {
	case ok := <-done:
		if ok {
			t.Fatal("Pop returned ok=true on empty closed queue")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Pop did not wake on Close")
	}
}

// --- cache -----------------------------------------------------------

func TestCacheHitMissLRU(t *testing.T) {
	c := NewCache(2)
	k1 := Key{Digest: "a", NB: 32, Alg: "ft"}
	k2 := Key{Digest: "b", NB: 32, Alg: "ft"}
	k3 := Key{Digest: "c", NB: 32, Alg: "ft"}

	_, fl, st := c.Acquire(k1)
	if st != Lead {
		t.Fatalf("first acquire: %v, want Lead", st)
	}
	c.Commit(fl, "v1")
	if v, _, st := c.Acquire(k1); st != Hit || v != "v1" {
		t.Fatalf("re-acquire: (%v,%v), want hit v1", v, st)
	}

	_, fl2, _ := c.Acquire(k2)
	c.Commit(fl2, "v2")
	// k1 was touched after k2 was... no: order of recency is k2 (commit),
	// but k1's hit above predates it. Touch k1 so k2 is the LRU victim.
	if v, _, st := c.Acquire(k1); st != Hit || v != "v1" {
		t.Fatalf("touch k1: (%v,%v)", v, st)
	}
	_, fl3, _ := c.Acquire(k3)
	c.Commit(fl3, "v3") // evicts k2
	if c.Len() != 2 {
		t.Fatalf("len = %d, want 2", c.Len())
	}
	if _, _, st := c.Acquire(k1); st != Hit {
		t.Fatalf("k1 evicted, want kept (recently used)")
	}
	if _, fl, st := c.Acquire(k2); st != Lead {
		t.Fatalf("k2 acquire after eviction: %v, want Lead", st)
	} else {
		c.Abort(fl)
	}
	hits, misses, _, aborted := c.Stats()
	if hits < 3 || misses < 4 || aborted != 1 {
		t.Fatalf("stats hits=%d misses=%d aborted=%d", hits, misses, aborted)
	}
}

// Single-flight: concurrent identical acquisitions coalesce behind one
// leader; followers get the committed value without recomputing.
func TestCacheSingleFlightCoalesces(t *testing.T) {
	c := NewCache(4)
	k := Key{Digest: "d", NB: 32, Alg: "ft"}
	_, lead, st := c.Acquire(k)
	if st != Lead {
		t.Fatalf("leader acquire: %v", st)
	}

	const followers = 4
	var wg sync.WaitGroup
	vals := make([]any, followers)
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, fl, st := c.Acquire(k)
			if st != Follow {
				t.Errorf("follower acquire: %v, want Follow", st)
				return
			}
			v, ok, err := fl.Wait(context.Background())
			if err != nil || !ok {
				t.Errorf("follower wait: ok=%v err=%v", ok, err)
				return
			}
			vals[i] = v
		}()
	}
	time.Sleep(10 * time.Millisecond)
	c.Commit(lead, "computed-once")
	wg.Wait()
	for i, v := range vals {
		if v != "computed-once" {
			t.Fatalf("follower %d got %v", i, v)
		}
	}
	if _, _, coalesced, _ := c.Stats(); coalesced != followers {
		t.Fatalf("coalesced = %d, want %d", coalesced, followers)
	}
}

// Leader cancelled mid-flight: followers wake with ok=false and
// recompute locally; nothing poisoned, a later commit still lands, and
// a follower's context cancellation unblocks its Wait.
func TestCacheLeaderAbortReleasesFollowers(t *testing.T) {
	c := NewCache(4)
	k := Key{Digest: "e", NB: 32, Alg: "ft"}
	_, lead, _ := c.Acquire(k)
	_, fl, st := c.Acquire(k)
	if st != Follow {
		t.Fatalf("follower acquire: %v", st)
	}
	go c.Abort(lead)
	_, ok, err := fl.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("follower got ok=true from an aborted flight")
	}
	// The follower recomputes and the key is cacheable again.
	_, fl2, st := c.Acquire(k)
	if st != Lead {
		t.Fatalf("post-abort acquire: %v, want Lead", st)
	}
	c.Commit(fl2, "recomputed")
	if v, _, st := c.Acquire(k); st != Hit || v != "recomputed" {
		t.Fatalf("post-recompute acquire: (%v, %v)", v, st)
	}

	// Follower-side cancellation.
	_, lead3, _ := c.Acquire(Key{Digest: "f"})
	_, fl3, _ := c.Acquire(Key{Digest: "f"})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := fl3.Wait(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled follower wait: %v", err)
	}
	c.Abort(lead3)
}

// --- farm / engine ---------------------------------------------------

// The free list spreads leases across devices before doubling up.
func TestFarmLeaseRoundRobinByDevice(t *testing.T) {
	f := NewFarm(2, 2)
	ctx := context.Background()
	want := []Lane{{0, 0}, {1, 0}, {0, 1}, {1, 1}}
	for i, w := range want {
		l, err := f.Lease(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if l != w {
			t.Fatalf("lease %d = %+v, want %+v", i, l, w)
		}
	}
	// Exhausted: Lease blocks until a release or ctx cancels.
	tctx, cancel := context.WithTimeout(ctx, 20*time.Millisecond)
	defer cancel()
	if _, err := f.Lease(tctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("over-capacity lease: %v", err)
	}
	f.Release(Lane{1, 0})
	if l, err := f.Lease(ctx); err != nil || l != (Lane{1, 0}) {
		t.Fatalf("re-lease: %+v, %v", l, err)
	}
}

// Engine groups by (N, NB), runs a group back-to-back on one lane, and
// keeps results in item order.
func TestEngineGroupsSameShapeOnOneLane(t *testing.T) {
	e := NewEngine(NewFarm(2, 2), nil, obs.NewRegistry())
	items := []Item{
		{Index: 0, N: 64, NB: 32, Seed: 1},
		{Index: 1, N: 96, NB: 32, Seed: 2},
		{Index: 2, N: 64, NB: 32, Seed: 3},
	}
	runs, err := e.Run(context.Background(), items, func(ctx context.Context, it Item, lane Lane) (any, *gpu.Device, error) {
		dev := gpu.NewNamed(sim.K40c(), gpu.CostOnly, lane.Name())
		// Charge something so windows are non-trivial.
		m := dev.Alloc(it.N, it.N)
		dev.Free(m)
		return it.Seed, dev, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 3 {
		t.Fatalf("%d runs", len(runs))
	}
	for i, r := range runs {
		if r.Item.Index != i {
			t.Fatalf("run %d holds item %d — order lost", i, r.Item.Index)
		}
		if r.Value != items[i].Seed {
			t.Fatalf("run %d value %v", i, r.Value)
		}
	}
	if runs[0].Lane != runs[2].Lane {
		t.Errorf("same-(N,nb) items split across lanes %s / %s", runs[0].Lane, runs[2].Lane)
	}
	if runs[0].Lane == runs[1].Lane {
		t.Errorf("distinct shapes share lane %s — no concurrency", runs[0].Lane)
	}
	if runs[2].Start < runs[0].End {
		t.Errorf("grouped items overlap on one lane: [%g,%g) then [%g,%g)",
			runs[0].Start, runs[0].End, runs[2].Start, runs[2].End)
	}
}

// One failing item cancels the job's remaining groups.
func TestEngineFirstErrorCancelsSiblings(t *testing.T) {
	e := NewEngine(NewFarm(1, 4), nil, nil)
	boom := errors.New("boom")
	var mu sync.Mutex
	ran := map[int]bool{}
	items := []Item{
		{Index: 0, N: 64, NB: 32},
		{Index: 1, N: 64, NB: 32},
		{Index: 2, N: 64, NB: 32},
	}
	_, err := e.Run(context.Background(), items, func(ctx context.Context, it Item, lane Lane) (any, *gpu.Device, error) {
		mu.Lock()
		ran[it.Index] = true
		mu.Unlock()
		if it.Index == 0 {
			return nil, nil, boom
		}
		return nil, nil, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the first item error", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if !ran[0] {
		t.Fatal("item 0 never ran")
	}
}
