package batch

import (
	"errors"
	"sort"
	"sync"
	"time"
)

// Job classes understood by the fair queue. Interactive is the default
// for plain submissions; Batch marks throughput traffic that tolerates
// latency. Weights 4:1 mean a saturated queue serves four interactive
// jobs' worth of cost per batch job's worth — a later interactive
// arrival overtakes queued batch backlog, but batch always drains.
const (
	ClassInteractive = "interactive"
	ClassBatch       = "batch"
)

// Queue rejection errors, mapped by the serving layer to 429 / 503.
var (
	ErrQueueFull   = errors.New("batch: queue is full")
	ErrQueueClosed = errors.New("batch: queue is closed")
)

// item is one queued element with its WFQ virtual-finish tag.
type item[T any] struct {
	v       T
	vfinish float64
	enq     time.Time
}

type class[T any] struct {
	weight     float64
	lastFinish float64
	fifo       []item[T]
}

// Queue is a weighted-fair queue over job classes with starvation aging,
// replacing the FIFO channel in front of the serving workers.
//
// Scheduling is virtual-time WFQ: an arrival to class c is tagged
//
//	vfinish = max(vnow, c.lastFinish) + cost/weight
//
// and Pop serves the smallest tag among the class heads, advancing vnow
// to it. Cost is the job's size (batched jobs count their items), so
// fairness is over work, not job count.
//
// Aging bounds starvation without inverting priority: when the oldest
// queued head has waited longer than AgingAfter, it is served out of tag
// order — but at most once per AgingAfter interval, so a starving class
// gets a guaranteed trickle (≥1 job per interval) while the weighted
// shares keep governing everything else.
type Queue[T any] struct {
	mu      sync.Mutex
	cond    *sync.Cond
	depth   int
	closed  bool
	vnow    float64
	classes map[string]*class[T]
	size    int

	agingAfter time.Duration
	lastAged   time.Time
	aged       uint64

	// now is the clock (a test seam; time.Now outside tests).
	now func() time.Time
}

// NewQueue builds a fair queue bounded to depth elements. weights maps
// class name → weight (minimum 1); unknown classes pushed later inherit
// weight 1. agingAfter ≤ 0 disables aging.
func NewQueue[T any](depth int, weights map[string]float64, agingAfter time.Duration) *Queue[T] {
	if depth < 1 {
		depth = 1
	}
	q := &Queue[T]{
		depth:      depth,
		classes:    make(map[string]*class[T]),
		agingAfter: agingAfter,
		now:        time.Now,
	}
	q.cond = sync.NewCond(&q.mu)
	for name, w := range weights {
		if w < 1 {
			w = 1
		}
		q.classes[name] = &class[T]{weight: w}
	}
	return q
}

// Push enqueues v under a class with the given cost (clamped to ≥ 1).
// It never blocks: ErrQueueFull when the depth bound is hit,
// ErrQueueClosed after Close.
func (q *Queue[T]) Push(cls string, cost float64, v T) error {
	if cost < 1 {
		cost = 1
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrQueueClosed
	}
	if q.size >= q.depth {
		return ErrQueueFull
	}
	c, ok := q.classes[cls]
	if !ok {
		c = &class[T]{weight: 1}
		q.classes[cls] = c
	}
	start := q.vnow
	if c.lastFinish > start {
		start = c.lastFinish
	}
	c.lastFinish = start + cost/c.weight
	c.fifo = append(c.fifo, item[T]{v: v, vfinish: c.lastFinish, enq: q.now()})
	q.size++
	q.cond.Signal()
	return nil
}

// Pop blocks until an element is available and returns it; ok is false
// once the queue is closed and drained (the worker-exit signal).
func (q *Queue[T]) Pop() (v T, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.size == 0 && !q.closed {
		q.cond.Wait()
	}
	if q.size == 0 {
		var zero T
		return zero, false
	}

	// Class names in sorted order: map iteration is randomized, and the
	// scheduler's tie-breaks must be deterministic.
	names := make([]string, 0, len(q.classes))
	for name, c := range q.classes {
		if len(c.fifo) > 0 {
			names = append(names, name)
		}
	}
	sort.Strings(names)

	// Aging override: serve the oldest head out of tag order if it has
	// starved past the interval — at most once per interval.
	now := q.now()
	var pick *class[T]
	if q.agingAfter > 0 && now.Sub(q.lastAged) >= q.agingAfter {
		var oldest time.Time
		for _, name := range names {
			c := q.classes[name]
			if pick == nil || c.fifo[0].enq.Before(oldest) {
				pick, oldest = c, c.fifo[0].enq
			}
		}
		if pick != nil && now.Sub(oldest) >= q.agingAfter {
			q.lastAged = now
			q.aged++
		} else {
			pick = nil
		}
	}
	if pick == nil {
		for _, name := range names {
			c := q.classes[name]
			if pick == nil || c.fifo[0].vfinish < pick.fifo[0].vfinish {
				pick = c
			}
		}
	}
	it := pick.fifo[0]
	pick.fifo = pick.fifo[1:]
	q.size--
	if it.vfinish > q.vnow {
		q.vnow = it.vfinish
	}
	return it.v, true
}

// Close stops intake; Pop keeps draining what is queued, then reports
// closed. Safe to call more than once.
func (q *Queue[T]) Close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}

// Len returns the number of queued elements.
func (q *Queue[T]) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.size
}

// Aged returns how many elements were served by the aging override.
func (q *Queue[T]) Aged() uint64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.aged
}
