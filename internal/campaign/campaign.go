// Package campaign is the reliability harness of the reproduction: a
// parallel, deterministic, sweep-capable Monte-Carlo soft-error campaign
// engine for the fault-tolerant reduction (the statistical counterpart of
// the paper's Section VI evaluation).
//
// Errors arrive as a Poisson process over the blocked iterations (the
// paper's Section I motivates the work with DRAM/GPU FIT rates — 51.7
// errors/week on ASC Q, 2×10⁻⁵ per MemtestG80 iteration), strike a region
// chosen proportionally to its memory footprint (or pinned by a
// fault.Region sweep axis), and flip a random bit of the IEEE-754
// representation. Each trial is classified by outcome, giving the
// detection-coverage and recovery-overhead statistics that a reliability
// engineer would ask of the paper's scheme (Tables II-III, Figures 5-6).
//
// Determinism contract (DESIGN.md §8): every trial's random stream is
// derived solely from (campaign seed, cell index, trial index), never from
// scheduling, so a sweep produces bitwise-identical trial records,
// aggregate reports, and BENCH_campaign.json artifacts at any worker
// count. Trials fan out across a bounded worker pool (the internal/blas
// pool pattern) and their JSONL records are flushed in canonical order as
// the completed prefix grows, which is what makes `-resume` from a partial
// file sound.
package campaign

import (
	"errors"
	"fmt"
	"io"
	"math"

	"repro/internal/fault"
	"repro/internal/matrix"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Outcome classifies one trial.
type Outcome int

const (
	// CleanPass: no error injected, factorization correct.
	CleanPass Outcome = iota
	// Recovered: at least one error injected, all detected/corrected,
	// result numerically correct.
	Recovered
	// SilentBenign: an error went undetected but the result is still
	// numerically correct (e.g. a low-order mantissa flip below the
	// detection threshold, or a flip in dead storage).
	SilentBenign
	// SilentCorrupt: an error went undetected and corrupted the result —
	// the failure mode the scheme exists to prevent.
	SilentCorrupt
	// Uncorrectable: detection fired but the error pattern could not be
	// attributed (rectangle/ambiguous), reported rather than mis-corrected.
	Uncorrectable
	// numOutcomes bounds the Outcome enum for aggregation arrays.
	numOutcomes = int(Uncorrectable) + 1
)

func (o Outcome) String() string {
	switch o {
	case CleanPass:
		return "clean-pass"
	case Recovered:
		return "recovered"
	case SilentBenign:
		return "silent-benign"
	case SilentCorrupt:
		return "silent-corrupt"
	case Uncorrectable:
		return "uncorrectable"
	}
	return fmt.Sprintf("Outcome(%d)", int(o))
}

// ParseOutcome inverts Outcome.String (used when resuming from JSONL).
func ParseOutcome(s string) (Outcome, error) {
	for o := CleanPass; o <= Uncorrectable; o++ {
		if o.String() == s {
			return o, nil
		}
	}
	return CleanPass, fmt.Errorf("campaign: unknown outcome %q", s)
}

// Config parameterizes a single-cell campaign (the Run entry point).
// Sweeps over grids of these parameters use the Sweep type instead.
type Config struct {
	// N, NB: problem size and block size.
	N, NB int
	// Trials is the number of independent runs.
	Trials int
	// Lambda is the expected number of soft errors per run (Poisson).
	Lambda float64
	// Seed makes the campaign reproducible.
	Seed uint64
	// MinBit..MaxBit bound the flipped bit (default 20..62: from deep
	// mantissa to the exponent, excluding the sign for variety).
	MinBit, MaxBit uint
	// Region restricts where errors strike (default fault.RegionAll:
	// footprint-weighted over all areas).
	Region fault.Region
	// Workers bounds the trial-level parallelism (default 1; results are
	// bitwise identical at any value).
	Workers int
	// ResidualTol classifies a result as correct (default 1e-12).
	ResidualTol float64
	// Params calibrates the simulated device (sim.K40c() if zero).
	Params sim.Params
	// Obs, if set, receives campaign_trials_total{outcome}, campaign
	// timing and injection counters.
	Obs *obs.Registry
}

// Trial records one run's outcome.
type Trial struct {
	Outcome    Outcome
	Seed       uint64
	Injections []InjectionSummary
	Detections int
	Recoveries int
	Residual   float64
	Err        error
}

// Report aggregates a single-cell campaign.
type Report struct {
	Config     Config
	Trials     []Trial
	ByOutcome  map[Outcome]int
	Injections int
}

// Run executes a single-cell campaign (real arithmetic) on the shared
// sweep engine: one cell, Config.Workers-wide, deterministic in the seed.
func Run(cfg Config) (*Report, error) {
	if cfg.N <= 0 || cfg.Trials <= 0 {
		return nil, errors.New("campaign: N and Trials must be positive")
	}
	applyConfigDefaults(&cfg)

	s := &Sweep{
		Ns:            []int{cfg.N},
		NBs:           []int{cfg.NB},
		Lambdas:       []float64{cfg.Lambda},
		Regions:       []fault.Region{cfg.Region},
		BitRanges:     [][2]uint{{cfg.MinBit, cfg.MaxBit}},
		TrialsPerCell: cfg.Trials,
		Seed:          cfg.Seed,
		Workers:       cfg.Workers,
		ResidualTol:   cfg.ResidualTol,
		Params:        cfg.Params,
		Obs:           cfg.Obs,
	}
	sr, err := s.Run()
	if err != nil {
		return nil, err
	}
	rep := &Report{Config: cfg, ByOutcome: map[Outcome]int{}}
	for _, res := range sr.results[0] {
		t := res.trial
		rep.ByOutcome[t.Outcome]++
		rep.Injections += len(t.Injections)
		rep.Trials = append(rep.Trials, t)
	}
	return rep, nil
}

// applyConfigDefaults fills the zero values of a validated Config.
func applyConfigDefaults(cfg *Config) {
	if cfg.NB <= 0 {
		cfg.NB = 32
	}
	if cfg.Lambda <= 0 {
		cfg.Lambda = 1
	}
	if cfg.MaxBit == 0 {
		cfg.MinBit, cfg.MaxBit = 20, 62
	}
	if cfg.ResidualTol <= 0 {
		cfg.ResidualTol = 1e-12
	}
	if cfg.Params == (sim.Params{}) {
		cfg.Params = sim.K40c()
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
}

// samplePlans draws a Poisson number of single-error plans, each at a
// uniform iteration, an area weighted by its footprint within the region,
// and a random bit. The rng is the trial's private stream, so the draw is
// independent of every other trial.
func samplePlans(rng *matrix.RNG, cell Cell, iters int) []fault.Plan {
	k := poisson(rng, cell.Lambda)
	var plans []fault.Plan
	for e := 0; e < k; e++ {
		iter := rng.Intn(iters)
		if cell.Region == fault.RegionQ && iters > 1 {
			// Area 3 needs at least one finished panel.
			iter = 1 + rng.Intn(iters-1)
		}
		p := iter * cell.NB
		area := sampleArea(rng, cell.Region, cell.N, p)
		bit := cell.MinBit + uint(rng.Intn(int(cell.MaxBit-cell.MinBit+1)))
		plans = append(plans, fault.Plan{
			Area:       area,
			TargetIter: iter,
			BitFlip:    true,
			Bit:        bit,
			Seed:       rng.Uint64(),
		})
	}
	return plans
}

// sampleArea picks the struck area for an error at panel column p,
// restricted to the cell's region and weighted by memory footprint.
func sampleArea(rng *matrix.RNG, region fault.Region, n, p int) fault.Area {
	switch region {
	case fault.RegionQ:
		if p == 0 {
			// No finished Householder columns exist yet; the nearest
			// host-bound data is the lower trailing block.
			return fault.Area2
		}
		return fault.Area3
	case fault.RegionPanel:
		return fault.AreaPanel
	}
	kRows := p + 1
	// Footprints at that iteration: Area1 is the top strip of the
	// trailing columns, Area2 the lower trailing block, Area3 the
	// finished Householder storage.
	w1 := float64(kRows) * float64(n-p)
	w2 := float64(n-kRows) * float64(n-p)
	w3 := float64(p) * float64(n-p) / 2
	if region == fault.RegionH {
		w3 = 0
	}
	r := rng.Float64() * (w1 + w2 + w3)
	switch {
	case r < w1:
		return fault.Area1
	case r < w1+w2:
		return fault.Area2
	default:
		if p == 0 {
			return fault.Area2
		}
		return fault.Area3
	}
}

// poisson samples Poisson(lambda) with Knuth's method (lambda is small).
func poisson(rng *matrix.RNG, lambda float64) int {
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
		if k > 1000 {
			return k
		}
	}
}

// Print writes the aggregate report of a single-cell campaign.
func (r *Report) Print(w io.Writer) {
	fmt.Fprintf(w, "Monte-Carlo soft-error campaign: N=%d nb=%d, %d trials, λ=%.2f errors/run (region %s, bit flips, bits %d..%d)\n",
		r.Config.N, r.Config.NB, len(r.Trials), r.Config.Lambda, r.Config.Region, r.Config.MinBit, r.Config.MaxBit)
	fmt.Fprintf(w, "total injections: %d\n", r.Injections)
	for _, o := range []Outcome{CleanPass, Recovered, SilentBenign, SilentCorrupt, Uncorrectable} {
		fmt.Fprintf(w, "  %-14s %4d trials (%.1f%%)\n", o, r.ByOutcome[o],
			100*float64(r.ByOutcome[o])/float64(len(r.Trials)))
	}
	worst := 0.0
	for _, t := range r.Trials {
		if t.Residual > worst {
			worst = t.Residual
		}
	}
	fmt.Fprintf(w, "worst residual across completed trials: %.3e\n", worst)
}
