// Package campaign runs Monte-Carlo soft-error campaigns against the
// fault-tolerant reduction: errors arrive as a Poisson process over the
// blocked iterations (the paper's Section I motivates the work with
// DRAM/GPU FIT rates — 51.7 errors/week on ASC Q, 2×10⁻⁵ per MemtestG80
// iteration), strike a region chosen proportionally to its memory
// footprint, and flip a random bit of the IEEE-754 representation.
//
// Each trial is classified by outcome, giving the detection-coverage and
// recovery statistics that a reliability engineer would ask of the
// paper's scheme.
package campaign

import (
	"errors"
	"fmt"
	"io"
	"math"

	"repro/internal/fault"
	"repro/internal/ft"
	"repro/internal/gpu"
	"repro/internal/lapack"
	"repro/internal/matrix"
	"repro/internal/sim"
)

// Outcome classifies one trial.
type Outcome int

const (
	// CleanPass: no error injected, factorization correct.
	CleanPass Outcome = iota
	// Recovered: at least one error injected, all detected/corrected,
	// result numerically correct.
	Recovered
	// SilentBenign: an error went undetected but the result is still
	// numerically correct (e.g. a low-order mantissa flip below the
	// detection threshold, or a flip in dead storage).
	SilentBenign
	// SilentCorrupt: an error went undetected and corrupted the result —
	// the failure mode the scheme exists to prevent.
	SilentCorrupt
	// Uncorrectable: detection fired but the error pattern could not be
	// attributed (rectangle/ambiguous), reported rather than mis-corrected.
	Uncorrectable
)

func (o Outcome) String() string {
	switch o {
	case CleanPass:
		return "clean-pass"
	case Recovered:
		return "recovered"
	case SilentBenign:
		return "silent-benign"
	case SilentCorrupt:
		return "silent-corrupt"
	case Uncorrectable:
		return "uncorrectable"
	}
	return fmt.Sprintf("Outcome(%d)", int(o))
}

// Config parameterizes a campaign.
type Config struct {
	// N, NB: problem size and block size.
	N, NB int
	// Trials is the number of independent runs.
	Trials int
	// Lambda is the expected number of soft errors per run (Poisson).
	Lambda float64
	// Seed makes the campaign reproducible.
	Seed uint64
	// MinBit..MaxBit bound the flipped bit (default 20..62: from deep
	// mantissa to the exponent, excluding the sign for variety).
	MinBit, MaxBit uint
	// ResidualTol classifies a result as correct (default 1e-12).
	ResidualTol float64
	// Params calibrates the simulated device (sim.K40c() if zero).
	Params sim.Params
}

// Trial records one run's outcome.
type Trial struct {
	Outcome    Outcome
	Injections []ft.Injection
	Detections int
	Recoveries int
	Residual   float64
	Err        error
}

// Report aggregates a campaign.
type Report struct {
	Config     Config
	Trials     []Trial
	ByOutcome  map[Outcome]int
	Injections int
}

// Run executes the campaign (real arithmetic).
func Run(cfg Config) (*Report, error) {
	if cfg.N <= 0 || cfg.Trials <= 0 {
		return nil, errors.New("campaign: N and Trials must be positive")
	}
	if cfg.NB <= 0 {
		cfg.NB = 32
	}
	if cfg.Lambda <= 0 {
		cfg.Lambda = 1
	}
	if cfg.MaxBit == 0 {
		cfg.MinBit, cfg.MaxBit = 20, 62
	}
	if cfg.ResidualTol <= 0 {
		cfg.ResidualTol = 1e-12
	}
	if cfg.Params == (sim.Params{}) {
		cfg.Params = sim.K40c()
	}

	rep := &Report{Config: cfg, ByOutcome: map[Outcome]int{}}
	rng := matrix.NewRNG(cfg.Seed ^ 0xc0ffee)
	iters := fault.BlockedIterations(cfg.N, cfg.NB)
	a := matrix.Random(cfg.N, cfg.N, cfg.Seed+1)

	for trial := 0; trial < cfg.Trials; trial++ {
		plans := samplePlans(rng, cfg, iters)
		var hook ft.Hook
		var in *fault.Injector
		if len(plans) > 0 {
			in = fault.NewSchedule(plans...)
			hook = in
		}
		res, err := ft.Reduce(a, ft.Options{
			NB:     cfg.NB,
			Device: gpu.New(cfg.Params, gpu.Real),
			Hook:   hook,
		})
		t := Trial{Err: err}
		if in != nil {
			t.Injections = in.Log
			rep.Injections += len(in.Log)
		}
		if err != nil {
			if errors.Is(err, ft.ErrUncorrectable) || errors.Is(err, ft.ErrDetectionStorm) {
				t.Outcome = Uncorrectable
			} else {
				return nil, fmt.Errorf("campaign trial %d: %w", trial, err)
			}
		} else {
			t.Detections = res.Detections
			t.Recoveries = res.Recoveries
			t.Residual = lapack.FactorizationResidual(a, res.Q(), res.H())
			correct := t.Residual <= cfg.ResidualTol
			handled := res.Detections > 0 || res.QCorrections > 0
			switch {
			case len(t.Injections) == 0:
				t.Outcome = CleanPass
			case handled && correct:
				t.Outcome = Recovered
			case correct:
				t.Outcome = SilentBenign
			default:
				t.Outcome = SilentCorrupt
			}
		}
		rep.ByOutcome[t.Outcome]++
		rep.Trials = append(rep.Trials, t)
	}
	return rep, nil
}

// samplePlans draws a Poisson number of single-error plans, each at a
// uniform iteration, an area weighted by its footprint, and a random bit.
func samplePlans(rng *matrix.RNG, cfg Config, iters int) []fault.Plan {
	k := poisson(rng, cfg.Lambda)
	var plans []fault.Plan
	for e := 0; e < k; e++ {
		iter := rng.Intn(iters)
		p := iter * cfg.NB
		kRows := p + 1
		// Footprints at that iteration: Area1 is the top strip of the
		// trailing columns, Area2 the lower trailing block, Area3 the
		// finished Householder storage.
		w1 := float64(kRows) * float64(cfg.N-p)
		w2 := float64(cfg.N-kRows) * float64(cfg.N-p)
		w3 := float64(p) * float64(cfg.N-p) / 2
		r := rng.Float64() * (w1 + w2 + w3)
		area := fault.Area1
		switch {
		case r < w1:
			area = fault.Area1
		case r < w1+w2:
			area = fault.Area2
		default:
			area = fault.Area3
			if p == 0 {
				area = fault.Area2
			}
		}
		bit := cfg.MinBit + uint(rng.Intn(int(cfg.MaxBit-cfg.MinBit+1)))
		plans = append(plans, fault.Plan{
			Area:       area,
			TargetIter: iter,
			BitFlip:    true,
			Bit:        bit,
			Seed:       rng.Uint64(),
		})
	}
	return plans
}

// poisson samples Poisson(lambda) with Knuth's method (lambda is small).
func poisson(rng *matrix.RNG, lambda float64) int {
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
		if k > 1000 {
			return k
		}
	}
}

// Print writes the aggregate report.
func (r *Report) Print(w io.Writer) {
	fmt.Fprintf(w, "Monte-Carlo soft-error campaign: N=%d nb=%d, %d trials, λ=%.2f errors/run (bit flips, bits %d..%d)\n",
		r.Config.N, r.Config.NB, len(r.Trials), r.Config.Lambda, r.Config.MinBit, r.Config.MaxBit)
	fmt.Fprintf(w, "total injections: %d\n", r.Injections)
	for _, o := range []Outcome{CleanPass, Recovered, SilentBenign, SilentCorrupt, Uncorrectable} {
		fmt.Fprintf(w, "  %-14s %4d trials (%.1f%%)\n", o, r.ByOutcome[o],
			100*float64(r.ByOutcome[o])/float64(len(r.Trials)))
	}
	worst := 0.0
	for _, t := range r.Trials {
		if t.Residual > worst {
			worst = t.Residual
		}
	}
	fmt.Fprintf(w, "worst residual across completed trials: %.3e\n", worst)
}
