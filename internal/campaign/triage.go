package campaign

import (
	"repro/internal/obs"
)

// Triage of failed trials. A SilentCorrupt or Uncorrectable trial is the
// signal the whole campaign exists to find, so the engine does not leave
// it as a bare counter: it emits a minimal reproduction record — the
// derived seed plus the planned (iteration, area, bit) list replays the
// trial exactly — and re-runs that single trial with the internal/obs FT
// event journal attached, so the protection machinery's step-by-step
// behavior (checksum checks, detections, reversals, corrections) is on
// file before anyone starts debugging.

// Repro is the minimal reproduction record of one failed trial.
type Repro struct {
	Cell    Cell               `json:"cell"`
	Trial   int                `json:"trial"`
	Seed    uint64             `json:"seed"`
	Outcome string             `json:"outcome"`
	Rerun   string             `json:"rerun_outcome"`
	Plans   []InjectionSummary `json:"plans"`
	// Residual is the failed run's factorization residual (0 when the run
	// aborted with ErrUncorrectable before producing a factorization).
	Residual JSONFloat `json:"residual"`
	// Events is the FT event journal captured on the automatic re-run:
	// injections, checksum checks, detections, reversals, checkpoint
	// restores, corrections, re-executions, in simulated-time order.
	Events []obs.Event `json:"events"`
}

// triage re-runs one failed trial with a journal attached and packages
// the minimal repro. Deterministic: the re-run replays the same seed.
func (s *Sweep) triage(cell Cell, rec TrialRecord) Repro {
	j := obs.NewJournal()
	res := s.runTrial(cell, rec.Trial, s.matrixFor(cell.N), j)
	return Repro{
		Cell:     cell,
		Trial:    rec.Trial,
		Seed:     rec.Seed,
		Outcome:  rec.Outcome,
		Rerun:    res.record.Outcome,
		Plans:    res.record.Plans,
		Residual: rec.Residual,
		Events:   j.Events(),
	}
}
