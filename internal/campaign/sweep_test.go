package campaign

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/obs"
)

// testSweep is a small grid that still exercises multiple cells, regions,
// and enough trials to inject errors.
func testSweep(workers int, sink *bytes.Buffer) *Sweep {
	s := &Sweep{
		Ns:            []int{96, 126},
		NBs:           []int{16},
		Lambdas:       []float64{0.5, 1.5},
		Regions:       []fault.Region{fault.RegionAll, fault.RegionQ},
		TrialsPerCell: 4,
		Seed:          9,
		Workers:       workers,
	}
	if sink != nil {
		s.TrialSink = sink
	}
	return s
}

func runSweepOrFatal(t *testing.T, s *Sweep) (*SweepReport, string) {
	t.Helper()
	rep, err := RunSweep(s)
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	rep.Print(&b)
	var bench bytes.Buffer
	if err := rep.WriteBenchJSON(&bench); err != nil {
		t.Fatal(err)
	}
	return rep, b.String() + "\x00" + bench.String()
}

func TestSweepDeterministicAcrossWorkers(t *testing.T) {
	var j1, j4 bytes.Buffer
	_, out1 := runSweepOrFatal(t, testSweep(1, &j1))
	rep4, out4 := runSweepOrFatal(t, testSweep(4, &j4))

	if j1.String() != j4.String() {
		t.Fatalf("JSONL differs between -workers 1 and -workers 4:\n%s\n---\n%s", j1.String(), j4.String())
	}
	if out1 != out4 {
		t.Fatalf("aggregate report differs between worker counts:\n%s\n---\n%s", out1, out4)
	}
	if rep4.TotalTrials != 8*4 {
		t.Fatalf("expected 32 trials, got %d", rep4.TotalTrials)
	}
	if rep4.Outcome(SilentCorrupt) != 0 {
		t.Fatalf("silent corruption in test sweep: %+v", rep4.ByName)
	}
	if rep4.Injections == 0 {
		t.Fatal("sweep injected nothing")
	}
}

func TestSweepResumeFromPrefix(t *testing.T) {
	var full bytes.Buffer
	runSweepOrFatal(t, testSweep(2, &full))
	lines := strings.SplitAfter(full.String(), "\n")
	lines = lines[:len(lines)-1] // drop the empty tail
	if len(lines) != 32 {
		t.Fatalf("expected 32 JSONL lines, got %d", len(lines))
	}

	// Restart from the first 10 lines plus a truncated 11th (as an
	// interrupted run would leave behind).
	partial := strings.Join(lines[:10], "") + lines[10][:len(lines[10])/2]
	resume, err := LoadTrialJSONL(strings.NewReader(partial))
	if err != nil {
		t.Fatal(err)
	}
	if len(resume) != 10 {
		t.Fatalf("resume loaded %d records, want 10 (truncated line skipped)", len(resume))
	}

	var appended bytes.Buffer
	s := testSweep(3, &appended)
	s.Resume = resume
	runSweepOrFatal(t, s)
	got := strings.Join(lines[:10], "") + appended.String()
	if got != full.String() {
		t.Fatalf("resumed run did not complete the stream:\n%q\nwant\n%q", got, full.String())
	}
}

func TestSweepResumeGridMismatch(t *testing.T) {
	var full bytes.Buffer
	runSweepOrFatal(t, testSweep(1, &full))
	resume, err := LoadTrialJSONL(strings.NewReader(full.String()))
	if err != nil {
		t.Fatal(err)
	}
	s := testSweep(1, nil)
	s.Ns = []int{96, 158} // different grid: records no longer line up
	s.Resume = resume
	if _, err := RunSweep(s); err == nil || !strings.Contains(err.Error(), "does not match") {
		t.Fatalf("grid mismatch not rejected: %v", err)
	}
}

func TestSweepObsMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	s := testSweep(2, nil)
	s.Obs = reg
	rep, err := RunSweep(s)
	if err != nil {
		t.Fatal(err)
	}
	total := 0.0
	for o := CleanPass; o <= Uncorrectable; o++ {
		total += reg.CounterValue("campaign_trials_total", obs.L("outcome", o.String()))
	}
	if int(total) != rep.TotalTrials {
		t.Fatalf("campaign_trials_total %v != %d trials", total, rep.TotalTrials)
	}
	if reg.CounterValue("campaign_injections_total") != float64(rep.Injections) {
		t.Fatal("campaign_injections_total mismatch")
	}
	if reg.CounterValue("campaign_cells_total") != 8 {
		t.Fatalf("campaign_cells_total = %v", reg.CounterValue("campaign_cells_total"))
	}
	if reg.GaugeValue("campaign_seconds") <= 0 {
		t.Fatal("campaign_seconds not set")
	}
}

func TestSweepOverheadAndCoverage(t *testing.T) {
	s := &Sweep{
		Ns: []int{126}, NBs: []int{16}, Lambdas: []float64{1.5},
		TrialsPerCell: 12, Seed: 4, Workers: 2,
	}
	rep, err := RunSweep(s)
	if err != nil {
		t.Fatal(err)
	}
	c := rep.Cells[0]
	if c.BaselineSimSeconds <= 0 {
		t.Fatal("no clean baseline recorded")
	}
	if c.FaultedTrials == 0 {
		t.Fatal("λ=1.5 over 12 trials injected nothing")
	}
	if c.Coverage < 0 || c.Coverage > 1 {
		t.Fatalf("coverage %v out of range", c.Coverage)
	}
	// Faulted runs carry recovery work, so their mean simulated time must
	// be at or above the clean baseline whenever recoveries happened.
	if c.Recoveries > 0 && c.MeanFaultedSimSeconds < c.BaselineSimSeconds {
		t.Fatalf("mean faulted %v < baseline %v despite %d recoveries",
			c.MeanFaultedSimSeconds, c.BaselineSimSeconds, c.Recoveries)
	}
}

func TestSweepScheduleAxis(t *testing.T) {
	// Two single-cell sweeps with the same seed, differing only in the
	// schedule, run identical fault plans (trial seeds depend on the cell
	// index, 0 in both). The lookahead schedule is bit-identical to the
	// serial one, so every coverage-bearing field must match exactly —
	// only the modeled time moves.
	base := func(sched string, sink *bytes.Buffer) *Sweep {
		return &Sweep{
			Ns: []int{126}, NBs: []int{16}, Lambdas: []float64{1.5},
			DeviceCounts: []int{2}, Schedules: []string{sched},
			TrialsPerCell: 6, Seed: 13, Workers: 2, TrialSink: sink,
		}
	}
	var laSink, serSink bytes.Buffer
	la, err := RunSweep(base(ScheduleLookahead, &laSink))
	if err != nil {
		t.Fatal(err)
	}
	ser, err := RunSweep(base(ScheduleSerial, &serSink))
	if err != nil {
		t.Fatal(err)
	}
	cl, cs := la.Cells[0], ser.Cells[0]
	if cl.ByName["silent-corrupt"] != 0 || cs.ByName["silent-corrupt"] != 0 {
		t.Fatalf("silent corruption: lookahead %v, serial %v", cl.ByName, cs.ByName)
	}
	if cl.Coverage != cs.Coverage || cl.Detections != cs.Detections ||
		cl.Recoveries != cs.Recoveries || cl.WorstResidual != cs.WorstResidual ||
		!mapsEqual(cl.ByName, cs.ByName) {
		t.Fatalf("detection coverage moved with the schedule:\nlookahead %+v\nserial    %+v", cl, cs)
	}
	if cl.FaultedTrials == 0 || cl.Detections == 0 {
		t.Fatal("schedule-axis sweep exercised no faults")
	}
	// At this tiny order the lookahead's extra kernel launches outweigh
	// the hidden panel (the win needs N in the thousands — see
	// BENCH_lookahead.json), so only assert the schedules were measured
	// against their own baselines, not which one is faster.
	if cl.BaselineSimSeconds == cs.BaselineSimSeconds {
		t.Fatalf("lookahead and serial cells share a baseline (%.4fs); want per-schedule baselines",
			cl.BaselineSimSeconds)
	}

	// Resume compatibility: lookahead trials serialize without the
	// no_lookahead field — exactly like pre-schedule-axis records — so
	// old JSONL resumes a default-schedule sweep in full, and is
	// rejected (not silently reused) against a serial grid.
	if strings.Contains(laSink.String(), "no_lookahead") {
		t.Fatal("default-schedule records carry no_lookahead; old JSONL would stop resuming")
	}
	if !strings.Contains(serSink.String(), `"no_lookahead":true`) {
		t.Fatal("serial records do not carry no_lookahead")
	}
	resume, err := LoadTrialJSONL(strings.NewReader(laSink.String()))
	if err != nil {
		t.Fatal(err)
	}
	var appended bytes.Buffer
	s := base(ScheduleLookahead, &appended)
	s.Resume = resume
	if _, err := RunSweep(s); err != nil {
		t.Fatal(err)
	}
	if appended.Len() != 0 {
		t.Fatalf("fully recorded sweep re-emitted %d bytes on resume", appended.Len())
	}
	s = base(ScheduleSerial, nil)
	s.Resume = resume
	if _, err := RunSweep(s); err == nil || !strings.Contains(err.Error(), "does not match") {
		t.Fatalf("lookahead records resumed into a serial grid: %v", err)
	}
}

func mapsEqual(a, b map[string]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

func TestTriageCapturesJournal(t *testing.T) {
	s := testSweep(1, nil)
	if err := s.validate(); err != nil {
		t.Fatal(err)
	}
	cells := s.cells()
	cell := cells[0]
	// Fabricate a "failed" record for trial 2 and triage it: the re-run
	// must replay the same seed and capture the FT event journal.
	res := s.runTrial(cell, 2, s.matrixFor(cell.N), nil)
	repro := s.triage(cell, res.record)
	if repro.Seed != res.record.Seed {
		t.Fatalf("triage seed %d != trial seed %d", repro.Seed, res.record.Seed)
	}
	if repro.Rerun != res.record.Outcome {
		t.Fatalf("triage re-run outcome %q != original %q (determinism broken)", repro.Rerun, res.record.Outcome)
	}
	if len(repro.Events) == 0 {
		t.Fatal("triage captured no FT events")
	}
	if len(res.record.Plans) > 0 {
		found := false
		for _, e := range repro.Events {
			if e.Kind == obs.KindInjection {
				found = true
			}
		}
		if !found {
			t.Fatal("journal has no injection events despite planned errors")
		}
	}
}

func TestSweepValidation(t *testing.T) {
	bad := []*Sweep{
		{},
		{Ns: []int{126}},
		{Ns: []int{-1}, TrialsPerCell: 1},
		{Ns: []int{126}, TrialsPerCell: 1, Lambdas: []float64{-2}},
		{Ns: []int{126}, TrialsPerCell: 1, BitRanges: [][2]uint{{40, 20}}},
		{Ns: []int{126}, TrialsPerCell: 1, BitRanges: [][2]uint{{20, 64}}},
	}
	for i, s := range bad {
		if _, err := s.Run(); err == nil {
			t.Fatalf("invalid sweep %d accepted", i)
		}
	}
}

func TestSweepDeviceAxis(t *testing.T) {
	// The devices axis runs the same fault grid on the legacy schedule and
	// on a 2-device pool: every cell must still detect and recover, the
	// pooled cells carry their device count through the JSONL records, and
	// the overhead baselines are computed per substrate.
	var sink bytes.Buffer
	s := &Sweep{
		Ns:            []int{126},
		NBs:           []int{16},
		Lambdas:       []float64{1.5},
		DeviceCounts:  []int{0, 2},
		TrialsPerCell: 3,
		Seed:          11,
		Workers:       2,
		TrialSink:     &sink,
	}
	rep, err := RunSweep(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Cells) != 2 {
		t.Fatalf("expected 2 cells (devices 0 and 2), got %d", len(rep.Cells))
	}
	for _, c := range rep.Cells {
		if c.Outcome(SilentCorrupt) > 0 {
			t.Fatalf("devices=%d: silent corruption", c.Cell.Devices)
		}
		if c.FaultedTrials > 0 && c.Coverage == 0 {
			t.Fatalf("devices=%d: no detection on faulted trials", c.Cell.Devices)
		}
		if c.BaselineSimSeconds <= 0 {
			t.Fatalf("devices=%d: missing clean baseline", c.Cell.Devices)
		}
	}
	// The two substrates have different schedules (at this tiny order the
	// pool's broadcasts outweigh the sharding win), so each cell must have
	// been measured against its own baseline, not a shared one.
	if k2, k0 := rep.Cells[1].BaselineSimSeconds, rep.Cells[0].BaselineSimSeconds; k2 == k0 {
		t.Fatalf("devices=0 and devices=2 share a baseline (%.4fs); want per-substrate baselines", k0)
	}
	recs, err := LoadTrialJSONL(&sink)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]int{}
	for _, r := range recs {
		seen[r.Devices]++
	}
	if seen[0] != 3 || seen[2] != 3 {
		t.Fatalf("JSONL device counts: %v", seen)
	}
}

func TestSweepKillRateAxis(t *testing.T) {
	// The kill-rate axis: at rate 1 every trial loses a device. On a
	// 3-device pool fail-stop recovery must turn each loss into a
	// Recovered trial (never silent corruption); on the single-device
	// substrate the same loss is always fatal and must be reported
	// uncorrectable. The sampled kill coordinates ride the JSONL records.
	var sink bytes.Buffer
	s := &Sweep{
		Ns:            []int{126},
		NBs:           []int{16},
		Lambdas:       []float64{0.5},
		DeviceCounts:  []int{0, 3},
		KillRates:     []float64{0, 1},
		TrialsPerCell: 3,
		Seed:          13,
		Workers:       2,
		TrialSink:     &sink,
	}
	rep, err := RunSweep(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Cells) != 4 {
		t.Fatalf("expected 4 cells (devices × kill rate), got %d", len(rep.Cells))
	}
	for _, c := range rep.Cells {
		if c.Outcome(SilentCorrupt) > 0 {
			t.Fatalf("devices=%d kill_rate=%g: silent corruption", c.Cell.Devices, c.Cell.KillRate)
		}
		switch {
		case c.Cell.KillRate == 0:
			if c.DeviceLosses != 0 || c.FailStopRecoveries != 0 {
				t.Fatalf("kill_rate=0 cell saw losses: %+v", c)
			}
		case c.Cell.Devices == 0:
			// Single device: every killed trial dies loudly.
			if c.Outcome(Uncorrectable) != c.Trials {
				t.Fatalf("devices=0 kill_rate=1: %d/%d uncorrectable", c.Outcome(Uncorrectable), c.Trials)
			}
		default:
			// Pool with fail-stop: every loss reconstructed, every trial
			// correct.
			if c.DeviceLosses != c.Trials || c.FailStopRecoveries != c.Trials {
				t.Fatalf("devices=3 kill_rate=1: losses=%d recoveries=%d over %d trials",
					c.DeviceLosses, c.FailStopRecoveries, c.Trials)
			}
			if c.Outcome(Uncorrectable) > 0 {
				t.Fatalf("devices=3 kill_rate=1: uncorrectable despite fail-stop recovery")
			}
			if c.Coverage != 1 {
				t.Fatalf("devices=3 kill_rate=1: coverage %.2f, want 1", c.Coverage)
			}
		}
	}
	recs, err := LoadTrialJSONL(&sink)
	if err != nil {
		t.Fatal(err)
	}
	killed := 0
	for _, r := range recs {
		if r.KillRate == 1 && r.Devices == 3 {
			if r.KillPoint == "" {
				t.Fatalf("killed trial lost its kill coordinates: %+v", r)
			}
			if r.KillDevice < 0 || r.KillDevice >= 3 {
				t.Fatalf("kill device %d out of pool range", r.KillDevice)
			}
			killed++
		}
	}
	if killed != 3 {
		t.Fatalf("JSONL kill records: %d, want 3", killed)
	}
}
