package campaign

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/fault"
	"repro/internal/ft"
	"repro/internal/gpu"
	"repro/internal/lapack"
	"repro/internal/matrix"
	"repro/internal/obs"
)

// The trial engine. Parallelism never influences results: each trial's
// random stream is derived from (sweep seed, cell index, trial index)
// alone, trials write only their own result slot, and the JSONL sink is
// fed by a contiguous-prefix flusher that emits records in canonical
// (cell-major, trial-minor) order regardless of completion order. A
// -workers 1 and a -workers 64 run of the same sweep therefore produce
// identical bytes everywhere but the wall clock.

// trialResult pairs the machine-readable record with the in-memory trial.
type trialResult struct {
	record  TrialRecord
	trial   Trial
	resumed bool
	err     error
}

// deriveTrialSeed maps (sweep seed, cell, trial) to an independent random
// stream via two SplitMix64 scrambles. Scheduling never touches it.
func deriveTrialSeed(seed uint64, cell, trial int) uint64 {
	r := matrix.NewRNG(seed ^ 0x6a09e667f3bcc909)
	base := r.Uint64()
	h := matrix.NewRNG(base ^ uint64(cell+1)*0x9e3779b97f4a7c15 ^ uint64(trial+1)*0xd1342543de82ef95)
	h.Uint64()
	return h.Uint64()
}

// matrixFor returns (caching) the shared read-only input matrix of order n.
func (s *Sweep) matrixFor(n int) *matrix.Matrix {
	if s.mats == nil {
		s.mats = map[int]*matrix.Matrix{}
	}
	if s.mats[n] == nil {
		s.mats[n] = matrix.Random(n, n, s.Seed+1)
	}
	return s.mats[n]
}

// applyDevices sets a trial's execution substrate: the legacy
// single-device schedule for a zero count, a freshly allocated k-device
// pool (per-slab ABFT, internal/devpool) otherwise. Fresh devices per
// trial keep the simulated clocks independent across parallel workers.
func (s *Sweep) applyDevices(opt *ft.Options, k int) {
	if k <= 0 {
		opt.Device = gpu.New(s.Params, gpu.Real)
		return
	}
	devs := make([]*gpu.Device, k)
	for i := range devs {
		devs[i] = gpu.NewIndexed(s.Params, gpu.Real, i)
	}
	opt.Devices = devs
}

// baseKey identifies a clean-run baseline configuration.
type baseKey struct {
	n, nb, devices int
	noLookahead    bool
	substrate      string
}

// baselines runs one clean (no-injection) reduction per distinct
// (N, NB, devices, schedule) and records its simulated makespan — the
// denominator of each cell's recovery-overhead ratio. Serial and
// deterministic.
func (s *Sweep) baselines(cells []Cell) map[baseKey]float64 {
	out := map[baseKey]float64{}
	for _, c := range cells {
		key := baseKey{c.N, c.NB, c.Devices, c.NoLookahead, c.Substrate}
		if _, ok := out[key]; ok {
			continue
		}
		opt := ft.Options{NB: c.NB, DisableLookahead: c.NoLookahead, Substrate: c.Substrate}
		s.applyDevices(&opt, c.Devices)
		res, err := ft.Reduce(s.matrixFor(c.N), opt)
		if err == nil {
			out[key] = res.SimSeconds
		}
	}
	return out
}

// runTrial executes one trial from its derived seed. journal, when
// non-nil, captures the FT event journal (triage re-runs).
func (s *Sweep) runTrial(cell Cell, trial int, a *matrix.Matrix, journal *obs.Journal) trialResult {
	seed := deriveTrialSeed(s.Seed, cell.Index, trial)
	rng := matrix.NewRNG(seed)
	iters := fault.BlockedIterations(cell.N, cell.NB)
	var plans []fault.Plan
	if iters > 0 {
		plans = samplePlans(rng, cell, iters)
	}

	rec := TrialRecord{
		Cell: cell.Index, N: cell.N, NB: cell.NB, Lambda: cell.Lambda,
		Region: cell.Region, MinBit: cell.MinBit, MaxBit: cell.MaxBit,
		Devices: cell.Devices, NoLookahead: cell.NoLookahead,
		KillRate: cell.KillRate, Substrate: cell.Substrate,
		Trial: trial, Seed: seed,
	}
	for _, p := range plans {
		rec.Plans = append(rec.Plans, InjectionSummary{
			Iter: p.TargetIter, Area: p.Area.String(), Bit: p.Bit,
		})
	}
	// Fail-stop axis: with probability KillRate one device dies this
	// trial, at a uniform iteration, device, and kill window. The draws
	// happen only on kill-rate cells, so every other cell's random
	// stream — and its resumable records — is untouched by the axis.
	if cell.KillRate > 0 && iters > 0 && rng.Float64() < cell.KillRate {
		points := []fault.KillPoint{fault.KillBoundary, fault.KillPanel, fault.KillUpdate}
		kp := fault.Plan{
			TargetIter: rng.Intn(iters),
			KillPoint:  points[rng.Intn(len(points))],
		}
		if cell.Devices > 0 {
			kp.KillDevice = rng.Intn(cell.Devices)
		}
		plans = append(plans, kp)
		rec.KillIter = kp.TargetIter
		rec.KillPoint = string(kp.KillPoint)
		rec.KillDevice = kp.KillDevice
	}

	var hook ft.Hook
	var in *fault.Injector
	if len(plans) > 0 {
		in = fault.NewSchedule(plans...)
		in.Journal = journal
		hook = in
	}
	opt := ft.Options{
		NB:               cell.NB,
		Hook:             hook,
		Journal:          journal,
		DisableLookahead: cell.NoLookahead,
		Substrate:        cell.Substrate,
		// Kill-rate cells on a pool run with fail-stop recovery, so the
		// cell measures loss survival (and its parity upkeep cost).
		FailStop: cell.KillRate > 0 && cell.Devices > 0,
	}
	s.applyDevices(&opt, cell.Devices)
	res, err := ft.Reduce(a, opt)

	t := Trial{Seed: seed, Injections: rec.Plans, Err: err}
	if in != nil {
		rec.Injections = len(in.Log)
	}
	if err != nil {
		if errors.Is(err, ft.ErrUncorrectable) || errors.Is(err, ft.ErrDetectionStorm) {
			t.Outcome = Uncorrectable
			rec.Detections = res.Detections
			rec.Recoveries = res.Recoveries
			rec.Reexecutions = res.Reexecutions
			rec.DeviceLosses = res.DeviceLosses
			t.Err = nil
		} else {
			rec.Err = err.Error()
			rec.Outcome = "error"
			return trialResult{record: rec, trial: t, err: fmt.Errorf("campaign cell %d trial %d: %w", cell.Index, trial, err)}
		}
	} else {
		t.Detections = res.Detections
		t.Recoveries = res.Recoveries
		rec.Detections = res.Detections
		rec.Recoveries = res.Recoveries
		rec.Reexecutions = res.Reexecutions
		rec.QCorrections = res.QCorrections
		rec.DeviceLosses = res.DeviceLosses
		rec.FailStopRecoveries = res.FailStopRecoveries
		rec.SimSeconds = res.SimSeconds
		t.Residual = lapack.FactorizationResidual(a, res.Q(), res.H())
		rec.Residual = JSONFloat(t.Residual)
		correct := t.Residual <= s.ResidualTol
		handled := res.Detections > 0 || res.QCorrections > 0 || res.FailStopRecoveries > 0
		switch {
		case rec.Injections == 0 && res.DeviceLosses == 0:
			t.Outcome = CleanPass
		case handled && correct:
			t.Outcome = Recovered
		case correct:
			t.Outcome = SilentBenign
		default:
			t.Outcome = SilentCorrupt
		}
	}
	rec.Outcome = t.Outcome.String()
	rec.out = t.Outcome
	return trialResult{record: rec, trial: t}
}

// runTrials fans the sweep's trials out over the worker pool and streams
// completed records (canonical order, contiguous prefix) to TrialSink.
func (s *Sweep) runTrials(cells []Cell) ([][]trialResult, error) {
	nTrials := s.TrialsPerCell
	total := len(cells) * nTrials
	results := make([][]trialResult, len(cells))
	for i := range results {
		results[i] = make([]trialResult, nTrials)
	}

	// Seed the result grid with resumed records; collect the rest as
	// pending work items.
	type item struct{ cell, trial int }
	var pending []item
	completed := make([]bool, total)
	for ci, cell := range cells {
		for t := 0; t < nTrials; t++ {
			rec, ok := s.Resume[TrialKey{Cell: ci, Trial: t}]
			if ok && rec.Err == "" {
				if rec.N != cell.N || rec.NB != cell.NB || rec.Lambda != cell.Lambda ||
					rec.Region != cell.Region || rec.MinBit != cell.MinBit || rec.MaxBit != cell.MaxBit ||
					rec.Devices != cell.Devices || rec.NoLookahead != cell.NoLookahead ||
					rec.KillRate != cell.KillRate {
					return nil, fmt.Errorf("campaign: resume record for cell %d trial %d does not match the sweep grid (have N=%d nb=%d λ=%g %s bits %d..%d devices=%d schedule=%s kill_rate=%g substrate=%s)",
						ci, t, rec.N, rec.NB, rec.Lambda, rec.Region, rec.MinBit, rec.MaxBit, rec.Devices,
						Cell{NoLookahead: rec.NoLookahead}.Schedule(), rec.KillRate,
						Cell{Substrate: rec.Substrate}.SubstrateName())
				}
				results[ci][t] = trialResult{record: rec, trial: rec.toTrial(), resumed: true}
				completed[ci*nTrials+t] = true
			} else {
				pending = append(pending, item{ci, t})
			}
		}
	}

	// Pre-generate the shared inputs serially (trials only read them).
	for _, c := range cells {
		s.matrixFor(c.N)
	}

	var (
		mu       sync.Mutex
		cursor   = 0 // canonical flush position
		done     = total - len(pending)
		writeErr error
	)
	flush := func() {
		for cursor < total && completed[cursor] {
			res := results[cursor/nTrials][cursor%nTrials]
			if !res.resumed && s.TrialSink != nil && writeErr == nil {
				writeErr = writeTrialRecord(s.TrialSink, res.record)
			}
			cursor++
		}
	}
	mu.Lock()
	flush() // a fully resumed prefix advances the cursor immediately
	mu.Unlock()

	workers := s.Workers
	if workers > len(pending) {
		workers = len(pending)
	}
	if workers < 1 {
		workers = 1
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	body := func() {
		defer wg.Done()
		for {
			i := int(next.Add(1)) - 1
			if i >= len(pending) {
				return
			}
			it := pending[i]
			res := s.runTrial(cells[it.cell], it.trial, s.matrixFor(cells[it.cell].N), nil)
			mu.Lock()
			results[it.cell][it.trial] = res
			completed[it.cell*nTrials+it.trial] = true
			done++
			flush()
			if s.Progress != nil {
				s.Progress(done, total)
			}
			mu.Unlock()
		}
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go body()
	}
	wg.Wait()

	if writeErr != nil {
		return nil, fmt.Errorf("campaign: writing trial record: %w", writeErr)
	}
	// Report the first failure in canonical order, so the error (like the
	// data) is independent of scheduling.
	for ci := range results {
		for _, res := range results[ci] {
			if res.err != nil {
				return nil, res.err
			}
		}
	}
	return results, nil
}
