package campaign_test

import (
	"fmt"

	"repro/internal/campaign"
	"repro/internal/fault"
)

// ExampleRun executes a small single-cell campaign: Poisson error
// arrivals, footprint-weighted areas, random bit flips. The seed fixes
// every trial, so the output is reproducible at any worker count.
func ExampleRun() {
	rep, err := campaign.Run(campaign.Config{
		N: 96, NB: 16, Trials: 6, Lambda: 1, Seed: 5, Workers: 2,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("trials=%d injections=%d silent-corrupt=%d\n",
		len(rep.Trials), rep.Injections, rep.ByOutcome[campaign.SilentCorrupt])
	// Output: trials=6 injections=5 silent-corrupt=0
}

// ExampleSweep_Run sweeps a grid of problem sizes and error rates and
// reads the per-cell detection coverage off the aggregate report.
func ExampleSweep_Run() {
	s := &campaign.Sweep{
		Ns:            []int{96, 126},
		Lambdas:       []float64{0.5, 1.5},
		NBs:           []int{16},
		Regions:       []fault.Region{fault.RegionAll},
		TrialsPerCell: 3,
		Seed:          7,
		Workers:       4,
	}
	rep, err := s.Run()
	if err != nil {
		panic(err)
	}
	fmt.Printf("cells=%d trials=%d silent-corrupt=%d\n",
		len(rep.Cells), rep.TotalTrials, rep.Outcome(campaign.SilentCorrupt))
	// Output: cells=4 trials=12 silent-corrupt=0
}
