package campaign

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/matrix"
)

func TestPoissonMean(t *testing.T) {
	rng := matrix.NewRNG(1)
	const lambda = 2.5
	const samples = 5000
	sum := 0
	for i := 0; i < samples; i++ {
		sum += poisson(rng, lambda)
	}
	mean := float64(sum) / samples
	if math.Abs(mean-lambda) > 0.15 {
		t.Fatalf("Poisson mean %v, want ≈%v", mean, lambda)
	}
}

func TestPoissonZeroish(t *testing.T) {
	rng := matrix.NewRNG(2)
	zero := 0
	for i := 0; i < 1000; i++ {
		if poisson(rng, 0.01) == 0 {
			zero++
		}
	}
	if zero < 950 {
		t.Fatalf("λ=0.01 should almost always yield 0, got %d/1000 zeros", zero)
	}
}

func TestSamplePlansShape(t *testing.T) {
	rng := matrix.NewRNG(3)
	cell := Cell{N: 254, NB: 32, Lambda: 3, MinBit: 20, MaxBit: 62}
	total := 0
	for i := 0; i < 200; i++ {
		for _, p := range samplePlans(rng, cell, 6) {
			total++
			if p.TargetIter < 0 || p.TargetIter >= 6 {
				t.Fatalf("iteration out of range: %+v", p)
			}
			if !p.BitFlip || p.Bit < 20 || p.Bit > 62 {
				t.Fatalf("bad bit plan: %+v", p)
			}
		}
	}
	if total < 400 || total > 800 {
		t.Fatalf("λ=3 over 200 runs gave %d plans, expected ≈600", total)
	}
}

func TestSamplePlansRegions(t *testing.T) {
	for region, allowed := range map[fault.Region]map[fault.Area]bool{
		fault.RegionH:     {fault.Area1: true, fault.Area2: true},
		fault.RegionQ:     {fault.Area3: true},
		fault.RegionPanel: {fault.AreaPanel: true},
	} {
		rng := matrix.NewRNG(11)
		cell := Cell{N: 254, NB: 32, Lambda: 2, MinBit: 20, MaxBit: 62, Region: region}
		seen := 0
		for i := 0; i < 100; i++ {
			for _, p := range samplePlans(rng, cell, 6) {
				seen++
				if !allowed[p.Area] {
					t.Fatalf("region %s sampled area %s", region, p.Area)
				}
				if region == fault.RegionQ && p.TargetIter == 0 {
					t.Fatalf("region q sampled iteration 0")
				}
			}
		}
		if seen == 0 {
			t.Fatalf("region %s sampled no plans", region)
		}
	}
}

func TestDeriveTrialSeedIndependent(t *testing.T) {
	seen := map[uint64]bool{}
	for cell := 0; cell < 8; cell++ {
		for trial := 0; trial < 64; trial++ {
			s := deriveTrialSeed(42, cell, trial)
			if seen[s] {
				t.Fatalf("seed collision at cell %d trial %d", cell, trial)
			}
			seen[s] = true
			if s != deriveTrialSeed(42, cell, trial) {
				t.Fatal("seed derivation is not a pure function")
			}
		}
	}
}

func TestRunCampaignSmall(t *testing.T) {
	rep, err := Run(Config{N: 126, NB: 16, Trials: 12, Lambda: 1.0, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Trials) != 12 {
		t.Fatalf("%d trials", len(rep.Trials))
	}
	// The scheme's purpose: no silent corruption.
	if rep.ByOutcome[SilentCorrupt] != 0 {
		for _, tr := range rep.Trials {
			if tr.Outcome == SilentCorrupt {
				t.Fatalf("silent corruption: injections %+v residual %v", tr.Injections, tr.Residual)
			}
		}
	}
	// With λ=1 over 12 trials, some errors must have been injected and
	// handled.
	if rep.Injections == 0 {
		t.Fatal("campaign injected nothing")
	}
	if rep.ByOutcome[Recovered]+rep.ByOutcome[SilentBenign]+rep.ByOutcome[Uncorrectable] == 0 {
		t.Fatalf("no faulted trial completed: %+v", rep.ByOutcome)
	}
	var b bytes.Buffer
	rep.Print(&b)
	if !strings.Contains(b.String(), "recovered") {
		t.Fatalf("report output:\n%s", b.String())
	}
}

func TestJSONFloatRoundTrip(t *testing.T) {
	for _, v := range []float64{0, 1.5e-17, math.Inf(1), math.Inf(-1), math.NaN()} {
		rec := TrialRecord{Residual: JSONFloat(v)}
		var buf bytes.Buffer
		if err := writeTrialRecord(&buf, rec); err != nil {
			t.Fatalf("residual %v does not serialize: %v", v, err)
		}
		var back TrialRecord
		if err := json.Unmarshal(bytes.TrimSpace(buf.Bytes()), &back); err != nil {
			t.Fatal(err)
		}
		got := float64(back.Residual)
		if got != v && !(math.IsNaN(got) && math.IsNaN(v)) {
			t.Fatalf("residual %v round-tripped to %v", v, got)
		}
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
}

func TestOutcomeString(t *testing.T) {
	for o, want := range map[Outcome]string{
		CleanPass: "clean-pass", Recovered: "recovered", SilentBenign: "silent-benign",
		SilentCorrupt: "silent-corrupt", Uncorrectable: "uncorrectable",
	} {
		if o.String() != want {
			t.Fatalf("%d prints %q", o, o.String())
		}
	}
}
