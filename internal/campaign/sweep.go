package campaign

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/fault"
	"repro/internal/ft"
	"repro/internal/matrix"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Cell is one grid point of a sweep: a fully specified fault-injection
// configuration. Cells are numbered in canonical grid order (N outermost,
// then NB, lambda, region, bit range, device count, schedule, kill rate,
// substrate),
// and that numbering — together with the sweep seed — fixes every trial's
// random stream.
type Cell struct {
	Index  int          `json:"cell"`
	N      int          `json:"n"`
	NB     int          `json:"nb"`
	Lambda float64      `json:"lambda"`
	Region fault.Region `json:"region"`
	MinBit uint         `json:"min_bit"`
	MaxBit uint         `json:"max_bit"`
	// Devices selects the execution substrate: 0 runs the legacy
	// single-device schedule, k ≥ 1 a k-device pool with per-slab ABFT
	// (the multi-device path is bit-identical across pool sizes, so a
	// devices axis separates substrate effects from fault coverage).
	Devices int `json:"devices,omitempty"`
	// NoLookahead disables the depth-1 lookahead for the cell's trials.
	// The default schedule factors panel k+1 under trailing update k;
	// both compute bit-identical results, so this axis separates the
	// schedule's effect on modeled time from fault coverage — which the
	// split checksum algebra must keep unchanged.
	NoLookahead bool `json:"no_lookahead,omitempty"`
	// KillRate is the per-trial probability of one fail-stop device loss
	// (uniform iteration, device, and kill window). A non-zero rate on a
	// device-pool cell also enables parity-based fail-stop recovery
	// (DESIGN.md §13), so its trials measure loss survival; on a
	// single-device cell a sampled kill is always fatal (uncorrectable).
	KillRate float64 `json:"kill_rate,omitempty"`
	// Substrate selects the BLAS fault-tolerance substrate: "" (the
	// default sweeps-only configuration, kept empty so old journals
	// resume-match it) or ft.SubstrateFused, which verifies every device
	// BLAS call in-kernel and refreshes the panel-slab halo
	// incrementally. Bit-identical results; the axis separates per-call
	// detection from the iteration-boundary sweeps' fault coverage.
	Substrate string `json:"substrate,omitempty"`
}

// SubstrateName returns the cell's substrate for display: "swept" for the
// default empty value, the literal name otherwise.
func (c Cell) SubstrateName() string {
	if c.Substrate == "" {
		return "swept"
	}
	return c.Substrate
}

// Schedule names the cell's update schedule (ScheduleLookahead or
// ScheduleSerial).
func (c Cell) Schedule() string {
	if c.NoLookahead {
		return ScheduleSerial
	}
	return ScheduleLookahead
}

// The two update schedules a cell can run: the default depth-1 lookahead
// and the serial (lookahead-off) order. Bit-identical results either way;
// only the modeled time differs.
const (
	ScheduleLookahead = "lookahead"
	ScheduleSerial    = "serial"
)

// Sweep runs a grid of campaign cells on a bounded worker pool.
type Sweep struct {
	// Ns is the grid of matrix orders (required, each > 0).
	Ns []int
	// NBs is the grid of block sizes (default {32}).
	NBs []int
	// Lambdas is the grid of expected error counts per run (default {1}).
	Lambdas []float64
	// Regions is the grid of target regions (default {fault.RegionAll}).
	Regions []fault.Region
	// BitRanges is the grid of inclusive [min, max] flipped-bit ranges
	// (default {{20, 62}}).
	BitRanges [][2]uint
	// DeviceCounts is the grid of simulated device-pool sizes (default
	// {0} = the legacy single-device schedule; see Cell.Devices).
	DeviceCounts []int
	// Schedules is the grid of update schedules: ScheduleLookahead
	// and/or ScheduleSerial (default {ScheduleLookahead}).
	Schedules []string
	// KillRates is the grid of fail-stop device-loss probabilities per
	// trial (default {0} = no losses; see Cell.KillRate).
	KillRates []float64
	// Substrates is the grid of BLAS FT substrates: "swept" (or "",
	// normalized to "" so old journals resume-match) and/or "fused"
	// (default {"swept"}; see Cell.Substrate).
	Substrates []string
	// TrialsPerCell is the number of independent runs per cell (required).
	TrialsPerCell int
	// Seed fixes every trial's random stream (with the cell and trial
	// indices); the same seed reproduces the sweep bitwise.
	Seed uint64
	// Workers bounds the trial-level parallelism (default 1). Results are
	// bitwise identical at any worker count.
	Workers int
	// ResidualTol classifies a result as correct (default 1e-12).
	ResidualTol float64
	// Params calibrates the simulated device (sim.K40c() if zero).
	Params sim.Params
	// TrialSink, if set, receives one JSON line per completed trial, in
	// canonical (cell, trial) order, flushed as the completed prefix
	// grows — the resumable artifact.
	TrialSink io.Writer
	// Resume holds trial records from a previous partial run (see
	// LoadTrialJSONL); matching trials are reused instead of re-executed
	// and are not re-emitted to TrialSink.
	Resume map[TrialKey]TrialRecord
	// Obs, if set, receives campaign_trials_total{outcome},
	// campaign_injections_total, campaign_cells_total and the
	// campaign_seconds gauge.
	Obs *obs.Registry
	// Progress, if set, is called after every completed trial with the
	// done and total counts (serialized; cheap work only).
	Progress func(done, total int)
	// Triage re-runs every failed trial (SilentCorrupt / Uncorrectable)
	// with an FT event journal attached and embeds the minimal repro in
	// the cell report (default on via RunSweep; set by Run()).
	Triage bool

	// mats caches the shared read-only input matrix per order N.
	mats map[int]*matrix.Matrix
}

// TrialKey identifies one trial of one cell within a sweep.
type TrialKey struct {
	Cell  int
	Trial int
}

// CellReport aggregates one cell's trials.
type CellReport struct {
	Cell   Cell           `json:"cell_config"`
	Trials int            `json:"trials"`
	ByName map[string]int `json:"outcomes"`

	Injections   int `json:"injections"`
	Detections   int `json:"detections"`
	Recoveries   int `json:"recoveries"`
	Reexecutions int `json:"reexecutions"`
	QCorrections int `json:"q_corrections"`
	// Fail-stop tallies (kill-rate cells): permanent device deaths across
	// the cell's trials and the parity reconstructions that survived them.
	DeviceLosses       int `json:"device_losses,omitempty"`
	FailStopRecoveries int `json:"failstop_recoveries,omitempty"`
	// Fused-substrate tallies (substrate "fused" cells): per-call
	// in-kernel verifications and detections across the cell's trials.
	SubstrateChecks     int `json:"substrate_checks,omitempty"`
	SubstrateDetections int `json:"substrate_detections,omitempty"`

	// FaultedTrials counts trials with ≥1 injection; DetectedTrials the
	// subset where the scheme reacted (a detection, a Q correction, or an
	// explicit Uncorrectable report). Coverage is their ratio.
	FaultedTrials  int     `json:"faulted_trials"`
	DetectedTrials int     `json:"detected_trials"`
	Coverage       float64 `json:"coverage"`

	WorstResidual JSONFloat `json:"worst_residual"`

	// Overhead of carrying faults: mean simulated seconds of the faulted
	// trials against the clean-run baseline for the same (N, NB).
	MeanFaultedSimSeconds float64 `json:"mean_faulted_sim_seconds"`
	BaselineSimSeconds    float64 `json:"baseline_sim_seconds"`
	OverheadPct           float64 `json:"overhead_pct"`

	// Repros holds the minimal reproduction records (with captured FT
	// event journals) of every failed trial in this cell.
	Repros []Repro `json:"repros,omitempty"`

	outcomes [numOutcomes]int
}

// Outcome reads one outcome's count.
func (c *CellReport) Outcome(o Outcome) int { return c.outcomes[o] }

// SweepReport aggregates a full sweep.
type SweepReport struct {
	Seed          uint64         `json:"seed"`
	TrialsPerCell int            `json:"trials_per_cell"`
	Cells         []CellReport   `json:"cells"`
	TotalTrials   int            `json:"total_trials"`
	Injections    int            `json:"total_injections"`
	ByName        map[string]int `json:"outcomes"`
	// WallSeconds is the only nondeterministic field; it is excluded from
	// the bench artifact so that artifact stays bitwise reproducible.
	WallSeconds float64 `json:"-"`

	outcomes [numOutcomes]int
	results  [][]trialResult
}

// Outcome reads one outcome's total count across all cells.
func (r *SweepReport) Outcome(o Outcome) int { return r.outcomes[o] }

// Record adds one trial with the given outcome to the aggregate tallies.
// The engine uses it internally; tests use it to fabricate reports.
func (r *SweepReport) Record(o Outcome) {
	r.outcomes[o]++
	if r.ByName == nil {
		r.ByName = map[string]int{}
	}
	r.ByName[o.String()]++
}

// cells expands the grid in canonical order.
func (s *Sweep) cells() []Cell {
	var out []Cell
	for _, n := range s.Ns {
		for _, nb := range s.NBs {
			for _, lam := range s.Lambdas {
				for _, reg := range s.Regions {
					for _, br := range s.BitRanges {
						for _, dk := range s.DeviceCounts {
							for _, sched := range s.Schedules {
								for _, kr := range s.KillRates {
									for _, sub := range s.Substrates {
										out = append(out, Cell{
											Index: len(out), N: n, NB: nb, Lambda: lam,
											Region: reg, MinBit: br[0], MaxBit: br[1],
											Devices:     dk,
											NoLookahead: sched == ScheduleSerial,
											KillRate:    kr,
											Substrate:   sub,
										})
									}
								}
							}
						}
					}
				}
			}
		}
	}
	return out
}

// validate fills defaults and rejects impossible grids.
func (s *Sweep) validate() error {
	if len(s.Ns) == 0 {
		return errors.New("campaign: sweep needs at least one N")
	}
	for _, n := range s.Ns {
		if n <= 1 {
			return fmt.Errorf("campaign: invalid N %d", n)
		}
	}
	if s.TrialsPerCell <= 0 {
		return errors.New("campaign: TrialsPerCell must be positive")
	}
	if len(s.NBs) == 0 {
		s.NBs = []int{32}
	}
	for _, nb := range s.NBs {
		if nb <= 0 {
			return fmt.Errorf("campaign: invalid NB %d", nb)
		}
	}
	if len(s.Lambdas) == 0 {
		s.Lambdas = []float64{1}
	}
	for _, l := range s.Lambdas {
		if l <= 0 {
			return fmt.Errorf("campaign: invalid lambda %g", l)
		}
	}
	if len(s.Regions) == 0 {
		s.Regions = []fault.Region{fault.RegionAll}
	}
	if len(s.BitRanges) == 0 {
		s.BitRanges = [][2]uint{{20, 62}}
	}
	for _, br := range s.BitRanges {
		if br[0] > br[1] || br[1] > 63 {
			return fmt.Errorf("campaign: invalid bit range %d..%d", br[0], br[1])
		}
	}
	if len(s.DeviceCounts) == 0 {
		s.DeviceCounts = []int{0}
	}
	for _, dk := range s.DeviceCounts {
		if dk < 0 || dk > 64 {
			return fmt.Errorf("campaign: invalid device count %d", dk)
		}
	}
	if len(s.Schedules) == 0 {
		s.Schedules = []string{ScheduleLookahead}
	}
	for _, sched := range s.Schedules {
		if sched != ScheduleLookahead && sched != ScheduleSerial {
			return fmt.Errorf("campaign: unknown schedule %q (want %s or %s)",
				sched, ScheduleLookahead, ScheduleSerial)
		}
	}
	if len(s.KillRates) == 0 {
		s.KillRates = []float64{0}
	}
	for _, kr := range s.KillRates {
		if kr < 0 || kr > 1 {
			return fmt.Errorf("campaign: invalid kill rate %g (want 0..1)", kr)
		}
	}
	if len(s.Substrates) == 0 {
		s.Substrates = []string{""}
	}
	for i, sub := range s.Substrates {
		switch sub {
		case "", ft.SubstrateSwept:
			// Normalize so default-substrate records stay byte-compatible
			// with journals written before the axis existed.
			s.Substrates[i] = ""
		case ft.SubstrateFused:
		default:
			return fmt.Errorf("campaign: unknown substrate %q (want %s or %s)",
				sub, ft.SubstrateSwept, ft.SubstrateFused)
		}
	}
	if s.ResidualTol <= 0 {
		s.ResidualTol = 1e-12
	}
	if s.Params == (sim.Params{}) {
		s.Params = sim.K40c()
	}
	if s.Workers <= 0 {
		s.Workers = 1
	}
	return nil
}

// Run executes the sweep: expand the grid, fan trials out over the worker
// pool, aggregate per-cell reports, and (when Triage is set) capture a
// journaled re-run of every failed trial.
func (s *Sweep) Run() (*SweepReport, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	start := time.Now()
	cells := s.cells()
	results, err := s.runTrials(cells)
	if err != nil {
		return nil, err
	}

	rep := &SweepReport{
		Seed:          s.Seed,
		TrialsPerCell: s.TrialsPerCell,
		ByName:        map[string]int{},
		results:       results,
	}
	baselines := s.baselines(cells)
	for ci, cell := range cells {
		cr := aggregateCell(cell, results[ci], baselines[baseKey{cell.N, cell.NB, cell.Devices, cell.NoLookahead, cell.Substrate}])
		if s.Triage {
			for _, res := range results[ci] {
				o := res.record.outcome()
				if o == SilentCorrupt || o == Uncorrectable {
					cr.Repros = append(cr.Repros, s.triage(cell, res.record))
				}
			}
		}
		rep.Cells = append(rep.Cells, cr)
		rep.TotalTrials += cr.Trials
		rep.Injections += cr.Injections
		for o := 0; o < numOutcomes; o++ {
			rep.outcomes[o] += cr.outcomes[o]
			rep.ByName[Outcome(o).String()] = rep.outcomes[o]
		}
	}
	rep.WallSeconds = time.Since(start).Seconds()

	if s.Obs != nil {
		for o := 0; o < numOutcomes; o++ {
			s.Obs.Counter("campaign_trials_total", obs.L("outcome", Outcome(o).String())).
				Add(float64(rep.outcomes[o]))
		}
		s.Obs.Counter("campaign_injections_total").Add(float64(rep.Injections))
		s.Obs.Counter("campaign_cells_total").Add(float64(len(cells)))
		s.Obs.Gauge("campaign_seconds").Set(rep.WallSeconds)
	}
	return rep, nil
}

// aggregateCell folds one cell's trial records (in trial order, so every
// floating-point reduction has a fixed association order).
func aggregateCell(cell Cell, results []trialResult, baseline float64) CellReport {
	cr := CellReport{Cell: cell, ByName: map[string]int{}}
	faultedSim := 0.0
	faultedRuns := 0
	for _, res := range results {
		r := res.record
		o := r.outcome()
		cr.Trials++
		cr.outcomes[o]++
		cr.Injections += r.Injections
		cr.Detections += r.Detections
		cr.Recoveries += r.Recoveries
		cr.Reexecutions += r.Reexecutions
		cr.QCorrections += r.QCorrections
		cr.DeviceLosses += r.DeviceLosses
		cr.FailStopRecoveries += r.FailStopRecoveries
		cr.SubstrateChecks += r.SubstrateChecks
		cr.SubstrateDetections += r.SubstrateDetections
		if r.Residual > cr.WorstResidual {
			cr.WorstResidual = r.Residual
		}
		if r.Injections > 0 || r.DeviceLosses > 0 {
			cr.FaultedTrials++
			if r.Detections > 0 || r.QCorrections > 0 || r.FailStopRecoveries > 0 || o == Uncorrectable {
				cr.DetectedTrials++
			}
			if r.Err == "" && r.SimSeconds > 0 {
				faultedSim += r.SimSeconds
				faultedRuns++
			}
		}
	}
	for o := 0; o < numOutcomes; o++ {
		cr.ByName[Outcome(o).String()] = cr.outcomes[o]
	}
	if cr.FaultedTrials > 0 {
		cr.Coverage = float64(cr.DetectedTrials) / float64(cr.FaultedTrials)
	}
	cr.BaselineSimSeconds = baseline
	if faultedRuns > 0 {
		cr.MeanFaultedSimSeconds = faultedSim / float64(faultedRuns)
		if baseline > 0 {
			cr.OverheadPct = 100 * (cr.MeanFaultedSimSeconds/baseline - 1)
		}
	}
	return cr
}

// RunSweep is the convenience entry point used by cmd/campaign: triage on,
// everything else as configured.
func RunSweep(s *Sweep) (*SweepReport, error) {
	s.Triage = true
	return s.Run()
}

// Print writes the sweep's aggregate report (deterministic: identical
// bytes for identical seeds at any worker count).
func (r *SweepReport) Print(w io.Writer) {
	fmt.Fprintf(w, "Soft-error sweep campaign: %d cells × %d trials = %d trials, seed %d\n",
		len(r.Cells), r.TrialsPerCell, r.TotalTrials, r.Seed)
	fmt.Fprintf(w, "%6s %6s %4s %3s %-9s %-5s %5s %7s %-6s %7s | %6s %6s %6s %6s %6s | %8s %9s %9s\n",
		"cell", "N", "nb", "K", "sched", "sub", "krate", "lambda", "region", "bits", "clean", "recov", "benign", "corrpt", "uncorr", "coverage", "overhead", "worst-res")
	for _, c := range r.Cells {
		fmt.Fprintf(w, "%6d %6d %4d %3d %-9s %-5s %5.2f %7.2f %-6s %3d..%2d | %6d %6d %6d %6d %6d | %7.1f%% %8.2f%% %9.2e\n",
			c.Cell.Index, c.Cell.N, c.Cell.NB, c.Cell.Devices, c.Cell.Schedule(), c.Cell.SubstrateName(), c.Cell.KillRate, c.Cell.Lambda, c.Cell.Region,
			c.Cell.MinBit, c.Cell.MaxBit,
			c.Outcome(CleanPass), c.Outcome(Recovered), c.Outcome(SilentBenign),
			c.Outcome(SilentCorrupt), c.Outcome(Uncorrectable),
			100*c.Coverage, c.OverheadPct, c.WorstResidual)
	}
	fmt.Fprintf(w, "totals: %d injections across %d trials\n", r.Injections, r.TotalTrials)
	names := make([]string, 0, len(r.ByName))
	for name := range r.ByName {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(w, "  %-14s %5d\n", name, r.ByName[name])
	}
}

// benchArtifact is the schema of BENCH_campaign.json. It deliberately
// excludes wall-clock time so the artifact is bitwise reproducible.
type benchArtifact struct {
	Schema        string         `json:"schema"`
	Seed          uint64         `json:"seed"`
	TrialsPerCell int            `json:"trials_per_cell"`
	TotalTrials   int            `json:"total_trials"`
	Injections    int            `json:"total_injections"`
	Outcomes      map[string]int `json:"outcomes"`
	Cells         []CellReport   `json:"cells"`
}

// WriteBenchJSON writes the machine-readable BENCH_campaign.json artifact.
func (r *SweepReport) WriteBenchJSON(w io.Writer) error {
	art := benchArtifact{
		Schema:        "ft-hess/campaign/v1",
		Seed:          r.Seed,
		TrialsPerCell: r.TrialsPerCell,
		TotalTrials:   r.TotalTrials,
		Injections:    r.Injections,
		Outcomes:      r.ByName,
		Cells:         r.Cells,
	}
	b, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}
