package campaign

import (
	"bufio"
	"encoding/json"
	"errors"
	"io"

	"repro/internal/fault"
	"repro/internal/obs"
)

// The machine-readable trial stream: one JSON object per trial, written in
// canonical (cell-major, trial-minor) order. The file doubles as the
// resume journal — LoadTrialJSONL turns a partial file back into the
// Sweep.Resume map, and a resumed sweep appends only the missing records.

// JSONFloat is a float64 that round-trips the non-finite values JSON
// cannot represent: an exponent-bit flip can push a trial's residual to
// ±Inf or NaN (the detector refuses such runs, but the record must still
// serialize). See obs.Float for the encoding.
type JSONFloat = obs.Float

// InjectionSummary describes one planned error of a trial: enough, with
// the trial seed, to replay the trial exactly.
type InjectionSummary struct {
	Iter int    `json:"iter"`
	Area string `json:"area"`
	Bit  uint   `json:"bit"`
}

// TrialRecord is one JSONL line: the cell coordinates, the trial's derived
// seed, and everything measured.
type TrialRecord struct {
	Cell   int          `json:"cell"`
	N      int          `json:"n"`
	NB     int          `json:"nb"`
	Lambda float64      `json:"lambda"`
	Region fault.Region `json:"region"`
	MinBit uint         `json:"min_bit"`
	MaxBit uint         `json:"max_bit"`
	// Devices is the cell's device-pool size (0 = the legacy
	// single-device schedule); omitted from old records, which therefore
	// resume-match only single-device cells.
	Devices int `json:"devices,omitempty"`
	// NoLookahead marks a trial run with the depth-1 lookahead schedule
	// disabled; omitted from old records and from default-schedule
	// trials, which therefore resume-match only lookahead cells.
	NoLookahead bool `json:"no_lookahead,omitempty"`
	// KillRate is the cell's fail-stop device-loss probability; omitted
	// from old records, which therefore resume-match only no-kill cells.
	KillRate float64 `json:"kill_rate,omitempty"`
	// Substrate is the cell's BLAS FT substrate ("" = sweeps-only);
	// omitted from old records, which therefore resume-match only
	// default-substrate cells.
	Substrate string `json:"substrate,omitempty"`
	Trial     int    `json:"trial"`
	Seed      uint64 `json:"seed"`

	Outcome string             `json:"outcome"`
	Plans   []InjectionSummary `json:"plans,omitempty"`
	// Injections counts performed corruptions (a plan can be void, e.g.
	// Area 3 before any panel has finished).
	Injections   int `json:"injections"`
	Detections   int `json:"detections"`
	Recoveries   int `json:"recoveries"`
	Reexecutions int `json:"reexecutions"`
	QCorrections int `json:"q_corrections"`
	// The trial's sampled fail-stop kill (kill-rate cells with a loss
	// drawn): where the device died and whether parity recovered it.
	KillIter           int    `json:"kill_iter,omitempty"`
	KillPoint          string `json:"kill_point,omitempty"`
	KillDevice         int    `json:"kill_device,omitempty"`
	DeviceLosses       int    `json:"device_losses,omitempty"`
	FailStopRecoveries int    `json:"failstop_recoveries,omitempty"`
	// Fused-substrate tallies (substrate "fused" cells only): per-call
	// in-kernel checksum verifications and detections.
	SubstrateChecks     int       `json:"substrate_checks,omitempty"`
	SubstrateDetections int       `json:"substrate_detections,omitempty"`
	Residual            JSONFloat `json:"residual"`
	SimSeconds          float64   `json:"sim_seconds"`
	Err                 string    `json:"err,omitempty"`

	out Outcome
}

// outcome returns the parsed Outcome (set at creation or load time).
func (r TrialRecord) outcome() Outcome { return r.out }

// toTrial reconstructs the in-memory Trial view of a resumed record.
func (r TrialRecord) toTrial() Trial {
	t := Trial{
		Outcome:    r.out,
		Seed:       r.Seed,
		Injections: r.Plans,
		Detections: r.Detections,
		Recoveries: r.Recoveries,
		Residual:   float64(r.Residual),
	}
	if r.Err != "" {
		t.Err = errors.New(r.Err)
	}
	return t
}

// writeTrialRecord emits one JSONL line.
func writeTrialRecord(w io.Writer, rec TrialRecord) error {
	b, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// LoadTrialJSONL reads a (possibly partial) trial stream back into the
// resume map keyed by (cell, trial). Unparsable lines — e.g. a record
// truncated by an interrupted run — and records that ended in an error are
// skipped, so the corresponding trials re-execute.
func LoadTrialJSONL(r io.Reader) (map[TrialKey]TrialRecord, error) {
	out := map[TrialKey]TrialRecord{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec TrialRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			continue
		}
		if rec.Err != "" {
			continue
		}
		o, err := ParseOutcome(rec.Outcome)
		if err != nil {
			continue
		}
		rec.out = o
		out[TrialKey{Cell: rec.Cell, Trial: rec.Trial}] = rec
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
