// Package ftsym extends the paper's fault-tolerance methodology to the
// symmetric tridiagonal reduction DSYTRD — the first item of the paper's
// future work ("provide soft error resilience for the rest of the hybrid
// two-sided factorizations").
//
// The Hessenberg paper's O(N) detector compares the total of a maintained
// checksum row against a maintained checksum column. That shortcut is
// provably blind for the symmetric kernel: the row and column checksums
// of a symmetric matrix are maintained through *identical* intermediates
// (eᵀV and Vᵀe are the same vector), so their totals never diverge.
// Instead, this package maintains one checksum vector over the active
// trailing block,
//
//	c(i) = Σ_{j≥p} A(i, j)   (mathematical row sums, symmetry-expanded),
//
// updates it through each blocked iteration with the retained panel
// factors (c' = c − V·(Wᵀe) − W·(Vᵀe), matching the trailing update
// A' = A − V·Wᵀ − W·Vᵀ), and detects by comparing freshly computed block
// row sums against the maintained vector — an O(n²)-per-iteration check
// that amortizes to ≈ 3/(4·nb) of the reduction's 4/3·N³ flops.
//
// The recovery pipeline is the paper's, unchanged: reverse the trailing
// update with the retained V and W (a sign flip of the same SYR2K),
// restore the panel from the diskless checkpoint, locate the error from
// the checksum residuals (a symmetric single-element error flags exactly
// the two rows i₀ and j₀ with equal residuals — and, unlike the
// Hessenberg detector, a diagonal error is locatable too), correct, and
// re-execute the iteration.
package ftsym

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/blas"
	"repro/internal/ft"
	"repro/internal/gpu"
	"repro/internal/lapack"
	"repro/internal/matrix"
	"repro/internal/obs"
)

const macheps = 2.220446049250313e-16

// ErrUncorrectable mirrors ft.ErrUncorrectable for the symmetric path.
var ErrUncorrectable = errors.New("ftsym: detected errors are not correctable")

// ErrRetriesExhausted reports persistent detection on one iteration.
var ErrRetriesExhausted = errors.New("ftsym: recovery retries exhausted")

// ErrMultiDeviceUnsupported reports that Options.Devices was set: the
// symmetric reduction has no multi-device path (see Options.Devices).
var ErrMultiDeviceUnsupported = errors.New("ftsym: multi-device pools are not supported for the symmetric reduction")

// Hook lets campaigns inject faults at iteration boundaries. The stored
// lower triangle of the working matrix is exposed directly (this is a
// host-side algorithm; on the hybrid platform the same hook would poke
// device memory as in internal/fault).
type Hook interface {
	// BeforeIteration may corrupt w's stored lower triangle (rows/cols
	// ≥ panel are active; entries with row < col are never read).
	BeforeIteration(iter, panel int, w *matrix.Matrix)
}

// Options configures the resilient reduction.
type Options struct {
	// Ctx, when non-nil, cancels the reduction: it is checked at every
	// blocked-iteration boundary (including recovery re-executions), so
	// cancellation is observed within one iteration and Reduce returns
	// ctx.Err(). This is a host-only algorithm; the BLAS pool is left
	// idle and reusable.
	Ctx context.Context
	// NB is the block size (32 if zero).
	NB int
	// ThresholdFactor scales τ = ThresholdFactor·ε·N·‖A‖₁ (default 200).
	ThresholdFactor float64
	// MaxRecoveries bounds recovery attempts per iteration (default 3).
	MaxRecoveries int
	// Hook receives iteration-boundary callbacks.
	Hook Hook
	// Obs, if set, receives ftsym_* counters (checks, detections,
	// corrections, recoveries, re-executions).
	Obs *obs.Registry
	// Journal, if set, receives typed FT event records. This is a
	// host-only algorithm without a simulated clock, so SimTime is zero
	// and ordering is carried by the sequence numbers.
	Journal *obs.Journal
	// Trace, if set, scopes the run to a served request: the ftsym_*
	// counters gain a job=<id> label and the reduction appears as a
	// wall-clock span on the context's tracer (mirrors ft.Options.Trace).
	Trace *obs.TraceContext
	// Devices requests the multi-device pool path, mirroring ft.Options.
	// It is not implemented for the symmetric reduction: the lower-
	// triangle storage makes 1-D block-column slabs ragged (slab s owns
	// n−s·W.. rows), which breaks the equal-work partitioning and the
	// per-slab checksum shapes the Hessenberg pool relies on; a
	// triangular/2-D partitioning is tracked in ROADMAP.md. Setting this
	// returns ErrMultiDeviceUnsupported rather than silently running on
	// the host.
	Devices []*gpu.Device
}

// Result carries the tridiagonal factorization and resilience statistics.
type Result struct {
	N, NB int
	// D and E are the diagonal and subdiagonal of T = Qᵀ A Q.
	D, E []float64
	// Packed holds the Householder vectors below the first subdiagonal
	// (the Dorghr-compatible layout) with factors Tau.
	Packed *matrix.Matrix
	Tau    []float64
	// Detections, Recoveries, Corrected report resilience events.
	Detections int
	Recoveries int
	Corrected  []ft.Injection
	// Reexecutions counts blocked iterations repeated after recovery
	// (equals the ftsym_reexecutions_total counter).
	Reexecutions int
}

// Q forms the orthogonal factor explicitly.
func (r *Result) Q() *matrix.Matrix {
	return lapack.Dorghr(r.N, r.Packed.Data, r.Packed.Stride, r.Tau)
}

// T builds the dense tridiagonal factor.
func (r *Result) T() *matrix.Matrix {
	t := matrix.New(r.N, r.N)
	for i := 0; i < r.N; i++ {
		t.Set(i, i, r.D[i])
		if i > 0 {
			t.Set(i, i-1, r.E[i-1])
			t.Set(i-1, i, r.E[i-1])
		}
	}
	return t
}

// symLabels returns the job label set for the run's counters (empty for
// offline runs without a trace context).
func symLabels(opt *Options) []obs.Label {
	if job := opt.Trace.JobID(); job != "" {
		return []obs.Label{obs.L("job", job)}
	}
	return nil
}

// count increments one ftsym counter (no-op without a registry).
func count(opt *Options, name string) {
	opt.Obs.Counter(name, symLabels(opt)...).Inc()
}

// Reduce tridiagonalizes the symmetric matrix a (lower triangle
// referenced, not modified) with transient-error resilience.
func Reduce(a *matrix.Matrix, opt Options) (*Result, error) {
	n := a.Rows
	if n != a.Cols {
		return nil, errors.New("ftsym: matrix must be square")
	}
	if len(opt.Devices) > 0 {
		return nil, ErrMultiDeviceUnsupported
	}
	nb := opt.NB
	if nb <= 0 {
		nb = 32
	}
	if opt.ThresholdFactor <= 0 {
		opt.ThresholdFactor = 200
	}
	if opt.MaxRecoveries <= 0 {
		opt.MaxRecoveries = 3
	}

	w := a.Clone()
	res := &Result{
		N: n, NB: nb,
		D:      make([]float64, n),
		E:      make([]float64, max(n-1, 1)),
		Tau:    make([]float64, max(n-1, 1)),
		Packed: w,
	}
	if n == 0 {
		return res, nil
	}
	if n == 1 {
		res.D[0] = w.At(0, 0)
		return res, nil
	}
	tauDet := opt.ThresholdFactor * macheps * float64(n) * math.Max(symNorm1(w, 0), 1)

	if opt.Obs != nil {
		for _, name := range []string{
			"ftsym_checksum_checks_total", "ftsym_detections_total",
			"ftsym_corrections_total", "ftsym_recoveries_total",
			"ftsym_reexecutions_total",
		} {
			opt.Obs.Counter(name, symLabels(&opt)...)
		}
	}
	sp := opt.Trace.Span("ftsym.reduce", opt.Trace.ParentSpan())
	defer opt.Trace.EndSpan(sp)

	// Encode: maintained checksum over the full matrix (panel start 0).
	chk := symRowSums(w, 0)

	wPanel := matrix.New(n, nb) // DLATRD's W factor (retained for reversal)
	ckPanel := matrix.New(n, nb)

	ctx := opt.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	nx := max(nb, 2)
	p := 0
	iter := 0
	for ; n-p > nx+nb; p += nb {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		if opt.Hook != nil {
			opt.Hook.BeforeIteration(iter, p, w)
		}
		// Diskless checkpoint: the panel columns of the stored lower
		// triangle (the checksum reverses computationally, like the
		// trailing data, and needs no checkpoint).
		for j := 0; j < nb; j++ {
			blas.Dcopy(n-p, w.Data[(p+j)*w.Stride+p:], 1, ckPanel.Data[j*ckPanel.Stride:], 1)
		}
		opt.Journal.Append(obs.Ev(obs.KindCheckpointSave, iter))

		for attempt := 0; ; attempt++ {
			if err := ctx.Err(); err != nil {
				return res, err
			}
			np := n - p
			if attempt > 0 {
				res.Reexecutions++
				count(&opt, "ftsym_reexecutions_total")
				opt.Journal.Append(obs.Ev(obs.KindReexecution, iter))
			}
			// Panel factorization (DLATRD) and trailing SYR2K update.
			lapack.Dlatrd(np, nb, w.Data[p*w.Stride+p:], w.Stride, res.E[p:], res.Tau[p:], wPanel.Data, wPanel.Stride)
			blas.Dsyr2k(blas.Lower, blas.NoTrans, np-nb, nb, -1,
				w.Data[p*w.Stride+p+nb:], w.Stride, wPanel.Data[nb:], wPanel.Stride, 1,
				w.Data[(p+nb)*w.Stride+p+nb:], w.Stride)

			// Maintain the checksum through the block update: chk becomes
			// the next window's row sums (panel contribution removed via
			// the checkpoint, the rank-2k term via the retained V and W).
			maintainChecksum(w, wPanel, ckPanel, chk, p, nb, -1)

			mismatch := detect(w, chk, p, nb, tauDet)
			count(&opt, "ftsym_checksum_checks_total")
			check := obs.Ev(obs.KindChecksumCheck, iter)
			check.Outcome = "clean"
			if mismatch {
				check.Outcome = "mismatch"
			}
			opt.Journal.Append(check)
			if !mismatch {
				break
			}
			res.Detections++
			count(&opt, "ftsym_detections_total")
			opt.Journal.Append(obs.Ev(obs.KindDetection, iter))
			if attempt >= opt.MaxRecoveries {
				return res, fmt.Errorf("%w (iteration %d)", ErrRetriesExhausted, iter)
			}
			// Reverse: the same SYR2K and checksum GEMVs, sign-flipped,
			// then restore the panel from the checkpoint.
			maintainChecksum(w, wPanel, ckPanel, chk, p, nb, +1)
			blas.Dsyr2k(blas.Lower, blas.NoTrans, np-nb, nb, +1,
				w.Data[p*w.Stride+p+nb:], w.Stride, wPanel.Data[nb:], wPanel.Stride, 1,
				w.Data[(p+nb)*w.Stride+p+nb:], w.Stride)
			opt.Journal.Append(obs.Ev(obs.KindReverse, iter))
			for j := 0; j < nb; j++ {
				blas.Dcopy(n-p, ckPanel.Data[j*ckPanel.Stride:], 1, w.Data[(p+j)*w.Stride+p:], 1)
			}
			opt.Journal.Append(obs.Ev(obs.KindCheckpointRestore, iter))
			// Locate and correct from the checksum residuals.
			if err := locateAndCorrect(w, ckPanel, chk, res, p, nb, iter, tauDet, &opt); err != nil {
				return res, err
			}
			res.Recoveries++
			count(&opt, "ftsym_recoveries_total")
		}

		// Finish the panel bookkeeping (as DSYTRD does). The checksum
		// window already advanced inside maintainChecksum.
		for j := p; j < p+nb; j++ {
			w.Data[j*w.Stride+j+1] = res.E[j]
			res.D[j] = w.At(j, j)
		}
		iter++
	}
	if err := ctx.Err(); err != nil {
		return res, err
	}
	// Unblocked remainder.
	lapack.Dsytd2(n-p, w.Data[p*w.Stride+p:], w.Stride, res.D[p:], res.E[p:], res.Tau[p:])
	return res, nil
}

// symNorm1 returns the 1-norm of the symmetric matrix stored in the lower
// triangle of rows/cols ≥ p.
func symNorm1(w *matrix.Matrix, p int) float64 {
	n := w.Rows
	sums := make([]float64, n)
	for j := p; j < n; j++ {
		for i := j; i < n; i++ {
			v := math.Abs(w.At(i, j))
			sums[j] += v
			if i != j {
				sums[i] += v
			}
		}
	}
	m := 0.0
	for _, s := range sums {
		if s > m {
			m = s
		}
	}
	return m
}

// symRowSums returns the mathematical row sums of the symmetric trailing
// block (rows/cols ≥ p), indexed globally.
func symRowSums(w *matrix.Matrix, p int) []float64 {
	n := w.Rows
	sums := make([]float64, n)
	for j := p; j < n; j++ {
		for i := j; i < n; i++ {
			v := w.At(i, j)
			sums[i] += v
			if i != j {
				sums[j] += v
			}
		}
	}
	return sums
}

// maintainChecksum transforms chk from the window-p row sums into the
// window-(p+nb) row sums of the post-update matrix (sign=-1), or back
// (sign=+1): for each trailing row r ≥ nb (local),
//
//	chk(r) += sign·( −Σ_panel ckPanel(r, ·) − V(r,:)·wte − W(r,:)·vte )
//
// where wte/vte are the column sums of W and V over the trailing rows.
// Every quantity is retained (checkpoint, stored V, DLATRD's W), so the
// reversal is a sign flip of the same arithmetic, as in the Hessenberg
// algorithm. (DLATRD uses W's rows above the diagonal as scratch; only
// its trailing rows ≥ nb carry the update factor, and only those enter.)
func maintainChecksum(w *matrix.Matrix, wp *matrix.Matrix, ckPanel *matrix.Matrix, chk []float64, p, nb int, sign float64) {
	n := w.Rows
	np := n - p
	vte := make([]float64, nb) // Σ_{r≥nb} V(r, j): stored values (incl. the literal 1 at (nb, nb-1))
	wte := make([]float64, nb) // Σ_{r≥nb} W(r, j)
	for j := 0; j < nb; j++ {
		sv, sw := 0.0, 0.0
		for r := nb; r < np; r++ {
			sv += w.At(p+r, p+j)
			sw += wp.At(r, j)
		}
		vte[j] = sv
		wte[j] = sw
	}
	for r := nb; r < np; r++ {
		s := 0.0
		for j := 0; j < nb; j++ {
			s += w.At(p+r, p+j)*wte[j] + wp.At(r, j)*vte[j]
			s += ckPanel.At(r, j)
		}
		chk[p+r] += sign * s
	}
}

// detect compares freshly computed row sums of the stored trailing block
// (the next window, columns ≥ p+nb) against the maintained checksum.
// Errors whose entire row/column footprint lies inside the nb×nb panel
// triangle are outside this window — in the hybrid setting that data is
// host-resident and falls under the Q-checksum protection instead.
func detect(w *matrix.Matrix, chk []float64, p, nb int, tol float64) bool {
	n := w.Rows
	fresh := make([]float64, n)
	for j := p + nb; j < n; j++ {
		for i := j; i < n; i++ {
			v := w.At(i, j)
			fresh[i] += v
			if i != j {
				fresh[j] += v
			}
		}
	}
	for i := p + nb; i < n; i++ {
		// NaN (e.g. Inf−Inf after an exponent-bit flip overflows the
		// block) compares false against every tol; a non-finite row sum
		// is itself proof of corruption.
		d := math.Abs(fresh[i] - chk[i])
		if d > tol || math.IsNaN(d) {
			return true
		}
	}
	return false
}

// locateAndCorrect finds the corrupted stored element(s) of the restored
// trailing block from the checksum residuals and repairs them — in the
// working matrix and, for panel columns, in the diskless checkpoint too
// (otherwise the re-execution would restore the corruption).
func locateAndCorrect(w *matrix.Matrix, ckPanel *matrix.Matrix, chk []float64, res *Result, p, nb, iter int, tol float64, opt *Options) error {
	n := w.Rows
	fresh := symRowSums(w, p)
	var rows []int
	rv := make([]float64, n)
	for i := p; i < n; i++ {
		rv[i] = fresh[i] - chk[i]
		if math.Abs(rv[i]) > tol {
			rows = append(rows, i)
		}
	}
	loc := obs.Ev(obs.KindLocation, iter)
	loc.Outcome = fmt.Sprintf("%d rows flagged", len(rows))
	opt.Journal.Append(loc)
	apply := func(i, j int, delta float64) {
		w.Add(i, j, -delta)
		if j >= p && j < p+nb {
			ckPanel.Add(i-p, j-p, -delta)
		}
		res.Corrected = append(res.Corrected, ft.Injection{Row: i, Col: j, Delta: delta, Target: ft.TargetH, Iter: iter})
		count(opt, "ftsym_corrections_total")
		corr := obs.Ev(obs.KindCorrection, iter)
		corr.Row, corr.Col, corr.Value = i, j, obs.Float(delta)
		opt.Journal.Append(corr)
	}
	switch {
	case len(rows) == 0:
		return nil // threshold noise; re-execute
	case len(rows) == 1:
		// Diagonal error: row i flagged once with residual δ.
		apply(rows[0], rows[0], rv[rows[0]])
		return nil
	default:
		// Off-diagonal stored errors flag two rows each with equal
		// residuals; greedily pair equal-valued rows.
		used := make([]bool, len(rows))
		for a := 0; a < len(rows); a++ {
			if used[a] {
				continue
			}
			match := -1
			for b := a + 1; b < len(rows); b++ {
				if used[b] {
					continue
				}
				if math.Abs(rv[rows[a]]-rv[rows[b]]) <= tol {
					if match >= 0 {
						return fmt.Errorf("%w: ambiguous residual pairing", ErrUncorrectable)
					}
					match = b
				}
			}
			if match < 0 {
				// Unpaired: treat as a diagonal error on that row.
				apply(rows[a], rows[a], rv[rows[a]])
				used[a] = true
				continue
			}
			i, j := rows[match], rows[a] // i > j: stored in the lower triangle
			apply(i, j, rv[rows[a]])
			used[a], used[match] = true, true
		}
		return nil
	}
}
