package ftsym

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/gpu"
	"repro/internal/lapack"
	"repro/internal/matrix"
	"repro/internal/sim"
)

func randomSymmetric(n int, seed uint64) *matrix.Matrix {
	a := matrix.Random(n, n, seed)
	for j := 0; j < n; j++ {
		for i := 0; i < j; i++ {
			a.Set(i, j, a.At(j, i))
		}
	}
	return a
}

// residual returns ‖A − Q·T·Qᵀ‖₁/(N‖A‖₁).
func residual(a *matrix.Matrix, r *Result) float64 {
	return lapack.FactorizationResidual(a, r.Q(), r.T())
}

func TestFaultFreeMatchesDsytrd(t *testing.T) {
	for _, tc := range []struct{ n, nb int }{{64, 8}, {100, 16}, {150, 32}} {
		a := randomSymmetric(tc.n, uint64(tc.n))
		res, err := Reduce(a, Options{NB: tc.nb})
		if err != nil {
			t.Fatal(err)
		}
		if res.Detections != 0 {
			t.Fatalf("n=%d: phantom detections %d", tc.n, res.Detections)
		}
		// Reference: plain blocked DSYTRD.
		wref := a.Clone()
		d := make([]float64, tc.n)
		e := make([]float64, tc.n-1)
		tau := make([]float64, tc.n-1)
		lapack.Dsytrd(tc.n, tc.nb, wref.Data, wref.Stride, d, e, tau)
		for i := 0; i < tc.n; i++ {
			if math.Abs(res.D[i]-d[i]) > 1e-11 {
				t.Fatalf("n=%d: d[%d] %v vs %v", tc.n, i, res.D[i], d[i])
			}
		}
		for i := 0; i < tc.n-1; i++ {
			if math.Abs(res.E[i]-e[i]) > 1e-11 {
				t.Fatalf("n=%d: e[%d] %v vs %v", tc.n, i, res.E[i], e[i])
			}
		}
		if r := residual(a, res); r > 1e-14 {
			t.Fatalf("n=%d: residual %v", tc.n, r)
		}
	}
}

// symPokeHook corrupts one stored element at an iteration boundary.
type symPokeHook struct {
	iter     int
	row, col int
	delta    float64
	fired    bool
}

func (h *symPokeHook) BeforeIteration(iter, panel int, w *matrix.Matrix) {
	if iter != h.iter || h.fired {
		return
	}
	h.fired = true
	w.Add(h.row, h.col, h.delta)
}

func TestRecoversOffDiagonalError(t *testing.T) {
	n, nb := 150, 32
	a := randomSymmetric(n, 3)
	hook := &symPokeHook{iter: 1, row: 100, col: 60, delta: 2.0}
	res, err := Reduce(a, Options{NB: nb, Hook: hook})
	if err != nil {
		t.Fatal(err)
	}
	if res.Detections == 0 || res.Recoveries == 0 {
		t.Fatalf("fault not handled: %+v", res)
	}
	if len(res.Corrected) != 1 || res.Corrected[0].Row != 100 || res.Corrected[0].Col != 60 {
		t.Fatalf("correction log %+v", res.Corrected)
	}
	if r := residual(a, res); r > 1e-13 {
		t.Fatalf("residual after recovery %v", r)
	}
}

func TestRecoversDiagonalError(t *testing.T) {
	// The symmetric detector locates diagonal errors — a strict
	// improvement over the Hessenberg Sre/Sce comparison, which is blind
	// to them.
	n, nb := 100, 16
	a := randomSymmetric(n, 5)
	hook := &symPokeHook{iter: 2, row: 70, col: 70, delta: 1.5}
	res, err := Reduce(a, Options{NB: nb, Hook: hook})
	if err != nil {
		t.Fatal(err)
	}
	if res.Recoveries == 0 {
		t.Fatal("diagonal error not recovered")
	}
	if len(res.Corrected) != 1 || res.Corrected[0].Row != 70 || res.Corrected[0].Col != 70 {
		t.Fatalf("correction log %+v", res.Corrected)
	}
	if r := residual(a, res); r > 1e-13 {
		t.Fatalf("residual %v", r)
	}
}

func TestRecoveredMatchesCleanRun(t *testing.T) {
	n, nb := 100, 16
	a := randomSymmetric(n, 7)
	clean, err := Reduce(a, Options{NB: nb})
	if err != nil {
		t.Fatal(err)
	}
	hook := &symPokeHook{iter: 1, row: 50, col: 30, delta: 3}
	dirty, err := Reduce(a, Options{NB: nb, Hook: hook})
	if err != nil {
		t.Fatal(err)
	}
	for i := range clean.D {
		if math.Abs(clean.D[i]-dirty.D[i]) > 1e-10 {
			t.Fatalf("d[%d] differs after recovery: %v vs %v", i, dirty.D[i], clean.D[i])
		}
	}
}

func TestPanelErrorRecovered(t *testing.T) {
	// Error inside the about-to-be-factored panel: the checkpoint is
	// taken after injection, so location must patch the restored state.
	n, nb := 150, 32
	a := randomSymmetric(n, 9)
	hook := &symPokeHook{iter: 1, row: 90, col: 40, delta: 2.5} // col 40 ∈ panel [32,64)
	res, err := Reduce(a, Options{NB: nb, Hook: hook})
	if err != nil {
		t.Fatal(err)
	}
	if res.Recoveries == 0 {
		t.Fatal("panel error not recovered")
	}
	if r := residual(a, res); r > 1e-13 {
		t.Fatalf("residual %v", r)
	}
}

func TestEigenvaluesSurviveFault(t *testing.T) {
	n, nb := 126, 16
	a := randomSymmetric(n, 11)
	clean, err := lapack.SymEigenvalues(a.Data, n, a.Stride, nb)
	if err != nil {
		t.Fatal(err)
	}
	hook := &symPokeHook{iter: 2, row: 80, col: 50, delta: 4}
	res, err := Reduce(a, Options{NB: nb, Hook: hook})
	if err != nil {
		t.Fatal(err)
	}
	d := append([]float64(nil), res.D...)
	e := append([]float64(nil), res.E...)
	if err := lapack.Dsterf(n, d, e); err != nil {
		t.Fatal(err)
	}
	for i := range clean {
		if math.Abs(d[i]-clean[i]) > 1e-9 {
			t.Fatalf("λ_%d drifted: %v vs %v", i, d[i], clean[i])
		}
	}
}

func TestAmbiguousSymErrors(t *testing.T) {
	// Two off-diagonal errors with equal deltas flag four rows with equal
	// residuals — pairing is ambiguous and must be refused.
	n, nb := 100, 16
	a := randomSymmetric(n, 13)
	hookA := &symPokeHook{iter: 1, row: 60, col: 40, delta: 2}
	hookB := &symPokeHook{iter: 1, row: 80, col: 50, delta: 2}
	_, err := Reduce(a, Options{NB: nb, Hook: multiHook{hookA, hookB}})
	if !errors.Is(err, ErrUncorrectable) {
		t.Fatalf("expected ErrUncorrectable, got %v", err)
	}
}

type multiHook []Hook

func (m multiHook) BeforeIteration(iter, panel int, w *matrix.Matrix) {
	for _, h := range m {
		h.BeforeIteration(iter, panel, w)
	}
}

func TestValidation(t *testing.T) {
	if _, err := Reduce(matrix.New(3, 4), Options{}); err == nil {
		t.Fatal("non-square accepted")
	}
	for n := 0; n <= 2; n++ {
		if _, err := Reduce(randomSymmetric(n, 1), Options{NB: 4}); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

// Property: single off-diagonal errors at random positions/iterations are
// always detected and repaired. Positions keep their row in the trailing
// window (row ≥ p+nb): errors whose entire footprint lies inside the
// nb×nb panel triangle are outside the detector's stated coverage (that
// data is host-resident in the hybrid setting; see the package doc).
func TestPropSingleSymErrorRecovered(t *testing.T) {
	f := func(seed uint64) bool {
		n, nb := 100, 16
		a := randomSymmetric(n, seed)
		rng := matrix.NewRNG(seed)
		iter := rng.Intn(3)
		p := iter * nb
		row := p + nb + rng.Intn(n-p-nb)
		col := p + rng.Intn(row-p)
		delta := 0.5 + 5*rng.Float64()
		hook := &symPokeHook{iter: iter, row: row, col: col, delta: delta}
		res, err := Reduce(a, Options{NB: nb, Hook: hook})
		if err != nil {
			t.Logf("seed %d (%d,%d)@%d: %v", seed, row, col, iter, err)
			return false
		}
		if res.Detections == 0 {
			t.Logf("seed %d (%d,%d)@%d: undetected", seed, row, col, iter)
			return false
		}
		if r := residual(a, res); r > 1e-13 {
			t.Logf("seed %d: residual %v", seed, r)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

func TestMultiDeviceUnsupported(t *testing.T) {
	a := matrix.Random(32, 32, 1)
	_, err := Reduce(a, Options{NB: 8, Devices: []*gpu.Device{gpu.New(sim.K40c(), gpu.Real)}})
	if !errors.Is(err, ErrMultiDeviceUnsupported) {
		t.Fatalf("expected ErrMultiDeviceUnsupported, got %v", err)
	}
}
