package gpu

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Execution tracing: when enabled, every kernel, transfer, and host
// operation records its simulated (lane, kind, start, end) span, and the
// whole run can be exported in the Chrome trace-event format
// (chrome://tracing, Perfetto) — the visual counterpart of the paper's
// Figure 1/4 iteration diagrams. Async D2H copies additionally carry flow
// ids linking each copy to the host operation that consumes its data, so
// the panel-offload arrows of Algorithm 2/3 render as flow arrows.

// Span is one traced operation on a simulated lane. FlowOut/FlowIn are
// non-zero when the span is the source/destination of a data-flow arrow
// (an async D2H copy and the host op consuming it).
type Span struct {
	Lane    string  `json:"lane"`
	Kind    string  `json:"kind"`
	Start   float64 `json:"start"` // seconds
	End     float64 `json:"end"`
	FlowOut int     `json:"flow_out,omitempty"`
	FlowIn  int     `json:"flow_in,omitempty"`
}

// EnableTrace starts span recording (call before running an algorithm).
// The initial capacity absorbs a mid-size reduction without reallocating
// (a blocked run records a few thousand spans).
func (d *Device) EnableTrace() {
	d.trace = make([]Span, 0, 4096)
	d.tracing = true
}

// Trace returns the recorded spans.
func (d *Device) Trace() []Span {
	return d.trace
}

// record accounts one charged operation to the metrics registry (always)
// and appends its span to the trace (when tracing).
func (d *Device) record(lane, kind string, end, cost float64) {
	d.account(kind, cost)
	if !d.tracing {
		return
	}
	d.trace = append(d.trace, Span{Lane: lane, Kind: kind, Start: end - cost, End: end})
}

// tagFlowOut marks the most recently recorded span as the source of a new
// data flow completing at instant at; the host op issued after the
// matching Sync becomes the flow's destination.
func (d *Device) tagFlowOut(at float64) {
	if !d.tracing || len(d.trace) == 0 {
		return
	}
	d.flowSeq++
	d.trace[len(d.trace)-1].FlowOut = d.flowSeq
	if d.flowByEvent == nil {
		d.flowByEvent = make(map[float64]int)
	}
	d.flowByEvent[at] = d.flowSeq
}

// noteSync moves a flow whose copy the host just waited on into the
// pending set; the next host op claims it as its FlowIn.
func (d *Device) noteSync(at float64) {
	if !d.tracing || d.flowByEvent == nil {
		return
	}
	if id, ok := d.flowByEvent[at]; ok {
		delete(d.flowByEvent, at)
		d.pendingFlowIn = append(d.pendingFlowIn, id)
	}
}

// claimFlowIn attaches the oldest pending flow to the most recently
// recorded span (a host op that just consumed synced data).
func (d *Device) claimFlowIn() {
	if !d.tracing || len(d.pendingFlowIn) == 0 || len(d.trace) == 0 {
		return
	}
	d.trace[len(d.trace)-1].FlowIn = d.pendingFlowIn[0]
	d.pendingFlowIn = d.pendingFlowIn[1:]
}

// laneTids assigns stable Chrome-trace thread ids: the three standard
// lanes first, then any custom lanes in first-appearance order.
func (d *Device) laneTids() (map[string]int, []string) {
	tids := map[string]int{"host": 0, "gpu-compute": 1, "gpu-copy": 2}
	order := []string{"host", "gpu-compute", "gpu-copy"}
	for _, s := range d.trace {
		if _, ok := tids[s.Lane]; !ok {
			tids[s.Lane] = len(tids)
			order = append(order, s.Lane)
		}
	}
	return tids, order
}

// WriteChromeTrace exports the spans as a Chrome trace-event JSON array
// (timestamps in microseconds): ph:"M" metadata events naming the process
// and one thread per simulated lane, ph:"X" slices for the spans, and
// ph:"s"/"f" flow events for each async D2H copy → consuming host op pair.
func (d *Device) WriteChromeTrace(w io.Writer) error {
	type evt struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		Cat  string         `json:"cat,omitempty"`
		Ts   float64        `json:"ts"`
		Dur  float64        `json:"dur,omitempty"`
		Pid  int            `json:"pid"`
		Tid  int            `json:"tid"`
		ID   int            `json:"id,omitempty"`
		Bp   string         `json:"bp,omitempty"`
		Args map[string]any `json:"args,omitempty"`
	}
	tids, order := d.laneTids()

	// Only emit flow starts whose consuming span exists: a copy whose data
	// no host op ever claimed (e.g. the final cleanup transfer) would
	// otherwise leave a dangling arrow start.
	claimed := make(map[int]bool)
	for _, s := range d.trace {
		if s.FlowIn != 0 {
			claimed[s.FlowIn] = true
		}
	}

	events := make([]evt, 0, len(d.trace)+len(order)+1)
	events = append(events, evt{
		Name: "process_name", Ph: "M", Pid: 1,
		Args: map[string]any{"name": "fthess-sim"},
	})
	for _, lane := range order {
		events = append(events, evt{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: tids[lane],
			Args: map[string]any{"name": lane},
		})
	}
	for _, s := range d.trace {
		tid := tids[s.Lane]
		events = append(events, evt{
			Name: s.Kind, Ph: "X",
			Ts: s.Start * 1e6, Dur: (s.End - s.Start) * 1e6,
			Pid: 1, Tid: tid,
		})
		mid := (s.Start + s.End) / 2 * 1e6
		if s.FlowOut != 0 && claimed[s.FlowOut] {
			events = append(events, evt{
				Name: "d2h", Ph: "s", Cat: "dataflow",
				Ts: mid, Pid: 1, Tid: tid, ID: s.FlowOut,
			})
		}
		if s.FlowIn != 0 {
			events = append(events, evt{
				Name: "d2h", Ph: "f", Cat: "dataflow", Bp: "e",
				Ts: mid, Pid: 1, Tid: tid, ID: s.FlowIn,
			})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(events)
}

// TraceSummary prints one line per lane with span counts and busy time:
// the standard lanes first, then any other recorded lanes in sorted order.
func (d *Device) TraceSummary(w io.Writer) {
	type agg struct {
		count int
		busy  float64
	}
	lanes := map[string]*agg{}
	for _, s := range d.trace {
		a := lanes[s.Lane]
		if a == nil {
			a = &agg{}
			lanes[s.Lane] = a
		}
		a.count++
		a.busy += s.End - s.Start
	}
	known := []string{"host", "gpu-compute", "gpu-copy", "gpu-lookahead"}
	rest := make([]string, 0, len(lanes))
	for lane := range lanes {
		isKnown := false
		for _, k := range known {
			if lane == k {
				isKnown = true
				break
			}
		}
		if !isKnown {
			rest = append(rest, lane)
		}
	}
	sort.Strings(rest)
	for _, lane := range append(known, rest...) {
		if a := lanes[lane]; a != nil {
			fmt.Fprintf(w, "  %-12s %6d spans, %.4fs busy\n", lane, a.count, a.busy)
		}
	}
}
