package gpu

import (
	"encoding/json"
	"fmt"
	"io"
)

// Execution tracing: when enabled, every kernel, transfer, and host
// operation records its simulated (lane, kind, start, end) span, and the
// whole run can be exported in the Chrome trace-event format
// (chrome://tracing, Perfetto) — the visual counterpart of the paper's
// Figure 1/4 iteration diagrams.

// Span is one traced operation on a simulated lane.
type Span struct {
	Lane  string  `json:"lane"`
	Kind  string  `json:"kind"`
	Start float64 `json:"start"` // seconds
	End   float64 `json:"end"`
}

// EnableTrace starts span recording (call before running an algorithm).
func (d *Device) EnableTrace() {
	d.trace = make([]Span, 0, 1024)
	d.tracing = true
}

// Trace returns the recorded spans.
func (d *Device) Trace() []Span {
	return d.trace
}

func (d *Device) record(lane, kind string, end, cost float64) {
	if !d.tracing {
		return
	}
	d.trace = append(d.trace, Span{Lane: lane, Kind: kind, Start: end - cost, End: end})
}

// WriteChromeTrace exports the spans as a Chrome trace-event JSON array
// (timestamps in microseconds; one tid per simulated lane).
func (d *Device) WriteChromeTrace(w io.Writer) error {
	type evt struct {
		Name string  `json:"name"`
		Ph   string  `json:"ph"`
		Ts   float64 `json:"ts"`
		Dur  float64 `json:"dur"`
		Pid  int     `json:"pid"`
		Tid  int     `json:"tid"`
	}
	lanes := map[string]int{"host": 0, "gpu-compute": 1, "gpu-copy": 2}
	events := make([]evt, 0, len(d.trace))
	for _, s := range d.trace {
		tid, ok := lanes[s.Lane]
		if !ok {
			tid = len(lanes)
			lanes[s.Lane] = tid
		}
		events = append(events, evt{
			Name: s.Kind, Ph: "X",
			Ts: s.Start * 1e6, Dur: (s.End - s.Start) * 1e6,
			Pid: 1, Tid: tid,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(events)
}

// TraceSummary prints one line per lane with span counts and busy time.
func (d *Device) TraceSummary(w io.Writer) {
	type agg struct {
		count int
		busy  float64
	}
	lanes := map[string]*agg{}
	for _, s := range d.trace {
		a := lanes[s.Lane]
		if a == nil {
			a = &agg{}
			lanes[s.Lane] = a
		}
		a.count++
		a.busy += s.End - s.Start
	}
	for _, lane := range []string{"host", "gpu-compute", "gpu-copy"} {
		if a := lanes[lane]; a != nil {
			fmt.Fprintf(w, "  %-12s %6d spans, %.4fs busy\n", lane, a.count, a.busy)
		}
	}
}
