package gpu

import "math"

// Soft-error injection into device memory. The paper's failure model
// (Section IV-A) is a transient single-element corruption of the data
// matrix that the factorization does not observe directly; these helpers
// are the "cosmic ray": they mutate a device buffer in place, outside any
// stream ordering, just as a particle strike would.

// Poke adds delta to device element (i, j). Returns the previous value.
// In CostOnly mode it is a no-op returning 0 (the fault campaign drives
// detection decisions instead; see internal/fault).
func (d *Device) Poke(m *Matrix, i, j int, delta float64) float64 {
	if d.Mode != Real {
		return 0
	}
	p := m.ptr(i, j)
	old := p[0]
	p[0] = old + delta
	return old
}

// FlipBit flips the given bit (0 = least significant mantissa bit, 63 =
// sign) of device element (i, j), the classic single-event-upset model.
// Returns the previous value. No-op in CostOnly mode.
func (d *Device) FlipBit(m *Matrix, i, j int, bit uint) float64 {
	if d.Mode != Real {
		return 0
	}
	if bit > 63 {
		panic("gpu: FlipBit bit out of range")
	}
	p := m.ptr(i, j)
	old := p[0]
	p[0] = math.Float64frombits(math.Float64bits(old) ^ (1 << bit))
	return old
}
