package gpu_test

import (
	"context"
	"errors"
	"testing"

	"repro/internal/gpu"
	"repro/internal/hybrid"
	"repro/internal/leakcheck"
	"repro/internal/matrix"
	"repro/internal/sim"
)

// TestDeviceTeardownNoLeak: a full hybrid reduction allocates device
// matrices, drives the three simulated lanes, and fans work out to the
// BLAS pool; once it returns, nothing it started may still be running
// (the pool's resident workers are filtered by leakcheck as by-design).
func TestDeviceTeardownNoLeak(t *testing.T) {
	leakcheck.Check(t)
	dev := gpu.New(sim.K40c(), gpu.Real)
	a := matrix.Random(64, 64, 1)
	if _, err := hybrid.Reduce(a, hybrid.Options{NB: 8, Device: dev}); err != nil {
		t.Fatal(err)
	}
}

// TestDeviceTeardownAfterCancelNoLeak: tearing down mid-reduction via
// context cancel must be just as clean — the device's deferred frees run
// and no goroutine or pool work item is left behind.
func TestDeviceTeardownAfterCancelNoLeak(t *testing.T) {
	leakcheck.Check(t)
	dev := gpu.New(sim.K40c(), gpu.Real)
	a := matrix.Random(64, 64, 2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := hybrid.Reduce(a, hybrid.Options{Ctx: ctx, NB: 8, Device: dev}); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled hybrid.Reduce: %v", err)
	}
	// The same device must still be usable for a full run.
	if _, err := hybrid.Reduce(a, hybrid.Options{NB: 8, Device: dev}); err != nil {
		t.Fatalf("reuse after cancel: %v", err)
	}
}
