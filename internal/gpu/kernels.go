package gpu

import (
	"repro/internal/blas"
	"repro/internal/sim"
)

// Device BLAS kernels. Each call enqueues one kernel on the compute stream
// (FIFO), charges the cost model, and — in Real mode — executes the
// arithmetic on the device buffers. All kernels return their completion
// event so transfers can depend on them.
//
// In Real mode the arithmetic runs on the host BLAS substrate, which is
// itself blocked and pool-parallel (internal/blas): large device Gemm
// calls shard their tile grid across the shared worker pool, bounded by
// blas.SetMaxProcs. Timing remains governed solely by the cost model —
// the simulated clock never observes host wall time — so the pool is a
// pure wall-clock accelerator for Real-mode runs, and results stay
// bitwise identical at every SetMaxProcs setting.

// launch enqueues a kernel of the given duration on the compute stream,
// accounting its cost under the given operation family.
func (d *Device) launch(kind string, cost float64, deps []sim.Event, f func()) sim.Event {
	return d.launchOn(d.Compute, kind, cost, deps, f)
}

// launchOn enqueues a kernel on an explicit stream (Compute for the main
// FIFO, Lookahead for the priority stream of the lookahead schedule).
func (d *Device) launchOn(t *sim.Timeline, kind string, cost float64, deps []sim.Event, f func()) sim.Event {
	d.kernels++
	d.busyByKind[kind] += cost
	deps = append(deps, d.enqueue())
	e := t.Schedule(cost, deps...)
	d.record(t.Name(), kind, e.At, cost)
	if d.Mode == Real && f != nil {
		f()
	}
	return e
}

// ftGemvCostFactor is the modeled premium of the DMR Level-2 kernels: a
// register-level duplicated FMA stream on a bandwidth-bound op re-reads
// nothing, so the FT-BLAS measurements put the slowdown near the ALU
// share of the kernel (~10%).
const ftGemvCostFactor = 1.10

// Gemm enqueues C(ci:ci+m, cj:cj+n) := alpha·op(A)·op(B) + beta·C on the
// compute stream, where op(A) is m×k at (ai, aj) and op(B) is k×n at
// (bi, bj). With the fused-ABFT substrate on (SetSubstrateFused) the
// kernel verifies its own output in the macro-kernel epilogue and is
// charged the modeled checksum premium; detections are accumulated in
// FTStats, never silently dropped. The substrate only detects — GEMM is
// not idempotent, so correction stays with the FT layer's sweep.
func (d *Device) Gemm(tA, tB blas.Transpose, m, n, k int, alpha float64, a *Matrix, ai, aj int, b *Matrix, bi, bj int, beta float64, c *Matrix, ci, cj int, deps ...sim.Event) sim.Event {
	cost := d.Params.GemmDevice(m, n, k)
	if d.fusedFT {
		cost *= 1 + blas.FTGemmOverheadFrac(m, n, k)
	}
	return d.launch("gemm", cost, deps, func() {
		if m == 0 || n == 0 {
			return
		}
		if d.fusedFT {
			res, _ := blas.DgemmFT(tA, tB, m, n, k, alpha, a.ptr(ai, aj), a.Stride, b.ptr(bi, bj), b.Stride, beta, c.ptr(ci, cj), c.Stride)
			d.noteFT(res.Checks, res.Detections, res.NonFinite)
			return
		}
		blas.Dgemm(tA, tB, m, n, k, alpha, a.ptr(ai, aj), a.Stride, b.ptr(bi, bj), b.Stride, beta, c.ptr(ci, cj), c.Stride)
	})
}

// Gemv enqueues y := alpha·op(A)·x + beta·y with A m×n at (ai, aj), x a
// column of xm at (xi, xj), and y a column of ym at (yi, yj). With the
// fused substrate on, the kernel runs under dual modular redundancy
// (blas.DgemvFT) at the modeled ~10% premium.
func (d *Device) Gemv(trans blas.Transpose, m, n int, alpha float64, a *Matrix, ai, aj int, xm *Matrix, xi, xj int, beta float64, ym *Matrix, yi, yj int, deps ...sim.Event) sim.Event {
	cost := d.Params.GemvDevice(m, n)
	if d.fusedFT {
		cost *= ftGemvCostFactor
	}
	return d.launch("gemv", cost, deps, func() {
		if m == 0 || n == 0 {
			return
		}
		if d.fusedFT {
			res, _ := blas.DgemvFT(trans, m, n, alpha, a.ptr(ai, aj), a.Stride, xm.ptr(xi, xj), 1, beta, ym.ptr(yi, yj), 1)
			d.noteFT(res.Checks, res.Detections, res.NonFinite)
			return
		}
		blas.Dgemv(trans, m, n, alpha, a.ptr(ai, aj), a.Stride, xm.ptr(xi, xj), 1, beta, ym.ptr(yi, yj), 1)
	})
}

// GemvLA enqueues the same y := alpha·op(A)·x + beta·y as Gemv, but on the
// lookahead stream instead of the main compute FIFO, with extraCost extra
// modeled seconds folded into the kernel. The lookahead schedule issues the
// next panel's GEMVs here, depending only on the priority part of the
// current trailing update; on real hardware each such GEMV would apply the
// still-pending remainder update to its output as a small correction term,
// and extraCost charges that correction work so the modeled overlap stays
// honest. Real-mode arithmetic is unaffected: kernels execute eagerly in
// program order, and the program still issues the remainder update before
// the next panel factorization runs.
func (d *Device) GemvLA(trans blas.Transpose, m, n int, extraCost float64, alpha float64, a *Matrix, ai, aj int, xm *Matrix, xi, xj int, beta float64, ym *Matrix, yi, yj int, deps ...sim.Event) sim.Event {
	cost := d.Params.GemvDevice(m, n)
	if d.fusedFT {
		cost *= ftGemvCostFactor
	}
	return d.launchOn(d.Lookahead, "gemv", cost+extraCost, deps, func() {
		if m == 0 || n == 0 {
			return
		}
		if d.fusedFT {
			res, _ := blas.DgemvFT(trans, m, n, alpha, a.ptr(ai, aj), a.Stride, xm.ptr(xi, xj), 1, beta, ym.ptr(yi, yj), 1)
			d.noteFT(res.Checks, res.Detections, res.NonFinite)
			return
		}
		blas.Dgemv(trans, m, n, alpha, a.ptr(ai, aj), a.Stride, xm.ptr(xi, xj), 1, beta, ym.ptr(yi, yj), 1)
	})
}

// Trmm enqueues B := alpha·op(T)·B or alpha·B·op(T) with the t×t triangle
// at (ti, tj) of tm and B m×n at (bi, bj).
func (d *Device) Trmm(side blas.Side, uplo blas.Uplo, trans blas.Transpose, diag blas.Diag, m, n int, alpha float64, tm *Matrix, ti, tj int, b *Matrix, bi, bj int, deps ...sim.Event) sim.Event {
	t := m
	if side == blas.Right {
		t = n
	}
	return d.launch("trmm", d.Params.TrmmDevice(m, n, t), deps, func() {
		if m == 0 || n == 0 {
			return
		}
		blas.Dtrmm(side, uplo, trans, diag, m, n, alpha, tm.ptr(ti, tj), tm.Stride, b.ptr(bi, bj), b.Stride)
	})
}

// CopyBlock enqueues a device-to-device copy of an r×c block.
func (d *Device) CopyBlock(dst *Matrix, di, dj int, src *Matrix, si, sj, r, c int, deps ...sim.Event) sim.Event {
	cost := d.Params.KernelLaunchSec + 16*float64(r)*float64(c)/(d.Params.GPUBandwidthGBps*1e9)
	return d.launch("copy", cost, deps, func() {
		for j := 0; j < c; j++ {
			copy(dst.ptr(di, dj+j)[:r], src.ptr(si, sj+j)[:r])
		}
	})
}

// Axpy enqueues y := alpha·x + y over length-n column segments.
func (d *Device) Axpy(n int, alpha float64, xm *Matrix, xi, xj int, ym *Matrix, yi, yj int, deps ...sim.Event) sim.Event {
	return d.launch("vec", d.Params.VecDevice(n), deps, func() {
		if n == 0 {
			return
		}
		blas.Daxpy(n, alpha, xm.ptr(xi, xj), 1, ym.ptr(yi, yj), 1)
	})
}

// Scal enqueues x := alpha·x over a length-n column segment.
func (d *Device) Scal(n int, alpha float64, xm *Matrix, xi, xj int, deps ...sim.Event) sim.Event {
	return d.launch("vec", d.Params.VecDevice(n), deps, func() {
		if n == 0 {
			return
		}
		blas.Dscal(n, alpha, xm.ptr(xi, xj), 1)
	})
}

// Symv enqueues y := alpha·A·x + beta·y for an n×n symmetric matrix
// (uplo triangle stored) at (ai, aj). Bandwidth-bound like GEMV but reads
// only half the matrix.
func (d *Device) Symv(uplo blas.Uplo, n int, alpha float64, a *Matrix, ai, aj int, xm *Matrix, xi, xj int, beta float64, ym *Matrix, yi, yj int, deps ...sim.Event) sim.Event {
	cost := d.Params.KernelLaunchSec + 8*float64(n)*float64(n)/2/(d.Params.GPUBandwidthGBps*1e9)
	return d.launch("gemv", cost, deps, func() {
		if n == 0 {
			return
		}
		blas.Dsymv(uplo, n, alpha, a.ptr(ai, aj), a.Stride, xm.ptr(xi, xj), 1, beta, ym.ptr(yi, yj), 1)
	})
}

// Syr2k enqueues the symmetric rank-2k update C := alpha·A·Bᵀ + alpha·B·Aᵀ
// + beta·C on the uplo triangle of the n×n block at (ci, cj), with A and B
// n×k at (ai, aj) and (bi, bj). This is the trailing update of the blocked
// tridiagonal reduction.
func (d *Device) Syr2k(uplo blas.Uplo, n, k int, alpha float64, a *Matrix, ai, aj int, b *Matrix, bi, bj int, beta float64, c *Matrix, ci, cj int, deps ...sim.Event) sim.Event {
	return d.launch("gemm", d.Params.GemmDevice(n, n, k), deps, func() {
		if n == 0 {
			return
		}
		blas.Dsyr2k(uplo, blas.NoTrans, n, k, alpha, a.ptr(ai, aj), a.Stride, b.ptr(bi, bj), b.Stride, beta, c.ptr(ci, cj), c.Stride)
	})
}

// Custom enqueues an arbitrary device kernel with an explicit modeled
// cost. The fault-tolerant layer uses this for its checksum-maintenance
// kernels (trapezoidal Hessenberg-aware sums) that have no BLAS
// counterpart; on real hardware these would be small custom CUDA kernels.
func (d *Device) Custom(cost float64, f func(), deps ...sim.Event) sim.Event {
	return d.launch("custom", cost, deps, f)
}

// CustomLA enqueues a custom kernel on the lookahead stream instead of
// the main compute FIFO. The FT layer issues its boundary-detection sums
// here under the lookahead schedule so a verification read never queues
// behind the trailing-update kernels it is checking.
func (d *Device) CustomLA(cost float64, f func(), deps ...sim.Event) sim.Event {
	return d.launchOn(d.Lookahead, "custom", cost, deps, f)
}

// Add enqueues adding v to a single device element.
func (d *Device) Add(m *Matrix, i, j int, v float64, deps ...sim.Event) sim.Event {
	return d.launch("vec", d.Params.KernelLaunchSec, deps, func() {
		m.ptr(i, j)[0] += v
	})
}

// Set enqueues writing a single device element (used for the EI corner
// trick of DGEHRD's right update, where the stored subdiagonal element is
// temporarily replaced by the implicit unit diagonal of V).
func (d *Device) Set(m *Matrix, i, j int, v float64, deps ...sim.Event) sim.Event {
	return d.launch("vec", d.Params.KernelLaunchSec, deps, func() {
		m.ptr(i, j)[0] = v
	})
}

// SubBlock enqueues C := C − B over r×c blocks (element-wise subtract).
func (d *Device) SubBlock(c *Matrix, ci, cj int, b *Matrix, bi, bj, r, cols int, deps ...sim.Event) sim.Event {
	cost := d.Params.KernelLaunchSec + 24*float64(r)*float64(cols)/(d.Params.GPUBandwidthGBps*1e9)
	return d.launch("vec", cost, deps, func() {
		for j := 0; j < cols; j++ {
			dst := c.ptr(ci, cj+j)[:r]
			src := b.ptr(bi, bj+j)[:r]
			for i := range dst {
				dst[i] -= src[i]
			}
		}
	})
}

// SetZero enqueues zeroing of an r×c block.
func (d *Device) SetZero(m *Matrix, i, j, r, c int, deps ...sim.Event) sim.Event {
	cost := d.Params.KernelLaunchSec + 8*float64(r)*float64(c)/(d.Params.GPUBandwidthGBps*1e9)
	return d.launch("vec", cost, deps, func() {
		for jj := 0; jj < c; jj++ {
			col := m.ptr(i, j+jj)[:r]
			for ii := range col {
				col[ii] = 0
			}
		}
	})
}

// RowSums enqueues y := A·e over the r×c block at (i, j): the paper's
// row-checksum generation (one GEMV against the all-ones vector).
func (d *Device) RowSums(a *Matrix, i, j, r, c int, ym *Matrix, yi, yj int, deps ...sim.Event) sim.Event {
	return d.launch("gemv", d.Params.GemvDevice(r, c), deps, func() {
		y := ym.ptr(yi, yj)[:r]
		for ii := range y {
			y[ii] = 0
		}
		for jj := 0; jj < c; jj++ {
			col := a.ptr(i, j+jj)[:r]
			for ii, v := range col {
				y[ii] += v
			}
		}
	})
}

// ColSums enqueues yᵀ := eᵀ·A over the r×c block at (i, j), writing the c
// results into a row segment of ym starting at (yi, yj) with stride
// ym.Stride (i.e. along a row).
func (d *Device) ColSums(a *Matrix, i, j, r, c int, ym *Matrix, yi, yj int, deps ...sim.Event) sim.Event {
	return d.launch("gemv", d.Params.GemvDevice(r, c), deps, func() {
		for jj := 0; jj < c; jj++ {
			col := a.ptr(i, j+jj)[:r]
			s := 0.0
			for _, v := range col {
				s += v
			}
			ym.ptr(yi, yj+jj)[0] = s
		}
	})
}

// Sum enqueues a reduction of the length-n column segment at (i, j) of m,
// returning the result through out (written in Real mode when the kernel
// executes). On real hardware the scalar result would live in device
// memory; callers needing it host-side must account for a small D2H,
// which ReadScalar models.
func (d *Device) Sum(m *Matrix, i, j, n int, out *float64, deps ...sim.Event) sim.Event {
	return d.launch("vec", d.Params.VecDevice(n), deps, func() {
		s := 0.0
		if n > 0 {
			col := m.ptr(i, j)[:n]
			for _, v := range col {
				s += v
			}
		}
		*out = s
	})
}

// SumRow enqueues a reduction over a length-n row segment (stride =
// m.Stride) starting at (i, j).
func (d *Device) SumRow(m *Matrix, i, j, n int, out *float64, deps ...sim.Event) sim.Event {
	return d.launch("vec", d.Params.VecDevice(n), deps, func() {
		s := 0.0
		for jj := 0; jj < n; jj++ {
			s += m.ptr(i, j+jj)[0]
		}
		*out = s
	})
}

// ReadScalar models the host reading one device scalar (a latency-bound
// D2H transfer); the value must already have been produced by a kernel.
func (d *Device) ReadScalar(deps ...sim.Event) {
	d.Sync(d.ReadScalarAsync(deps...))
}

// ReadScalarAsync enqueues the scalar D2H without blocking the host and
// returns its event. The lookahead schedule's optimistic detection uses
// this: the read is charged, but the host only waits for it (Sync) when
// the verdict actually demands a recovery.
func (d *Device) ReadScalarAsync(deps ...sim.Event) sim.Event {
	d.transfers++
	d.bytesMoved += 8
	deps = append(deps, sim.Event{At: d.Host.Tail()})
	cost := d.Params.Transfer(8)
	d.busyByKind["d2h"] += cost
	e := d.Copy.Schedule(cost, deps...)
	d.record(d.Copy.Name(), "d2h", e.At, cost)
	return e
}

// ReadScalarTail models fetching a scalar produced at the tail of the
// compute queue through device-mapped memory: the read is charged on the
// compute stream, not the copy engine. The optimistic detection path
// needs this — its verdict waits for the whole trailing update, and a
// copy-engine read would make every later offload (the next panel's)
// queue behind that wait.
func (d *Device) ReadScalarTail(deps ...sim.Event) sim.Event {
	d.transfers++
	d.bytesMoved += 8
	deps = append(deps, sim.Event{At: d.Host.Tail()})
	cost := d.Params.Transfer(8)
	d.busyByKind["d2h"] += cost
	e := d.Compute.Schedule(cost, deps...)
	d.record(d.Compute.Name(), "d2h", e.At, cost)
	return e
}

// Larfb enqueues the block-reflector application
// C := (I − V·T·Vᵀ)ᵒᵖ · C on the compute stream as its constituent
// GEMM/TRMM kernels (forward column-wise storage, left side), matching
// LAPACK DLARFB's kernel decomposition so the cost model sees the same
// kernel mix as CUBLAS would. C is m×n at (ci, cj) of cm; V is m×k at
// (vi, vj) of vm; T is k×k at (ti, tj) of tm; w is a k×n (ldw ≥ n)
// device workspace.
func (d *Device) Larfb(trans blas.Transpose, m, n, k int, vm *Matrix, vi, vj int, tm *Matrix, ti, tj int, cm *Matrix, ci, cj int, w *Matrix, deps ...sim.Event) sim.Event {
	if m == 0 || n == 0 || k == 0 {
		return sim.Event{At: d.Compute.Tail()}
	}
	transT := blas.Trans
	if trans == blas.Trans {
		transT = blas.NoTrans
	}
	// W := C1ᵀ (n×k)
	cost := d.Params.KernelLaunchSec + 16*float64(n)*float64(k)/(d.Params.GPUBandwidthGBps*1e9)
	e := d.launch("copy", cost, deps, func() {
		for j := 0; j < k; j++ {
			blas.Dcopy(n, cm.ptr(ci+j, cj), cm.Stride, w.ptr(0, j), 1)
		}
	})
	// W := W · V1
	e = d.Trmm(blas.Right, blas.Lower, blas.NoTrans, blas.Unit, n, k, 1, vm, vi, vj, w, 0, 0, e)
	if m > k {
		// W += C2ᵀ · V2
		e = d.Gemm(blas.Trans, blas.NoTrans, n, k, m-k, 1, cm, ci+k, cj, vm, vi+k, vj, 1, w, 0, 0, e)
	}
	// W := W · Tᵀ (or T)
	e = d.Trmm(blas.Right, blas.Upper, transT, blas.NonUnit, n, k, 1, tm, ti, tj, w, 0, 0, e)
	if m > k {
		// C2 −= V2 · Wᵀ
		e = d.Gemm(blas.NoTrans, blas.Trans, m-k, n, k, -1, vm, vi+k, vj, w, 0, 0, 1, cm, ci+k, cj, e)
	}
	// W := W · V1ᵀ
	e = d.Trmm(blas.Right, blas.Lower, blas.Trans, blas.Unit, n, k, 1, vm, vi, vj, w, 0, 0, e)
	// C1 −= Wᵀ
	cost = d.Params.KernelLaunchSec + 24*float64(n)*float64(k)/(d.Params.GPUBandwidthGBps*1e9)
	return d.launch("vec", cost, []sim.Event{e}, func() {
		for j := 0; j < k; j++ {
			for i := 0; i < n; i++ {
				cm.ptr(ci+j, cj+i)[0] -= w.ptr(i, j)[0]
			}
		}
	})
}
