package gpu

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/matrix"
	"repro/internal/obs"
	"repro/internal/sim"
)

func traceDevice() *Device {
	return New(sim.K40c(), Real)
}

func TestTraceDisabledRecordsNothing(t *testing.T) {
	d := traceDevice()
	a := d.Alloc(16, 16)
	h := matrix.Random(16, 16, 1)
	d.H2D(a, 0, 0, h)
	d.HostOp(1e-6, nil)
	if got := d.Trace(); len(got) != 0 {
		t.Fatalf("recorded %d spans without EnableTrace", len(got))
	}
}

func TestTraceOnOffBoundary(t *testing.T) {
	d := traceDevice()
	a := d.Alloc(16, 16)
	h := matrix.Random(16, 16, 1)
	d.H2D(a, 0, 0, h) // before enabling: not recorded
	d.EnableTrace()
	d.HostOp(1e-6, nil)
	d.D2H(h, a, 0, 0)
	spans := d.Trace()
	if len(spans) != 2 {
		t.Fatalf("want 2 spans after enable, got %d: %+v", len(spans), spans)
	}
	if spans[0].Lane != "host" || spans[1].Lane != "gpu-copy" {
		t.Fatalf("unexpected lanes: %+v", spans)
	}
}

func TestChromeTraceRoundTripMetadataAndFlows(t *testing.T) {
	d := traceDevice()
	d.EnableTrace()
	a := d.Alloc(32, 32)
	h := matrix.Random(32, 32, 1)
	d.H2D(a, 0, 0, h)
	// Async D2H whose data the next host op consumes: must produce one
	// matched s/f flow pair.
	e := d.D2HAsync(h, a, 0, 0)
	d.Sync(e)
	d.HostOp(1e-5, nil)

	var buf bytes.Buffer
	if err := d.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("invalid trace JSON: %v", err)
	}

	names := map[string]int{}
	threadNames := map[string]bool{}
	var flowS, flowF []float64
	slices := 0
	for _, ev := range events {
		ph, _ := ev["ph"].(string)
		names[ph]++
		switch ph {
		case "M":
			if args, ok := ev["args"].(map[string]any); ok {
				if n, ok := args["name"].(string); ok {
					threadNames[n] = true
				}
			}
		case "X":
			slices++
		case "s":
			flowS = append(flowS, ev["id"].(float64))
		case "f":
			if ev["bp"] != "e" {
				t.Fatalf("flow finish without bp:e: %v", ev)
			}
			flowF = append(flowF, ev["id"].(float64))
		}
	}
	if !threadNames["fthess-sim"] {
		t.Fatalf("missing process_name metadata; names seen: %v", threadNames)
	}
	for _, lane := range []string{"host", "gpu-compute", "gpu-copy"} {
		if !threadNames[lane] {
			t.Fatalf("missing thread_name for %q", lane)
		}
	}
	if slices != len(d.Trace()) {
		t.Fatalf("%d slices vs %d spans", slices, len(d.Trace()))
	}
	if len(flowS) != 1 || len(flowF) != 1 || flowS[0] != flowF[0] {
		t.Fatalf("flow pair mismatch: s=%v f=%v", flowS, flowF)
	}
}

func TestTraceSummaryIncludesCustomLane(t *testing.T) {
	d := traceDevice()
	d.EnableTrace()
	d.HostOp(1e-5, nil)
	// A custom lane recorded directly, as a future multi-stream device
	// extension would.
	d.record("gpu-copy2", "d2h", 2e-5, 1e-5)
	d.record("aux", "custom", 3e-5, 1e-5)

	var buf bytes.Buffer
	d.TraceSummary(&buf)
	out := buf.String()
	hostIdx := strings.Index(out, "host")
	auxIdx := strings.Index(out, "aux")
	copy2Idx := strings.Index(out, "gpu-copy2")
	if hostIdx < 0 || auxIdx < 0 || copy2Idx < 0 {
		t.Fatalf("summary missing lanes:\n%s", out)
	}
	// Known lanes come first; custom lanes follow in sorted order.
	if !(hostIdx < auxIdx && auxIdx < copy2Idx) {
		t.Fatalf("lane order wrong:\n%s", out)
	}
}

func TestRecordFeedsObsRegistry(t *testing.T) {
	d := traceDevice()
	reg := obs.NewRegistry()
	d.SetObs(reg)
	prev := d.SetPhase("panel")
	if prev != "" {
		t.Fatalf("initial phase %q", prev)
	}
	a := d.Alloc(16, 16)
	h := matrix.Random(16, 16, 1)
	d.H2D(a, 0, 0, h)
	d.SetPhase("")
	d.HostOp(1e-5, nil)
	d.FinishRun()

	if got := reg.CounterValue("op_seconds_total", obs.L("kind", "h2d")); got <= 0 {
		t.Fatalf("h2d seconds = %v", got)
	}
	if got := reg.CounterValue("op_seconds_total", obs.L("kind", "host")); got <= 0 {
		t.Fatalf("host seconds = %v", got)
	}
	phases := obs.SumBy(reg, "phase_seconds", "phase")
	if phases["panel"] <= 0 || phases["other"] <= 0 {
		t.Fatalf("phases: %v", phases)
	}
	if reg.GaugeValue("sim_makespan_seconds") <= 0 {
		t.Fatal("makespan gauge not published")
	}
	if reg.GaugeValue("lane_busy_seconds", obs.L("lane", "host")) <= 0 {
		t.Fatal("lane busy gauge not published")
	}
}
