package gpu

import (
	"testing"

	"repro/internal/blas"
	"repro/internal/matrix"
	"repro/internal/sim"
)

// The fused-ABFT substrate switch: Real-mode kernels must verify their
// own output (checks accumulate, results stay bitwise identical to the
// plain kernels), the cost model must charge the premium in both modes,
// and CostOnly runs must never touch the counters.

func TestSubstrateFusedGemmBitwiseAndCounted(t *testing.T) {
	const m, n, k = 96, 80, 64
	a := matrix.Random(m, k, 11)
	b := matrix.Random(k, n, 12)
	c0 := matrix.Random(m, n, 13)

	run := func(fused bool) (*matrix.Matrix, *Device) {
		d := New(sim.K40c(), Real)
		if prev := d.SetSubstrateFused(fused); prev {
			t.Fatal("substrate defaulted to fused")
		}
		da := d.Alloc(m, k)
		db := d.Alloc(k, n)
		dc := d.Alloc(m, n)
		d.H2D(da, 0, 0, a)
		d.H2D(db, 0, 0, b)
		d.H2D(dc, 0, 0, c0)
		d.Gemm(blas.NoTrans, blas.NoTrans, m, n, k, 1.2, da, 0, 0, db, 0, 0, 0.5, dc, 0, 0)
		out := matrix.New(m, n)
		d.D2H(out, dc, 0, 0)
		return out, d
	}

	plain, dPlain := run(false)
	fused, dFused := run(true)
	if !plain.Equal(fused) {
		t.Fatal("fused-substrate Gemm differs bitwise from plain")
	}
	checks, detections, nonFinite := dFused.FTStats()
	if checks == 0 {
		t.Fatal("fused Gemm accumulated zero checks")
	}
	if detections != 0 || nonFinite {
		t.Fatalf("clean fused Gemm reported detections=%d nonFinite=%v", detections, nonFinite)
	}
	if c, _, _ := dPlain.FTStats(); c != 0 {
		t.Fatalf("plain device accumulated %d checks", c)
	}
	// The premium must show up in the modeled gemm busy time.
	if dFused.TimeBreakdown()["gemm"] <= dPlain.TimeBreakdown()["gemm"] {
		t.Fatal("fused Gemm charged no cost premium")
	}
}

func TestSubstrateFusedGemvDMRCounted(t *testing.T) {
	const m, n = 64, 48
	a := matrix.Random(m, n, 21)
	x := matrix.Random(n, 1, 22)
	y := matrix.Random(m, 1, 23)

	d := New(sim.K40c(), Real)
	d.SetSubstrateFused(true)
	da := d.Alloc(m, n)
	dx := d.Alloc(n, 1)
	dy := d.Alloc(m, 1)
	d.H2D(da, 0, 0, a)
	d.H2D(dx, 0, 0, x)
	d.H2D(dy, 0, 0, y)
	d.Gemv(blas.NoTrans, m, n, 1.0, da, 0, 0, dx, 0, 0, 0.3, dy, 0, 0)
	checks, detections, _ := d.FTStats()
	if checks != m {
		t.Fatalf("DMR Gemv checks = %d, want one per output element (%d)", checks, m)
	}
	if detections != 0 {
		t.Fatalf("clean DMR Gemv reported %d detections", detections)
	}
	d.ResetFTStats()
	if c, _, _ := d.FTStats(); c != 0 {
		t.Fatal("ResetFTStats did not clear counters")
	}
}

func TestSubstrateFusedCostOnlyChargesButNeverChecks(t *testing.T) {
	const m, n, k = 256, 256, 256
	plain := New(sim.K40c(), CostOnly)
	fused := New(sim.K40c(), CostOnly)
	fused.SetSubstrateFused(true)
	for _, d := range []*Device{plain, fused} {
		da := d.Alloc(m, k)
		db := d.Alloc(k, n)
		dc := d.Alloc(m, n)
		d.Gemm(blas.NoTrans, blas.NoTrans, m, n, k, 1, da, 0, 0, db, 0, 0, 1, dc, 0, 0)
		d.Gemv(blas.NoTrans, m, n, 1, da, 0, 0, db, 0, 0, 0, dc, 0, 0)
	}
	if c, _, _ := fused.FTStats(); c != 0 {
		t.Fatalf("CostOnly fused device accumulated %d checks", c)
	}
	wantGemm := sim.K40c().GemmDevice(m, n, k) * (1 + blas.FTGemmOverheadFrac(m, n, k))
	if got := fused.TimeBreakdown()["gemm"]; got <= plain.TimeBreakdown()["gemm"] || got != wantGemm {
		t.Fatalf("CostOnly fused gemm cost %v, want %v (> plain %v)", got, wantGemm, plain.TimeBreakdown()["gemm"])
	}
	if fused.TimeBreakdown()["gemv"] <= plain.TimeBreakdown()["gemv"] {
		t.Fatal("CostOnly fused gemv charged no DMR premium")
	}
}
