package gpu

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"repro/internal/blas"
	"repro/internal/matrix"
	"repro/internal/sim"
)

func newReal() *Device { return New(sim.K40c(), Real) }

func TestRoundTripTransfers(t *testing.T) {
	d := newReal()
	h := matrix.Random(6, 5, 1)
	dm := d.Alloc(8, 8)
	d.H2D(dm, 1, 2, h)
	back := matrix.New(6, 5)
	d.D2H(back, dm, 1, 2)
	if !h.Equal(back) {
		t.Fatal("H2D/D2H round trip corrupted data")
	}
}

func TestTransfersAdvanceClocks(t *testing.T) {
	d := newReal()
	h := matrix.Random(100, 100, 2)
	dm := d.Alloc(100, 100)
	before := d.Host.Tail()
	d.H2D(dm, 0, 0, h)
	if d.Host.Tail() <= before {
		t.Fatal("sync H2D must block the host (advance host clock)")
	}
	if d.Copy.Tail() == 0 {
		t.Fatal("copy stream clock did not advance")
	}
	cnt, bytes := d.TransferStats()
	if cnt != 1 || bytes != 100*100*8 {
		t.Fatalf("transfer stats %d/%d", cnt, bytes)
	}
}

func TestAsyncCopyOverlapsCompute(t *testing.T) {
	d := newReal()
	a := d.Alloc(500, 500)
	b := d.Alloc(500, 500)
	c := d.Alloc(500, 500)
	// Launch a long kernel, then an independent async D2H: the copy should
	// finish before the kernel (overlap), so makespan < sum of durations.
	kEnd := d.Gemm(blas.NoTrans, blas.NoTrans, 500, 500, 500, 1, a, 0, 0, b, 0, 0, 0, c, 0, 0)
	host := matrix.New(100, 100)
	cpEnd := d.D2HAsync(host, a, 0, 0)
	if cpEnd.At >= kEnd.At {
		t.Fatalf("async copy (%.6g) should overlap and finish before the big kernel (%.6g)", cpEnd.At, kEnd.At)
	}
	d.DeviceSynchronize()
	if d.Host.Tail() < kEnd.At {
		t.Fatal("DeviceSynchronize must advance host to the last kernel")
	}
}

func TestKernelFIFOOrdering(t *testing.T) {
	d := newReal()
	a := d.Alloc(10, 10)
	e1 := d.Scal(10, 2, a, 0, 0)
	e2 := d.Scal(10, 2, a, 0, 1)
	if e2.At <= e1.At {
		t.Fatal("compute stream must be FIFO")
	}
}

func TestDependencyAcrossStreams(t *testing.T) {
	d := newReal()
	a := d.Alloc(200, 200)
	h := matrix.Random(200, 200, 3)
	cp := d.H2DAsync(a, 0, 0, h)
	// Kernel depending on the copy cannot start before it completes.
	k := d.Scal(200, 1, a, 0, 0, cp)
	if k.At < cp.At {
		t.Fatalf("kernel (%.6g) started before its dependency (%.6g)", k.At, cp.At)
	}
}

func TestGemmKernelComputes(t *testing.T) {
	d := newReal()
	ah := matrix.Random(4, 3, 1)
	bh := matrix.Random(3, 5, 2)
	a := d.Alloc(4, 3)
	b := d.Alloc(3, 5)
	c := d.Alloc(4, 5)
	d.H2D(a, 0, 0, ah)
	d.H2D(b, 0, 0, bh)
	d.Gemm(blas.NoTrans, blas.NoTrans, 4, 5, 3, 1, a, 0, 0, b, 0, 0, 0, c, 0, 0)
	got := matrix.New(4, 5)
	d.D2H(got, c, 0, 0)

	want := matrix.New(4, 5)
	blas.Dgemm(blas.NoTrans, blas.NoTrans, 4, 5, 3, 1, ah.Data, ah.Stride, bh.Data, bh.Stride, 0, want.Data, want.Stride)
	if got.Sub(want).MaxAbs() > 1e-13 {
		t.Fatal("device GEMM result wrong")
	}
}

func TestGemvAndSumKernels(t *testing.T) {
	d := newReal()
	ah := matrix.Random(5, 4, 7)
	a := d.Alloc(5, 4)
	d.H2D(a, 0, 0, ah)
	x := d.Alloc(4, 1)
	xh := matrix.FromRows([][]float64{{1}, {1}, {1}, {1}})
	d.H2D(x, 0, 0, xh)
	y := d.Alloc(5, 1)
	d.Gemv(blas.NoTrans, 5, 4, 1, a, 0, 0, x, 0, 0, 0, y, 0, 0)
	yh := matrix.New(5, 1)
	d.D2H(yh, y, 0, 0)
	rs := ah.RowSums()
	for i := range rs {
		if math.Abs(yh.At(i, 0)-rs[i]) > 1e-13 {
			t.Fatalf("Gemv row sum %d: %v vs %v", i, yh.At(i, 0), rs[i])
		}
	}
	var s float64
	d.Sum(y, 0, 0, 5, &s)
	d.ReadScalar()
	total := 0.0
	for _, v := range rs {
		total += v
	}
	if math.Abs(s-total) > 1e-12 {
		t.Fatalf("Sum kernel: %v vs %v", s, total)
	}
}

func TestRowColSumsKernels(t *testing.T) {
	d := newReal()
	ah := matrix.Random(6, 6, 9)
	a := d.Alloc(7, 7)
	d.H2D(a, 0, 0, ah)
	rs := d.Alloc(6, 1)
	d.RowSums(a, 0, 0, 6, 6, rs, 0, 0)
	cs := d.Alloc(1, 6)
	d.ColSums(a, 0, 0, 6, 6, cs, 0, 0)

	rh := matrix.New(6, 1)
	d.D2H(rh, rs, 0, 0)
	ch := matrix.New(1, 6)
	d.D2H(ch, cs, 0, 0)
	wantR := ah.RowSums()
	wantC := ah.ColSums()
	for i := 0; i < 6; i++ {
		if math.Abs(rh.At(i, 0)-wantR[i]) > 1e-13 {
			t.Fatalf("RowSums[%d]", i)
		}
		if math.Abs(ch.At(0, i)-wantC[i]) > 1e-13 {
			t.Fatalf("ColSums[%d]", i)
		}
	}
	var sr, sc float64
	d.Sum(rs, 0, 0, 6, &sr)
	d.SumRow(cs, 0, 0, 6, &sc)
	if math.Abs(sr-sc) > 1e-12 {
		t.Fatalf("Σrow sums %v != Σcol sums %v", sr, sc)
	}
}

func TestTrmmAxpyCopyBlockKernels(t *testing.T) {
	d := newReal()
	th := matrix.FromRows([][]float64{{2, 1}, {0, 3}})
	bh := matrix.Random(2, 3, 4)
	tm := d.Alloc(2, 2)
	b := d.Alloc(2, 3)
	d.H2D(tm, 0, 0, th)
	d.H2D(b, 0, 0, bh)
	d.Trmm(blas.Left, blas.Upper, blas.NoTrans, blas.NonUnit, 2, 3, 1, tm, 0, 0, b, 0, 0)
	got := matrix.New(2, 3)
	d.D2H(got, b, 0, 0)
	want := bh.Clone()
	blas.Dtrmm(blas.Left, blas.Upper, blas.NoTrans, blas.NonUnit, 2, 3, 1, th.Data, th.Stride, want.Data, want.Stride)
	if got.Sub(want).MaxAbs() > 1e-14 {
		t.Fatal("device Trmm wrong")
	}

	d.Axpy(2, 10, b, 0, 0, b, 0, 1)
	d.CopyBlock(b, 0, 2, b, 0, 0, 2, 1)
	got2 := matrix.New(2, 3)
	d.D2H(got2, b, 0, 0)
	for i := 0; i < 2; i++ {
		if got2.At(i, 2) != got2.At(i, 0) {
			t.Fatal("CopyBlock did not copy")
		}
		if math.Abs(got2.At(i, 1)-(want.At(i, 1)+10*want.At(i, 0))) > 1e-12 {
			t.Fatal("Axpy wrong")
		}
	}
}

func TestLarfbKernelMatchesHost(t *testing.T) {
	// Device Larfb must agree with the host lapack.Dlarfb — it is the
	// left-update kernel of Algorithm 2 line 8.
	d := newReal()
	n, k, nc := 12, 4, 7
	vh := matrix.New(n, k)
	rng := matrix.NewRNG(3)
	tauh := make([]float64, k)
	for j := 0; j < k; j++ {
		vh.Set(j, j, 1)
		for i := j + 1; i < n; i++ {
			vh.Set(i, j, rng.NormFloat64())
		}
		tauh[j] = rng.Float64()
	}
	th := matrix.New(k, k)
	// Build a T consistent with V: use Dlarft via a quick local copy.
	buildT(vh, tauh, th)

	ch := matrix.Random(n, nc, 8)
	want := ch.Clone()
	hostLarfb(vh, th, want)

	v := d.Alloc(n, k)
	tm := d.Alloc(k, k)
	c := d.Alloc(n, nc)
	w := d.Alloc(nc, k)
	d.H2D(v, 0, 0, vh)
	d.H2D(tm, 0, 0, th)
	d.H2D(c, 0, 0, ch)
	d.Larfb(blas.Trans, n, nc, k, v, 0, 0, tm, 0, 0, c, 0, 0, w)
	got := matrix.New(n, nc)
	d.D2H(got, c, 0, 0)
	if md := got.Sub(want).MaxAbs(); md > 1e-12 {
		t.Fatalf("device Larfb differs from host by %v", md)
	}
}

func TestSetZero(t *testing.T) {
	d := newReal()
	a := d.Alloc(4, 4)
	h := matrix.Random(4, 4, 6)
	d.H2D(a, 0, 0, h)
	d.SetZero(a, 1, 1, 2, 2)
	got := matrix.New(4, 4)
	d.D2H(got, a, 0, 0)
	if got.At(1, 1) != 0 || got.At(2, 2) != 0 {
		t.Fatal("SetZero did not zero")
	}
	if got.At(0, 0) != h.At(0, 0) || got.At(3, 3) != h.At(3, 3) {
		t.Fatal("SetZero zeroed outside the block")
	}
}

func TestPokeAndFlipBit(t *testing.T) {
	d := newReal()
	a := d.Alloc(3, 3)
	h := matrix.Random(3, 3, 5)
	d.H2D(a, 0, 0, h)
	old := d.Poke(a, 1, 2, 7.5)
	if old != h.At(1, 2) {
		t.Fatalf("Poke returned %v, want %v", old, h.At(1, 2))
	}
	if got := a.At(1, 2); math.Abs(got-(old+7.5)) > 1e-15 {
		t.Fatalf("Poke wrote %v", got)
	}
	before := a.At(0, 0)
	d.FlipBit(a, 0, 0, 62)
	if a.At(0, 0) == before {
		t.Fatal("FlipBit did not change the value")
	}
	d.FlipBit(a, 0, 0, 62)
	if a.At(0, 0) != before {
		t.Fatal("double FlipBit must restore the value")
	}
}

func TestCostOnlyModeNoData(t *testing.T) {
	d := New(sim.K40c(), CostOnly)
	a := d.Alloc(1000, 1000)
	if a.Data != nil {
		t.Fatal("CostOnly alloc must not allocate data")
	}
	h := matrix.New(10, 10)
	d.H2D(a, 0, 0, h)
	d.Gemm(blas.NoTrans, blas.NoTrans, 1000, 1000, 1000, 1, a, 0, 0, a, 0, 0, 0, a, 0, 0)
	d.D2H(h, a, 0, 0)
	if d.Elapsed() <= 0 {
		t.Fatal("CostOnly must still advance the clock")
	}
	if d.Poke(a, 0, 0, 1) != 0 {
		t.Fatal("CostOnly Poke must be a no-op")
	}
	ran := false
	d.HostOp(1e-6, func() { ran = true })
	if ran {
		t.Fatal("CostOnly HostOp must not execute the closure")
	}
}

func TestCostOnlyMatchesRealClock(t *testing.T) {
	// The same op sequence must produce the same simulated time in both
	// modes — that is the property that lets Figure 6 run cost-only.
	run := func(mode Mode) float64 {
		d := New(sim.K40c(), mode)
		a := d.Alloc(64, 64)
		h := matrix.Random(64, 64, 1)
		d.H2D(a, 0, 0, h)
		d.Gemm(blas.NoTrans, blas.NoTrans, 64, 64, 64, 1, a, 0, 0, a, 0, 0, 0, a, 0, 0)
		d.D2HAsync(h, a, 0, 0)
		d.DeviceSynchronize()
		return d.Elapsed()
	}
	if r, c := run(Real), run(CostOnly); math.Abs(r-c) > 1e-12 {
		t.Fatalf("real %v vs cost-only %v", r, c)
	}
}

func TestAllocAccounting(t *testing.T) {
	d := newReal()
	m := d.Alloc(100, 50)
	if d.AllocatedBytes() != 100*50*8 {
		t.Fatalf("alloc bytes %d", d.AllocatedBytes())
	}
	d.Free(m)
	if d.AllocatedBytes() != 0 {
		t.Fatalf("free bytes %d", d.AllocatedBytes())
	}
}

func TestHostOpChargesTime(t *testing.T) {
	d := newReal()
	before := d.Host.Tail()
	ran := false
	d.HostOp(0.5, func() { ran = true })
	if !ran {
		t.Fatal("Real HostOp must execute")
	}
	if d.Host.Tail()-before != 0.5 {
		t.Fatalf("host charged %v", d.Host.Tail()-before)
	}
}

// buildT constructs the compact-WY T factor on the host (test helper).
func buildT(v *matrix.Matrix, tau []float64, t *matrix.Matrix) {
	n, k := v.Rows, v.Cols
	for i := 0; i < k; i++ {
		if tau[i] == 0 {
			for j := 0; j < i; j++ {
				t.Set(j, i, 0)
			}
		} else {
			for j := 0; j < i; j++ {
				s := 0.0
				for r := i; r < n; r++ {
					s += v.At(r, j) * v.At(r, i)
				}
				t.Set(j, i, -tau[i]*s)
			}
			blas.Dtrmv(blas.Upper, blas.NoTrans, blas.NonUnit, i, t.Data, t.Stride, t.Data[i*t.Stride:], 1)
		}
		t.Set(i, i, tau[i])
	}
}

// hostLarfb applies (I - V T Vᵀ)ᵀ C on the host (test helper).
func hostLarfb(v, t, c *matrix.Matrix) {
	n, k := v.Rows, v.Cols
	nc := c.Cols
	// W = Cᵀ V (nc×k)
	w := matrix.New(nc, k)
	blas.Dgemm(blas.Trans, blas.NoTrans, nc, k, n, 1, c.Data, c.Stride, v.Data, v.Stride, 0, w.Data, w.Stride)
	// W = W T (apply Hᵀ = I - V Tᵀ Vᵀ ⇒ W := W·(Tᵀ)ᵀ = W·T)
	blas.Dtrmm(blas.Right, blas.Upper, blas.NoTrans, blas.NonUnit, nc, k, 1, t.Data, t.Stride, w.Data, w.Stride)
	// C -= V Wᵀ
	blas.Dgemm(blas.NoTrans, blas.Trans, n, nc, k, -1, v.Data, v.Stride, w.Data, w.Stride, 1, c.Data, c.Stride)
}

func TestTimeBreakdownAccumulates(t *testing.T) {
	d := newReal()
	a := d.Alloc(64, 64)
	h := matrix.Random(64, 64, 1)
	d.H2D(a, 0, 0, h)
	d.Gemm(blas.NoTrans, blas.NoTrans, 64, 64, 64, 1, a, 0, 0, a, 0, 0, 0, a, 0, 0)
	d.Gemv(blas.NoTrans, 64, 64, 1, a, 0, 0, a, 0, 0, 0, a, 0, 1)
	d.HostOp(0.25, nil)
	d.D2H(h, a, 0, 0)
	bd := d.TimeBreakdown()
	for _, k := range []string{"gemm", "gemv", "h2d", "d2h", "host"} {
		if bd[k] <= 0 {
			t.Fatalf("kind %q not accounted: %v", k, bd)
		}
	}
	if bd["host"] != 0.25 {
		t.Fatalf("host time %v", bd["host"])
	}
	// The returned map is a copy.
	bd["gemm"] = -1
	if d.TimeBreakdown()["gemm"] <= 0 {
		t.Fatal("TimeBreakdown must return a copy")
	}
}

func TestTraceRecordsSpans(t *testing.T) {
	d := newReal()
	d.EnableTrace()
	a := d.Alloc(32, 32)
	h := matrix.Random(32, 32, 1)
	d.H2D(a, 0, 0, h)
	d.Gemm(blas.NoTrans, blas.NoTrans, 32, 32, 32, 1, a, 0, 0, a, 0, 0, 0, a, 0, 0)
	d.HostOp(1e-5, nil)
	d.D2H(h, a, 0, 0)
	spans := d.Trace()
	if len(spans) < 4 {
		t.Fatalf("%d spans recorded", len(spans))
	}
	lanes := map[string]bool{}
	for _, s := range spans {
		if s.End < s.Start {
			t.Fatalf("negative span: %+v", s)
		}
		lanes[s.Lane] = true
	}
	for _, want := range []string{"host", "gpu-compute", "gpu-copy"} {
		if !lanes[want] {
			t.Fatalf("lane %q missing", want)
		}
	}
	var buf bytes.Buffer
	if err := d.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]interface{}
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("invalid trace JSON: %v", err)
	}
	slices := 0
	for _, e := range events {
		if e["ph"] == "X" {
			slices++
		}
	}
	if slices != len(spans) {
		t.Fatalf("%d slice events vs %d spans", slices, len(spans))
	}
	var sum bytes.Buffer
	d.TraceSummary(&sum)
	if !strings.Contains(sum.String(), "gpu-compute") {
		t.Fatalf("summary:\n%s", sum.String())
	}
}

func TestTraceDisabledByDefault(t *testing.T) {
	d := newReal()
	a := d.Alloc(4, 4)
	d.Scal(4, 1, a, 0, 0)
	if len(d.Trace()) != 0 {
		t.Fatal("tracing must be opt-in")
	}
}
