// Package gpu simulates the accelerator of the paper's hybrid testbed: a
// device with its own memory space, FIFO command streams, events, and
// asynchronous host↔device transfers, driven by the cost model in
// internal/sim.
//
// Two execution modes share one code path:
//
//   - Real: every kernel executes actual float64 arithmetic on
//     device-resident buffers (used by all correctness tests and the
//     numerical experiments), and the simulated clock advances alongside.
//   - CostOnly: kernels and transfers advance the simulated clock but touch
//     no data, so the paper's large matrix sizes (N ≈ 10⁴, Figure 6) can be
//     swept in milliseconds. The reduction's control flow is data-oblivious,
//     so the operation sequence is identical in both modes.
//
// Operations execute eagerly in program order (which is always a legal
// schedule of the stream program), while the timelines model the
// concurrency: a kernel on the compute stream and an async copy on the
// copy stream overlap in simulated time exactly as they would on the
// paper's K40c.
package gpu

import (
	"context"
	"fmt"
	"math"
	"sync/atomic"

	"repro/internal/matrix"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Mode selects real execution or cost-only simulation.
type Mode int

const (
	// Real executes kernel arithmetic on device buffers.
	Real Mode = iota
	// CostOnly advances simulated time without touching data.
	CostOnly
)

func (m Mode) String() string {
	if m == Real {
		return "real"
	}
	return "cost-only"
}

// Device is a simulated accelerator.
type Device struct {
	Params sim.Params
	Mode   Mode

	// Host is the CPU timeline; Compute and Copy are the device streams
	// (MAGMA's hybrid DGEHRD uses exactly one of each). Lookahead is a
	// second, lower-priority-independent compute stream used by the
	// lookahead schedule: the next panel's device GEMVs issue there so
	// they can run concurrently with the remainder of the trailing update
	// still queued on Compute (MAGMA's priority-stream pattern).
	Host      *sim.Timeline
	Compute   *sim.Timeline
	Copy      *sim.Timeline
	Lookahead *sim.Timeline

	allocBytes int64
	kernels    int64
	transfers  int64
	bytesMoved int64
	// busyByKind accumulates modeled busy seconds per operation family
	// ("gemm", "gemv", "trmm", "vec", "copy", "h2d", "d2h", "host"),
	// feeding the overhead-breakdown experiment.
	busyByKind map[string]float64
	// tracing/trace record per-operation spans for the Chrome-trace
	// export (see trace.go).
	tracing bool
	trace   []Span

	// name distinguishes pool members ("d0", "d1", …); it is empty for the
	// classic single device, whose metric series stay unlabeled so every
	// pre-pool consumer keeps seeing the exact keys it always did.
	name string

	// job, when non-empty, adds a job=<id> label to every metric series
	// the device emits, so a shared serving registry attributes phase
	// timers and operation costs to the request that caused them (set via
	// SetJob before a run).
	job string

	// obs is the optional metrics sink; phase is the algorithm phase all
	// charged costs are currently attributed to (set via SetPhase). The
	// two caches avoid rebuilding series keys on the hot path.
	obs        *obs.Registry
	phase      string
	opCounters map[string]*obs.Counter
	phaseHists map[string]*obs.Histogram
	// phasePub mirrors phase for concurrent readers: the serving layer
	// polls it from HTTP handlers while the owning goroutine runs the
	// reduction. account() keeps using the plain field — the device is
	// otherwise single-goroutine and the hot path must stay lock-free.
	phasePub atomic.Value
	// ctx, when set, is the cancellation signal the iteration loops of
	// hybrid/ft poll at their boundaries (and PanelFactor per panel
	// column). The simulated device executes eagerly — no goroutines,
	// no in-flight work between operations — so honoring ctx at those
	// points drains both streams by construction.
	ctx context.Context

	// Flow tracking links each async D2H copy span to the host-op span
	// that consumes it (rendered as flow arrows in the Chrome trace).
	flowSeq       int
	flowByEvent   map[float64]int
	pendingFlowIn []int

	// dead marks a device that suffered a fail-stop loss (Kill). A dead
	// device's memory is gone: reads return garbage (NaN fill) and writes
	// are dropped, modeling a detached accelerator whose mappings fault.
	// The simulated clocks still advance so issuing code keeps a coherent
	// notion of time until the loss is detected and the device replaced.
	dead bool

	// fusedFT routes Gemm/Gemv through the fused-ABFT blas substrate
	// (DESIGN.md §14): Real-mode kernels run DgemmFT/DgemvFT and the
	// cost model charges the checksum premium. The per-call verdicts
	// accumulate below (single-goroutine, like all device state).
	fusedFT      bool
	ftChecks     int64
	ftDetections int64
	ftNonFinite  bool
}

// New creates a device with the given cost parameters and mode.
func New(p sim.Params, mode Mode) *Device {
	return &Device{
		Params:     p,
		Mode:       mode,
		Host:       sim.NewTimeline("host"),
		Compute:    sim.NewTimeline("gpu-compute"),
		Copy:       sim.NewTimeline("gpu-copy"),
		Lookahead:  sim.NewTimeline("gpu-lookahead"),
		busyByKind: make(map[string]float64),
	}
}

// NewIndexed creates pool member k: a device whose lanes are prefixed with
// its name ("d0-host", "d0-compute", "d0-copy") so multi-device Chrome
// traces get one lane group per device, and whose metric series carry a
// device="dk" label. Its Host lane models the per-device driver thread
// that issues commands for this device — with K devices the launch
// overhead of K command streams is paid concurrently, exactly like K
// driver threads pinned to K contexts — while the algorithm's own serial
// CPU work runs on a separate main-host timeline owned by the pool.
func NewIndexed(p sim.Params, mode Mode, k int) *Device {
	return NewNamed(p, mode, fmt.Sprintf("d%d", k))
}

// NewNamed creates a device with an arbitrary lane-name prefix. The batch
// throughput engine uses it to name fractional-lease lanes ("d0.l1", …)
// so per-lane metric series and Chrome-trace rows identify the lane, not
// just the physical device.
func NewNamed(p sim.Params, mode Mode, name string) *Device {
	return &Device{
		Params:     p,
		Mode:       mode,
		name:       name,
		Host:       sim.NewTimeline(name + "-host"),
		Compute:    sim.NewTimeline(name + "-compute"),
		Copy:       sim.NewTimeline(name + "-copy"),
		Lookahead:  sim.NewTimeline(name + "-lookahead"),
		busyByKind: make(map[string]float64),
	}
}

// Name reports the pool name of the device ("d0", "d1", …), or "" for a
// classic single device created with New.
func (d *Device) Name() string { return d.name }

// Kill marks the device permanently dead (fail-stop loss). From now on
// D2H transfers from it fill the host buffer with NaN — the poisoned
// garbage a faulted mapping yields — and H2D transfers into it are
// dropped. Kill is irreversible; recovery replaces the device instead.
func (d *Device) Kill() { d.dead = true }

// Dead reports whether the device has been killed.
func (d *Device) Dead() bool { return d.dead }

// SetSubstrateFused switches the device's GEMM/GEMV kernels onto (or off)
// the fused-ABFT substrate and returns the previous setting. While on,
// Real-mode matrix kernels verify their own output in the macro-kernel
// epilogue (DgemmFT) or by dual modular redundancy (DgemvFT) and the cost
// model charges the modeled premium; detections accumulate in FTStats.
// CostOnly mode only changes the charged costs.
func (d *Device) SetSubstrateFused(on bool) bool {
	prev := d.fusedFT
	d.fusedFT = on
	return prev
}

// SubstrateFused reports whether the fused-ABFT substrate is active.
func (d *Device) SubstrateFused() bool { return d.fusedFT }

// FTStats reports the fused-substrate verdicts accumulated since the last
// ResetFTStats: total checksum/DMR comparisons, threshold exceedances,
// and whether any compared total was non-finite.
func (d *Device) FTStats() (checks, detections int64, nonFinite bool) {
	return d.ftChecks, d.ftDetections, d.ftNonFinite
}

// ResetFTStats clears the fused-substrate counters.
func (d *Device) ResetFTStats() {
	d.ftChecks, d.ftDetections, d.ftNonFinite = 0, 0, false
}

// noteFT folds one fused-substrate call verdict into the device counters.
func (d *Device) noteFT(checks, detections int, nonFinite bool) {
	d.ftChecks += int64(checks)
	d.ftDetections += int64(detections)
	d.ftNonFinite = d.ftNonFinite || nonFinite
}

// Matrix is a column-major matrix resident in device memory. In CostOnly
// mode Data is nil.
type Matrix struct {
	dev    *Device
	Rows   int
	Cols   int
	Stride int
	Data   []float64
}

// Alloc reserves an r×c device matrix (zero-initialized in Real mode).
func (d *Device) Alloc(r, c int) *Matrix {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("gpu: Alloc(%d,%d)", r, c))
	}
	m := &Matrix{dev: d, Rows: r, Cols: c, Stride: max(r, 1)}
	if d.Mode == Real {
		m.Data = make([]float64, r*c)
	}
	d.allocBytes += int64(r) * int64(c) * 8
	return m
}

// Free releases the device allocation accounting for m.
func (d *Device) Free(m *Matrix) {
	d.allocBytes -= int64(m.Rows) * int64(m.Cols) * 8
	m.Data = nil
}

// AllocatedBytes reports the currently allocated device memory.
func (d *Device) AllocatedBytes() int64 { return d.allocBytes }

// KernelCount reports the number of kernels launched so far.
func (d *Device) KernelCount() int64 { return d.kernels }

// TransferStats reports the number of transfers and total bytes moved.
func (d *Device) TransferStats() (count, bytes int64) { return d.transfers, d.bytesMoved }

// TimeBreakdown returns the accumulated modeled busy seconds per
// operation family. The sum can exceed the makespan: lanes overlap.
func (d *Device) TimeBreakdown() map[string]float64 {
	out := make(map[string]float64, len(d.busyByKind))
	for k, v := range d.busyByKind {
		out[k] = v
	}
	return out
}

// SetObs attaches a metrics registry: from now on every charged operation
// cost is observed into op_seconds_total{kind=...} and
// phase_seconds{phase=...}. A nil registry detaches.
func (d *Device) SetObs(r *obs.Registry) {
	d.obs = r
	d.opCounters = make(map[string]*obs.Counter)
	d.phaseHists = make(map[string]*obs.Histogram)
}

// Obs returns the attached metrics registry (nil when detached).
func (d *Device) Obs() *obs.Registry { return d.obs }

// SetJob sets (or clears, with "") the job identifier labeled onto every
// subsequently emitted metric series. The series caches are reset because
// the cached instruments were created under the previous label set.
func (d *Device) SetJob(job string) {
	if d.job == job {
		return
	}
	d.job = job
	d.opCounters = make(map[string]*obs.Counter)
	d.phaseHists = make(map[string]*obs.Histogram)
}

// Job reports the job identifier set via SetJob ("" when unset).
func (d *Device) Job() string { return d.job }

// SetPhase names the algorithm phase subsequent operation costs are
// attributed to, returning the previous phase so callers can restore it.
func (d *Device) SetPhase(name string) string {
	prev := d.phase
	d.phase = name
	d.phasePub.Store(name)
	return prev
}

// Phase reports the phase most recently set via SetPhase. Unlike every
// other Device method it is safe to call concurrently with a running
// reduction, which is how the serving layer exposes job progress.
func (d *Device) Phase() string {
	if v := d.phasePub.Load(); v != nil {
		return v.(string)
	}
	return ""
}

// SetContext attaches a cancellation context to the device. The hybrid
// and fault-tolerant reductions install their context here on entry so
// that every layer holding a *Device — down to the per-column device
// GEMV loop of the panel factorization — can poll one signal. nil
// detaches (never cancelled).
func (d *Device) SetContext(ctx context.Context) {
	d.ctx = ctx
}

// CtxErr returns the attached context's error (context.Canceled or
// context.DeadlineExceeded), or nil when no context is attached or it is
// still live. Cancellation points check this between operations; because
// the simulated streams execute eagerly there is nothing in flight to
// abandon, so returning at a check point leaves the device reusable.
func (d *Device) CtxErr() error {
	if d.ctx == nil {
		return nil
	}
	return d.ctx.Err()
}

// account feeds one charged cost into the attached registry under the
// operation family and the current phase.
func (d *Device) account(kind string, cost float64) {
	if d.obs == nil {
		return
	}
	c := d.opCounters[kind]
	if c == nil {
		c = d.obs.Counter("op_seconds_total", d.label(obs.L("kind", kind))...)
		d.opCounters[kind] = c
	}
	c.Add(cost)
	phase := d.phase
	if phase == "" {
		phase = "other"
	}
	h := d.phaseHists[phase]
	if h == nil {
		h = d.obs.Histogram("phase_seconds", obs.DefaultDurationBuckets, d.label(obs.L("phase", phase))...)
		d.phaseHists[phase] = h
	}
	h.Observe(cost)
}

// label appends the device label (pool members) and job label (served
// requests) to a series' labels; classic offline single devices keep
// their historical unlabeled series.
func (d *Device) label(ls ...obs.Label) []obs.Label {
	if d.name != "" {
		ls = append(ls, obs.L("device", d.name))
	}
	if d.job != "" {
		ls = append(ls, obs.L("job", d.job))
	}
	return ls
}

// FinishRun publishes end-of-run gauges (makespan, per-lane busy time,
// operation counts, utilization, device totals) to the attached registry.
// Call once after an algorithm completes; no-op without a registry.
func (d *Device) FinishRun() {
	if d.obs == nil {
		return
	}
	makespan := d.Elapsed()
	d.obs.Gauge("sim_makespan_seconds", d.label()...).Set(makespan)
	lanes := []*sim.Timeline{d.Host, d.Compute, d.Copy}
	if d.Lookahead.Ops() > 0 {
		// The lookahead stream only appears in the lane gauges when the
		// schedule actually used it, so non-lookahead runs keep their
		// historical series set.
		lanes = append(lanes, d.Lookahead)
	}
	for _, t := range lanes {
		l := d.label(obs.L("lane", t.Name()))
		d.obs.Gauge("lane_busy_seconds", l...).Set(t.Busy())
		d.obs.Gauge("lane_ops", l...).Set(float64(t.Ops()))
		d.obs.Gauge("lane_utilization", l...).Set(t.Utilization(makespan))
	}
	d.obs.Gauge("device_kernels", d.label()...).Set(float64(d.kernels))
	d.obs.Gauge("device_transfers", d.label()...).Set(float64(d.transfers))
	d.obs.Gauge("device_transfer_bytes", d.label()...).Set(float64(d.bytesMoved))
	d.obs.Gauge("device_alloc_bytes", d.label()...).Set(float64(d.allocBytes))
}

// ptr returns the slice at device element (i, j); only valid in Real mode.
func (m *Matrix) ptr(i, j int) []float64 {
	if i < 0 || j < 0 || i >= m.Rows || j >= m.Cols {
		panic(fmt.Sprintf("gpu: device index (%d,%d) out of %dx%d", i, j, m.Rows, m.Cols))
	}
	return m.Data[j*m.Stride+i:]
}

// At reads one device element (Real mode only); used by tests and the
// recovery path, which on real hardware would be a tiny D2H read.
func (m *Matrix) At(i, j int) float64 {
	return m.ptr(i, j)[0]
}

// enqueue charges the host the kernel-launch overhead for issuing a
// command and returns the earliest instant the command may start.
func (d *Device) enqueue() sim.Event {
	d.Host.Schedule(d.Params.KernelLaunchSec)
	return sim.Event{At: d.Host.Tail()}
}

// H2D synchronously copies the host matrix src into the device matrix dst
// at origin (di, dj). The host blocks until the transfer completes.
func (d *Device) H2D(dst *Matrix, di, dj int, src *matrix.Matrix) {
	e := d.H2DAsync(dst, di, dj, src)
	d.Sync(e)
}

// H2DAsync enqueues the copy on the copy stream and returns its event.
func (d *Device) H2DAsync(dst *Matrix, di, dj int, src *matrix.Matrix, deps ...sim.Event) sim.Event {
	d.checkRange("H2D", dst, di, dj, src.Rows, src.Cols)
	bytes := src.Rows * src.Cols * 8
	d.transfers++
	d.bytesMoved += int64(bytes)
	if d.Mode == Real && !d.dead && src.Rows > 0 && src.Cols > 0 {
		for j := 0; j < src.Cols; j++ {
			copy(dst.ptr(di, dj+j)[:src.Rows], src.Col(j))
		}
	}
	deps = append(deps, d.enqueue())
	cost := d.Params.Transfer(bytes)
	d.busyByKind["h2d"] += cost
	e := d.Copy.Schedule(cost, deps...)
	d.record(d.Copy.Name(), "h2d", e.At, cost)
	return e
}

// D2H synchronously copies an r×c block at (si, sj) of the device matrix
// src into the host matrix dst.
func (d *Device) D2H(dst *matrix.Matrix, src *Matrix, si, sj int) {
	e := d.D2HAsync(dst, src, si, sj)
	d.Sync(e)
}

// D2HAsync enqueues the device→host copy on the copy stream. This is the
// transfer the paper overlaps with the trailing-matrix update (the two red
// lines of Algorithm 2/3).
func (d *Device) D2HAsync(dst *matrix.Matrix, src *Matrix, si, sj int, deps ...sim.Event) sim.Event {
	d.checkRange("D2H", src, si, sj, dst.Rows, dst.Cols)
	bytes := dst.Rows * dst.Cols * 8
	d.transfers++
	d.bytesMoved += int64(bytes)
	if d.Mode == Real && dst.Rows > 0 && dst.Cols > 0 {
		if d.dead {
			d.fillNaN(dst)
		} else {
			for j := 0; j < dst.Cols; j++ {
				copy(dst.Col(j), src.ptr(si, sj+j)[:dst.Rows])
			}
		}
	}
	deps = append(deps, d.enqueue())
	cost := d.Params.Transfer(bytes)
	d.busyByKind["d2h"] += cost
	e := d.Copy.Schedule(cost, deps...)
	d.record(d.Copy.Name(), "d2h", e.At, cost)
	d.tagFlowOut(e.At)
	return e
}

// fillNaN poisons a host destination buffer, modeling a read from a dead
// device's unmapped memory.
func (d *Device) fillNaN(dst *matrix.Matrix) {
	nan := math.NaN()
	for j := 0; j < dst.Cols; j++ {
		col := dst.Col(j)
		for i := range col {
			col[i] = nan
		}
	}
}

// D2HTail copies a small device block to the host through device-mapped
// memory at the tail of the compute queue: the read is charged on the
// compute stream, not the copy engine. Detection verdicts ride here so
// that they serialize naturally behind the update kernels that produce
// them without occupying the copy FIFO — an async copy that depended on
// the whole trailing update would make every later transfer (the next
// panel offload in particular) queue behind it and destroy the overlap.
func (d *Device) D2HTail(dst *matrix.Matrix, src *Matrix, si, sj int, deps ...sim.Event) sim.Event {
	d.checkRange("D2H", src, si, sj, dst.Rows, dst.Cols)
	bytes := dst.Rows * dst.Cols * 8
	d.transfers++
	d.bytesMoved += int64(bytes)
	if d.Mode == Real && dst.Rows > 0 && dst.Cols > 0 {
		if d.dead {
			d.fillNaN(dst)
		} else {
			for j := 0; j < dst.Cols; j++ {
				copy(dst.Col(j), src.ptr(si, sj+j)[:dst.Rows])
			}
		}
	}
	deps = append(deps, d.enqueue())
	cost := d.Params.Transfer(bytes)
	d.busyByKind["d2h"] += cost
	e := d.Compute.Schedule(cost, deps...)
	d.record(d.Compute.Name(), "d2h", e.At, cost)
	return e
}

func (d *Device) checkRange(op string, m *Matrix, i, j, r, c int) {
	if i < 0 || j < 0 || r < 0 || c < 0 || i+r > m.Rows || j+c > m.Cols {
		panic(fmt.Sprintf("gpu: %s block (%d,%d)+%dx%d out of %dx%d", op, i, j, r, c, m.Rows, m.Cols))
	}
}

// Sync blocks the host until the event completes (cudaEventSynchronize).
func (d *Device) Sync(e sim.Event) {
	d.Host.AdvanceTo(e.At)
	d.noteSync(e.At)
}

// DeviceSynchronize blocks the host until all device streams drain.
func (d *Device) DeviceSynchronize() {
	d.Host.AdvanceTo(sim.Makespan(d.Compute, d.Copy, d.Lookahead))
}

// HostOp charges cost seconds of CPU work and, in Real mode, runs f.
// The hybrid algorithms route every host-side BLAS call through this so
// that one code path serves both execution modes.
func (d *Device) HostOp(cost float64, f func()) {
	d.busyByKind["host"] += cost
	e := d.Host.Schedule(cost)
	d.record(d.Host.Name(), "host", e.At, cost)
	d.claimFlowIn()
	if d.Mode == Real && f != nil {
		f()
	}
}

// Elapsed returns the simulated makespan so far.
func (d *Device) Elapsed() float64 {
	return sim.Makespan(d.Host, d.Compute, d.Copy, d.Lookahead)
}

// ResetClocks zeroes all timelines (buffers are preserved).
func (d *Device) ResetClocks() {
	d.Host.Reset()
	d.Compute.Reset()
	d.Copy.Reset()
	d.Lookahead.Reset()
}
