package devpool

import (
	"repro/internal/blas"
	"repro/internal/gpu"
	"repro/internal/matrix"
	"repro/internal/sim"
)

// Shard is the block-column-sharded trailing-update engine shared by the
// multi-device hybrid and fault-tolerant reductions. Each slab of the
// fixed partition lives on its owner device for the whole factorization;
// the panel products (V expanded to dense form, T, and the full Y) are
// broadcast to every device each iteration, and the only host-side
// synchronization points are the per-column panel GEMV partials and the
// Y-top AllReduce at panel boundaries.
//
// With Pad == 1 every slab carries an ABFT halo — checksum column
// Cols (row sums of the slab's data columns) and checksum row N (column
// sums of the data rows, plus the grand-total corner) — and the right
// and left updates maintain the halo *through* the update on the owning
// device, so detection and correction stay slab-local. The panel slab is
// the exception: its columns are rewritten by the host factorization, so
// it is updated data-only and re-encoded (see the ft package).
//
// Determinism: every cross-slab contraction is returned to the host as
// per-slab partials and combined there in ascending slab order, so the
// results are bit-identical for every device count (see the package
// comment).
type Shard struct {
	Pool *Pool
	Part Partition
	N    int
	NB   int
	// Pad is 1 when slabs carry the checksum halo, else 0.
	Pad int

	// SlabM[s] is slab s's device matrix: (N+Pad) × (Cols+Pad) on the
	// owner device. Last[s] is the most recent device event touching it.
	SlabM []*gpu.Matrix
	Last  []sim.Event

	// DevSlabs[d] lists the slab indices owned by device d, ascending.
	DevSlabs [][]int

	// Per-device broadcast buffers and workspaces.
	dVexp    []*gpu.Matrix // N × NB dense expanded V
	dYb      []*gpu.Matrix // (N+Pad) × NB broadcast Y (row N = Yce)
	dTb      []*gpu.Matrix // NB × NB
	dVcol    []*gpu.Matrix // N × 1 panel-GEMV input
	dYpart   []*gpu.Matrix // N × maxSlabs panel-GEMV partials
	dWide    []*gpu.Matrix // (N+Pad) × maxSlabs·NB Y-top partials
	dSbuf    []*gpu.Matrix // NB × (Width+Pad) left-update intermediate
	dOnes    []*gpu.Matrix // N × 1 ones (checksum contractions)
	dVsumCol []*gpu.Matrix // NB × 1 per-slab V column sums
	dVsumRow []*gpu.Matrix // 1 × NB global V column sums (row layout)

	// Broadcast completion events, per device, refreshed each iteration.
	evVexp, evT, evY []sim.Event
	lastGemv         []sim.Event
	pendingGemv      []panelBatch

	// Lookahead split state. PriorityUpdate applies the full right+left
	// update chain to just the next panel's columns ahead of everything
	// else; priSlab/priEnd mark those columns so RightUpdate/LeftUpdate
	// skip them for the rest of the iteration (priSlab is -1 when no
	// split is active). nextPanelSlab/nextPanelEv carry the priority
	// chain's completion into the next iteration, where PanelD2H starts
	// the panel offload there instead of after the whole trailing update.
	priSlab, priEnd int
	nextPanelSlab   int
	nextPanelEv     sim.Event
	vsumReady       []sim.Event
	vsumHave        []bool

	// Host staging.
	stageCol  []*matrix.Matrix // per device: N × maxSlabs
	stageWide []*matrix.Matrix // per device: (N+Pad) × maxSlabs·NB
	vexpHost  *matrix.Matrix   // N × NB
	ysum      *matrix.Matrix   // (N+Pad) × NB combine buffer
}

// NewShard partitions an n×n problem over the pool and allocates the
// per-device slab storage and workspaces. pad must be 0 (plain) or 1
// (checksum halo).
func NewShard(pool *Pool, n, nb, pad int) *Shard {
	pt := NewPartition(n, nb, pool.K())
	k := pool.K()
	sh := &Shard{Pool: pool, Part: pt, N: n, NB: nb, Pad: pad}
	sh.SlabM = make([]*gpu.Matrix, len(pt.Slabs))
	sh.Last = make([]sim.Event, len(pt.Slabs))
	sh.DevSlabs = make([][]int, k)
	for _, s := range pt.Slabs {
		sh.SlabM[s.Index] = pool.Devices[s.Owner].Alloc(n+pad, s.Cols+pad)
		sh.DevSlabs[s.Owner] = append(sh.DevSlabs[s.Owner], s.Index)
	}
	maxSlabs := pt.MaxSlabsPerOwner(k)
	mk := func() []*gpu.Matrix { return make([]*gpu.Matrix, k) }
	sh.dVexp, sh.dYb, sh.dTb = mk(), mk(), mk()
	sh.dVcol, sh.dYpart, sh.dWide, sh.dSbuf = mk(), mk(), mk(), mk()
	sh.dOnes, sh.dVsumCol, sh.dVsumRow = mk(), mk(), mk()
	sh.evVexp = make([]sim.Event, k)
	sh.evT = make([]sim.Event, k)
	sh.evY = make([]sim.Event, k)
	sh.lastGemv = make([]sim.Event, k)
	sh.priSlab = -1
	sh.nextPanelSlab = -1
	sh.vsumReady = make([]sim.Event, k)
	sh.vsumHave = make([]bool, k)
	sh.stageCol = make([]*matrix.Matrix, k)
	sh.stageWide = make([]*matrix.Matrix, k)
	for d, dev := range pool.Devices {
		if len(sh.DevSlabs[d]) == 0 {
			continue
		}
		sh.dVexp[d] = dev.Alloc(n, nb)
		sh.dYb[d] = dev.Alloc(n+pad, nb)
		sh.dTb[d] = dev.Alloc(nb, nb)
		sh.dVcol[d] = dev.Alloc(n, 1)
		sh.dYpart[d] = dev.Alloc(n, maxSlabs)
		sh.dWide[d] = dev.Alloc(n+pad, maxSlabs*nb)
		sh.dSbuf[d] = dev.Alloc(nb, pt.Width+pad)
		sh.stageCol[d] = matrix.New(n, maxSlabs)
		sh.stageWide[d] = matrix.New(n+pad, maxSlabs*nb)
		if pad > 0 {
			sh.dOnes[d] = dev.Alloc(n, 1)
			sh.dVsumCol[d] = dev.Alloc(nb, 1)
			sh.dVsumRow[d] = dev.Alloc(1, nb)
			ones := sh.dOnes[d]
			dev.Custom(dev.Params.VecDevice(n), func() {
				for i := range ones.Data {
					ones.Data[i] = 1
				}
			})
		}
	}
	sh.vexpHost = matrix.New(n, nb)
	sh.ysum = matrix.New(n+pad, nb)
	return sh
}

// Reattach reallocates the device-resident state of pool slot d on the
// device now occupying it — fail-stop recovery, after Pool.ReplaceDevice
// swapped a spare into a dead device's slot. Slab storage is allocated
// empty (Parity.Reconstruct fills it); workspaces mirror NewShard. All
// of the slot's completion events reset to time zero — the spare starts
// with drained streams — and the cached V column sums are invalidated
// so the left update recomputes them from the rebroadcast V (bitwise
// identical: same input, same kernel).
func (sh *Shard) Reattach(d int) {
	dev := sh.Pool.Devices[d]
	n, nb, pad := sh.N, sh.NB, sh.Pad
	for _, s := range sh.DevSlabs[d] {
		sh.SlabM[s] = dev.Alloc(n+pad, sh.Part.Slabs[s].Cols+pad)
		sh.Last[s] = sim.Event{}
	}
	sh.evVexp[d], sh.evT[d], sh.evY[d] = sim.Event{}, sim.Event{}, sim.Event{}
	sh.lastGemv[d] = sim.Event{}
	sh.vsumReady[d] = sim.Event{}
	sh.vsumHave[d] = false
	if len(sh.DevSlabs[d]) == 0 {
		return
	}
	maxSlabs := sh.Part.MaxSlabsPerOwner(sh.Pool.K())
	sh.dVexp[d] = dev.Alloc(n, nb)
	sh.dYb[d] = dev.Alloc(n+pad, nb)
	sh.dTb[d] = dev.Alloc(nb, nb)
	sh.dVcol[d] = dev.Alloc(n, 1)
	sh.dYpart[d] = dev.Alloc(n, maxSlabs)
	sh.dWide[d] = dev.Alloc(n+pad, maxSlabs*nb)
	sh.dSbuf[d] = dev.Alloc(nb, sh.Part.Width+pad)
	if pad > 0 {
		sh.dOnes[d] = dev.Alloc(n, 1)
		sh.dVsumCol[d] = dev.Alloc(nb, 1)
		sh.dVsumRow[d] = dev.Alloc(1, nb)
		ones := sh.dOnes[d]
		dev.Custom(dev.Params.VecDevice(n), func() {
			for i := range ones.Data {
				ones.Data[i] = 1
			}
		})
	}
}

// Rebroadcast re-uploads the current iteration's host-resident operands
// (dense expanded V, T, and the assembled Y) to pool slot d. Used when
// a device is replaced mid-iteration: the broadcast values its
// predecessor held are gone, but the host still has every one of them,
// so the remaining update kernels read identical bits from the spare.
func (sh *Shard) Rebroadcast(d int, tHost, yHost *matrix.Matrix, k, ib int) {
	dev := sh.Pool.Devices[d]
	sh.Pool.Issue(dev)
	sh.evVexp[d] = dev.H2DAsync(sh.dVexp[d], 0, 0, sh.vexpHost.View(0, 0, sh.N-k, ib))
	sh.evT[d] = dev.H2DAsync(sh.dTb[d], 0, 0, tHost.View(0, 0, ib, ib))
	sh.evY[d] = dev.H2DAsync(sh.dYb[d], 0, 0, yHost.View(0, 0, sh.N+sh.Pad, ib))
	sh.vsumHave[d] = false
}

// Free releases all device allocations of the shard.
func (sh *Shard) Free() {
	for s, m := range sh.SlabM {
		sh.Pool.Devices[sh.Part.Slabs[s].Owner].Free(m)
	}
	for d, dev := range sh.Pool.Devices {
		for _, m := range []*gpu.Matrix{sh.dVexp[d], sh.dYb[d], sh.dTb[d], sh.dVcol[d],
			sh.dYpart[d], sh.dWide[d], sh.dSbuf[d], sh.dOnes[d], sh.dVsumCol[d], sh.dVsumRow[d]} {
			if m != nil {
				dev.Free(m)
			}
		}
	}
}

// Owner returns the device owning slab s.
func (sh *Shard) Owner(s int) *gpu.Device {
	return sh.Pool.Devices[sh.Part.Slabs[s].Owner]
}

// Upload transfers the initial matrix into the slabs (data region only;
// the ft path encodes the checksum halo afterwards).
func (sh *Shard) Upload(hostA *matrix.Matrix) {
	for _, s := range sh.Part.Slabs {
		sh.Pool.Issue(sh.Owner(s.Index))
		sh.Last[s.Index] = sh.Owner(s.Index).H2DAsync(sh.SlabM[s.Index], 0, 0,
			hostA.View(0, s.Start, sh.N, s.Cols))
	}
}

// later merges two completion times: in the timeline model an event is
// purely an instant, so waiting on the later of two events waits on both.
func later(a, b sim.Event) sim.Event {
	if b.At > a.At {
		return b
	}
	return a
}

// PanelD2H copies the lower part of the panel (rows k..n-1 of columns
// p..p+ib-1) from the owning slab to the host and waits for it. When the
// previous iteration priority-updated exactly these columns, the copy
// depends only on that priority chain — the slab's remainder update can
// still be in flight on the compute stream (it touches disjoint columns),
// which is what lets the host factorize panel k+1 under trailing update k.
func (sh *Shard) PanelD2H(hostA *matrix.Matrix, p, k, ib int) {
	ps := sh.Part.SlabOf(p)
	dev := sh.Owner(ps)
	sh.Pool.Issue(dev)
	dep := sh.Last[ps]
	if sh.nextPanelSlab == ps {
		dep = sh.nextPanelEv
		sh.nextPanelSlab = -1
	}
	e := dev.D2HAsync(hostA.View(k, p, sh.N-k, ib), sh.SlabM[ps], k, p-sh.Part.Slabs[ps].Start, dep)
	sh.Last[ps] = later(sh.Last[ps], e)
	sh.Pool.Wait(e)
}

// updRange returns slab s's overlap with global columns [lo, n) in local
// coordinates; ok is false when the slab has no columns in range.
func (sh *Shard) updRange(s, lo int) (local, cnt, global int, ok bool) {
	sl := sh.Part.Slabs[s]
	g := sl.Start
	if g < lo {
		g = lo
	}
	if g >= sl.End() {
		return 0, 0, 0, false
	}
	return g - sl.Start, sl.End() - g, g, true
}

// panelBatch tracks one device's in-flight panel-GEMV partial transfer.
type panelBatch struct {
	ev     sim.Event
	active []int
}

// PanelGemvIssue starts the trailing-matrix part of panel column yCol's
// Y update, y(k:n-1) += A(k:n-1, p+ib:n-1)·v, sharded: each owner runs
// one GEMV per slab and returns its partial block in a single transfer.
// The caller overlaps host work with the round trip and then calls
// PanelGemvCollect.
//
// With la the GEMVs run on each device's lookahead stream and do not wait
// for the previous iteration's remainder update: the slab contents they
// would see there are one trailing update stale, so each partial carries
// correction terms against the still-broadcast previous V, T and Y
// (w₁ = V_sᵀ·v and w₂ = (TᵀVᵀC)_s·v, then y_s += A_s·v − Y·w₁ − V·w₂ —
// the lookahead GEMM restructuring), charged as extra stream time. The
// eager arithmetic is issued after the remainder in program order, so the
// corrected partial equals the non-lookahead one and results stay
// bit-identical.
func (sh *Shard) PanelGemvIssue(hostA *matrix.Matrix, yCol, p, k, ib int, la bool) {
	n := sh.N
	pool := sh.Pool
	pp := pool.Params
	c := p + yCol
	vtail := hostA.View(p+ib, c, n-p-ib, 1)

	sh.pendingGemv = sh.pendingGemv[:0]
	for d, dev := range pool.Devices {
		var kgs []sim.Event
		var active []int
		first := true
		var up sim.Event
		for _, s := range sh.DevSlabs[d] {
			lo, cnt, g, ok := sh.updRange(s, p+ib)
			if !ok {
				continue
			}
			if first {
				pool.Issue(dev)
				up = dev.H2DAsync(sh.dVcol[d], 0, 0, vtail, sh.lastGemv[d])
				first = false
			}
			var kg sim.Event
			if la {
				// Per-slab correction contraction: w₁ₛ = V_sᵀ·v and
				// w₂ₛ = S_sᵀ·v are small (cnt×ib) and fuse into the main
				// GEMV's pass over the slab (extra operand streaming, no
				// extra launch); applying Y·w₁ and V·w₂ happens once per
				// device below, not per slab.
				extra := 2 * (pp.GemvDevice(cnt, ib) - pp.KernelLaunchSec)
				kg = dev.GemvLA(blas.NoTrans, n-k, cnt, extra, 1, sh.SlabM[s], k, lo,
					sh.dVcol[d], g-(p+ib), 0, 0, sh.dYpart[d], 0, len(active),
					up, sh.evVexp[d], sh.evY[d])
				// The corrected read is an anti-dependency for this
				// iteration's updates of the slab, not a serialization
				// behind the previous remainder.
				sh.Last[s] = later(sh.Last[s], kg)
			} else {
				kg = dev.Gemv(blas.NoTrans, n-k, cnt, 1, sh.SlabM[s], k, lo,
					sh.dVcol[d], g-(p+ib), 0, 0, sh.dYpart[d], 0, len(active), up, sh.Last[s])
				sh.Last[s] = kg
			}
			kgs = append(kgs, kg)
			active = append(active, s)
		}
		if len(active) == 0 {
			continue
		}
		if la {
			// Apply the summed corrections to the device's partials:
			// y_d −= Y·Σw₁ₛ + V·Σw₂ₛ — one fused kernel streaming both
			// (n−k)×ib operands, once per device and column.
			kgs = []sim.Event{dev.CustomLA(pp.GemvDevice(n-k, 2*ib), func() {}, kgs...)}
		}
		ev := dev.D2HAsync(sh.stageCol[d].View(0, 0, n-k, len(active)), sh.dYpart[d], 0, 0, kgs...)
		sh.lastGemv[d] = ev
		sh.pendingGemv = append(sh.pendingGemv, panelBatch{ev: ev, active: active})
	}
}

// PanelGemvCollect waits for the partial blocks started by
// PanelGemvIssue and folds them into y column yCol in ascending slab
// order (the fixed evaluation tree that keeps results K-independent).
func (sh *Shard) PanelGemvCollect(y *matrix.Matrix, yCol, k int) {
	n := sh.N
	pool := sh.Pool
	pp := pool.Params
	batches := sh.pendingGemv
	for _, b := range batches {
		pool.Wait(b.ev)
	}
	// The partial for slab s sits in column pos(s) of its owner's
	// staging block. The combine is one fused pass — each partial and
	// the destination stream through memory once, instead of a full
	// read+write of y per slab — while the per-element addition order
	// (ascending slab) is exactly that of sequential AXPYs, so the
	// evaluation tree is unchanged.
	nact := 0
	for _, b := range batches {
		nact += len(b.active)
	}
	cost := float64(nact+2) / 2 * pp.VecHost(n-k)
	pool.HostOp(cost, func() {
		bySlab := map[int][]float64{}
		for _, b := range batches {
			d := sh.Part.Slabs[b.active[0]].Owner
			for pos, s := range b.active {
				bySlab[s] = sh.stageCol[d].Data[pos*sh.stageCol[d].Stride:]
			}
		}
		srcs := make([][]float64, 0, nact)
		for s := range sh.Part.Slabs {
			if src, ok := bySlab[s]; ok {
				srcs = append(srcs, src)
			}
		}
		dst := y.Data[yCol*y.Stride+k : yCol*y.Stride+k+(n-k)]
		for r := range dst {
			acc := dst[r]
			for _, src := range srcs {
				acc += src[r]
			}
			dst[r] = acc
		}
	})
}

// Broadcast uploads the freshly factored panel back to its owner slab,
// expands V to dense form on the host, and broadcasts Vexp and T to
// every participating device.
func (sh *Shard) Broadcast(hostA, tHost *matrix.Matrix, p, k, ib int) {
	n := sh.N
	pool := sh.Pool
	pp := pool.Params

	for d := range sh.vsumHave {
		sh.vsumHave[d] = false
	}

	ps := sh.Part.SlabOf(p)
	pdev := sh.Owner(ps)
	pool.Issue(pdev)
	sh.Last[ps] = pdev.H2DAsync(sh.SlabM[ps], k, p-sh.Part.Slabs[ps].Start,
		hostA.View(k, p, n-k, ib), sh.Last[ps])

	// Dense Vexp: row r pairs with trailing column k+r; unit diagonal,
	// zeros above, stored reflector entries below.
	vexp := sh.vexpHost
	pool.HostOp(pp.GemvHost(n-k, ib)/2, func() {
		for j := 0; j < ib; j++ {
			col := vexp.Data[j*vexp.Stride : j*vexp.Stride+(n-k)]
			for r := 0; r < j && r < n-k; r++ {
				col[r] = 0
			}
			if j < n-k {
				col[j] = 1
			}
			src := hostA.Data[(p+j)*hostA.Stride:]
			for r := j + 1; r < n-k; r++ {
				col[r] = src[k+r]
			}
		}
	})
	for d, dev := range pool.Devices {
		if len(sh.DevSlabs[d]) == 0 {
			continue
		}
		pool.Issue(dev)
		sh.evVexp[d] = dev.H2DAsync(sh.dVexp[d], 0, 0, vexp.View(0, 0, n-k, ib))
		sh.evT[d] = dev.H2DAsync(sh.dTb[d], 0, 0, tHost.View(0, 0, ib, ib))
	}
}

// YTop computes Y's top rows (and, with Pad, the Yce checksum row):
// per-slab partials of A(0:k-1, k:n-1)·Vexp are combined ascending on
// the host, the T factor is applied there, and the result is written
// into yHost rows 0..k-1 (and row n).
func (sh *Shard) YTop(yHost, tHost *matrix.Matrix, p, k, ib int) {
	n := sh.N
	pool := sh.Pool
	pp := pool.Params
	pad := sh.Pad

	type devBatch struct {
		ev     sim.Event
		nA     int
		active []int
	}
	var batches []devBatch
	for d, dev := range pool.Devices {
		var kgs []sim.Event
		var active []int
		for _, s := range sh.DevSlabs[d] {
			lo, cnt, g, ok := sh.updRange(s, k)
			if !ok {
				continue
			}
			if len(active) == 0 {
				pool.Issue(dev)
			}
			col := len(active) * sh.NB
			kg := dev.Gemm(blas.NoTrans, blas.NoTrans, k, ib, cnt, 1,
				sh.SlabM[s], 0, lo, sh.dVexp[d], g-k, 0, 0, sh.dWide[d], 0, col,
				sh.evVexp[d], sh.Last[s])
			if pad > 0 {
				// Checksum-row partial: (eᵀA_pre)_slab·Vexp — row n of the
				// slab holds the maintained column sums of A *before* this
				// panel's factorization, which is exactly what the Yce
				// identity needs. The panel slab must NOT be re-encoded
				// before this call: Broadcast only rewrites data rows, so
				// its pre-factorization checksum row is still in place.
				kg = dev.Gemm(blas.NoTrans, blas.NoTrans, 1, ib, cnt, 1,
					sh.SlabM[s], n, lo, sh.dVexp[d], g-k, 0, 0, sh.dWide[d], k, col, kg)
			}
			sh.Last[s] = kg
			kgs = append(kgs, kg)
			active = append(active, s)
		}
		if len(active) == 0 {
			continue
		}
		ev := dev.D2HAsync(sh.stageWide[d].View(0, 0, k+pad, len(active)*sh.NB), sh.dWide[d], 0, 0, kgs...)
		batches = append(batches, devBatch{ev: ev, nA: len(active), active: active})
	}
	for _, b := range batches {
		pool.Wait(b.ev)
	}
	cost := pp.GemmHost(k+pad, ib, ib)/2 + float64(len(sh.Part.Slabs))*pp.GemvHost(k+pad, ib)/2
	pool.HostOp(cost, func() {
		ys := sh.ysum
		for j := 0; j < ib; j++ {
			col := ys.Data[j*ys.Stride : j*ys.Stride+k+pad]
			for r := range col {
				col[r] = 0
			}
		}
		bySlab := map[int]int{}
		for _, b := range batches {
			for pos, s := range b.active {
				bySlab[s] = pos
			}
		}
		for s := range sh.Part.Slabs {
			pos, ok := bySlab[s]
			if !ok {
				continue
			}
			d := sh.Part.Slabs[s].Owner
			st := sh.stageWide[d]
			for j := 0; j < ib; j++ {
				blas.Daxpy(k+pad, 1, st.Data[(pos*sh.NB+j)*st.Stride:], 1, ys.Data[j*ys.Stride:], 1)
			}
		}
		// Apply T on the right: Y = (A·V)·T, including the ce row.
		blas.Dtrmm(blas.Right, blas.Upper, blas.NoTrans, blas.NonUnit, k+pad, ib, 1,
			tHost.Data, tHost.Stride, ys.Data, ys.Stride)
		for j := 0; j < ib; j++ {
			blas.Dcopy(k, ys.Data[j*ys.Stride:], 1, yHost.Data[j*yHost.Stride:], 1)
			if pad > 0 {
				yHost.Data[j*yHost.Stride+n] = ys.Data[j*ys.Stride+k]
			}
		}
	})
}

// BroadcastY uploads the assembled Y (rows 0..n-1 plus the Yce row with
// Pad) to every participating device.
func (sh *Shard) BroadcastY(yHost *matrix.Matrix, ib int) {
	for d, dev := range sh.Pool.Devices {
		if len(sh.DevSlabs[d]) == 0 {
			continue
		}
		sh.Pool.Issue(dev)
		sh.evY[d] = dev.H2DAsync(sh.dYb[d], 0, 0, yHost.View(0, 0, sh.N+sh.Pad, ib))
	}
}

// vsumRow returns the event for device d's global V column-sum vector
// (eᵀV, 1×ib), computing it at most once per iteration: the priority and
// remainder left-update parts consume the same vector.
func (sh *Shard) vsumRow(d int, dev *gpu.Device, vrows, ib int) sim.Event {
	if !sh.vsumHave[d] {
		sh.vsumReady[d] = dev.ColSums(sh.dVexp[d], 0, 0, vrows, ib, sh.dVsumRow[d], 0, 0, sh.evVexp[d])
		sh.vsumHave[d] = true
	}
	return sh.vsumReady[d]
}

// PriorityUpdate applies the complete right+left trailing-update chain to
// just the next panel's columns [p+ib, p+ib+ib2) on their owning device,
// enqueued ahead of every remainder kernel — the depth-1 lookahead split.
// The checksum algebra splits the same way: when the priority columns sit
// in a non-panel halo slab, their checksum-row entries ride the priority
// chain (row n of the right GEMM, plus the left chkrow GEMM restricted to
// those columns), while the slab's checksum column — one vector spanning
// every column of the slab — stays whole in the remainder. Per-element
// arithmetic is exactly the unsplit kernels' restricted to disjoint column
// ranges, so results are bit-identical to the non-lookahead schedule.
//
// RightUpdate/LeftUpdate skip the priority columns for the rest of this
// iteration, and the next iteration's PanelD2H starts at the recorded
// priority event instead of after the whole remainder.
func (sh *Shard) PriorityUpdate(p, k, ib, ib2 int) {
	n := sh.N
	pool := sh.Pool
	ps := sh.Part.SlabOf(p)
	nextP := p + ib
	ns := sh.Part.SlabOf(nextP)
	d := sh.Part.Slabs[ns].Owner
	dev := pool.Devices[d]
	lo := nextP - sh.Part.Slabs[ns].Start
	pool.Issue(dev)

	// Right: the Vexp rows pairing with columns [nextP, nextP+ib2) start
	// at row nextP−k — splitting the GEMM by output columns offsets the
	// transposed operand's rows by the same amount.
	rows := n
	if sh.Pad > 0 && ns != ps {
		rows = n + 1 // checksum row rides as row n (Y's row n is Yce)
	}
	e := dev.Gemm(blas.NoTrans, blas.Trans, rows, ib2, ib, -1,
		sh.dYb[d], 0, 0, sh.dVexp[d], nextP-k, 0, 1, sh.SlabM[ns], 0, lo,
		sh.evVexp[d], sh.evY[d], sh.Last[ns])

	// Left: S = Tᵀ·Vᵀ·C over the priority columns only, then C −= V·S.
	e = dev.Gemm(blas.Trans, blas.NoTrans, ib, ib2, n-k, 1,
		sh.dVexp[d], 0, 0, sh.SlabM[ns], k, lo, 0, sh.dSbuf[d], 0, 0,
		sh.evVexp[d], e)
	e = dev.Trmm(blas.Left, blas.Upper, blas.Trans, blas.NonUnit, ib, ib2, 1,
		sh.dTb[d], 0, 0, sh.dSbuf[d], 0, 0, sh.evT[d], e)
	e = dev.Gemm(blas.NoTrans, blas.NoTrans, n-k, ib2, ib, -1,
		sh.dVexp[d], 0, 0, sh.dSbuf[d], 0, 0, 1, sh.SlabM[ns], k, lo, e)
	if sh.Pad > 0 && ns != ps {
		e = dev.Gemm(blas.NoTrans, blas.NoTrans, 1, ib2, ib, -1,
			sh.dVsumRow[d], 0, 0, sh.dSbuf[d], 0, 0, 1, sh.SlabM[ns], n, lo,
			sh.vsumRow(d, dev, n-k, ib), e)
	}
	sh.Last[ns] = e
	sh.priSlab, sh.priEnd = ns, nextP+ib2
	sh.nextPanelSlab, sh.nextPanelEv = ns, e
}

// RightUpdate applies A := A − Y·Vexpᵀ to every slab's share of columns
// k..n-1 on its owner. Non-panel slabs with Pad carry the halo through
// the update: the checksum row rides as row n of the GEMM (Y's row n is
// Yce) and the checksum column is updated with the slab's V column sums.
// The panel slab is updated data-only (it is re-encoded afterwards).
// Columns already covered by PriorityUpdate are skipped; their slab's
// whole-slab checksum column update still runs here.
func (sh *Shard) RightUpdate(p, k, ib int) {
	n := sh.N
	pool := sh.Pool
	ps := sh.Part.SlabOf(p)

	for d, dev := range pool.Devices {
		issued := false
		for _, s := range sh.DevSlabs[d] {
			lo, cnt, g, ok := sh.updRange(s, k)
			if !ok {
				continue
			}
			if !issued {
				pool.Issue(dev)
				issued = true
			}
			deps := []sim.Event{sh.evVexp[d], sh.evY[d], sh.Last[s]}
			if s == ps {
				// Panel-column share (rows 0..k-1 only — the lower rows hold
				// the freshly uploaded V) ...
				e := sh.Last[s]
				if ib > 1 {
					e = dev.Gemm(blas.NoTrans, blas.Trans, k, ib-1, ib, -1,
						sh.dYb[d], 0, 0, sh.dVexp[d], 0, 0, 1, sh.SlabM[s], 0, k-sh.Part.Slabs[s].Start, deps...)
				}
				// ... and the trailing share, full data height, no halo,
				// starting past any priority-updated columns.
				tFrom := p + ib
				if s == sh.priSlab {
					tFrom = sh.priEnd
				}
				if tLo, tCnt, tg, tok := sh.updRange(s, tFrom); tok {
					e = dev.Gemm(blas.NoTrans, blas.Trans, n, tCnt, ib, -1,
						sh.dYb[d], 0, 0, sh.dVexp[d], tg-k, 0, 1, sh.SlabM[s], 0, tLo,
						sh.evVexp[d], sh.evY[d], e)
				}
				sh.Last[s] = e
				continue
			}
			e := sh.Last[s]
			dLo, dCnt, dg, dok := lo, cnt, g, true
			if s == sh.priSlab {
				dLo, dCnt, dg, dok = sh.updRange(s, sh.priEnd)
			}
			if dok {
				e = dev.Gemm(blas.NoTrans, blas.Trans, n+sh.Pad, dCnt, ib, -1,
					sh.dYb[d], 0, 0, sh.dVexp[d], dg-k, 0, 1, sh.SlabM[s], 0, dLo, deps...)
			}
			if sh.Pad > 0 {
				// Column-sum vector of the slab's Vexp rows — always the
				// slab's full column range, priority columns included: the
				// checksum column is one vector spanning every column, so
				// its update stays whole here — then chkcol −= Y·vsumᵀ
				// (row n of Y keeps the corner coherent).
				vs := dev.Gemv(blas.Trans, cnt, ib, 1, sh.dVexp[d], g-k, 0,
					sh.dOnes[d], 0, 0, 0, sh.dVsumCol[d], 0, 0, sh.evVexp[d])
				e = dev.Gemv(blas.NoTrans, n+1, ib, -1, sh.dYb[d], 0, 0,
					sh.dVsumCol[d], 0, 0, 1, sh.SlabM[s], 0, sh.Part.Slabs[s].Cols, vs, e)
			}
			sh.Last[s] = e
		}
	}
}

// LeftUpdate applies A := (I − V·Tᵀ·Vᵀ)·A to every slab's share of the
// trailing columns p+ib..n-1 on its owner, keeping the intermediate
// S = Tᵀ·Vᵀ·C per device. With Pad, non-panel slabs extend the update to
// the checksum column (the halo transforms by the same operator) and
// maintain the checksum row with the global V column-sum vector.
func (sh *Shard) LeftUpdate(p, k, ib int) {
	n := sh.N
	pool := sh.Pool
	ps := sh.Part.SlabOf(p)

	for d, dev := range pool.Devices {
		issued := false
		for _, s := range sh.DevSlabs[d] {
			from := p + ib
			if s == sh.priSlab {
				from = sh.priEnd
			}
			pad := sh.Pad
			if s == ps {
				pad = 0
			}
			lo, cnt, _, ok := sh.updRange(s, from)
			if !ok {
				if pad == 0 || s != sh.priSlab {
					continue
				}
				// The priority part covered every data column of the slab;
				// the checksum column still transforms by the operator here.
				lo, cnt = sh.Part.Slabs[s].Cols, 0
			}
			if !issued {
				pool.Issue(dev)
				issued = true
			}
			e := dev.Gemm(blas.Trans, blas.NoTrans, ib, cnt+pad, n-k, 1,
				sh.dVexp[d], 0, 0, sh.SlabM[s], k, lo, 0, sh.dSbuf[d], 0, 0,
				sh.evVexp[d], sh.Last[s])
			e = dev.Trmm(blas.Left, blas.Upper, blas.Trans, blas.NonUnit, ib, cnt+pad, 1,
				sh.dTb[d], 0, 0, sh.dSbuf[d], 0, 0, sh.evT[d], e)
			e = dev.Gemm(blas.NoTrans, blas.NoTrans, n-k, cnt+pad, ib, -1,
				sh.dVexp[d], 0, 0, sh.dSbuf[d], 0, 0, 1, sh.SlabM[s], k, lo, e)
			if pad > 0 {
				// chkrow −= (eᵀV)·S, covering the chkcol column's corner too.
				e = dev.Gemm(blas.NoTrans, blas.NoTrans, 1, cnt+pad, ib, -1,
					sh.dVsumRow[d], 0, 0, sh.dSbuf[d], 0, 0, 1, sh.SlabM[s], n, lo,
					sh.vsumRow(d, dev, n-k, ib), e)
			}
			sh.Last[s] = e
		}
	}
	sh.priSlab = -1
}

// Gather copies every slab's full data region back to the host matrix
// and waits for all transfers. Because the device copies are
// authoritative for the entire matrix, the gather also heals any
// host-side corruption of already-finished columns.
func (sh *Shard) Gather(hostA *matrix.Matrix) {
	var evs []sim.Event
	for _, s := range sh.Part.Slabs {
		dev := sh.Owner(s.Index)
		sh.Pool.Issue(dev)
		e := dev.D2HAsync(hostA.View(0, s.Start, sh.N, s.Cols), sh.SlabM[s.Index], 0, 0, sh.Last[s.Index])
		sh.Last[s.Index] = e
		evs = append(evs, e)
	}
	for _, e := range evs {
		sh.Pool.Wait(e)
	}
}
