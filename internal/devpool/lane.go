package devpool

import (
	"fmt"
	"sync"
)

// Fractional device leases (DESIGN.md §15).
//
// A whole-device lease wastes most of a K40c on a small reduction: at
// N=256 the FT reduction keeps the SMs ~37% busy and each DMA engine
// ~25% busy, so a device could carry several such jobs concurrently if
// the serving layer could model their contention. LaneClock is that
// model: each device exposes M lanes (fractional leases), every job
// leased onto a lane runs on its own fresh gpu.Device — so its bits and
// its standalone cost model are exactly the single-job ones — and the
// lane clock then places that standalone run onto the shared physical
// device, charging its demand against the engines all lanes contend
// for.
//
// The contention model is work-conserving with three engine capacities,
// matching the simulated K40c's concurrency (GK110B: one compute
// fabric's worth of SMs plus two independent DMA engines, one per copy
// direction):
//
//	compute — kernel busy-seconds (compute + lookahead streams)
//	h2d     — host-to-device DMA busy-seconds
//	d2h     — device-to-host DMA busy-seconds
//
// A run charged to lane l with standalone makespan s and engine demand
// (c, h, d) finishes at
//
//	end = max(lane[l] + s, C+c, H+h, D+d)
//
// where lane[l] is the lane's serial frontier and C/H/D are the
// engines' cumulative charged demand (each engine is a serial resource;
// the run cannot finish before everything charged through an engine it
// uses has been processed). Lanes are serial chains — a lane's next run
// starts at its previous run's end — and the device makespan is the
// maximum over lane frontiers, which the engine bounds push up as soon
// as any engine saturates. With M=1 the model degenerates to
// whole-device serial leasing (end = lane + s dominates), which is what
// the throughput benchmark's comparison arm runs.
type LaneClock struct {
	mu    sync.Mutex
	lanes []float64
	// Cumulative charged demand per shared engine: compute, h2d, d2h.
	compute, h2d, d2h float64
}

// EngineDemand is what one run asks of the shared device: its makespan
// when run alone, and its busy-seconds on each contended engine
// (gpu.Device reports these as Compute/Lookahead Busy() and the
// "h2d"/"d2h" entries of TimeBreakdown()).
type EngineDemand struct {
	Standalone float64
	Compute    float64
	H2D        float64
	D2H        float64
}

// NewLaneClock builds the virtual clock of one device with m lanes.
func NewLaneClock(m int) *LaneClock {
	if m < 1 {
		m = 1
	}
	return &LaneClock{lanes: make([]float64, m)}
}

// Lanes returns the lane count.
func (c *LaneClock) Lanes() int { return len(c.lanes) }

// Run charges one run's demand to a lane and returns its modeled
// [start, end) window on the shared device. Panics on a bad lane index
// (lanes are leased, never guessed).
func (c *LaneClock) Run(lane int, d EngineDemand) (start, end float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if lane < 0 || lane >= len(c.lanes) {
		panic(fmt.Sprintf("devpool: lane %d outside [0,%d)", lane, len(c.lanes)))
	}
	start = c.lanes[lane]
	end = start + d.Standalone
	// Only engines the run actually uses can bound it: charging zero
	// demand must not inherit the engine's backlog.
	if d.Compute > 0 {
		c.compute += d.Compute
		end = max(end, c.compute)
	}
	if d.H2D > 0 {
		c.h2d += d.H2D
		end = max(end, c.h2d)
	}
	if d.D2H > 0 {
		c.d2h += d.D2H
		end = max(end, c.d2h)
	}
	c.lanes[lane] = end
	return start, end
}

// Makespan is the modeled completion time of everything charged so far:
// the latest lane frontier (lane frontiers already absorb the engine
// bounds of the runs placed on them).
func (c *LaneClock) Makespan() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var m float64
	for _, t := range c.lanes {
		m = max(m, t)
	}
	return m
}
