// Package devpool models a pool of K simulated accelerators plus the
// 1-D block-column partitioner that shards the trailing-matrix work of
// the hybrid reductions across them.
//
// # Execution model
//
// Each pool member is a gpu.Device with its own address space, compute
// and copy streams, and driver ("dK-host") timeline: the driver lane
// models the per-device thread that issues commands, so the launch
// overhead of K command streams is paid concurrently, exactly as K
// driver threads pinned to K contexts would behave. The algorithm's own
// serial CPU work — panel factorization, partial-sum combines — runs on
// a separate main-host timeline owned by the pool. Makespan is the
// maximum over every lane of every device and the main host.
//
// # Determinism contract
//
// The partition is a fixed grid derived only from (n, nb) — never from
// K. Every cross-slab contraction in the reductions is computed as
// per-slab partials combined on the host in ascending slab order, so
// the floating-point evaluation tree is identical at every device
// count: K changes placement and simulated time, never bits. (In the
// simulator, kernels execute on the shared host BLAS substrate, so
// *where* a slab-local operation runs cannot change its result either.)
//
// # Fail-stop device loss (beyond-paper, DESIGN.md §13)
//
// A pool device can die permanently mid-run (gpu.Device.Kill), taking
// its resident slabs with it. The pool supports surviving such a loss:
// a Parity holds the bitwise XOR of each snake-round's slabs on a
// dedicated K+1th checksum device (1/K memory overhead), refreshed at
// parity-consistent sync points of each blocked iteration; on a loss,
// Parity.Reconstruct rebuilds the dead device's slabs bit-exactly from
// parity ⊕ survivors, Pool.ReplaceDevice substitutes a spare into the
// dead slot (ownership bookkeeping is by pool index, so nothing else
// moves), and Shard.Reattach reallocates the working buffers there.
// This layer extends the paper's transient-error model per the
// DESIGN.md §2 convention; the reduction's digests are bit-identical
// with it on or off.
package devpool

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/gpu"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Slab is one block-column range of the fixed partition grid.
type Slab struct {
	// Index is the slab's position in the grid (ascending column order).
	Index int
	// Start is the first global column; Cols is the slab width (equal to
	// Partition.Width except possibly for the last slab).
	Start, Cols int
	// Owner is the pool index of the device holding the slab, assigned
	// in snake (boustrophedon) order: 0,1,…,K-1,K-1,…,1,0,0,1,… Slab
	// lifetime work grows roughly linearly with the slab index (column c
	// is updated by every panel left of it, so right slabs stay active
	// longest); snake pairing balances those linear weights across
	// devices where plain round-robin leaves the owner of the rightmost
	// slabs with ~2× the work.
	Owner int
}

// End returns one past the slab's last global column.
func (s Slab) End() int { return s.Start + s.Cols }

// Partition is the fixed 1-D block-column grid for an n×n matrix with
// panel width nb. The grid depends only on (n, nb): device count assigns
// owners but never moves slab boundaries, which is what makes results
// bit-identical at every K.
type Partition struct {
	N, NB int
	// Width is the slab width: a multiple of nb so every panel falls
	// entirely inside one slab.
	Width int
	Slabs []Slab
}

// NewPartition builds the fixed grid for an n×n matrix with block size
// nb, assigning slab owners in snake order over k devices.
func NewPartition(n, nb, k int) Partition {
	if nb <= 0 || n < 0 || k <= 0 {
		panic(fmt.Sprintf("devpool: NewPartition(%d,%d,%d)", n, nb, k))
	}
	// Slab width trades per-iteration balance against per-slab overhead:
	// each blocked iteration's critical path carries max-over-devices
	// update work, imbalanced by up to one slab, so narrow slabs scale
	// better with K — but every slab adds a kernel launch and a partial
	// column to each panel GEMV round trip. 128 columns is the measured
	// sweet spot for 2–4 devices at the paper's N≈2048 (≥2.5× at K=4);
	// small problems aim near n/8 so tests exercise real distribution.
	// Rounded up to a multiple of nb, independent of k.
	target := n / 8
	if target > 128 {
		target = 128
	}
	if target < nb {
		target = nb
	}
	width := (target + nb - 1) / nb * nb
	pt := Partition{N: n, NB: nb, Width: width}
	for start := 0; start < n; start += width {
		w := width
		if start+w > n {
			w = n - start
		}
		idx := len(pt.Slabs)
		pt.Slabs = append(pt.Slabs, Slab{Index: idx, Start: start, Cols: w, Owner: snakeOwner(idx, k)})
	}
	return pt
}

// snakeOwner assigns slab s of a k-device pool in boustrophedon order
// (see Slab.Owner).
func snakeOwner(s, k int) int {
	q, r := s/k, s%k
	if q%2 == 1 {
		return k - 1 - r
	}
	return r
}

// SlabOf returns the index of the slab containing global column c.
func (pt Partition) SlabOf(c int) int { return c / pt.Width }

// MaxSlabsPerOwner reports the largest number of slabs any single owner
// holds (sizes per-device staging buffers).
func (pt Partition) MaxSlabsPerOwner(k int) int {
	counts := make([]int, k)
	m := 0
	for _, s := range pt.Slabs {
		counts[s.Owner]++
		if counts[s.Owner] > m {
			m = counts[s.Owner]
		}
	}
	return m
}

// Pool owns K simulated devices and the main-host timeline.
type Pool struct {
	Devices []*gpu.Device
	// Host is the algorithm's serial CPU timeline (the main thread);
	// per-device launch overhead lives on each device's own driver lane.
	Host   *sim.Timeline
	Params sim.Params
	Mode   gpu.Mode

	reg        *obs.Registry
	phase      string
	job        string
	opHost     *obs.Counter
	phaseHists map[string]*obs.Histogram
	tracing    bool
	spans      []gpu.Span
	ctx        context.Context
}

// New builds a pool of k freshly allocated indexed devices.
func New(k int, p sim.Params, mode gpu.Mode) *Pool {
	if k <= 0 {
		panic(fmt.Sprintf("devpool: New(%d)", k))
	}
	devs := make([]*gpu.Device, k)
	for i := range devs {
		devs[i] = gpu.NewIndexed(p, mode, i)
	}
	return Wrap(devs)
}

// Wrap builds a pool around existing devices (e.g. a device subset
// leased from the serving layer). All devices must share params/mode.
func Wrap(devs []*gpu.Device) *Pool {
	if len(devs) == 0 {
		panic("devpool: Wrap with no devices")
	}
	return &Pool{
		Devices: devs,
		Host:    sim.NewTimeline("main-host"),
		Params:  devs[0].Params,
		Mode:    devs[0].Mode,
	}
}

// K reports the device count.
func (pl *Pool) K() int { return len(pl.Devices) }

// ReplaceDevice substitutes dev into pool slot i (fail-stop recovery:
// the dead device is dropped, the spare inherits its pool position so
// slab ownership, snake order, and every index-keyed structure remain
// valid). The replacement inherits the pool's registry, job, phase, and
// cancellation context; its clocks are advanced to the main host's now,
// modeling a spare attached at the recovery instant.
func (pl *Pool) ReplaceDevice(i int, dev *gpu.Device) {
	if i < 0 || i >= len(pl.Devices) {
		panic(fmt.Sprintf("devpool: ReplaceDevice(%d) of %d", i, len(pl.Devices)))
	}
	pl.Devices[i] = dev
	if pl.reg != nil {
		dev.SetObs(pl.reg)
	}
	dev.SetJob(pl.job)
	dev.SetPhase(pl.phase)
	dev.SetContext(pl.ctx)
	if pl.tracing {
		dev.EnableTrace()
	}
	dev.Host.AdvanceTo(pl.Host.Tail())
}

// SetObs attaches a metrics registry to the pool and every device.
func (pl *Pool) SetObs(r *obs.Registry) {
	pl.reg = r
	pl.opHost = nil
	pl.phaseHists = make(map[string]*obs.Histogram)
	for _, d := range pl.Devices {
		d.SetObs(r)
	}
}

// Obs returns the attached registry (nil when detached).
func (pl *Pool) Obs() *obs.Registry { return pl.reg }

// SetJob sets (or clears, with "") the job identifier labeled onto every
// subsequently emitted pool and device series, so a shared serving
// registry attributes each cost to the request that caused it.
func (pl *Pool) SetJob(job string) {
	if pl.job != job {
		pl.job = job
		pl.opHost = nil
		pl.phaseHists = make(map[string]*obs.Histogram)
	}
	for _, d := range pl.Devices {
		d.SetJob(job)
	}
}

// label appends the job label to the pool's own series when set.
func (pl *Pool) label(ls ...obs.Label) []obs.Label {
	if pl.job != "" {
		ls = append(ls, obs.L("job", pl.job))
	}
	return ls
}

// SetContext attaches a cancellation context to the pool and devices.
func (pl *Pool) SetContext(ctx context.Context) {
	pl.ctx = ctx
	for _, d := range pl.Devices {
		d.SetContext(ctx)
	}
}

// CtxErr reports the attached context's error, if any.
func (pl *Pool) CtxErr() error {
	if pl.ctx == nil {
		return nil
	}
	return pl.ctx.Err()
}

// SetPhase names the phase subsequent costs are attributed to, on the
// main host and on every device, returning the previous phase.
func (pl *Pool) SetPhase(name string) string {
	prev := pl.phase
	pl.phase = name
	for _, d := range pl.Devices {
		d.SetPhase(name)
	}
	return prev
}

// HostOp charges cost seconds of serial CPU work on the main-host lane
// and, in Real mode, runs f.
func (pl *Pool) HostOp(cost float64, f func()) {
	e := pl.Host.Schedule(cost)
	if pl.reg != nil {
		if pl.opHost == nil {
			pl.opHost = pl.reg.Counter("op_seconds_total",
				pl.label(obs.L("kind", "host"), obs.L("device", "main"))...)
		}
		pl.opHost.Add(cost)
		phase := pl.phase
		if phase == "" {
			phase = "other"
		}
		h := pl.phaseHists[phase]
		if h == nil {
			h = pl.reg.Histogram("phase_seconds", obs.DefaultDurationBuckets,
				pl.label(obs.L("phase", phase), obs.L("device", "main"))...)
			pl.phaseHists[phase] = h
		}
		h.Observe(cost)
	}
	if pl.tracing {
		pl.spans = append(pl.spans, gpu.Span{Lane: pl.Host.Name(), Kind: "host", Start: e.At - cost, End: e.At})
	}
	if pl.Mode == gpu.Real && f != nil {
		f()
	}
}

// Now returns the current instant of the main host thread; pass it as a
// dependency to device operations issued from the algorithm.
func (pl *Pool) Now() sim.Event { return sim.Event{At: pl.Host.Tail()} }

// Issue models the main thread handing commands to a device's driver:
// the driver cannot process a command before the main thread issued it,
// so its lane is advanced (idle) to the main thread's current instant.
// Call it before a batch of operations on one device.
func (pl *Pool) Issue(d *gpu.Device) {
	d.Host.AdvanceTo(pl.Host.Tail())
}

// Wait blocks the main host thread until the event completes
// (cudaEventSynchronize from the algorithm thread).
func (pl *Pool) Wait(e sim.Event) {
	pl.Host.AdvanceTo(e.At)
}

// WaitAll blocks the main host until every lane of every device drains.
func (pl *Pool) WaitAll() {
	t := 0.0
	for _, d := range pl.Devices {
		if e := d.Elapsed(); e > t {
			t = e
		}
	}
	pl.Host.AdvanceTo(t)
}

// Elapsed returns the pool makespan: the maximum over the main host and
// every device lane.
func (pl *Pool) Elapsed() float64 {
	t := pl.Host.Tail()
	for _, d := range pl.Devices {
		if e := d.Elapsed(); e > t {
			t = e
		}
	}
	return t
}

// FinishRun publishes end-of-run gauges: each device's labeled series
// plus the pool aggregate makespan (max over devices — the simulated
// wall clock of the whole multi-device run).
func (pl *Pool) FinishRun() {
	for _, d := range pl.Devices {
		d.FinishRun()
	}
	if pl.reg == nil {
		return
	}
	pl.reg.Gauge("sim_makespan_seconds", pl.label()...).Set(pl.Elapsed())
	pl.reg.Gauge("pool_devices", pl.label()...).Set(float64(pl.K()))
	l := pl.label(obs.L("lane", pl.Host.Name()))
	pl.reg.Gauge("lane_busy_seconds", l...).Set(pl.Host.Busy())
	pl.reg.Gauge("lane_ops", l...).Set(float64(pl.Host.Ops()))
	pl.reg.Gauge("lane_utilization", l...).Set(pl.Host.Utilization(pl.Elapsed()))
}

// EnableTrace starts span recording on the main host and every device.
func (pl *Pool) EnableTrace() {
	pl.tracing = true
	pl.spans = make([]gpu.Span, 0, 1024)
	for _, d := range pl.Devices {
		d.EnableTrace()
	}
}

// Trace returns the merged spans of the main host and every device.
func (pl *Pool) Trace() []gpu.Span {
	out := append([]gpu.Span(nil), pl.spans...)
	for _, d := range pl.Devices {
		out = append(out, d.Trace()...)
	}
	return out
}

// WriteChromeTrace exports the merged multi-device trace: one thread
// lane for the main host and three per device ("d0-host", "d0-compute",
// "d0-copy", …), ordered main first then by device.
func (pl *Pool) WriteChromeTrace(w io.Writer) error {
	type evt struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		Ts   float64        `json:"ts"`
		Dur  float64        `json:"dur,omitempty"`
		Pid  int            `json:"pid"`
		Tid  int            `json:"tid"`
		Args map[string]any `json:"args,omitempty"`
	}
	tids := map[string]int{pl.Host.Name(): 0}
	order := []string{pl.Host.Name()}
	for _, d := range pl.Devices {
		for _, t := range []*sim.Timeline{d.Host, d.Compute, d.Copy} {
			tids[t.Name()] = len(order)
			order = append(order, t.Name())
		}
	}
	spans := pl.Trace()
	for _, s := range spans {
		if _, ok := tids[s.Lane]; !ok {
			tids[s.Lane] = len(order)
			order = append(order, s.Lane)
		}
	}
	events := make([]evt, 0, len(spans)+len(order)+1)
	events = append(events, evt{Name: "process_name", Ph: "M", Pid: 1,
		Args: map[string]any{"name": "fthess-sim-pool"}})
	for _, lane := range order {
		events = append(events, evt{Name: "thread_name", Ph: "M", Pid: 1, Tid: tids[lane],
			Args: map[string]any{"name": lane}})
	}
	for _, s := range spans {
		events = append(events, evt{Name: s.Kind, Ph: "X",
			Ts: s.Start * 1e6, Dur: (s.End - s.Start) * 1e6, Pid: 1, Tid: tids[s.Lane]})
	}
	return json.NewEncoder(w).Encode(events)
}

// TraceSummary prints one line per lane (main host first, then device
// lanes in pool order, then any others sorted) with span counts and
// busy time.
func (pl *Pool) TraceSummary(w io.Writer) {
	type agg struct {
		count int
		busy  float64
	}
	lanes := map[string]*agg{}
	for _, s := range pl.Trace() {
		a := lanes[s.Lane]
		if a == nil {
			a = &agg{}
			lanes[s.Lane] = a
		}
		a.count++
		a.busy += s.End - s.Start
	}
	known := []string{pl.Host.Name()}
	for _, d := range pl.Devices {
		known = append(known, d.Host.Name(), d.Compute.Name(), d.Copy.Name())
	}
	isKnown := map[string]bool{}
	for _, k := range known {
		isKnown[k] = true
	}
	var rest []string
	for lane := range lanes {
		if !isKnown[lane] {
			rest = append(rest, lane)
		}
	}
	sort.Strings(rest)
	for _, lane := range append(known, rest...) {
		if a := lanes[lane]; a != nil {
			fmt.Fprintf(w, "  %-12s %6d spans, %.4fs busy\n", lane, a.count, a.busy)
		}
	}
}
