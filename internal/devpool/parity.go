package devpool

import (
	"fmt"
	"math"

	"repro/internal/gpu"
	"repro/internal/matrix"
	"repro/internal/sim"
)

// Parity is the fail-stop encoding of a shard (beyond-paper, DESIGN.md
// §13): for each snake round — the K consecutive slabs r·K..(r+1)·K−1,
// which by construction live on K distinct devices — a dedicated parity
// device holds the columnwise XOR of the round's slabs, bit pattern by
// bit pattern. XOR over raw float64 bits (GF(2) addition) rather than a
// floating-point sum is what makes reconstruction exact: a lost slab is
// parity ⊕ survivors with no rounding, so a recovered run stays
// bit-identical to a fault-free one. The parity device stores one
// (N+Pad)×(Width+Pad) matrix per round — 1/K memory overhead — and is
// not a pool member: it never computes, it only absorbs refreshes and
// serves reconstructions.
//
// Parity values are float64 only as a container. They are produced by
// XOR of bit patterns and consumed by XOR of bit patterns; no kernel
// ever does arithmetic on them (copies preserve bits exactly).
type Parity struct {
	sh *Shard
	// Dev is the dedicated checksum device holding every round's parity.
	Dev *gpu.Device
	// K is the round size (the pool size at encoding time).
	K int

	rounds []*gpu.Matrix // per round: (N+Pad) × (Width+Pad)
	last   []sim.Event   // last event touching each round's parity

	acc *matrix.Matrix // host XOR accumulator, (N+Pad) × (Width+Pad)
	tmp *matrix.Matrix // host staging for one slab read (reconstruction)
	// stage holds one staging buffer per round position, so a refresh
	// can issue all K device→host pulls before waiting on any of them:
	// the transfers ride K distinct copy engines concurrently, making
	// the modeled refresh cost the slowest single pull, not their sum.
	stage []*matrix.Matrix
}

// NewParity allocates the per-round parity matrices on dev and returns
// the (not yet refreshed) encoding. Call RefreshAll once the slabs hold
// their initial content.
func NewParity(sh *Shard, dev *gpu.Device) *Parity {
	k := sh.Pool.K()
	nRounds := (len(sh.Part.Slabs) + k - 1) / k
	py := &Parity{sh: sh, Dev: dev, K: k}
	py.rounds = make([]*gpu.Matrix, nRounds)
	py.last = make([]sim.Event, nRounds)
	rows := sh.N + sh.Pad
	cols := sh.Part.Width + sh.Pad
	for r := range py.rounds {
		py.rounds[r] = dev.Alloc(rows, cols)
	}
	py.acc = matrix.New(rows, cols)
	py.tmp = matrix.New(rows, cols)
	py.stage = make([]*matrix.Matrix, k)
	for i := range py.stage {
		py.stage[i] = matrix.New(rows, cols)
	}
	return py
}

// RoundOf returns the parity round covering slab s.
func (py *Parity) RoundOf(s int) int { return s / py.K }

// roundSlabs returns the slab indices of round r.
func (py *Parity) roundSlabs(r int) []int {
	lo := r * py.K
	hi := lo + py.K
	if hi > len(py.sh.Part.Slabs) {
		hi = len(py.sh.Part.Slabs)
	}
	out := make([]int, 0, hi-lo)
	for s := lo; s < hi; s++ {
		out = append(out, s)
	}
	return out
}

// xorInto folds src into dst elementwise over the raw float64 bits.
func xorInto(dst, src []float64) {
	for i := range src {
		dst[i] = math.Float64frombits(math.Float64bits(dst[i]) ^ math.Float64bits(src[i]))
	}
}

// RefreshAll recomputes every round's parity from column 0 — the
// initial encoding after upload, when every column is still live.
func (py *Parity) RefreshAll() {
	for r := range py.rounds {
		py.refreshRound(r, 0)
	}
}

// Refresh brings the parity up to date with the slabs at a sync point
// of the blocked iteration at panel p. Columns left of p are finished —
// no kernel writes them again — so their parity contribution is already
// correct from earlier refreshes; each round recomputes only from its
// lowest possibly-changed local column. A round whose every slab is
// finished is skipped outright.
func (py *Parity) Refresh(p int) {
	for r := range py.rounds {
		lo := -1
		for _, s := range py.roundSlabs(r) {
			sl := py.sh.Part.Slabs[s]
			if sl.End() <= p {
				continue // finished slab: content frozen
			}
			l := p - sl.Start
			if l < 0 {
				l = 0
			}
			if lo < 0 || l < lo {
				lo = l
			}
		}
		if lo < 0 {
			continue
		}
		py.refreshRound(r, lo)
	}
}

// RefreshRoundOf recomputes the full parity of the round containing
// slab s (used after a transient correction rewrites slab content that
// earlier refreshes already folded in).
func (py *Parity) RefreshRoundOf(s int) {
	py.refreshRound(py.RoundOf(s), 0)
}

// refreshRound recomputes round r's parity for local columns [lo, …):
// every slab in the round streams those columns back to the host — all
// pulls issued before any is awaited, so the K transfers overlap on
// their K distinct copy engines — then the host folds them with XOR in
// ascending slab order and uploads the result to the parity device.
// The fold order is irrelevant to the bits (XOR commutes exactly) but
// kept ascending for a deterministic span sequence.
func (py *Parity) refreshRound(r, lo int) {
	sh := py.sh
	pool := sh.Pool
	rows := sh.N + sh.Pad
	wmax := sh.Part.Width + sh.Pad
	if lo >= wmax {
		return
	}
	acc := py.acc
	pool.HostOp(pool.Params.VecHost(rows*(wmax-lo))/8, func() {
		for j := lo; j < wmax; j++ {
			col := acc.Data[j*acc.Stride : j*acc.Stride+rows]
			for i := range col {
				col[i] = 0
			}
		}
	})
	type pull struct {
		cnt int
		buf *matrix.Matrix
		ev  sim.Event
	}
	var pulls []pull
	for i, s := range py.roundSlabs(r) {
		wloc := sh.Part.Slabs[s].Cols + sh.Pad
		if lo >= wloc {
			continue
		}
		cnt := wloc - lo
		dev := sh.Owner(s)
		pool.Issue(dev)
		e := dev.D2HAsync(py.stage[i].View(0, 0, rows, cnt), sh.SlabM[s], 0, lo, sh.Last[s])
		pulls = append(pulls, pull{cnt: cnt, buf: py.stage[i], ev: e})
	}
	for _, p := range pulls {
		pool.Wait(p.ev)
		buf, cnt := p.buf, p.cnt
		pool.HostOp(pool.Params.VecHost(rows*cnt), func() {
			for j := 0; j < cnt; j++ {
				xorInto(acc.Data[(lo+j)*acc.Stride:(lo+j)*acc.Stride+rows],
					buf.Data[j*buf.Stride:j*buf.Stride+rows])
			}
		})
	}
	pool.Issue(py.Dev)
	e := py.Dev.H2DAsync(py.rounds[r], 0, lo, acc.View(0, 0, rows, wmax-lo), py.last[r])
	py.last[r] = e
}

// Reconstruct rebuilds every slab the device at pool slot d owned, onto
// the (replacement) device now occupying that slot, from parity ⊕
// surviving peers. The caller must have substituted the replacement
// (Pool.ReplaceDevice) and reallocated its slab storage
// (Shard.Reattach) first. Errors if any needed source — a surviving
// peer or the parity device itself — is dead too: a double fault
// exceeds the encoding's single-loss budget.
func (py *Parity) Reconstruct(d int) error {
	sh := py.sh
	pool := sh.Pool
	rows := sh.N + sh.Pad
	if py.Dev.Dead() {
		return fmt.Errorf("devpool: parity device lost")
	}
	for _, s := range sh.DevSlabs[d] {
		r := py.RoundOf(s)
		wdead := sh.Part.Slabs[s].Cols + sh.Pad
		// Start from the parity columns covering the dead slab's extent.
		pool.Issue(py.Dev)
		e := py.Dev.D2HAsync(py.acc.View(0, 0, rows, wdead), py.rounds[r], 0, 0, py.last[r])
		pool.Wait(e)
		// Peel off each survivor's contribution.
		for _, peer := range py.roundSlabs(r) {
			if peer == s {
				continue
			}
			owner := sh.Part.Slabs[peer].Owner
			dev := pool.Devices[owner]
			if dev.Dead() {
				return fmt.Errorf("devpool: surviving slab %d on dead device %d", peer, owner)
			}
			w := sh.Part.Slabs[peer].Cols + sh.Pad
			if w > wdead {
				w = wdead
			}
			pool.Issue(dev)
			e := dev.D2HAsync(py.tmp.View(0, 0, rows, w), sh.SlabM[peer], 0, 0, sh.Last[peer])
			pool.Wait(e)
			tmp := py.tmp
			acc := py.acc
			pool.HostOp(pool.Params.VecHost(rows*w), func() {
				for j := 0; j < w; j++ {
					xorInto(acc.Data[j*acc.Stride:j*acc.Stride+rows],
						tmp.Data[j*tmp.Stride:j*tmp.Stride+rows])
				}
			})
		}
		// What remains is the dead slab, bit for bit.
		repl := pool.Devices[d]
		pool.Issue(repl)
		up := repl.H2DAsync(sh.SlabM[s], 0, 0, py.acc.View(0, 0, rows, wdead))
		sh.Last[s] = up
		pool.Wait(up)
	}
	return nil
}

// Free releases the parity device allocations.
func (py *Parity) Free() {
	for _, m := range py.rounds {
		py.Dev.Free(m)
	}
}
