package devpool

import (
	"math"
	"testing"
)

func almost(t *testing.T, what string, got, want float64) {
	t.Helper()
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("%s = %g, want %g", what, got, want)
	}
}

// One lane is whole-device leasing: runs chain serially and the engine
// bounds never dominate (a run's own engine demand is below its
// standalone makespan by construction).
func TestLaneClockSingleLaneIsSerial(t *testing.T) {
	c := NewLaneClock(1)
	d := EngineDemand{Standalone: 1.0, Compute: 0.4, H2D: 0.25, D2H: 0.25}
	for i := 0; i < 4; i++ {
		start, end := c.Run(0, d)
		almost(t, "start", start, float64(i))
		almost(t, "end", end, float64(i)+1)
	}
	almost(t, "makespan", c.Makespan(), 4)
}

// With enough lanes the makespan collapses to the hottest engine's total
// demand — the whole point of fractional leases: 4 identical 37%-compute
// jobs on 4 lanes finish in ~1.6 standalone units, not 4.
func TestLaneClockEngineBound(t *testing.T) {
	c := NewLaneClock(4)
	d := EngineDemand{Standalone: 1.0, Compute: 0.4, H2D: 0.25, D2H: 0.25}
	for lane := 0; lane < 4; lane++ {
		start, end := c.Run(lane, d)
		almost(t, "start", start, 0)
		// Lane i can finish no earlier than its own standalone run and no
		// earlier than the compute demand charged so far.
		almost(t, "end", end, math.Max(1.0, 0.4*float64(lane+1)))
	}
	almost(t, "makespan", c.Makespan(), 1.6)
}

// An engine with zero demand must not bound a run: a compute-only run
// queued after copy-heavy ones ignores the DMA backlog.
func TestLaneClockZeroDemandEngineIgnored(t *testing.T) {
	c := NewLaneClock(2)
	c.Run(0, EngineDemand{Standalone: 1, H2D: 0.9, D2H: 0.9})
	c.Run(0, EngineDemand{Standalone: 1, H2D: 0.9, D2H: 0.9})
	_, end := c.Run(1, EngineDemand{Standalone: 0.5, Compute: 0.5})
	almost(t, "compute-only end", end, 0.5)
}

// A run is never faster than its standalone makespan, whatever the lane.
func TestLaneClockStandaloneFloor(t *testing.T) {
	c := NewLaneClock(8)
	for lane := 0; lane < 8; lane++ {
		start, end := c.Run(lane, EngineDemand{Standalone: 2, Compute: 0.01})
		if end-start < 2 {
			t.Errorf("lane %d: window %g shorter than standalone 2", lane, end-start)
		}
	}
}

func TestLaneClockBadLanePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on out-of-range lane")
		}
	}()
	NewLaneClock(2).Run(2, EngineDemand{Standalone: 1})
}
