package devpool

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/gpu"
	"repro/internal/matrix"
	"repro/internal/obs"
	"repro/internal/sim"

	"repro/internal/blas"
)

func TestPartitionGridInvariants(t *testing.T) {
	cases := []struct{ n, nb int }{
		{2048, 32}, {2048, 64}, {192, 16}, {96, 16}, {100, 16}, {33, 32}, {257, 32},
	}
	for _, c := range cases {
		for _, k := range []int{1, 2, 3, 4} {
			pt := NewPartition(c.n, c.nb, k)
			if pt.Width%c.nb != 0 || pt.Width <= 0 {
				t.Fatalf("n=%d nb=%d k=%d: width %d not a positive multiple of nb", c.n, c.nb, k, pt.Width)
			}
			next := 0
			for i, s := range pt.Slabs {
				if s.Index != i || s.Start != next || s.Cols <= 0 {
					t.Fatalf("n=%d nb=%d k=%d: bad slab %+v (want start %d)", c.n, c.nb, k, s, next)
				}
				if s.Owner != snakeOwner(i, k) {
					t.Fatalf("n=%d nb=%d k=%d: slab %d owner %d, want snake %d", c.n, c.nb, k, i, s.Owner, snakeOwner(i, k))
				}
				next = s.End()
			}
			if next != c.n {
				t.Fatalf("n=%d nb=%d k=%d: slabs cover [0,%d), want [0,%d)", c.n, c.nb, k, next, c.n)
			}
			for col := 0; col < c.n; col++ {
				s := pt.Slabs[pt.SlabOf(col)]
				if col < s.Start || col >= s.End() {
					t.Fatalf("SlabOf(%d) = slab %+v", col, s)
				}
			}
			if m := pt.MaxSlabsPerOwner(k); m < (len(pt.Slabs)+k-1)/k {
				t.Fatalf("MaxSlabsPerOwner(%d) = %d for %d slabs", k, m, len(pt.Slabs))
			}
		}
	}
}

// The grid must depend only on (n, nb): device count assigns owners but
// never moves slab boundaries.
func TestPartitionGridIndependentOfK(t *testing.T) {
	base := NewPartition(2048, 32, 1)
	for _, k := range []int{2, 3, 4, 7} {
		pt := NewPartition(2048, 32, k)
		if len(pt.Slabs) != len(base.Slabs) || pt.Width != base.Width {
			t.Fatalf("k=%d: grid shape changed: %d slabs width %d vs %d/%d",
				k, len(pt.Slabs), pt.Width, len(base.Slabs), base.Width)
		}
		for i := range pt.Slabs {
			if pt.Slabs[i].Start != base.Slabs[i].Start || pt.Slabs[i].Cols != base.Slabs[i].Cols {
				t.Fatalf("k=%d: slab %d boundary moved: %+v vs %+v", k, i, pt.Slabs[i], base.Slabs[i])
			}
		}
	}
}

// Snake ownership must balance lifetime work: slab s stays active for
// every panel left of it, so its total work grows roughly linearly with
// its index (weight ∝ 2s+1 for equal-width slabs).
func TestPartitionSnakeBalancesLinearWork(t *testing.T) {
	for _, k := range []int{2, 4} {
		pt := NewPartition(2048, 16, k)
		load := make([]float64, k)
		for _, s := range pt.Slabs {
			load[s.Owner] += float64(2*s.Index + 1)
		}
		mn, mx := load[0], load[0]
		for _, v := range load {
			mn = min(mn, v)
			mx = max(mx, v)
		}
		if mx > 1.15*mn {
			t.Fatalf("k=%d: snake load imbalance: %v", k, load)
		}
	}
}

// A D2H issued on device A with a dependency on a kernel queued on
// device B's compute stream must not start copying until that kernel
// has finished: cross-device ordering flows through events, exactly as
// a cudaStreamWaitEvent on a peer device's event would behave.
func TestCrossDeviceEventOrdering(t *testing.T) {
	pool := New(2, sim.K40c(), gpu.CostOnly)
	pool.EnableTrace()
	devA, devB := pool.Devices[0], pool.Devices[1]

	mB := devB.Alloc(512, 512)
	mA := devA.Alloc(256, 256)
	host := matrix.New(256, 256)

	pool.Issue(devB)
	kB := devB.Gemm(blas.NoTrans, blas.NoTrans, 512, 512, 512, 1, mB, 0, 0, mB, 0, 0, 0, mB, 0, 0)
	pool.Issue(devA)
	eA := devA.D2HAsync(host, mA, 0, 0, kB)
	if eA.At < kB.At {
		t.Fatalf("D2H on %s completed at %.9fs, before dependency kernel on %s finished at %.9fs",
			devA.Name(), eA.At, devB.Name(), kB.At)
	}
	var copySpan *gpu.Span
	for _, s := range pool.Trace() {
		if s.Lane == devA.Copy.Name() && s.Kind == "d2h" {
			sc := s
			copySpan = &sc
		}
	}
	if copySpan == nil {
		t.Fatal("no d2h span recorded on device A's copy lane")
	}
	const eps = 1e-12
	if copySpan.Start+eps < kB.At {
		t.Fatalf("d2h span starts at %.9fs, before cross-device dependency end %.9fs", copySpan.Start, kB.At)
	}
	pool.Wait(eA)
	if got := pool.Host.Tail(); got < eA.At {
		t.Fatalf("main host advanced to %.9f, want >= %.9f", got, eA.At)
	}
}

// Issue gates a device's driver lane on the main thread: a command
// cannot be processed by the driver before the algorithm issued it.
func TestIssueGatesDriverOnMainThread(t *testing.T) {
	pool := New(2, sim.K40c(), gpu.CostOnly)
	d := pool.Devices[1]
	pool.HostOp(0.005, nil)
	pool.Issue(d)
	m := d.Alloc(64, 64)
	e := d.Gemm(blas.NoTrans, blas.NoTrans, 64, 64, 64, 1, m, 0, 0, m, 0, 0, 0, m, 0, 0)
	if e.At < 0.005 {
		t.Fatalf("kernel finished at %.6fs although the main thread issued it at 0.005s", e.At)
	}
	if tail := d.Host.Tail(); tail < 0.005 {
		t.Fatalf("driver lane tail %.6fs, want >= issue instant 0.005s", tail)
	}
}

func TestElapsedIsMaxOverDevices(t *testing.T) {
	pool := New(3, sim.K40c(), gpu.CostOnly)
	var last float64
	for i, d := range pool.Devices {
		m := d.Alloc(128*(i+1), 128)
		e := d.Gemm(blas.NoTrans, blas.NoTrans, 128*(i+1), 128, 128, 1, m, 0, 0, m, 0, 0, 0, m, 0, 0)
		if e.At > last {
			last = e.At
		}
	}
	if got := pool.Elapsed(); got != last {
		t.Fatalf("Elapsed() = %.9f, want max device tail %.9f", got, last)
	}
	pool.WaitAll()
	if got := pool.Host.Tail(); got != last {
		t.Fatalf("WaitAll left main host at %.9f, want %.9f", got, last)
	}
}

func TestPoolObsAndTrace(t *testing.T) {
	pool := New(2, sim.K40c(), gpu.CostOnly)
	reg := obs.NewRegistry()
	pool.SetObs(reg)
	pool.EnableTrace()
	pool.SetPhase("panel")
	pool.HostOp(0.001, nil)
	for _, d := range pool.Devices {
		m := d.Alloc(64, 64)
		pool.Issue(d)
		d.Gemm(blas.NoTrans, blas.NoTrans, 64, 64, 64, 1, m, 0, 0, m, 0, 0, 0, m, 0, 0)
	}
	pool.WaitAll()
	pool.FinishRun()

	if v := reg.CounterValue("op_seconds_total", obs.L("kind", "host"), obs.L("device", "main")); v < 0.001 {
		t.Fatalf("main-host op_seconds_total = %g, want >= 0.001", v)
	}
	byDev := obs.SumBy(reg, "op_seconds_total", "device")
	for _, want := range []string{"main", "d0", "d1"} {
		if byDev[want] <= 0 {
			t.Fatalf("op_seconds_total missing device=%s series: %v", want, byDev)
		}
	}
	if v := reg.GaugeValue("pool_devices"); v != 2 {
		t.Fatalf("pool_devices = %g, want 2", v)
	}
	if v := reg.GaugeValue("sim_makespan_seconds"); v != pool.Elapsed() {
		t.Fatalf("sim_makespan_seconds = %g, want %g", v, pool.Elapsed())
	}

	var buf bytes.Buffer
	if err := pool.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	names := map[string]bool{}
	for _, e := range events {
		if e["name"] == "thread_name" {
			args := e["args"].(map[string]any)
			names[args["name"].(string)] = true
		}
	}
	for _, lane := range []string{"main-host", "d0-compute", "d1-compute", "d0-copy", "d1-copy", "d0-host", "d1-host"} {
		if !names[lane] {
			t.Fatalf("merged trace missing lane %q (have %v)", lane, names)
		}
	}
	var sum bytes.Buffer
	pool.TraceSummary(&sum)
	if !strings.Contains(sum.String(), "d1-compute") {
		t.Fatalf("TraceSummary missing device lane:\n%s", sum.String())
	}
}
