package matrix

// Matrix Market I/O: the de-facto exchange format for test matrices
// (SuiteSparse, NIST). Both the dense "array" and the sparse "coordinate"
// formats are read; writing uses the array format. This lets the
// reduction run on published real-world operators instead of synthetic
// workloads.

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteMatrixMarket writes m in the dense array format
// (%%MatrixMarket matrix array real general).
func WriteMatrixMarket(w io.Writer, m *Matrix) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%%%%MatrixMarket matrix array real general\n%d %d\n", m.Rows, m.Cols); err != nil {
		return err
	}
	// Array format is column-major, matching our storage.
	for j := 0; j < m.Cols; j++ {
		for _, v := range m.Col(j) {
			if _, err := fmt.Fprintf(bw, "%.17g\n", v); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// DefaultMaxReadElements bounds the dense size ReadMatrixMarket will
// materialize (rows×cols), defending callers that parse untrusted
// streams — the job-serving layer accepts uploads — against a two-line
// header demanding a multi-terabyte allocation. 1<<26 elements is a
// 512 MiB float64 matrix (N ≈ 8190 square), beyond every workload in
// this repository's real-arithmetic range.
const DefaultMaxReadElements = 1 << 26

// ReadMatrixMarket parses a Matrix Market stream into a dense matrix.
// Supported: "array" and "coordinate" formats, field "real" or "integer",
// symmetry "general", "symmetric", or "skew-symmetric" (expanded to a
// full dense matrix). Pattern and complex fields are rejected. Matrices
// larger than DefaultMaxReadElements are rejected; use
// ReadMatrixMarketLimit to choose a different bound.
func ReadMatrixMarket(r io.Reader) (*Matrix, error) {
	return ReadMatrixMarketLimit(r, DefaultMaxReadElements)
}

// ReadMatrixMarketLimit is ReadMatrixMarket with an explicit bound on
// rows×cols (maxElems ≤ 0 means DefaultMaxReadElements). The bound is
// enforced before any allocation sized from the untrusted header.
func ReadMatrixMarketLimit(r io.Reader, maxElems int64) (*Matrix, error) {
	if maxElems <= 0 {
		maxElems = DefaultMaxReadElements
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)

	if !sc.Scan() {
		return nil, fmt.Errorf("matrix: empty MatrixMarket stream")
	}
	header := strings.Fields(strings.ToLower(sc.Text()))
	if len(header) != 5 || header[0] != "%%matrixmarket" || header[1] != "matrix" {
		return nil, fmt.Errorf("matrix: bad MatrixMarket header %q", sc.Text())
	}
	format, field, symmetry := header[2], header[3], header[4]
	if format != "array" && format != "coordinate" {
		return nil, fmt.Errorf("matrix: unsupported format %q", format)
	}
	if field != "real" && field != "integer" {
		return nil, fmt.Errorf("matrix: unsupported field %q", field)
	}
	switch symmetry {
	case "general", "symmetric", "skew-symmetric":
	default:
		return nil, fmt.Errorf("matrix: unsupported symmetry %q", symmetry)
	}

	next := func() (string, error) {
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line == "" || strings.HasPrefix(line, "%") {
				continue
			}
			return line, nil
		}
		if err := sc.Err(); err != nil {
			return "", err
		}
		return "", io.ErrUnexpectedEOF
	}

	sizeLine, err := next()
	if err != nil {
		return nil, fmt.Errorf("matrix: missing size line: %w", err)
	}
	dims := strings.Fields(sizeLine)

	if format == "array" {
		if len(dims) != 2 {
			return nil, fmt.Errorf("matrix: bad array size line %q", sizeLine)
		}
		rows, err1 := strconv.Atoi(dims[0])
		cols, err2 := strconv.Atoi(dims[1])
		if err1 != nil || err2 != nil || rows < 0 || cols < 0 {
			return nil, fmt.Errorf("matrix: bad array dimensions %q", sizeLine)
		}
		if symmetry != "general" && rows != cols {
			return nil, fmt.Errorf("matrix: %s symmetry requires a square matrix, got %dx%d", symmetry, rows, cols)
		}
		if int64(rows) > maxElems || int64(cols) > maxElems || int64(rows)*int64(cols) > maxElems {
			return nil, fmt.Errorf("matrix: %dx%d exceeds the %d-element read limit", rows, cols, maxElems)
		}
		m := New(rows, cols)
		// Column-major stream; symmetric variants store the lower triangle.
		for j := 0; j < cols; j++ {
			i0 := 0
			if symmetry != "general" {
				i0 = j
			}
			for i := i0; i < rows; i++ {
				line, err := next()
				if err != nil {
					return nil, fmt.Errorf("matrix: truncated array data: %w", err)
				}
				v, err := strconv.ParseFloat(strings.Fields(line)[0], 64)
				if err != nil {
					return nil, fmt.Errorf("matrix: bad value %q", line)
				}
				m.Set(i, j, v)
				if symmetry == "symmetric" && i != j {
					m.Set(j, i, v)
				}
				if symmetry == "skew-symmetric" && i != j {
					m.Set(j, i, -v)
				}
			}
		}
		return m, nil
	}

	// Coordinate format.
	if len(dims) != 3 {
		return nil, fmt.Errorf("matrix: bad coordinate size line %q", sizeLine)
	}
	rows, err1 := strconv.Atoi(dims[0])
	cols, err2 := strconv.Atoi(dims[1])
	nnz, err3 := strconv.Atoi(dims[2])
	if err1 != nil || err2 != nil || err3 != nil || rows < 0 || cols < 0 || nnz < 0 {
		return nil, fmt.Errorf("matrix: bad coordinate dimensions %q", sizeLine)
	}
	if symmetry != "general" && rows != cols {
		return nil, fmt.Errorf("matrix: %s symmetry requires a square matrix, got %dx%d", symmetry, rows, cols)
	}
	if int64(rows) > maxElems || int64(cols) > maxElems || int64(rows)*int64(cols) > maxElems {
		return nil, fmt.Errorf("matrix: %dx%d exceeds the %d-element read limit", rows, cols, maxElems)
	}
	m := New(rows, cols)
	for k := 0; k < nnz; k++ {
		line, err := next()
		if err != nil {
			return nil, fmt.Errorf("matrix: truncated coordinate data at entry %d: %w", k, err)
		}
		f := strings.Fields(line)
		if len(f) < 3 {
			return nil, fmt.Errorf("matrix: bad coordinate entry %q", line)
		}
		i, err1 := strconv.Atoi(f[0])
		j, err2 := strconv.Atoi(f[1])
		v, err3 := strconv.ParseFloat(f[2], 64)
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("matrix: bad coordinate entry %q", line)
		}
		if i < 1 || i > rows || j < 1 || j > cols {
			return nil, fmt.Errorf("matrix: coordinate (%d,%d) out of %dx%d", i, j, rows, cols)
		}
		m.Set(i-1, j-1, v)
		if i != j {
			switch symmetry {
			case "symmetric":
				m.Set(j-1, i-1, v)
			case "skew-symmetric":
				m.Set(j-1, i-1, -v)
			}
		}
	}
	return m, nil
}
