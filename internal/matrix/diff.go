package matrix

import (
	"fmt"
	"math"
	"strings"
)

// DiffStats summarizes the element-wise difference between a reference
// matrix and a perturbed one. Figure 2 of the paper visualizes exactly this
// difference as a heat map to show how a soft error propagates.
type DiffStats struct {
	// Polluted counts the elements whose |difference| exceeds the
	// threshold used to build the stats.
	Polluted int
	// PollutedRows / PollutedCols are the distinct row/column indices
	// containing at least one polluted element.
	PollutedRows []int
	PollutedCols []int
	// MaxAbs is the largest absolute difference.
	MaxAbs float64
	// Threshold is the pollution cut-off used.
	Threshold float64
}

// Diff compares got against want and returns pollution statistics using the
// given absolute threshold.
func Diff(want, got *Matrix, threshold float64) DiffStats {
	if want.Rows != got.Rows || want.Cols != got.Cols {
		panic("matrix: diff shape mismatch")
	}
	st := DiffStats{Threshold: threshold}
	rowSeen := make(map[int]bool)
	colSeen := make(map[int]bool)
	for j := 0; j < want.Cols; j++ {
		w, g := want.Col(j), got.Col(j)
		for i := range w {
			d := math.Abs(w[i] - g[i])
			if d > st.MaxAbs {
				st.MaxAbs = d
			}
			if d > threshold {
				st.Polluted++
				rowSeen[i] = true
				colSeen[j] = true
			}
		}
	}
	for i := 0; i < want.Rows; i++ {
		if rowSeen[i] {
			st.PollutedRows = append(st.PollutedRows, i)
		}
	}
	for j := 0; j < want.Cols; j++ {
		if colSeen[j] {
			st.PollutedCols = append(st.PollutedCols, j)
		}
	}
	return st
}

// HeatMap renders an ASCII heat map of |want-got| down-sampled to at most
// maxCells×maxCells characters: ' ' for zero difference, then '.', ':', '*',
// '#' for increasing decades of magnitude. This is the textual counterpart
// of the paper's Figure 2 panels.
func HeatMap(want, got *Matrix, maxCells int) string {
	if want.Rows != got.Rows || want.Cols != got.Cols {
		panic("matrix: heatmap shape mismatch")
	}
	if maxCells <= 0 {
		maxCells = 64
	}
	rs := (want.Rows + maxCells - 1) / maxCells
	cs := (want.Cols + maxCells - 1) / maxCells
	if rs < 1 {
		rs = 1
	}
	if cs < 1 {
		cs = 1
	}
	nr := (want.Rows + rs - 1) / rs
	nc := (want.Cols + cs - 1) / cs
	var b strings.Builder
	fmt.Fprintf(&b, "|diff| heat map (%dx%d cells, cell=%dx%d elems; '.':>1e-12 ':':>1e-8 '*':>1e-4 '#':>1)\n",
		nr, nc, rs, cs)
	for bi := 0; bi < nr; bi++ {
		for bj := 0; bj < nc; bj++ {
			m := 0.0
			for i := bi * rs; i < min((bi+1)*rs, want.Rows); i++ {
				for j := bj * cs; j < min((bj+1)*cs, want.Cols); j++ {
					d := math.Abs(want.At(i, j) - got.At(i, j))
					if d > m {
						m = d
					}
				}
			}
			switch {
			case m > 1:
				b.WriteByte('#')
			case m > 1e-4:
				b.WriteByte('*')
			case m > 1e-8:
				b.WriteByte(':')
			case m > 1e-12:
				b.WriteByte('.')
			default:
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
