package matrix

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewZeroInitialized(t *testing.T) {
	m := New(3, 4)
	if m.Rows != 3 || m.Cols != 4 || m.Stride != 3 {
		t.Fatalf("bad shape: %dx%d stride %d", m.Rows, m.Cols, m.Stride)
	}
	for j := 0; j < 4; j++ {
		for i := 0; i < 3; i++ {
			if m.At(i, j) != 0 {
				t.Fatalf("element (%d,%d) = %v, want 0", i, j, m.At(i, j))
			}
		}
	}
}

func TestNewEmpty(t *testing.T) {
	for _, dims := range [][2]int{{0, 0}, {0, 5}, {5, 0}} {
		m := New(dims[0], dims[1])
		if m.Rows != dims[0] || m.Cols != dims[1] {
			t.Errorf("New(%d,%d) shape mismatch", dims[0], dims[1])
		}
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative dimension")
		}
	}()
	New(-1, 3)
}

func TestSetAtRoundTrip(t *testing.T) {
	m := New(4, 5)
	v := 0.0
	for j := 0; j < 5; j++ {
		for i := 0; i < 4; i++ {
			m.Set(i, j, v)
			v++
		}
	}
	v = 0
	for j := 0; j < 5; j++ {
		for i := 0; i < 4; i++ {
			if m.At(i, j) != v {
				t.Fatalf("(%d,%d) = %v, want %v", i, j, m.At(i, j), v)
			}
			v++
		}
	}
}

func TestColumnMajorLayout(t *testing.T) {
	m := New(3, 2)
	m.Set(2, 1, 42)
	if m.Data[1*3+2] != 42 {
		t.Fatalf("element (2,1) not at offset stride*j+i: data=%v", m.Data)
	}
}

func TestAtOutOfRangePanics(t *testing.T) {
	m := New(2, 2)
	for _, idx := range [][2]int{{-1, 0}, {0, -1}, {2, 0}, {0, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("At(%d,%d) did not panic", idx[0], idx[1])
				}
			}()
			m.At(idx[0], idx[1])
		}()
	}
}

func TestFromRows(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	if m.Rows != 2 || m.Cols != 3 {
		t.Fatalf("shape %dx%d", m.Rows, m.Cols)
	}
	if m.At(0, 0) != 1 || m.At(1, 2) != 6 || m.At(0, 2) != 3 {
		t.Fatalf("contents wrong: %v", m)
	}
}

func TestFromColMajorAliases(t *testing.T) {
	data := []float64{1, 2, 3, 4, 5, 6}
	m := FromColMajor(2, 3, 2, data)
	m.Set(1, 2, 99)
	if data[5] != 99 {
		t.Fatal("FromColMajor must alias the provided slice")
	}
}

func TestViewAliasesParent(t *testing.T) {
	m := New(5, 5)
	v := m.View(1, 2, 3, 2)
	v.Set(0, 0, 7)
	if m.At(1, 2) != 7 {
		t.Fatal("view write did not reach parent")
	}
	m.Set(3, 3, 9)
	if v.At(2, 1) != 9 {
		t.Fatal("parent write not visible through view")
	}
}

func TestViewOfView(t *testing.T) {
	m := New(6, 6)
	for j := 0; j < 6; j++ {
		for i := 0; i < 6; i++ {
			m.Set(i, j, float64(10*i+j))
		}
	}
	v := m.View(1, 1, 4, 4).View(1, 1, 2, 2)
	if v.At(0, 0) != m.At(2, 2) || v.At(1, 1) != m.At(3, 3) {
		t.Fatal("nested view misaligned")
	}
}

func TestViewBoundsPanic(t *testing.T) {
	m := New(3, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range view")
		}
	}()
	m.View(1, 1, 3, 3)
}

func TestEmptyView(t *testing.T) {
	m := New(3, 3)
	v := m.View(1, 1, 0, 2)
	if v.Rows != 0 || v.Cols != 2 {
		t.Fatal("empty view shape wrong")
	}
}

func TestCloneIndependent(t *testing.T) {
	m := Random(4, 4, 1)
	c := m.Clone()
	if !m.Equal(c) {
		t.Fatal("clone not equal to source")
	}
	c.Set(0, 0, 123)
	if m.At(0, 0) == 123 {
		t.Fatal("clone shares storage with source")
	}
}

func TestCopyFromMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected shape mismatch panic")
		}
	}()
	New(2, 2).CopyFrom(New(3, 3))
}

func TestIdentity(t *testing.T) {
	id := Identity(4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if id.At(i, j) != want {
				t.Fatalf("I(%d,%d) = %v", i, j, id.At(i, j))
			}
		}
	}
}

func TestTranspose(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	tr := m.T()
	if tr.Rows != 3 || tr.Cols != 2 {
		t.Fatalf("transpose shape %dx%d", tr.Rows, tr.Cols)
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if m.At(i, j) != tr.At(j, i) {
				t.Fatalf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestNorms(t *testing.T) {
	m := FromRows([][]float64{{1, -2}, {-3, 4}})
	if got := m.Norm1(); got != 6 {
		t.Errorf("Norm1 = %v, want 6", got)
	}
	if got := m.NormInf(); got != 7 {
		t.Errorf("NormInf = %v, want 7", got)
	}
	want := math.Sqrt(1 + 4 + 9 + 16)
	if got := m.NormFro(); math.Abs(got-want) > 1e-14 {
		t.Errorf("NormFro = %v, want %v", got, want)
	}
	if got := m.MaxAbs(); got != 4 {
		t.Errorf("MaxAbs = %v, want 4", got)
	}
}

func TestNormFroExtremeScale(t *testing.T) {
	m := New(1, 2)
	m.Set(0, 0, 1e200)
	m.Set(0, 1, 1e200)
	want := 1e200 * math.Sqrt(2)
	if got := m.NormFro(); math.Abs(got-want)/want > 1e-14 {
		t.Errorf("NormFro overflowed: %v want %v", got, want)
	}
}

func TestTrace(t *testing.T) {
	m := FromRows([][]float64{{1, 9}, {9, 2}})
	if m.Trace() != 3 {
		t.Fatalf("trace = %v", m.Trace())
	}
}

func TestRowColSums(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	rs := m.RowSums()
	cs := m.ColSums()
	if rs[0] != 3 || rs[1] != 7 {
		t.Errorf("row sums %v", rs)
	}
	if cs[0] != 4 || cs[1] != 6 {
		t.Errorf("col sums %v", cs)
	}
}

func TestSub(t *testing.T) {
	a := FromRows([][]float64{{5, 6}, {7, 8}})
	b := FromRows([][]float64{{1, 2}, {3, 4}})
	d := a.Sub(b)
	if d.At(0, 0) != 4 || d.At(1, 1) != 4 {
		t.Fatalf("sub wrong: %v", d)
	}
}

func TestEqualTol(t *testing.T) {
	a := FromRows([][]float64{{1, 2}})
	b := FromRows([][]float64{{1, 2 + 1e-12}})
	if !a.EqualTol(b, 1e-10) {
		t.Error("should be equal within tol")
	}
	if a.EqualTol(b, 1e-14) {
		t.Error("should differ beyond tol")
	}
	if a.EqualTol(FromRows([][]float64{{1, 2, 3}}), 1) {
		t.Error("shape mismatch must not be equal")
	}
}

func TestEqualNaN(t *testing.T) {
	a := FromRows([][]float64{{math.NaN()}})
	b := FromRows([][]float64{{math.NaN()}})
	if a.Equal(b) {
		t.Error("NaN must not compare equal")
	}
}

func TestIsUpperHessenberg(t *testing.T) {
	h := FromRows([][]float64{
		{1, 2, 3},
		{4, 5, 6},
		{0, 7, 8},
	})
	if !h.IsUpperHessenberg(0) {
		t.Error("valid Hessenberg rejected")
	}
	h.Set(2, 0, 1e-3)
	if h.IsUpperHessenberg(1e-6) {
		t.Error("sub-subdiagonal element accepted")
	}
	if !h.IsUpperHessenberg(1e-2) {
		t.Error("tolerance not honored")
	}
}

func TestScaleFillZero(t *testing.T) {
	m := Random(3, 3, 7)
	m.Fill(2)
	m.Scale(3)
	for j := 0; j < 3; j++ {
		for i := 0; i < 3; i++ {
			if m.At(i, j) != 6 {
				t.Fatalf("(%d,%d)=%v", i, j, m.At(i, j))
			}
		}
	}
	m.Zero()
	if m.MaxAbs() != 0 {
		t.Fatal("Zero left nonzero entries")
	}
}

func TestRandomDeterministic(t *testing.T) {
	a := Random(8, 8, 42)
	b := Random(8, 8, 42)
	if !a.Equal(b) {
		t.Fatal("same seed must generate identical matrices")
	}
	c := Random(8, 8, 43)
	if a.Equal(c) {
		t.Fatal("different seeds should differ")
	}
}

func TestRandomRange(t *testing.T) {
	m := Random(50, 50, 3)
	for j := 0; j < 50; j++ {
		for _, v := range m.Col(j) {
			if v < -1 || v >= 1 {
				t.Fatalf("uniform value out of range: %v", v)
			}
		}
	}
}

func TestRandomNormalMoments(t *testing.T) {
	m := RandomNormal(200, 200, 5)
	sum, sumSq := 0.0, 0.0
	n := float64(m.Rows * m.Cols)
	for j := 0; j < m.Cols; j++ {
		for _, v := range m.Col(j) {
			sum += v
			sumSq += v * v
		}
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("variance = %v, want ~1", variance)
	}
}

func TestRandomDiagDominant(t *testing.T) {
	m := RandomDiagDominant(10, 9)
	for i := 0; i < 10; i++ {
		off := 0.0
		for j := 0; j < 10; j++ {
			if j != i {
				off += math.Abs(m.At(i, j))
			}
		}
		if math.Abs(m.At(i, i)) <= off {
			t.Fatalf("row %d not diagonally dominant", i)
		}
	}
}

func TestRNGIntn(t *testing.T) {
	rng := NewRNG(11)
	for i := 0; i < 1000; i++ {
		v := rng.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
	}
}

func TestDiffStats(t *testing.T) {
	want := New(4, 4)
	got := want.Clone()
	got.Set(1, 2, 5)
	got.Set(3, 2, 1e-15)
	st := Diff(want, got, 1e-12)
	if st.Polluted != 1 {
		t.Fatalf("polluted = %d, want 1", st.Polluted)
	}
	if len(st.PollutedRows) != 1 || st.PollutedRows[0] != 1 {
		t.Fatalf("polluted rows %v", st.PollutedRows)
	}
	if len(st.PollutedCols) != 1 || st.PollutedCols[0] != 2 {
		t.Fatalf("polluted cols %v", st.PollutedCols)
	}
	if st.MaxAbs != 5 {
		t.Fatalf("max abs %v", st.MaxAbs)
	}
}

func TestHeatMapMarksPollution(t *testing.T) {
	want := New(16, 16)
	got := want.Clone()
	got.Set(0, 0, 10)
	hm := HeatMap(want, got, 16)
	if !strings.Contains(hm, "#") {
		t.Fatalf("heat map missing '#':\n%s", hm)
	}
	clean := HeatMap(want, want.Clone(), 16)
	// Skip the legend line; only the map body must be blank.
	body := clean[strings.IndexByte(clean, '\n')+1:]
	if strings.ContainsAny(body, ".:*#") {
		t.Fatalf("clean heat map should be blank:\n%s", clean)
	}
}

// Property: transposing twice is the identity.
func TestPropTransposeInvolution(t *testing.T) {
	f := func(seed uint64) bool {
		r := 1 + int(seed%17)
		c := 1 + int((seed>>8)%17)
		m := Random(r, c, seed)
		return m.T().T().Equal(m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: the sum of row sums equals the sum of column sums (this identity
// is the basis of the paper's error-detection test S_re == S_ce).
func TestPropRowColSumIdentity(t *testing.T) {
	f := func(seed uint64) bool {
		r := 1 + int(seed%19)
		c := 1 + int((seed>>5)%19)
		m := Random(r, c, seed)
		sr, sc := 0.0, 0.0
		for _, v := range m.RowSums() {
			sr += v
		}
		for _, v := range m.ColSums() {
			sc += v
		}
		return math.Abs(sr-sc) < 1e-10*(1+math.Abs(sr))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: Norm1(A) == NormInf(Aᵀ).
func TestPropNorm1InfDual(t *testing.T) {
	f := func(seed uint64) bool {
		r := 1 + int(seed%13)
		c := 1 + int((seed>>7)%13)
		m := Random(r, c, seed)
		return math.Abs(m.Norm1()-m.T().NormInf()) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
