package matrix

// Deterministic pseudo-random matrix generation. The experiments in the
// paper run over specific matrix sizes with "application agnostic" dense
// inputs; we use a SplitMix64-derived generator so that every experiment and
// test is reproducible from a seed without importing math/rand (keeping the
// dependency surface minimal and the sequence stable across Go releases).

// RNG is a small deterministic pseudo-random number generator (SplitMix64).
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Uint64 returns the next pseudo-random 64-bit value.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns an approximately standard-normal value using the sum
// of 12 uniforms (Irwin–Hall); adequate for generating test matrices.
func (r *RNG) NormFloat64() float64 {
	s := 0.0
	for i := 0; i < 12; i++ {
		s += r.Float64()
	}
	return s - 6
}

// Intn returns a uniform value in [0, n).
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("matrix: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Random returns an r×c matrix with uniform entries in [-1, 1).
func Random(r, c int, seed uint64) *Matrix {
	rng := NewRNG(seed)
	m := New(r, c)
	for j := 0; j < c; j++ {
		col := m.Col(j)
		for i := range col {
			col[i] = 2*rng.Float64() - 1
		}
	}
	return m
}

// RandomNormal returns an r×c matrix with approximately N(0,1) entries.
func RandomNormal(r, c int, seed uint64) *Matrix {
	rng := NewRNG(seed)
	m := New(r, c)
	for j := 0; j < c; j++ {
		col := m.Col(j)
		for i := range col {
			col[i] = rng.NormFloat64()
		}
	}
	return m
}

// RandomDiagDominant returns a square matrix with uniform entries whose
// diagonal is boosted so the matrix is diagonally dominant; handy for
// workloads that later feed linear solves.
func RandomDiagDominant(n int, seed uint64) *Matrix {
	m := Random(n, n, seed)
	for i := 0; i < n; i++ {
		m.Add(i, i, float64(n))
	}
	return m
}
