// Package matrix provides the dense, column-major float64 matrix type that
// every other package in this repository builds on.
//
// Storage follows the LAPACK convention used by the paper: elements of a
// column are contiguous, and a matrix is described by (rows, cols, stride)
// over a flat backing slice. Sub-matrix views share the backing storage so
// that panel/trailing-matrix decompositions of the Hessenberg reduction can
// be expressed without copies, exactly as LAPACK and MAGMA do.
package matrix

import (
	"fmt"
	"math"
	"strings"
)

// Matrix is a dense column-major matrix of float64 values.
//
// The element (i, j) — zero-based row i, column j — is stored at
// Data[j*Stride+i]. Stride must be at least Rows. A Matrix may be a view
// into a larger matrix, in which case mutating it mutates the parent.
type Matrix struct {
	Rows   int
	Cols   int
	Stride int
	Data   []float64
}

// New allocates a zero-initialized r×c matrix with a tight stride.
func New(r, c int) *Matrix {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("matrix: negative dimension %dx%d", r, c))
	}
	return &Matrix{Rows: r, Cols: c, Stride: max(r, 1), Data: make([]float64, r*c)}
}

// FromColMajor wraps an existing column-major slice without copying.
// len(data) must be at least stride*(c-1)+r for non-empty matrices.
func FromColMajor(r, c, stride int, data []float64) *Matrix {
	if r < 0 || c < 0 || (r > 0 && stride < r) {
		panic(fmt.Sprintf("matrix: bad shape %dx%d stride %d", r, c, stride))
	}
	if r > 0 && c > 0 && len(data) < stride*(c-1)+r {
		panic(fmt.Sprintf("matrix: backing slice too short: %d < %d", len(data), stride*(c-1)+r))
	}
	return &Matrix{Rows: r, Cols: c, Stride: stride, Data: data}
}

// FromRows builds a matrix from row-major literal data, convenient in tests.
func FromRows(rows [][]float64) *Matrix {
	r := len(rows)
	if r == 0 {
		return New(0, 0)
	}
	c := len(rows[0])
	m := New(r, c)
	for i, row := range rows {
		if len(row) != c {
			panic("matrix: ragged rows")
		}
		for j, v := range row {
			m.Set(i, j, v)
		}
	}
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// At returns the element at (i, j).
func (m *Matrix) At(i, j int) float64 {
	m.check(i, j)
	return m.Data[j*m.Stride+i]
}

// Set stores v at (i, j).
func (m *Matrix) Set(i, j int, v float64) {
	m.check(i, j)
	m.Data[j*m.Stride+i] = v
}

// Add adds v to the element at (i, j).
func (m *Matrix) Add(i, j int, v float64) {
	m.check(i, j)
	m.Data[j*m.Stride+i] += v
}

func (m *Matrix) check(i, j int) {
	if i < 0 || i >= m.Rows || j < 0 || j >= m.Cols {
		panic(fmt.Sprintf("matrix: index (%d,%d) out of range %dx%d", i, j, m.Rows, m.Cols))
	}
}

// Col returns the j-th column as a slice aliasing the matrix storage.
func (m *Matrix) Col(j int) []float64 {
	if j < 0 || j >= m.Cols {
		panic(fmt.Sprintf("matrix: column %d out of range %d", j, m.Cols))
	}
	if m.Rows == 0 {
		// A 0×c matrix has no backing storage to alias (New keeps a
		// minimum stride of 1 for BLAS compatibility).
		return nil
	}
	return m.Data[j*m.Stride : j*m.Stride+m.Rows]
}

// View returns the r×c sub-matrix whose top-left corner is (i, j).
// The view aliases m's storage.
func (m *Matrix) View(i, j, r, c int) *Matrix {
	if r < 0 || c < 0 || i < 0 || j < 0 || i+r > m.Rows || j+c > m.Cols {
		panic(fmt.Sprintf("matrix: view (%d,%d)+%dx%d out of range %dx%d", i, j, r, c, m.Rows, m.Cols))
	}
	if r == 0 || c == 0 {
		return &Matrix{Rows: r, Cols: c, Stride: m.Stride, Data: nil}
	}
	off := j*m.Stride + i
	return &Matrix{Rows: r, Cols: c, Stride: m.Stride, Data: m.Data[off:]}
}

// Clone returns a deep copy of m with a tight stride.
func (m *Matrix) Clone() *Matrix {
	out := New(m.Rows, m.Cols)
	out.CopyFrom(m)
	return out
}

// CopyFrom copies src's elements into m. Shapes must match.
func (m *Matrix) CopyFrom(src *Matrix) {
	if m.Rows != src.Rows || m.Cols != src.Cols {
		panic(fmt.Sprintf("matrix: copy shape mismatch %dx%d <- %dx%d", m.Rows, m.Cols, src.Rows, src.Cols))
	}
	for j := 0; j < m.Cols; j++ {
		copy(m.Col(j), src.Col(j))
	}
}

// Zero sets every element of m to 0.
func (m *Matrix) Zero() {
	for j := 0; j < m.Cols; j++ {
		col := m.Col(j)
		for i := range col {
			col[i] = 0
		}
	}
}

// Fill sets every element of m to v.
func (m *Matrix) Fill(v float64) {
	for j := 0; j < m.Cols; j++ {
		col := m.Col(j)
		for i := range col {
			col[i] = v
		}
	}
}

// Scale multiplies every element of m by alpha.
func (m *Matrix) Scale(alpha float64) {
	for j := 0; j < m.Cols; j++ {
		col := m.Col(j)
		for i := range col {
			col[i] *= alpha
		}
	}
}

// T returns a newly allocated transpose of m.
func (m *Matrix) T() *Matrix {
	out := New(m.Cols, m.Rows)
	for j := 0; j < m.Cols; j++ {
		for i := 0; i < m.Rows; i++ {
			out.Set(j, i, m.At(i, j))
		}
	}
	return out
}

// Norm1 returns the 1-norm (maximum absolute column sum).
func (m *Matrix) Norm1() float64 {
	maxSum := 0.0
	for j := 0; j < m.Cols; j++ {
		s := 0.0
		for _, v := range m.Col(j) {
			s += math.Abs(v)
		}
		if s > maxSum {
			maxSum = s
		}
	}
	return maxSum
}

// NormInf returns the infinity-norm (maximum absolute row sum).
func (m *Matrix) NormInf() float64 {
	if m.Rows == 0 {
		return 0
	}
	sums := make([]float64, m.Rows)
	for j := 0; j < m.Cols; j++ {
		for i, v := range m.Col(j) {
			sums[i] += math.Abs(v)
		}
	}
	maxSum := 0.0
	for _, s := range sums {
		if s > maxSum {
			maxSum = s
		}
	}
	return maxSum
}

// NormFro returns the Frobenius norm.
func (m *Matrix) NormFro() float64 {
	// Two-pass scaling keeps the accumulation away from overflow/underflow.
	scale, ssq := 0.0, 1.0
	for j := 0; j < m.Cols; j++ {
		for _, v := range m.Col(j) {
			if v == 0 {
				continue
			}
			a := math.Abs(v)
			if scale < a {
				ssq = 1 + ssq*(scale/a)*(scale/a)
				scale = a
			} else {
				ssq += (a / scale) * (a / scale)
			}
		}
	}
	return scale * math.Sqrt(ssq)
}

// MaxAbs returns the largest absolute element value.
func (m *Matrix) MaxAbs() float64 {
	maxAbs := 0.0
	for j := 0; j < m.Cols; j++ {
		for _, v := range m.Col(j) {
			if a := math.Abs(v); a > maxAbs {
				maxAbs = a
			}
		}
	}
	return maxAbs
}

// Trace returns the sum of diagonal elements of a square matrix.
func (m *Matrix) Trace() float64 {
	if m.Rows != m.Cols {
		panic("matrix: trace of non-square matrix")
	}
	t := 0.0
	for i := 0; i < m.Rows; i++ {
		t += m.At(i, i)
	}
	return t
}

// Equal reports whether m and other have identical shapes and elements.
func (m *Matrix) Equal(other *Matrix) bool {
	return m.EqualTol(other, 0)
}

// EqualTol reports whether m and other agree element-wise within tol
// (absolute difference; NaNs never compare equal).
func (m *Matrix) EqualTol(other *Matrix, tol float64) bool {
	if m.Rows != other.Rows || m.Cols != other.Cols {
		return false
	}
	for j := 0; j < m.Cols; j++ {
		a, b := m.Col(j), other.Col(j)
		for i := range a {
			if math.IsNaN(a[i]) || math.IsNaN(b[i]) || math.Abs(a[i]-b[i]) > tol {
				return false
			}
		}
	}
	return true
}

// Sub returns a newly allocated m - other.
func (m *Matrix) Sub(other *Matrix) *Matrix {
	if m.Rows != other.Rows || m.Cols != other.Cols {
		panic("matrix: sub shape mismatch")
	}
	out := New(m.Rows, m.Cols)
	for j := 0; j < m.Cols; j++ {
		a, b, o := m.Col(j), other.Col(j), out.Col(j)
		for i := range a {
			o[i] = a[i] - b[i]
		}
	}
	return out
}

// RowSums returns the vector of row sums (A·e), the paper's row checksums.
func (m *Matrix) RowSums() []float64 {
	sums := make([]float64, m.Rows)
	for j := 0; j < m.Cols; j++ {
		for i, v := range m.Col(j) {
			sums[i] += v
		}
	}
	return sums
}

// ColSums returns the vector of column sums (eᵀ·A), the column checksums.
func (m *Matrix) ColSums() []float64 {
	sums := make([]float64, m.Cols)
	for j := 0; j < m.Cols; j++ {
		s := 0.0
		for _, v := range m.Col(j) {
			s += v
		}
		sums[j] = s
	}
	return sums
}

// IsUpperHessenberg reports whether every element below the first
// subdiagonal is at most tol in magnitude.
func (m *Matrix) IsUpperHessenberg(tol float64) bool {
	for j := 0; j < m.Cols; j++ {
		for i := j + 2; i < m.Rows; i++ {
			if math.Abs(m.At(i, j)) > tol {
				return false
			}
		}
	}
	return true
}

// String renders small matrices for debugging and test failure messages.
func (m *Matrix) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%dx%d\n", m.Rows, m.Cols)
	rmax, cmax := min(m.Rows, 12), min(m.Cols, 12)
	for i := 0; i < rmax; i++ {
		for j := 0; j < cmax; j++ {
			fmt.Fprintf(&b, "% 12.5g", m.At(i, j))
		}
		if cmax < m.Cols {
			b.WriteString(" ...")
		}
		b.WriteByte('\n')
	}
	if rmax < m.Rows {
		b.WriteString("...\n")
	}
	return b.String()
}
