package matrix

import (
	"bytes"
	"strings"
	"testing"
)

func TestMatrixMarketRoundTrip(t *testing.T) {
	m := Random(7, 5, 3)
	var buf bytes.Buffer
	if err := WriteMatrixMarket(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMatrixMarket(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Equal(got) {
		t.Fatalf("round trip changed the matrix by %v", m.Sub(got).MaxAbs())
	}
}

func TestMatrixMarketCoordinate(t *testing.T) {
	src := `%%MatrixMarket matrix coordinate real general
% a comment
3 4 3
1 1 2.5
3 4 -1
2 2 7
`
	m, err := ReadMatrixMarket(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows != 3 || m.Cols != 4 {
		t.Fatalf("shape %dx%d", m.Rows, m.Cols)
	}
	if m.At(0, 0) != 2.5 || m.At(2, 3) != -1 || m.At(1, 1) != 7 || m.At(0, 1) != 0 {
		t.Fatalf("contents wrong: %v", m)
	}
}

func TestMatrixMarketSymmetricCoordinate(t *testing.T) {
	src := `%%MatrixMarket matrix coordinate real symmetric
3 3 3
1 1 2
2 1 -1
3 2 -1
`
	m, err := ReadMatrixMarket(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if m.At(0, 1) != -1 || m.At(1, 0) != -1 || m.At(1, 2) != -1 || m.At(2, 1) != -1 {
		t.Fatalf("symmetry not expanded: %v", m)
	}
}

func TestMatrixMarketSkewSymmetric(t *testing.T) {
	src := `%%MatrixMarket matrix coordinate real skew-symmetric
2 2 1
2 1 3
`
	m, err := ReadMatrixMarket(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if m.At(1, 0) != 3 || m.At(0, 1) != -3 {
		t.Fatalf("skew expansion wrong: %v", m)
	}
}

func TestMatrixMarketSymmetricArray(t *testing.T) {
	src := `%%MatrixMarket matrix array real symmetric
2 2
1
4
9
`
	m, err := ReadMatrixMarket(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if m.At(0, 0) != 1 || m.At(1, 0) != 4 || m.At(0, 1) != 4 || m.At(1, 1) != 9 {
		t.Fatalf("symmetric array wrong: %v", m)
	}
}

func TestMatrixMarketIntegerField(t *testing.T) {
	src := `%%MatrixMarket matrix coordinate integer general
2 2 1
1 2 5
`
	m, err := ReadMatrixMarket(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if m.At(0, 1) != 5 {
		t.Fatal("integer field not parsed")
	}
}

func TestMatrixMarketErrors(t *testing.T) {
	for name, src := range map[string]string{
		"empty":           "",
		"bad header":      "%%NotMM matrix array real general\n1 1\n1\n",
		"complex field":   "%%MatrixMarket matrix array complex general\n1 1\n1 0\n",
		"pattern field":   "%%MatrixMarket matrix coordinate pattern general\n1 1 1\n1 1\n",
		"hermitian":       "%%MatrixMarket matrix array real hermitian\n1 1\n1\n",
		"truncated array": "%%MatrixMarket matrix array real general\n2 2\n1\n2\n",
		"out of range":    "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1\n",
		"bad value":       "%%MatrixMarket matrix coordinate real general\n1 1 1\n1 1 xyz\n",
		"bad size":        "%%MatrixMarket matrix array real general\nfoo bar\n",
	} {
		if _, err := ReadMatrixMarket(strings.NewReader(src)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestMatrixMarketEmptyMatrix(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMatrixMarket(&buf, New(0, 0)); err != nil {
		t.Fatal(err)
	}
	m, err := ReadMatrixMarket(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows != 0 || m.Cols != 0 {
		t.Fatalf("shape %dx%d", m.Rows, m.Cols)
	}
}
