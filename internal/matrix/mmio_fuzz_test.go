package matrix

import (
	"bytes"
	"math"
	"testing"
)

// FuzzReadMatrixMarket feeds arbitrary bytes to the Matrix Market reader
// — the parser behind the job service's upload path — and requires that
// it never panics, never materializes a matrix beyond the element limit,
// and that anything it does accept survives a write/re-read round trip
// bit for bit.
func FuzzReadMatrixMarket(f *testing.F) {
	seeds := []string{
		"%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n4\n",
		"%%MatrixMarket matrix array real symmetric\n3 3\n1\n2\n3\n4\n5\n6\n",
		"%%MatrixMarket matrix array real skew-symmetric\n3 3\n0\n1\n2\n0\n3\n0\n",
		"%%MatrixMarket matrix coordinate real general\n3 4 2\n1 1 1.5\n3 4 -2e-3\n",
		"%%MatrixMarket matrix coordinate real symmetric\n3 3 2\n2 1 1.5\n3 3 -2e-3\n",
		"%%MatrixMarket matrix coordinate integer general\n2 3 1\n1 3 7\n",
		"%%MatrixMarket matrix array real general\n% comment\n\n2 1\n1e308\nnan\n",
		"%%MatrixMarket matrix array real general\n9999999999 9999999999\n",
		"%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1\n",
		"%%MatrixMarket matrix array complex general\n1 1\n1 0\n",
		"garbage\n1 1\n1\n",
		"",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	const limit = 1 << 16
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ReadMatrixMarketLimit(bytes.NewReader(data), limit)
		if err != nil {
			return
		}
		if int64(m.Rows)*int64(m.Cols) > limit {
			t.Fatalf("reader materialized %dx%d past the %d-element limit", m.Rows, m.Cols, limit)
		}
		var buf bytes.Buffer
		if err := WriteMatrixMarket(&buf, m); err != nil {
			t.Fatalf("write-back of accepted matrix: %v", err)
		}
		m2, err := ReadMatrixMarket(&buf)
		if err != nil {
			t.Fatalf("re-read of written matrix: %v", err)
		}
		if m2.Rows != m.Rows || m2.Cols != m.Cols {
			t.Fatalf("round trip changed shape: %dx%d -> %dx%d", m.Rows, m.Cols, m2.Rows, m2.Cols)
		}
		for j := 0; j < m.Cols; j++ {
			for i := 0; i < m.Rows; i++ {
				a, b := m.At(i, j), m2.At(i, j)
				if math.Float64bits(a) != math.Float64bits(b) && !(math.IsNaN(a) && math.IsNaN(b)) {
					t.Fatalf("round trip changed (%d,%d): %x -> %x", i, j,
						math.Float64bits(a), math.Float64bits(b))
				}
			}
		}
	})
}
