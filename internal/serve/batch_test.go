package serve

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/leakcheck"
	"repro/internal/matrix"
	"repro/internal/sim"
)

// directDigest reduces the same generated input the server would and
// returns its canonical result digest — the bit-identity oracle for the
// served results.
func directDigest(t *testing.T, n, nb int, seed uint64) string {
	t.Helper()
	a := matrix.Random(n, n, seed)
	res, err := core.Reduce(a, core.Options{NB: nb, Device: gpu.New(sim.K40c(), gpu.Real)})
	if err != nil {
		t.Fatalf("direct reduce n=%d: %v", n, err)
	}
	return res.Digest()
}

// TestBatchedJobEndToEnd drives a batched job through the throughput
// engine: items grouped by shape onto fractional lanes, per-item results
// in request order, digests bit-identical to direct core.Reduce runs, and
// a full cache hit on identical resubmission — including a single
// (non-batched) job sharing the same per-item cache entry.
func TestBatchedJobEndToEnd(t *testing.T) {
	leakcheck.Check(t)
	s, ts := newTestServer(t, Config{Capacity: 2, Devices: 2, DeviceLanes: 2, CacheEntries: 16})

	body := `{"priority":"batch","nb":8,"batch":[{"n":32,"seed":1},{"n":48,"seed":2},{"n":32,"seed":3}]}`
	id := submit(t, ts, body)
	waitState(t, ts, id, StateDone)
	got := getResult(t, ts, id)

	if len(got.Items) != 3 {
		t.Fatalf("items: got %d, want 3", len(got.Items))
	}
	want := []struct {
		n    int
		seed uint64
	}{{32, 1}, {48, 2}, {32, 3}}
	for i, it := range got.Items {
		if it.Index != i || it.N != want[i].n || it.Seed != want[i].seed || it.NB != 8 {
			t.Fatalf("item %d header %+v", i, it)
		}
		if it.Cached {
			t.Fatalf("item %d: cached on first run", i)
		}
		if it.Lane == "" || it.LaneEnd <= it.LaneStart {
			t.Fatalf("item %d lane window %q [%v,%v]", i, it.Lane, it.LaneStart, it.LaneEnd)
		}
		if d := directDigest(t, it.N, 8, it.Seed); it.ResultDigest != d {
			t.Fatalf("item %d digest %s != direct %s", i, it.ResultDigest, d)
		}
		if float64(it.Residual) > 1e-13 || float64(it.Orthogonality) > 1e-13 {
			t.Fatalf("item %d quality: %v / %v", i, it.Residual, it.Orthogonality)
		}
	}
	// Items of the same shape pack onto one lane, back-to-back.
	if got.Items[0].Lane != got.Items[2].Lane {
		t.Fatalf("same-shape items on different lanes: %q vs %q", got.Items[0].Lane, got.Items[2].Lane)
	}
	if got.Items[2].LaneStart < got.Items[0].LaneEnd {
		t.Fatalf("same-lane items overlap: [%v,%v] then [%v,%v]",
			got.Items[0].LaneStart, got.Items[0].LaneEnd, got.Items[2].LaneStart, got.Items[2].LaneEnd)
	}
	if float64(got.SimSeconds) <= 0 {
		t.Fatalf("batched SimSeconds = %v", got.SimSeconds)
	}

	// The batched job's trace exists and parses.
	resp, b := doReq(t, ts, http.MethodGet, "/v1/jobs/"+id+"/trace", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace: status %d, body %s", resp.StatusCode, b)
	}
	var events []json.RawMessage
	if err := json.Unmarshal(b, &events); err != nil || len(events) == 0 {
		t.Fatalf("trace body: err=%v events=%d", err, len(events))
	}

	// Identical resubmission: every item served from the cache, digests
	// unchanged, no device time consumed.
	id2 := submit(t, ts, body)
	waitState(t, ts, id2, StateDone)
	got2 := getResult(t, ts, id2)
	for i, it := range got2.Items {
		if !it.Cached {
			t.Fatalf("resubmitted item %d not cached", i)
		}
		if it.Lane != "" || it.LaneEnd != 0 {
			t.Fatalf("cached item %d charged a lane: %+v", i, it)
		}
		if it.ResultDigest != got.Items[i].ResultDigest {
			t.Fatalf("cached item %d digest drifted", i)
		}
	}
	if hits := s.reg.CounterValue("serve_cache_hits_total"); hits < 3 {
		t.Fatalf("serve_cache_hits_total = %v, want >= 3", hits)
	}

	// A single job over the same input shares the per-item entry.
	id3 := submit(t, ts, `{"n":32,"nb":8,"seed":1}`)
	waitState(t, ts, id3, StateDone)
	got3 := getResult(t, ts, id3)
	if !got3.Cached {
		t.Fatalf("single job over a cached batch item did not hit: %+v", got3)
	}
	if got3.ResultDigest != got.Items[0].ResultDigest {
		t.Fatalf("single-job digest %s != batch item digest %s", got3.ResultDigest, got.Items[0].ResultDigest)
	}

	// The farm's virtual clock advanced and the engine counted the work.
	if ms := s.reg.GaugeValue("batch_farm_makespan_seconds"); ms <= 0 {
		t.Fatalf("batch_farm_makespan_seconds = %v", ms)
	}
	if items := s.reg.CounterValue("batch_items_total"); items < 3 {
		t.Fatalf("batch_items_total = %v", items)
	}
}

// TestBatchRequestValidation covers the 400 surface of the new request
// fields: bad priority, malformed batch shapes, and a batched request
// against a server whose throughput engine is disabled.
func TestBatchRequestValidation(t *testing.T) {
	leakcheck.Check(t)
	_, ts := newTestServer(t, Config{Capacity: 1}) // no DeviceLanes: engine off

	bad := []string{
		`{"n":32,"priority":"urgent"}`,
		`{"n":32,"batch":[{"n":16}]}`,
		`{"batch":[]}`,                                        // empty batch array, no n
		`{"batch":[{"n":0}]}`,                                 // item order out of range
		`{"batch":[{"n":16}],"symmetric":true}`,               // no symmetric batches
		`{"batch":[{"n":16}],"devices":2}`,                    // whole-device lease conflicts
		`{"batch":[{"n":16}],"algorithm":"cpu"}`,              // host path has no lanes
		`{"batch":[{"n":16}],"fail_stop":true}`,               // no fail-stop batches
		`{"batch":[{"n":16}],"faults":[{"area":1,"iter":0}]}`, // no injection batches
		`{"batch":[{"n":16}],"matrix_market":"%%MatrixMarket matrix array real general\n1 1\n1\n"}`,
	}
	for _, body := range bad {
		resp, b := doReq(t, ts, http.MethodPost, "/v1/jobs", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("body %s: status %d (%s), want 400", body, resp.StatusCode, b)
		}
	}

	// A well-formed batched request on an engine-less server is a typed
	// client error, not a 500.
	resp, b := doReq(t, ts, http.MethodPost, "/v1/jobs", `{"batch":[{"n":16}]}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("engine-less batch: status %d (%s), want 400", resp.StatusCode, b)
	}
	var eb errorBody
	if err := json.Unmarshal(b, &eb); err != nil || eb.Code != "bad_batch_request" {
		t.Fatalf("engine-less batch body %s (err=%v), want code bad_batch_request", b, err)
	}
}

// TestCacheForgetAndLeaderCancel is the satellite-f regression: a
// coalesced follower must survive its leader's mid-flight cancellation
// (recompute locally, correct bits, no convoy), and forgetting a finished
// job must never evict the cache entry an identical future job reads.
func TestCacheForgetAndLeaderCancel(t *testing.T) {
	leakcheck.Check(t)
	s, ts := newTestServer(t, Config{Capacity: 2, CacheEntries: 8})

	gate := make(chan struct{})
	defer close(gate)
	s.testMutateOptions = func(j *Job, opt *core.Options) {
		if j.ID == "j1" {
			// Park only the leader mid-reduction; the follower (identical
			// request) coalesces onto its flight and waits.
			opt.Hook = &gateHook{ctx: j.ctx, gate: gate, at: 1}
		}
	}

	const body = `{"n":64,"nb":8,"seed":11}`
	lead := submit(t, ts, body)
	waitState(t, ts, lead, StateRunning)
	// The flight is acquired after the job turns Running; wait for the
	// miss counter so the gated job is provably the leader before the
	// follower arrives.
	missDeadline := time.Now().Add(30 * time.Second)
	for s.reg.CounterValue("serve_cache_misses_total") < 1 {
		if time.Now().After(missDeadline) {
			t.Fatalf("leader never opened a flight")
		}
		time.Sleep(2 * time.Millisecond)
	}

	follow := submit(t, ts, body)
	waitState(t, ts, follow, StateRunning)
	// The follower must be parked on the leader's flight, not computing.
	deadline := time.Now().Add(30 * time.Second)
	for s.reg.CounterValue("serve_cache_coalesced_total") < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("follower never coalesced")
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Cancel the leader mid-flight: its flight aborts, the follower wakes
	// with ok=false and recomputes locally.
	if resp, b := doReq(t, ts, http.MethodDelete, "/v1/jobs/"+lead, ""); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel leader: status %d, body %s", resp.StatusCode, b)
	}
	waitState(t, ts, lead, StateCancelled)
	waitState(t, ts, follow, StateDone)

	res := getResult(t, ts, follow)
	if res.Cached {
		t.Fatalf("follower after aborted flight reported cached")
	}
	wantDigest := directDigest(t, 64, 8, 11)
	if res.ResultDigest != wantDigest {
		t.Fatalf("follower digest %s != direct %s", res.ResultDigest, wantDigest)
	}

	// A post-abort follower holds no flight, so nothing was committed; the
	// next identical job leads, computes, and populates the cache.
	third := submit(t, ts, body)
	waitState(t, ts, third, StateDone)
	if r := getResult(t, ts, third); r.Cached || r.ResultDigest != wantDigest {
		t.Fatalf("third run: cached=%v digest=%s", r.Cached, r.ResultDigest)
	}

	fourth := submit(t, ts, body)
	waitState(t, ts, fourth, StateDone)
	if r := getResult(t, ts, fourth); !r.Cached || r.ResultDigest != wantDigest {
		t.Fatalf("fourth run not served from cache: cached=%v digest=%s", r.Cached, r.ResultDigest)
	}

	// Forget (DELETE) the finished jobs — the cache entry must survive:
	// entries belong to the cache, not to any job's lifecycle.
	for _, id := range []string{third, fourth} {
		if resp, b := doReq(t, ts, http.MethodDelete, "/v1/jobs/"+id, ""); resp.StatusCode != http.StatusAccepted {
			t.Fatalf("forget %s: status %d, body %s", id, resp.StatusCode, b)
		}
	}
	fifth := submit(t, ts, body)
	waitState(t, ts, fifth, StateDone)
	if r := getResult(t, ts, fifth); !r.Cached || r.ResultDigest != wantDigest {
		t.Fatalf("after forgetting served jobs, resubmission missed: cached=%v digest=%s", r.Cached, r.ResultDigest)
	}
	if s.cache.Len() != 1 {
		t.Fatalf("cache entries = %d, want 1", s.cache.Len())
	}
}

// TestCacheNeverServesFaultedRuns: an injected (recovered) run and its
// fault-free twin must not share bits through the cache — the faulted
// run is excluded from caching outright.
func TestCacheNeverServesFaultedRuns(t *testing.T) {
	leakcheck.Check(t)
	s, ts := newTestServer(t, Config{Capacity: 1, CacheEntries: 8})

	// The faulted run first: if it leaked into the cache, the fault-free
	// twin would hit it.
	faulted := submit(t, ts, `{"n":64,"nb":8,"seed":5,"faults":[{"area":1,"iter":1}]}`)
	waitState(t, ts, faulted, StateDone)
	if r := getResult(t, ts, faulted); r.Cached || r.Detections == 0 {
		t.Fatalf("faulted run: cached=%v detections=%d", r.Cached, r.Detections)
	}
	if s.cache.Len() != 0 {
		t.Fatalf("faulted run entered the cache (%d entries)", s.cache.Len())
	}

	clean := submit(t, ts, `{"n":64,"nb":8,"seed":5}`)
	waitState(t, ts, clean, StateDone)
	if r := getResult(t, ts, clean); r.Cached {
		t.Fatalf("fault-free twin hit a cache no clean run populated")
	}
	if s.cache.Len() != 1 {
		t.Fatalf("clean run did not enter the cache (%d entries)", s.cache.Len())
	}
}

// startedAt parses a job's start timestamp (pop order on a capacity-1
// server).
func startedAt(t *testing.T, st JobStatus) time.Time {
	t.Helper()
	ts, err := time.Parse(time.RFC3339Nano, st.Started)
	if err != nil {
		t.Fatalf("job %s started %q: %v", st.ID, st.Started, err)
	}
	return ts
}

// TestFairQueuePriority saturates a capacity-1 server with batch-class
// jobs, then submits interactive jobs behind them: weighted-fair
// scheduling must let the interactive class overtake the batch backlog
// (lower average queue wait), while the batch class still drains.
func TestFairQueuePriority(t *testing.T) {
	leakcheck.Check(t)
	// Aging effectively off: this test pins the pure WFQ order.
	s, ts := newTestServer(t, Config{Capacity: 1, QueueDepth: 16, AgingAfter: time.Hour})

	gate := make(chan struct{})
	s.testMutateOptions = func(j *Job, opt *core.Options) {
		if j.ID == "j1" {
			opt.Hook = &gateHook{ctx: j.ctx, gate: gate, at: 1}
		}
	}

	blocker := submit(t, ts, `{"n":48,"nb":8,"seed":1}`)
	waitState(t, ts, blocker, StateRunning)

	// Batch backlog first, then the interactive arrivals that must
	// overtake it.
	var batchIDs, interIDs []string
	for i := 0; i < 4; i++ {
		batchIDs = append(batchIDs, submit(t, ts, fmt.Sprintf(`{"n":32,"nb":8,"seed":%d,"priority":"batch"}`, 10+i)))
	}
	for i := 0; i < 4; i++ {
		interIDs = append(interIDs, submit(t, ts, fmt.Sprintf(`{"n":32,"nb":8,"seed":%d,"priority":"interactive"}`, 20+i)))
	}
	close(gate)
	for _, id := range append(append([]string{blocker}, batchIDs...), interIDs...) {
		waitState(t, ts, id, StateDone)
	}

	var batchWait, interWait float64
	var lastInter time.Time
	for _, id := range interIDs {
		st := getStatus(t, ts, id)
		interWait += st.QueueWaitSeconds
		if at := startedAt(t, st); at.After(lastInter) {
			lastInter = at
		}
	}
	overtaken := 0
	for _, id := range batchIDs {
		st := getStatus(t, ts, id)
		batchWait += st.QueueWaitSeconds
		if startedAt(t, st).After(lastInter) {
			overtaken++
		}
	}
	// WFQ at weights 4:1 with unit costs serves i,i,i,(b|i),b,b,b — at
	// least three of the four batch jobs start after every interactive
	// one, and the class averages reflect it.
	if overtaken < 3 {
		t.Fatalf("only %d/4 batch jobs started after the interactive class drained", overtaken)
	}
	if interWait/4 >= batchWait/4 {
		t.Fatalf("interactive avg queue wait %.4fs did not beat batch %.4fs", interWait/4, batchWait/4)
	}
}

// TestFairQueueAging floods a capacity-1 server with interactive jobs
// ahead of one queued batch job: once the batch head has starved past
// AgingAfter, the aging override must serve it out of weighted order.
func TestFairQueueAging(t *testing.T) {
	leakcheck.Check(t)
	const aging = 30 * time.Millisecond
	s, ts := newTestServer(t, Config{Capacity: 1, QueueDepth: 16, AgingAfter: aging})

	gate := make(chan struct{})
	s.testMutateOptions = func(j *Job, opt *core.Options) {
		if j.ID == "j1" {
			opt.Hook = &gateHook{ctx: j.ctx, gate: gate, at: 1}
		}
	}

	blocker := submit(t, ts, `{"n":48,"nb":8,"seed":1}`)
	waitState(t, ts, blocker, StateRunning)

	batchID := submit(t, ts, `{"n":32,"nb":8,"seed":2,"priority":"batch"}`)
	var interIDs []string
	for i := 0; i < 6; i++ {
		interIDs = append(interIDs, submit(t, ts, fmt.Sprintf(`{"n":32,"nb":8,"seed":%d}`, 30+i)))
	}

	// Let the batch head starve past the aging bound, then release.
	time.Sleep(aging + 100*time.Millisecond)
	close(gate)
	waitState(t, ts, batchID, StateDone)
	for _, id := range interIDs {
		waitState(t, ts, id, StateDone)
	}

	if aged := s.queue.Aged(); aged < 1 {
		t.Fatalf("aging never fired (aged=%d)", aged)
	}
	// The starved batch job was served out of weighted order: under pure
	// WFQ all six interactive jobs (vfinish <= 1.5) would beat it
	// (vfinish 1.0 + tie... weight 1 puts it at the back); aging must
	// start it before the interactive flood fully drains.
	batchStart := startedAt(t, getStatus(t, ts, batchID))
	after := 0
	for _, id := range interIDs {
		if startedAt(t, getStatus(t, ts, id)).After(batchStart) {
			after++
		}
	}
	if after < 2 {
		t.Fatalf("aged batch job started after %d/6 interactive jobs only", 6-after)
	}
}

// TestRetryAfterSeconds pins the pure backoff estimator behind the 429
// Retry-After header.
func TestRetryAfterSeconds(t *testing.T) {
	cases := []struct {
		depth    int
		p50      float64
		capacity int
		want     int
	}{
		{0, math.NaN(), 2, 1}, // no history, empty queue: floor
		{5, math.NaN(), 2, 1}, // no history yet: floor
		{10, 1.0, 2, 5},       // 10 jobs × 1s over 2 workers
		{3, 0.4, 2, 1},        // 0.6s rounds up to the floor
		{5, 2.0, 4, 3},        // ceil(2.5)
		{1000, 30, 1, 30},     // clamped to the ceiling
		{4, 0.5, 0, 2},        // capacity clamped to 1
		{7, -1, 3, 1},         // negative p50 treated as no history
	}
	for _, c := range cases {
		if got := retryAfterSeconds(c.depth, c.p50, c.capacity); got != c.want {
			t.Errorf("retryAfterSeconds(%d, %v, %d) = %d, want %d", c.depth, c.p50, c.capacity, got, c.want)
		}
	}
}

// TestVersionEndpoint: GET /v1/version reports the build, and every job
// status carries the same stamp.
func TestVersionEndpoint(t *testing.T) {
	leakcheck.Check(t)
	_, ts := newTestServer(t, Config{Capacity: 1})

	resp, b := doReq(t, ts, http.MethodGet, "/v1/version", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("version: status %d, body %s", resp.StatusCode, b)
	}
	var bi BuildInfo
	if err := json.Unmarshal(b, &bi); err != nil {
		t.Fatalf("version body: %v", err)
	}
	if bi.GoVersion == "" {
		t.Fatalf("version without go_version: %s", b)
	}

	id := submit(t, ts, `{"n":32,"nb":8,"seed":1}`)
	st := waitState(t, ts, id, StateDone)
	if st.Build == nil || st.Build.GoVersion != bi.GoVersion {
		t.Fatalf("job status build %+v != /v1/version %+v", st.Build, bi)
	}
}
