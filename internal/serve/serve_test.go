package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/ft"
	"repro/internal/gpu"
	"repro/internal/leakcheck"
	"repro/internal/matrix"
	"repro/internal/obs"
	"repro/internal/sim"
)

// gateHook is an ft.Hook that parks the reduction at one iteration
// boundary until the gate closes or the job's context is cancelled —
// the deterministic way to hold a capacity slot occupied (or to prove a
// cancel lands mid-reduction) without sleeping.
type gateHook struct {
	ctx  context.Context
	gate <-chan struct{}
	at   int
}

func (h *gateHook) BeforeIteration(ic *ft.IterCtx) {
	if ic.Iter != h.at {
		return
	}
	select {
	case <-h.gate:
	case <-h.ctx.Done():
	}
}

func (h *gateHook) ConsumePendingH() int { return 0 }
func (h *gateHook) PendingQ() int        { return 0 }

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		sd, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Shutdown(sd); err != nil {
			t.Errorf("cleanup shutdown: %v", err)
		}
	})
	return s, ts
}

func doReq(t *testing.T, ts *httptest.Server, method, path, body string) (*http.Response, []byte) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, ts.URL+path, rd)
	if err != nil {
		t.Fatalf("new request: %v", err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, path, err)
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp, b
}

func submit(t *testing.T, ts *httptest.Server, body string) string {
	t.Helper()
	resp, b := doReq(t, ts, http.MethodPost, "/v1/jobs", body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d, body %s", resp.StatusCode, b)
	}
	var st JobStatus
	if err := json.Unmarshal(b, &st); err != nil {
		t.Fatalf("submit response: %v", err)
	}
	if st.ID == "" || st.State != StateQueued {
		t.Fatalf("submit response %+v", st)
	}
	return st.ID
}

func getStatus(t *testing.T, ts *httptest.Server, id string) JobStatus {
	t.Helper()
	resp, b := doReq(t, ts, http.MethodGet, "/v1/jobs/"+id, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %s: %d %s", id, resp.StatusCode, b)
	}
	var st JobStatus
	if err := json.Unmarshal(b, &st); err != nil {
		t.Fatalf("status %s: %v", id, err)
	}
	return st
}

func terminal(state string) bool {
	return state == StateDone || state == StateFailed || state == StateCancelled
}

func waitState(t *testing.T, ts *httptest.Server, id, want string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		st := getStatus(t, ts, id)
		if st.State == want {
			return st
		}
		if terminal(st.State) {
			t.Fatalf("job %s reached %q (err=%q) while waiting for %q", id, st.State, st.Error, want)
		}
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for job %s to reach %q (at %q)", id, want, st.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func getResult(t *testing.T, ts *httptest.Server, id string) *JobResult {
	t.Helper()
	resp, b := doReq(t, ts, http.MethodGet, "/v1/jobs/"+id+"/result", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result %s: %d %s", id, resp.StatusCode, b)
	}
	var res JobResult
	if err := json.Unmarshal(b, &res); err != nil {
		t.Fatalf("result %s: %v", id, err)
	}
	return &res
}

// directResult runs the same reduction the server would, bypassing HTTP,
// and returns the residual pair the result endpoint reports.
func directResult(t *testing.T, req JobRequest) (residual, orthogonality float64) {
	t.Helper()
	a, err := req.Matrix(4096)
	if err != nil {
		t.Fatalf("direct matrix: %v", err)
	}
	opt := core.Options{NB: req.NB, Device: gpu.New(sim.K40c(), gpu.Real)}
	switch req.algorithm() {
	case AlgBaseline:
		opt.Algorithm = core.Baseline
	case AlgCPU:
		opt.Algorithm = core.CPUOnly
		opt.Device = nil
	}
	res, err := core.Reduce(a, opt)
	if err != nil {
		t.Fatalf("direct reduce: %v", err)
	}
	return res.Residual(a), res.Orthogonality()
}

// TestSubmitPollResult drives the happy path end to end and checks the
// served residuals are bit-for-bit those of a direct core.Reduce run.
func TestSubmitPollResult(t *testing.T) {
	leakcheck.Check(t)
	_, ts := newTestServer(t, Config{Capacity: 1})

	req := JobRequest{N: 48, NB: 8, Seed: 7}
	id := submit(t, ts, `{"n":48,"nb":8,"seed":7}`)
	waitState(t, ts, id, StateDone)
	got := getResult(t, ts, id)
	if got.Algorithm != AlgFT || got.N != 48 || got.NB != 8 {
		t.Fatalf("result header %+v", got)
	}
	wantRes, wantOrth := directResult(t, req)
	if math.Float64bits(float64(got.Residual)) != math.Float64bits(wantRes) {
		t.Fatalf("served residual %v != direct %v", float64(got.Residual), wantRes)
	}
	if math.Float64bits(float64(got.Orthogonality)) != math.Float64bits(wantOrth) {
		t.Fatalf("served orthogonality %v != direct %v", float64(got.Orthogonality), wantOrth)
	}
	if wantRes > 1e-13 || wantOrth > 1e-13 {
		t.Fatalf("reduction quality: residual %v orthogonality %v", wantRes, wantOrth)
	}
}

// TestBackpressureAndCancel is the scheduler contract test: 4× capacity
// jobs against a capacity-2 server — inflight never exceeds 2, the queue
// absorbs exactly QueueDepth jobs, everything beyond gets 429, a DELETE
// lands mid-reduction and the freed slot is reused, and completed results
// are bit-identical to direct runs despite the concurrency.
func TestBackpressureAndCancel(t *testing.T) {
	leakcheck.Check(t)
	s, ts := newTestServer(t, Config{Capacity: 2, QueueDepth: 2})

	gate := make(chan struct{})
	var inflight, maxInflight atomic.Int32
	s.testBeforeRun = func(*Job) {
		c := inflight.Add(1)
		for {
			m := maxInflight.Load()
			if c <= m || maxInflight.CompareAndSwap(m, c) {
				break
			}
		}
	}
	s.testAfterRun = func(*Job) { inflight.Add(-1) }
	s.testMutateOptions = func(j *Job, opt *core.Options) {
		opt.Hook = &gateHook{ctx: j.ctx, gate: gate, at: 1}
	}

	// 2 running (parked at iteration 1) + 2 queued.
	ids := make([]string, 4)
	for i := range ids {
		ids[i] = submit(t, ts, fmt.Sprintf(`{"n":48,"nb":8,"seed":%d}`, i+1))
	}
	waitState(t, ts, ids[0], StateRunning)
	waitState(t, ts, ids[1], StateRunning)

	// 4 more: the queue is full, every one must bounce with Retry-After.
	for i := 0; i < 4; i++ {
		resp, b := doReq(t, ts, http.MethodPost, "/v1/jobs", fmt.Sprintf(`{"n":48,"nb":8,"seed":%d}`, 100+i))
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("overflow submit %d: status %d, body %s", i, resp.StatusCode, b)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Fatalf("429 without Retry-After")
		}
	}

	// Cancel one of the running jobs mid-reduction: the hook wakes on
	// ctx.Done, the loop notices within one iteration, the slot frees.
	if resp, b := doReq(t, ts, http.MethodDelete, "/v1/jobs/"+ids[0], ""); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel: status %d, body %s", resp.StatusCode, b)
	}
	waitState(t, ts, ids[0], StateCancelled)
	waitState(t, ts, ids[2], StateRunning) // reclaimed slot

	close(gate)
	for _, id := range ids[1:] {
		waitState(t, ts, id, StateDone)
	}

	// Cancelled job's result is gone; finished ones are bit-identical to
	// direct runs of the same request.
	if resp, _ := doReq(t, ts, http.MethodGet, "/v1/jobs/"+ids[0]+"/result", ""); resp.StatusCode != http.StatusGone {
		t.Fatalf("cancelled result: status %d", resp.StatusCode)
	}
	for i, id := range ids[1:] {
		got := getResult(t, ts, id)
		wantRes, wantOrth := directResult(t, JobRequest{N: 48, NB: 8, Seed: uint64(i + 2)})
		if math.Float64bits(float64(got.Residual)) != math.Float64bits(wantRes) ||
			math.Float64bits(float64(got.Orthogonality)) != math.Float64bits(wantOrth) {
			t.Fatalf("job %s: served (%v,%v) != direct (%v,%v)", id,
				float64(got.Residual), float64(got.Orthogonality), wantRes, wantOrth)
		}
	}

	if m := maxInflight.Load(); m > 2 {
		t.Fatalf("inflight reached %d on a capacity-2 server", m)
	}

	// The metrics endpoint accounts for every outcome.
	resp, b := doReq(t, ts, http.MethodGet, "/metrics", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %d", resp.StatusCode)
	}
	for _, want := range []string{
		`serve_jobs_total{status="accepted"} 4`,
		`serve_jobs_total{status="rejected_full"} 4`,
		`serve_jobs_total{status="cancelled"} 1`,
		`serve_jobs_total{status="done"} 3`,
		"serve_inflight 0",
		"serve_queue_depth 0",
		"serve_job_seconds_count 4",
	} {
		if !strings.Contains(string(b), want) {
			t.Fatalf("metrics missing %q:\n%s", want, b)
		}
	}
}

// TestCancelQueuedJob frees a queued (never started) job immediately.
func TestCancelQueuedJob(t *testing.T) {
	leakcheck.Check(t)
	s, ts := newTestServer(t, Config{Capacity: 1, QueueDepth: 2})
	gate := make(chan struct{})
	s.testMutateOptions = func(j *Job, opt *core.Options) {
		opt.Hook = &gateHook{ctx: j.ctx, gate: gate, at: 1}
	}
	running := submit(t, ts, `{"n":48,"nb":8,"seed":1}`)
	queued := submit(t, ts, `{"n":48,"nb":8,"seed":2}`)
	waitState(t, ts, running, StateRunning)

	if resp, _ := doReq(t, ts, http.MethodDelete, "/v1/jobs/"+queued, ""); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel queued: %d", resp.StatusCode)
	}
	if st := getStatus(t, ts, queued); st.State != StateCancelled {
		t.Fatalf("queued job state %q after cancel", st.State)
	}
	close(gate)
	waitState(t, ts, running, StateDone)
}

// TestGracefulShutdownDrains proves Shutdown lets in-flight jobs finish,
// cancels the queue, and rejects new submissions while draining.
func TestGracefulShutdownDrains(t *testing.T) {
	leakcheck.Check(t)
	s, ts := newTestServer(t, Config{Capacity: 1, QueueDepth: 4})
	gate := make(chan struct{})
	s.testMutateOptions = func(j *Job, opt *core.Options) {
		opt.Hook = &gateHook{ctx: j.ctx, gate: gate, at: 1}
	}
	inflight := submit(t, ts, `{"n":48,"nb":8,"seed":1}`)
	queued := submit(t, ts, `{"n":48,"nb":8,"seed":2}`)
	waitState(t, ts, inflight, StateRunning)

	done := make(chan error, 1)
	go func() {
		sd, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		done <- s.Shutdown(sd)
	}()
	for !s.Draining() {
		time.Sleep(time.Millisecond)
	}

	if resp, _ := doReq(t, ts, http.MethodGet, "/readyz", ""); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining: %d", resp.StatusCode)
	}
	if resp, _ := doReq(t, ts, http.MethodGet, "/healthz", ""); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz while draining: %d", resp.StatusCode)
	}
	if resp, _ := doReq(t, ts, http.MethodPost, "/v1/jobs", `{"n":16}`); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: %d", resp.StatusCode)
	}

	close(gate)
	if err := <-done; err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}
	if st := getStatus(t, ts, inflight); st.State != StateDone {
		t.Fatalf("in-flight job drained to %q", st.State)
	}
	if st := getStatus(t, ts, queued); st.State != StateCancelled {
		t.Fatalf("queued job at shutdown: %q", st.State)
	}
}

// TestShutdownDeadlineCancelsInflight: when the drain deadline passes,
// in-flight jobs are cancelled (they unwind within one iteration) and the
// workers still exit — no goroutine survives.
func TestShutdownDeadlineCancelsInflight(t *testing.T) {
	leakcheck.Check(t)
	s, ts := newTestServer(t, Config{Capacity: 1})
	never := make(chan struct{})
	s.testMutateOptions = func(j *Job, opt *core.Options) {
		opt.Hook = &gateHook{ctx: j.ctx, gate: never, at: 1}
	}
	id := submit(t, ts, `{"n":48,"nb":8,"seed":1}`)
	waitState(t, ts, id, StateRunning)

	sd, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(sd); err != context.DeadlineExceeded {
		t.Fatalf("deadline shutdown returned %v", err)
	}
	if st := getStatus(t, ts, id); st.State != StateCancelled {
		t.Fatalf("in-flight job after deadline shutdown: %q", st.State)
	}
}

// TestFaultInjectionJob drives the paper's resilience path over HTTP.
func TestFaultInjectionJob(t *testing.T) {
	leakcheck.Check(t)
	_, ts := newTestServer(t, Config{Capacity: 1})
	id := submit(t, ts, `{"n":64,"nb":8,"seed":3,"faults":[{"area":2,"iter":1,"seed":9}]}`)
	waitState(t, ts, id, StateDone)
	res := getResult(t, ts, id)
	if res.Detections < 1 || res.Recoveries < 1 {
		t.Fatalf("injected fault not recovered: %+v", res)
	}
	if r := float64(res.Residual); !(r < 1e-10) {
		t.Fatalf("post-recovery residual %v", r)
	}
}

// TestCostOnlyResultNonFinite: a cost-only job has no numerics; its NaN
// residuals must survive JSON (the obs.Float encoding), not 500.
func TestCostOnlyResultNonFinite(t *testing.T) {
	leakcheck.Check(t)
	_, ts := newTestServer(t, Config{Capacity: 1})
	id := submit(t, ts, `{"n":128,"nb":16,"cost_only":true}`)
	waitState(t, ts, id, StateDone)

	resp, b := doReq(t, ts, http.MethodGet, "/v1/jobs/"+id+"/result", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result: %d %s", resp.StatusCode, b)
	}
	if !strings.Contains(string(b), `"residual": "NaN"`) {
		t.Fatalf("cost-only residual not encoded as NaN string:\n%s", b)
	}
	var res JobResult
	if err := json.Unmarshal(b, &res); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !math.IsNaN(float64(res.Residual)) || !math.IsNaN(float64(res.Orthogonality)) {
		t.Fatalf("non-finite residuals lost in transit: %+v", res)
	}
	if res.SimSeconds <= 0 || res.ModelGFLOPS <= 0 {
		t.Fatalf("cost-only job lost its performance model: %+v", res)
	}
}

// TestSymmetricJob runs the tridiagonalization path over HTTP.
func TestSymmetricJob(t *testing.T) {
	leakcheck.Check(t)
	_, ts := newTestServer(t, Config{Capacity: 1})
	id := submit(t, ts, `{"n":48,"nb":8,"seed":5,"symmetric":true}`)
	waitState(t, ts, id, StateDone)
	res := getResult(t, ts, id)
	if !res.Symmetric {
		t.Fatalf("symmetric flag lost: %+v", res)
	}
	if r := float64(res.Residual); !(r < 1e-13) {
		t.Fatalf("tridiagonalization residual %v", r)
	}
}

// TestMatrixMarketUpload submits the input matrix inline.
func TestMatrixMarketUpload(t *testing.T) {
	leakcheck.Check(t)
	_, ts := newTestServer(t, Config{Capacity: 1})
	a := matrix.Random(12, 12, 11)
	var sb strings.Builder
	if err := matrix.WriteMatrixMarket(&sb, a); err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(JobRequest{Algorithm: AlgCPU, MatrixMarket: sb.String()})
	if err != nil {
		t.Fatal(err)
	}
	id := submit(t, ts, string(body))
	waitState(t, ts, id, StateDone)
	res := getResult(t, ts, id)
	if res.N != 12 || res.Algorithm != AlgCPU {
		t.Fatalf("uploaded job result %+v", res)
	}
	if r := float64(res.Residual); !(r < 1e-13) {
		t.Fatalf("uploaded matrix residual %v", r)
	}
}

// TestBadRequests: every malformed body is a 400, never a panic or a
// surprise allocation.
func TestBadRequests(t *testing.T) {
	leakcheck.Check(t)
	_, ts := newTestServer(t, Config{Capacity: 1, MaxN: 256})
	cases := []string{
		``,
		`{`,
		`not json`,
		`{"n":0}`,
		`{"n":-5}`,
		`{"n":100000}`,
		`{"n":16,"algorithm":"quantum"}`,
		`{"n":16,"nb":-1}`,
		`{"n":16,"nb":100000}`,
		`{"n":16,"unknown_field":1}`,
		`{"n":16}{"n":17}`,
		`{"n":16,"threshold_factor":-1}`,
		`{"n":16,"faults":[{"area":9,"iter":0}]}`,
		`{"n":16,"faults":[{"area":2,"iter":-1}]}`,
		`{"n":16,"faults":[{"area":2,"iter":0,"bit":99}]}`,
		`{"n":16,"symmetric":true,"faults":[{"area":2,"iter":0}]}`,
		`{"n":16,"algorithm":"cpu","faults":[{"area":2,"iter":0}]}`,
		`{"matrix_market":"%%MatrixMarket matrix array real general\n2 3\n1\n2\n3\n4\n5\n6\n"}`,
		`{"matrix_market":"%%MatrixMarket matrix array real general\n999999 999999\n"}`,
		`{"n":5,"matrix_market":"%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n4\n"}`,
	}
	for _, body := range cases {
		resp, b := doReq(t, ts, http.MethodPost, "/v1/jobs", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q: status %d (%s), want 400", body, resp.StatusCode, b)
		}
	}
	if resp, _ := doReq(t, ts, http.MethodGet, "/v1/jobs/nope", ""); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job status: %d", resp.StatusCode)
	}
	if resp, _ := doReq(t, ts, http.MethodDelete, "/v1/jobs/nope", ""); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job cancel: %d", resp.StatusCode)
	}
	if resp, _ := doReq(t, ts, http.MethodGet, "/v1/jobs/nope/result", ""); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job result: %d", resp.StatusCode)
	}
}

// TestResultNotReady: the result endpoint answers 409 until completion.
func TestResultNotReady(t *testing.T) {
	leakcheck.Check(t)
	s, ts := newTestServer(t, Config{Capacity: 1})
	gate := make(chan struct{})
	s.testMutateOptions = func(j *Job, opt *core.Options) {
		opt.Hook = &gateHook{ctx: j.ctx, gate: gate, at: 1}
	}
	id := submit(t, ts, `{"n":48,"nb":8,"seed":1}`)
	waitState(t, ts, id, StateRunning)
	if resp, _ := doReq(t, ts, http.MethodGet, "/v1/jobs/"+id+"/result", ""); resp.StatusCode != http.StatusConflict {
		t.Fatalf("result while running: %d", resp.StatusCode)
	}
	close(gate)
	waitState(t, ts, id, StateDone)
	if resp, _ := doReq(t, ts, http.MethodGet, "/v1/jobs/"+id+"/result", ""); resp.StatusCode != http.StatusOK {
		t.Fatalf("result when done: %d", resp.StatusCode)
	}
	// DELETE on a finished job forgets it.
	if resp, _ := doReq(t, ts, http.MethodDelete, "/v1/jobs/"+id, ""); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("forget finished: %d", resp.StatusCode)
	}
	if resp, _ := doReq(t, ts, http.MethodGet, "/v1/jobs/"+id, ""); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("forgotten job still visible: %d", resp.StatusCode)
	}
}

func gaugeValue(reg *obs.Registry, name string) float64 {
	for _, p := range reg.Snapshot() {
		if p.Kind == "gauge" && p.Name == name {
			return p.Value
		}
	}
	return 0
}

func waitGauge(t *testing.T, reg *obs.Registry, name string, want float64) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for gaugeValue(reg, name) != want {
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for gauge %s to reach %v (at %v)", name, want, gaugeValue(reg, name))
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestDeviceLeasing is the device-farm contract test: two one-device jobs
// hold disjoint devices concurrently, a whole-farm job waits for the farm
// to drain (lease wait, not failure), and every lease comes back.
func TestDeviceLeasing(t *testing.T) {
	leakcheck.Check(t)
	s, ts := newTestServer(t, Config{Capacity: 3, Devices: 2})
	gate := make(chan struct{})
	s.testMutateOptions = func(j *Job, opt *core.Options) {
		// Gate only the leasing jobs that asked for one device.
		if j.req.Devices == 1 {
			opt.Hook = &gateHook{ctx: j.ctx, gate: gate, at: 1}
		}
	}

	a := submit(t, ts, `{"n":96,"nb":16,"seed":1,"devices":1}`)
	b := submit(t, ts, `{"n":96,"nb":16,"seed":2,"devices":1}`)
	// Both one-device jobs lease disjoint devices and run concurrently.
	waitGauge(t, s.Registry(), "serve_devices_leased", 2)
	waitState(t, ts, a, StateRunning)
	waitState(t, ts, b, StateRunning)

	// The whole-farm job occupies a capacity slot but blocks on the lease
	// until both devices come back.
	c := submit(t, ts, `{"n":96,"nb":16,"seed":3,"devices":2}`)
	waitState(t, ts, c, StateRunning)
	if g := gaugeValue(s.Registry(), "serve_devices_leased"); g != 2 {
		t.Fatalf("whole-farm job leased early: gauge %v", g)
	}
	if st := getStatus(t, ts, c); terminal(st.State) {
		t.Fatalf("whole-farm job finished while the farm was exhausted: %+v", st)
	}

	close(gate)
	waitState(t, ts, a, StateDone)
	waitState(t, ts, b, StateDone)
	waitState(t, ts, c, StateDone)
	waitGauge(t, s.Registry(), "serve_devices_leased", 0)
	if r := float64(getResult(t, ts, c).Residual); r > 1e-13 {
		t.Fatalf("pooled job residual %v", r)
	}
}

// TestDeviceLeaseCancelReturnsPartialLease: cancelling a job that is
// waiting on the lease returns whatever it had collected, so the farm
// never leaks capacity.
func TestDeviceLeaseCancel(t *testing.T) {
	leakcheck.Check(t)
	s, ts := newTestServer(t, Config{Capacity: 2, Devices: 2})
	gate := make(chan struct{})
	s.testMutateOptions = func(j *Job, opt *core.Options) {
		if j.req.Devices == 1 {
			opt.Hook = &gateHook{ctx: j.ctx, gate: gate, at: 1}
		}
	}

	a := submit(t, ts, `{"n":96,"nb":16,"seed":4,"devices":1}`)
	waitGauge(t, s.Registry(), "serve_devices_leased", 1)
	// The whole-farm job grabs the free device, then blocks for the held one.
	b := submit(t, ts, `{"n":96,"nb":16,"seed":5,"devices":2}`)
	waitState(t, ts, b, StateRunning)

	if resp, _ := doReq(t, ts, http.MethodDelete, "/v1/jobs/"+b, ""); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel: %d", resp.StatusCode)
	}
	waitState(t, ts, b, StateCancelled)

	close(gate)
	waitState(t, ts, a, StateDone)
	waitGauge(t, s.Registry(), "serve_devices_leased", 0)
	// The full farm must be available again: a whole-farm job completes.
	c := submit(t, ts, `{"n":96,"nb":16,"seed":6,"devices":2}`)
	waitState(t, ts, c, StateDone)
}

func TestDeviceRequestRejections(t *testing.T) {
	leakcheck.Check(t)
	_, ts := newTestServer(t, Config{Capacity: 1, Devices: 2})
	for _, tc := range []struct{ name, body string }{
		{"more than farm", `{"n":32,"devices":3}`},
		{"negative", `{"n":32,"devices":-1}`},
		{"cpu", `{"n":32,"algorithm":"cpu","devices":1}`},
	} {
		resp, b := doReq(t, ts, http.MethodPost, "/v1/jobs", tc.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, body %s", tc.name, resp.StatusCode, b)
		}
	}
	// A symmetric multi-device request is accepted (the shape check lives
	// in the reduction stack) but fails with the typed unsupported error,
	// which the result endpoint maps to a structured 400.
	resp, b := doReq(t, ts, http.MethodPost, "/v1/jobs", `{"n":32,"symmetric":true,"devices":1}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("symmetric submit: status %d, body %s", resp.StatusCode, b)
	}
	var st JobStatus
	if err := json.Unmarshal(b, &st); err != nil {
		t.Fatal(err)
	}
	waitState(t, ts, st.ID, StateFailed)
	resp, b = doReq(t, ts, http.MethodGet, "/v1/jobs/"+st.ID+"/result", "")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("symmetric result: status %d, body %s", resp.StatusCode, b)
	}
	var eb struct{ Error, Code string }
	if err := json.Unmarshal(b, &eb); err != nil {
		t.Fatal(err)
	}
	if eb.Code != "unsupported" {
		t.Fatalf("symmetric result code = %q, body %s", eb.Code, b)
	}
	// A farm-less server rejects any lease request.
	_, ts2 := newTestServer(t, Config{Capacity: 1})
	resp, b = doReq(t, ts2, http.MethodPost, "/v1/jobs", `{"n":32,"devices":1}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("no farm: status %d, body %s", resp.StatusCode, b)
	}
}
