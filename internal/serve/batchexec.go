package serve

import (
	"context"
	"math"

	"repro/internal/batch"
	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/matrix"
	"repro/internal/obs"
	"repro/internal/sim"
)

// executeBatch runs a batched job on the throughput engine: items are
// grouped by (N, nb) and packed back-to-back onto fractional device
// lanes, each item either served from the result cache or reduced on a
// fresh lane-named device whose demand is charged to the device's
// virtual clock. One item's failure cancels the job's remaining groups
// (first error in item order wins). Runs on the worker goroutine.
func (s *Server) executeBatch(j *Job) (*JobResult, error) {
	req := j.req
	mode := gpu.Real
	if req.CostOnly {
		mode = gpu.CostOnly
	}
	items := make([]batch.Item, len(req.Batch))
	for i, b := range req.Batch {
		nb := b.NB
		if nb == 0 {
			nb = req.NB
		}
		items[i] = batch.Item{Index: i, N: b.N, NB: nb, Seed: b.Seed}
	}
	trace := j.traceContext()

	runner := func(ctx context.Context, it batch.Item, lane batch.Lane) (any, *gpu.Device, error) {
		a := matrix.Random(it.N, it.N, it.Seed)

		// Per-item cache: the key digests the generated input, so two
		// batched jobs (or a batched and a single job) sharing an item
		// share its entry. The leader computes while holding its lane, so
		// coalesced followers waiting on other lanes always make progress.
		var flight *batch.Flight
		if key, ok := s.cacheKey(req, a, it.NB); ok {
			val, fl, st := s.cache.Acquire(key)
			switch st {
			case batch.Hit:
				s.cCacheHit.Inc()
				return val.(*cachedRun), nil, nil
			case batch.Follow:
				s.cCacheCoalesce.Inc()
				v, ok, err := fl.Wait(ctx)
				if err != nil {
					return nil, nil, err
				}
				if ok {
					s.cCacheHit.Inc()
					return v.(*cachedRun), nil, nil
				}
				// Leader aborted: compute locally, no new flight.
			case batch.Lead:
				s.cCacheMiss.Inc()
				flight = fl
				defer func() {
					if flight != nil {
						s.cache.Abort(flight)
					}
				}()
			}
		}

		// A fresh device per item: the simulated clocks are absolute, so
		// reuse would leak earlier items' time into later ones. The lane
		// name ("d0.l1") flows into metric labels and trace rows.
		dev := gpu.NewNamed(sim.K40c(), mode, lane.Name())
		if j.tracer != nil {
			dev.EnableTrace()
		}
		j.setDevice(dev)
		opt := core.Options{
			Ctx: ctx, NB: it.NB,
			CostOnly:           req.CostOnly,
			ThresholdFactor:    req.ThresholdFactor,
			FinalHCheck:        req.FinalHCheck,
			DisableQProtection: req.DisableQProtection,
			DisableOverlap:     req.DisableOverlap,
			DisableLookahead:   req.Lookahead != nil && !*req.Lookahead,
			Substrate:          req.Substrate,
			Obs:                s.reg,
			Journal:            j.journal,
			Trace:              trace,
			Device:             dev,
		}
		if req.algorithm() == AlgBaseline {
			opt.Algorithm = core.Baseline
		} else {
			opt.Algorithm = core.FaultTolerant
		}
		if s.testMutateOptions != nil {
			s.testMutateOptions(j, &opt)
		}
		res, err := core.Reduce(a, opt)
		if err != nil {
			return nil, dev, err
		}
		run := newCachedRun(buildResult(req, a, res))
		if flight != nil && cacheable(res) {
			s.cache.Commit(flight, run)
			flight = nil
		}
		return run, dev, nil
	}

	runs, err := s.engine.Run(j.ctx, items, runner)
	if err != nil {
		return nil, err
	}

	out := &JobResult{
		ID:        j.ID,
		Algorithm: req.algorithm(),
		NB:        req.NB,
		Items:     make([]BatchItemResult, len(runs)),
		// Job-level numerics live on the items for batched jobs.
		Residual:      obs.Float(math.NaN()),
		Orthogonality: obs.Float(math.NaN()),
	}
	var spans []gpu.Span
	var totalSim float64
	for i, r := range runs {
		c := r.Value.(*cachedRun)
		item := c.itemResult(r.Item.Index, r.Item.Seed, r.Dev == nil)
		if r.Dev != nil {
			item.Lane, item.LaneStart, item.LaneEnd = r.Lane, r.Start, r.End
			if j.tracer != nil {
				// Shift the item's sim spans by its modeled lane start so the
				// job trace lays the lanes out on the shared virtual clock.
				for _, sp := range r.Dev.Trace() {
					sp.Start += r.Start
					sp.End += r.Start
					spans = append(spans, sp)
				}
			}
		}
		totalSim += float64(item.SimSeconds)
		out.Items[i] = item
	}
	out.SimSeconds = obs.Float(totalSim)
	if j.tracer != nil {
		j.simSpans = spans
	}
	return out, nil
}
