package serve

import (
	"math"

	"repro/internal/core"
	"repro/internal/lapack"
	"repro/internal/matrix"
	"repro/internal/obs"
)

// JobResult is the wire form of GET /v1/jobs/{id}/result. Residuals use
// obs.Float so that non-finite values — a cost-only run has no numerics,
// and an unrecovered fault can blow a residual up to ±Inf — survive the
// JSON round trip instead of failing to encode (encoding/json rejects
// IEEE specials on a bare float64).
type JobResult struct {
	ID        string `json:"id"`
	Algorithm string `json:"algorithm"`
	Symmetric bool   `json:"symmetric,omitempty"`
	N         int    `json:"n"`
	NB        int    `json:"nb"`

	// Simulated performance (zero for the CPU path).
	SimSeconds  obs.Float `json:"sim_seconds"`
	ModelGFLOPS obs.Float `json:"model_gflops"`

	// Resilience statistics (fault-tolerant paths).
	Detections   int `json:"detections"`
	Recoveries   int `json:"recoveries"`
	Corrections  int `json:"corrections"`
	QCorrections int `json:"q_corrections"`
	// Fail-stop statistics (multi-device "ft" jobs with fail_stop on):
	// permanent device deaths and the parity reconstructions that
	// survived them.
	DeviceLosses       int `json:"device_losses,omitempty"`
	FailStopRecoveries int `json:"failstop_recoveries,omitempty"`

	// Numerical quality against the submitted matrix: ‖A−QHQᵀ‖₁/(N‖A‖₁)
	// and ‖QQᵀ−I‖₁/N. NaN for cost-only runs, which skip the arithmetic.
	Residual      obs.Float `json:"residual"`
	Orthogonality obs.Float `json:"orthogonality"`
}

// generalResult builds the response for the Hessenberg paths.
func generalResult(j *Job, res *core.Result) *JobResult {
	out := &JobResult{
		ID:        j.ID,
		Algorithm: j.req.algorithm(),
		N:         res.N,
		NB:        res.NB,

		SimSeconds:  obs.Float(res.SimSeconds),
		ModelGFLOPS: obs.Float(res.ModelGFLOPS),

		Detections:   res.Detections,
		Recoveries:   res.Recoveries,
		Corrections:  len(res.CorrectedH),
		QCorrections: res.QCorrections,

		DeviceLosses:       res.DeviceLosses,
		FailStopRecoveries: res.FailStopRecoveries,

		Residual:      obs.Float(math.NaN()),
		Orthogonality: obs.Float(math.NaN()),
	}
	if !j.req.CostOnly {
		out.Residual = obs.Float(res.Residual(j.a))
		out.Orthogonality = obs.Float(res.Orthogonality())
	}
	return out
}

// symResult builds the response for the tridiagonalization path.
func symResult(j *Job, res *core.SymResult) *JobResult {
	out := &JobResult{
		ID:        j.ID,
		Algorithm: j.req.algorithm(),
		Symmetric: true,
		N:         res.N,
		NB:        res.NB,

		SimSeconds:  obs.Float(res.SimSeconds),
		ModelGFLOPS: obs.Float(res.ModelGFLOPS),

		Detections:  res.Detections,
		Recoveries:  res.Recoveries,
		Corrections: res.Corrections,

		Residual:      obs.Float(math.NaN()),
		Orthogonality: obs.Float(math.NaN()),
	}
	if !j.req.CostOnly {
		q := res.Q()
		out.Residual = obs.Float(lapack.FactorizationResidual(j.a, q, tridiag(res.N, res.D, res.E)))
		out.Orthogonality = obs.Float(lapack.OrthogonalityResidual(q))
	}
	return out
}

// tridiag assembles the dense tridiagonal factor from its diagonals.
func tridiag(n int, d, e []float64) *matrix.Matrix {
	t := matrix.New(n, n)
	for i := 0; i < n; i++ {
		t.Set(i, i, d[i])
		if i+1 < n {
			t.Set(i+1, i, e[i])
			t.Set(i, i+1, e[i])
		}
	}
	return t
}
