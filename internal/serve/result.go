package serve

import (
	"math"

	"repro/internal/core"
	"repro/internal/lapack"
	"repro/internal/matrix"
	"repro/internal/obs"
)

// JobResult is the wire form of GET /v1/jobs/{id}/result. Residuals use
// obs.Float so that non-finite values — a cost-only run has no numerics,
// and an unrecovered fault can blow a residual up to ±Inf — survive the
// JSON round trip instead of failing to encode (encoding/json rejects
// IEEE specials on a bare float64).
type JobResult struct {
	ID        string `json:"id"`
	Algorithm string `json:"algorithm"`
	Symmetric bool   `json:"symmetric,omitempty"`
	N         int    `json:"n"`
	NB        int    `json:"nb"`

	// Simulated performance (zero for the CPU path).
	SimSeconds  obs.Float `json:"sim_seconds"`
	ModelGFLOPS obs.Float `json:"model_gflops"`

	// Resilience statistics (fault-tolerant paths).
	Detections   int `json:"detections"`
	Recoveries   int `json:"recoveries"`
	Corrections  int `json:"corrections"`
	QCorrections int `json:"q_corrections"`
	// Fail-stop statistics (multi-device "ft" jobs with fail_stop on):
	// permanent device deaths and the parity reconstructions that
	// survived them.
	DeviceLosses       int `json:"device_losses,omitempty"`
	FailStopRecoveries int `json:"failstop_recoveries,omitempty"`

	// Numerical quality against the submitted matrix: ‖A−QHQᵀ‖₁/(N‖A‖₁)
	// and ‖QQᵀ−I‖₁/N. NaN for cost-only runs, which skip the arithmetic.
	Residual      obs.Float `json:"residual"`
	Orthogonality obs.Float `json:"orthogonality"`

	// ResultDigest is the canonical SHA-256 of the factorization (packed
	// + tau, the `fthess -checksum` fingerprint) — the bit-identity the
	// determinism contracts promise, checkable by clients. Empty for
	// cost-only and symmetric runs.
	ResultDigest string `json:"result_digest,omitempty"`
	// Cached is true when this result was served from the digest-keyed
	// result cache instead of being recomputed.
	Cached bool `json:"cached,omitempty"`

	// Items holds the per-reduction outcomes of a batched job, in request
	// order. For batched jobs the top-level SimSeconds is the summed
	// device-seconds of the items (their concurrency lives on the lane
	// clocks; each item reports its modeled lane window).
	Items []BatchItemResult `json:"items,omitempty"`
}

// BatchItemResult is one item of a batched job's result.
type BatchItemResult struct {
	Index int    `json:"index"`
	N     int    `json:"n"`
	NB    int    `json:"nb"`
	Seed  uint64 `json:"seed"`

	// Lane is the fractional lease that ran the item ("d0.l1"); LaneStart
	// and LaneEnd are its modeled window on that device's virtual clock.
	// Empty/zero for cache hits, which consume no device time.
	Lane      string  `json:"lane,omitempty"`
	LaneStart float64 `json:"lane_start_seconds,omitempty"`
	LaneEnd   float64 `json:"lane_end_seconds,omitempty"`

	SimSeconds  obs.Float `json:"sim_seconds"`
	ModelGFLOPS obs.Float `json:"model_gflops"`

	Residual      obs.Float `json:"residual"`
	Orthogonality obs.Float `json:"orthogonality"`

	ResultDigest string `json:"result_digest,omitempty"`
	Cached       bool   `json:"cached,omitempty"`
}

// cachedRun is the immutable payload stored in the result cache: a
// fully built result template (residuals included — they are a pure
// function of the cached input/output pair, so a hit pays no O(N³)
// verification either). The template is shared by every future hit and
// must never be mutated; jobResult hands out copies.
type cachedRun struct {
	tpl JobResult
}

func newCachedRun(out *JobResult) *cachedRun {
	tpl := *out
	tpl.ID = ""
	tpl.Cached = false
	tpl.Items = nil // single-run payloads only; items cache individually
	return &cachedRun{tpl: tpl}
}

// jobResult instantiates the cached template for one served job.
func (c *cachedRun) jobResult(j *Job) *JobResult {
	out := c.tpl
	out.ID = j.ID
	out.Cached = true
	return &out
}

// itemResult instantiates the cached template as one batched item.
func (c *cachedRun) itemResult(idx int, seed uint64, cached bool) BatchItemResult {
	return BatchItemResult{
		Index: idx, N: c.tpl.N, NB: c.tpl.NB, Seed: seed,
		SimSeconds: c.tpl.SimSeconds, ModelGFLOPS: c.tpl.ModelGFLOPS,
		Residual: c.tpl.Residual, Orthogonality: c.tpl.Orthogonality,
		ResultDigest: c.tpl.ResultDigest, Cached: cached,
	}
}

// generalResult builds the response for the Hessenberg paths.
func generalResult(j *Job, res *core.Result) *JobResult {
	out := buildResult(j.req, j.a, res)
	out.ID = j.ID
	return out
}

// buildResult assembles the wire result of one reduction (job ID left
// for the caller — batched items build results without a job of their
// own).
func buildResult(req *JobRequest, a *matrix.Matrix, res *core.Result) *JobResult {
	out := &JobResult{
		Algorithm: req.algorithm(),
		N:         res.N,
		NB:        res.NB,

		SimSeconds:  obs.Float(res.SimSeconds),
		ModelGFLOPS: obs.Float(res.ModelGFLOPS),

		Detections:   res.Detections,
		Recoveries:   res.Recoveries,
		Corrections:  len(res.CorrectedH),
		QCorrections: res.QCorrections,

		DeviceLosses:       res.DeviceLosses,
		FailStopRecoveries: res.FailStopRecoveries,

		Residual:      obs.Float(math.NaN()),
		Orthogonality: obs.Float(math.NaN()),
	}
	if !req.CostOnly {
		out.Residual = obs.Float(res.Residual(a))
		out.Orthogonality = obs.Float(res.Orthogonality())
		out.ResultDigest = res.Digest()
	}
	return out
}

// symResult builds the response for the tridiagonalization path.
func symResult(j *Job, res *core.SymResult) *JobResult {
	out := &JobResult{
		ID:        j.ID,
		Algorithm: j.req.algorithm(),
		Symmetric: true,
		N:         res.N,
		NB:        res.NB,

		SimSeconds:  obs.Float(res.SimSeconds),
		ModelGFLOPS: obs.Float(res.ModelGFLOPS),

		Detections:  res.Detections,
		Recoveries:  res.Recoveries,
		Corrections: res.Corrections,

		Residual:      obs.Float(math.NaN()),
		Orthogonality: obs.Float(math.NaN()),
	}
	if !j.req.CostOnly {
		q := res.Q()
		out.Residual = obs.Float(lapack.FactorizationResidual(j.a, q, tridiag(res.N, res.D, res.E)))
		out.Orthogonality = obs.Float(lapack.OrthogonalityResidual(q))
	}
	return out
}

// tridiag assembles the dense tridiagonal factor from its diagonals.
func tridiag(n int, d, e []float64) *matrix.Matrix {
	t := matrix.New(n, n)
	for i := 0; i < n; i++ {
		t.Set(i, i, d[i])
		if i+1 < n {
			t.Set(i+1, i, e[i])
			t.Set(i, i+1, e[i])
		}
	}
	return t
}
