package serve

import (
	"runtime/debug"
	"sync"
)

// BuildInfo identifies what produced a response: the Go toolchain and
// the VCS state baked into the binary by the linker. Served at
// GET /v1/version, stamped into every job status, and recorded in BENCH
// artifacts so a number can always be traced to the build that measured
// it.
type BuildInfo struct {
	GoVersion string `json:"go_version"`
	// Revision is the VCS commit (empty when the binary was built outside
	// a checkout, e.g. straight `go test` of an exported tree); Dirty is
	// true when the worktree had local modifications.
	Revision  string `json:"revision,omitempty"`
	BuildTime string `json:"build_time,omitempty"`
	Dirty     bool   `json:"dirty,omitempty"`
}

var (
	buildOnce sync.Once
	buildInfo BuildInfo
)

// Build reads the binary's embedded build information once and caches
// it (debug.ReadBuildInfo walks the whole module graph).
func Build() BuildInfo {
	buildOnce.Do(func() {
		bi, ok := debug.ReadBuildInfo()
		if !ok {
			return
		}
		buildInfo.GoVersion = bi.GoVersion
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				buildInfo.Revision = s.Value
			case "vcs.time":
				buildInfo.BuildTime = s.Value
			case "vcs.modified":
				buildInfo.Dirty = s.Value == "true"
			}
		}
	})
	return buildInfo
}
