// Package serve is the job-serving layer: a bounded scheduler plus an
// HTTP API (stdlib net/http only) that runs Hessenberg / tridiagonal
// reductions as asynchronous jobs. Capacity bounds how many reductions
// run concurrently, a FIFO queue of fixed depth absorbs bursts, and
// everything beyond that is rejected immediately with 429 — the
// backpressure contract a shared reduction service needs so one client
// cannot wedge the simulated device farm.
//
// Cancellation is first-class: DELETE aborts a queued or running job, and
// a running reduction observes its context within one blocked iteration
// (see core.Options.Ctx), so the capacity slot comes back promptly and no
// goroutine outlives its job. Shutdown stops intake, cancels the queue,
// drains in-flight reductions under a deadline, and cancels them if the
// deadline passes.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/gpu"
	"repro/internal/matrix"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Submission failure modes, surfaced by the HTTP layer as 429 / 503.
var (
	// ErrQueueFull means capacity and the wait queue are both exhausted.
	ErrQueueFull = errors.New("serve: job queue is full")
	// ErrDraining means the server is shutting down and rejects new work.
	ErrDraining = errors.New("serve: server is draining")
	// ErrDeviceRequest means the job asked for devices the server cannot
	// ever grant (no farm, or more than the farm holds) — a client error,
	// surfaced as 400.
	ErrDeviceRequest = errors.New("serve: invalid device request")
)

// Config sizes a Server. Zero values pick the defaults.
type Config struct {
	// Capacity is the number of reductions that may run concurrently
	// (default 2).
	Capacity int
	// QueueDepth is how many accepted jobs may wait beyond Capacity
	// before submissions get 429 (default 16).
	QueueDepth int
	// MaxN caps the matrix order a request may ask for (default 4096).
	MaxN int
	// MaxBodyBytes caps the request body, uploads included
	// (default 8 MiB).
	MaxBodyBytes int64
	// Devices sizes the simulated device farm jobs lease from. When > 0,
	// a job may request `devices: K` (K ≤ Devices): it leases K whole
	// devices before running — so two jobs asking for disjoint subsets
	// run concurrently, while a job asking for more than is currently
	// free waits on the lease, not on a capacity slot timeout. 0 (the
	// default) disables leasing; every device job builds its own
	// un-pooled device as before.
	Devices int
	// Registry receives the serve_* metrics and the per-run reduction
	// metrics of every job (a fresh registry if nil). Exposed at /metrics.
	Registry *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.Capacity <= 0 {
		c.Capacity = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.MaxN <= 0 {
		c.MaxN = 4096
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.Registry == nil {
		c.Registry = obs.NewRegistry()
	}
	return c
}

// Server owns the job table and the worker pool. Create with New, wire
// Handler into an http.Server, and call Shutdown to drain.
type Server struct {
	cfg Config
	reg *obs.Registry

	mu       sync.Mutex
	jobs     map[string]*Job
	nextID   int
	queue    chan *Job
	inflight int
	draining bool

	wg        sync.WaitGroup
	drainOnce sync.Once

	gQueue    *obs.Gauge
	gInflight *obs.Gauge
	hSeconds  *obs.Histogram

	// Device farm (nil when Config.Devices == 0): devCh holds the free
	// device indices; leaseMu serializes multi-device acquisition so two
	// partial leases can never deadlock against each other.
	devCh   chan int
	leaseMu chan struct{}
	gLeased *obs.Gauge

	// Test seams (nil outside tests): observe slot occupancy and mutate
	// the per-job reduction options (e.g. to install a blocking hook).
	testBeforeRun     func(j *Job)
	testAfterRun      func(j *Job)
	testMutateOptions func(j *Job, opt *core.Options)
}

// New builds a Server and starts its Capacity worker goroutines.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:       cfg,
		reg:       cfg.Registry,
		jobs:      make(map[string]*Job),
		queue:     make(chan *Job, cfg.QueueDepth),
		gQueue:    cfg.Registry.Gauge("serve_queue_depth"),
		gInflight: cfg.Registry.Gauge("serve_inflight"),
		hSeconds: cfg.Registry.Histogram("serve_job_seconds",
			[]float64{0.01, 0.05, 0.25, 1, 5, 30, 120, 600}),
	}
	if cfg.Devices > 0 {
		s.devCh = make(chan int, cfg.Devices)
		for i := 0; i < cfg.Devices; i++ {
			s.devCh <- i
		}
		s.leaseMu = make(chan struct{}, 1)
		s.gLeased = cfg.Registry.Gauge("serve_devices_leased")
	}
	s.wg.Add(cfg.Capacity)
	for i := 0; i < cfg.Capacity; i++ {
		go s.worker()
	}
	return s
}

// Registry exposes the server's metrics registry (for /metrics and tests).
func (s *Server) Registry() *obs.Registry { return s.reg }

// Submit enqueues a validated request with its materialized input. It
// never blocks: the job is accepted into the FIFO queue or rejected with
// ErrQueueFull / ErrDraining.
func (s *Server) Submit(req *JobRequest, a *matrix.Matrix) (*Job, error) {
	ctx, cancel := context.WithCancel(context.Background())
	j := &Job{
		req: req, a: a,
		ctx: ctx, cancel: cancel,
		state:   StateQueued,
		created: time.Now(),
		done:    make(chan struct{}),
	}
	if req.Devices > 0 {
		if s.cfg.Devices == 0 {
			cancel()
			return nil, fmt.Errorf("%w: this server has no device farm (devices=%d)", ErrDeviceRequest, req.Devices)
		}
		if req.Devices > s.cfg.Devices {
			cancel()
			return nil, fmt.Errorf("%w: devices=%d exceeds the farm size %d", ErrDeviceRequest, req.Devices, s.cfg.Devices)
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		cancel()
		s.jobCounter("rejected_draining").Inc()
		return nil, ErrDraining
	}
	select {
	case s.queue <- j:
	default:
		cancel()
		s.jobCounter("rejected_full").Inc()
		return nil, ErrQueueFull
	}
	s.nextID++
	j.ID = fmt.Sprintf("j%d", s.nextID)
	s.jobs[j.ID] = j
	s.gQueue.Add(1)
	s.jobCounter("accepted").Inc()
	return j, nil
}

// Job looks up a job by ID.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Cancel aborts the job: a queued job terminates immediately, a running
// one observes its context within one blocked iteration. Finished jobs
// are removed from the table instead. The returned state is the job's
// state after the call; ok is false for unknown IDs.
func (s *Server) Cancel(id string) (state string, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return "", false
	}
	switch j.state {
	case StateQueued:
		// The job stays in the channel; the worker that pops it sees the
		// terminal state and skips it.
		s.finishLocked(j, nil, context.Canceled)
		s.gQueue.Add(-1)
	case StateRunning:
		j.cancel()
	default:
		delete(s.jobs, id)
	}
	return j.state, true
}

// Shutdown stops intake, discards still-queued jobs (they report
// cancelled), and waits for in-flight reductions to finish. If ctx
// expires first the in-flight jobs are cancelled — they unwind within one
// blocked iteration — and Shutdown still waits for the workers to exit
// before returning ctx.Err(), so no job goroutine outlives the call.
func (s *Server) Shutdown(ctx context.Context) error {
	s.drainOnce.Do(func() {
		s.mu.Lock()
		s.draining = true
		for _, j := range s.jobs {
			if j.state == StateQueued {
				s.finishLocked(j, nil, context.Canceled)
				s.gQueue.Add(-1)
			}
		}
		close(s.queue)
		s.mu.Unlock()
	})
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		for _, j := range s.jobs {
			if j.state == StateRunning {
				j.cancel()
			}
		}
		s.mu.Unlock()
		<-done
		return ctx.Err()
	}
}

// Draining reports whether Shutdown has begun (readiness probe).
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.run(j)
	}
}

func (s *Server) run(j *Job) {
	s.mu.Lock()
	if j.state != StateQueued {
		// Cancelled while waiting; the slot goes straight to the next job.
		s.mu.Unlock()
		return
	}
	j.state = StateRunning
	j.started = time.Now()
	s.gQueue.Add(-1)
	s.inflight++
	s.gInflight.Add(1)
	s.mu.Unlock()

	if s.testBeforeRun != nil {
		s.testBeforeRun(j)
	}
	res, err := s.execute(j)

	s.mu.Lock()
	s.inflight--
	s.gInflight.Add(-1)
	s.finishLocked(j, res, err)
	s.mu.Unlock()
	s.hSeconds.Observe(time.Since(j.started).Seconds())

	if s.testAfterRun != nil {
		s.testAfterRun(j)
	}
}

// finishLocked moves a job to its terminal state; the caller holds s.mu.
func (s *Server) finishLocked(j *Job, res *JobResult, err error) {
	j.result, j.err = res, err
	j.finished = time.Now()
	switch {
	case err == nil:
		j.state = StateDone
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		j.state = StateCancelled
	default:
		j.state = StateFailed
	}
	j.cancel()
	close(j.done)
	s.jobCounter(j.state).Inc()
}

func (s *Server) jobCounter(status string) *obs.Counter {
	return s.reg.Counter("serve_jobs_total", obs.L("status", status))
}

// leaseDevices blocks until k farm devices are free and returns their
// indices. Acquisition is serialized (leaseMu), so a job collecting a
// multi-device lease never interleaves with another partial lease —
// releases only come from running jobs, which hold no lease lock, so the
// head acquirer always drains the channel without deadlock. Cancelling
// the context returns any partially collected indices to the farm.
func (s *Server) leaseDevices(ctx context.Context, k int) ([]int, error) {
	select {
	case s.leaseMu <- struct{}{}:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	defer func() { <-s.leaseMu }()
	idx := make([]int, 0, k)
	for len(idx) < k {
		select {
		case i := <-s.devCh:
			idx = append(idx, i)
		case <-ctx.Done():
			s.releaseDevices(idx)
			return nil, ctx.Err()
		}
	}
	s.gLeased.Add(float64(k))
	return idx, nil
}

func (s *Server) releaseDevices(idx []int) {
	for _, i := range idx {
		s.devCh <- i
	}
}

// execute runs the reduction for one job on the worker goroutine.
func (s *Server) execute(j *Job) (*JobResult, error) {
	req := j.req
	if req.Symmetric {
		res, err := core.ReduceSym(j.a, core.SymOptions{
			Ctx: j.ctx, NB: req.NB,
			FaultTolerant: req.algorithm() == AlgFT,
			CostOnly:      req.CostOnly,
		})
		if err != nil {
			return nil, err
		}
		return symResult(j, res), nil
	}

	opt := core.Options{
		Ctx: j.ctx, NB: req.NB,
		CostOnly:           req.CostOnly,
		ThresholdFactor:    req.ThresholdFactor,
		FinalHCheck:        req.FinalHCheck,
		DisableQProtection: req.DisableQProtection,
		DisableOverlap:     req.DisableOverlap,
		Obs:                s.reg,
	}
	switch req.algorithm() {
	case AlgBaseline:
		opt.Algorithm = core.Baseline
	case AlgCPU:
		opt.Algorithm = core.CPUOnly
	default:
		opt.Algorithm = core.FaultTolerant
	}
	if len(req.Faults) > 0 {
		plans := make([]fault.Plan, len(req.Faults))
		for i, f := range req.Faults {
			plans[i] = f.plan()
		}
		opt.Hook = fault.NewSchedule(plans...)
	}
	if opt.Algorithm != core.CPUOnly {
		mode := gpu.Real
		if req.CostOnly {
			mode = gpu.CostOnly
		}
		if req.Devices > 0 {
			// Lease whole devices from the farm; the job blocks here (not
			// in the queue) until its subset is free, and returns it as
			// soon as the reduction finishes or is cancelled.
			idx, err := s.leaseDevices(j.ctx, req.Devices)
			if err != nil {
				return nil, err
			}
			defer func() {
				s.gLeased.Add(-float64(len(idx)))
				s.releaseDevices(idx)
			}()
			devs := make([]*gpu.Device, len(idx))
			for i, ix := range idx {
				devs[i] = gpu.NewIndexed(sim.K40c(), mode, ix)
			}
			opt.Devices = devs
			j.setDevice(devs[0])
		} else {
			// A per-job device: its Phase() feeds the status endpoint while
			// the reduction runs.
			dev := gpu.New(sim.K40c(), mode)
			opt.Device = dev
			j.setDevice(dev)
		}
	}
	if s.testMutateOptions != nil {
		s.testMutateOptions(j, &opt)
	}
	res, err := core.Reduce(j.a, opt)
	if err != nil {
		return nil, err
	}
	return generalResult(j, res), nil
}
