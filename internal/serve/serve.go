// Package serve is the job-serving layer: a bounded scheduler plus an
// HTTP API (stdlib net/http only) that runs Hessenberg / tridiagonal
// reductions as asynchronous jobs. Capacity bounds how many reductions
// run concurrently, a FIFO queue of fixed depth absorbs bursts, and
// everything beyond that is rejected immediately with 429 — the
// backpressure contract a shared reduction service needs so one client
// cannot wedge the simulated device farm.
//
// Cancellation is first-class: DELETE aborts a queued or running job, and
// a running reduction observes its context within one blocked iteration
// (see core.Options.Ctx), so the capacity slot comes back promptly and no
// goroutine outlives its job. Shutdown stops intake, cancels the queue,
// drains in-flight reductions under a deadline, and cancels them if the
// deadline passes.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/batch"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/ft"
	"repro/internal/ftsym"
	"repro/internal/gpu"
	"repro/internal/matrix"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Submission failure modes, surfaced by the HTTP layer as 429 / 503.
var (
	// ErrQueueFull means capacity and the wait queue are both exhausted.
	ErrQueueFull = errors.New("serve: job queue is full")
	// ErrDraining means the server is shutting down and rejects new work.
	ErrDraining = errors.New("serve: server is draining")
	// ErrDeviceRequest means the job asked for devices the server cannot
	// ever grant (no farm, or more than the farm holds) — a client error,
	// surfaced as 400.
	ErrDeviceRequest = errors.New("serve: invalid device request")
	// ErrBatchRequest means the job carried a batch on a server whose
	// throughput engine is disabled (Config.DeviceLanes == 0) — a client
	// error, surfaced as 400.
	ErrBatchRequest = errors.New("serve: invalid batch request")
)

// Observation levels (Config.Observe). Both keep the SLO metrics and
// the flight recorder's job lifecycle events; "full" adds the per-job
// artifacts with their per-request cost.
const (
	// ObserveFull (the default) gives every job a trace ID, a wall-clock
	// tracer, a stamped FT journal teed into the flight recorder, and
	// job=<id> labels on the metric series its reduction emits.
	ObserveFull = "full"
	// ObserveSLO keeps only the request-anonymous telemetry: SLO
	// histograms, aggregate counters, lifecycle flight events. Jobs have
	// no trace, no journal, and emit unlabeled reduction series — the
	// comparison arm of the instrumentation-overhead benchmark.
	ObserveSLO = "slo"
)

// Config sizes a Server. Zero values pick the defaults.
type Config struct {
	// Capacity is the number of reductions that may run concurrently
	// (default 2).
	Capacity int
	// QueueDepth is how many accepted jobs may wait beyond Capacity
	// before submissions get 429 (default 16).
	QueueDepth int
	// MaxN caps the matrix order a request may ask for (default 4096).
	MaxN int
	// MaxBodyBytes caps the request body, uploads included
	// (default 8 MiB).
	MaxBodyBytes int64
	// Devices sizes the simulated device farm jobs lease from. When > 0,
	// a job may request `devices: K` (K ≤ Devices): it leases K whole
	// devices before running — so two jobs asking for disjoint subsets
	// run concurrently, while a job asking for more than is currently
	// free waits on the lease, not on a capacity slot timeout. 0 (the
	// default) disables leasing; every device job builds its own
	// un-pooled device as before.
	Devices int
	// Registry receives the serve_* metrics and the per-run reduction
	// metrics of every job (a fresh registry if nil). Exposed at /metrics.
	Registry *obs.Registry
	// Observe selects the observation level: ObserveFull (default) or
	// ObserveSLO.
	Observe string
	// FlightRecorderSize is the event capacity of the FT flight recorder
	// dumped at /debug/events (default 256).
	FlightRecorderSize int
	// EnablePprof mounts net/http/pprof under /debug/pprof/ on the
	// handler. Off by default: the profiler exposes internals and should
	// only face operators.
	EnablePprof bool
	// DeviceLanes, when > 0, enables the batched throughput engine
	// (DESIGN.md §15): each farm device exposes this many fractional
	// lanes, and requests may carry a `batch` of small reductions that
	// are packed by (N, nb) onto leased lanes with a virtual clock over
	// the shared compute/DMA engines. The lane farm spans max(1, Devices)
	// physical devices. 0 disables batched jobs (400 at submit).
	DeviceLanes int
	// CacheEntries, when > 0, bounds the digest-keyed result cache:
	// deterministic fault-free runs are cached under their canonical
	// input digest + result-affecting options, with single-flight
	// coalescing of concurrent identical submissions. 0 disables caching.
	CacheEntries int
	// AgingAfter is the fair-queue starvation bound: a queued job whose
	// class has been starved longer than this is served out of weighted
	// order, at most once per interval (default 2s).
	AgingAfter time.Duration
}

func (c Config) withDefaults() Config {
	if c.Capacity <= 0 {
		c.Capacity = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.MaxN <= 0 {
		c.MaxN = 4096
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.Registry == nil {
		c.Registry = obs.NewRegistry()
	}
	if c.Observe == "" {
		c.Observe = ObserveFull
	}
	if c.FlightRecorderSize <= 0 {
		c.FlightRecorderSize = 256
	}
	if c.AgingAfter <= 0 {
		c.AgingAfter = 2 * time.Second
	}
	return c
}

// Server owns the job table and the worker pool. Create with New, wire
// Handler into an http.Server, and call Shutdown to drain.
type Server struct {
	cfg Config
	reg *obs.Registry

	mu       sync.Mutex
	jobs     map[string]*Job
	nextID   int
	queue    *batch.Queue[*Job]
	inflight int
	draining bool

	// Throughput engine (nil when Config.DeviceLanes == 0) and result
	// cache (nil when Config.CacheEntries == 0) — independent features:
	// single jobs use the cache without the engine.
	engine *batch.Engine
	cache  *batch.Cache

	cCacheHit      *obs.Counter
	cCacheMiss     *obs.Counter
	cCacheCoalesce *obs.Counter

	wg        sync.WaitGroup
	drainOnce sync.Once

	gQueue    *obs.Gauge
	gInflight *obs.Gauge
	hSeconds  *obs.Histogram

	// SLO telemetry: end-to-end job duration by outcome, time spent in
	// the FIFO queue, time spent waiting on a device lease.
	hQueueWait *obs.Histogram
	hLeaseWait *obs.Histogram

	// recorder is the bounded FT flight recorder: job lifecycle
	// transitions plus (in ObserveFull) every journaled FT event, dumped
	// at /debug/events.
	recorder *obs.FlightRecorder

	// Device farm (nil when Config.Devices == 0): devCh holds the free
	// device indices; leaseMu serializes multi-device acquisition so two
	// partial leases can never deadlock against each other.
	devCh   chan int
	leaseMu chan struct{}
	gLeased *obs.Gauge
	gFree   *obs.Gauge

	// Test seams (nil outside tests): observe slot occupancy and mutate
	// the per-job reduction options (e.g. to install a blocking hook).
	testBeforeRun     func(j *Job)
	testAfterRun      func(j *Job)
	testMutateOptions func(j *Job, opt *core.Options)
}

// New builds a Server and starts its Capacity worker goroutines.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:  cfg,
		reg:  cfg.Registry,
		jobs: make(map[string]*Job),
		// The fair queue replaces the FIFO channel: interactive traffic
		// weighs 4× batch traffic, with the aging override bounding batch
		// starvation (see batch.Queue).
		queue: batch.NewQueue[*Job](cfg.QueueDepth,
			map[string]float64{batch.ClassInteractive: 4, batch.ClassBatch: 1},
			cfg.AgingAfter),
		gQueue:    cfg.Registry.Gauge("serve_queue_depth"),
		gInflight: cfg.Registry.Gauge("serve_inflight"),
		hSeconds: cfg.Registry.Histogram("serve_job_seconds",
			[]float64{0.01, 0.05, 0.25, 1, 5, 30, 120, 600}),
		hQueueWait: cfg.Registry.Histogram("serve_queue_wait_seconds",
			[]float64{0.001, 0.01, 0.05, 0.25, 1, 5, 30, 120}),
		hLeaseWait: cfg.Registry.Histogram("serve_lease_wait_seconds",
			[]float64{0.001, 0.01, 0.05, 0.25, 1, 5, 30, 120}),
		recorder: obs.NewFlightRecorder(cfg.FlightRecorderSize),
	}
	if cfg.Devices > 0 {
		s.devCh = make(chan int, cfg.Devices)
		for i := 0; i < cfg.Devices; i++ {
			s.devCh <- i
		}
		s.leaseMu = make(chan struct{}, 1)
		s.gLeased = cfg.Registry.Gauge("serve_devices_leased")
		s.gFree = cfg.Registry.Gauge("serve_devices_free")
		s.gFree.Set(float64(cfg.Devices))
	}
	if cfg.CacheEntries > 0 {
		s.cache = batch.NewCache(cfg.CacheEntries)
		s.cCacheHit = cfg.Registry.Counter("serve_cache_hits_total")
		s.cCacheMiss = cfg.Registry.Counter("serve_cache_misses_total")
		s.cCacheCoalesce = cfg.Registry.Counter("serve_cache_coalesced_total")
	}
	if cfg.DeviceLanes > 0 {
		farmDevs := cfg.Devices
		if farmDevs < 1 {
			farmDevs = 1
		}
		s.engine = batch.NewEngine(batch.NewFarm(farmDevs, cfg.DeviceLanes), s.cache, cfg.Registry)
	}
	s.wg.Add(cfg.Capacity)
	for i := 0; i < cfg.Capacity; i++ {
		go s.worker()
	}
	return s
}

// Registry exposes the server's metrics registry (for /metrics and tests).
func (s *Server) Registry() *obs.Registry { return s.reg }

// Submit enqueues a validated request with its materialized input. It
// never blocks: the job is accepted into the FIFO queue or rejected with
// ErrQueueFull / ErrDraining.
func (s *Server) Submit(req *JobRequest, a *matrix.Matrix) (*Job, error) {
	ctx, cancel := context.WithCancel(context.Background())
	j := &Job{
		req: req, a: a,
		ctx: ctx, cancel: cancel,
		state:   StateQueued,
		created: time.Now(),
		done:    make(chan struct{}),
	}
	if req.Devices > 0 {
		if s.cfg.Devices == 0 {
			cancel()
			return nil, fmt.Errorf("%w: this server has no device farm (devices=%d)", ErrDeviceRequest, req.Devices)
		}
		if req.Devices > s.cfg.Devices {
			cancel()
			return nil, fmt.Errorf("%w: devices=%d exceeds the farm size %d", ErrDeviceRequest, req.Devices, s.cfg.Devices)
		}
	}
	if len(req.Batch) > 0 && s.engine == nil {
		cancel()
		return nil, fmt.Errorf("%w: this server has no throughput engine (device_lanes=0)", ErrBatchRequest)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		cancel()
		s.jobCounter("rejected_draining").Inc()
		return nil, ErrDraining
	}
	// Fairness is over work, not job count: a batched job's cost is its
	// item count.
	switch err := s.queue.Push(req.class(), float64(max(1, len(req.Batch))), j); {
	case errors.Is(err, batch.ErrQueueClosed):
		cancel()
		s.jobCounter("rejected_draining").Inc()
		return nil, ErrDraining
	case err != nil:
		cancel()
		s.jobCounter("rejected_full").Inc()
		return nil, ErrQueueFull
	}
	s.nextID++
	j.ID = fmt.Sprintf("j%d", s.nextID)
	s.jobs[j.ID] = j
	if s.cfg.Observe == ObserveFull {
		// Request-scoped observability: a trace with the lifecycle root
		// span already open, and a journal that stamps every FT event with
		// the job ID and tees it into the flight recorder.
		j.traceID = obs.TraceID()
		j.tracer = obs.NewTracer(j.traceID)
		j.spanRoot = j.tracer.Start("job "+j.ID, 0)
		j.spanQueued = j.tracer.Start("queued", j.spanRoot)
		j.journal = obs.NewJournal()
		j.journal.Stamp(j.ID)
		j.journal.Tee(s.recorder)
	}
	s.recorder.Record(obs.FlightEvent{Kind: "job:queued", Job: j.ID})
	s.gQueue.Add(1)
	s.jobCounter("accepted").Inc()
	return j, nil
}

// Job looks up a job by ID.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Cancel aborts the job: a queued job terminates immediately, a running
// one observes its context within one blocked iteration. Finished jobs
// are removed from the table instead. The returned state is the job's
// state after the call; ok is false for unknown IDs.
func (s *Server) Cancel(id string) (state string, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return "", false
	}
	switch j.state {
	case StateQueued:
		// The job stays in the channel; the worker that pops it sees the
		// terminal state and skips it.
		s.finishLocked(j, nil, context.Canceled)
		s.gQueue.Add(-1)
	case StateRunning:
		j.cancel()
	default:
		// Forgetting a finished job also retires its job-labeled metric
		// series, so registry cardinality tracks the live job table.
		delete(s.jobs, id)
		s.pruneJob(id)
	}
	return j.state, true
}

// Shutdown stops intake, discards still-queued jobs (they report
// cancelled), and waits for in-flight reductions to finish. If ctx
// expires first the in-flight jobs are cancelled — they unwind within one
// blocked iteration — and Shutdown still waits for the workers to exit
// before returning ctx.Err(), so no job goroutine outlives the call.
func (s *Server) Shutdown(ctx context.Context) error {
	s.drainOnce.Do(func() {
		s.mu.Lock()
		s.draining = true
		for _, j := range s.jobs {
			if j.state == StateQueued {
				s.finishLocked(j, nil, context.Canceled)
				s.gQueue.Add(-1)
			}
		}
		s.queue.Close()
		s.mu.Unlock()
	})
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		for _, j := range s.jobs {
			if j.state == StateRunning {
				j.cancel()
			}
		}
		s.mu.Unlock()
		<-done
		return ctx.Err()
	}
}

// Draining reports whether Shutdown has begun (readiness probe).
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

func (s *Server) worker() {
	defer s.wg.Done()
	for {
		j, ok := s.queue.Pop()
		if !ok {
			return
		}
		s.run(j)
	}
}

func (s *Server) run(j *Job) {
	s.mu.Lock()
	if j.state != StateQueued {
		// Cancelled while waiting; the slot goes straight to the next job.
		s.mu.Unlock()
		return
	}
	j.state = StateRunning
	j.started = time.Now()
	j.queueWait = j.started.Sub(j.created)
	s.gQueue.Add(-1)
	s.inflight++
	s.gInflight.Add(1)
	s.mu.Unlock()
	s.hQueueWait.Observe(j.queueWait.Seconds())
	j.tracer.End(j.spanQueued)
	j.spanRun = j.tracer.Start("run", j.spanRoot)
	s.recorder.Record(obs.FlightEvent{Kind: "job:running", Job: j.ID})

	if s.testBeforeRun != nil {
		s.testBeforeRun(j)
	}
	res, err := s.execute(j)

	j.tracer.End(j.spanRun)
	s.mu.Lock()
	s.inflight--
	s.gInflight.Add(-1)
	s.finishLocked(j, res, err)
	s.mu.Unlock()
	s.hSeconds.Observe(time.Since(j.started).Seconds())

	if s.testAfterRun != nil {
		s.testAfterRun(j)
	}
}

// finishLocked moves a job to its terminal state; the caller holds s.mu.
func (s *Server) finishLocked(j *Job, res *JobResult, err error) {
	j.result, j.err = res, err
	j.finished = time.Now()
	switch {
	case err == nil:
		j.state = StateDone
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		j.state = StateCancelled
	default:
		j.state = StateFailed
	}
	j.cancel()
	close(j.done)
	j.tracer.End(j.spanRoot)
	// SLO outcome label: a job that lost a device and finished anyway is
	// its own class — "done" would hide the reconstruction cost in the
	// healthy latency distribution, "failed" would be a lie.
	outcome := j.state
	if err == nil && res != nil && res.FailStopRecoveries > 0 {
		outcome = "recovered_failstop"
	}
	s.jobCounter(outcome).Inc()
	if isUncorrectable(err) {
		s.reg.Counter("serve_jobs_uncorrectable_total").Inc()
	}
	fe := obs.FlightEvent{Kind: "job:" + j.state, Job: j.ID}
	if err != nil {
		fe.Detail = err.Error()
	} else if outcome == "recovered_failstop" {
		fe.Detail = fmt.Sprintf("recovered from %d device loss(es)", res.DeviceLosses)
	}
	s.recorder.Record(fe)
	// The SLO duration histogram covers executed jobs only; a job
	// cancelled while still queued never ran and has no duration.
	if !j.started.IsZero() {
		s.reg.Histogram("serve_job_duration_seconds",
			[]float64{0.01, 0.05, 0.25, 1, 5, 30, 120, 600},
			obs.L("outcome", outcome)).Observe(j.finished.Sub(j.started).Seconds())
	}
}

func (s *Server) jobCounter(status string) *obs.Counter {
	return s.reg.Counter("serve_jobs_total", obs.L("status", status))
}

// leaseDevices blocks until k farm devices are free and returns their
// indices. Acquisition is serialized (leaseMu), so a job collecting a
// multi-device lease never interleaves with another partial lease —
// releases only come from running jobs, which hold no lease lock, so the
// head acquirer always drains the channel without deadlock. Cancelling
// the context returns any partially collected indices to the farm.
func (s *Server) leaseDevices(ctx context.Context, k int) ([]int, error) {
	select {
	case s.leaseMu <- struct{}{}:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	defer func() { <-s.leaseMu }()
	idx := make([]int, 0, k)
	for len(idx) < k {
		select {
		case i := <-s.devCh:
			idx = append(idx, i)
		case <-ctx.Done():
			s.releaseDevices(idx)
			return nil, ctx.Err()
		}
	}
	s.gLeased.Add(float64(k))
	s.gFree.Add(-float64(k))
	return idx, nil
}

func (s *Server) releaseDevices(idx []int) {
	for _, i := range idx {
		s.devCh <- i
	}
}

// isUncorrectable reports whether the job died because the FT machinery
// could not repair a detected error (either reduction family).
func isUncorrectable(err error) bool {
	return errors.Is(err, ft.ErrUncorrectable) || errors.Is(err, ftsym.ErrUncorrectable)
}

// pruneJob retires every job-labeled metric series a forgotten job left
// in the shared registry, keeping series cardinality bounded by the live
// job table instead of the server's lifetime.
func (s *Server) pruneJob(id string) {
	s.reg.Prune(func(_ string, labels map[string]string) bool {
		return labels["job"] == id
	})
}

// traceContext builds the request-scoped observability handle handed to
// the reduction stack (nil in ObserveSLO mode: no job labels, no spans).
func (j *Job) traceContext() *obs.TraceContext {
	if j.tracer == nil {
		return nil
	}
	return &obs.TraceContext{Job: j.ID, Tracer: j.tracer, Parent: j.spanRun}
}

// cacheKey builds the result-cache key for a request, reporting whether
// the run is cacheable at all. Only deterministic, fault-free runs
// qualify: cost-only runs have no numerics to cache, and injection /
// fail-stop jobs are excluded outright so a faulted or killed run can
// never be served from the cache. The key carries exactly the options
// that change the result's bits (input digest, nb, algorithm, schedule
// family) — device count, lookahead, and substrate are invariant by the
// determinism contracts and deliberately absent.
func (s *Server) cacheKey(req *JobRequest, a *matrix.Matrix, nb int) (batch.Key, bool) {
	if s.cache == nil || req.Symmetric || req.CostOnly || req.FailStop || len(req.Faults) > 0 {
		return batch.Key{}, false
	}
	if nb == 0 {
		nb = 32 // core's default block size
	}
	return batch.Key{
		Digest: core.MatrixDigest(a),
		NB:     nb,
		Alg:    req.algorithm(),
		// The multi-device pool schedule is bit-identical at every K but
		// not to the legacy single-device schedule, so the two families
		// cache separately.
		Pool: req.Devices > 0,
	}, true
}

// cacheable reports whether a finished run may enter the cache: nothing
// was detected, corrected, or lost. Requests that inject faults never
// get here (cacheKey excludes them); this guards the residue — a run
// that saw any FT event is never cached, however it finished.
func cacheable(res *core.Result) bool {
	return res.Detections == 0 && res.Recoveries == 0 && len(res.CorrectedH) == 0 &&
		res.QCorrections == 0 && res.DeviceLosses == 0 && res.SubstrateDetections == 0
}

// execute runs the reduction for one job on the worker goroutine.
func (s *Server) execute(j *Job) (*JobResult, error) {
	req := j.req
	if len(req.Batch) > 0 {
		return s.executeBatch(j)
	}
	trace := j.traceContext()
	mode := gpu.Real
	if req.CostOnly {
		mode = gpu.CostOnly
	}
	if req.Symmetric {
		symOpt := core.SymOptions{
			Ctx: j.ctx, NB: req.NB,
			FaultTolerant: req.algorithm() == AlgFT,
			CostOnly:      req.CostOnly,
			Obs:           s.reg,
			Journal:       j.journal,
			Trace:         trace,
		}
		if req.Devices > 0 {
			// The symmetric reduction has no multi-device path; build the
			// requested pool without leasing and let the core layer return
			// its typed unsupported error (mapped to a structured 400 at
			// the result endpoint). Leasing first would hold real devices
			// for a request that can never use them.
			devs := make([]*gpu.Device, req.Devices)
			for i := range devs {
				devs[i] = gpu.NewIndexed(sim.K40c(), mode, i)
			}
			symOpt.Devices = devs
		}
		res, err := core.ReduceSym(j.a, symOpt)
		if err != nil {
			return nil, err
		}
		return symResult(j, res), nil
	}

	// Result cache with single-flight coalescing: a hit skips the whole
	// reduction; a concurrent identical submission waits on the leader
	// instead of recomputing. A follower whose leader aborted (failed,
	// cancelled, uncacheable run) computes locally without taking a new
	// flight, so a chain of cancellations can never convoy.
	var flight *batch.Flight
	if key, ok := s.cacheKey(req, j.a, req.NB); ok {
		val, fl, st := s.cache.Acquire(key)
		switch st {
		case batch.Hit:
			s.cCacheHit.Inc()
			return val.(*cachedRun).jobResult(j), nil
		case batch.Follow:
			s.cCacheCoalesce.Inc()
			v, ok, err := fl.Wait(j.ctx)
			if err != nil {
				return nil, err
			}
			if ok {
				s.cCacheHit.Inc()
				return v.(*cachedRun).jobResult(j), nil
			}
		case batch.Lead:
			s.cCacheMiss.Inc()
			flight = fl
			defer func() {
				if flight != nil {
					s.cache.Abort(flight)
				}
			}()
		}
	}

	opt := core.Options{
		Ctx: j.ctx, NB: req.NB,
		CostOnly:           req.CostOnly,
		ThresholdFactor:    req.ThresholdFactor,
		FinalHCheck:        req.FinalHCheck,
		DisableQProtection: req.DisableQProtection,
		DisableOverlap:     req.DisableOverlap,
		DisableLookahead:   req.Lookahead != nil && !*req.Lookahead,
		Substrate:          req.Substrate,
		Obs:                s.reg,
		Journal:            j.journal,
		Trace:              trace,
	}
	switch req.algorithm() {
	case AlgBaseline:
		opt.Algorithm = core.Baseline
	case AlgCPU:
		opt.Algorithm = core.CPUOnly
	default:
		opt.Algorithm = core.FaultTolerant
	}
	if len(req.Faults) > 0 {
		plans := make([]fault.Plan, len(req.Faults))
		for i, f := range req.Faults {
			plans[i] = f.plan()
		}
		opt.Hook = fault.NewSchedule(plans...)
	}
	if opt.Algorithm != core.CPUOnly {
		if req.Devices > 0 {
			// Lease whole devices from the farm; the job blocks here (not
			// in the queue) until its subset is free, and returns it as
			// soon as the reduction finishes or is cancelled.
			leaseStart := time.Now()
			leaseSpan := trace.Span("lease", j.spanRun)
			idx, err := s.leaseDevices(j.ctx, req.Devices)
			trace.EndSpan(leaseSpan)
			lw := time.Since(leaseStart)
			s.mu.Lock()
			j.leaseWait = lw
			s.mu.Unlock()
			s.hLeaseWait.Observe(lw.Seconds())
			if err != nil {
				return nil, err
			}
			s.recorder.Record(obs.FlightEvent{Kind: "job:leased", Job: j.ID,
				Detail: fmt.Sprintf("%d devices", len(idx))})
			defer func() {
				s.gLeased.Add(-float64(len(idx)))
				s.gFree.Add(float64(len(idx)))
				s.releaseDevices(idx)
			}()
			devs := make([]*gpu.Device, len(idx))
			for i, ix := range idx {
				devs[i] = gpu.NewIndexed(sim.K40c(), mode, ix)
				if j.tracer != nil {
					devs[i].EnableTrace()
				}
			}
			opt.Devices = devs
			j.setDevice(devs[0])
			defer j.captureSimSpans(devs)
			if req.FailStop {
				opt.FailStop = true
				// The parity device and any post-loss replacement re-lease
				// from the farm when a device is free right now, and fall
				// back to a fabricated off-farm device otherwise — recovery
				// must never block on the lease while the job's peers hold
				// their own devices (classic lease deadlock).
				var spares []int
				offFarm := s.cfg.Devices
				opt.SpareDevice = func() *gpu.Device {
					var ix int
					select {
					case i := <-s.devCh:
						s.gLeased.Add(1)
						s.gFree.Add(-1)
						spares = append(spares, i)
						ix = i
						s.recorder.Record(obs.FlightEvent{Kind: "job:spare_leased",
							Job: j.ID, Detail: fmt.Sprintf("device %d", i)})
					default:
						ix = offFarm
						offFarm++
					}
					dev := gpu.NewIndexed(sim.K40c(), mode, ix)
					if j.tracer != nil {
						dev.EnableTrace()
					}
					return dev
				}
				defer func() {
					if len(spares) > 0 {
						s.gLeased.Add(-float64(len(spares)))
						s.gFree.Add(float64(len(spares)))
						s.releaseDevices(spares)
					}
				}()
			}
		} else {
			// A per-job device: its Phase() feeds the status endpoint while
			// the reduction runs.
			dev := gpu.New(sim.K40c(), mode)
			if j.tracer != nil {
				dev.EnableTrace()
			}
			opt.Device = dev
			j.setDevice(dev)
			defer j.captureSimSpans([]*gpu.Device{dev})
		}
	}
	if s.testMutateOptions != nil {
		s.testMutateOptions(j, &opt)
	}
	res, err := core.Reduce(j.a, opt)
	if err != nil {
		return nil, err
	}
	out := generalResult(j, res)
	if flight != nil && cacheable(res) {
		s.cache.Commit(flight, newCachedRun(out))
		flight = nil // the deferred Abort must not fire after a Commit
	}
	return out, nil
}
