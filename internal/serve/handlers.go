package serve

import (
	"encoding/json"
	"errors"
	"net/http"
)

// errorBody is the JSON shape of every non-2xx response.
type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // the status line is already out; nothing to do on error
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, errorBody{Error: msg})
}

// Handler returns the service's HTTP API:
//
//	POST   /v1/jobs             submit a reduction job (202, or 429/503)
//	GET    /v1/jobs/{id}        job status + live phase
//	GET    /v1/jobs/{id}/result finished job's result (409 until done)
//	DELETE /v1/jobs/{id}        cancel (or forget a finished job)
//	GET    /metrics             Prometheus exposition (obs + serve_*)
//	GET    /healthz             liveness
//	GET    /readyz              readiness (503 while draining)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if s.Draining() {
			writeError(w, http.StatusServiceUnavailable, "draining")
			return
		}
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte("ready\n"))
	})
	return mux
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	_ = s.reg.WritePrometheus(w)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	req, err := DecodeJobRequest(body, s.cfg.MaxN)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	a, err := req.Matrix(s.cfg.MaxN)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	j, err := s.Submit(req, a)
	switch {
	case errors.Is(err, ErrDeviceRequest):
		writeError(w, http.StatusBadRequest, err.Error())
		return
	case errors.Is(err, ErrDraining):
		writeError(w, http.StatusServiceUnavailable, err.Error())
		return
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, err.Error())
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	s.mu.Lock()
	st := j.statusLocked()
	s.mu.Unlock()
	writeJSON(w, http.StatusAccepted, st)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job")
		return
	}
	s.mu.Lock()
	st := j.statusLocked()
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job")
		return
	}
	s.mu.Lock()
	state, res := j.state, j.result
	var jerr error = j.err
	s.mu.Unlock()
	switch state {
	case StateQueued, StateRunning:
		writeError(w, http.StatusConflict, "job is "+state+"; result not ready")
	case StateCancelled:
		writeError(w, http.StatusGone, "job was cancelled")
	case StateFailed:
		writeError(w, http.StatusInternalServerError, jerr.Error())
	default:
		writeJSON(w, http.StatusOK, res)
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	state, ok := s.Cancel(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job")
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]string{"state": state})
}
