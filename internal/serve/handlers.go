package serve

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"net/http"
	"net/http/pprof"
	"strconv"

	"repro/internal/ft"
	"repro/internal/ftsym"
)

// errorBody is the JSON shape of every non-2xx response. Code is the
// machine-readable failure class (see classify); clients branch on it
// instead of parsing Error.
type errorBody struct {
	Error string `json:"error"`
	Code  string `json:"code,omitempty"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // the status line is already out; nothing to do on error
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, errorBody{Error: msg})
}

// errClass maps one failure family to its HTTP status and wire code.
type errClass struct {
	status int
	code   string
}

// classify sorts a terminal job error into its failure class. Request-
// shape errors the reduction stack rejects deterministically (the
// symmetric path on a device pool) are client errors — resubmitting the
// same request can never succeed — so they surface as 400, not 500.
func classify(err error) errClass {
	switch {
	case err == nil:
		return errClass{http.StatusOK, ""}
	case errors.Is(err, ftsym.ErrMultiDeviceUnsupported):
		return errClass{http.StatusBadRequest, "unsupported"}
	case errors.Is(err, ft.ErrUncorrectable) || errors.Is(err, ftsym.ErrUncorrectable):
		return errClass{http.StatusInternalServerError, "uncorrectable"}
	case errors.Is(err, ft.ErrDetectionStorm) || errors.Is(err, ftsym.ErrRetriesExhausted):
		return errClass{http.StatusInternalServerError, "detection_storm"}
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		return errClass{http.StatusGone, "cancelled"}
	}
	return errClass{http.StatusInternalServerError, "internal"}
}

// Handler returns the service's HTTP API:
//
//	POST   /v1/jobs             submit a reduction job (202, or 429/503)
//	GET    /v1/jobs/{id}        job status + live phase + FT reliability
//	GET    /v1/jobs/{id}/result finished job's result (409 until done)
//	GET    /v1/jobs/{id}/trace  per-job Chrome trace (409 until terminal)
//	DELETE /v1/jobs/{id}        cancel (or forget a finished job)
//	GET    /v1/version          build info (go version, VCS revision)
//	GET    /metrics             Prometheus exposition (obs + serve_*)
//	GET    /debug/events        FT flight-recorder dump (last N events)
//	GET    /debug/pprof/        net/http/pprof (Config.EnablePprof only)
//	GET    /healthz             liveness
//	GET    /readyz              readiness (503 while draining)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleTrace)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/version", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, Build())
	})
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /debug/events", s.handleEvents)
	if s.cfg.EnablePprof {
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if s.Draining() {
			writeError(w, http.StatusServiceUnavailable, "draining")
			return
		}
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte("ready\n"))
	})
	return mux
}

// retryAfter estimates how long a 429'd client should back off: the
// work ahead of it (queue depth × the recent median job duration) spread
// over the worker pool, clamped to [1, 30] seconds. Before any job has
// finished there is no p50 and the floor applies.
func (s *Server) retryAfter() int {
	return retryAfterSeconds(s.queue.Len(), s.hSeconds.Snap().Quantile(0.5), s.cfg.Capacity)
}

// retryAfterSeconds is the pure estimator behind the Retry-After header.
func retryAfterSeconds(depth int, p50 float64, capacity int) int {
	if capacity < 1 {
		capacity = 1
	}
	if math.IsNaN(p50) || p50 < 0 {
		p50 = 0
	}
	secs := int(math.Ceil(float64(depth) * p50 / float64(capacity)))
	if secs < 1 {
		return 1
	}
	if secs > 30 {
		return 30
	}
	return secs
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	_ = s.reg.WritePrometheus(w)
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = s.recorder.WriteJSON(w)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	req, err := DecodeJobRequest(body, s.cfg.MaxN)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	a, err := req.Matrix(s.cfg.MaxN)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	j, err := s.Submit(req, a)
	switch {
	case errors.Is(err, ErrDeviceRequest):
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error(), Code: "bad_device_request"})
		return
	case errors.Is(err, ErrBatchRequest):
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error(), Code: "bad_batch_request"})
		return
	case errors.Is(err, ErrDraining):
		writeError(w, http.StatusServiceUnavailable, err.Error())
		return
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfter()))
		writeError(w, http.StatusTooManyRequests, err.Error())
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	s.mu.Lock()
	st := j.statusLocked()
	s.mu.Unlock()
	writeJSON(w, http.StatusAccepted, st)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job")
		return
	}
	s.mu.Lock()
	st := j.statusLocked()
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job")
		return
	}
	s.mu.Lock()
	state, res := j.state, j.result
	var jerr error = j.err
	s.mu.Unlock()
	switch state {
	case StateQueued, StateRunning:
		writeError(w, http.StatusConflict, "job is "+state+"; result not ready")
	case StateCancelled:
		writeJSON(w, http.StatusGone, errorBody{Error: "job was cancelled", Code: "cancelled"})
	case StateFailed:
		c := classify(jerr)
		writeJSON(w, c.status, errorBody{Error: jerr.Error(), Code: c.code})
	default:
		writeJSON(w, http.StatusOK, res)
	}
}

// handleTrace serves the per-job Chrome trace (ObserveFull only). The
// trace is an execution postmortem: it exists once the job is terminal,
// and asking earlier gets 409 like an early result fetch.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job")
		return
	}
	s.mu.Lock()
	state := j.state
	s.mu.Unlock()
	switch state {
	case StateQueued, StateRunning:
		writeError(w, http.StatusConflict, "job is "+state+"; trace not ready")
		return
	}
	if j.tracer == nil {
		writeJSON(w, http.StatusNotFound,
			errorBody{Error: "no trace: server runs at observe=slo", Code: "no_trace"})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = writeChromeTrace(w, j)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	state, ok := s.Cancel(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job")
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]string{"state": state})
}
