package serve

import (
	"encoding/json"
	"math"
	"testing"

	"repro/internal/obs"
)

// TestResultNonFiniteRoundTrip pins the fix this layer depends on: a
// JobResult whose residuals are ±Inf/NaN must survive JSON exactly —
// encoding/json rejects IEEE specials on bare float64s, which would turn
// a legitimately diverged reduction into a 500.
func TestResultNonFiniteRoundTrip(t *testing.T) {
	cases := []struct {
		name     string
		residual float64
	}{
		{"+Inf", math.Inf(1)},
		{"-Inf", math.Inf(-1)},
		{"NaN", math.NaN()},
		{"finite", 1.2345678901234567e-15},
		{"subnormal", math.SmallestNonzeroFloat64},
		{"maxfloat", math.MaxFloat64},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			in := &JobResult{ID: "j1", Algorithm: AlgFT, N: 8, NB: 4}
			in.Residual = obs.Float(tc.residual)
			in.Orthogonality = obs.Float(-tc.residual)
			b, err := json.Marshal(in)
			if err != nil {
				t.Fatalf("marshal: %v", err)
			}
			var out JobResult
			if err := json.Unmarshal(b, &out); err != nil {
				t.Fatalf("unmarshal %s: %v", b, err)
			}
			checkSameFloat(t, "residual", float64(in.Residual), float64(out.Residual))
			checkSameFloat(t, "orthogonality", float64(in.Orthogonality), float64(out.Orthogonality))
		})
	}
}

func checkSameFloat(t *testing.T, what string, want, got float64) {
	t.Helper()
	if math.IsNaN(want) {
		if !math.IsNaN(got) {
			t.Fatalf("%s: want NaN, got %v", what, got)
		}
		return
	}
	if math.Float64bits(want) != math.Float64bits(got) {
		t.Fatalf("%s: %x -> %x", what, math.Float64bits(want), math.Float64bits(got))
	}
}
