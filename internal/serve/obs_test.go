package serve

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/leakcheck"
)

// chromeEvent is the subset of a Chrome trace-event the tests inspect.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args"`
}

// TestJobTraceLifecycle drives one faulty FT job end to end at
// observe=full: the trace endpoint must refuse while the job runs, and
// once the job is terminal it must serve a Chrome trace carrying both the
// wall-clock lifecycle process and the simulated device timeline, while
// the status reports the trace ID and the per-job FT reliability counts.
func TestJobTraceLifecycle(t *testing.T) {
	leakcheck.Check(t)
	s, ts := newTestServer(t, Config{Capacity: 1})

	// First, a gated job proves the trace endpoint refuses mid-run.
	gate := make(chan struct{})
	s.testMutateOptions = func(j *Job, opt *core.Options) {
		opt.Hook = &gateHook{ctx: j.ctx, gate: gate, at: 1}
	}
	held := submit(t, ts, `{"n":48,"nb":8,"seed":1}`)
	waitState(t, ts, held, StateRunning)
	resp, _ := doReq(t, ts, http.MethodGet, "/v1/jobs/"+held+"/trace", "")
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("trace of a running job: %d, want 409", resp.StatusCode)
	}
	close(gate)
	waitState(t, ts, held, StateDone)

	// Then a faulty FT job (no hook override: the fault schedule must
	// keep its hook slot) exercises the whole detect/correct trail. The
	// submit channel orders this write before the worker's read.
	s.testMutateOptions = nil
	id := submit(t, ts, `{"n":64,"nb":8,"seed":3,"faults":[{"area":2,"iter":1,"seed":9}]}`)
	st := waitState(t, ts, id, StateDone)

	if st.TraceID == "" {
		t.Fatalf("done job has no trace id: %+v", st)
	}
	if st.Reliability == nil {
		t.Fatalf("done FT job has no reliability summary: %+v", st)
	}
	if st.Reliability.ChecksumChecks < 1 || st.Reliability.Detections < 1 ||
		st.Reliability.Corrections < 1 {
		t.Fatalf("injected fault left no FT trail: %+v", st.Reliability)
	}
	if st.Reliability.Uncorrectable {
		t.Fatalf("recovered job marked uncorrectable: %+v", st.Reliability)
	}

	resp, b := doReq(t, ts, http.MethodGet, "/v1/jobs/"+id+"/trace", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace: %d %s", resp.StatusCode, b)
	}
	var evs []chromeEvent
	if err := json.Unmarshal(b, &evs); err != nil {
		t.Fatalf("trace is not a Chrome event array: %v", err)
	}
	var lifecycle, device int
	names := map[string]bool{}
	for _, e := range evs {
		if e.Ph != "X" {
			continue
		}
		switch e.Pid {
		case 1:
			lifecycle++
			names[e.Name] = true
		case 2:
			device++
		}
	}
	if lifecycle == 0 || device == 0 {
		t.Fatalf("trace missing a process: %d lifecycle slices, %d device slices", lifecycle, device)
	}
	for _, want := range []string{"job " + id, "queued", "run"} {
		if !names[want] {
			t.Fatalf("lifecycle slices %v missing %q", names, want)
		}
	}

	// The flight recorder saw the job's lifecycle and its FT events.
	resp, b = doReq(t, ts, http.MethodGet, "/debug/events", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/events: %d", resp.StatusCode)
	}
	var dump struct {
		Total  uint64 `json:"total"`
		Events []struct {
			Kind string `json:"kind"`
			Job  string `json:"job"`
		} `json:"events"`
	}
	if err := json.Unmarshal(b, &dump); err != nil {
		t.Fatalf("/debug/events decode: %v\n%s", err, b)
	}
	kinds := map[string]bool{}
	for _, e := range dump.Events {
		if e.Job == id {
			kinds[e.Kind] = true
		}
	}
	for _, want := range []string{"job:queued", "job:running", "job:done", "ft:detection", "ft:correction"} {
		if !kinds[want] {
			t.Fatalf("flight recorder missing %q for job %s; saw %v", want, id, kinds)
		}
	}
}

// TestMetricsQuantilesExposed: a finished job must surface the SLO view —
// duration and queue-wait histograms with companion p50/p95/p99 quantile
// gauges — in the Prometheus exposition.
func TestMetricsQuantilesExposed(t *testing.T) {
	leakcheck.Check(t)
	_, ts := newTestServer(t, Config{Capacity: 1})
	id := submit(t, ts, `{"n":48,"nb":8,"seed":1}`)
	waitState(t, ts, id, StateDone)

	resp, b := doReq(t, ts, http.MethodGet, "/metrics", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: %d", resp.StatusCode)
	}
	out := string(b)
	for _, want := range []string{
		`serve_job_duration_seconds_bucket{le=`,
		`serve_job_duration_seconds_quantile{outcome="done",quantile="0.5"}`,
		`serve_job_duration_seconds_quantile{outcome="done",quantile="0.95"}`,
		`serve_job_duration_seconds_quantile{outcome="done",quantile="0.99"}`,
		`serve_queue_wait_seconds_quantile{quantile="0.5"}`,
		"# TYPE serve_queue_depth gauge",
		"# TYPE serve_lease_wait_seconds histogram",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, out)
		}
	}
}

// TestObserveSLOMode: at observe=slo the server keeps its SLO telemetry
// but drops every per-job artifact — no trace, no reliability summary,
// and no job-labeled metric series.
func TestObserveSLOMode(t *testing.T) {
	leakcheck.Check(t)
	_, ts := newTestServer(t, Config{Capacity: 1, Observe: ObserveSLO})
	id := submit(t, ts, `{"n":48,"nb":8,"seed":2}`)
	st := waitState(t, ts, id, StateDone)
	if st.TraceID != "" || st.Reliability != nil {
		t.Fatalf("slo mode leaked per-job artifacts: %+v", st)
	}

	resp, b := doReq(t, ts, http.MethodGet, "/v1/jobs/"+id+"/trace", "")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("trace in slo mode: %d, want 404", resp.StatusCode)
	}
	var eb errorBody
	if err := json.Unmarshal(b, &eb); err != nil || eb.Code != "no_trace" {
		t.Fatalf("trace error body %s (err %v), want code no_trace", b, err)
	}

	resp, b = doReq(t, ts, http.MethodGet, "/metrics", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: %d", resp.StatusCode)
	}
	out := string(b)
	if strings.Contains(out, `job="`) {
		t.Fatalf("slo mode exposed job-labeled series:\n%s", out)
	}
	if !strings.Contains(out, "serve_job_duration_seconds_quantile") {
		t.Fatalf("slo mode lost its SLO quantiles:\n%s", out)
	}
}

// TestForgetPrunesJobMetrics: forgetting a finished job must retire its
// job-labeled series so registry cardinality tracks the live job table.
func TestForgetPrunesJobMetrics(t *testing.T) {
	leakcheck.Check(t)
	_, ts := newTestServer(t, Config{Capacity: 1})
	id := submit(t, ts, `{"n":48,"nb":8,"seed":4}`)
	waitState(t, ts, id, StateDone)

	_, b := doReq(t, ts, http.MethodGet, "/metrics", "")
	if !strings.Contains(string(b), `job="`+id+`"`) {
		t.Fatalf("full mode produced no job-labeled series for %s:\n%s", id, b)
	}

	resp, _ := doReq(t, ts, http.MethodDelete, "/v1/jobs/"+id, "")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("forget: %d", resp.StatusCode)
	}
	_, b = doReq(t, ts, http.MethodGet, "/metrics", "")
	if strings.Contains(string(b), `job="`+id+`"`) {
		t.Fatalf("forgotten job still has metric series:\n%s", b)
	}
}

// TestPprofGating: the profiler must be reachable only when explicitly
// enabled.
func TestPprofGating(t *testing.T) {
	leakcheck.Check(t)
	_, off := newTestServer(t, Config{Capacity: 1})
	resp, _ := doReq(t, off, http.MethodGet, "/debug/pprof/", "")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof off: %d, want 404", resp.StatusCode)
	}

	_, on := newTestServer(t, Config{Capacity: 1, EnablePprof: true})
	resp, b := doReq(t, on, http.MethodGet, "/debug/pprof/", "")
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(b), "goroutine") {
		t.Fatalf("pprof on: %d %q", resp.StatusCode, b)
	}
}
