package serve

import (
	"math"
	"net/http"
	"strings"
	"testing"

	"repro/internal/leakcheck"
)

// TestFailStopJobRecovers: a multi-device job whose device dies mid
// trailing update completes anyway — the server re-leases a spare,
// reconstructs from parity, reports the recovered_failstop outcome, and
// returns every leased device (originals and spares) to the farm.
func TestFailStopJobRecovers(t *testing.T) {
	leakcheck.Check(t)
	_, ts := newTestServer(t, Config{Capacity: 1, Devices: 5})

	clean := submit(t, ts, `{"n":96,"nb":8,"seed":3,"devices":3}`)
	waitState(t, ts, clean, StateDone)
	cleanRes := getResult(t, ts, clean)

	id := submit(t, ts, `{"n":96,"nb":8,"seed":3,"devices":3,"fail_stop":true,
		"faults":[{"iter":2,"kill_point":"update","kill_device":1}]}`)
	st := waitState(t, ts, id, StateDone)
	res := getResult(t, ts, id)
	if res.DeviceLosses != 1 || res.FailStopRecoveries != 1 {
		t.Fatalf("fail-stop job: losses=%d recoveries=%d", res.DeviceLosses, res.FailStopRecoveries)
	}
	// The recovered run is bit-identical to the fault-free one, so the
	// residuals — computed from the same packed factorization — must
	// match to the last bit, not just to a tolerance.
	if math.Float64bits(float64(res.Residual)) != math.Float64bits(float64(cleanRes.Residual)) {
		t.Fatalf("recovered residual %v != clean %v (recovery not bit-identical)",
			float64(res.Residual), float64(cleanRes.Residual))
	}
	if st.Reliability == nil || st.Reliability.DeviceLosses != 1 || st.Reliability.Reconstructions != 1 {
		t.Fatalf("reliability summary missing fail-stop events: %+v", st.Reliability)
	}

	resp, b := doReq(t, ts, http.MethodGet, "/metrics", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %d", resp.StatusCode)
	}
	for _, want := range []string{
		`serve_jobs_total{status="recovered_failstop"} 1`,
		`serve_jobs_total{status="done"} 1`,
		`ft_device_losses_total{job="` + id + `"} 1`,
		`ft_failstop_reconstructions_total{job="` + id + `"} 1`,
		"serve_devices_leased 0",
		"serve_devices_free 5",
	} {
		if !strings.Contains(string(b), want) {
			t.Fatalf("metrics missing %q:\n%s", want, b)
		}
	}
}

// TestFailStopDoubleFaultJob: losing a second device during recovery
// exceeds the parity budget; the job fails with the uncorrectable code
// rather than returning silently wrong bits, and the farm is restored.
func TestFailStopDoubleFaultJob(t *testing.T) {
	leakcheck.Check(t)
	_, ts := newTestServer(t, Config{Capacity: 1, Devices: 4})
	id := submit(t, ts, `{"n":96,"nb":8,"seed":4,"devices":3,"fail_stop":true,
		"faults":[{"iter":1,"kill_point":"update","kill_device":0},
		          {"iter":1,"kill_point":"recovery","kill_device":2}]}`)
	st := waitState(t, ts, id, StateFailed)
	if st.ErrorCode != "uncorrectable" {
		t.Fatalf("double fault: error_code %q (err %q), want uncorrectable", st.ErrorCode, st.Error)
	}
	_, b := doReq(t, ts, http.MethodGet, "/metrics", "")
	if !strings.Contains(string(b), "serve_devices_free 4") {
		t.Fatalf("devices not returned after double fault:\n%s", b)
	}
}

// TestFailStopValidation: fail_stop and kill specs are strictly checked
// at submit time.
func TestFailStopValidation(t *testing.T) {
	leakcheck.Check(t)
	_, ts := newTestServer(t, Config{Capacity: 1, Devices: 2})
	for _, body := range []string{
		`{"n":64,"fail_stop":true}`,                                                         // no devices
		`{"n":64,"devices":2,"algorithm":"baseline","fail_stop":true}`,                      // wrong algorithm
		`{"n":64,"devices":2,"faults":[{"iter":1,"kill_point":"nowhere"}]}`,                 // bad point
		`{"n":64,"devices":2,"faults":[{"iter":1,"kill_device":1}]}`,                        // device sans point
		`{"n":64,"devices":2,"faults":[{"iter":1}]}`,                                        // area 0 sans kill
		`{"n":64,"devices":2,"faults":[{"iter":1,"kill_point":"update","kill_device":-1}]}`, // bad device
	} {
		resp, b := doReq(t, ts, http.MethodPost, "/v1/jobs", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("body %s: status %d (%s), want 400", body, resp.StatusCode, b)
		}
	}
}
