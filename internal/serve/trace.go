package serve

import (
	"encoding/json"
	"io"
	"time"

	"repro/internal/gpu"
)

// Per-job Chrome trace export (GET /v1/jobs/{id}/trace): one trace-event
// JSON array combining two processes that deliberately run on different
// clocks —
//
//	pid 1 "job lifecycle (wall clock)": the tracer's parented wall-clock
//	  spans (queued → run → lease / layer spans), µs since the root span
//	  opened;
//	pid 2 "simulated device timeline": the gpu.Span records of every
//	  traced device the job ran on, µs of simulated time.
//
// The two timelines are not alignable (one is real time, one is the cost
// model's clock), so the export keeps them as separate processes instead
// of pretending otherwise; chrome://tracing and Perfetto render them as
// two process groups.

type traceEvt struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// writeChromeTrace renders the terminal job's trace. The caller has
// checked j.tracer != nil and that the job is terminal (simSpans is
// written before the state turns terminal, so reading it here is safe).
func writeChromeTrace(w io.Writer, j *Job) error {
	spans := j.tracer.Spans()
	events := make([]traceEvt, 0, len(spans)+len(j.simSpans)+8)
	events = append(events,
		traceEvt{Name: "process_name", Ph: "M", Pid: 1,
			Args: map[string]any{"name": "job lifecycle (wall clock)"}},
		traceEvt{Name: "thread_name", Ph: "M", Pid: 1, Tid: 0,
			Args: map[string]any{"name": "lifecycle"}},
	)

	var t0 time.Time
	if len(spans) > 0 {
		t0 = spans[0].Start
	}
	// An open span (the root of a job forgotten mid-flight can't occur —
	// the handler refuses non-terminal jobs — but a layer that failed to
	// close is conceivable) clamps to the latest end seen.
	var tMax time.Time
	for _, sp := range spans {
		if sp.End.After(tMax) {
			tMax = sp.End
		}
	}
	for _, sp := range spans {
		end := sp.End
		if end.IsZero() {
			end = tMax
		}
		events = append(events, traceEvt{
			Name: sp.Name, Ph: "X",
			Ts:  float64(sp.Start.Sub(t0)) / float64(time.Microsecond),
			Dur: float64(end.Sub(sp.Start)) / float64(time.Microsecond),
			Pid: 1, Tid: 0,
			Args: map[string]any{"span": int(sp.ID), "parent": int(sp.Parent),
				"trace_id": j.traceID},
		})
	}

	if len(j.simSpans) > 0 {
		events = append(events, traceEvt{Name: "process_name", Ph: "M", Pid: 2,
			Args: map[string]any{"name": "simulated device timeline"}})
		events = append(events, simEvents(j.simSpans)...)
	}
	return json.NewEncoder(w).Encode(events)
}

// simEvents lays the simulated spans out on pid 2, one Chrome thread per
// lane in first-appearance order (lane names are device-prefixed on
// pooled devices, so multi-device jobs get distinct rows per device).
func simEvents(spans []gpu.Span) []traceEvt {
	tids := map[string]int{}
	events := make([]traceEvt, 0, len(spans))
	for _, sp := range spans {
		tid, ok := tids[sp.Lane]
		if !ok {
			tid = len(tids)
			tids[sp.Lane] = tid
			events = append(events, traceEvt{
				Name: "thread_name", Ph: "M", Pid: 2, Tid: tid,
				Args: map[string]any{"name": sp.Lane},
			})
		}
		events = append(events, traceEvt{
			Name: sp.Kind, Ph: "X",
			Ts: sp.Start * 1e6, Dur: (sp.End - sp.Start) * 1e6,
			Pid: 2, Tid: tid,
		})
	}
	return events
}

// TraceID exposes the job's trace identifier ("" in ObserveSLO mode).
func (j *Job) TraceID() string { return j.traceID }
