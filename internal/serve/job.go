package serve

import (
	"context"
	"sync/atomic"
	"time"

	"repro/internal/gpu"
	"repro/internal/matrix"
	"repro/internal/obs"
)

// Job states, as reported by GET /v1/jobs/{id}.
const (
	StateQueued    = "queued"
	StateRunning   = "running"
	StateDone      = "done"
	StateFailed    = "failed"
	StateCancelled = "cancelled"
)

// Job is one reduction request moving through the scheduler. All mutable
// fields are guarded by the owning Server's mutex, except the device
// pointer (atomic, so the status handler can read the live phase while
// the reduction runs) and the observability artifacts (journal/tracer
// are internally synchronized; simSpans is written once by the worker
// before the job turns terminal and read only after).
type Job struct {
	ID  string
	req *JobRequest
	a   *matrix.Matrix

	ctx    context.Context
	cancel context.CancelFunc

	dev atomic.Pointer[gpu.Device]

	// Request-scoped observability (nil/zero in ObserveSLO mode). The
	// tracer holds the wall-clock lifecycle spans; the journal collects
	// the run's FT events stamped with the job ID; simSpans is the
	// simulated device timeline captured when the reduction returns.
	traceID    string
	tracer     *obs.Tracer
	journal    *obs.Journal
	spanRoot   obs.SpanID
	spanQueued obs.SpanID
	spanRun    obs.SpanID
	simSpans   []gpu.Span

	// Guarded by Server.mu.
	state     string
	err       error
	result    *JobResult
	created   time.Time
	started   time.Time
	finished  time.Time
	queueWait time.Duration
	leaseWait time.Duration

	// done is closed when the job reaches a terminal state.
	done chan struct{}
}

func (j *Job) setDevice(d *gpu.Device) { j.dev.Store(d) }

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// phase returns the reduction phase currently executing on the job's
// simulated device ("" before the device exists or for host-only paths).
func (j *Job) phase() string {
	if d := j.dev.Load(); d != nil {
		return d.Phase()
	}
	return ""
}

// captureSimSpans collects the simulated-timeline spans of every traced
// device the job ran on, in device order. It runs on the worker goroutine
// after the reduction returns and before the job turns terminal, so the
// trace handler (which refuses non-terminal jobs) never races it.
func (j *Job) captureSimSpans(devs []*gpu.Device) {
	if j.tracer == nil {
		return
	}
	if len(devs) == 1 {
		// The per-job device is dead after the run; adopt its buffer
		// instead of copying a quarter-megabyte of spans per job.
		j.simSpans = devs[0].Trace()
		return
	}
	var all []gpu.Span
	for _, d := range devs {
		all = append(all, d.Trace()...)
	}
	j.simSpans = all
}

// Reliability is the per-job FT summary in the status response: how often
// the run checked its checksums, what it detected, and what it repaired.
// Derived from the job's journal, so it is only present in ObserveFull
// mode and only non-zero on the fault-tolerant algorithms.
type Reliability struct {
	ChecksumChecks int `json:"checksum_checks"`
	Detections     int `json:"detections"`
	Corrections    int `json:"corrections"`
	Reexecutions   int `json:"reexecutions"`
	// Fail-stop events (multi-device jobs with fail_stop on): permanent
	// device deaths and the parity reconstructions that survived them.
	DeviceLosses    int `json:"device_losses,omitempty"`
	Reconstructions int `json:"reconstructions,omitempty"`
	// Uncorrectable is true when the job failed because the FT machinery
	// found an error it could not repair.
	Uncorrectable bool `json:"uncorrectable,omitempty"`
}

// JobStatus is the wire form of GET /v1/jobs/{id}.
type JobStatus struct {
	ID    string `json:"id"`
	State string `json:"state"`
	// Phase is the live reduction phase (e.g. "panel", "update") while
	// the job runs on the simulated device.
	Phase string `json:"phase,omitempty"`
	Error string `json:"error,omitempty"`
	// ErrorCode classifies terminal failures (see classify): e.g.
	// "unsupported", "uncorrectable", "cancelled".
	ErrorCode string `json:"error_code,omitempty"`
	// TraceID names the job's trace (ObserveFull only); the full trace is
	// at GET /v1/jobs/{id}/trace once the job is terminal.
	TraceID  string `json:"trace_id,omitempty"`
	Created  string `json:"created"`
	Started  string `json:"started,omitempty"`
	Finished string `json:"finished,omitempty"`
	// QueueWaitSeconds / LeaseWaitSeconds report where a started job
	// spent its pre-run time (queue slot, device lease).
	QueueWaitSeconds float64 `json:"queue_wait_seconds,omitempty"`
	LeaseWaitSeconds float64 `json:"lease_wait_seconds,omitempty"`
	// Reliability is the per-job FT event summary (ObserveFull only).
	Reliability *Reliability `json:"reliability,omitempty"`
	// Build identifies the binary serving this job (also at
	// GET /v1/version), so traces and artifacts record what produced
	// them.
	Build *BuildInfo `json:"build,omitempty"`
}

// reliability tallies the job's journal (live-safe: Events copies under
// the journal lock). Nil without a journal.
func (j *Job) reliability() *Reliability {
	if j.journal == nil {
		return nil
	}
	r := &Reliability{Uncorrectable: isUncorrectable(j.err)}
	for _, e := range j.journal.Events() {
		switch e.Kind {
		case obs.KindChecksumCheck:
			r.ChecksumChecks++
		case obs.KindDetection:
			r.Detections++
		case obs.KindCorrection:
			r.Corrections++
		case obs.KindReexecution:
			r.Reexecutions++
		case obs.KindDeviceLoss:
			r.DeviceLosses++
		case obs.KindReconstruction:
			r.Reconstructions++
		}
	}
	return r
}

// statusLocked snapshots the job; the caller holds Server.mu.
func (j *Job) statusLocked() JobStatus {
	st := JobStatus{
		ID:      j.ID,
		State:   j.state,
		TraceID: j.traceID,
		Created: j.created.UTC().Format(time.RFC3339Nano),
	}
	if j.state == StateRunning {
		st.Phase = j.phase()
	}
	if j.err != nil {
		st.Error = j.err.Error()
		st.ErrorCode = classify(j.err).code
	}
	if !j.started.IsZero() {
		st.Started = j.started.UTC().Format(time.RFC3339Nano)
		st.QueueWaitSeconds = j.queueWait.Seconds()
		st.LeaseWaitSeconds = j.leaseWait.Seconds()
	}
	if !j.finished.IsZero() {
		st.Finished = j.finished.UTC().Format(time.RFC3339Nano)
	}
	st.Reliability = j.reliability()
	build := Build()
	st.Build = &build
	return st
}
