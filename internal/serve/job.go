package serve

import (
	"context"
	"sync/atomic"
	"time"

	"repro/internal/gpu"
	"repro/internal/matrix"
)

// Job states, as reported by GET /v1/jobs/{id}.
const (
	StateQueued    = "queued"
	StateRunning   = "running"
	StateDone      = "done"
	StateFailed    = "failed"
	StateCancelled = "cancelled"
)

// Job is one reduction request moving through the scheduler. All mutable
// fields are guarded by the owning Server's mutex, except the device
// pointer (atomic, so the status handler can read the live phase while
// the reduction runs).
type Job struct {
	ID  string
	req *JobRequest
	a   *matrix.Matrix

	ctx    context.Context
	cancel context.CancelFunc

	dev atomic.Pointer[gpu.Device]

	// Guarded by Server.mu.
	state    string
	err      error
	result   *JobResult
	created  time.Time
	started  time.Time
	finished time.Time

	// done is closed when the job reaches a terminal state.
	done chan struct{}
}

func (j *Job) setDevice(d *gpu.Device) { j.dev.Store(d) }

// phase returns the reduction phase currently executing on the job's
// simulated device ("" before the device exists or for host-only paths).
func (j *Job) phase() string {
	if d := j.dev.Load(); d != nil {
		return d.Phase()
	}
	return ""
}

// JobStatus is the wire form of GET /v1/jobs/{id}.
type JobStatus struct {
	ID    string `json:"id"`
	State string `json:"state"`
	// Phase is the live reduction phase (e.g. "panel", "update") while
	// the job runs on the simulated device.
	Phase    string `json:"phase,omitempty"`
	Error    string `json:"error,omitempty"`
	Created  string `json:"created"`
	Started  string `json:"started,omitempty"`
	Finished string `json:"finished,omitempty"`
}

// statusLocked snapshots the job; the caller holds Server.mu.
func (j *Job) statusLocked() JobStatus {
	st := JobStatus{
		ID:      j.ID,
		State:   j.state,
		Created: j.created.UTC().Format(time.RFC3339Nano),
	}
	if j.state == StateRunning {
		st.Phase = j.phase()
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	if !j.started.IsZero() {
		st.Started = j.started.UTC().Format(time.RFC3339Nano)
	}
	if !j.finished.IsZero() {
		st.Finished = j.finished.UTC().Format(time.RFC3339Nano)
	}
	return st
}
