package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"

	"repro/internal/fault"
	"repro/internal/matrix"
)

// Algorithm names accepted on the wire (JobRequest.Algorithm).
const (
	AlgFT       = "ft"
	AlgBaseline = "baseline"
	AlgCPU      = "cpu"
)

// Request-size guardrails: everything sized from an untrusted request is
// bounded before allocation.
const (
	// maxNB caps the block size; workspaces are N×NB so an absurd NB is
	// an allocation amplifier, and the algorithms gain nothing past the
	// panel widths the paper studies.
	maxNB = 512
	// maxFaults caps the injection schedule length per job.
	maxFaults = 64
	// maxDevices caps the per-job device-lease request before the
	// server-size check (Config.Devices) even runs.
	maxDevices = 64
	// maxBatchItems caps how many reductions one batched request may
	// carry; each item is bounded by maxN besides.
	maxBatchItems = 64
)

// Priority classes accepted on the wire (JobRequest.Priority).
const (
	PriorityInteractive = "interactive"
	PriorityBatch       = "batch"
)

// FaultSpec is the wire form of one fault.Plan: a transient error
// injected at the start of a blocked iteration, or — when KillPoint is
// set — a permanent fail-stop device death.
type FaultSpec struct {
	// Area is the Figure 2(a) region: 1 (upper trailing), 2 (lower
	// trailing), 3 (host Q store), 4 (active panel). 0 is allowed for a
	// kill-only spec (KillPoint set, no transient injection).
	Area int `json:"area,omitempty"`
	// Iter is the blocked iteration at whose boundary the error strikes.
	Iter int `json:"iter"`
	// Count is the number of simultaneous errors (default 1).
	Count int `json:"count,omitempty"`
	// Delta is the additive magnitude (default 1.0; ignored for bit flips).
	Delta float64 `json:"delta,omitempty"`
	// BitFlip flips Bit of the IEEE-754 word instead of adding Delta.
	BitFlip bool `json:"bit_flip,omitempty"`
	Bit     uint `json:"bit,omitempty"`
	// Seed drives the deterministic position sampling.
	Seed uint64 `json:"seed,omitempty"`
	// KillPoint, when set, kills KillDevice permanently at this
	// iteration's named window ("boundary", "panel", "update",
	// "recovery") — a fail-stop loss, not a transient flip. The job
	// survives it only with fail_stop recovery on (and a pool large
	// enough); otherwise it fails uncorrectable.
	KillPoint  string `json:"kill_point,omitempty"`
	KillDevice int    `json:"kill_device,omitempty"`
}

func (f FaultSpec) plan() fault.Plan {
	return fault.Plan{
		Area: fault.Area(f.Area), TargetIter: f.Iter, Count: f.Count,
		Delta: f.Delta, BitFlip: f.BitFlip, Bit: f.Bit, Seed: f.Seed,
		KillPoint: fault.KillPoint(f.KillPoint), KillDevice: f.KillDevice,
	}
}

// JobRequest is the body of POST /v1/jobs. Fields mirror core.Options /
// core.SymOptions; the input matrix is either generated from (N, Seed) or
// uploaded inline as a Matrix Market document.
type JobRequest struct {
	// Algorithm is "ft" (default), "baseline", or "cpu".
	Algorithm string `json:"algorithm,omitempty"`
	// Symmetric selects the tridiagonalization path (core.ReduceSym);
	// the input is generated symmetric, or the uploaded matrix's lower
	// triangle is referenced.
	Symmetric bool `json:"symmetric,omitempty"`
	// N is the matrix order for generated inputs (ignored when
	// MatrixMarket is set, except that a non-zero N must then match).
	N int `json:"n,omitempty"`
	// NB is the block size (32 if zero).
	NB int `json:"nb,omitempty"`
	// Seed drives the deterministic input generator.
	Seed uint64 `json:"seed,omitempty"`
	// CostOnly models time only (device algorithms).
	CostOnly bool `json:"cost_only,omitempty"`
	// Pass-through fault-tolerance knobs (see core.Options).
	ThresholdFactor    float64 `json:"threshold_factor,omitempty"`
	FinalHCheck        bool    `json:"final_h_check,omitempty"`
	DisableQProtection bool    `json:"disable_q_protection,omitempty"`
	DisableOverlap     bool    `json:"disable_overlap,omitempty"`
	// Lookahead, when present and false, disables the depth-1 lookahead
	// schedule (panel k+1 factored under trailing update k). Absent or
	// true runs with lookahead — the default, and bit-identical either
	// way; only the modeled time changes.
	Lookahead *bool `json:"lookahead,omitempty"`
	// Devices, when > 0, leases that many whole devices from the server's
	// farm (Config.Devices) and runs the multi-device pool path; the job
	// waits until its subset is free. Requires a device algorithm
	// ("ft"/"baseline"). More devices than the farm holds is a 400 at
	// submit; a symmetric multi-device job is accepted but fails with the
	// typed unsupported error, which the result endpoint reports as a
	// structured 400-class body (code "unsupported").
	Devices int `json:"devices,omitempty"`
	// FailStop enables fail-stop device-loss recovery (DESIGN.md §13) on
	// a multi-device job: the run carries an extra parity device —
	// leased from the farm when one is free, fabricated off-farm
	// otherwise — and survives one kill_point death bit-identically,
	// finishing with the recovered_failstop outcome instead of failing.
	// Requires algorithm "ft" and devices > 0.
	FailStop bool `json:"fail_stop,omitempty"`
	// Substrate selects the BLAS fault-tolerance substrate on algorithm
	// "ft": "" or "swept" (default) keeps the iteration-boundary sweeps
	// only; "fused" additionally verifies every device BLAS call
	// in-kernel and maintains the multi-device panel-slab halo
	// incrementally. Results are bit-identical either way.
	Substrate string `json:"substrate,omitempty"`
	// Faults schedules transient-error injections (algorithm "ft" only).
	Faults []FaultSpec `json:"faults,omitempty"`
	// MatrixMarket, when non-empty, is the input matrix as an inline
	// Matrix Market document (array or coordinate format).
	MatrixMarket string `json:"matrix_market,omitempty"`
	// Priority is the fair-queue class: "interactive" (the default —
	// weight 4) or "batch" (weight 1, for throughput traffic that
	// tolerates latency). The weighted-fair scheduler keeps interactive
	// latency bounded under batch saturation; aging keeps batch from
	// starving under an interactive flood.
	Priority string `json:"priority,omitempty"`
	// Batch, when non-empty, makes this a batched job on the throughput
	// engine (Config.DeviceLanes > 0): each item is an independent
	// generated reduction, items sharing (n, nb) run back-to-back on one
	// fractional device lane, distinct shapes run concurrently. A batched
	// request must not set n, matrix_market, symmetric, devices,
	// fail_stop, faults, or algorithm "cpu"; nb is the items' default
	// block size.
	Batch []BatchItemSpec `json:"batch,omitempty"`
}

// BatchItemSpec is one reduction of a batched job: a generated input of
// order N from Seed, reduced at block size NB (the request-level nb, or
// 32, when zero).
type BatchItemSpec struct {
	N    int    `json:"n"`
	NB   int    `json:"nb,omitempty"`
	Seed uint64 `json:"seed,omitempty"`
}

// DecodeJobRequest parses and validates a job request. The decoder is
// strict — unknown fields, trailing data, and out-of-range values are
// errors — so that a 400 is the only possible outcome of a bad body; it
// never panics, whatever the input (fuzzed in request_fuzz_test.go).
func DecodeJobRequest(r io.Reader, maxN int) (*JobRequest, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	req := &JobRequest{}
	if err := dec.Decode(req); err != nil {
		return nil, fmt.Errorf("decode job request: %w", err)
	}
	var extra json.RawMessage
	if err := dec.Decode(&extra); !errors.Is(err, io.EOF) {
		return nil, errors.New("decode job request: trailing data after JSON body")
	}
	if err := req.validate(maxN); err != nil {
		return nil, err
	}
	return req, nil
}

func (r *JobRequest) validate(maxN int) error {
	switch r.Algorithm {
	case "", AlgFT, AlgBaseline, AlgCPU:
	default:
		return fmt.Errorf("unknown algorithm %q (want ft|baseline|cpu)", r.Algorithm)
	}
	switch r.Priority {
	case "", PriorityInteractive, PriorityBatch:
	default:
		return fmt.Errorf("unknown priority %q (want interactive|batch)", r.Priority)
	}
	if len(r.Batch) > 0 {
		if err := r.validateBatch(maxN); err != nil {
			return err
		}
	} else if r.MatrixMarket == "" && r.N < 1 {
		return errors.New("n must be >= 1 (or upload a matrix_market document)")
	}
	if r.N > maxN {
		return fmt.Errorf("n=%d exceeds this server's limit of %d", r.N, maxN)
	}
	if r.NB < 0 || r.NB > maxNB {
		return fmt.Errorf("nb=%d out of range [0,%d]", r.NB, maxNB)
	}
	if r.ThresholdFactor < 0 {
		return fmt.Errorf("threshold_factor=%g must be >= 0", r.ThresholdFactor)
	}
	if r.Devices < 0 || r.Devices > maxDevices {
		return fmt.Errorf("devices=%d out of range [0,%d]", r.Devices, maxDevices)
	}
	if r.Devices > 0 && r.Algorithm == AlgCPU {
		return errors.New("algorithm \"cpu\" cannot lease devices")
	}
	if len(r.Faults) > maxFaults {
		return fmt.Errorf("%d faults exceed the limit of %d", len(r.Faults), maxFaults)
	}
	if len(r.Faults) > 0 {
		if r.Symmetric {
			return errors.New("fault injection is not supported on the symmetric path")
		}
		if r.Algorithm == AlgBaseline || r.Algorithm == AlgCPU {
			return errors.New("fault injection requires algorithm \"ft\"")
		}
	}
	if r.FailStop {
		if r.Symmetric {
			return errors.New("fail_stop is not supported on the symmetric path")
		}
		if r.Algorithm == AlgBaseline || r.Algorithm == AlgCPU {
			return errors.New("fail_stop requires algorithm \"ft\"")
		}
		if r.Devices == 0 {
			return errors.New("fail_stop requires a multi-device job (devices > 0)")
		}
	}
	switch r.Substrate {
	case "", "swept", "fused":
	default:
		return fmt.Errorf("unknown substrate %q (want swept|fused)", r.Substrate)
	}
	if r.Substrate == "fused" {
		if r.Symmetric {
			return errors.New("substrate \"fused\" is not supported on the symmetric path")
		}
		if r.Algorithm == AlgBaseline || r.Algorithm == AlgCPU {
			return errors.New("substrate \"fused\" requires algorithm \"ft\"")
		}
	}
	for i, f := range r.Faults {
		if f.KillPoint != "" {
			if _, err := fault.ParseKillPoint(f.KillPoint); err != nil {
				return fmt.Errorf("faults[%d]: %v", i, err)
			}
			if f.KillDevice < 0 || f.KillDevice >= maxDevices {
				return fmt.Errorf("faults[%d]: kill_device=%d out of range [0,%d)", i, f.KillDevice, maxDevices)
			}
		} else if f.KillDevice != 0 {
			return fmt.Errorf("faults[%d]: kill_device requires kill_point", i)
		}
		// Area 0 is only meaningful for a kill-only spec.
		if f.Area == 0 && f.KillPoint == "" {
			return fmt.Errorf("faults[%d]: area=0 requires kill_point (kill-only spec)", i)
		}
		if f.Area != 0 && (f.Area < int(fault.Area1) || f.Area > int(fault.AreaPanel)) {
			return fmt.Errorf("faults[%d]: area=%d out of range [1,4]", i, f.Area)
		}
		if f.Iter < 0 {
			return fmt.Errorf("faults[%d]: iter must be >= 0", i)
		}
		if f.Count < 0 || f.Count > 16 {
			return fmt.Errorf("faults[%d]: count=%d out of range [0,16]", i, f.Count)
		}
		if f.Bit > 63 {
			return fmt.Errorf("faults[%d]: bit=%d out of range [0,63]", i, f.Bit)
		}
	}
	return nil
}

// validateBatch checks the batched-job shape: items bounded and well
// formed, and none of the single-job features that have no batched
// equivalent (uploads, whole-device leases, the symmetric path, fault
// injection, fail-stop, the host-only algorithm).
func (r *JobRequest) validateBatch(maxN int) error {
	if len(r.Batch) > maxBatchItems {
		return fmt.Errorf("%d batch items exceed the limit of %d", len(r.Batch), maxBatchItems)
	}
	if r.N != 0 {
		return errors.New("n must not be set on a batched job (items carry their own n)")
	}
	if r.MatrixMarket != "" {
		return errors.New("matrix_market is not supported on batched jobs")
	}
	if r.Symmetric {
		return errors.New("symmetric is not supported on batched jobs")
	}
	if r.Devices > 0 {
		return errors.New("devices (whole-device leases) cannot combine with batch (fractional lanes)")
	}
	if r.FailStop {
		return errors.New("fail_stop is not supported on batched jobs")
	}
	if len(r.Faults) > 0 {
		return errors.New("fault injection is not supported on batched jobs")
	}
	if r.Algorithm == AlgCPU {
		return errors.New("algorithm \"cpu\" cannot run on device lanes")
	}
	for i, b := range r.Batch {
		if b.N < 1 {
			return fmt.Errorf("batch[%d]: n must be >= 1", i)
		}
		if b.N > maxN {
			return fmt.Errorf("batch[%d]: n=%d exceeds this server's limit of %d", i, b.N, maxN)
		}
		if b.NB < 0 || b.NB > maxNB {
			return fmt.Errorf("batch[%d]: nb=%d out of range [0,%d]", i, b.NB, maxNB)
		}
	}
	return nil
}

// class maps the request's priority to its fair-queue class.
func (r *JobRequest) class() string {
	if r.Priority == PriorityBatch {
		return PriorityBatch
	}
	return PriorityInteractive
}

// Matrix materializes the job's input: the uploaded Matrix Market
// document if present (bounded by maxN×maxN elements before any
// allocation), otherwise the deterministic generator at order N.
func (r *JobRequest) Matrix(maxN int) (*matrix.Matrix, error) {
	if len(r.Batch) > 0 {
		// Batched jobs materialize per item on the engine lanes.
		return nil, nil
	}
	if r.MatrixMarket != "" {
		a, err := matrix.ReadMatrixMarketLimit(strings.NewReader(r.MatrixMarket), int64(maxN)*int64(maxN))
		if err != nil {
			return nil, err
		}
		if a.Rows != a.Cols {
			return nil, fmt.Errorf("uploaded matrix is %dx%d, not square", a.Rows, a.Cols)
		}
		if a.Rows < 1 {
			return nil, errors.New("uploaded matrix is empty")
		}
		if a.Rows > maxN {
			return nil, fmt.Errorf("uploaded matrix order %d exceeds this server's limit of %d", a.Rows, maxN)
		}
		if r.N != 0 && r.N != a.Rows {
			return nil, fmt.Errorf("n=%d does not match the uploaded %dx%d matrix", r.N, a.Rows, a.Cols)
		}
		return a, nil
	}
	a := matrix.Random(r.N, r.N, r.Seed)
	if r.Symmetric {
		for j := 0; j < r.N; j++ {
			for i := 0; i < j; i++ {
				a.Set(i, j, a.At(j, i))
			}
		}
	}
	return a, nil
}

func (r *JobRequest) algorithm() string {
	if r.Algorithm == "" {
		return AlgFT
	}
	return r.Algorithm
}
