package serve

import (
	"bytes"
	"testing"
)

// FuzzJobRequest hammers the job-request decoder: whatever the body, the
// only outcomes are a validated request or an error — never a panic, and
// never an accepted request that escapes the server's size limits (the
// properties the 400-only contract of POST /v1/jobs rests on).
func FuzzJobRequest(f *testing.F) {
	seeds := []string{
		`{"n":8}`,
		`{"n":16,"algorithm":"baseline","nb":4,"seed":42}`,
		`{"n":12,"algorithm":"ft","faults":[{"area":2,"iter":1,"count":2,"delta":0.5,"seed":7}]}`,
		`{"n":12,"faults":[{"area":3,"iter":2,"bit_flip":true,"bit":52}]}`,
		`{"n":24,"symmetric":true,"cost_only":false,"threshold_factor":300}`,
		`{"algorithm":"cpu","matrix_market":"%%MatrixMarket matrix array real general\n2 2\n1\n0\n0\n1\n"}`,
		`{"matrix_market":"%%MatrixMarket matrix coordinate real symmetric\n3 3 2\n2 1 1.5\n3 3 -2e-3\n"}`,
		`{"n":-3}`,
		`{"n":8,"unknown":true}`,
		`{"n":8}{"n":9}`,
		`{"n":1e9}`,
		`[1,2,3]`,
		`"just a string"`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	const maxN = 64
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := DecodeJobRequest(bytes.NewReader(data), maxN)
		if err != nil {
			return
		}
		a, err := req.Matrix(maxN)
		if err != nil {
			return
		}
		if a.Rows != a.Cols || a.Rows < 1 || a.Rows > maxN {
			t.Fatalf("accepted request materialized a %dx%d matrix (maxN %d): %q",
				a.Rows, a.Cols, maxN, data)
		}
		if req.NB < 0 || req.NB > maxNB {
			t.Fatalf("accepted request with nb=%d: %q", req.NB, data)
		}
	})
}
