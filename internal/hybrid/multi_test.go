package hybrid

import (
	"context"
	"testing"

	"repro/internal/gpu"
	"repro/internal/lapack"
	"repro/internal/matrix"
	"repro/internal/obs"
	"repro/internal/sim"
)

func newDevs(k int, mode gpu.Mode) []*gpu.Device {
	devs := make([]*gpu.Device, k)
	for i := range devs {
		devs[i] = gpu.NewIndexed(sim.K40c(), mode, i)
	}
	return devs
}

func TestMultiDeviceMatchesLAPACK(t *testing.T) {
	for _, tc := range []struct{ n, nb, k int }{
		{64, 16, 2}, {100, 16, 3}, {192, 32, 2}, {192, 16, 4},
	} {
		a := matrix.Random(tc.n, tc.n, uint64(tc.n+tc.k))
		res, err := Reduce(a, Options{NB: tc.nb, Devices: newDevs(tc.k, gpu.Real)})
		if err != nil {
			t.Fatal(err)
		}
		refPacked, refTau := lapackReduce(a, tc.nb)
		if d := res.Packed.Sub(refPacked).MaxAbs(); d > 1e-10 {
			t.Fatalf("n=%d nb=%d k=%d: multi-device packed differs from LAPACK by %v", tc.n, tc.nb, tc.k, d)
		}
		for i := range refTau {
			if res.Tau[i] != res.Tau[i] || refTau[i]-res.Tau[i] > 1e-10 || res.Tau[i]-refTau[i] > 1e-10 {
				t.Fatalf("n=%d nb=%d k=%d: tau[%d] %v vs %v", tc.n, tc.nb, tc.k, i, res.Tau[i], refTau[i])
			}
		}
		h := res.H()
		q := res.Q()
		if r := lapack.FactorizationResidual(a, q, h); r > 1e-13 {
			t.Fatalf("n=%d nb=%d k=%d: ‖A−QHQᵀ‖/(N‖A‖) = %v", tc.n, tc.nb, tc.k, r)
		}
	}
}

// The headline determinism contract: the same matrix reduced on pools of
// 1, 2 and 4 devices must produce byte-identical packed output and tau —
// the partition grid and the host-side combine order never depend on K.
func TestMultiDeviceBitIdentical(t *testing.T) {
	n, nb := 192, 16
	a := matrix.Random(n, n, 77)
	base, err := Reduce(a, Options{NB: nb, Devices: newDevs(1, gpu.Real)})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{2, 3, 4} {
		res, err := Reduce(a, Options{NB: nb, Devices: newDevs(k, gpu.Real)})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Packed.Equal(base.Packed) {
			d := res.Packed.Sub(base.Packed).MaxAbs()
			t.Fatalf("k=%d: packed result not bit-identical to k=1 (max |Δ| = %g)", k, d)
		}
		for i := range base.Tau {
			if res.Tau[i] != base.Tau[i] {
				t.Fatalf("k=%d: tau[%d] = %v differs from k=1's %v", k, i, res.Tau[i], base.Tau[i])
			}
		}
		if res.BlockedIters != base.BlockedIters {
			t.Fatalf("k=%d: %d blocked iterations vs %d", k, res.BlockedIters, base.BlockedIters)
		}
	}
}

// Sharding the trailing updates must shorten the simulated makespan.
func TestMultiDeviceSpeedsUpTrailingUpdates(t *testing.T) {
	n := 1024
	a := matrix.New(n, n) // CostOnly: data content irrelevant
	one, err := Reduce(a, Options{NB: 32, Devices: newDevs(1, gpu.CostOnly)})
	if err != nil {
		t.Fatal(err)
	}
	four, err := Reduce(a, Options{NB: 32, Devices: newDevs(4, gpu.CostOnly)})
	if err != nil {
		t.Fatal(err)
	}
	if four.SimSeconds >= one.SimSeconds {
		t.Fatalf("4 devices not faster than 1: %.4fs vs %.4fs", four.SimSeconds, one.SimSeconds)
	}
	t.Logf("N=%d: K=1 %.4fs, K=4 %.4fs (%.2fx)", n, one.SimSeconds, four.SimSeconds, one.SimSeconds/four.SimSeconds)
}

func TestMultiDeviceObsPerDevice(t *testing.T) {
	reg := obs.NewRegistry()
	a := matrix.New(512, 512)
	if _, err := Reduce(a, Options{NB: 32, Devices: newDevs(2, gpu.CostOnly), Obs: reg}); err != nil {
		t.Fatal(err)
	}
	byDev := obs.SumBy(reg, "op_seconds_total", "device")
	for _, want := range []string{"main", "d0", "d1"} {
		if byDev[want] <= 0 {
			t.Fatalf("no op seconds attributed to device=%s: %v", want, byDev)
		}
	}
	if v := reg.GaugeValue("pool_devices"); v != 2 {
		t.Fatalf("pool_devices = %g, want 2", v)
	}
}

func TestMultiDeviceHooksAndErrors(t *testing.T) {
	a := matrix.Random(100, 100, 5)
	var iters []IterInfo
	if _, err := Reduce(a, Options{NB: 16, Devices: newDevs(2, gpu.Real),
		AfterIteration: func(it IterInfo) { iters = append(iters, it) }}); err != nil {
		t.Fatal(err)
	}
	if len(iters) == 0 {
		t.Fatal("AfterIteration never called on the multi-device path")
	}
	for i, it := range iters {
		if it.Iter != i || it.Panel != i*16 || it.N != 100 {
			t.Fatalf("iteration info %d wrong: %+v", i, it)
		}
	}

	if _, err := Reduce(a, Options{NB: 16, Devices: newDevs(2, gpu.Real),
		BeforeIteration: func(IterInfo, *gpu.Matrix, *matrix.Matrix) {}}); err == nil {
		t.Fatal("BeforeIteration must be rejected on the multi-device path")
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Reduce(a, Options{NB: 16, Devices: newDevs(2, gpu.Real), Ctx: ctx}); err != context.Canceled {
		t.Fatalf("cancelled context: got %v, want context.Canceled", err)
	}
}

func TestMultiDeviceInputNotModifiedAndSmallSizes(t *testing.T) {
	a := matrix.Random(40, 40, 3)
	orig := a.Clone()
	if _, err := Reduce(a, Options{NB: 8, Devices: newDevs(2, gpu.Real)}); err != nil {
		t.Fatal(err)
	}
	if !a.Equal(orig) {
		t.Fatal("multi-device Reduce modified its input")
	}
	for n := 0; n <= 6; n++ {
		b := matrix.Random(n, n, uint64(n+1))
		res, err := Reduce(b, Options{NB: 4, Devices: newDevs(3, gpu.Real)})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if n == 0 {
			continue
		}
		if r := lapack.FactorizationResidual(b, res.Q(), res.H()); r > 1e-13 {
			t.Fatalf("n=%d: residual %v", n, r)
		}
	}
}
