// Package hybrid implements the MAGMA-style hybrid CPU+GPU blocked
// Hessenberg reduction — Algorithm 2 of the paper and the baseline that
// the fault-tolerant variant (internal/ft) extends.
//
// The matrix lives on the (simulated) device. Each blocked iteration:
//
//  1. copies the lower part of the next panel to the host,
//  2. factorizes the panel on the CPU (DLAHR2), with the large
//     matrix-vector product against the trailing matrix executed on the
//     device, column by column, as in MAGMA's magma_dlahr2,
//  3. uploads V, T, Y and applies the right update to the upper block
//     rows M on the device,
//  4. asynchronously sends the freshly finished leading block column of H
//     back to the host, overlapped with
//  5. the right update of the lower trailing block G and the DLARFB left
//     update (the two red lines of the paper's Algorithm 2).
//
// The remaining small trailing matrix is reduced on the host with the
// unblocked algorithm, as LAPACK's DGEHRD does.
//
// All real arithmetic — the host-side panel factorization and, in Real
// mode, the device kernels — executes on the shared internal/blas
// substrate. Its worker pool shards the tall-skinny panel products
// (m ≈ N, n ≤ nb) over a 2-D tile grid, so panel-heavy steps parallelize
// on the host even though their column count is far below the core count;
// blas.SetMaxProcs bounds that parallelism without affecting results.
package hybrid

import (
	"context"
	"errors"

	"repro/internal/blas"
	"repro/internal/gpu"
	"repro/internal/lapack"
	"repro/internal/matrix"
	"repro/internal/obs"
	"repro/internal/sim"
)

// DefaultNB is the paper's block size.
const DefaultNB = 32

// IterInfo describes one blocked iteration, passed to the AfterIteration
// hook (which fault campaigns use to inject errors at iteration
// boundaries, the paper's failure model).
type IterInfo struct {
	// Iter is the zero-based blocked iteration index.
	Iter int
	// Panel is the global index of the first panel column.
	Panel int
	// NB is the panel width actually used this iteration.
	NB int
	// N is the matrix order.
	N int
}

// Options configures the reduction.
type Options struct {
	// Ctx, when non-nil, cancels the reduction: it is checked at every
	// blocked-iteration boundary and between panel columns, so
	// cancellation is observed within one iteration and Reduce returns
	// ctx.Err() (context.Canceled / context.DeadlineExceeded). The
	// device allocations are freed and the BLAS pool is left idle, so
	// both stay reusable after a cancelled run.
	Ctx context.Context
	// NB is the block size (DefaultNB if zero).
	NB int
	// Device is the simulated accelerator to run on. Required unless
	// Devices is set.
	Device *gpu.Device
	// Devices, when non-empty, selects the multi-device path: the
	// trailing matrix is sharded block-column-wise across the pool
	// (internal/devpool), the panel products are broadcast, and results
	// are bit-identical at every pool size. Device and DisableOverlap
	// are ignored; BeforeIteration is not supported (the ft path's Hook
	// drives multi-device fault studies).
	Devices []*gpu.Device
	// DisableOverlap serializes the asynchronous device-to-host transfer
	// of the finished block with the trailing update instead of
	// overlapping them (ablation of the paper's optimization).
	DisableOverlap bool
	// DisableLookahead turns off the depth-1 lookahead schedule and
	// reverts to the fully serialized iteration (ablation). Under
	// lookahead — the default — iteration k's trailing update is split
	// into a priority part covering only panel k+1's columns and a
	// remainder part, and the host-side factorization of panel k+1 runs
	// concurrently with the remainder; results are bit-identical either
	// way.
	DisableLookahead bool
	// AfterIteration, if set, runs at the end of every blocked iteration.
	AfterIteration func(info IterInfo)
	// BeforeIteration, if set, runs before every blocked iteration with
	// access to the device-resident matrix and the host-side packed
	// result under assembly; fault campaigns use it to inject soft
	// errors at iteration boundaries (the paper's failure model and the
	// setting of Figure 2).
	BeforeIteration func(info IterInfo, dA *gpu.Matrix, host *matrix.Matrix)
	// Obs, if set, receives per-phase timers (panel, right_update,
	// left_update, d2h_overlap, ...), per-operation-family seconds, and
	// end-of-run lane gauges.
	Obs *obs.Registry
	// Trace, if set, scopes the run to a served request: every metric
	// series the device(s) emit gains a job=<id> label and the reduction
	// appears as a wall-clock span on the context's tracer.
	Trace *obs.TraceContext
}

// Result carries the factorization output and the simulated performance.
type Result struct {
	N  int
	NB int
	// BlockedIters is the number of blocked (panel) iterations executed.
	BlockedIters int
	// Packed is the LAPACK-layout result: H on and above the first
	// subdiagonal, Householder vectors below it.
	Packed *matrix.Matrix
	// Tau holds the reflector scalar factors.
	Tau []float64
	// SimSeconds is the simulated wall-clock of the whole reduction.
	SimSeconds float64
	// ModelGFLOPS is 10/3·N³ / SimSeconds / 1e9.
	ModelGFLOPS float64
}

// H extracts the upper Hessenberg factor.
func (r *Result) H() *matrix.Matrix {
	return lapack.HessFromPacked(r.N, r.Packed.Data, r.Packed.Stride)
}

// Q forms the orthogonal factor explicitly.
func (r *Result) Q() *matrix.Matrix {
	return lapack.Dorghr(r.N, r.Packed.Data, r.Packed.Stride, r.Tau)
}

// Reduce runs the hybrid Hessenberg reduction of a (not modified).
func Reduce(a *matrix.Matrix, opt Options) (*Result, error) {
	n := a.Rows
	if n != a.Cols {
		return nil, errors.New("hybrid: matrix must be square")
	}
	if len(opt.Devices) > 0 {
		return reduceMulti(a, opt)
	}
	if opt.Device == nil {
		return nil, errors.New("hybrid: Options.Device is required")
	}
	nb := opt.NB
	if nb <= 0 {
		nb = DefaultNB
	}
	dev := opt.Device
	pp := dev.Params
	if opt.Obs != nil {
		dev.SetObs(opt.Obs)
	}
	dev.SetJob(opt.Trace.JobID())
	sp := opt.Trace.Span("hybrid.reduce", opt.Trace.ParentSpan())
	defer opt.Trace.EndSpan(sp)
	ctx := opt.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	dev.SetContext(ctx)

	hostA := a.Clone()
	tau := make([]float64, max(n-1, 1))
	res := &Result{N: n, NB: nb, Packed: hostA, Tau: tau}
	if n <= 1 {
		return res, nil
	}

	// Algorithm 2, line 1: A → d_A.
	dev.SetPhase("setup")
	dA := dev.Alloc(n, n)
	dev.H2D(dA, 0, 0, hostA)

	dT := dev.Alloc(nb, nb)
	dY := dev.Alloc(n, nb)
	dW := dev.Alloc(n, nb)
	dVcol := dev.Alloc(n, 1)
	dYcol := dev.Alloc(n, 1)
	defer func() {
		dev.Free(dA)
		dev.Free(dT)
		dev.Free(dY)
		dev.Free(dW)
		dev.Free(dVcol)
		dev.Free(dYcol)
	}()

	tHost := matrix.New(nb, nb)
	yHost := matrix.New(n, nb)

	nx := nb
	if nx < 2 {
		nx = 2
	}
	lookahead := !opt.DisableLookahead
	var prevLeft sim.Event
	// panelReady gates the next panel's device-to-host transfer: under
	// lookahead it is the priority left update (which finishes only the
	// next panel's columns), otherwise the full left update.
	var panelReady sim.Event
	p := 0
	iter := 0
	for ; n-1-p > nx; p += nb {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		ib := min(nb, n-1-p)
		k := p + 1
		// la: this panel's columns were finished early by the previous
		// iteration's priority update, so its factorization overlaps the
		// remainder update still streaming on the device — the panel time
		// leaves the critical path ("panel_hidden").
		la := lookahead && iter > 0

		if opt.BeforeIteration != nil {
			dev.DeviceSynchronize()
			opt.BeforeIteration(IterInfo{Iter: iter, Panel: p, NB: ib, N: n}, dA, hostA)
		}

		// Line 3: send the lower part of the panel to the host. It is
		// valid once the update that last wrote the panel columns finished:
		// the previous iteration's full left update, or — under lookahead —
		// just its priority part.
		if la {
			dev.SetPhase("panel_hidden")
		} else {
			dev.SetPhase("panel")
		}
		panelLower := hostA.View(k, p, n-k, ib)
		dev.Sync(dev.D2HAsync(panelLower, dA, k, p, panelReady))

		// Line 4: hybrid panel factorization (CPU + per-column device
		// GEMV against the trailing matrix).
		if err := PanelFactor(dev, hostA, yHost, tHost, tau, dA, dVcol, dYcol, n, p, k, ib, la); err != nil {
			return nil, err
		}

		// Upload V and the factored panel, Y's lower rows, and T. The
		// panel columns are disjoint from everything still in flight, but
		// dY and dT are read by the previous iteration's remainder update,
		// so under lookahead their uploads must wait for it (prevLeft is
		// already in the past on the serialized schedule).
		dev.SetPhase("right_update")
		dev.H2D(dA, k, p, hostA.View(k, p, n-k, ib))
		dev.Sync(dev.H2DAsync(dY, k, 0, yHost.View(k, 0, n-k, ib), prevLeft))
		dev.Sync(dev.H2DAsync(dT, 0, 0, tHost.View(0, 0, ib, ib), prevLeft))

		// Compute Y's top rows on the device:
		// Y(0:k-1,:) = A(0:k-1, p+1:n-1)·V·T.
		e := dev.CopyBlock(dY, 0, 0, dA, 0, p+1, k, ib)
		e = dev.Trmm(blas.Right, blas.Lower, blas.NoTrans, blas.Unit, k, ib, 1, dA, k, p, dY, 0, 0, e)
		if n > k+ib {
			e = dev.Gemm(blas.NoTrans, blas.NoTrans, k, ib, n-k-ib, 1, dA, 0, p+ib+1, dA, k+ib, p, 1, dY, 0, 0, e)
		}
		ytopDone := dev.Trmm(blas.Right, blas.Upper, blas.NoTrans, blas.NonUnit, k, ib, 1, dT, 0, 0, dY, 0, 0, e)

		// Line 5, panel-column part of the right update to M:
		// A(0:k-1, p+1:p+ib-1) −= Y(0:k-1, 0:ib-2)·V1ᵀ.
		aDone := ytopDone
		if ib > 1 {
			aDone = dev.CopyBlock(dW, 0, 0, dY, 0, 0, k, ib-1, ytopDone)
			aDone = dev.Trmm(blas.Right, blas.Lower, blas.Trans, blas.Unit, k, ib-1, 1, dA, k, p, dW, 0, 0, aDone)
			aDone = dev.SubBlock(dA, 0, p+1, dW, 0, 0, k, ib-1, aDone)
		}

		// Lines 6+9: asynchronously send the finished leading block
		// (rows 0..k-1 of the panel columns — the last piece of H the
		// host is missing) while the device keeps updating G. The
		// DisableOverlap ablation instead performs the transfer
		// synchronously after the updates (below).
		finished := hostA.View(0, p, k, ib)
		if !opt.DisableOverlap {
			dev.SetPhase("d2h_overlap")
			dev.D2HAsync(finished, dA, 0, p, aDone)
			dev.SetPhase("right_update")
		}

		// EI corner trick: V's stored diagonal corner must read as 1
		// for the V-bottom right updates.
		ei := hostA.At(p+ib, p+ib-1)
		e1 := dev.Set(dA, p+ib, p+ib-1, 1, ytopDone)
		if ib2 := min(nb, n-1-(p+nb)); lookahead && n-1-(p+nb) > nx {
			// Lookahead split: finish the next panel's ib2 columns first
			// (priority right update + priority DLARFB), so the next
			// iteration's panel transfer and host factorization can start
			// while the remainder of the trailing update streams behind
			// them. Splitting a GEMM/DLARFB by output columns is exact:
			// every output element sees the same inputs in the same
			// accumulation order, so the digests match the serialized
			// schedule bit for bit.
			eGp := dev.Gemm(blas.NoTrans, blas.Trans, n-k, ib2, ib, -1, dY, k, 0, dA, p+ib, p, 1, dA, k, p+ib, e1)
			dev.SetPhase("left_update")
			panelReady = dev.Larfb(blas.Trans, n-k, ib2, ib, dA, k, p, dT, 0, 0, dA, k, p+ib, dW, eGp)
			dev.SetPhase("right_update")
			// Remainder: M's top rows (all trailing columns) and the
			// right/left updates of the columns past the next panel.
			eM := dev.Gemm(blas.NoTrans, blas.Trans, k, n-p-ib, ib, -1, dY, 0, 0, dA, p+ib, p, 1, dA, 0, p+ib, e1)
			eG := dev.Gemm(blas.NoTrans, blas.Trans, n-k, n-p-ib-ib2, ib, -1, dY, k, 0, dA, p+ib+ib2, p, 1, dA, k, p+ib+ib2, eM)
			eC := dev.Set(dA, p+ib, p+ib-1, ei, eG)
			dev.SetPhase("left_update")
			prevLeft = dev.Larfb(blas.Trans, n-k, n-p-ib-ib2, ib, dA, k, p, dT, 0, 0, dA, k, p+ib+ib2, dW, eC)
		} else {
			// Right update to M's trailing columns (line 5).
			eM := dev.Gemm(blas.NoTrans, blas.Trans, k, n-p-ib, ib, -1, dY, 0, 0, dA, p+ib, p, 1, dA, 0, p+ib, e1)
			// Line 7: right update to G.
			eG := dev.Gemm(blas.NoTrans, blas.Trans, n-k, n-p-ib, ib, -1, dY, k, 0, dA, p+ib, p, 1, dA, k, p+ib, eM)
			eC := dev.Set(dA, p+ib, p+ib-1, ei, eG)
			// Line 8: DLARFB left update of the trailing matrix.
			dev.SetPhase("left_update")
			prevLeft = dev.Larfb(blas.Trans, n-k, n-p-ib, ib, dA, k, p, dT, 0, 0, dA, k, p+ib, dW, eC)
			panelReady = prevLeft
		}
		if opt.DisableOverlap {
			// Ablation: transfer the finished block synchronously after
			// the trailing update instead of overlapping with it.
			dev.SetPhase("d2h_overlap")
			dev.Sync(dev.D2HAsync(finished, dA, 0, p, aDone, prevLeft))
		}

		if opt.AfterIteration != nil {
			opt.AfterIteration(IterInfo{Iter: iter, Panel: p, NB: ib, N: n})
		}
		iter++
	}
	res.BlockedIters = iter

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Bring the remaining trailing columns home and finish with the
	// unblocked reduction on the host.
	dev.SetPhase("cleanup")
	if p < n {
		rem := hostA.View(0, p, n, n-p)
		dev.Sync(dev.D2HAsync(rem, dA, 0, p, prevLeft))
	}
	work := make([]float64, n)
	dev.HostOp(cleanupCost(pp, n, p), func() {
		lapack.Dgehd2(n, p, hostA.Data, hostA.Stride, tau, work)
	})
	dev.DeviceSynchronize()
	dev.SetPhase("")
	dev.FinishRun()

	res.SimSeconds = dev.Elapsed()
	if res.SimSeconds > 0 {
		res.ModelGFLOPS = sim.HessenbergFlops(n) / res.SimSeconds / 1e9
	}
	return res, nil
}

// cleanupCost is the modeled CPU time of the trailing unblocked reduction
// starting at column p.
func cleanupCost(pp sim.Params, n, p int) float64 {
	cost := 0.0
	for c := p; c < n-1; c++ {
		m1 := n - 1 - c
		cost += 2 * pp.VecHost(m1)         // dlarfg
		cost += 2 * pp.GemvHost(n, m1)     // right dlarf (gemv + ger)
		cost += 2 * pp.GemvHost(m1, n-c-1) // left dlarf
	}
	return cost
}

// PanelFactor runs the hybrid DLAHR2 panel factorization for the panel
// starting at global column p (k = p+1 leading rows untouched), writing V
// and the factored columns into hostA, the reflector scalars into
// tau[p..p+ib-1], T into t, and Y's rows k..n-1 into y. The large
// matrix-vector product against the trailing matrix runs on the device.
//
// The device's attached context (Device.SetContext) is polled before
// each panel column; on cancellation PanelFactor abandons the
// half-factorized panel and returns the context error — the caller is
// expected to discard the whole computation.
//
// When la is set the factorization runs under the lookahead schedule:
// the previous iteration's remainder update is still streaming on the
// compute FIFO, so the per-column GEMVs issue on the device's lookahead
// stream instead, charged with the extra cost of the correction terms
// that reconcile the not-yet-applied remainder (on real hardware the
// lookahead GEMV folds Y·(Vᵀv) and V·(Sv) corrections per tile, the
// restructuring the online-ABFT GEMM literature uses). In the simulation
// kernels execute eagerly in program order, so the arithmetic — and
// therefore the result digest — is identical with and without la.
func PanelFactor(dev *gpu.Device, hostA, y, t *matrix.Matrix, tau []float64, dA *gpu.Matrix, dVcol, dYcol *gpu.Matrix, n, p, k, ib int, la bool) error {
	pp := dev.Params
	ldy := y.Stride
	ytmp := make([]float64, n-k)
	ytmpM := matrix.FromColMajor(n-k, 1, max(n-k, 1), ytmp)
	// Correction-term charge per lookahead GEMV: two skinny GEMVs against
	// V and Y (plus the left-update share), ≈ 3 device GEMVs of shape
	// (n-k)×ib, fused into the main GEMV's pass (extra operand streaming,
	// no extra launches).
	extra := pp.GemvDevice(n-k, 3*ib) - pp.KernelLaunchSec
	var pending sim.Event
	issue := func(i, c int) {
		vtail := hostA.View(p+ib, c, n-p-ib, 1)
		up := dev.H2DAsync(dVcol, 0, 0, vtail)
		var kg sim.Event
		if la {
			kg = dev.GemvLA(blas.NoTrans, n-k, n-p-ib, extra, 1, dA, k, p+ib, dVcol, 0, 0, 0, dYcol, 0, 0, up)
		} else {
			kg = dev.Gemv(blas.NoTrans, n-k, n-p-ib, 1, dA, k, p+ib, dVcol, 0, 0, 0, dYcol, 0, 0, up)
		}
		pending = dev.D2HAsync(ytmpM, dYcol, 0, 0, kg)
	}
	collect := func(i, c int) {
		dev.Sync(pending)
		dev.HostOp(pp.VecHost(n-k), func() {
			blas.Daxpy(n-k, 1, ytmp, 1, y.Data[i*ldy+k:], 1)
		})
	}
	return panelFactorWith(dev, pp, hostA, y, t, tau, n, p, k, ib, issue, collect)
}

// hostRunner abstracts where the panel factorization's serial CPU work
// is charged: the single device's host lane (legacy path) or the pool's
// main-host timeline (multi-device path).
type hostRunner interface {
	HostOp(cost float64, f func())
	CtxErr() error
}

// panelFactorWith is the DLAHR2 host math shared by the single- and
// multi-device paths. The per-column trailing-matrix GEMV
// y(k:n-1, i) += A(k:n-1, p+ib:n-1)·v runs on the device(s) in two
// halves: issueGemv starts it as soon as the reflector is final, and
// collectGemv waits and folds the partial(s) into y column i — the host
// column math that does not touch y_i (T's new column, the panel-part
// product) executes in between, hidden under the device round trip.
func panelFactorWith(dev hostRunner, pp sim.Params, hostA, y, t *matrix.Matrix, tau []float64, n, p, k, ib int, issueGemv, collectGemv func(i, c int)) error {
	a := hostA.Data
	lda := hostA.Stride
	ldy := y.Stride
	ldt := t.Stride
	var ei float64
	w := make([]float64, ib)

	for i := 0; i < ib; i++ {
		if err := dev.CtxErr(); err != nil {
			return err
		}
		c := p + i
		if i > 0 {
			// Update column i with the previous reflectors (Y part):
			// A(k:n-1, c) −= Y(k:n-1, 0:i-1)·A(k+i-1, p:p+i-1)ᵀ.
			dev.HostOp(pp.GemvHost(n-k, i), func() {
				blas.Dgemv(blas.NoTrans, n-k, i, -1, y.Data[k:], ldy, a[p*lda+k+i-1:], lda, 1, a[c*lda+k:], 1)
			})
			// Apply (I − V·Tᵀ·Vᵀ) to the column.
			dev.HostOp(pp.VecHost(i)+pp.GemvHost(i, i)/2, func() {
				blas.Dcopy(i, a[c*lda+k:], 1, w, 1)
				blas.Dtrmv(blas.Lower, blas.Trans, blas.Unit, i, a[p*lda+k:], lda, w, 1)
			})
			dev.HostOp(pp.GemvHost(n-k-i, i), func() {
				blas.Dgemv(blas.Trans, n-k-i, i, 1, a[p*lda+k+i:], lda, a[c*lda+k+i:], 1, 1, w, 1)
			})
			dev.HostOp(pp.GemvHost(i, i)/2, func() {
				blas.Dtrmv(blas.Upper, blas.Trans, blas.NonUnit, i, t.Data, ldt, w, 1)
			})
			dev.HostOp(pp.GemvHost(n-k-i, i), func() {
				blas.Dgemv(blas.NoTrans, n-k-i, i, -1, a[p*lda+k+i:], lda, w, 1, 1, a[c*lda+k+i:], 1)
			})
			dev.HostOp(pp.GemvHost(i, i)/2+pp.VecHost(i), func() {
				blas.Dtrmv(blas.Lower, blas.NoTrans, blas.Unit, i, a[p*lda+k:], lda, w, 1)
				blas.Daxpy(i, -1, w, 1, a[c*lda+k:], 1)
				// Restore the subdiagonal element of the previous column.
				a[(c-1)*lda+k+i-1] = ei
			})
		}
		// Generate the reflector annihilating A(k+i+1:n-1, c).
		dev.HostOp(2*pp.VecHost(n-k-i), func() {
			beta, tu := lapack.Dlarfg(n-k-i, a[c*lda+k+i], a[c*lda+min(k+i+1, n-1):], 1)
			tau[c] = tu
			ei = beta
			a[c*lda+k+i] = 1
		})
		// Start the device share of Y(k:n-1, i) = A(k:n-1, c+1:n-1)·v
		// right away (the per-column GPU GEMV of magma_dlahr2; sharded
		// per slab on the multi-device path) ...
		issueGemv(i, c)
		// ... and, while it is in flight, multiply the remaining panel
		// columns on the host ...
		if ib-1-i > 0 {
			dev.HostOp(pp.GemvHost(n-k, ib-1-i), func() {
				blas.Dgemv(blas.NoTrans, n-k, ib-1-i, 1, a[(c+1)*lda+k:], lda, a[c*lda+k+i:], 1, 0, y.Data[i*ldy+k:], 1)
			})
		} else {
			dev.HostOp(pp.VecHost(n-k), func() {
				col := y.Data[i*ldy+k : i*ldy+k+(n-k)]
				for r := range col {
					col[r] = 0
				}
			})
		}
		// ... and T(0:i-1, i) = V2ᵀ·v, which touches neither y_i nor the
		// device partials.
		dev.HostOp(pp.GemvHost(n-k-i, i), func() {
			blas.Dgemv(blas.Trans, n-k-i, i, 1, a[p*lda+k+i:], lda, a[c*lda+k+i:], 1, 0, t.Data[i*ldt:], 1)
		})
		// Fold the device partial(s) into y_i, then finish the column:
		// the Y cross-term correction needs the complete y_i.
		collectGemv(i, c)
		dev.HostOp(pp.GemvHost(n-k, i), func() {
			blas.Dgemv(blas.NoTrans, n-k, i, -1, y.Data[k:], ldy, t.Data[i*ldt:], 1, 1, y.Data[i*ldy+k:], 1)
		})
		dev.HostOp(pp.VecHost(n-k), func() {
			blas.Dscal(n-k, tau[c], y.Data[i*ldy+k:], 1)
		})
		// Finish column i of T.
		dev.HostOp(pp.VecHost(i)+pp.GemvHost(i, i)/2, func() {
			blas.Dscal(i, -tau[c], t.Data[i*ldt:], 1)
			blas.Dtrmv(blas.Upper, blas.NoTrans, blas.NonUnit, i, t.Data, ldt, t.Data[i*ldt:], 1)
			t.Data[i*ldt+i] = tau[c]
		})
	}
	dev.HostOp(pp.VecHost(1), func() {
		a[(p+ib-1)*lda+k+ib-1] = ei
	})
	return nil
}
