package hybrid

import (
	"context"
	"errors"

	"repro/internal/blas"
	"repro/internal/gpu"
	"repro/internal/lapack"
	"repro/internal/matrix"
	"repro/internal/sim"
)

// ReduceSym runs the hybrid symmetric tridiagonal reduction (the DSYTRD
// sibling of Reduce, MAGMA's magma_dsytrd work split): the symmetric
// matrix lives on the device (lower triangle referenced), each panel is
// factorized on the CPU with the large symmetric matrix-vector product
// per column executed on the device, and the rank-2k trailing update runs
// on the device. This is the substrate for the paper's future-work
// direction ("the rest of the hybrid two-sided factorizations"); the
// fault-tolerant layer over it lives in internal/ftsym.
func ReduceSym(a *matrix.Matrix, opt Options) (*SymResult, error) {
	n := a.Rows
	if n != a.Cols {
		return nil, errors.New("hybrid: matrix must be square")
	}
	if opt.Device == nil {
		return nil, errors.New("hybrid: Options.Device is required")
	}
	nb := opt.NB
	if nb <= 0 {
		nb = DefaultNB
	}
	dev := opt.Device
	pp := dev.Params
	if opt.Obs != nil {
		dev.SetObs(opt.Obs)
	}
	dev.SetJob(opt.Trace.JobID())
	sp := opt.Trace.Span("hybrid.reduce_sym", opt.Trace.ParentSpan())
	defer opt.Trace.EndSpan(sp)
	ctx := opt.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	dev.SetContext(ctx)

	hostA := a.Clone()
	res := &SymResult{
		N: n, NB: nb,
		D:      make([]float64, max(n, 1)),
		E:      make([]float64, max(n-1, 1)),
		Tau:    make([]float64, max(n-1, 1)),
		Packed: hostA,
	}
	if n <= 1 {
		if n == 1 {
			res.D[0] = hostA.At(0, 0)
		}
		return res, nil
	}

	dev.SetPhase("setup")
	dA := dev.Alloc(n, n)
	dev.H2D(dA, 0, 0, hostA)
	dVcol := dev.Alloc(n, 1)
	dYcol := dev.Alloc(n, 1)
	dW := dev.Alloc(n, nb)
	defer func() {
		dev.Free(dA)
		dev.Free(dVcol)
		dev.Free(dYcol)
		dev.Free(dW)
	}()

	wHost := matrix.New(n, nb)
	nx := max(nb, 2)
	var prevUpd sim.Event
	p := 0
	for ; n-p > nx+nb; p += nb {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		np := n - p
		// Panel (lower part of columns p..p+nb-1) to the host.
		dev.SetPhase("panel")
		panel := hostA.View(p, p, np, nb)
		dev.Sync(dev.D2HAsync(panel, dA, p, p, prevUpd))

		// Hybrid DLATRD: CPU panel ops, device SYMV per column.
		symPanel(dev, hostA, wHost, res.E, res.Tau, dA, dVcol, dYcol, n, p, nb)

		// Upload the factored panel and W's trailing rows, then apply the
		// rank-2k trailing update on the device.
		dev.SetPhase("trailing_update")
		dev.H2D(dA, p, p, hostA.View(p, p, np, nb))
		dev.H2D(dW, nb, 0, wHost.View(nb, 0, np-nb, nb))
		prevUpd = dev.Syr2k(blas.Lower, np-nb, nb, -1, dA, p+nb, p, dW, nb, 0, 1, dA, p+nb, p+nb)

		// Restore the subdiagonal entries and record the diagonal, as
		// DSYTRD does after the SYR2K; mirror the fix to the device.
		for j := p; j < p+nb; j++ {
			hostA.Set(j+1, j, res.E[j])
			res.D[j] = hostA.At(j, j)
		}
		prevUpd = dev.Set(dA, p+nb, p+nb-1, res.E[p+nb-1], prevUpd)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Remaining block: host-side unblocked reduction.
	dev.SetPhase("cleanup")
	if p < n {
		rem := hostA.View(p, p, n-p, n-p)
		dev.Sync(dev.D2HAsync(rem, dA, p, p, prevUpd))
	}
	dev.HostOp(symCleanupCost(pp, n-p), func() {
		lapack.Dsytd2(n-p, hostA.Data[p*hostA.Stride+p:], hostA.Stride, res.D[p:], res.E[p:], res.Tau[p:])
	})
	dev.DeviceSynchronize()
	dev.SetPhase("")
	dev.FinishRun()

	res.SimSeconds = dev.Elapsed()
	if res.SimSeconds > 0 {
		// Tridiagonal reduction costs 4/3·N³ flops.
		res.ModelGFLOPS = 4.0 / 3.0 * float64(n) * float64(n) * float64(n) / res.SimSeconds / 1e9
	}
	return res, nil
}

// SymResult carries the hybrid tridiagonalization output.
type SymResult struct {
	N, NB int
	// D, E: the tridiagonal factor. Packed/Tau: the reflectors
	// (Dorghr-compatible layout).
	D, E   []float64
	Packed *matrix.Matrix
	Tau    []float64
	// SimSeconds / ModelGFLOPS: simulated performance (4/3·N³ flops).
	SimSeconds  float64
	ModelGFLOPS float64
}

// Q forms the orthogonal factor explicitly.
func (r *SymResult) Q() *matrix.Matrix {
	return lapack.Dorghr(r.N, r.Packed.Data, r.Packed.Stride, r.Tau)
}

// T builds the dense tridiagonal factor.
func (r *SymResult) T() *matrix.Matrix {
	t := matrix.New(r.N, r.N)
	for i := 0; i < r.N; i++ {
		t.Set(i, i, r.D[i])
		if i > 0 {
			t.Set(i, i-1, r.E[i-1])
			t.Set(i-1, i, r.E[i-1])
		}
	}
	return t
}

// symCleanupCost models the host-side unblocked DSYTD2 on an m×m block.
func symCleanupCost(pp sim.Params, m int) float64 {
	cost := 0.0
	for c := 0; c < m-1; c++ {
		k := m - 1 - c
		cost += 2 * pp.VecHost(k)     // dlarfg
		cost += pp.GemvHost(k, k) / 2 // dsymv (half the matrix)
		cost += 2 * pp.VecHost(k)     // dot + axpy
		cost += pp.GemvHost(k, k) / 2 // dsyr2
	}
	return cost
}

// symPanel runs the hybrid DLATRD for the panel at p: all level-1/2 panel
// arithmetic on the host (charged to the host timeline), with the large
// symmetric matrix-vector product per column dispatched to the device —
// the same CPU/GPU split as PanelFactor uses for DLAHR2.
func symPanel(dev *gpu.Device, hostA, w *matrix.Matrix, e, tau []float64, dA *gpu.Matrix, dVcol, dYcol *gpu.Matrix, n, p, nb int) {
	pp := dev.Params
	a := hostA.Data
	lda := hostA.Stride
	ldw := w.Stride
	np := n - p
	ytmp := make([]float64, np)
	ytmpM := matrix.FromColMajor(np, 1, max(np, 1), ytmp)

	for i := 0; i < nb; i++ {
		gi := p + i // global column
		// Update A(gi:n-1, gi) with the panel computed so far.
		dev.HostOp(2*pp.GemvHost(np-i, i), func() {
			blas.Dgemv(blas.NoTrans, np-i, i, -1, a[p*lda+gi:], lda, w.Data[i:], ldw, 1, a[gi*lda+gi:], 1)
			blas.Dgemv(blas.NoTrans, np-i, i, -1, w.Data[i:], ldw, a[p*lda+gi:], lda, 1, a[gi*lda+gi:], 1)
		})
		// Generate the reflector annihilating A(gi+2:n-1, gi).
		dev.HostOp(2*pp.VecHost(np-i-1), func() {
			beta, taui := lapack.Dlarfg(np-i-1, a[gi*lda+gi+1], a[gi*lda+min(gi+2, n-1):], 1)
			e[gi] = beta
			tau[gi] = taui
			a[gi*lda+gi+1] = 1
		})
		// Device: the big symmetric matrix-vector product
		// W(i+1:, i) = A(gi+1:, gi+1:)·v (block-start values, which the
		// device still holds for this iteration).
		m := np - i - 1
		up := dev.H2DAsync(dVcol, 0, 0, hostA.View(gi+1, gi, m, 1))
		kg := dev.Symv(blas.Lower, m, 1, dA, gi+1, gi+1, dVcol, 0, 0, 0, dYcol, 0, 0, up)
		dev.Sync(dev.D2HAsync(ytmpM.View(0, 0, m, 1), dYcol, 0, 0, kg))
		dev.HostOp(pp.VecHost(m), func() {
			blas.Dcopy(m, ytmp, 1, w.Data[i*ldw+i+1:], 1)
		})
		// Host: the four cross-term corrections, the tau scaling, and the
		// v-orthogonalization (reference DLATRD order).
		dev.HostOp(4*pp.GemvHost(m, i)+3*pp.VecHost(m), func() {
			v := a[gi*lda+gi+1:]
			blas.Dgemv(blas.Trans, m, i, 1, w.Data[i+1:], ldw, v, 1, 0, w.Data[i*ldw:], 1)
			blas.Dgemv(blas.NoTrans, m, i, -1, a[p*lda+gi+1:], lda, w.Data[i*ldw:], 1, 1, w.Data[i*ldw+i+1:], 1)
			blas.Dgemv(blas.Trans, m, i, 1, a[p*lda+gi+1:], lda, v, 1, 0, w.Data[i*ldw:], 1)
			blas.Dgemv(blas.NoTrans, m, i, -1, w.Data[i+1:], ldw, w.Data[i*ldw:], 1, 1, w.Data[i*ldw+i+1:], 1)
			blas.Dscal(m, tau[gi], w.Data[i*ldw+i+1:], 1)
			alpha := -0.5 * tau[gi] * blas.Ddot(m, w.Data[i*ldw+i+1:], 1, v, 1)
			blas.Daxpy(m, alpha, v, 1, w.Data[i*ldw+i+1:], 1)
		})
	}
}
