package hybrid

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/gpu"
	"repro/internal/lapack"
	"repro/internal/matrix"
	"repro/internal/sim"
)

func newDev() *gpu.Device { return gpu.New(sim.K40c(), gpu.Real) }

// lapackReduce is the reference: plain host DGEHRD.
func lapackReduce(a *matrix.Matrix, nb int) (*matrix.Matrix, []float64) {
	n := a.Rows
	packed := a.Clone()
	tau := make([]float64, max(n-1, 1))
	lapack.Dgehrd(n, nb, packed.Data, packed.Stride, tau)
	return packed, tau
}

func TestReduceMatchesLAPACK(t *testing.T) {
	for _, tc := range []struct{ n, nb int }{
		{20, 4}, {33, 8}, {64, 16}, {95, 32}, {128, 32},
	} {
		a := matrix.Random(tc.n, tc.n, uint64(tc.n))
		res, err := Reduce(a, Options{NB: tc.nb, Device: newDev()})
		if err != nil {
			t.Fatal(err)
		}
		refPacked, refTau := lapackReduce(a, tc.nb)
		if d := res.Packed.Sub(refPacked).MaxAbs(); d > 1e-11 {
			t.Fatalf("n=%d nb=%d: hybrid packed differs from LAPACK by %v", tc.n, tc.nb, d)
		}
		for i := range refTau {
			if math.Abs(res.Tau[i]-refTau[i]) > 1e-11 {
				t.Fatalf("n=%d nb=%d: tau[%d] %v vs %v", tc.n, tc.nb, i, res.Tau[i], refTau[i])
			}
		}
	}
}

func TestReduceResiduals(t *testing.T) {
	n := 100
	a := matrix.Random(n, n, 9)
	res, err := Reduce(a, Options{NB: 16, Device: newDev()})
	if err != nil {
		t.Fatal(err)
	}
	h := res.H()
	if !h.IsUpperHessenberg(0) {
		t.Fatal("H not upper Hessenberg")
	}
	q := res.Q()
	if r := lapack.FactorizationResidual(a, q, h); r > 1e-14 {
		t.Fatalf("‖A−QHQᵀ‖/(N‖A‖) = %v", r)
	}
	if r := lapack.OrthogonalityResidual(q); r > 1e-13 {
		t.Fatalf("‖QQᵀ−I‖/N = %v", r)
	}
}

func TestReduceInputNotModified(t *testing.T) {
	a := matrix.Random(40, 40, 3)
	orig := a.Clone()
	if _, err := Reduce(a, Options{NB: 8, Device: newDev()}); err != nil {
		t.Fatal(err)
	}
	if !a.Equal(orig) {
		t.Fatal("Reduce modified its input")
	}
}

func TestReduceSmallSizes(t *testing.T) {
	for n := 0; n <= 6; n++ {
		a := matrix.Random(n, n, uint64(n+1))
		res, err := Reduce(a, Options{NB: 4, Device: newDev()})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if n == 0 {
			continue
		}
		h := res.H()
		q := res.Q()
		if r := lapack.FactorizationResidual(a, q, h); r > 1e-13 {
			t.Fatalf("n=%d: residual %v", n, r)
		}
	}
}

func TestReduceErrors(t *testing.T) {
	if _, err := Reduce(matrix.New(3, 4), Options{Device: newDev()}); err == nil {
		t.Fatal("non-square must error")
	}
	if _, err := Reduce(matrix.New(3, 3), Options{}); err == nil {
		t.Fatal("missing device must error")
	}
}

func TestAfterIterationHook(t *testing.T) {
	n, nb := 100, 16
	a := matrix.Random(n, n, 4)
	var iters []IterInfo
	_, err := Reduce(a, Options{NB: nb, Device: newDev(), AfterIteration: func(it IterInfo) {
		iters = append(iters, it)
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(iters) == 0 {
		t.Fatal("hook never called")
	}
	for i, it := range iters {
		if it.Iter != i || it.Panel != i*nb || it.NB != nb || it.N != n {
			t.Fatalf("iteration info %d wrong: %+v", i, it)
		}
	}
}

func TestSimulatedTimePositiveAndOverlapHelps(t *testing.T) {
	n := 192
	a := matrix.Random(n, n, 8)
	over, err := Reduce(a, Options{NB: 32, Device: newDev()})
	if err != nil {
		t.Fatal(err)
	}
	serial, err := Reduce(a, Options{NB: 32, Device: newDev(), DisableOverlap: true})
	if err != nil {
		t.Fatal(err)
	}
	if over.SimSeconds <= 0 || over.ModelGFLOPS <= 0 {
		t.Fatalf("bad sim stats: %v s, %v GFLOPS", over.SimSeconds, over.ModelGFLOPS)
	}
	if serial.SimSeconds < over.SimSeconds {
		t.Fatalf("disabling overlap should not be faster: %v vs %v", serial.SimSeconds, over.SimSeconds)
	}
	// The numerical result must be identical either way.
	if !serial.Packed.Equal(over.Packed) {
		t.Fatal("overlap ablation changed the numerics")
	}
}

func TestCostOnlyMatchesRealTime(t *testing.T) {
	n := 96
	a := matrix.Random(n, n, 6)
	real1, err := Reduce(a, Options{NB: 16, Device: gpu.New(sim.K40c(), gpu.Real)})
	if err != nil {
		t.Fatal(err)
	}
	cost, err := Reduce(a, Options{NB: 16, Device: gpu.New(sim.K40c(), gpu.CostOnly)})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(real1.SimSeconds-cost.SimSeconds) > 1e-9*real1.SimSeconds {
		t.Fatalf("cost-only sim time %v differs from real %v", cost.SimSeconds, real1.SimSeconds)
	}
}

func TestModelGFLOPSGrowWithN(t *testing.T) {
	// The hybrid algorithm's efficiency must improve with matrix size
	// (the shape of the paper's Figure 6 GFLOPS curves).
	small, err := Reduce(matrix.Random(64, 64, 1), Options{NB: 32, Device: gpu.New(sim.K40c(), gpu.CostOnly)})
	if err != nil {
		t.Fatal(err)
	}
	big, err := Reduce(matrix.Random(512, 512, 1), Options{NB: 32, Device: gpu.New(sim.K40c(), gpu.CostOnly)})
	if err != nil {
		t.Fatal(err)
	}
	if big.ModelGFLOPS <= small.ModelGFLOPS {
		t.Fatalf("GFLOPS should grow with N: %v (64) vs %v (512)", small.ModelGFLOPS, big.ModelGFLOPS)
	}
}

// Property: hybrid equals unblocked LAPACK for random sizes and blocks.
func TestPropHybridEqualsLAPACK(t *testing.T) {
	f := func(seed uint64) bool {
		n := 10 + int(seed%40)
		nb := 2 + int((seed>>8)%10)
		a := matrix.RandomNormal(n, n, seed)
		res, err := Reduce(a, Options{NB: nb, Device: newDev()})
		if err != nil {
			return false
		}
		ref, _ := lapackReduce(a, nb)
		return res.Packed.Sub(ref).MaxAbs() < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}
