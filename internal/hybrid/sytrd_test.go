package hybrid

import (
	"math"
	"testing"

	"repro/internal/gpu"
	"repro/internal/lapack"
	"repro/internal/matrix"
	"repro/internal/sim"
)

func randomSymmetric(n int, seed uint64) *matrix.Matrix {
	a := matrix.Random(n, n, seed)
	for j := 0; j < n; j++ {
		for i := 0; i < j; i++ {
			a.Set(i, j, a.At(j, i))
		}
	}
	return a
}

func TestReduceSymMatchesCPU(t *testing.T) {
	for _, tc := range []struct{ n, nb int }{{64, 8}, {100, 16}, {150, 32}, {97, 16}} {
		a := randomSymmetric(tc.n, uint64(tc.n))
		res, err := ReduceSym(a, Options{NB: tc.nb, Device: newDev()})
		if err != nil {
			t.Fatal(err)
		}
		d := make([]float64, tc.n)
		e := make([]float64, tc.n-1)
		tau := make([]float64, tc.n-1)
		ref := a.Clone()
		lapack.Dsytrd(tc.n, tc.nb, ref.Data, ref.Stride, d, e, tau)
		for i := 0; i < tc.n; i++ {
			if math.Abs(res.D[i]-d[i]) > 1e-11 {
				t.Fatalf("n=%d nb=%d: d[%d] %v vs %v", tc.n, tc.nb, i, res.D[i], d[i])
			}
		}
		for i := 0; i < tc.n-1; i++ {
			if math.Abs(res.E[i]-e[i]) > 1e-11 {
				t.Fatalf("n=%d nb=%d: e[%d] %v vs %v", tc.n, tc.nb, i, res.E[i], e[i])
			}
			if math.Abs(res.Tau[i]-tau[i]) > 1e-11 {
				t.Fatalf("n=%d nb=%d: tau[%d] %v vs %v", tc.n, tc.nb, i, res.Tau[i], tau[i])
			}
		}
	}
}

func TestReduceSymResidual(t *testing.T) {
	n := 120
	a := randomSymmetric(n, 3)
	res, err := ReduceSym(a, Options{NB: 16, Device: newDev()})
	if err != nil {
		t.Fatal(err)
	}
	if r := lapack.FactorizationResidual(a, res.Q(), res.T()); r > 1e-14 {
		t.Fatalf("‖A−QTQᵀ‖/(N‖A‖) = %v", r)
	}
	if r := lapack.OrthogonalityResidual(res.Q()); r > 1e-13 {
		t.Fatalf("orthogonality %v", r)
	}
}

func TestReduceSymInputUnchangedAndTiny(t *testing.T) {
	a := randomSymmetric(50, 4)
	orig := a.Clone()
	if _, err := ReduceSym(a, Options{NB: 8, Device: newDev()}); err != nil {
		t.Fatal(err)
	}
	if !a.Equal(orig) {
		t.Fatal("input modified")
	}
	for n := 0; n <= 3; n++ {
		if _, err := ReduceSym(randomSymmetric(n, 1), Options{NB: 4, Device: newDev()}); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
	if _, err := ReduceSym(matrix.New(2, 3), Options{Device: newDev()}); err == nil {
		t.Fatal("non-square accepted")
	}
	if _, err := ReduceSym(matrix.New(2, 2), Options{}); err == nil {
		t.Fatal("nil device accepted")
	}
}

func TestReduceSymEigenvalues(t *testing.T) {
	// Laplacian spectrum through the hybrid path.
	n := 100
	lap := matrix.New(n, n)
	for i := 0; i < n; i++ {
		lap.Set(i, i, 2)
		if i > 0 {
			lap.Set(i, i-1, -1)
			lap.Set(i-1, i, -1)
		}
	}
	// Densify with an orthogonal similarity.
	g, err := Reduce(matrix.Random(n, n, 9), Options{NB: 16, Device: newDev()})
	if err != nil {
		t.Fatal(err)
	}
	q := g.Q()
	tmp := matrix.New(n, n)
	dense := matrix.New(n, n)
	mulNN(tmp, q, lap)
	mulNT(dense, tmp, q)

	res, err := ReduceSym(dense, Options{NB: 16, Device: newDev()})
	if err != nil {
		t.Fatal(err)
	}
	d := append([]float64(nil), res.D...)
	e := append([]float64(nil), res.E...)
	if err := lapack.Dsterf(n, d, e); err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= n; k++ {
		want := 2 - 2*math.Cos(float64(k)*math.Pi/float64(n+1))
		if math.Abs(d[k-1]-want) > 1e-10 {
			t.Fatalf("λ_%d = %v, want %v", k, d[k-1], want)
		}
	}
}

func TestReduceSymCostOnlyParity(t *testing.T) {
	n := 120
	a := randomSymmetric(n, 5)
	r1, err := ReduceSym(a, Options{NB: 16, Device: gpu.New(sim.K40c(), gpu.Real)})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := ReduceSym(a, Options{NB: 16, Device: gpu.New(sim.K40c(), gpu.CostOnly)})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r1.SimSeconds-r2.SimSeconds) > 1e-9*r1.SimSeconds {
		t.Fatalf("cost-only time %v differs from real %v", r2.SimSeconds, r1.SimSeconds)
	}
	if r1.ModelGFLOPS <= 0 {
		t.Fatalf("GFLOPS %v", r1.ModelGFLOPS)
	}
}

func mulNN(dst, a, b *matrix.Matrix) {
	for i := 0; i < dst.Rows; i++ {
		for j := 0; j < dst.Cols; j++ {
			s := 0.0
			for k := 0; k < a.Cols; k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			dst.Set(i, j, s)
		}
	}
}

func mulNT(dst, a, b *matrix.Matrix) {
	for i := 0; i < dst.Rows; i++ {
		for j := 0; j < dst.Cols; j++ {
			s := 0.0
			for k := 0; k < a.Cols; k++ {
				s += a.At(i, k) * b.At(j, k)
			}
			dst.Set(i, j, s)
		}
	}
}
