// Multi-device reduction: the trailing matrix is sharded block-column
// wise across a devpool.Pool, each slab stays resident on its owner for
// the whole factorization, and the per-iteration panel products (dense
// V, T, Y) are broadcast. Host-side synchronization happens only at the
// per-column panel GEMV partials and the Y-top AllReduce — the paper's
// hybrid schedule with the trailing update fanned out over K devices.
//
// Determinism: the slab grid depends only on (n, nb) and every
// cross-slab contraction is combined on the host in ascending slab
// order, so H, Q and tau are bit-identical at every device count.
package hybrid

import (
	"context"
	"errors"

	"repro/internal/devpool"
	"repro/internal/lapack"
	"repro/internal/matrix"
	"repro/internal/sim"
)

// PanelFactorMulti runs the hybrid DLAHR2 panel factorization with the
// per-column trailing-matrix GEMV sharded across the pool: each owner
// computes its slabs' partials and the host combines them in ascending
// slab order (see PanelFactor for the single-device variant and the
// meaning of the arguments). With la the per-slab GEMVs run on each
// device's lookahead stream, overlapping the previous iteration's
// remainder update (see Shard.PanelGemvIssue).
func PanelFactorMulti(sh *devpool.Shard, hostA, y, t *matrix.Matrix, tau []float64, n, p, k, ib int, la bool) error {
	pool := sh.Pool
	return panelFactorWith(pool, pool.Params, hostA, y, t, tau, n, p, k, ib,
		func(i, c int) { sh.PanelGemvIssue(hostA, i, p, k, ib, la) },
		func(i, c int) { sh.PanelGemvCollect(y, i, k) })
}

// reduceMulti is the multi-device body of Reduce, selected when
// Options.Devices is non-empty.
func reduceMulti(a *matrix.Matrix, opt Options) (*Result, error) {
	n := a.Rows
	if opt.BeforeIteration != nil {
		return nil, errors.New("hybrid: BeforeIteration is not supported on the multi-device path (use the ft package's Hook)")
	}
	nb := opt.NB
	if nb <= 0 {
		nb = DefaultNB
	}
	pool := devpool.Wrap(opt.Devices)
	pp := pool.Params
	if opt.Obs != nil {
		pool.SetObs(opt.Obs)
	}
	pool.SetJob(opt.Trace.JobID())
	sp := opt.Trace.Span("hybrid.reduce_multi", opt.Trace.ParentSpan())
	defer opt.Trace.EndSpan(sp)
	ctx := opt.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	pool.SetContext(ctx)

	hostA := a.Clone()
	tau := make([]float64, max(n-1, 1))
	res := &Result{N: n, NB: nb, Packed: hostA, Tau: tau}
	if n <= 1 {
		return res, nil
	}

	pool.SetPhase("setup")
	sh := devpool.NewShard(pool, n, nb, 0)
	defer sh.Free()
	sh.Upload(hostA)

	tHost := matrix.New(nb, nb)
	yHost := matrix.New(n, nb)

	lookahead := !opt.DisableLookahead
	nx := nb
	if nx < 2 {
		nx = 2
	}
	p := 0
	iter := 0
	for ; n-1-p > nx; p += nb {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		ib := min(nb, n-1-p)
		k := p + 1

		// Panel to the host, factorize with sharded trailing GEMVs. After
		// the first iteration of a lookahead run these columns were
		// priority-updated ahead of the remainder, so the offload and the
		// host factorization hide under the in-flight trailing update.
		la := lookahead && iter > 0
		if la {
			pool.SetPhase("panel_hidden")
		} else {
			pool.SetPhase("panel")
		}
		sh.PanelD2H(hostA, p, k, ib)
		if err := PanelFactorMulti(sh, hostA, yHost, tHost, tau, n, p, k, ib, la); err != nil {
			return nil, err
		}

		// Broadcast the panel products, assemble Y's top rows on the
		// host (AllReduce over per-slab partials), and apply the two
		// trailing updates slab-locally on every owner — the next panel's
		// columns first (priority), then the remainder. The stored
		// subdiagonal beta needs no EI corner trick here: the dense
		// broadcast V carries the unit diagonal explicitly.
		pool.SetPhase("right_update")
		sh.Broadcast(hostA, tHost, p, k, ib)
		sh.YTop(yHost, tHost, p, k, ib)
		sh.BroadcastY(yHost, ib)
		if lookahead && n-1-(p+nb) > nx {
			sh.PriorityUpdate(p, k, ib, nb)
		}
		sh.RightUpdate(p, k, ib)
		pool.SetPhase("left_update")
		sh.LeftUpdate(p, k, ib)

		if opt.AfterIteration != nil {
			opt.AfterIteration(IterInfo{Iter: iter, Panel: p, NB: ib, N: n})
		}
		iter++
	}
	res.BlockedIters = iter

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// One gather at the end replaces the per-iteration finished-block
	// transfers of the single-device schedule: the slabs are
	// authoritative for the whole matrix, so this also delivers the
	// finished block columns in a single sweep.
	pool.SetPhase("cleanup")
	sh.Gather(hostA)
	work := make([]float64, n)
	pool.HostOp(cleanupCost(pp, n, p), func() {
		lapack.Dgehd2(n, p, hostA.Data, hostA.Stride, tau, work)
	})
	pool.WaitAll()
	pool.SetPhase("")
	pool.FinishRun()

	res.SimSeconds = pool.Elapsed()
	if res.SimSeconds > 0 {
		res.ModelGFLOPS = sim.HessenbergFlops(n) / res.SimSeconds / 1e9
	}
	return res, nil
}
