package lapack

import (
	"errors"
	"math"

	"repro/internal/blas"
	"repro/internal/matrix"
)

// Dhseqr2 is the EISPACK HQR2 lineage: the Francis double-shift QR
// iteration on an upper Hessenberg matrix with accumulation of the
// transformations and back-substitution for the eigenvectors. On entry h
// is upper Hessenberg and z holds the orthogonal matrix that produced it
// (Dorghr's Q, or I). On exit h holds the quasi-triangular real Schur
// factor (1×1 and 2×2 diagonal blocks, eigenvalues written back into the
// blocks), z the eigenvectors of the *original* matrix: a real eigenvalue
// owns one column; a complex pair λ = p ± q·i (q > 0 stored first) owns
// two consecutive columns holding the real and imaginary parts.
func Dhseqr2(n int, h *matrix.Matrix, z *matrix.Matrix, wr, wi []float64) error {
	return dhseqr2(n, h, z, wr, wi, true)
}

// DhseqrSchur computes the real Schur decomposition A = Z·T·Zᵀ: on exit h
// holds the quasi-triangular T and z the orthogonal Schur vectors (z must
// enter holding the reduction's Q, or I). No eigenvector
// back-substitution is performed.
func DhseqrSchur(n int, h *matrix.Matrix, z *matrix.Matrix, wr, wi []float64) error {
	return dhseqr2(n, h, z, wr, wi, false)
}

func dhseqr2(n int, h *matrix.Matrix, z *matrix.Matrix, wr, wi []float64, vectors bool) error {
	if n == 0 {
		return nil
	}
	at := h.At
	set := h.Set

	norm := 0.0
	for i := 0; i < n; i++ {
		for j := max(i-1, 0); j < n; j++ {
			norm += math.Abs(at(i, j))
		}
	}
	if norm == 0 {
		for i := 0; i < n; i++ {
			wr[i], wi[i] = 0, 0
		}
		return nil
	}

	en := n - 1
	t := 0.0
	var p, q, r, x, y, zz, w, s float64
	for en >= 0 {
		its := 0
		na := en - 1
		for {
			// Look for a single small subdiagonal element.
			var l int
			for l = en; l >= 1; l-- {
				s = math.Abs(at(l-1, l-1)) + math.Abs(at(l, l))
				if s == 0 {
					s = norm
				}
				if math.Abs(at(l, l-1)) <= macheps*s {
					set(l, l-1, 0)
					break
				}
			}
			if l < 0 {
				l = 0
			}
			x = at(en, en)
			if l == en {
				// One root found; write it back for the Schur form.
				set(en, en, x+t)
				wr[en] = x + t
				wi[en] = 0
				en--
				break
			}
			y = at(na, na)
			w = at(en, na) * at(na, en)
			if l == na {
				// Two roots found.
				p = (y - x) / 2
				q = p*p + w
				zz = math.Sqrt(math.Abs(q))
				x += t
				set(en, en, x)
				set(na, na, y+t)
				if q >= 0 {
					// Real pair: rotate to triangularize the 2×2 block.
					zz = p + sign(zz, p)
					wr[na] = x + zz
					wr[en] = wr[na]
					if zz != 0 {
						wr[en] = x - w/zz
					}
					wi[na], wi[en] = 0, 0
					x = at(en, na)
					s = math.Abs(x) + math.Abs(zz)
					p = x / s
					q = zz / s
					r = math.Sqrt(p*p + q*q)
					p /= r
					q /= r
					for j := na; j < n; j++ {
						zz = at(na, j)
						set(na, j, q*zz+p*at(en, j))
						set(en, j, q*at(en, j)-p*zz)
					}
					for i := 0; i <= en; i++ {
						zz = at(i, na)
						set(i, na, q*zz+p*at(i, en))
						set(i, en, q*at(i, en)-p*zz)
					}
					for i := 0; i < n; i++ {
						zz = z.At(i, na)
						z.Set(i, na, q*zz+p*z.At(i, en))
						z.Set(i, en, q*z.At(i, en)-p*zz)
					}
				} else {
					// Complex pair.
					wr[na] = x + p
					wr[en] = x + p
					wi[na] = zz
					wi[en] = -zz
				}
				en -= 2
				break
			}
			if its == 40 {
				return ErrNoConvergence
			}
			if its == 10 || its == 20 || its == 30 {
				// Exceptional shift.
				t += x
				for i := 0; i <= en; i++ {
					set(i, i, at(i, i)-x)
				}
				s = math.Abs(at(en, na)) + math.Abs(at(na, en-2))
				y = 0.75 * s
				x = y
				w = -0.4375 * s * s
			}
			its++
			// Two consecutive small subdiagonals.
			var m int
			for m = en - 2; m >= l; m-- {
				zz = at(m, m)
				r = x - zz
				s = y - zz
				p = (r*s-w)/at(m+1, m) + at(m, m+1)
				q = at(m+1, m+1) - zz - r - s
				r = at(m+2, m+1)
				s = math.Abs(p) + math.Abs(q) + math.Abs(r)
				p /= s
				q /= s
				r /= s
				if m == l {
					break
				}
				u := math.Abs(at(m, m-1)) * (math.Abs(q) + math.Abs(r))
				v := math.Abs(p) * (math.Abs(at(m-1, m-1)) + math.Abs(zz) + math.Abs(at(m+1, m+1)))
				if u <= macheps*v {
					break
				}
			}
			if m < l {
				m = l
			}
			for i := m + 2; i <= en; i++ {
				set(i, i-2, 0)
				if i != m+2 {
					set(i, i-3, 0)
				}
			}
			// Double QR sweep, transformations applied full-width and
			// accumulated into z.
			for k := m; k <= na; k++ {
				notlast := k != na
				if k != m {
					p = at(k, k-1)
					q = at(k+1, k-1)
					r = 0
					if notlast {
						r = at(k+2, k-1)
					}
					x = math.Abs(p) + math.Abs(q) + math.Abs(r)
					if x == 0 {
						continue
					}
					p /= x
					q /= x
					r /= x
				}
				s = sign(math.Sqrt(p*p+q*q+r*r), p)
				if s == 0 {
					continue
				}
				if k != m {
					set(k, k-1, -s*x)
				} else if l != m {
					set(k, k-1, -at(k, k-1))
				}
				p += s
				x = p / s
				y = q / s
				zz = r / s
				q /= p
				r /= p
				if notlast {
					for j := k; j < n; j++ {
						pp := at(k, j) + q*at(k+1, j) + r*at(k+2, j)
						set(k, j, at(k, j)-pp*x)
						set(k+1, j, at(k+1, j)-pp*y)
						set(k+2, j, at(k+2, j)-pp*zz)
					}
					top := min(en, k+3)
					for i := 0; i <= top; i++ {
						pp := x*at(i, k) + y*at(i, k+1) + zz*at(i, k+2)
						set(i, k, at(i, k)-pp)
						set(i, k+1, at(i, k+1)-pp*q)
						set(i, k+2, at(i, k+2)-pp*r)
					}
					for i := 0; i < n; i++ {
						pp := x*z.At(i, k) + y*z.At(i, k+1) + zz*z.At(i, k+2)
						z.Set(i, k, z.At(i, k)-pp)
						z.Set(i, k+1, z.At(i, k+1)-pp*q)
						z.Set(i, k+2, z.At(i, k+2)-pp*r)
					}
				} else {
					for j := k; j < n; j++ {
						pp := at(k, j) + q*at(k+1, j)
						set(k, j, at(k, j)-pp*x)
						set(k+1, j, at(k+1, j)-pp*y)
					}
					top := min(en, k+3)
					for i := 0; i <= top; i++ {
						pp := x*at(i, k) + y*at(i, k+1)
						set(i, k, at(i, k)-pp)
						set(i, k+1, at(i, k+1)-pp*q)
					}
					for i := 0; i < n; i++ {
						pp := x*z.At(i, k) + y*z.At(i, k+1)
						z.Set(i, k, z.At(i, k)-pp)
						z.Set(i, k+1, z.At(i, k+1)-pp*q)
					}
				}
			}
		}
	}

	// Clear stale bulge remnants below the quasi-triangular band (EISPACK
	// leaves them unwritten because only the upper part is read later; the
	// mathematical values there are zero) and the roundoff-level
	// subdiagonals of deflated real blocks. Complex pairs (wi > 0 marks
	// the first member) keep their 2×2 coupling.
	for j := 0; j < n; j++ {
		for i := j + 2; i < n; i++ {
			set(i, j, 0)
		}
	}
	for i := 1; i < n; i++ {
		if wi[i-1] <= 0 {
			set(i, i-1, 0)
		}
	}

	if vectors {
		backSubstitute(n, h, z, wr, wi, norm)
	}
	return nil
}

// cdiv computes (ar + ai·i) / (br + bi·i) with scaling.
func cdiv(ar, ai, br, bi float64) (cr, ci float64) {
	s := math.Abs(br) + math.Abs(bi)
	ars := ar / s
	ais := ai / s
	brs := br / s
	bis := bi / s
	d := brs*brs + bis*bis
	return (ars*brs + ais*bis) / d, (ais*brs - ars*bis) / d
}

// backSubstitute solves the quasi-triangular system for the eigenvectors
// (EISPACK HQR2's second half) and multiplies by the accumulated z.
func backSubstitute(n int, h *matrix.Matrix, z *matrix.Matrix, wr, wi []float64, norm float64) {
	at := h.At
	set := h.Set
	var p, q, r, s, t, w, x, y, zz, ra, sa float64
	for en := n - 1; en >= 0; en-- {
		p = wr[en]
		q = wi[en]
		na := en - 1
		switch {
		case q == 0:
			// Real vector.
			m := en
			set(en, en, 1)
			for i := en - 1; i >= 0; i-- {
				w = at(i, i) - p
				r = 0
				for j := m; j <= en; j++ {
					r += at(i, j) * at(j, en)
				}
				if wi[i] < 0 {
					zz = w
					s = r
					continue
				}
				m = i
				if wi[i] == 0 {
					t = w
					if t == 0 {
						t = macheps * norm
					}
					set(i, en, -r/t)
				} else {
					// Solve the 2×2 block rows (i, i+1).
					x = at(i, i+1)
					y = at(i+1, i)
					q2 := (wr[i]-p)*(wr[i]-p) + wi[i]*wi[i]
					t = (x*s - zz*r) / q2
					set(i, en, t)
					if math.Abs(x) > math.Abs(zz) {
						set(i+1, en, (-r-w*t)/x)
					} else {
						set(i+1, en, (-s-y*t)/zz)
					}
				}
				// Overflow control.
				t = math.Abs(at(i, en))
				if t != 0 && macheps*t*t > 1 {
					for j := i; j <= en; j++ {
						set(j, en, at(j, en)/t)
					}
				}
			}
		case q < 0:
			// Complex vector for the pair (na, en); q < 0 marks the
			// second member, whose columns hold (real, imag) parts.
			m := na
			if math.Abs(at(en, na)) > math.Abs(at(na, en)) {
				set(na, na, q/at(en, na))
				set(na, en, -(at(en, en)-p)/at(en, na))
			} else {
				cr, ci := cdiv(0, -at(na, en), at(na, na)-p, q)
				set(na, na, cr)
				set(na, en, ci)
			}
			set(en, na, 0)
			set(en, en, 1)
			for i := na - 1; i >= 0; i-- {
				w = at(i, i) - p
				ra = 0
				sa = 0
				for j := m; j <= en; j++ {
					ra += at(i, j) * at(j, na)
					sa += at(i, j) * at(j, en)
				}
				if wi[i] < 0 {
					zz = w
					r = ra
					s = sa
					continue
				}
				m = i
				if wi[i] == 0 {
					cr, ci := cdiv(-ra, -sa, w, q)
					set(i, na, cr)
					set(i, en, ci)
				} else {
					// Solve complex 2×2 block.
					x = at(i, i+1)
					y = at(i+1, i)
					vr := (wr[i]-p)*(wr[i]-p) + wi[i]*wi[i] - q*q
					vi := (wr[i] - p) * 2 * q
					if vr == 0 && vi == 0 {
						vr = macheps * norm * (math.Abs(w) + math.Abs(q) + math.Abs(x) + math.Abs(y) + math.Abs(zz))
					}
					cr, ci := cdiv(x*r-zz*ra+q*sa, x*s-zz*sa-q*ra, vr, vi)
					set(i, na, cr)
					set(i, en, ci)
					if math.Abs(x) > math.Abs(zz)+math.Abs(q) {
						set(i+1, na, (-ra-w*at(i, na)+q*at(i, en))/x)
						set(i+1, en, (-sa-w*at(i, en)-q*at(i, na))/x)
					} else {
						cr, ci := cdiv(-r-y*at(i, na), -s-y*at(i, en), zz, q)
						set(i+1, na, cr)
						set(i+1, en, ci)
					}
				}
				// Overflow control.
				t = math.Max(math.Abs(at(i, na)), math.Abs(at(i, en)))
				if t != 0 && macheps*t*t > 1 {
					for j := i; j <= en; j++ {
						set(j, na, at(j, na)/t)
						set(j, en, at(j, en)/t)
					}
				}
			}
		}
	}
	// Multiply by the accumulated transformation: z := z · (vectors in h).
	for j := n - 1; j >= 0; j-- {
		for i := 0; i < n; i++ {
			zz = 0
			for k := 0; k <= j; k++ {
				zz += z.At(i, k) * at(k, j)
			}
			z.Set(i, j, zz)
		}
	}
}

// SchurEigen holds a full eigendecomposition from the Schur path.
type SchurEigen struct {
	// Values: all n eigenvalues.
	Values []Eig
	// Vectors: column j of VR (+ i·VI for complex pairs) is the right
	// eigenvector of Values[j]. For a complex pair (q>0 first), columns
	// j and j+1 of the matrix hold the real and imaginary parts, and
	// Vectors stores them expanded per eigenvalue.
	VR, VI *matrix.Matrix
}

// Eigen computes the complete eigendecomposition of a general square
// matrix through Hessenberg reduction + HQR2: all eigenvalues with right
// eigenvectors, including complex pairs. a is not modified.
func Eigen(a *matrix.Matrix, nb int) (*SchurEigen, error) {
	n := a.Rows
	if n != a.Cols {
		return nil, errors.New("lapack: Eigen needs a square matrix")
	}
	packed := a.Clone()
	tau := make([]float64, max(n-1, 1))
	Dgehrd(n, nb, packed.Data, packed.Stride, tau)
	h := HessFromPacked(n, packed.Data, packed.Stride)
	z := Dorghr(n, packed.Data, packed.Stride, tau)
	wr := make([]float64, n)
	wi := make([]float64, n)
	if err := Dhseqr2(n, h, z, wr, wi); err != nil {
		return nil, err
	}
	out := &SchurEigen{
		Values: make([]Eig, n),
		VR:     matrix.New(n, n),
		VI:     matrix.New(n, n),
	}
	for j := 0; j < n; j++ {
		out.Values[j] = Eig{Re: wr[j], Im: wi[j]}
		switch {
		case wi[j] == 0:
			for i := 0; i < n; i++ {
				out.VR.Set(i, j, z.At(i, j))
			}
		case wi[j] > 0:
			// First of a pair: x = z(:,j) + i·z(:,j+1).
			for i := 0; i < n; i++ {
				out.VR.Set(i, j, z.At(i, j))
				out.VI.Set(i, j, z.At(i, j+1))
			}
		default:
			// Conjugate: x̄ = z(:,j-1) − i·z(:,j).
			for i := 0; i < n; i++ {
				out.VR.Set(i, j, z.At(i, j-1))
				out.VI.Set(i, j, -z.At(i, j))
			}
		}
	}
	return out, nil
}

// EigResidual returns ‖A·x − λ·x‖₂ / ‖x‖₂ for the j-th (possibly complex)
// eigenpair of e.
func (e *SchurEigen) EigResidual(a *matrix.Matrix, j int) float64 {
	n := a.Rows
	xr := make([]float64, n)
	xi := make([]float64, n)
	for i := 0; i < n; i++ {
		xr[i] = e.VR.At(i, j)
		xi[i] = e.VI.At(i, j)
	}
	lam := e.Values[j]
	// y = A·x − λ·x, complex.
	yr := make([]float64, n)
	yi := make([]float64, n)
	blas.Dgemv(blas.NoTrans, n, n, 1, a.Data, a.Stride, xr, 1, 0, yr, 1)
	blas.Dgemv(blas.NoTrans, n, n, 1, a.Data, a.Stride, xi, 1, 0, yi, 1)
	for i := 0; i < n; i++ {
		yr[i] -= lam.Re*xr[i] - lam.Im*xi[i]
		yi[i] -= lam.Re*xi[i] + lam.Im*xr[i]
	}
	num := math.Hypot(blas.Dnrm2(n, yr, 1), blas.Dnrm2(n, yi, 1))
	den := math.Hypot(blas.Dnrm2(n, xr, 1), blas.Dnrm2(n, xi, 1))
	if den == 0 {
		return math.Inf(1)
	}
	return num / den
}
