package lapack

import (
	"repro/internal/blas"
	"repro/internal/matrix"
)

// FactorizationResidual returns the paper's backward-error metric
//
//	r = ‖A − Q·H·Qᵀ‖₁ / (N·‖A‖₁)
//
// used in Table II to compare the fault-tolerant and fault-prone
// reductions.
func FactorizationResidual(a, q, h *matrix.Matrix) float64 {
	n := a.Rows
	if n == 0 {
		return 0
	}
	// tmp := Q·H ; rec := tmp·Qᵀ
	tmp := matrix.New(n, n)
	blas.Dgemm(blas.NoTrans, blas.NoTrans, n, n, n, 1, q.Data, q.Stride, h.Data, h.Stride, 0, tmp.Data, tmp.Stride)
	rec := matrix.New(n, n)
	blas.Dgemm(blas.NoTrans, blas.Trans, n, n, n, 1, tmp.Data, tmp.Stride, q.Data, q.Stride, 0, rec.Data, rec.Stride)
	num := a.Sub(rec).Norm1()
	den := float64(n) * a.Norm1()
	if den == 0 {
		return num
	}
	return num / den
}

// OrthogonalityResidual returns the paper's Table III metric
//
//	r = ‖Q·Qᵀ − I‖₁ / N.
func OrthogonalityResidual(q *matrix.Matrix) float64 {
	n := q.Rows
	if n == 0 {
		return 0
	}
	qqt := matrix.New(n, n)
	blas.Dgemm(blas.NoTrans, blas.Trans, n, n, n, 1, q.Data, q.Stride, q.Data, q.Stride, 0, qqt.Data, qqt.Stride)
	for i := 0; i < n; i++ {
		qqt.Add(i, i, -1)
	}
	return qqt.Norm1() / float64(n)
}
