package lapack

import (
	"math"
	"testing"

	"repro/internal/matrix"
)

func TestDgebalPreservesEigenvalues(t *testing.T) {
	n := 20
	a := matrix.Random(n, n, 4)
	// Badly scale some rows/columns via a diagonal similarity.
	for i := 0; i < n; i += 3 {
		s := math.Pow(2, float64(10+i))
		for j := 0; j < n; j++ {
			a.Set(i, j, a.At(i, j)*s)
			a.Set(j, i, a.At(j, i)/s)
		}
	}
	before, err := Eigenvalues(a, 8)
	if err != nil {
		t.Fatal(err)
	}
	w := a.Clone()
	Dgebal(n, w.Data, w.Stride)
	after, err := Eigenvalues(w, 8)
	if err != nil {
		t.Fatal(err)
	}
	// The unbalanced spectrum is the *less* accurate of the two (that is
	// why DGEEV balances), so only same-eigenvalue agreement at the
	// accuracy the ill-scaling permits can be asserted.
	for i := range before {
		scaleTol := 1e-5 * (1 + math.Abs(before[i].Re))
		if math.Abs(before[i].Re-after[i].Re) > scaleTol || math.Abs(before[i].Im-after[i].Im) > scaleTol {
			t.Fatalf("eig %d changed: %v vs %v", i, before[i], after[i])
		}
	}
}

func TestDgebalEqualizesNorms(t *testing.T) {
	n := 16
	a := matrix.Random(n, n, 7)
	// Scale row 0 up by 2^20 (and column 0 down) to unbalance.
	for j := 0; j < n; j++ {
		a.Set(0, j, a.At(0, j)*math.Pow(2, 20))
		a.Set(j, 0, a.At(j, 0)/math.Pow(2, 20))
	}
	ratio := func(m *matrix.Matrix, i int) float64 {
		r, c := 0.0, 0.0
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			r += math.Abs(m.At(i, j))
			c += math.Abs(m.At(j, i))
		}
		return r / c
	}
	before := ratio(a, 0)
	w := a.Clone()
	Dgebal(n, w.Data, w.Stride)
	after := ratio(w, 0)
	if !(after < before/1e3) {
		t.Fatalf("balance did not equalize: ratio %v -> %v", before, after)
	}
}

func TestDgebalScaleVector(t *testing.T) {
	n := 8
	a := matrix.Random(n, n, 9)
	orig := a.Clone()
	scale := Dgebal(n, a.Data, a.Stride)
	if len(scale) != n {
		t.Fatalf("scale length %d", len(scale))
	}
	// Verify A_balanced = D⁻¹·A·D with the returned scale.
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			want := orig.At(i, j) * scale[j] / scale[i]
			if math.Abs(a.At(i, j)-want) > 1e-12*(1+math.Abs(want)) {
				t.Fatalf("(%d,%d): %v, want %v", i, j, a.At(i, j), want)
			}
		}
	}
}

func TestDgebalTrivial(t *testing.T) {
	if s := Dgebal(0, nil, 1); len(s) != 0 {
		t.Fatal("n=0")
	}
	a := []float64{5}
	if s := Dgebal(1, a, 1); s[0] != 1 || a[0] != 5 {
		t.Fatal("n=1 must be untouched")
	}
	// Zero row/column: must not divide by zero.
	z := matrix.New(3, 3)
	z.Set(0, 1, 1)
	Dgebal(3, z.Data, z.Stride)
}

func TestBalancedEigenvaluesMoreAccurate(t *testing.T) {
	// Badly scaled similarity of a known diagonal: balancing recovers the
	// spectrum more accurately than the raw path.
	n := 12
	d := matrix.New(n, n)
	want := make([]float64, n)
	for i := range want {
		want[i] = float64(i + 1)
		d.Set(i, i, want[i])
	}
	// Similarity by an ill-conditioned diagonal.
	a := d.Clone()
	for i := 0; i < n; i++ {
		s := math.Pow(2, float64(3*i))
		for j := 0; j < n; j++ {
			a.Set(i, j, a.At(i, j)*s)
			a.Set(j, i, a.At(j, i)/s)
		}
	}
	// Add a dense perturbation that the similarity amplifies.
	p := matrix.Random(n, n, 5)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a.Add(i, j, 1e-13*p.At(i, j)*math.Pow(2, float64(3*i))/math.Pow(2, float64(3*j)))
		}
	}
	bal, err := BalancedEigenvalues(a.Data, n, a.Stride, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(bal[i].Re-want[i]) > 1e-6 {
			t.Fatalf("balanced eig %d = %v, want %v", i, bal[i].Re, want[i])
		}
	}
}
