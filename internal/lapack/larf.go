package lapack

import (
	"math"

	"repro/internal/blas"
)

// Dlarfg generates an elementary Householder reflector H of order n such
// that
//
//	H * [alpha]   [beta]
//	    [  x  ] = [ 0  ],   Hᵀ H = I,
//
// where H = I - tau * v * vᵀ with v(0) = 1 implicit and v(1:n-1) returned
// in x. It returns the updated alpha (= beta) and tau. If x is zero, tau is
// zero and H is the identity. This is the netlib DLARFG including its
// underflow-rescaling loop.
func Dlarfg(n int, alpha float64, x []float64, incX int) (beta, tau float64) {
	if n < 1 {
		return alpha, 0
	}
	if n == 1 {
		return alpha, 0
	}
	xnorm := blas.Dnrm2(n-1, x, incX)
	if xnorm == 0 {
		return alpha, 0
	}
	beta = -sign(dlapy2(alpha, xnorm), alpha)
	const safmin = 2.0041683600089728e-292 // dlamch('S')/dlamch('E') as in dlarfg
	knt := 0
	if abs(beta) < safmin {
		// xnorm, beta may be inaccurate; scale x and recompute.
		rsafmn := 1 / safmin
		for abs(beta) < safmin && knt < 20 {
			knt++
			blas.Dscal(n-1, rsafmn, x, incX)
			beta *= rsafmn
			alpha *= rsafmn
		}
		xnorm = blas.Dnrm2(n-1, x, incX)
		beta = -sign(dlapy2(alpha, xnorm), alpha)
	}
	tau = (beta - alpha) / beta
	blas.Dscal(n-1, 1/(alpha-beta), x, incX)
	for i := 0; i < knt; i++ {
		beta *= safmin
	}
	return beta, tau
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// dlapy2 returns sqrt(x²+y²) without unnecessary overflow.
func dlapy2(x, y float64) float64 {
	xa, ya := abs(x), abs(y)
	w, z := xa, ya
	if ya > xa {
		w, z = ya, xa
	}
	if z == 0 {
		return w
	}
	r := z / w
	return w * math.Sqrt(1+r*r)
}

// Dlarf applies the elementary reflector H = I - tau*v*vᵀ to the m×n matrix
// C from the given side. v has length m (Left) or n (Right); work must have
// length n (Left) or m (Right).
func Dlarf(side blas.Side, m, n int, v []float64, incV int, tau float64, c []float64, ldc int, work []float64) {
	if tau == 0 {
		return
	}
	if side == blas.Left {
		if len(work) < n {
			panic("lapack: Dlarf work too short")
		}
		// work := Cᵀ v ; C := C - tau * v * workᵀ
		blas.Dgemv(blas.Trans, m, n, 1, c, ldc, v, incV, 0, work, 1)
		blas.Dger(m, n, -tau, v, incV, work, 1, c, ldc)
		return
	}
	if len(work) < m {
		panic("lapack: Dlarf work too short")
	}
	// work := C v ; C := C - tau * work * vᵀ
	blas.Dgemv(blas.NoTrans, m, n, 1, c, ldc, v, incV, 0, work, 1)
	blas.Dger(m, n, -tau, work, 1, v, incV, c, ldc)
}

// Dlarft forms the upper-triangular factor T of the block reflector
// H = I - V*T*Vᵀ from k forward, column-wise stored elementary reflectors
// (the only storage variant this codebase uses). V is n×k with V(i,i)
// implicit 1; the strictly upper part of V's leading k×k block is not
// referenced because the accumulation starts at row i.
func Dlarft(n, k int, v []float64, ldv int, tau []float64, t []float64, ldt int) {
	if n == 0 || k == 0 {
		return
	}
	for i := 0; i < k; i++ {
		if tau[i] == 0 {
			for j := 0; j < i; j++ {
				t[i*ldt+j] = 0
			}
		} else {
			// T(0:i-1, i) := -tau(i) * V(i:n-1, 0:i-1)ᵀ * V(i:n-1, i)
			vii := v[i*ldv+i]
			v[i*ldv+i] = 1
			blas.Dgemv(blas.Trans, n-i, i, -tau[i], v[i:], ldv, v[i*ldv+i:], 1, 0, t[i*ldt:], 1)
			v[i*ldv+i] = vii
			// T(0:i-1, i) := T(0:i-1, 0:i-1) * T(0:i-1, i)
			blas.Dtrmv(blas.Upper, blas.NoTrans, blas.NonUnit, i, t, ldt, t[i*ldt:], 1)
		}
		t[i*ldt+i] = tau[i]
	}
}

// Dlarfb applies the block reflector H = I - V*T*Vᵀ (forward, column-wise
// storage) or its transpose to the m×n matrix C from the given side.
// V is m×k (Left) or n×k (Right) with a unit lower-triangular leading
// block; T is the k×k upper-triangular factor from Dlarft. work must
// provide at least n*k (Left) or m*k (Right) elements.
func Dlarfb(side blas.Side, trans blas.Transpose, m, n, k int, v []float64, ldv int, t []float64, ldt int, c []float64, ldc int, work []float64, ldwork int) {
	if m == 0 || n == 0 || k == 0 {
		return
	}
	if side == blas.Left {
		// transT is the opposite of trans: H C needs W := Cᵀ V Tᵀ.
		transT := blas.Trans
		if trans == blas.Trans {
			transT = blas.NoTrans
		}
		if ldwork < n {
			panic("lapack: Dlarfb ldwork too small")
		}
		// W := C1ᵀ  (n×k), C1 = C(0:k-1, :)
		for j := 0; j < k; j++ {
			blas.Dcopy(n, c[j:], ldc, work[j*ldwork:], 1)
		}
		// W := W * V1  (V1 = V(0:k-1, :) unit lower triangular)
		blas.Dtrmm(blas.Right, blas.Lower, blas.NoTrans, blas.Unit, n, k, 1, v, ldv, work, ldwork)
		if m > k {
			// W += C2ᵀ * V2, C2 = C(k:m-1, :), V2 = V(k:m-1, :)
			blas.Dgemm(blas.Trans, blas.NoTrans, n, k, m-k, 1, c[k:], ldc, v[k:], ldv, 1, work, ldwork)
		}
		// W := W * Tᵀ (or T)
		blas.Dtrmm(blas.Right, blas.Upper, transT, blas.NonUnit, n, k, 1, t, ldt, work, ldwork)
		if m > k {
			// C2 := C2 - V2 * Wᵀ
			blas.Dgemm(blas.NoTrans, blas.Trans, m-k, n, k, -1, v[k:], ldv, work, ldwork, 1, c[k:], ldc)
		}
		// W := W * V1ᵀ
		blas.Dtrmm(blas.Right, blas.Lower, blas.Trans, blas.Unit, n, k, 1, v, ldv, work, ldwork)
		// C1 := C1 - Wᵀ
		for j := 0; j < k; j++ {
			for i := 0; i < n; i++ {
				c[i*ldc+j] -= work[j*ldwork+i]
			}
		}
		return
	}
	// side == Right: C := C H or C Hᵀ with W := C V T.
	if ldwork < m {
		panic("lapack: Dlarfb ldwork too small")
	}
	// W := C1 (m×k), C1 = C(:, 0:k-1)
	for j := 0; j < k; j++ {
		blas.Dcopy(m, c[j*ldc:], 1, work[j*ldwork:], 1)
	}
	// W := W * V1
	blas.Dtrmm(blas.Right, blas.Lower, blas.NoTrans, blas.Unit, m, k, 1, v, ldv, work, ldwork)
	if n > k {
		// W += C2 * V2
		blas.Dgemm(blas.NoTrans, blas.NoTrans, m, k, n-k, 1, c[k*ldc:], ldc, v[k:], ldv, 1, work, ldwork)
	}
	// W := W * T (or Tᵀ)
	blas.Dtrmm(blas.Right, blas.Upper, trans, blas.NonUnit, m, k, 1, t, ldt, work, ldwork)
	if n > k {
		// C2 := C2 - W * V2ᵀ
		blas.Dgemm(blas.NoTrans, blas.Trans, m, n-k, k, -1, work, ldwork, v[k:], ldv, 1, c[k*ldc:], ldc)
	}
	// W := W * V1ᵀ
	blas.Dtrmm(blas.Right, blas.Lower, blas.Trans, blas.Unit, m, k, 1, v, ldv, work, ldwork)
	// C1 := C1 - W
	for j := 0; j < k; j++ {
		col := c[j*ldc : j*ldc+m]
		w := work[j*ldwork : j*ldwork+m]
		for i := range col {
			col[i] -= w[i]
		}
	}
}
