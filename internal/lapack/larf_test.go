package lapack

import (
	"math"
	"testing"

	"repro/internal/blas"
	"repro/internal/matrix"
)

// explicitReflector materializes H = I - tau*v*vᵀ as a dense matrix.
func explicitReflector(n int, v []float64, tau float64) *matrix.Matrix {
	h := matrix.Identity(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			h.Add(i, j, -tau*v[i]*v[j])
		}
	}
	return h
}

func TestDlarfgAnnihilates(t *testing.T) {
	for _, n := range []int{2, 3, 5, 17} {
		rng := matrix.NewRNG(uint64(n))
		alpha := 2*rng.Float64() - 1
		x := make([]float64, n-1)
		for i := range x {
			x[i] = 2*rng.Float64() - 1
		}
		orig := append([]float64{alpha}, x...)
		beta, tau := Dlarfg(n, alpha, x, 1)

		// Apply H = I - tau v vᵀ with v = [1, x] to the original vector:
		// the result must be [beta, 0, ..., 0].
		v := append([]float64{1}, x...)
		vtx := 0.0
		for i := range v {
			vtx += v[i] * orig[i]
		}
		for i := range v {
			got := orig[i] - tau*v[i]*vtx
			want := 0.0
			if i == 0 {
				want = beta
			}
			if math.Abs(got-want) > 1e-13 {
				t.Fatalf("n=%d: H·x[%d] = %v, want %v", n, i, got, want)
			}
		}
		// ‖[alpha, x]‖₂ must be preserved: |beta| = ‖orig‖₂.
		norm := blas.Dnrm2(n, orig, 1)
		if math.Abs(math.Abs(beta)-norm) > 1e-13*norm {
			t.Fatalf("n=%d: |beta| = %v, want %v", n, beta, norm)
		}
	}
}

func TestDlarfgZeroTail(t *testing.T) {
	x := []float64{0, 0, 0}
	beta, tau := Dlarfg(4, 5.0, x, 1)
	if tau != 0 || beta != 5.0 {
		t.Fatalf("zero tail: beta=%v tau=%v, want 5,0", beta, tau)
	}
}

func TestDlarfgLengthOne(t *testing.T) {
	beta, tau := Dlarfg(1, -3.0, nil, 1)
	if tau != 0 || beta != -3.0 {
		t.Fatalf("n=1: beta=%v tau=%v", beta, tau)
	}
}

func TestDlarfgTinyValues(t *testing.T) {
	// Exercise the safmin rescaling path.
	x := []float64{1e-300, 2e-300}
	beta, tau := Dlarfg(3, 1e-300, x, 1)
	if math.IsNaN(beta) || math.IsNaN(tau) || beta == 0 {
		t.Fatalf("tiny values: beta=%v tau=%v", beta, tau)
	}
	want := 1e-300 * math.Sqrt(1+1+4)
	if math.Abs(math.Abs(beta)-want) > 1e-10*want {
		t.Fatalf("tiny beta = %v, want |%v|", beta, want)
	}
}

func TestDlarfgReflectorOrthogonal(t *testing.T) {
	n := 6
	rng := matrix.NewRNG(9)
	alpha := rng.Float64()
	x := make([]float64, n-1)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	_, tau := Dlarfg(n, alpha, x, 1)
	v := append([]float64{1}, x...)
	h := explicitReflector(n, v, tau)
	if r := OrthogonalityResidual(h); r > 1e-14 {
		t.Fatalf("reflector not orthogonal: %v", r)
	}
}

func TestDlarfLeftRightMatchExplicit(t *testing.T) {
	m, n := 6, 4
	rng := matrix.NewRNG(4)
	tau := 0.8
	for _, side := range []blas.Side{blas.Left, blas.Right} {
		vlen := m
		if side == blas.Right {
			vlen = n
		}
		v := make([]float64, vlen)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		c := matrix.Random(m, n, 31)
		want := c.Clone()
		h := explicitReflector(vlen, v, tau)
		if side == blas.Left {
			blas.Dgemm(blas.NoTrans, blas.NoTrans, m, n, m, 1, h.Data, h.Stride, c.Data, c.Stride, 0, want.Data, want.Stride)
		} else {
			blas.Dgemm(blas.NoTrans, blas.NoTrans, m, n, n, 1, c.Data, c.Stride, h.Data, h.Stride, 0, want.Data, want.Stride)
		}
		got := c.Clone()
		work := make([]float64, m+n)
		Dlarf(side, m, n, v, 1, tau, got.Data, got.Stride, work)
		if d := want.Sub(got).MaxAbs(); d > 1e-13 {
			t.Fatalf("Dlarf %v: maxdiff %v", side, d)
		}
	}
}

func TestDlarfTauZeroNoop(t *testing.T) {
	c := matrix.Random(3, 3, 1)
	orig := c.Clone()
	Dlarf(blas.Left, 3, 3, []float64{1, 2, 3}, 1, 0, c.Data, c.Stride, make([]float64, 3))
	if !c.Equal(orig) {
		t.Fatal("tau=0 must not modify C")
	}
}

// buildReflectors creates k forward column-stored reflectors in an n×k
// unit-lower-trapezoidal V plus taus, the storage Dlarft/Dlarfb consume.
func buildReflectors(n, k int, seed uint64) (v *matrix.Matrix, tau []float64) {
	rng := matrix.NewRNG(seed)
	v = matrix.New(n, k)
	tau = make([]float64, k)
	for j := 0; j < k; j++ {
		alpha := rng.NormFloat64()
		x := make([]float64, n-j-1)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		_, tj := Dlarfg(n-j, alpha, x, 1)
		tau[j] = tj
		v.Set(j, j, 1)
		for i := range x {
			v.Set(j+1+i, j, x[i])
		}
	}
	return v, tau
}

// explicitBlockH materializes H = H(0)·H(1)···H(k-1) from V and tau.
func explicitBlockH(n, k int, v *matrix.Matrix, tau []float64) *matrix.Matrix {
	h := matrix.Identity(n)
	for j := 0; j < k; j++ {
		vj := make([]float64, n)
		for i := j; i < n; i++ {
			vj[i] = v.At(i, j)
		}
		hj := explicitReflector(n, vj, tau[j])
		tmp := matrix.New(n, n)
		blas.Dgemm(blas.NoTrans, blas.NoTrans, n, n, n, 1, h.Data, h.Stride, hj.Data, hj.Stride, 0, tmp.Data, tmp.Stride)
		h = tmp
	}
	return h
}

func TestDlarftMatchesProduct(t *testing.T) {
	n, k := 9, 4
	v, tau := buildReflectors(n, k, 17)
	tm := matrix.New(k, k)
	Dlarft(n, k, v.Data, v.Stride, tau, tm.Data, tm.Stride)

	// I - V·T·Vᵀ must equal the product of the individual reflectors.
	want := explicitBlockH(n, k, v, tau)
	vt := matrix.New(n, k)
	blas.Dgemm(blas.NoTrans, blas.NoTrans, n, k, k, 1, v.Data, v.Stride, tm.Data, tm.Stride, 0, vt.Data, vt.Stride)
	got := matrix.Identity(n)
	blas.Dgemm(blas.NoTrans, blas.Trans, n, n, k, -1, vt.Data, vt.Stride, v.Data, v.Stride, 1, got.Data, got.Stride)

	if d := want.Sub(got).MaxAbs(); d > 1e-13 {
		t.Fatalf("I - V·T·Vᵀ differs from reflector product by %v", d)
	}
	// T must be upper triangular with tau on the diagonal.
	for i := 0; i < k; i++ {
		if tm.At(i, i) != tau[i] {
			t.Fatalf("T(%d,%d) = %v, want tau %v", i, i, tm.At(i, i), tau[i])
		}
		for j := 0; j < i; j++ {
			if tm.At(i, j) != 0 {
				t.Fatalf("T not upper triangular at (%d,%d)", i, j)
			}
		}
	}
}

func TestDlarfbMatchesSequential(t *testing.T) {
	n, k := 10, 3
	v, tau := buildReflectors(n, k, 23)
	tm := matrix.New(k, k)
	Dlarft(n, k, v.Data, v.Stride, tau, tm.Data, tm.Stride)
	h := explicitBlockH(n, k, v, tau)

	cases := []struct {
		side  blas.Side
		trans blas.Transpose
		m, nc int
	}{
		{blas.Left, blas.NoTrans, n, 5},
		{blas.Left, blas.Trans, n, 5},
		{blas.Right, blas.NoTrans, 5, n},
		{blas.Right, blas.Trans, 5, n},
	}
	for _, tc := range cases {
		c := matrix.Random(tc.m, tc.nc, 44)
		want := matrix.New(tc.m, tc.nc)
		hOp := h
		if tc.trans == blas.Trans {
			hOp = h.T()
		}
		if tc.side == blas.Left {
			blas.Dgemm(blas.NoTrans, blas.NoTrans, tc.m, tc.nc, tc.m, 1, hOp.Data, hOp.Stride, c.Data, c.Stride, 0, want.Data, want.Stride)
		} else {
			blas.Dgemm(blas.NoTrans, blas.NoTrans, tc.m, tc.nc, tc.nc, 1, c.Data, c.Stride, hOp.Data, hOp.Stride, 0, want.Data, want.Stride)
		}
		got := c.Clone()
		work := make([]float64, (tc.m+tc.nc)*k)
		ldwork := tc.nc
		if tc.side == blas.Right {
			ldwork = tc.m
		}
		Dlarfb(tc.side, tc.trans, tc.m, tc.nc, k, v.Data, v.Stride, tm.Data, tm.Stride, got.Data, got.Stride, work, ldwork)
		if d := want.Sub(got).MaxAbs(); d > 1e-12 {
			t.Fatalf("Dlarfb %v %v: maxdiff %v", tc.side, tc.trans, d)
		}
	}
}

func TestDlarfbTransUndoesNoTrans(t *testing.T) {
	// Applying H then Hᵀ from the left must restore C: this is exactly the
	// reverse-computation step of the paper's recovery procedure.
	n, k := 12, 4
	v, tau := buildReflectors(n, k, 5)
	tm := matrix.New(k, k)
	Dlarft(n, k, v.Data, v.Stride, tau, tm.Data, tm.Stride)
	c := matrix.Random(n, 7, 8)
	orig := c.Clone()
	work := make([]float64, 7*k)
	Dlarfb(blas.Left, blas.Trans, n, 7, k, v.Data, v.Stride, tm.Data, tm.Stride, c.Data, c.Stride, work, 7)
	Dlarfb(blas.Left, blas.NoTrans, n, 7, k, v.Data, v.Stride, tm.Data, tm.Stride, c.Data, c.Stride, work, 7)
	if d := orig.Sub(c).MaxAbs(); d > 1e-12 {
		t.Fatalf("Hᵀ then H did not restore C: %v", d)
	}
}
