package lapack

import (
	"math"
	"sort"
	"testing"

	"repro/internal/matrix"
)

func TestDhseqrDiagonal(t *testing.T) {
	n := 5
	h := matrix.New(n, n)
	want := []float64{-3, -1, 0, 2, 7}
	for i, v := range want {
		h.Set(i, i, v)
	}
	wr := make([]float64, n)
	wi := make([]float64, n)
	if err := Dhseqr(n, h.Data, h.Stride, wr, wi); err != nil {
		t.Fatal(err)
	}
	sort.Float64s(wr)
	for i := range want {
		if math.Abs(wr[i]-want[i]) > 1e-13 || wi[i] != 0 {
			t.Fatalf("eig %d: %v+%vi, want %v", i, wr[i], wi[i], want[i])
		}
	}
}

func TestDhseqrKnown2x2Complex(t *testing.T) {
	// [[0,-1],[1,0]] has eigenvalues ±i.
	h := matrix.FromRows([][]float64{{0, -1}, {1, 0}})
	wr := make([]float64, 2)
	wi := make([]float64, 2)
	if err := Dhseqr(2, h.Data, h.Stride, wr, wi); err != nil {
		t.Fatal(err)
	}
	if math.Abs(wr[0]) > 1e-14 || math.Abs(wr[1]) > 1e-14 {
		t.Fatalf("real parts %v, want 0", wr)
	}
	ims := []float64{wi[0], wi[1]}
	sort.Float64s(ims)
	if math.Abs(ims[0]+1) > 1e-14 || math.Abs(ims[1]-1) > 1e-14 {
		t.Fatalf("imag parts %v, want ±1", wi)
	}
}

func TestDhseqrCompanionMatrix(t *testing.T) {
	// Companion matrix of (x-1)(x-2)(x-3)(x-4) = x⁴ -10x³ +35x² -50x +24.
	coeff := []float64{24, -50, 35, -10} // a0..a3 of monic polynomial
	n := 4
	h := matrix.New(n, n)
	for i := 1; i < n; i++ {
		h.Set(i, i-1, 1)
	}
	for i := 0; i < n; i++ {
		h.Set(i, n-1, -coeff[i])
	}
	wr := make([]float64, n)
	wi := make([]float64, n)
	if err := Dhseqr(n, h.Data, h.Stride, wr, wi); err != nil {
		t.Fatal(err)
	}
	sort.Float64s(wr)
	for i, want := range []float64{1, 2, 3, 4} {
		if math.Abs(wr[i]-want) > 1e-10 || math.Abs(wi[i]) > 1e-10 {
			t.Fatalf("root %d: %v+%vi, want %v", i, wr[i], wi[i], want)
		}
	}
}

func TestDhseqrTridiagonalKnownSpectrum(t *testing.T) {
	// Symmetric tridiagonal with 2 on the diagonal and -1 off-diagonal has
	// eigenvalues 2 - 2cos(kπ/(n+1)).
	n := 12
	h := matrix.New(n, n)
	for i := 0; i < n; i++ {
		h.Set(i, i, 2)
		if i > 0 {
			h.Set(i, i-1, -1)
			h.Set(i-1, i, -1)
		}
	}
	wr := make([]float64, n)
	wi := make([]float64, n)
	if err := Dhseqr(n, h.Data, h.Stride, wr, wi); err != nil {
		t.Fatal(err)
	}
	sort.Float64s(wr)
	for k := 1; k <= n; k++ {
		want := 2 - 2*math.Cos(float64(k)*math.Pi/float64(n+1))
		if math.Abs(wr[k-1]-want) > 1e-10 {
			t.Fatalf("eig %d: %v, want %v", k, wr[k-1], want)
		}
	}
	for _, im := range wi {
		if math.Abs(im) > 1e-10 {
			t.Fatalf("symmetric matrix produced complex eigenvalue %v", im)
		}
	}
}

func TestDhseqrEmptyAndOne(t *testing.T) {
	if err := Dhseqr(0, nil, 1, nil, nil); err != nil {
		t.Fatal(err)
	}
	h := matrix.FromRows([][]float64{{42}})
	wr := make([]float64, 1)
	wi := make([]float64, 1)
	if err := Dhseqr(1, h.Data, h.Stride, wr, wi); err != nil {
		t.Fatal(err)
	}
	if wr[0] != 42 || wi[0] != 0 {
		t.Fatalf("1x1: %v+%vi", wr[0], wi[0])
	}
}

func TestDhseqrZeroMatrix(t *testing.T) {
	n := 4
	h := matrix.New(n, n)
	wr := make([]float64, n)
	wi := make([]float64, n)
	if err := Dhseqr(n, h.Data, h.Stride, wr, wi); err != nil {
		t.Fatal(err)
	}
	for i := range wr {
		if wr[i] != 0 || wi[i] != 0 {
			t.Fatalf("zero matrix eig %d: %v+%vi", i, wr[i], wi[i])
		}
	}
}

func TestEigenvaluesEndToEnd(t *testing.T) {
	// Random similarity transform of a known diagonal: eigenvalues survive.
	n := 16
	want := make([]float64, n)
	for i := range want {
		want[i] = float64(i + 1)
	}
	d := matrix.New(n, n)
	for i, v := range want {
		d.Set(i, i, v)
	}
	// Build an orthogonal similarity from a Hessenberg reduction's Q.
	_, _, q := reduceBlocked(matrix.Random(n, n, 99), 4)
	a := matrix.New(n, n)
	tmp := matrix.New(n, n)
	mul(tmp, q, d)
	mulT(a, tmp, q)

	eigs, err := Eigenvalues(a, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range eigs {
		if math.Abs(e.Re-want[i]) > 1e-9 || math.Abs(e.Im) > 1e-9 {
			t.Fatalf("eig %d: %v+%vi, want %v", i, e.Re, e.Im, want[i])
		}
	}
}

func TestEigenvaluesTraceAndPairs(t *testing.T) {
	n := 30
	a := matrix.RandomNormal(n, n, 21)
	eigs, err := Eigenvalues(a, 8)
	if err != nil {
		t.Fatal(err)
	}
	sumRe, sumIm := 0.0, 0.0
	for _, e := range eigs {
		sumRe += e.Re
		sumIm += e.Im
	}
	if math.Abs(sumRe-a.Trace()) > 1e-9*(1+math.Abs(a.Trace())) {
		t.Fatalf("Σλ = %v, trace = %v", sumRe, a.Trace())
	}
	if math.Abs(sumIm) > 1e-9 {
		t.Fatalf("imaginary parts do not cancel: %v", sumIm)
	}
	// Every complex eigenvalue must have a conjugate partner.
	for _, e := range eigs {
		if e.Im == 0 {
			continue
		}
		found := false
		for _, f := range eigs {
			if math.Abs(f.Re-e.Re) < 1e-9 && math.Abs(f.Im+e.Im) < 1e-9 {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("eigenvalue %v+%vi lacks a conjugate", e.Re, e.Im)
		}
	}
}

func TestEigenvaluesNonSquare(t *testing.T) {
	if _, err := Eigenvalues(matrix.New(2, 3), 4); err == nil {
		t.Fatal("expected error for non-square input")
	}
}

func TestSortEigsDeterministic(t *testing.T) {
	e := []Eig{{2, 1}, {1, 0}, {2, -1}}
	SortEigs(e)
	if e[0].Re != 1 || e[1].Im != -1 || e[2].Im != 1 {
		t.Fatalf("sorted order wrong: %v", e)
	}
}

// mul computes dst = a·b; mulT computes dst = a·bᵀ (test helpers).
func mul(dst, a, b *matrix.Matrix) {
	for i := 0; i < dst.Rows; i++ {
		for j := 0; j < dst.Cols; j++ {
			s := 0.0
			for k := 0; k < a.Cols; k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			dst.Set(i, j, s)
		}
	}
}

func mulT(dst, a, b *matrix.Matrix) {
	for i := 0; i < dst.Rows; i++ {
		for j := 0; j < dst.Cols; j++ {
			s := 0.0
			for k := 0; k < a.Cols; k++ {
				s += a.At(i, k) * b.At(j, k)
			}
			dst.Set(i, j, s)
		}
	}
}
