package lapack

import "repro/internal/blas"

// Dgehd2 reduces columns ilo..n-2 of the n×n matrix A to upper Hessenberg
// form by an unblocked sequence of orthogonal similarity transformations
// Qᵀ A Q = H (netlib DGEHD2 with ihi = n). On exit the Hessenberg result
// occupies the upper triangle and first subdiagonal; the Householder
// vectors occupy the elements below the first subdiagonal, with scalar
// factors in tau[ilo..n-2].
//
// The caller must supply tau with length at least n-1 and work with length
// at least n.
func Dgehd2(n, ilo int, a []float64, lda int, tau, work []float64) {
	if n < 0 || ilo < 0 || ilo > n {
		panic("lapack: Dgehd2 bad arguments")
	}
	for i := ilo; i < n-1; i++ {
		// Generate H(i) to annihilate A(i+2:n-1, i).
		beta, t := Dlarfg(n-1-i, a[i*lda+i+1], a[i*lda+min(i+2, n-1):], 1)
		tau[i] = t
		a[i*lda+i+1] = 1
		// Apply H(i) to A(0:n-1, i+1:n-1) from the right.
		Dlarf(blas.Right, n, n-1-i, a[i*lda+i+1:], 1, t, a[(i+1)*lda:], lda, work)
		// Apply H(i) to A(i+1:n-1, i+1:n-1) from the left.
		Dlarf(blas.Left, n-1-i, n-1-i, a[i*lda+i+1:], 1, t, a[(i+1)*lda+i+1:], lda, work)
		a[i*lda+i+1] = beta
	}
}

// Dlahr2 reduces the first nb columns of the (n-k)×(n-k) trailing block
// A(k:n-1, 0:nb-1) of the panel a (whose column 0 is the first panel
// column of the global matrix) to Hessenberg form, returning the block
// reflector factors: the Householder vectors in the panel (unit lower
// trapezoidal, below row k), tau[0..nb-1], the nb×nb upper triangular T,
// and Y = A·V·T with the full n rows of Y filled (rows 0..k-1 at the end).
//
// This is the netlib DLAHR2 translated to zero-based indexing. k is the
// number of leading rows untouched by the reflectors (for the panel
// starting at global column j, k = j+1).
func Dlahr2(n, k, nb int, a []float64, lda int, tau []float64, t []float64, ldt int, y []float64, ldy int) {
	if n <= 1 {
		return
	}
	var ei float64
	for i := 0; i < nb; i++ {
		if i > 0 {
			// Update column i of the panel with the previous reflectors.
			//
			// A(k:n-1, i) -= Y(k:n-1, 0:i-1) * A(k+i-1, 0:i-1)ᵀ
			blas.Dgemv(blas.NoTrans, n-k, i, -1, y[k:], ldy, a[k+i-1:], lda, 1, a[i*lda+k:], 1)
			// Apply I - V Tᵀ Vᵀ to the column from the left, using
			// column nb-1 of T as workspace w.
			w := t[(nb-1)*ldt:]
			// w := V1ᵀ b1  (V1 = A(k:k+i-1, 0:i-1) unit lower)
			blas.Dcopy(i, a[i*lda+k:], 1, w, 1)
			blas.Dtrmv(blas.Lower, blas.Trans, blas.Unit, i, a[k:], lda, w, 1)
			// w += V2ᵀ b2  (V2 = A(k+i:n-1, 0:i-1))
			blas.Dgemv(blas.Trans, n-k-i, i, 1, a[k+i:], lda, a[i*lda+k+i:], 1, 1, w, 1)
			// w := Tᵀ w
			blas.Dtrmv(blas.Upper, blas.Trans, blas.NonUnit, i, t, ldt, w, 1)
			// b2 -= V2 w
			blas.Dgemv(blas.NoTrans, n-k-i, i, -1, a[k+i:], lda, w, 1, 1, a[i*lda+k+i:], 1)
			// b1 -= V1 w
			blas.Dtrmv(blas.Lower, blas.NoTrans, blas.Unit, i, a[k:], lda, w, 1)
			blas.Daxpy(i, -1, w, 1, a[i*lda+k:], 1)
			// Restore the subdiagonal element of the previous column.
			a[(i-1)*lda+k+i-1] = ei
		}
		// Generate the elementary reflector H(i) to annihilate
		// A(k+i+1:n-1, i).
		var beta float64
		beta, tau[i] = Dlarfg(n-k-i, a[i*lda+k+i], a[i*lda+min(k+i+1, n-1):], 1)
		a[i*lda+k+i] = beta
		ei = beta
		a[i*lda+k+i] = 1
		// Y(k:n-1, i) := A(k:n-1, i+1:i+n-k-i) * v
		blas.Dgemv(blas.NoTrans, n-k, n-k-i, 1, a[(i+1)*lda+k:], lda, a[i*lda+k+i:], 1, 0, y[i*ldy+k:], 1)
		// T(0:i-1, i) := V2ᵀ v
		blas.Dgemv(blas.Trans, n-k-i, i, 1, a[k+i:], lda, a[i*lda+k+i:], 1, 0, t[i*ldt:], 1)
		// Y(k:n-1, i) -= Y(k:n-1, 0:i-1) * T(0:i-1, i)
		blas.Dgemv(blas.NoTrans, n-k, i, -1, y[k:], ldy, t[i*ldt:], 1, 1, y[i*ldy+k:], 1)
		blas.Dscal(n-k, tau[i], y[i*ldy+k:], 1)
		// T(0:i, i): finish column i of the triangular factor.
		blas.Dscal(i, -tau[i], t[i*ldt:], 1)
		blas.Dtrmv(blas.Upper, blas.NoTrans, blas.NonUnit, i, t, ldt, t[i*ldt:], 1)
		t[i*ldt+i] = tau[i]
	}
	a[(nb-1)*lda+k+nb-1] = ei

	// Y(0:k-1, 0:nb-1) := A(0:k-1, 1:nb) * V * T  (the top rows of Y,
	// needed by the caller's right update of the rows above the panel).
	for j := 0; j < nb; j++ {
		blas.Dcopy(k, a[(j+1)*lda:], 1, y[j*ldy:], 1)
	}
	blas.Dtrmm(blas.Right, blas.Lower, blas.NoTrans, blas.Unit, k, nb, 1, a[k:], lda, y, ldy)
	if n > k+nb {
		blas.Dgemm(blas.NoTrans, blas.NoTrans, k, nb, n-k-nb, 1, a[(nb+1)*lda:], lda, a[k+nb:], lda, 1, y, ldy)
	}
	blas.Dtrmm(blas.Right, blas.Upper, blas.NoTrans, blas.NonUnit, k, nb, 1, t, ldt, y, ldy)
}

// Dgehrd reduces the n×n matrix A to upper Hessenberg form using the
// blocked algorithm of the paper's Algorithm 1 (netlib DGEHRD): panels are
// factorized with Dlahr2 and the trailing matrix is updated with one GEMM
// (right update, using Y = A·V·T) and one Dlarfb (left update). nb is the
// block size; tau must have length at least n-1.
func Dgehrd(n, nb int, a []float64, lda int, tau []float64) {
	if n < 0 {
		panic("lapack: Dgehrd negative n")
	}
	if nb < 1 {
		nb = 1
	}
	for i := range tau[:max(n-1, 0)] {
		tau[i] = 0
	}
	if n <= 1 {
		return
	}
	// nx is the blocked/unblocked crossover: keep using blocked code while
	// the remaining trailing matrix is larger than nx.
	nx := nb
	if nx < 2 {
		nx = 2
	}
	t := make([]float64, nb*nb)
	y := make([]float64, n*nb)
	work := make([]float64, n*max(nb, 1))

	i := 0
	for ; n-1-i > nx; i += nb {
		ib := min(nb, n-1-i)
		// Panel factorization: reduce columns i..i+ib-1, returning V
		// (in the panel), T and Y = A·V·T.
		Dlahr2(n, i+1, ib, a[i*lda:], lda, tau[i:], t, nb, y, n)
		// Right update of the trailing columns:
		// A(0:n-1, i+ib:n-1) -= Y * V(i+ib:n-1, :)ᵀ
		// with the subdiagonal corner of V temporarily set to 1.
		ei := a[(i+ib-1)*lda+i+ib]
		a[(i+ib-1)*lda+i+ib] = 1
		blas.Dgemm(blas.NoTrans, blas.Trans, n, n-i-ib, ib, -1,
			y, n, a[i*lda+i+ib:], lda, 1, a[(i+ib)*lda:], lda)
		a[(i+ib-1)*lda+i+ib] = ei
		// Right update of the rows above the panel for the panel's own
		// columns i+1..i+ib-1:
		// A(0:i, i+1:i+ib-1) -= Y(0:i, 0:ib-2) * V1ᵀ
		blas.Dtrmm(blas.Right, blas.Lower, blas.Trans, blas.Unit, i+1, ib-1, 1, a[i*lda+i+1:], lda, y, n)
		for j := 0; j < ib-1; j++ {
			blas.Daxpy(i+1, -1, y[j*n:], 1, a[(i+j+1)*lda:], 1)
		}
		// Left update of the trailing matrix:
		// A(i+1:n-1, i+ib:n-1) := (I - V T Vᵀ)ᵀ A(i+1:n-1, i+ib:n-1)
		Dlarfb(blas.Left, blas.Trans, n-i-1, n-i-ib, ib,
			a[i*lda+i+1:], lda, t, nb, a[(i+ib)*lda+i+1:], lda, work, n)
	}
	// Unblocked reduction of the remaining columns.
	Dgehd2(n, i, a, lda, tau, work)
}
