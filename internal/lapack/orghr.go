package lapack

import (
	"repro/internal/blas"

	"repro/internal/matrix"
)

// Dorghr explicitly forms the n×n orthogonal matrix Q of the Hessenberg
// reduction Qᵀ A Q = H from the Householder vectors stored below the first
// subdiagonal of a (as left by Dgehrd/Dgehd2) and the scalar factors tau.
//
// Q = H(0)·H(1)···H(n-3); reflector i acts on rows/columns i+1..n-1.
func Dorghr(n int, a []float64, lda int, tau []float64) *matrix.Matrix {
	q := matrix.Identity(n)
	if n <= 2 {
		return q
	}
	work := make([]float64, n)
	v := make([]float64, n)
	// Apply reflectors from the last to the first so that each
	// multiplication Q := H(i)·Q only touches the trailing block.
	for i := n - 3; i >= 0; i-- {
		if tau[i] == 0 {
			continue
		}
		// v = [1, A(i+2:n-1, i)] spanning rows i+1..n-1.
		m := n - 1 - i
		v[0] = 1
		copy(v[1:m], a[i*lda+i+2:i*lda+i+2+(m-1)])
		sub := q.View(i+1, i+1, m, m)
		Dlarf(blas.Left, m, m, v[:m], 1, tau[i], sub.Data, sub.Stride, work)
	}
	return q
}

// HessFromPacked extracts the upper Hessenberg matrix H from the packed
// output of Dgehrd (zeroing the Householder-vector storage below the first
// subdiagonal).
func HessFromPacked(n int, a []float64, lda int) *matrix.Matrix {
	h := matrix.New(n, n)
	for j := 0; j < n; j++ {
		top := min(j+2, n)
		for i := 0; i < top; i++ {
			h.Set(i, j, a[j*lda+i])
		}
	}
	return h
}
