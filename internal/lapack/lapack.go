// Package lapack implements the LAPACK-style dense kernels needed by the
// Hessenberg reduction paper: Householder reflector generation and
// application (DLARFG/DLARF/DLARFT/DLARFB), the unblocked and blocked
// Hessenberg reductions (DGEHD2/DLAHR2/DGEHRD, the paper's Algorithm 1),
// explicit Q formation (DORGHR), and a Hessenberg QR eigenvalue solver
// (DHSEQR-style, Francis double shift) that turns the reduction into a
// complete eigenvalue path.
//
// All routines are zero-based ports of the netlib reference algorithms over
// column-major storage (slice + leading dimension), matching the BLAS
// conventions in internal/blas. Keeping the exact reference operation
// order matters: the fault-tolerant algorithm in internal/ft maintains
// checksums through these updates and reverses them bit-compatibly.
package lapack

import "math"

// sign returns |a| with the sign of b, the Fortran SIGN intrinsic.
func sign(a, b float64) float64 {
	if b < 0 {
		return -math.Abs(a)
	}
	return math.Abs(a)
}
