package lapack

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/matrix"
)

func TestEigenRotationMatrix(t *testing.T) {
	// [[0,-1],[1,0]]: eigenpairs (±i, [1, ∓i]/√2).
	a := matrix.FromRows([][]float64{{0, -1}, {1, 0}})
	e, err := Eigen(a, 4)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 2; j++ {
		if math.Abs(e.Values[j].Re) > 1e-13 || math.Abs(math.Abs(e.Values[j].Im)-1) > 1e-13 {
			t.Fatalf("eig %d = %v", j, e.Values[j])
		}
		if r := e.EigResidual(a, j); r > 1e-12 {
			t.Fatalf("eig %d residual %v", j, r)
		}
	}
}

func TestEigenValuesMatchDhseqr(t *testing.T) {
	// The Schur path must agree with the eigenvalue-only path.
	n := 30
	a := matrix.RandomNormal(n, n, 17)
	e, err := Eigen(a, 8)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Eigenvalues(a, 8)
	if err != nil {
		t.Fatal(err)
	}
	got := append([]Eig(nil), e.Values...)
	SortEigs(got)
	for i := range plain {
		if math.Abs(got[i].Re-plain[i].Re) > 1e-9 || math.Abs(got[i].Im-plain[i].Im) > 1e-9 {
			t.Fatalf("eig %d: schur %v vs hqr %v", i, got[i], plain[i])
		}
	}
}

func TestEigenResidualsGeneral(t *testing.T) {
	// Every eigenpair — real and complex — must satisfy A·x = λ·x.
	for _, seed := range []uint64{1, 2, 3} {
		n := 25
		a := matrix.RandomNormal(n, n, seed)
		e, err := Eigen(a, 8)
		if err != nil {
			t.Fatal(err)
		}
		an := a.Norm1()
		complexSeen := 0
		for j := 0; j < n; j++ {
			if e.Values[j].Im != 0 {
				complexSeen++
			}
			if r := e.EigResidual(a, j); r > 1e-9*an {
				t.Fatalf("seed %d eig %d (λ=%v+%vi): residual %v", seed, j, e.Values[j].Re, e.Values[j].Im, r)
			}
		}
		if seed == 1 && complexSeen == 0 {
			t.Log("note: no complex pairs in this draw")
		}
	}
}

func TestEigenSymmetric(t *testing.T) {
	n := 20
	a := matrix.Random(n, n, 9)
	for j := 0; j < n; j++ {
		for i := 0; i < j; i++ {
			a.Set(i, j, a.At(j, i))
		}
	}
	e, err := Eigen(a, 8)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < n; j++ {
		if e.Values[j].Im != 0 {
			t.Fatalf("symmetric matrix produced complex λ %v", e.Values[j])
		}
		if r := e.EigResidual(a, j); r > 1e-10*a.Norm1() {
			t.Fatalf("eig %d residual %v", j, r)
		}
	}
}

func TestEigenCompanionComplexRoots(t *testing.T) {
	// x⁴ = 1: roots ±1, ±i.
	n := 4
	a := matrix.New(n, n)
	for i := 1; i < n; i++ {
		a.Set(i, i-1, 1)
	}
	a.Set(0, n-1, 1) // companion of x⁴ − 1
	e, err := Eigen(a, 4)
	if err != nil {
		t.Fatal(err)
	}
	var got []float64
	for j := 0; j < n; j++ {
		got = append(got, math.Hypot(e.Values[j].Re, e.Values[j].Im))
		if r := e.EigResidual(a, j); r > 1e-10 {
			t.Fatalf("eig %d (%v+%vi): residual %v", j, e.Values[j].Re, e.Values[j].Im, r)
		}
	}
	sort.Float64s(got)
	for _, m := range got {
		if math.Abs(m-1) > 1e-10 {
			t.Fatalf("root magnitudes %v, want all 1", got)
		}
	}
}

func TestEigenTrivial(t *testing.T) {
	if _, err := Eigen(matrix.New(2, 3), 4); err == nil {
		t.Fatal("non-square accepted")
	}
	e, err := Eigen(matrix.FromRows([][]float64{{7}}), 4)
	if err != nil || e.Values[0].Re != 7 {
		t.Fatalf("1x1: %v %v", e, err)
	}
	z, err := Eigen(matrix.New(3, 3), 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range z.Values {
		if v.Re != 0 || v.Im != 0 {
			t.Fatalf("zero matrix eig %v", v)
		}
	}
}

func TestSchurDecomposition(t *testing.T) {
	// A = Z·T·Zᵀ with T quasi-triangular and Z orthogonal.
	n := 28
	a := matrix.RandomNormal(n, n, 6)
	packed := a.Clone()
	tau := make([]float64, n-1)
	Dgehrd(n, 8, packed.Data, packed.Stride, tau)
	h := HessFromPacked(n, packed.Data, packed.Stride)
	z := Dorghr(n, packed.Data, packed.Stride, tau)
	wr := make([]float64, n)
	wi := make([]float64, n)
	if err := DhseqrSchur(n, h, z, wr, wi); err != nil {
		t.Fatal(err)
	}
	// Quasi-triangular: nothing below the first subdiagonal, and any
	// subdiagonal entry belongs to a 2×2 complex block.
	for j := 0; j < n; j++ {
		for i := j + 2; i < n; i++ {
			if math.Abs(h.At(i, j)) > 1e-10 {
				t.Fatalf("T(%d,%d) = %v below quasi-triangular band", i, j, h.At(i, j))
			}
		}
	}
	for i := 1; i < n; i++ {
		if math.Abs(h.At(i, i-1)) > 1e-10 && wi[i-1] == 0 {
			t.Fatalf("subdiagonal at %d without a complex pair", i)
		}
	}
	if r := OrthogonalityResidual(z); r > 1e-12 {
		t.Fatalf("Schur vectors not orthogonal: %v", r)
	}
	if r := FactorizationResidual(a, z, h); r > 1e-13 {
		t.Fatalf("‖A − Z·T·Zᵀ‖/(N‖A‖) = %v", r)
	}
	// Diagonal blocks carry the eigenvalues: traces must agree.
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += wr[i]
	}
	if math.Abs(sum-a.Trace()) > 1e-9*(1+math.Abs(a.Trace())) {
		t.Fatalf("Σλ %v vs trace %v", sum, a.Trace())
	}
}

// Property: every eigenpair of random matrices satisfies its defining
// equation, real and complex alike.
func TestPropEigenResiduals(t *testing.T) {
	f := func(seed uint64) bool {
		n := 8 + int(seed%20)
		a := matrix.RandomNormal(n, n, seed)
		e, err := Eigen(a, 4+int(seed%8))
		if err != nil {
			return false
		}
		an := a.Norm1()
		for j := 0; j < n; j++ {
			if e.EigResidual(a, j) > 1e-8*an {
				t.Logf("seed %d eig %d: residual %v", seed, j, e.EigResidual(a, j))
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}
