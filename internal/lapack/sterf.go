package lapack

import (
	"errors"
	"math"
)

// ErrSterfNoConvergence is returned when the tridiagonal QL iteration
// exceeds its iteration budget.
var ErrSterfNoConvergence = errors.New("lapack: symmetric tridiagonal eigenvalue iteration did not converge")

// Dsterf computes all eigenvalues of a symmetric tridiagonal matrix with
// diagonal d (length n) and subdiagonal e (length n-1) using the implicit
// QL algorithm with Wilkinson shift (EISPACK TQL1 lineage). On success the
// eigenvalues overwrite d in ascending order; e is destroyed.
func Dsterf(n int, d, e []float64) error {
	if n <= 1 {
		return nil
	}
	// Work on a copy of e extended with a zero sentinel.
	work := make([]float64, n)
	copy(work, e[:n-1])
	work[n-1] = 0

	for l := 0; l < n; l++ {
		iter := 0
		for {
			// Find the first small subdiagonal at or after l.
			m := l
			for ; m < n-1; m++ {
				dd := math.Abs(d[m]) + math.Abs(d[m+1])
				if math.Abs(work[m]) <= macheps*dd {
					break
				}
			}
			if m == l {
				break
			}
			if iter == 50 {
				return ErrSterfNoConvergence
			}
			iter++
			// Wilkinson shift from the leading 2×2 of the active block.
			g := (d[l+1] - d[l]) / (2 * work[l])
			r := math.Hypot(g, 1)
			g = d[m] - d[l] + work[l]/(g+sign(r, g))
			s, c := 1.0, 1.0
			p := 0.0
			// Implicit QL sweep from m-1 down to l.
			for i := m - 1; i >= l; i-- {
				f := s * work[i]
				b := c * work[i]
				r = math.Hypot(f, g)
				work[i+1] = r
				if r == 0 {
					// Recover from underflow: split the matrix.
					d[i+1] -= p
					work[m] = 0
					break
				}
				s = f / r
				c = g / r
				g = d[i+1] - p
				r = (d[i]-g)*s + 2*c*b
				p = s * r
				d[i+1] = g + p
				g = c*r - b
				if i == l {
					d[l] -= p
					work[l] = g
					work[m] = 0
				}
			}
		}
	}
	// Ascending order (insertion sort; n is moderate and d is nearly
	// ordered after QL).
	for i := 1; i < n; i++ {
		v := d[i]
		j := i - 1
		for j >= 0 && d[j] > v {
			d[j+1] = d[j]
			j--
		}
		d[j+1] = v
	}
	return nil
}

// SymEigenvalues computes all eigenvalues of a dense symmetric matrix
// (lower triangle referenced) by tridiagonal reduction plus the QL
// iteration. a is not modified.
func SymEigenvalues(aData []float64, n, lda, nb int) ([]float64, error) {
	work := make([]float64, n*n)
	for j := 0; j < n; j++ {
		copy(work[j*n:j*n+n], aData[j*lda:j*lda+n])
	}
	d := make([]float64, n)
	e := make([]float64, max(n-1, 1))
	tau := make([]float64, max(n-1, 1))
	Dsytrd(n, nb, work, n, d, e, tau)
	if err := Dsterf(n, d, e); err != nil {
		return nil, err
	}
	return d, nil
}
