package lapack

import (
	"errors"
	"math"

	"repro/internal/blas"
	"repro/internal/matrix"
)

// Inverse iteration on the Hessenberg factor (the DHSEIN approach): given
// an eigenvalue estimate λ from the QR iteration, solve (H − λI)·x ≈ b by
// Hessenberg LU with partial pivoting and renormalize. One or two
// iterations give an eigenvector to machine precision for well-separated
// eigenvalues; mapping back through Q yields the eigenvector of the
// original matrix. Real eigenvalues only (complex pairs would need
// complex arithmetic; the symmetric path is always fully real).

// ErrEigenvectorFailed reports a non-converged inverse iteration.
var ErrEigenvectorFailed = errors.New("lapack: inverse iteration did not converge")

// HessEigenvector computes a unit-norm right eigenvector of the upper
// Hessenberg matrix h for the (real) eigenvalue lambda. h is not modified.
func HessEigenvector(h *matrix.Matrix, lambda float64) ([]float64, error) {
	n := h.Rows
	if n == 0 {
		return nil, errors.New("lapack: empty matrix")
	}
	// Shifted copy in banded-friendly dense form.
	hn := h.Norm1()
	if hn == 0 {
		hn = 1
	}
	// A tiny perturbation of λ keeps (H-λI) invertible without moving the
	// eigenvector at this precision (the standard DHSEIN trick).
	eps3 := macheps * hn
	shift := lambda + eps3

	x := make([]float64, n)
	for i := range x {
		x[i] = 1 / math.Sqrt(float64(n))
	}
	var residual float64
	for iter := 0; iter < 4; iter++ {
		y := append([]float64(nil), x...)
		if !hessSolve(h, shift, y) {
			// Singular to working precision: perturb a bit more.
			shift += eps3
			continue
		}
		nrm := blas.Dnrm2(n, y, 1)
		if nrm == 0 || math.IsInf(nrm, 0) || math.IsNaN(nrm) {
			shift += eps3
			continue
		}
		blas.Dscal(n, 1/nrm, y, 1)
		copy(x, y)
		// Converged when ‖(H−λI)x‖ is tiny relative to ‖H‖.
		residual = hessApplyResidual(h, lambda, x)
		if residual <= 100*macheps*hn*float64(n) {
			return x, nil
		}
	}
	if residual <= 1e-8*hn {
		return x, nil // acceptable for clustered eigenvalues
	}
	return nil, ErrEigenvectorFailed
}

// hessSolve solves (H − shift·I)·x = b in place (b = x on entry) by
// Hessenberg LU with partial pivoting, O(n²). Returns false if a pivot
// underflows to zero.
func hessSolve(h *matrix.Matrix, shift float64, x []float64) bool {
	n := h.Rows
	// Working copy of the Hessenberg band (dense for simplicity).
	u := h.Clone()
	for i := 0; i < n; i++ {
		u.Add(i, i, -shift)
	}
	// Forward elimination with row pivoting between adjacent rows (the
	// only fill pattern a Hessenberg matrix allows).
	for k := 0; k < n-1; k++ {
		if math.Abs(u.At(k+1, k)) > math.Abs(u.At(k, k)) {
			// Swap rows k and k+1 (columns k..n-1) and the rhs.
			for j := k; j < n; j++ {
				a, b := u.At(k, j), u.At(k+1, j)
				u.Set(k, j, b)
				u.Set(k+1, j, a)
			}
			x[k], x[k+1] = x[k+1], x[k]
		}
		p := u.At(k, k)
		if p == 0 {
			return false
		}
		m := u.At(k+1, k) / p
		if m != 0 {
			for j := k; j < n; j++ {
				u.Add(k+1, j, -m*u.At(k, j))
			}
			x[k+1] -= m * x[k]
		}
	}
	if u.At(n-1, n-1) == 0 {
		return false
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= u.At(i, j) * x[j]
		}
		x[i] = s / u.At(i, i)
	}
	return true
}

// hessApplyResidual returns ‖(H − λI)·x‖₂ for a unit vector x.
func hessApplyResidual(h *matrix.Matrix, lambda float64, x []float64) float64 {
	n := h.Rows
	y := make([]float64, n)
	blas.Dgemv(blas.NoTrans, n, n, 1, h.Data, h.Stride, x, 1, 0, y, 1)
	blas.Daxpy(n, -lambda, x, 1, y, 1)
	return blas.Dnrm2(n, y, 1)
}

// EigenPair is an eigenvalue with its right eigenvector (real only).
type EigenPair struct {
	Value  float64
	Vector []float64
}

// RealEigenvectors computes the real eigenvalues of a general square
// matrix together with unit right eigenvectors: blocked Hessenberg
// reduction, Francis QR for the values, inverse iteration on H for the
// Hessenberg eigenvectors, and a back-transformation through Q. Complex
// pairs are skipped (their count is returned). a is not modified.
func RealEigenvectors(a *matrix.Matrix, nb int) (pairs []EigenPair, complexCount int, err error) {
	n := a.Rows
	if n != a.Cols {
		return nil, 0, errors.New("lapack: matrix must be square")
	}
	packed := a.Clone()
	tau := make([]float64, max(n-1, 1))
	Dgehrd(n, nb, packed.Data, packed.Stride, tau)
	h := HessFromPacked(n, packed.Data, packed.Stride)
	q := Dorghr(n, packed.Data, packed.Stride, tau)

	hw := h.Clone()
	wr := make([]float64, n)
	wi := make([]float64, n)
	if err := Dhseqr(n, hw.Data, hw.Stride, wr, wi); err != nil {
		return nil, 0, err
	}
	for i := 0; i < n; i++ {
		if wi[i] != 0 {
			complexCount++
			continue
		}
		xh, err := HessEigenvector(h, wr[i])
		if err != nil {
			return nil, complexCount, err
		}
		// Back-transform: x = Q·x_H.
		x := make([]float64, n)
		blas.Dgemv(blas.NoTrans, n, n, 1, q.Data, q.Stride, xh, 1, 0, x, 1)
		pairs = append(pairs, EigenPair{Value: wr[i], Vector: x})
	}
	return pairs, complexCount, nil
}
