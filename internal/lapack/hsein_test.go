package lapack

import (
	"math"
	"testing"

	"repro/internal/blas"
	"repro/internal/matrix"
)

// eigResidual returns ‖A·x − λ·x‖₂ for unit x.
func eigResidual(a *matrix.Matrix, lambda float64, x []float64) float64 {
	n := a.Rows
	y := make([]float64, n)
	blas.Dgemv(blas.NoTrans, n, n, 1, a.Data, a.Stride, x, 1, 0, y, 1)
	blas.Daxpy(n, -lambda, x, 1, y, 1)
	return blas.Dnrm2(n, y, 1)
}

func TestHessEigenvectorKnown(t *testing.T) {
	// Upper triangular: eigenvalues on the diagonal, first eigenvector e1.
	h := matrix.FromRows([][]float64{
		{3, 1, 2},
		{0, 1, 4},
		{0, 0, -2},
	})
	x, err := HessEigenvector(h, 3)
	if err != nil {
		t.Fatal(err)
	}
	if r := eigResidual(h, 3, x); r > 1e-12 {
		t.Fatalf("residual %v", r)
	}
	if math.Abs(math.Abs(x[0])-1) > 1e-10 {
		t.Fatalf("eigenvector for λ=3 should be ±e1, got %v", x)
	}
}

func TestHessSolveAgainstDense(t *testing.T) {
	// Verify the O(n²) Hessenberg solver against a direct residual check.
	n := 12
	a := matrix.Random(n, n, 3)
	packed := a.Clone()
	tau := make([]float64, n-1)
	Dgehrd(n, 4, packed.Data, packed.Stride, tau)
	h := HessFromPacked(n, packed.Data, packed.Stride)
	b := matrix.Random(n, 1, 4).Col(0)
	x := append([]float64(nil), b...)
	if !hessSolve(h, 0.37, x) {
		t.Fatal("solver reported singularity")
	}
	// Check H·x − 0.37·x = b.
	y := make([]float64, n)
	blas.Dgemv(blas.NoTrans, n, n, 1, h.Data, h.Stride, x, 1, 0, y, 1)
	blas.Daxpy(n, -0.37, x, 1, y, 1)
	for i := range b {
		if math.Abs(y[i]-b[i]) > 1e-10*(1+math.Abs(b[i])) {
			t.Fatalf("solve wrong at %d: %v vs %v", i, y[i], b[i])
		}
	}
}

func TestRealEigenvectorsSymmetric(t *testing.T) {
	// Symmetric matrices have a full set of real eigenpairs.
	n := 30
	a := matrix.Random(n, n, 8)
	for j := 0; j < n; j++ {
		for i := 0; i < j; i++ {
			a.Set(i, j, a.At(j, i))
		}
	}
	pairs, complexCount, err := RealEigenvectors(a, 8)
	if err != nil {
		t.Fatal(err)
	}
	if complexCount != 0 {
		t.Fatalf("symmetric matrix produced %d complex eigenvalues", complexCount)
	}
	if len(pairs) != n {
		t.Fatalf("%d eigenpairs, want %d", len(pairs), n)
	}
	an := a.Norm1()
	for _, pr := range pairs {
		if nrm := blas.Dnrm2(n, pr.Vector, 1); math.Abs(nrm-1) > 1e-10 {
			t.Fatalf("eigenvector not unit: %v", nrm)
		}
		if r := eigResidual(a, pr.Value, pr.Vector); r > 1e-10*an {
			t.Fatalf("λ=%v: ‖Ax−λx‖ = %v", pr.Value, r)
		}
	}
}

func TestRealEigenvectorsGeneral(t *testing.T) {
	// Random general matrix: real eigenvalues get vectors, complex pairs
	// are counted.
	n := 24
	a := matrix.RandomNormal(n, n, 5)
	pairs, complexCount, err := RealEigenvectors(a, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs)+complexCount != n {
		t.Fatalf("pairs %d + complex %d != %d", len(pairs), complexCount, n)
	}
	an := a.Norm1()
	for _, pr := range pairs {
		if r := eigResidual(a, pr.Value, pr.Vector); r > 1e-9*an {
			t.Fatalf("λ=%v: residual %v", pr.Value, r)
		}
	}
}

func TestRealEigenvectorsPlantedBasis(t *testing.T) {
	// Diagonal matrix conjugated by orthogonal Q: eigenvectors must match
	// Q's columns up to sign.
	n := 16
	want := make([]float64, n)
	for i := range want {
		want[i] = float64(2*i + 1) // well separated
	}
	d := matrix.New(n, n)
	for i, v := range want {
		d.Set(i, i, v)
	}
	_, _, q := reduceBlocked(matrix.Random(n, n, 44), 4)
	tmp := matrix.New(n, n)
	a := matrix.New(n, n)
	mul(tmp, q, d)
	mulT(a, tmp, q)

	pairs, _, err := RealEigenvectors(a, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, pr := range pairs {
		// Find the planted eigenvalue and compare the vector to Q's column.
		k := -1
		for i, v := range want {
			if math.Abs(v-pr.Value) < 1e-8 {
				k = i
			}
		}
		if k < 0 {
			t.Fatalf("unexpected eigenvalue %v", pr.Value)
		}
		dot := 0.0
		for i := 0; i < n; i++ {
			dot += pr.Vector[i] * q.At(i, k)
		}
		if math.Abs(math.Abs(dot)-1) > 1e-9 {
			t.Fatalf("λ=%v: |<x, q_k>| = %v, want 1", pr.Value, math.Abs(dot))
		}
	}
}

func TestRealEigenvectorsNonSquare(t *testing.T) {
	if _, _, err := RealEigenvectors(matrix.New(2, 3), 4); err == nil {
		t.Fatal("non-square accepted")
	}
}
