package lapack

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/blas"
	"repro/internal/matrix"
)

// randomSymmetric returns a dense symmetric matrix.
func randomSymmetric(n int, seed uint64) *matrix.Matrix {
	a := matrix.Random(n, n, seed)
	for j := 0; j < n; j++ {
		for i := 0; i < j; i++ {
			a.Set(i, j, a.At(j, i))
		}
	}
	return a
}

// tridiagReduce runs Dsytd2 or Dsytrd on a copy and returns (d, e, Q).
func tridiagReduce(a *matrix.Matrix, nb int, blocked bool) ([]float64, []float64, *matrix.Matrix) {
	n := a.Rows
	w := a.Clone()
	d := make([]float64, n)
	e := make([]float64, max(n-1, 1))
	tau := make([]float64, max(n-1, 1))
	if blocked {
		Dsytrd(n, nb, w.Data, w.Stride, d, e, tau)
	} else {
		Dsytd2(n, w.Data, w.Stride, d, e, tau)
	}
	// The reflector layout matches the Hessenberg packed layout, so
	// Dorghr forms Q = H(0)···H(n-3) directly.
	q := Dorghr(n, w.Data, w.Stride, tau)
	return d, e, q
}

// tridiagResidual returns ‖A − Q·T·Qᵀ‖₁/(N‖A‖₁).
func tridiagResidual(a *matrix.Matrix, d, e []float64, q *matrix.Matrix) float64 {
	n := a.Rows
	t := matrix.New(n, n)
	for i := 0; i < n; i++ {
		t.Set(i, i, d[i])
		if i > 0 {
			t.Set(i, i-1, e[i-1])
			t.Set(i-1, i, e[i-1])
		}
	}
	return FactorizationResidual(a, q, t)
}

func TestDsytd2Reduces(t *testing.T) {
	for _, n := range []int{1, 2, 3, 10, 25} {
		a := randomSymmetric(n, uint64(n))
		d, e, q := tridiagReduce(a, 0, false)
		if r := tridiagResidual(a, d, e, q); r > 1e-14 {
			t.Fatalf("n=%d: residual %v", n, r)
		}
		if r := OrthogonalityResidual(q); r > 1e-14*float64(n) {
			t.Fatalf("n=%d: Q not orthogonal: %v", n, r)
		}
	}
}

func TestDsytd2PreservesTrace(t *testing.T) {
	n := 30
	a := randomSymmetric(n, 3)
	d, _, _ := tridiagReduce(a, 0, false)
	sum := 0.0
	for _, v := range d {
		sum += v
	}
	if math.Abs(sum-a.Trace()) > 1e-11 {
		t.Fatalf("trace %v vs Σd %v", a.Trace(), sum)
	}
}

func TestDsytrdMatchesUnblocked(t *testing.T) {
	for _, tc := range []struct{ n, nb int }{
		{20, 4}, {33, 8}, {64, 16}, {65, 16}, {50, 32},
	} {
		a := randomSymmetric(tc.n, uint64(tc.n*7))
		d1, e1, _ := tridiagReduce(a, 0, false)
		d2, e2, _ := tridiagReduce(a, tc.nb, true)
		for i := 0; i < tc.n; i++ {
			if math.Abs(d1[i]-d2[i]) > 1e-11 {
				t.Fatalf("n=%d nb=%d: d[%d] %v vs %v", tc.n, tc.nb, i, d2[i], d1[i])
			}
		}
		for i := 0; i < tc.n-1; i++ {
			if math.Abs(e1[i]-e2[i]) > 1e-11 {
				t.Fatalf("n=%d nb=%d: e[%d] %v vs %v", tc.n, tc.nb, i, e2[i], e1[i])
			}
		}
	}
}

func TestDsytrdResidual(t *testing.T) {
	n := 100
	a := randomSymmetric(n, 9)
	d, e, q := tridiagReduce(a, 16, true)
	if r := tridiagResidual(a, d, e, q); r > 1e-14 {
		t.Fatalf("residual %v", r)
	}
}

func TestDsterfDiagonal(t *testing.T) {
	d := []float64{3, -1, 2}
	e := []float64{0, 0}
	if err := Dsterf(3, d, e); err != nil {
		t.Fatal(err)
	}
	want := []float64{-1, 2, 3}
	for i := range want {
		if math.Abs(d[i]-want[i]) > 1e-14 {
			t.Fatalf("d = %v", d)
		}
	}
}

func TestDsterfLaplacianSpectrum(t *testing.T) {
	// tri(-1, 2, -1): eigenvalues 2-2cos(kπ/(n+1)).
	n := 40
	d := make([]float64, n)
	e := make([]float64, n-1)
	for i := range d {
		d[i] = 2
	}
	for i := range e {
		e[i] = -1
	}
	if err := Dsterf(n, d, e); err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= n; k++ {
		want := 2 - 2*math.Cos(float64(k)*math.Pi/float64(n+1))
		if math.Abs(d[k-1]-want) > 1e-12 {
			t.Fatalf("λ_%d = %v, want %v", k, d[k-1], want)
		}
	}
}

func TestDsterfTinySizes(t *testing.T) {
	if err := Dsterf(0, nil, nil); err != nil {
		t.Fatal(err)
	}
	d := []float64{5}
	if err := Dsterf(1, d, nil); err != nil || d[0] != 5 {
		t.Fatalf("n=1: %v %v", d, err)
	}
	d2 := []float64{0, 0}
	e2 := []float64{1}
	if err := Dsterf(2, d2, e2); err != nil {
		t.Fatal(err)
	}
	if math.Abs(d2[0]+1) > 1e-14 || math.Abs(d2[1]-1) > 1e-14 {
		t.Fatalf("2x2 spectrum %v, want [-1 1]", d2)
	}
}

func TestSymEigenvaluesEndToEnd(t *testing.T) {
	// Dense symmetric matrix with a planted spectrum.
	n := 40
	want := make([]float64, n)
	for i := range want {
		want[i] = float64(i) - 10.5
	}
	diag := matrix.New(n, n)
	for i, v := range want {
		diag.Set(i, i, v)
	}
	_, _, q := reduceBlocked(matrix.Random(n, n, 77), 8) // random orthogonal
	tmp := matrix.New(n, n)
	a := matrix.New(n, n)
	blas.Dgemm(blas.NoTrans, blas.NoTrans, n, n, n, 1, q.Data, q.Stride, diag.Data, diag.Stride, 0, tmp.Data, tmp.Stride)
	blas.Dgemm(blas.NoTrans, blas.Trans, n, n, n, 1, tmp.Data, tmp.Stride, q.Data, q.Stride, 0, a.Data, a.Stride)

	got, err := SymEigenvalues(a.Data, n, a.Stride, 8)
	if err != nil {
		t.Fatal(err)
	}
	sort.Float64s(want)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-10 {
			t.Fatalf("λ_%d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestSymVsGeneralEigensolverAgree(t *testing.T) {
	// The symmetric path (Dsytrd+Dsterf) and the general path
	// (Dgehrd+Dhseqr) must agree on a symmetric matrix.
	n := 30
	a := randomSymmetric(n, 5)
	sym, err := SymEigenvalues(a.Data, n, a.Stride, 8)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := Eigenvalues(a, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := range sym {
		if math.Abs(gen[i].Im) > 1e-8 {
			t.Fatalf("general path produced complex λ for symmetric input: %v", gen[i])
		}
		if math.Abs(sym[i]-gen[i].Re) > 1e-9 {
			t.Fatalf("λ_%d: sym %v vs general %v", i, sym[i], gen[i].Re)
		}
	}
}

// Property: blocked tridiagonalization is backward stable and preserves
// the trace for random symmetric matrices.
func TestPropDsytrdStable(t *testing.T) {
	f := func(seed uint64) bool {
		n := 6 + int(seed%30)
		nb := 2 + int((seed>>8)%8)
		a := randomSymmetric(n, seed)
		d, e, q := tridiagReduce(a, nb, true)
		if tridiagResidual(a, d, e, q) > 1e-13 {
			return false
		}
		sum := 0.0
		for _, v := range d {
			sum += v
		}
		return math.Abs(sum-a.Trace()) < 1e-10*(1+math.Abs(a.Trace()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestTridiagFromPacked(t *testing.T) {
	d := []float64{1, 2, 3}
	e := []float64{4, 5}
	m := TridiagFromPacked(3, d, e)
	if m[0][0] != 1 || m[1][0] != 4 || m[0][1] != 4 || m[2][1] != 5 || m[2][2] != 3 {
		t.Fatalf("tridiag build wrong: %v", m)
	}
	if m[2][0] != 0 {
		t.Fatal("off-band element nonzero")
	}
}
