package lapack

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/matrix"
)

// reduceUnblocked runs Dgehd2 on a copy of a and returns (packed, H, Q).
func reduceUnblocked(a *matrix.Matrix) (*matrix.Matrix, *matrix.Matrix, *matrix.Matrix) {
	n := a.Rows
	packed := a.Clone()
	tau := make([]float64, max(n-1, 1))
	work := make([]float64, n)
	Dgehd2(n, 0, packed.Data, packed.Stride, tau, work)
	h := HessFromPacked(n, packed.Data, packed.Stride)
	q := Dorghr(n, packed.Data, packed.Stride, tau)
	return packed, h, q
}

// reduceBlocked runs Dgehrd on a copy of a and returns (packed, H, Q).
func reduceBlocked(a *matrix.Matrix, nb int) (*matrix.Matrix, *matrix.Matrix, *matrix.Matrix) {
	n := a.Rows
	packed := a.Clone()
	tau := make([]float64, max(n-1, 1))
	Dgehrd(n, nb, packed.Data, packed.Stride, tau)
	h := HessFromPacked(n, packed.Data, packed.Stride)
	q := Dorghr(n, packed.Data, packed.Stride, tau)
	return packed, h, q
}

func TestDgehd2ProducesHessenberg(t *testing.T) {
	for _, n := range []int{1, 2, 3, 8, 25} {
		a := matrix.Random(n, n, uint64(n))
		_, h, q := reduceUnblocked(a)
		if !h.IsUpperHessenberg(0) {
			t.Fatalf("n=%d: result not upper Hessenberg", n)
		}
		if r := OrthogonalityResidual(q); r > 1e-14*float64(n) {
			t.Fatalf("n=%d: Q not orthogonal: %v", n, r)
		}
		if r := FactorizationResidual(a, q, h); r > 1e-14 {
			t.Fatalf("n=%d: residual %v too large", n, r)
		}
	}
}

func TestDgehd2PreservesEigenStructure(t *testing.T) {
	// Orthogonal similarity preserves trace and Frobenius norm.
	n := 20
	a := matrix.RandomNormal(n, n, 3)
	_, h, _ := reduceUnblocked(a)
	if d := math.Abs(a.Trace() - h.Trace()); d > 1e-11 {
		t.Fatalf("trace changed by %v", d)
	}
	if d := math.Abs(a.NormFro() - h.NormFro()); d > 1e-11 {
		t.Fatalf("Frobenius norm changed by %v", d)
	}
}

func TestDgehrdMatchesUnblocked(t *testing.T) {
	// The blocked reduction must compute the same factorization as the
	// unblocked one (same reflector sequence ⇒ same packed output up to
	// rounding).
	cases := []struct{ n, nb int }{
		{12, 4}, {16, 4}, {17, 4}, {30, 8}, {33, 8}, {40, 16}, {10, 32},
	}
	for _, tc := range cases {
		a := matrix.Random(tc.n, tc.n, uint64(tc.n*100+tc.nb))
		p1, _, _ := reduceUnblocked(a)
		p2, _, _ := reduceBlocked(a, tc.nb)
		if d := p1.Sub(p2).MaxAbs(); d > 1e-11 {
			t.Fatalf("n=%d nb=%d: blocked differs from unblocked by %v", tc.n, tc.nb, d)
		}
	}
}

func TestDgehrdResiduals(t *testing.T) {
	for _, tc := range []struct{ n, nb int }{{40, 8}, {64, 16}, {100, 32}, {129, 32}} {
		a := matrix.Random(tc.n, tc.n, uint64(tc.n))
		_, h, q := reduceBlocked(a, tc.nb)
		if !h.IsUpperHessenberg(0) {
			t.Fatalf("n=%d: not Hessenberg", tc.n)
		}
		if r := FactorizationResidual(a, q, h); r > 1e-14 {
			t.Fatalf("n=%d nb=%d: ‖A-QHQᵀ‖/(N‖A‖) = %v", tc.n, tc.nb, r)
		}
		if r := OrthogonalityResidual(q); r > 1e-13 {
			t.Fatalf("n=%d nb=%d: ‖QQᵀ-I‖/N = %v", tc.n, tc.nb, r)
		}
	}
}

func TestDgehrdTinyMatrices(t *testing.T) {
	for n := 0; n <= 3; n++ {
		a := matrix.Random(n, n, 7)
		packed := a.Clone()
		tau := make([]float64, max(n-1, 1))
		Dgehrd(n, 4, packed.Data, packed.Stride, tau)
		h := HessFromPacked(n, packed.Data, packed.Stride)
		if !h.IsUpperHessenberg(0) {
			t.Fatalf("n=%d: not Hessenberg", n)
		}
		if n >= 1 {
			q := Dorghr(n, packed.Data, packed.Stride, tau)
			if r := FactorizationResidual(a, q, h); r > 1e-14 {
				t.Fatalf("n=%d: residual %v", n, r)
			}
		}
	}
}

func TestDgehrdAlreadyHessenberg(t *testing.T) {
	// Reducing an already-Hessenberg matrix must leave H essentially equal
	// to the input (reflectors become identity up to sign conventions on
	// the subdiagonal — here the subdiagonal is positive so H == A).
	n := 10
	a := matrix.Random(n, n, 5)
	for j := 0; j < n; j++ {
		for i := j + 2; i < n; i++ {
			a.Set(i, j, 0)
		}
	}
	// Force positive subdiagonal so Householder reflectors are trivial in
	// effect (the similarity is identity up to rounding).
	for i := 1; i < n; i++ {
		a.Set(i, i-1, math.Abs(a.At(i, i-1))+1)
	}
	_, h, q := reduceBlocked(a, 4)
	if r := FactorizationResidual(a, q, h); r > 1e-14 {
		t.Fatalf("residual %v", r)
	}
	if d := a.Sub(h).MaxAbs(); d > 1e-12 {
		t.Fatalf("Hessenberg input changed by %v", d)
	}
}

func TestDlahr2AgainstDgehd2Panel(t *testing.T) {
	// Run Dlahr2 on the first panel and verify the panel columns match
	// what the unblocked algorithm produces for those columns.
	n, nb := 14, 4
	a := matrix.Random(n, n, 77)

	blocked := a.Clone()
	tau := make([]float64, nb)
	tm := matrix.New(nb, nb)
	y := matrix.New(n, nb)
	Dlahr2(n, 1, nb, blocked.Data, blocked.Stride, tau, tm.Data, tm.Stride, y.Data, y.Stride)

	unblocked := a.Clone()
	tau2 := make([]float64, n-1)
	work := make([]float64, n)
	Dgehd2(n, 0, unblocked.Data, unblocked.Stride, tau2, work)

	// The sub-diagonal part of the panel (Householder vectors) and the
	// factored column entries below row 0 must agree; rows at and above
	// the diagonal of later columns differ because Dlahr2 leaves the left
	// update to the caller.
	for j := 0; j < nb; j++ {
		for i := j + 1; i < n; i++ {
			got := blocked.At(i, j)
			want := unblocked.At(i, j)
			if math.Abs(got-want) > 1e-12 {
				t.Fatalf("panel (%d,%d): %v vs %v", i, j, got, want)
			}
		}
		if math.Abs(tau[j]-tau2[j]) > 1e-12 {
			t.Fatalf("tau[%d]: %v vs %v", j, tau[j], tau2[j])
		}
	}
}

func TestDorghrOrthogonalAndStructured(t *testing.T) {
	n := 24
	a := matrix.Random(n, n, 13)
	_, _, q := reduceBlocked(a, 8)
	if r := OrthogonalityResidual(q); r > 1e-13 {
		t.Fatalf("Q not orthogonal: %v", r)
	}
	// Q from a Hessenberg reduction has first column e1.
	if q.At(0, 0) != 1 {
		t.Fatalf("Q(0,0) = %v, want 1", q.At(0, 0))
	}
	for i := 1; i < n; i++ {
		if q.At(i, 0) != 0 || q.At(0, i) != 0 {
			t.Fatalf("Q first row/col not e1 at %d", i)
		}
	}
}

// Property: for random matrices, the blocked reduction keeps the backward
// error at machine-precision level and preserves the trace.
func TestPropDgehrdBackwardStable(t *testing.T) {
	f := func(seed uint64) bool {
		n := 5 + int(seed%28)
		nb := 2 + int((seed>>8)%8)
		a := matrix.RandomNormal(n, n, seed)
		_, h, q := reduceBlocked(a, nb)
		if !h.IsUpperHessenberg(0) {
			return false
		}
		if FactorizationResidual(a, q, h) > 1e-13 {
			return false
		}
		scale := 1 + math.Abs(a.Trace())
		return math.Abs(a.Trace()-h.Trace()) < 1e-10*scale
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
