package lapack

import (
	"errors"
	"math"
	"sort"

	"repro/internal/matrix"
)

// ErrNoConvergence is returned by Dhseqr when an eigenvalue fails to
// converge within the iteration budget.
var ErrNoConvergence = errors.New("lapack: eigenvalue iteration did not converge")

const macheps = 2.220446049250313e-16

// Dhseqr computes all eigenvalues of the n×n upper Hessenberg matrix h
// (column-major, leading dimension ldh) with the implicit Francis
// double-shift QR algorithm (EISPACK HQR). The contents of h are destroyed.
// Real parts are returned in wr, imaginary parts in wi; complex eigenvalues
// occur in conjugate pairs occupying consecutive positions.
func Dhseqr(n int, h []float64, ldh int, wr, wi []float64) error {
	if n == 0 {
		return nil
	}
	at := func(i, j int) float64 { return h[j*ldh+i] }
	set := func(i, j int, v float64) { h[j*ldh+i] = v }

	// anorm: norm over the Hessenberg band, used for the deflation test.
	anorm := 0.0
	for i := 0; i < n; i++ {
		for j := max(i-1, 0); j < n; j++ {
			anorm += math.Abs(at(i, j))
		}
	}
	if anorm == 0 {
		for i := range wr[:n] {
			wr[i], wi[i] = 0, 0
		}
		return nil
	}

	nn := n - 1
	t := 0.0
	var p, q, r, x, y, z, w, s float64
	for nn >= 0 {
		its := 0
		for {
			// Look for a single small subdiagonal element.
			var l int
			for l = nn; l >= 1; l-- {
				s = math.Abs(at(l-1, l-1)) + math.Abs(at(l, l))
				if s == 0 {
					s = anorm
				}
				if math.Abs(at(l, l-1)) <= macheps*s {
					set(l, l-1, 0)
					break
				}
			}
			if l < 0 {
				l = 0
			}
			x = at(nn, nn)
			if l == nn {
				// One root found.
				wr[nn] = x + t
				wi[nn] = 0
				nn--
				break
			}
			y = at(nn-1, nn-1)
			w = at(nn, nn-1) * at(nn-1, nn)
			if l == nn-1 {
				// Two roots found from the trailing 2×2 block.
				p = 0.5 * (y - x)
				q = p*p + w
				z = math.Sqrt(math.Abs(q))
				x += t
				if q >= 0 {
					// Real pair.
					z = p + sign(z, p)
					wr[nn-1] = x + z
					wr[nn] = wr[nn-1]
					if z != 0 {
						wr[nn] = x - w/z
					}
					wi[nn-1], wi[nn] = 0, 0
				} else {
					// Complex conjugate pair.
					wr[nn-1] = x + p
					wr[nn] = x + p
					wi[nn] = z
					wi[nn-1] = -z
				}
				nn -= 2
				break
			}
			// No roots yet: perform a double-shift QR sweep.
			if its == 40 {
				return ErrNoConvergence
			}
			if its == 10 || its == 20 || its == 30 {
				// Exceptional shift to break cycling.
				t += x
				for i := 0; i <= nn; i++ {
					set(i, i, at(i, i)-x)
				}
				s = math.Abs(at(nn, nn-1)) + math.Abs(at(nn-1, nn-2))
				y = 0.75 * s
				x = y
				w = -0.4375 * s * s
			}
			its++
			// Look for two consecutive small subdiagonal elements to
			// start the sweep at row m.
			var m int
			for m = nn - 2; m >= l; m-- {
				z = at(m, m)
				r = x - z
				s = y - z
				p = (r*s-w)/at(m+1, m) + at(m, m+1)
				q = at(m+1, m+1) - z - r - s
				r = at(m+2, m+1)
				s = math.Abs(p) + math.Abs(q) + math.Abs(r)
				p /= s
				q /= s
				r /= s
				if m == l {
					break
				}
				u := math.Abs(at(m, m-1)) * (math.Abs(q) + math.Abs(r))
				v := math.Abs(p) * (math.Abs(at(m-1, m-1)) + math.Abs(z) + math.Abs(at(m+1, m+1)))
				if u <= macheps*v {
					break
				}
			}
			if m < l {
				m = l
			}
			for i := m + 2; i <= nn; i++ {
				set(i, i-2, 0)
				if i != m+2 {
					set(i, i-3, 0)
				}
			}
			// Double QR step: chase the bulge from row m to row nn-1.
			for k := m; k <= nn-1; k++ {
				if k != m {
					p = at(k, k-1)
					q = at(k+1, k-1)
					r = 0
					if k != nn-1 {
						r = at(k+2, k-1)
					}
					x = math.Abs(p) + math.Abs(q) + math.Abs(r)
					if x != 0 {
						p /= x
						q /= x
						r /= x
					}
				}
				s = sign(math.Sqrt(p*p+q*q+r*r), p)
				if s == 0 {
					continue
				}
				if k == m {
					if l != m {
						set(k, k-1, -at(k, k-1))
					}
				} else {
					set(k, k-1, -s*x)
				}
				p += s
				x = p / s
				y = q / s
				z = r / s
				q /= p
				r /= p
				// Row modification.
				for j := k; j <= nn; j++ {
					pp := at(k, j) + q*at(k+1, j)
					if k != nn-1 {
						pp += r * at(k+2, j)
						set(k+2, j, at(k+2, j)-pp*z)
					}
					set(k+1, j, at(k+1, j)-pp*y)
					set(k, j, at(k, j)-pp*x)
				}
				mmin := nn
				if k+3 < nn {
					mmin = k + 3
				}
				// Column modification.
				for i := l; i <= mmin; i++ {
					pp := x*at(i, k) + y*at(i, k+1)
					if k != nn-1 {
						pp += z * at(i, k+2)
						set(i, k+2, at(i, k+2)-pp*r)
					}
					set(i, k+1, at(i, k+1)-pp*q)
					set(i, k, at(i, k)-pp)
				}
			}
		}
	}
	return nil
}

// Eig is one eigenvalue; Im != 0 marks one member of a conjugate pair.
type Eig struct {
	Re, Im float64
}

// Eigenvalues computes all eigenvalues of a general square matrix by
// reducing it to Hessenberg form (blocked, block size nb) and running the
// Francis QR iteration. a is not modified.
func Eigenvalues(a *matrix.Matrix, nb int) ([]Eig, error) {
	n := a.Rows
	if n != a.Cols {
		return nil, errors.New("lapack: Eigenvalues needs a square matrix")
	}
	work := a.Clone()
	tau := make([]float64, max(n-1, 1))
	Dgehrd(n, nb, work.Data, work.Stride, tau)
	h := HessFromPacked(n, work.Data, work.Stride)
	wr := make([]float64, n)
	wi := make([]float64, n)
	if err := Dhseqr(n, h.Data, h.Stride, wr, wi); err != nil {
		return nil, err
	}
	out := make([]Eig, n)
	for i := range out {
		out[i] = Eig{Re: wr[i], Im: wi[i]}
	}
	SortEigs(out)
	return out, nil
}

// SortEigs orders eigenvalues by real part, then imaginary part, giving
// deterministic output for comparisons and reports.
func SortEigs(e []Eig) {
	sort.Slice(e, func(i, j int) bool {
		if e[i].Re != e[j].Re {
			return e[i].Re < e[j].Re
		}
		return e[i].Im < e[j].Im
	})
}
