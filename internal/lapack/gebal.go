package lapack

import "math"

// Dgebal balances a general square matrix in place (the scaling phase of
// netlib DGEBAL, job='S'): a diagonal similarity D⁻¹·A·D is applied so
// that row and column norms become comparable, which can dramatically
// improve the accuracy of subsequently computed eigenvalues. The returned
// scale vector holds the applied diagonal entries (D(i,i)); eigenvalues
// are unchanged by the similarity.
//
// (The permutation phase of DGEBAL, which isolates eigenvalues connected
// through triangular structure, is not needed for the dense random
// workloads of this repository and is omitted.)
func Dgebal(n int, a []float64, lda int) []float64 {
	scale := make([]float64, n)
	for i := range scale {
		scale[i] = 1
	}
	if n <= 1 {
		return scale
	}
	const (
		radix  = 2.0
		sclfac = radix
		factor = 0.95
	)
	for changed := true; changed; {
		changed = false
		for i := 0; i < n; i++ {
			// 1-norms of row i and column i, excluding the diagonal.
			c, r := 0.0, 0.0
			for j := 0; j < n; j++ {
				if j == i {
					continue
				}
				c += math.Abs(a[i*lda+j]) // column i
				r += math.Abs(a[j*lda+i]) // row i
			}
			if c == 0 || r == 0 {
				continue
			}
			// Find f = 2^k bringing the norms together (netlib's loops
			// move c and r toward each other; sfmin2/sfmax2 guards are
			// replaced by an iteration bound adequate for float64).
			g := r / sclfac
			f := 1.0
			s := c + r
			for iter := 0; c < g && iter < 1100; iter++ {
				f *= sclfac
				c *= sclfac
				r /= sclfac
				g /= sclfac
			}
			g = c / sclfac
			for iter := 0; g >= r && iter < 1100; iter++ {
				f /= sclfac
				c /= sclfac
				g /= sclfac
				r *= sclfac
			}
			if f != 1 && c+r < factor*s {
				changed = true
				scale[i] *= f
				// Row i := row i / f ; column i := column i * f.
				for j := 0; j < n; j++ {
					a[j*lda+i] /= f
					a[i*lda+j] *= f
				}
			}
		}
	}
	return scale
}

// BalancedEigenvalues computes eigenvalues with balancing before the
// Hessenberg reduction, as LAPACK's DGEEV driver does.
func BalancedEigenvalues(aData []float64, n, lda, nb int) ([]Eig, error) {
	work := make([]float64, n*n)
	for j := 0; j < n; j++ {
		copy(work[j*n:j*n+n], aData[j*lda:j*lda+n])
	}
	Dgebal(n, work, n)
	tau := make([]float64, max(n-1, 1))
	Dgehrd(n, nb, work, n, tau)
	h := HessFromPacked(n, work, n)
	wr := make([]float64, n)
	wi := make([]float64, n)
	if err := Dhseqr(n, h.Data, h.Stride, wr, wi); err != nil {
		return nil, err
	}
	out := make([]Eig, n)
	for i := range out {
		out[i] = Eig{Re: wr[i], Im: wi[i]}
	}
	SortEigs(out)
	return out, nil
}
