package lapack

import "repro/internal/blas"

// Symmetric tridiagonal reduction (DSYTD2/DLATRD/DSYTRD, lower-triangle
// storage) — the second two-sided factorization of the family the paper's
// conclusion targets ("the entire spectrum of two-sided factorizations").
// The blocked structure mirrors the Hessenberg reduction: a panel
// factorization accumulating a compact update (here W with
// A := A − V·Wᵀ − W·Vᵀ) followed by a rank-2k trailing update — which is
// exactly the shape the ABFT checksum methodology attaches to.

// Dsytd2 reduces the n×n symmetric matrix A (lower triangle stored) to
// symmetric tridiagonal form T = Qᵀ A Q by an unblocked sequence of
// Householder similarity transformations. On exit the diagonal is in d,
// the subdiagonal in e, the Householder vectors below the first
// subdiagonal of a with scalar factors in tau (length ≥ n-1).
func Dsytd2(n int, a []float64, lda int, d, e, tau []float64) {
	if n <= 0 {
		return
	}
	w := make([]float64, n)
	for i := 0; i < n-1; i++ {
		// Generate H(i) = I - tau·v·vᵀ annihilating A(i+2:n-1, i).
		beta, taui := Dlarfg(n-i-1, a[i*lda+i+1], a[i*lda+min(i+2, n-1):], 1)
		e[i] = beta
		if taui != 0 {
			// Apply H(i) to A(i+1:n-1, i+1:n-1) from both sides.
			a[i*lda+i+1] = 1
			v := a[i*lda+i+1:]
			// w := tau · A(i+1:, i+1:) · v
			blas.Dsymv(blas.Lower, n-i-1, taui, a[(i+1)*lda+i+1:], lda, v, 1, 0, w, 1)
			// w := w - (tau/2 · wᵀv) · v
			alpha := -0.5 * taui * blas.Ddot(n-i-1, w, 1, v, 1)
			blas.Daxpy(n-i-1, alpha, v, 1, w, 1)
			// A := A - v·wᵀ - w·vᵀ
			blas.Dsyr2(blas.Lower, n-i-1, -1, v, 1, w, 1, a[(i+1)*lda+i+1:], lda)
			a[i*lda+i+1] = e[i]
		}
		d[i] = a[i*lda+i]
		tau[i] = taui
	}
	d[n-1] = a[(n-1)*lda+n-1]
}

// Dlatrd reduces the first nb columns of the n×n symmetric matrix A
// (lower triangle) to tridiagonal form and returns the n×nb matrix W such
// that the trailing submatrix update is A := A − V·Wᵀ − W·Vᵀ
// (netlib DLATRD, lower branch, zero-based).
func Dlatrd(n, nb int, a []float64, lda int, e, tau []float64, w []float64, ldw int) {
	if n <= 0 {
		return
	}
	for i := 0; i < nb; i++ {
		// Update A(i:n-1, i) with the part of the panel already computed.
		blas.Dgemv(blas.NoTrans, n-i, i, -1, a[i:], lda, w[i:], ldw, 1, a[i*lda+i:], 1)
		blas.Dgemv(blas.NoTrans, n-i, i, -1, w[i:], ldw, a[i:], lda, 1, a[i*lda+i:], 1)
		if i >= n-1 {
			continue
		}
		// Generate H(i) to annihilate A(i+2:n-1, i).
		beta, taui := Dlarfg(n-i-1, a[i*lda+i+1], a[i*lda+min(i+2, n-1):], 1)
		e[i] = beta
		tau[i] = taui
		a[i*lda+i+1] = 1
		v := a[i*lda+i+1:]
		// W(i+1:n-1, i) := tau·[A·v − W·(Aᵀv) − A·(Wᵀv)], built with the
		// reference kernel sequence (scratch in W(0:i-1, i)).
		blas.Dsymv(blas.Lower, n-i-1, 1, a[(i+1)*lda+i+1:], lda, v, 1, 0, w[i*ldw+i+1:], 1)
		blas.Dgemv(blas.Trans, n-i-1, i, 1, w[i+1:], ldw, v, 1, 0, w[i*ldw:], 1)
		blas.Dgemv(blas.NoTrans, n-i-1, i, -1, a[i+1:], lda, w[i*ldw:], 1, 1, w[i*ldw+i+1:], 1)
		blas.Dgemv(blas.Trans, n-i-1, i, 1, a[i+1:], lda, v, 1, 0, w[i*ldw:], 1)
		blas.Dgemv(blas.NoTrans, n-i-1, i, -1, w[i+1:], ldw, w[i*ldw:], 1, 1, w[i*ldw+i+1:], 1)
		blas.Dscal(n-i-1, taui, w[i*ldw+i+1:], 1)
		alpha := -0.5 * taui * blas.Ddot(n-i-1, w[i*ldw+i+1:], 1, v, 1)
		blas.Daxpy(n-i-1, alpha, v, 1, w[i*ldw+i+1:], 1)
	}
}

// Dsytrd reduces the n×n symmetric matrix A (lower triangle stored) to
// tridiagonal form with the blocked algorithm: DLATRD panels followed by
// DSYR2K trailing updates, finishing with the unblocked code — the
// symmetric sibling of Algorithm 1. d, e, tau receive the tridiagonal
// factor and the reflectors as in Dsytd2.
func Dsytrd(n, nb int, a []float64, lda int, d, e, tau []float64) {
	if n <= 0 {
		return
	}
	if nb < 1 {
		nb = 1
	}
	nx := max(nb, 2)
	w := make([]float64, n*nb)
	p := 0
	for ; n-p > nx+nb; p += nb {
		np := n - p
		// Panel: reduce columns p..p+nb-1 of the trailing block, and
		// build the update matrix W.
		Dlatrd(np, nb, a[p*lda+p:], lda, e[p:], tau[p:], w, np)
		// Trailing update: A(p+nb:, p+nb:) -= V·Wᵀ + W·Vᵀ.
		blas.Dsyr2k(blas.Lower, blas.NoTrans, np-nb, nb, -1,
			a[p*lda+p+nb:], lda, w[nb:], np, 1, a[(p+nb)*lda+p+nb:], lda)
		// Restore the subdiagonal entries overwritten with the implicit
		// ones of V, and record the finished diagonal.
		for j := p; j < p+nb; j++ {
			a[j*lda+j+1] = e[j]
			d[j] = a[j*lda+j]
		}
	}
	Dsytd2(n-p, a[p*lda+p:], lda, d[p:], e[p:], tau[p:])
}

// TridiagFromPacked builds the dense symmetric tridiagonal matrix from
// the d/e output of Dsytrd.
func TridiagFromPacked(n int, d, e []float64) [][]float64 {
	t := make([][]float64, n)
	for i := range t {
		t[i] = make([]float64, n)
		t[i][i] = d[i]
		if i > 0 {
			t[i][i-1] = e[i-1]
			t[i-1][i] = e[i-1]
		}
	}
	return t
}
