// Package leakcheck is a stdlib-only goroutine-leak detector for tests,
// in the spirit of go.uber.org/goleak but without the dependency: it
// snapshots the goroutine count when a test starts and fails the test if,
// after retries, more goroutines than that are still alive at cleanup.
//
// Goroutines that are resident by design are filtered out by stack
// substring rather than counted: the shared BLAS worker pool parks its
// workers forever (internal/blas never shrinks the pool), the testing
// package keeps runner goroutines alive between subtests, and the
// runtime's own service goroutines never exit. Everything else — HTTP
// handlers, scheduler workers, reduction goroutines — must be gone by the
// end of the test, which is exactly the cancellation contract the serving
// layer promises.
package leakcheck

import (
	"runtime"
	"strings"
	"testing"
	"time"
)

// ignoredStacks lists stack substrings of goroutines that are allowed to
// outlive a test.
var ignoredStacks = []string{
	// The shared BLAS pool parks resident workers for the process
	// lifetime; they are idle capacity, not leaks.
	"repro/internal/blas.poolEnsure",
	// The leak checker's own stack-capture goroutine view.
	"repro/internal/leakcheck.stacks",
	// Testing-framework plumbing (parallel runners, timeouts, fuzz
	// workers) is managed by the testing package itself.
	"testing.(*T).Run",
	"testing.(*M).",
	"testing.runTests",
	"testing.runFuzzing",
	// Runtime service goroutines.
	"runtime.goexit0",
	"runtime.gc",
	"runtime.bgsweep",
	"runtime.bgscavenge",
	"runtime/trace",
	// os/signal's notifier, started once by signal.Notify.
	"os/signal.loop",
	"os/signal.signal_recv",
}

// stacks returns the stack dumps of all live goroutines that are not on
// the ignore list.
func stacks() []string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, 2*len(buf))
	}
	var out []string
	for _, g := range strings.Split(string(buf), "\n\n") {
		if g == "" || ignored(g) {
			continue
		}
		out = append(out, g)
	}
	return out
}

func ignored(stack string) bool {
	for _, pat := range ignoredStacks {
		if strings.Contains(stack, pat) {
			return true
		}
	}
	return false
}

// Check snapshots the live goroutines and registers a cleanup that fails
// t if, 5 seconds after the test body finishes, more non-ignored
// goroutines are alive than at the snapshot. Call it first in the test so
// its cleanup runs last (cleanups run in reverse registration order) —
// after deferred server shutdowns and httptest closes.
func Check(t testing.TB) {
	before := len(stacks())
	t.Cleanup(func() {
		deadline := time.Now().Add(5 * time.Second)
		var leaked []string
		for {
			leaked = stacks()
			if len(leaked) <= before || time.Now().After(deadline) {
				break
			}
			time.Sleep(20 * time.Millisecond)
		}
		if len(leaked) > before {
			t.Errorf("leakcheck: %d goroutine(s) before, %d after; leaked stacks:\n%s",
				before, len(leaked), strings.Join(leaked, "\n\n"))
		}
	})
}
