package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Export: Prometheus-style text exposition, JSON snapshot, and the
// aggregation helpers the breakdown reports are built on.

// Point is one series in a registry snapshot. For histograms Value is the
// sample sum and Count the sample count.
type Point struct {
	Kind   string            `json:"kind"` // "counter" | "gauge" | "histogram"
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  float64           `json:"value"`
	Count  uint64            `json:"count,omitempty"`
}

// Snapshot returns every series, sorted by (name, labels).
func (r *Registry) Snapshot() []Point {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	counters := make([]*Counter, 0, len(r.counters))
	for _, c := range r.counters {
		counters = append(counters, c)
	}
	gauges := make([]*Gauge, 0, len(r.gauges))
	for _, g := range r.gauges {
		gauges = append(gauges, g)
	}
	hists := make([]*Histogram, 0, len(r.hists))
	for _, h := range r.hists {
		hists = append(hists, h)
	}
	r.mu.Unlock()

	var pts []Point
	for _, c := range counters {
		c.mu.Lock()
		pts = append(pts, Point{Kind: "counter", Name: c.name, Labels: labelMap(c.labels), Value: c.v})
		c.mu.Unlock()
	}
	for _, g := range gauges {
		g.mu.Lock()
		pts = append(pts, Point{Kind: "gauge", Name: g.name, Labels: labelMap(g.labels), Value: g.v})
		g.mu.Unlock()
	}
	for _, h := range hists {
		h.mu.Lock()
		pts = append(pts, Point{Kind: "histogram", Name: h.name, Labels: labelMap(h.labels), Value: h.sum, Count: h.count})
		h.mu.Unlock()
	}
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].Name != pts[j].Name {
			return pts[i].Name < pts[j].Name
		}
		return labelString(pts[i].Labels) < labelString(pts[j].Labels)
	})
	return pts
}

func labelMap(ls []Label) map[string]string {
	if len(ls) == 0 {
		return nil
	}
	m := make(map[string]string, len(ls))
	for _, l := range ls {
		m[l.Key] = l.Value
	}
	return m
}

func labelString(m map[string]string) string {
	if len(m) == 0 {
		return ""
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, escapeLabel(m[k]))
	}
	return b.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

func renderLabels(m map[string]string, extra ...Label) string {
	all := make([]Label, 0, len(m)+len(extra))
	for k, v := range m {
		all = append(all, Label{Key: k, Value: v})
	}
	all = append(all, extra...)
	if len(all) == 0 {
		return ""
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Key < all[j].Key })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range all {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, escapeLabel(l.Value))
	}
	b.WriteByte('}')
	return b.String()
}

// SumBy aggregates the series of one metric by the value of a label key:
// counters and gauges contribute their value, histograms their sample sum.
// Series missing the key are grouped under "".
func SumBy(r *Registry, name, labelKey string) map[string]float64 {
	out := make(map[string]float64)
	for _, p := range r.Snapshot() {
		if p.Name != name {
			continue
		}
		out[p.Labels[labelKey]] += p.Value
	}
	return out
}

// Prune removes every series the predicate matches (by name and label
// map) and returns how many were dropped. The serving layer uses it to
// retire the job-labeled series of forgotten jobs, keeping the registry
// bounded by the live job table rather than by the server's lifetime.
// Safe on nil.
func (r *Registry) Prune(pred func(name string, labels map[string]string) bool) int {
	if r == nil || pred == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for k, c := range r.counters {
		if pred(c.name, labelMap(c.labels)) {
			delete(r.counters, k)
			n++
		}
	}
	for k, g := range r.gauges {
		if pred(g.name, labelMap(g.labels)) {
			delete(r.gauges, k)
			n++
		}
	}
	for k, h := range r.hists {
		if pred(h.name, labelMap(h.labels)) {
			delete(r.hists, k)
			n++
		}
	}
	return n
}

// WritePrometheus writes the registry in the Prometheus text exposition
// format (# TYPE comments, histograms as cumulative _bucket/_sum/_count).
// Every histogram series additionally gets a companion
// <name>_quantile{quantile="0.5|0.95|0.99"} gauge family with the
// interpolated estimates (see quantile.go), so p50/p95/p99 are readable
// straight off a scrape without server-side histogram_quantile.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	pts := r.Snapshot()
	// Histograms need their buckets too; fetch instruments by series.
	r.mu.Lock()
	hists := make(map[string]*Histogram, len(r.hists))
	for k, h := range r.hists {
		hists[k] = h
	}
	r.mu.Unlock()

	lastTyped := ""
	for _, p := range pts {
		if p.Name != lastTyped {
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", p.Name, p.Kind); err != nil {
				return err
			}
			lastTyped = p.Name
		}
		switch p.Kind {
		case "counter", "gauge":
			if _, err := fmt.Fprintf(w, "%s%s %s\n", p.Name, renderLabels(p.Labels), fmtFloat(p.Value)); err != nil {
				return err
			}
		case "histogram":
			var labels []Label
			for k, v := range p.Labels {
				labels = append(labels, L(k, v))
			}
			h := hists[seriesKey(p.Name, labels)]
			if h == nil {
				continue
			}
			bounds, cum := h.Buckets()
			for i, b := range bounds {
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
					p.Name, renderLabels(p.Labels, L("le", fmtFloat(b))), cum[i]); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
				p.Name, renderLabels(p.Labels, L("le", "+Inf")), cum[len(cum)-1]); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", p.Name, renderLabels(p.Labels), fmtFloat(p.Value)); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_count%s %d\n", p.Name, renderLabels(p.Labels), p.Count); err != nil {
				return err
			}
		}
	}

	// Companion quantile families, one per histogram family, in the same
	// sorted series order as the exposition above.
	lastTyped = ""
	for _, p := range pts {
		if p.Kind != "histogram" || p.Count == 0 {
			continue
		}
		var labels []Label
		for k, v := range p.Labels {
			labels = append(labels, L(k, v))
		}
		r.mu.Lock()
		h := r.hists[seriesKey(p.Name, labels)]
		r.mu.Unlock()
		if h == nil {
			continue
		}
		qname := p.Name + "_quantile"
		if qname != lastTyped {
			if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n", qname); err != nil {
				return err
			}
			lastTyped = qname
		}
		snap := h.Snap()
		for _, q := range ExportQuantiles {
			if _, err := fmt.Fprintf(w, "%s%s %s\n",
				qname, renderLabels(p.Labels, L("quantile", fmtFloat(q))), fmtFloat(snap.Quantile(q))); err != nil {
				return err
			}
		}
	}
	return nil
}

func fmtFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// histogramJSON is the JSON shape of one histogram series.
type histogramJSON struct {
	Name    string            `json:"name"`
	Labels  map[string]string `json:"labels,omitempty"`
	Sum     float64           `json:"sum"`
	Count   uint64            `json:"count"`
	Bounds  []float64         `json:"bounds"`
	Buckets []uint64          `json:"cumulative_counts"`
}

// WriteJSON writes a machine-readable snapshot of the whole registry.
func (r *Registry) WriteJSON(w io.Writer) error {
	if r == nil {
		return nil
	}
	var out struct {
		Counters   []Point         `json:"counters"`
		Gauges     []Point         `json:"gauges"`
		Histograms []histogramJSON `json:"histograms"`
	}
	out.Counters = []Point{}
	out.Gauges = []Point{}
	out.Histograms = []histogramJSON{}
	for _, p := range r.Snapshot() {
		switch p.Kind {
		case "counter":
			out.Counters = append(out.Counters, p)
		case "gauge":
			out.Gauges = append(out.Gauges, p)
		case "histogram":
			var labels []Label
			for k, v := range p.Labels {
				labels = append(labels, L(k, v))
			}
			r.mu.Lock()
			h := r.hists[seriesKey(p.Name, labels)]
			r.mu.Unlock()
			if h == nil {
				continue
			}
			bounds, cum := h.Buckets()
			out.Histograms = append(out.Histograms, histogramJSON{
				Name: p.Name, Labels: p.Labels, Sum: p.Value, Count: p.Count,
				Bounds: bounds, Buckets: cum,
			})
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
