// Package obs is the unified observability layer of the reproduction: a
// stdlib-only metrics registry (counters, gauges, fixed-bucket histograms
// with label support, Prometheus-style text exposition and JSON export)
// plus a structured journal of fault-tolerance events (journal.go).
//
// The paper's entire evaluation (Figures 2-6, Tables I-III) is about
// *observing* the FT-Hess pipeline — per-step protection overheads,
// detection and recovery counts, CPU/GPU overlap — so every layer of the
// stack feeds the same sinks: internal/gpu attributes each simulated
// kernel, transfer, and host operation to an operation family and to the
// algorithm phase the device is currently in; internal/hybrid and
// internal/ft mark those phases (panel, right update, left update, D2H
// overlap, and the FT protection steps); internal/ft, internal/ftsym and
// internal/fault append typed records to the event journal. One run then
// emits a coherent report: a metrics exposition, a JSONL journal, and a
// Chrome trace, all telling the same story.
//
// All sinks are optional and nil-safe: a nil *Registry or *Journal absorbs
// every call, so instrumented code needs no conditionals.
package obs

import (
	"sort"
	"strings"
	"sync"
)

// Label is one name=value metric dimension.
type Label struct {
	Key, Value string
}

// L builds a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// DefaultDurationBuckets are histogram bounds (seconds) spanning the
// simulated operation costs, from sub-microsecond vector kernels to
// multi-second trailing updates.
var DefaultDurationBuckets = []float64{
	1e-6, 5e-6, 1e-5, 5e-5, 1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 5e-2, 0.1, 0.5, 1, 5,
}

// Registry holds named metric series. All methods are safe for concurrent
// use and safe on a nil receiver (no-ops returning nil instruments).
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// seriesKey canonicalizes name+labels (labels sorted by key).
func seriesKey(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

func sortedLabels(labels []Label) []Label {
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	return ls
}

// Counter returns (creating on first use) the monotonically increasing
// counter series for name+labels.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	key := seriesKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[key]
	if c == nil {
		c = &Counter{name: name, labels: sortedLabels(labels)}
		r.counters[key] = c
	}
	return c
}

// Gauge returns (creating on first use) the gauge series for name+labels.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	key := seriesKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[key]
	if g == nil {
		g = &Gauge{name: name, labels: sortedLabels(labels)}
		r.gauges[key] = g
	}
	return g
}

// Histogram returns (creating on first use) the fixed-bucket histogram
// series for name+labels. buckets are inclusive upper bounds in increasing
// order (+Inf is implicit); they are fixed by the first call for a series.
func (r *Registry) Histogram(name string, buckets []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	key := seriesKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[key]
	if h == nil {
		h = &Histogram{
			name:    name,
			labels:  sortedLabels(labels),
			bounds:  append([]float64(nil), buckets...),
			buckets: make([]uint64, len(buckets)+1),
		}
		r.hists[key] = h
	}
	return h
}

// CounterValue reads a counter series; 0 if it does not exist.
func (r *Registry) CounterValue(name string, labels ...Label) float64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	c := r.counters[seriesKey(name, labels)]
	r.mu.Unlock()
	return c.Value()
}

// GaugeValue reads a gauge series; 0 if it does not exist.
func (r *Registry) GaugeValue(name string, labels ...Label) float64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	g := r.gauges[seriesKey(name, labels)]
	r.mu.Unlock()
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.v
}

// Counter is a monotonically increasing metric.
type Counter struct {
	mu     sync.Mutex
	name   string
	labels []Label
	v      float64
}

// Add increments the counter; negative deltas are ignored (counters never
// decrease). Safe on a nil receiver.
func (c *Counter) Add(v float64) {
	if c == nil || v < 0 {
		return
	}
	c.mu.Lock()
	c.v += v
	c.mu.Unlock()
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value reads the current count. Safe on a nil receiver.
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.v
}

// Gauge is a set-to-current-value metric.
type Gauge struct {
	mu     sync.Mutex
	name   string
	labels []Label
	v      float64
}

// Set overwrites the gauge. Safe on a nil receiver.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.v = v
	g.mu.Unlock()
}

// Add shifts the gauge by v. Safe on a nil receiver.
func (g *Gauge) Add(v float64) {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.v += v
	g.mu.Unlock()
}

// Value reads the gauge. Safe on a nil receiver.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.v
}

// Histogram is a fixed-bucket distribution with a sum and a count.
type Histogram struct {
	mu      sync.Mutex
	name    string
	labels  []Label
	bounds  []float64 // inclusive upper bounds; +Inf implicit
	buckets []uint64  // len(bounds)+1, non-cumulative
	sum     float64
	count   uint64
}

// Observe records one sample. Safe on a nil receiver.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	i := sort.SearchFloat64s(h.bounds, v) // first bound ≥ v
	h.buckets[i]++
	h.sum += v
	h.count++
	h.mu.Unlock()
}

// Sum returns the total of all observed samples. Safe on a nil receiver.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Count returns the number of samples. Safe on a nil receiver.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Buckets returns the upper bounds and the cumulative counts (the last
// entry, bound +Inf, equals Count).
func (h *Histogram) Buckets() (bounds []float64, cumulative []uint64) {
	if h == nil {
		return nil, nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	bounds = append([]float64(nil), h.bounds...)
	cumulative = make([]uint64, len(h.buckets))
	var acc uint64
	for i, c := range h.buckets {
		acc += c
		cumulative[i] = acc
	}
	return bounds, cumulative
}
