package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ft_detections_total")
	c.Inc()
	c.Add(2)
	c.Add(-5) // ignored: counters never decrease
	if got := r.CounterValue("ft_detections_total"); got != 3 {
		t.Fatalf("counter = %v, want 3", got)
	}
	// Same name+labels returns the same series.
	r.Counter("ft_detections_total").Inc()
	if got := c.Value(); got != 4 {
		t.Fatalf("counter = %v, want 4", got)
	}
	// Distinct labels are distinct series.
	r.Counter("ops_total", L("lane", "host")).Add(2)
	r.Counter("ops_total", L("lane", "gpu-compute")).Add(5)
	if got := r.CounterValue("ops_total", L("lane", "host")); got != 2 {
		t.Fatalf("labeled counter = %v, want 2", got)
	}
	// Label order is irrelevant to series identity.
	r.Counter("x", L("a", "1"), L("b", "2")).Inc()
	r.Counter("x", L("b", "2"), L("a", "1")).Inc()
	if got := r.CounterValue("x", L("a", "1"), L("b", "2")); got != 2 {
		t.Fatalf("label order changed identity: %v", got)
	}

	g := r.Gauge("makespan_seconds")
	g.Set(1.5)
	g.Add(0.5)
	if got := g.Value(); got != 2 {
		t.Fatalf("gauge = %v, want 2", got)
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	r.Counter("a").Inc()
	r.Gauge("b").Set(1)
	r.Histogram("c", DefaultDurationBuckets).Observe(1)
	if r.Snapshot() != nil {
		t.Fatal("nil registry snapshot not nil")
	}
	if err := r.WritePrometheus(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	var j *Journal
	j.Append(Ev(KindDetection, 0))
	if j.Len() != 0 || j.Events() != nil {
		t.Fatal("nil journal must absorb appends")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("phase_seconds", []float64{0.01, 0.1, 1}, L("phase", "panel"))
	for _, v := range []float64{0.005, 0.01, 0.05, 0.5, 2} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	if got, want := h.Sum(), 0.005+0.01+0.05+0.5+2; got != want {
		t.Fatalf("sum = %v, want %v", got, want)
	}
	bounds, cum := h.Buckets()
	if len(bounds) != 3 || len(cum) != 4 {
		t.Fatalf("bounds %v cum %v", bounds, cum)
	}
	// 0.005 and 0.01 ≤ 0.01; 0.05 ≤ 0.1; 0.5 ≤ 1; 2 → +Inf.
	want := []uint64{2, 3, 4, 5}
	for i, w := range want {
		if cum[i] != w {
			t.Fatalf("cumulative = %v, want %v", cum, want)
		}
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("ft_detections_total").Add(2)
	r.Gauge("lane_busy_seconds", L("lane", "host")).Set(0.25)
	r.Histogram("phase_seconds", []float64{0.1, 1}, L("phase", "panel")).Observe(0.05)

	var b bytes.Buffer
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE ft_detections_total counter",
		"ft_detections_total 2",
		"# TYPE lane_busy_seconds gauge",
		`lane_busy_seconds{lane="host"} 0.25`,
		"# TYPE phase_seconds histogram",
		`phase_seconds_bucket{le="0.1",phase="panel"} 1`,
		`phase_seconds_bucket{le="+Inf",phase="panel"} 1`,
		`phase_seconds_sum{phase="panel"} 0.05`,
		`phase_seconds_count{phase="panel"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestJSONExport(t *testing.T) {
	r := NewRegistry()
	r.Counter("c", L("k", "v")).Add(3)
	r.Gauge("g").Set(7)
	r.Histogram("h", []float64{1}).Observe(0.5)
	var b bytes.Buffer
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var out struct {
		Counters []struct {
			Name   string            `json:"name"`
			Labels map[string]string `json:"labels"`
			Value  float64           `json:"value"`
		} `json:"counters"`
		Gauges     []json.RawMessage `json:"gauges"`
		Histograms []struct {
			Name    string    `json:"name"`
			Sum     float64   `json:"sum"`
			Count   uint64    `json:"count"`
			Bounds  []float64 `json:"bounds"`
			Buckets []uint64  `json:"cumulative_counts"`
		} `json:"histograms"`
	}
	if err := json.Unmarshal(b.Bytes(), &out); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, b.String())
	}
	if len(out.Counters) != 1 || out.Counters[0].Value != 3 || out.Counters[0].Labels["k"] != "v" {
		t.Fatalf("counters: %+v", out.Counters)
	}
	if len(out.Gauges) != 1 || len(out.Histograms) != 1 {
		t.Fatalf("gauges %d, histograms %d", len(out.Gauges), len(out.Histograms))
	}
	if out.Histograms[0].Sum != 0.5 || out.Histograms[0].Count != 1 {
		t.Fatalf("histogram: %+v", out.Histograms[0])
	}
}

func TestSumBy(t *testing.T) {
	r := NewRegistry()
	r.Counter("op_seconds_total", L("kind", "gemm")).Add(1)
	r.Counter("op_seconds_total", L("kind", "gemm")).Add(2)
	r.Counter("op_seconds_total", L("kind", "gemv")).Add(4)
	r.Histogram("phase_seconds", DefaultDurationBuckets, L("phase", "panel")).Observe(0.5)
	r.Histogram("phase_seconds", DefaultDurationBuckets, L("phase", "panel")).Observe(0.25)
	r.Histogram("phase_seconds", DefaultDurationBuckets, L("phase", "left_update")).Observe(1)

	kinds := SumBy(r, "op_seconds_total", "kind")
	if kinds["gemm"] != 3 || kinds["gemv"] != 4 {
		t.Fatalf("kinds: %v", kinds)
	}
	phases := SumBy(r, "phase_seconds", "phase")
	if phases["panel"] != 0.75 || phases["left_update"] != 1 {
		t.Fatalf("phases: %v", phases)
	}
}

func TestJournalAppendCountsJSONL(t *testing.T) {
	j := NewJournal()
	e := Ev(KindInjection, 2)
	e.Row, e.Col, e.Value, e.Target = 5, 9, 1.0, TargetH
	j.Append(e)
	d := Ev(KindDetection, 2)
	d.SimTime = 0.5
	d.Outcome = "mismatch"
	j.Append(d)
	c := Ev(KindCorrection, 2)
	c.Row, c.Col, c.Value = 5, 9, 1.0
	j.Append(c)

	if j.Len() != 3 {
		t.Fatalf("len = %d", j.Len())
	}
	counts := j.Counts()
	if counts[KindDetection] != 1 || counts[KindCorrection] != 1 || counts[KindInjection] != 1 {
		t.Fatalf("counts: %v", counts)
	}
	events := j.Events()
	for i, ev := range events {
		if ev.Seq != i {
			t.Fatalf("seq %d at index %d", ev.Seq, i)
		}
	}
	if events[0].Row != 5 || events[1].Row != -1 {
		t.Fatalf("row stamping wrong: %+v", events[:2])
	}

	var b bytes.Buffer
	if err := j.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&b)
	lines := 0
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("line %d invalid: %v", lines, err)
		}
		lines++
	}
	if lines != 3 {
		t.Fatalf("%d JSONL lines", lines)
	}
}

func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	j := NewJournal()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Counter("n").Inc()
				r.Histogram("h", DefaultDurationBuckets, L("phase", "p")).Observe(0.001)
				j.Append(Ev(KindChecksumCheck, i))
			}
		}()
	}
	wg.Wait()
	if got := r.CounterValue("n"); got != 800 {
		t.Fatalf("counter = %v", got)
	}
	if j.Len() != 800 {
		t.Fatalf("journal len = %d", j.Len())
	}
}
