package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sync"
)

// The FT event journal: an append-only sequence of typed records tracing
// the fault-tolerance machinery — checksum checks, detections, locations,
// corrections, reverse computations, checkpoint saves/restores, and
// re-executions — each stamped with the blocked iteration, the protected
// target (H or Q), the simulated time, and an outcome. internal/ft,
// internal/ftsym and internal/fault append to it; one run exports as JSONL
// for offline analysis alongside the metrics exposition.

// Target identifies which protected memory a record concerns.
type Target string

const (
	// TargetH is the device-resident data matrix (trailing matrix / H).
	TargetH Target = "H"
	// TargetQ is the host-resident Householder-vector storage.
	TargetQ Target = "Q"
)

// Kind is the record type.
type Kind string

const (
	// KindChecksumCheck is one end-of-iteration Sre/Sce comparison.
	KindChecksumCheck Kind = "checksum_check"
	// KindDetection is a checksum mismatch above threshold.
	KindDetection Kind = "detection"
	// KindLocation is the residual analysis pinpointing error positions.
	KindLocation Kind = "location"
	// KindCorrection is one corrected element (Row/Col/Value meaningful).
	KindCorrection Kind = "correction"
	// KindReverse is a reverse computation undoing the iteration's updates.
	KindReverse Kind = "reverse_computation"
	// KindCheckpointSave is a diskless panel checkpoint capture.
	KindCheckpointSave Kind = "checkpoint_save"
	// KindCheckpointRestore is a panel restore from the checkpoint.
	KindCheckpointRestore Kind = "checkpoint_restore"
	// KindReexecution is a repeated blocked iteration after recovery.
	KindReexecution Kind = "reexecution"
	// KindInjection is a fault planted by the campaign driver.
	KindInjection Kind = "injection"
	// KindSnapshotSave is a process-level snapshot capture (ft.Snapshot).
	KindSnapshotSave Kind = "snapshot_save"
	// KindSnapshotRestore is a resume from a process-level snapshot.
	KindSnapshotRestore Kind = "snapshot_restore"
	// KindDeviceLoss is a fail-stop device death (permanent, unlike the
	// transient corruptions above); Outcome names the kill point.
	KindDeviceLoss Kind = "device_loss"
	// KindReconstruction is a parity rebuild of a dead device's slabs
	// onto a spare (fail-stop recovery).
	KindReconstruction Kind = "reconstruction"
)

// Event is one journal record. Row and Col are -1 unless the record is
// element-specific (corrections, injections). SimTime is the simulated
// clock at append time (zero for host-only algorithms without a simulated
// device, e.g. internal/ftsym).
type Event struct {
	Seq     int     `json:"seq"`
	SimTime float64 `json:"sim_time"`
	Kind    Kind    `json:"kind"`
	Iter    int     `json:"iter"`
	Target  Target  `json:"target,omitempty"`
	Outcome string  `json:"outcome,omitempty"`
	Row     int     `json:"row"`
	Col     int     `json:"col"`
	Value   Float   `json:"value,omitempty"`
	// Job attributes the record to a served request (stamped by the
	// journal, see Stamp); empty for offline runs.
	Job string `json:"job,omitempty"`
	// Device names the pool device the record concerns ("d0", "d1", …);
	// empty for single-device and host-only runs.
	Device string `json:"device,omitempty"`
}

// Float is a float64 that round-trips the non-finite values JSON cannot
// represent. Journaled quantities can legitimately be non-finite — the
// detection gap |Sre−Sce| is ±Inf or NaN after an overflow-inducing bit
// flip — and a journal that fails to serialize exactly when something
// interesting happened would be useless. Non-finite values encode as the
// strings "+Inf", "-Inf", "NaN"; everything else as a plain number.
type Float float64

func (f Float) MarshalJSON() ([]byte, error) {
	v := float64(f)
	switch {
	case math.IsInf(v, 1):
		return []byte(`"+Inf"`), nil
	case math.IsInf(v, -1):
		return []byte(`"-Inf"`), nil
	case math.IsNaN(v):
		return []byte(`"NaN"`), nil
	}
	return json.Marshal(v)
}

func (f *Float) UnmarshalJSON(b []byte) error {
	if len(b) > 0 && b[0] == '"' {
		var s string
		if err := json.Unmarshal(b, &s); err != nil {
			return err
		}
		switch s {
		case "+Inf":
			*f = Float(math.Inf(1))
		case "-Inf":
			*f = Float(math.Inf(-1))
		case "NaN":
			*f = Float(math.NaN())
		default:
			return fmt.Errorf("obs: bad float %q", s)
		}
		return nil
	}
	var v float64
	if err := json.Unmarshal(b, &v); err != nil {
		return err
	}
	*f = Float(v)
	return nil
}

// Ev returns an Event skeleton with Row/Col marked not-applicable.
func Ev(kind Kind, iter int) Event {
	return Event{Kind: kind, Iter: iter, Row: -1, Col: -1}
}

// Journal is an append-only, concurrency-safe event log. A nil *Journal
// absorbs every call, so instrumented code needs no conditionals.
type Journal struct {
	mu     sync.Mutex
	events []Event
	job    string
	tee    *FlightRecorder
}

// NewJournal returns an empty journal.
func NewJournal() *Journal { return &Journal{} }

// Stamp sets the job identifier stamped onto every subsequently appended
// record (request attribution for served runs). Safe on nil.
func (j *Journal) Stamp(job string) {
	if j == nil {
		return
	}
	j.mu.Lock()
	j.job = job
	j.mu.Unlock()
}

// Tee forwards every subsequently appended record (after stamping) to
// the flight recorder as well, so the bounded cross-job postmortem view
// sees the same events the per-job journal retains. Safe on nil.
func (j *Journal) Tee(rec *FlightRecorder) {
	if j == nil {
		return
	}
	j.mu.Lock()
	j.tee = rec
	j.mu.Unlock()
}

// Append adds one record, assigning its sequence number and stamping the
// journal's job id (unless the record already carries one). Safe on nil.
func (j *Journal) Append(e Event) {
	if j == nil {
		return
	}
	j.mu.Lock()
	e.Seq = len(j.events)
	if e.Job == "" {
		e.Job = j.job
	}
	j.events = append(j.events, e)
	tee := j.tee
	j.mu.Unlock()
	tee.Record(EventFromJournal(e))
}

// Len returns the number of records. Safe on nil.
func (j *Journal) Len() int {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.events)
}

// Events returns a copy of all records in append order. Safe on nil.
func (j *Journal) Events() []Event {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return append([]Event(nil), j.events...)
}

// Counts tallies records by kind. Safe on nil.
func (j *Journal) Counts() map[Kind]int {
	out := make(map[Kind]int)
	for _, e := range j.Events() {
		out[e.Kind]++
	}
	return out
}

// WriteJSONL writes one JSON object per line in append order. Safe on nil
// (writes nothing).
func (j *Journal) WriteJSONL(w io.Writer) error {
	for _, e := range j.Events() {
		b, err := json.Marshal(e)
		if err != nil {
			return err
		}
		b = append(b, '\n')
		if _, err := w.Write(b); err != nil {
			return err
		}
	}
	return nil
}
