package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// The FT flight recorder: a bounded ring buffer holding the last N
// fault-tolerance events and job lifecycle transitions across *all*
// requests, for postmortems — "which job detected, corrected, or died
// right before the incident" — without unbounded log growth. The
// serving layer tees every per-job journal into one recorder and dumps
// it at /debug/events.
//
// Writers are lock-free-ish: a single atomic fetch-add claims a slot,
// and each slot has its own tiny mutex so concurrent writers only ever
// contend when the ring wraps onto a slot another writer still holds.
// Readers lock slots one at a time and reassemble by sequence number,
// so a dump never stalls the write path globally.

// FlightEvent is one flight-recorder record. FT events carry the
// journal kind ("ft:checksum_check", "ft:detection", …); lifecycle
// transitions use "job:queued", "job:running", "job:done", and so on.
type FlightEvent struct {
	Seq    uint64    `json:"seq"`
	Wall   time.Time `json:"wall"`
	Kind   string    `json:"kind"`
	Job    string    `json:"job,omitempty"`
	Device string    `json:"device,omitempty"`
	Iter   int       `json:"iter,omitempty"`
	Detail string    `json:"detail,omitempty"`
	Value  Float     `json:"value,omitempty"`
}

type recorderSlot struct {
	mu  sync.Mutex
	set bool
	ev  FlightEvent
}

// FlightRecorder is the bounded ring. All methods are safe for
// concurrent use and on a nil receiver.
type FlightRecorder struct {
	slots []recorderSlot
	next  atomic.Uint64
}

// NewFlightRecorder builds a ring holding the last n events (minimum 1).
func NewFlightRecorder(n int) *FlightRecorder {
	if n < 1 {
		n = 1
	}
	return &FlightRecorder{slots: make([]recorderSlot, n)}
}

// Cap reports the ring capacity (0 on nil).
func (r *FlightRecorder) Cap() int {
	if r == nil {
		return 0
	}
	return len(r.slots)
}

// Total reports how many events were ever recorded (including those the
// ring has since overwritten). Safe on nil.
func (r *FlightRecorder) Total() uint64 {
	if r == nil {
		return 0
	}
	return r.next.Load()
}

// Record appends one event, assigning its sequence number and wall
// timestamp, overwriting the oldest slot once the ring is full. Safe on
// a nil receiver.
func (r *FlightRecorder) Record(ev FlightEvent) {
	if r == nil {
		return
	}
	seq := r.next.Add(1) - 1
	ev.Seq = seq
	ev.Wall = time.Now()
	s := &r.slots[seq%uint64(len(r.slots))]
	s.mu.Lock()
	// A slower writer must never clobber a newer wrap of its slot.
	if !s.set || s.ev.Seq <= seq {
		s.ev = ev
		s.set = true
	}
	s.mu.Unlock()
}

// Events returns the currently retained events in ascending sequence
// order (at most Cap of them). Safe on nil.
func (r *FlightRecorder) Events() []FlightEvent {
	if r == nil {
		return nil
	}
	out := make([]FlightEvent, 0, len(r.slots))
	for i := range r.slots {
		s := &r.slots[i]
		s.mu.Lock()
		if s.set {
			out = append(out, s.ev)
		}
		s.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// WriteJSON dumps the recorder state as one JSON document (the
// /debug/events response body).
func (r *FlightRecorder) WriteJSON(w io.Writer) error {
	out := struct {
		Capacity int           `json:"capacity"`
		Total    uint64        `json:"total"`
		Events   []FlightEvent `json:"events"`
	}{Capacity: r.Cap(), Total: r.Total(), Events: r.Events()}
	if out.Events == nil {
		out.Events = []FlightEvent{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// EventFromJournal converts a journal record into its flight-recorder
// form ("ft:"-prefixed kind; Seq/Wall assigned by Record).
func EventFromJournal(e Event) FlightEvent {
	return FlightEvent{
		Kind:   "ft:" + string(e.Kind),
		Job:    e.Job,
		Device: e.Device,
		Iter:   e.Iter,
		Detail: e.Outcome,
		Value:  e.Value,
	}
}
