package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestFlightRecorderWraparound(t *testing.T) {
	r := NewFlightRecorder(8)
	if r.Cap() != 8 {
		t.Fatalf("cap = %d, want 8", r.Cap())
	}
	for i := 0; i < 20; i++ {
		r.Record(FlightEvent{Kind: "job:queued", Job: "j1", Iter: i})
	}
	if r.Total() != 20 {
		t.Fatalf("total = %d, want 20", r.Total())
	}
	evs := r.Events()
	if len(evs) != 8 {
		t.Fatalf("retained %d events, want 8 (the ring capacity)", len(evs))
	}
	// The ring keeps exactly the newest Cap events, in sequence order.
	for i, e := range evs {
		if want := uint64(12 + i); e.Seq != want {
			t.Fatalf("event %d has seq %d, want %d (all: %+v)", i, e.Seq, want, evs)
		}
		if e.Wall.IsZero() {
			t.Fatalf("event %d has no wall timestamp", i)
		}
	}
}

func TestFlightRecorderConcurrentWriters(t *testing.T) {
	const writers, perWriter = 8, 500
	r := NewFlightRecorder(32)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				r.Record(FlightEvent{Kind: "ft:detection", Job: "j", Iter: w*perWriter + i})
			}
		}(w)
	}
	wg.Wait()
	if r.Total() != writers*perWriter {
		t.Fatalf("total = %d, want %d", r.Total(), writers*perWriter)
	}
	evs := r.Events()
	if len(evs) == 0 || len(evs) > r.Cap() {
		t.Fatalf("retained %d events, want 1..%d", len(evs), r.Cap())
	}
	// Sequence numbers must be strictly ascending and each slot must hold
	// the newest wrap it ever saw (the stale-write guard): no retained
	// event may be older than total - cap*2 even under heavy contention.
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq <= evs[i-1].Seq {
			t.Fatalf("events not strictly ascending: %d then %d", evs[i-1].Seq, evs[i].Seq)
		}
	}
}

func TestFlightRecorderNilAndJSON(t *testing.T) {
	var nilRec *FlightRecorder
	nilRec.Record(FlightEvent{Kind: "job:queued"})
	if nilRec.Events() != nil || nilRec.Cap() != 0 || nilRec.Total() != 0 {
		t.Fatal("nil recorder must absorb everything")
	}

	r := NewFlightRecorder(4)
	r.Record(FlightEvent{Kind: "job:done", Job: "j9"})
	var b bytes.Buffer
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var dump struct {
		Capacity int           `json:"capacity"`
		Total    uint64        `json:"total"`
		Events   []FlightEvent `json:"events"`
	}
	if err := json.Unmarshal(b.Bytes(), &dump); err != nil {
		t.Fatalf("dump is not JSON: %v\n%s", err, b.String())
	}
	if dump.Capacity != 4 || dump.Total != 1 || len(dump.Events) != 1 || dump.Events[0].Job != "j9" {
		t.Fatalf("dump = %+v", dump)
	}
}

func TestJournalTeeStampsRecorder(t *testing.T) {
	rec := NewFlightRecorder(64)
	j := NewJournal()
	j.Stamp("job-7")
	j.Tee(rec)

	const writers, perWriter = 6, 40
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				j.Append(Ev(KindChecksumCheck, i))
			}
		}()
	}
	wg.Wait()

	if j.Len() != writers*perWriter {
		t.Fatalf("journal len = %d, want %d", j.Len(), writers*perWriter)
	}
	for _, e := range j.Events() {
		if e.Job != "job-7" {
			t.Fatalf("journal record missing stamp: %+v", e)
		}
	}
	if rec.Total() != uint64(writers*perWriter) {
		t.Fatalf("recorder saw %d events, journal appended %d", rec.Total(), writers*perWriter)
	}
	for _, e := range rec.Events() {
		if e.Kind != "ft:checksum_check" || e.Job != "job-7" {
			t.Fatalf("teed event not converted: %+v", e)
		}
	}
}

func TestTracerConcurrentAndBounded(t *testing.T) {
	tr := NewTracer(TraceID())
	if tr.ID() == "" {
		t.Fatal("empty trace id")
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < maxTracerSpans; i++ {
				id := tr.Start("work", 0)
				tr.End(id)
			}
		}()
	}
	wg.Wait()
	spans := tr.Spans()
	if len(spans) != maxTracerSpans {
		t.Fatalf("tracer retained %d spans, want exactly the bound %d", len(spans), maxTracerSpans)
	}
	for _, sp := range spans {
		if sp.Start.IsZero() || sp.End.IsZero() {
			t.Fatalf("span not closed: %+v", sp)
		}
	}
	// Past the bound, Start degrades to "no span" and End absorbs it.
	if id := tr.Start("overflow", 0); id != 0 {
		t.Fatalf("overflow span got id %d, want 0", id)
	}
	tr.End(0)

	var nilTr *Tracer
	if nilTr.Start("x", 0) != 0 || nilTr.ID() != "" || nilTr.Spans() != nil {
		t.Fatal("nil tracer must absorb everything")
	}
	nilTr.End(1)
}

func TestTraceContextNilSafety(t *testing.T) {
	var tc *TraceContext
	if tc.JobID() != "" || tc.ParentSpan() != 0 || tc.Span("x", 0) != 0 {
		t.Fatal("nil trace context must degrade to zero values")
	}
	tc.EndSpan(1)

	// A context with a nil tracer is equally inert.
	tc = &TraceContext{Job: "j1"}
	if tc.JobID() != "j1" || tc.Span("x", 0) != 0 {
		t.Fatal("tracer-less context must still name the job")
	}
	tc.EndSpan(0)
}

func TestQuantileInterpolation(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("d", []float64{1, 2, 4})
	// 10 samples in (0,1], 10 in (1,2]: p50 sits exactly at the 1s bound,
	// p75 interpolates halfway through the (1,2] bucket.
	for i := 0; i < 10; i++ {
		h.Observe(0.5)
		h.Observe(1.5)
	}
	s := h.Snap()
	if got := s.Quantile(0.5); math.Abs(got-1) > 1e-12 {
		t.Fatalf("p50 = %v, want 1", got)
	}
	if got := s.Quantile(0.75); math.Abs(got-1.5) > 1e-12 {
		t.Fatalf("p75 = %v, want 1.5", got)
	}
	// Ranks landing in the +Inf bucket clamp to the top finite bound.
	h.Observe(100)
	if got := h.Snap().Quantile(0.999); got != 4 {
		t.Fatalf("p99.9 = %v, want clamp to 4", got)
	}
	// Empty snapshots answer NaN, not a made-up number.
	var empty HistogramSnapshot
	if !math.IsNaN(empty.Quantile(0.5)) {
		t.Fatal("empty snapshot quantile must be NaN")
	}
}

func TestQuantileMergeAcrossSeries(t *testing.T) {
	r := NewRegistry()
	r.Histogram("lat", []float64{1, 2}, L("outcome", "done")).Observe(0.5)
	r.Histogram("lat", []float64{1, 2}, L("outcome", "failed")).Observe(1.5)
	m := MergeBy(r, "lat", "outcome")
	if len(m) != 2 {
		t.Fatalf("MergeBy groups = %d, want 2", len(m))
	}
	var all HistogramSnapshot
	for _, s := range m {
		all.Merge(s)
	}
	if all.Count != 2 || all.Sum != 2 {
		t.Fatalf("merged count/sum = %d/%v, want 2/2", all.Count, all.Sum)
	}
	// Mismatched bucket grids keep sum/count but refuse to mix buckets.
	other := HistogramSnapshot{Bounds: []float64{9}, Cumulative: []uint64{3, 3}, Sum: 3, Count: 3}
	all.Merge(other)
	if all.Count != 5 || len(all.Bounds) != 2 {
		t.Fatalf("mismatched merge corrupted the grid: %+v", all)
	}
}

func TestPrometheusQuantileExposition(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("serve_job_duration_seconds", []float64{1, 2}, L("outcome", "done"))
	h.Observe(0.5)
	h.Observe(1.5)
	var b bytes.Buffer
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE serve_job_duration_seconds_quantile gauge",
		`serve_job_duration_seconds_quantile{outcome="done",quantile="0.5"} 1`,
		`serve_job_duration_seconds_quantile{outcome="done",quantile="0.95"}`,
		`serve_job_duration_seconds_quantile{outcome="done",quantile="0.99"}`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestPruneRetiresJobSeries(t *testing.T) {
	r := NewRegistry()
	r.Counter("ft_detections_total", L("job", "j1")).Inc()
	r.Counter("ft_detections_total", L("job", "j2")).Inc()
	r.Gauge("g", L("job", "j1")).Set(1)
	r.Histogram("h", []float64{1}, L("job", "j1")).Observe(0.5)
	r.Counter("serve_jobs_total").Inc()

	n := r.Prune(func(_ string, labels map[string]string) bool {
		return labels["job"] == "j1"
	})
	if n != 3 {
		t.Fatalf("pruned %d series, want 3", n)
	}
	var b bytes.Buffer
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if strings.Contains(out, `job="j1"`) {
		t.Fatalf("pruned job still exposed:\n%s", out)
	}
	for _, want := range []string{`job="j2"`, "serve_jobs_total 1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("prune removed too much (%q missing):\n%s", want, out)
		}
	}
}
