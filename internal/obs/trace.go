package obs

import (
	"crypto/rand"
	"encoding/hex"
	"sync"
	"time"
)

// Request-scoped tracing: every served job gets a trace ID and a Tracer
// collecting wall-clock spans of its lifecycle (queued, lease wait, the
// reduction itself), parented so the Chrome-trace export nests them. The
// simulated device timeline is a *separate* clock — the per-job trace
// renders it as a second process next to the wall-clock lifecycle lanes
// (see internal/serve) rather than pretending the two are alignable.
//
// TraceContext is the handle threaded through the whole stack
// (serve → core → hybrid → ft/ftsym → devpool → gpu): it names the job
// every metric series, journal record, and flight-recorder event should
// be attributed to. All of it is nil-safe, so instrumented code needs no
// conditionals and the instrumentation-off serving mode simply passes
// nil.

// TraceID returns a fresh 16-hex-digit trace identifier.
func TraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on the supported platforms; degrade to a
		// time-derived id rather than panicking in a serving path.
		now := time.Now().UnixNano()
		for i := range b {
			b[i] = byte(now >> (8 * i))
		}
	}
	return hex.EncodeToString(b[:])
}

// SpanID identifies one span within a Tracer; 0 is "no span" (the root's
// parent, and the return of every call on a nil or full Tracer).
type SpanID int

// TSpan is one wall-clock span. End is zero while the span is open.
type TSpan struct {
	ID     SpanID    `json:"id"`
	Parent SpanID    `json:"parent,omitempty"`
	Name   string    `json:"name"`
	Start  time.Time `json:"start"`
	End    time.Time `json:"end,omitempty"`
}

// maxTracerSpans bounds one tracer; a trace is a per-request artifact,
// not an unbounded log, and a misbehaving instrumentation site must not
// grow a job's memory without limit.
const maxTracerSpans = 4096

// Tracer collects the parented wall-clock spans of one trace. All
// methods are safe for concurrent use and on a nil receiver.
type Tracer struct {
	mu    sync.Mutex
	id    string
	spans []TSpan
}

// NewTracer starts an empty tracer for the given trace ID.
func NewTracer(id string) *Tracer { return &Tracer{id: id} }

// ID reports the trace ID ("" on nil).
func (t *Tracer) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Start opens a span under parent (0 for a root) and returns its ID.
func (t *Tracer) Start(name string, parent SpanID) SpanID {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.spans) >= maxTracerSpans {
		return 0
	}
	id := SpanID(len(t.spans) + 1)
	t.spans = append(t.spans, TSpan{ID: id, Parent: parent, Name: name, Start: time.Now()})
	return id
}

// End closes the span (no-op for id 0, an unknown id, or a nil tracer).
func (t *Tracer) End(id SpanID) {
	if t == nil || id <= 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if int(id) > len(t.spans) {
		return
	}
	sp := &t.spans[id-1]
	if sp.End.IsZero() {
		sp.End = time.Now()
	}
}

// Spans returns a copy of all spans in start order.
func (t *Tracer) Spans() []TSpan {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]TSpan(nil), t.spans...)
}

// TraceContext carries the per-request observability identity through
// the reduction stack. A nil *TraceContext disables request scoping
// (every accessor degrades to the zero value).
type TraceContext struct {
	// Job is the request/job identifier; when non-empty, every metric
	// series the run emits carries a job=<Job> label and every journal
	// record is stamped with it.
	Job string
	// Tracer receives wall-clock lifecycle spans (may be nil).
	Tracer *Tracer
	// Parent is the span the next layer down should parent its spans
	// under (the serve layer points it at the job's "run" span).
	Parent SpanID
}

// ParentSpan reports the parent span deeper layers should nest under
// (0 on nil).
func (tc *TraceContext) ParentSpan() SpanID {
	if tc == nil {
		return 0
	}
	return tc.Parent
}

// JobID reports the job identifier ("" on nil).
func (tc *TraceContext) JobID() string {
	if tc == nil {
		return ""
	}
	return tc.Job
}

// Span opens a span on the context's tracer (0 without one).
func (tc *TraceContext) Span(name string, parent SpanID) SpanID {
	if tc == nil {
		return 0
	}
	return tc.Tracer.Start(name, parent)
}

// EndSpan closes a span opened with Span.
func (tc *TraceContext) EndSpan(id SpanID) {
	if tc == nil {
		return
	}
	tc.Tracer.End(id)
}
