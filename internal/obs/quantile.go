package obs

import (
	"math"
	"sort"
)

// Histogram quantile estimation: the SLO views of the serving layer
// (p50/p95/p99 job latency, queue-wait, lease-wait) and the per-phase
// latency columns of bench.Breakdown are all read from the same
// fixed-bucket histograms the registry already collects. Estimation is
// the standard Prometheus histogram_quantile scheme — find the bucket
// the target rank falls in and interpolate linearly inside it — so the
// numbers here match what a Prometheus server would compute from the
// exposition.

// HistogramSnapshot is an immutable copy of one histogram's state,
// mergeable across series and queryable for quantiles.
type HistogramSnapshot struct {
	// Bounds are the inclusive upper bounds; +Inf is implicit.
	Bounds []float64 `json:"bounds"`
	// Cumulative has len(Bounds)+1 entries; the last equals Count.
	Cumulative []uint64 `json:"cumulative"`
	Sum        float64  `json:"sum"`
	Count      uint64   `json:"count"`
}

// Snap copies the histogram's current state. Safe on a nil receiver
// (returns a zero snapshot).
func (h *Histogram) Snap() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	bounds, cum := h.Buckets()
	return HistogramSnapshot{
		Bounds:     bounds,
		Cumulative: cum,
		Sum:        h.Sum(),
		Count:      h.Count(),
	}
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) by linear interpolation
// within the bucket holding the target rank, exactly as Prometheus's
// histogram_quantile does: the lower edge of the first bucket is taken
// as 0 (all recorded quantities here are non-negative durations), and
// ranks falling in the +Inf bucket clamp to the highest finite bound.
// NaN when the snapshot is empty.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Cumulative) == 0 || math.IsNaN(q) {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	i := sort.Search(len(s.Cumulative), func(i int) bool {
		return float64(s.Cumulative[i]) >= rank
	})
	if i >= len(s.Bounds) {
		// The +Inf bucket: clamp to the largest finite bound (or the sum
		// mean when there are no finite bounds at all).
		if len(s.Bounds) == 0 {
			return s.Sum / float64(s.Count)
		}
		return s.Bounds[len(s.Bounds)-1]
	}
	lo := 0.0
	var below uint64
	if i > 0 {
		lo = s.Bounds[i-1]
		below = s.Cumulative[i-1]
	}
	hi := s.Bounds[i]
	in := s.Cumulative[i] - below
	if in == 0 {
		return hi
	}
	return lo + (hi-lo)*(rank-float64(below))/float64(in)
}

// Quantiles evaluates several quantiles at once on one snapshot.
func (s HistogramSnapshot) Quantiles(qs ...float64) []float64 {
	out := make([]float64, len(qs))
	for i, q := range qs {
		out[i] = s.Quantile(q)
	}
	return out
}

// Merge folds another snapshot into s (bucket-wise). Snapshots with
// different bounds contribute only their sum and count — the quantile
// then degrades gracefully rather than mixing incompatible grids.
func (s *HistogramSnapshot) Merge(o HistogramSnapshot) {
	s.Sum += o.Sum
	s.Count += o.Count
	if len(s.Bounds) == 0 {
		s.Bounds = append([]float64(nil), o.Bounds...)
		s.Cumulative = append([]uint64(nil), o.Cumulative...)
		return
	}
	if len(o.Bounds) != len(s.Bounds) {
		return
	}
	for i, b := range o.Bounds {
		if b != s.Bounds[i] {
			return
		}
	}
	for i, c := range o.Cumulative {
		s.Cumulative[i] += c
	}
}

// MergeBy aggregates every series of one histogram metric by the value
// of a label key (series missing the key group under ""), merging the
// buckets so quantiles can be estimated per group. The histogram
// counterpart of SumBy.
func MergeBy(r *Registry, name, labelKey string) map[string]HistogramSnapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	hists := make([]*Histogram, 0, len(r.hists))
	for _, h := range r.hists {
		hists = append(hists, h)
	}
	r.mu.Unlock()

	out := make(map[string]HistogramSnapshot)
	for _, h := range hists {
		if h.name != name {
			continue
		}
		key := ""
		for _, l := range h.labels {
			if l.Key == labelKey {
				key = l.Value
				break
			}
		}
		acc := out[key]
		acc.Merge(h.Snap())
		out[key] = acc
	}
	return out
}

// ExportQuantiles are the quantiles WritePrometheus publishes for every
// histogram series (as a companion <name>_quantile gauge family), and
// the ones the SLO reports quote: p50, p95, p99.
var ExportQuantiles = []float64{0.5, 0.95, 0.99}
