// Package core is the public façade of the reproduction: one entry point
// for reducing a general square matrix to upper Hessenberg form on the
// simulated hybrid CPU+GPU platform, with or without the paper's
// transient-error resilience, plus the end-to-end eigenvalue path that
// motivates the reduction.
//
// Downstream users pick an Algorithm, optionally attach a fault-injection
// hook, and get back the factorization (packed, H, Q), eigenvalues if
// requested, the simulated performance, and the resilience statistics.
//
//	res, err := core.Reduce(a, core.Options{Algorithm: core.FaultTolerant})
//	H, Q := res.H(), res.Q()
package core

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/ft"
	"repro/internal/gpu"
	"repro/internal/hybrid"
	"repro/internal/lapack"
	"repro/internal/matrix"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Algorithm selects which reduction to run.
type Algorithm int

const (
	// FaultTolerant runs the paper's FT_DGEHRD (Algorithm 3): ABFT
	// checksums, diskless checkpointing, reverse computation.
	FaultTolerant Algorithm = iota
	// Baseline runs the fault-prone MAGMA-style hybrid reduction
	// (Algorithm 2), the paper's comparison point.
	Baseline
	// CPUOnly runs LAPACK's blocked DGEHRD entirely on the host —
	// the reference implementation, useful for validation.
	CPUOnly
)

func (a Algorithm) String() string {
	switch a {
	case FaultTolerant:
		return "FT-Hess"
	case Baseline:
		return "MAGMA-Hess"
	case CPUOnly:
		return "LAPACK-DGEHRD"
	}
	return fmt.Sprintf("Algorithm(%d)", int(a))
}

// Options configures a reduction.
type Options struct {
	// Ctx, when non-nil, makes the reduction cancellable: the hybrid
	// algorithms (FaultTolerant, Baseline) poll it at every blocked
	// iteration boundary and between panel columns, so cancelling the
	// context makes Reduce return ctx.Err() (context.Canceled or
	// context.DeadlineExceeded) within one iteration, with the device
	// and the shared BLAS pool left reusable. CPUOnly checks once, up
	// front (its single LAPACK call is not interruptible).
	Ctx context.Context
	// Algorithm defaults to FaultTolerant.
	Algorithm Algorithm
	// NB is the block size (32, the paper's choice, if zero).
	NB int
	// Params calibrates the simulated platform (sim.K40c() if zero).
	Params sim.Params
	// CostOnly skips kernel arithmetic and only models time; use for
	// large-N performance sweeps.
	CostOnly bool
	// ThresholdFactor, FinalHCheck, DisableQProtection, DisableOverlap
	// and Hook pass through to the fault-tolerant algorithm.
	ThresholdFactor    float64
	FinalHCheck        bool
	DisableQProtection bool
	DisableOverlap     bool
	// DisableLookahead turns off the depth-1 lookahead schedule (panel
	// k+1 factored under trailing update k) in both hybrid algorithms.
	// Results are bit-identical either way; only modeled time changes.
	DisableLookahead bool
	// FailStop enables fail-stop device-loss recovery on the multi-device
	// path (DESIGN.md §13): a parity slab on a checksum device lets a run
	// survive one permanently dead device bit-identically. SpareDevice,
	// when set, supplies replacement (and parity) devices; otherwise they
	// are fabricated from Params/CostOnly. Both pass through to ft.
	FailStop    bool
	SpareDevice func() *gpu.Device
	// Substrate selects the BLAS fault-tolerance substrate for the
	// fault-tolerant algorithm: "" or "swept" (default) keeps the
	// iteration-boundary sweeps only; "fused" additionally verifies every
	// device BLAS call in-kernel (fused-ABFT Dgemm, DMR Dgemv/Dger) and
	// refreshes the multi-device panel-slab halo incrementally. Results
	// are bit-identical either way; only modeled time and the
	// substrate counters change. Passes through to ft.Options.Substrate.
	Substrate string
	Hook      ft.Hook
	// Obs, when set, receives run metrics (per-phase timers, kernel-kind
	// time, lane utilization, FT counters). Journal receives the typed
	// fault-tolerance event stream. Both are ignored by CPUOnly.
	Obs     *obs.Registry
	Journal *obs.Journal
	// Trace, when set, scopes the run to a served request: metric series
	// gain a job=<id> label, journal records are stamped with the job, and
	// the reduction's layers record wall-clock spans on the context's
	// tracer. Ignored by CPUOnly (which emits no metrics).
	Trace *obs.TraceContext
	// Device overrides the simulated device built from Params/CostOnly —
	// use it to enable tracing (dev.EnableTrace) around a run.
	Device *gpu.Device
	// DeviceCount > 0 runs the multi-device pool path on that many
	// simulated devices built from Params/CostOnly (0 selects the legacy
	// single-device algorithms; a pool of 1 uses the multi schedule, which
	// is bit-identical at every pool size but not to the legacy schedule).
	// Devices, when non-empty, supplies the pool explicitly instead
	// (e.g. pre-traced devices) and takes precedence. CPUOnly rejects a
	// pool.
	DeviceCount int
	Devices     []*gpu.Device
}

// Result is the unified outcome of any algorithm choice.
type Result struct {
	Algorithm Algorithm
	N, NB     int
	// Packed is the factorization in LAPACK layout; Tau the reflector
	// scalars.
	Packed *matrix.Matrix
	Tau    []float64
	// SimSeconds / ModelGFLOPS report simulated performance (zero for
	// CPUOnly, which has no device timeline).
	SimSeconds  float64
	ModelGFLOPS float64
	// Resilience statistics (FaultTolerant only).
	Detections   int
	Recoveries   int
	CorrectedH   []ft.Injection
	QCorrections int
	// Fail-stop statistics (FaultTolerant on a device pool, DESIGN.md §13):
	// permanent device deaths and parity reconstructions that survived them.
	DeviceLosses       int
	FailStopRecoveries int
	// Fused-substrate statistics (Options.Substrate = "fused"): per-call
	// in-kernel checksum verifications and detections.
	SubstrateChecks     int
	SubstrateDetections int
}

// H extracts the upper Hessenberg factor.
func (r *Result) H() *matrix.Matrix {
	return lapack.HessFromPacked(r.N, r.Packed.Data, r.Packed.Stride)
}

// Q forms the orthogonal factor explicitly.
func (r *Result) Q() *matrix.Matrix {
	return lapack.Dorghr(r.N, r.Packed.Data, r.Packed.Stride, r.Tau)
}

// Residual returns ‖A−QHQᵀ‖₁/(N‖A‖₁) against the original matrix.
func (r *Result) Residual(a *matrix.Matrix) float64 {
	return lapack.FactorizationResidual(a, r.Q(), r.H())
}

// Orthogonality returns ‖QQᵀ−I‖₁/N.
func (r *Result) Orthogonality() float64 {
	return lapack.OrthogonalityResidual(r.Q())
}

func (o *Options) device() *gpu.Device {
	if o.Device != nil {
		return o.Device
	}
	p := o.Params
	if p == (sim.Params{}) {
		p = sim.K40c()
	}
	mode := gpu.Real
	if o.CostOnly {
		mode = gpu.CostOnly
	}
	return gpu.New(p, mode)
}

// pool resolves the multi-device option: the explicit Devices slice, or
// DeviceCount freshly built devices, or nil for the single-device path.
func (o *Options) pool() []*gpu.Device {
	if len(o.Devices) > 0 {
		return o.Devices
	}
	if o.DeviceCount <= 0 {
		return nil
	}
	p := o.Params
	if p == (sim.Params{}) {
		p = sim.K40c()
	}
	mode := gpu.Real
	if o.CostOnly {
		mode = gpu.CostOnly
	}
	devs := make([]*gpu.Device, o.DeviceCount)
	for i := range devs {
		devs[i] = gpu.NewIndexed(p, mode, i)
	}
	return devs
}

// Reduce reduces the square matrix a (not modified) to upper Hessenberg
// form with the selected algorithm.
func Reduce(a *matrix.Matrix, opt Options) (*Result, error) {
	nb := opt.NB
	if nb <= 0 {
		nb = hybrid.DefaultNB
	}
	pool := opt.pool()
	switch opt.Algorithm {
	case CPUOnly:
		if pool != nil {
			return nil, errors.New("core: CPUOnly cannot run on a device pool")
		}
		n := a.Rows
		if n != a.Cols {
			return nil, errors.New("core: matrix must be square")
		}
		if opt.Ctx != nil {
			if err := opt.Ctx.Err(); err != nil {
				return nil, err
			}
		}
		packed := a.Clone()
		tau := make([]float64, max(n-1, 1))
		lapack.Dgehrd(n, nb, packed.Data, packed.Stride, tau)
		return &Result{Algorithm: CPUOnly, N: n, NB: nb, Packed: packed, Tau: tau}, nil
	case Baseline:
		hopt := hybrid.Options{
			Ctx: opt.Ctx,
			NB:  nb, DisableOverlap: opt.DisableOverlap,
			DisableLookahead: opt.DisableLookahead,
			Obs:              opt.Obs,
			Trace:            opt.Trace,
		}
		if pool != nil {
			hopt.Devices = pool
		} else {
			hopt.Device = opt.device()
		}
		res, err := hybrid.Reduce(a, hopt)
		if err != nil {
			return nil, err
		}
		return &Result{
			Algorithm: Baseline, N: res.N, NB: res.NB,
			Packed: res.Packed, Tau: res.Tau,
			SimSeconds: res.SimSeconds, ModelGFLOPS: res.ModelGFLOPS,
		}, nil
	default:
		fopt := ft.Options{
			Ctx:                opt.Ctx,
			NB:                 nb,
			ThresholdFactor:    opt.ThresholdFactor,
			FinalHCheck:        opt.FinalHCheck,
			DisableQProtection: opt.DisableQProtection,
			DisableOverlap:     opt.DisableOverlap,
			DisableLookahead:   opt.DisableLookahead,
			FailStop:           opt.FailStop,
			SpareDevice:        opt.SpareDevice,
			Substrate:          opt.Substrate,
			Hook:               opt.Hook,
			Obs:                opt.Obs,
			Journal:            opt.Journal,
			Trace:              opt.Trace,
		}
		if pool != nil {
			fopt.Devices = pool
		} else {
			fopt.Device = opt.device()
		}
		res, err := ft.Reduce(a, fopt)
		if err != nil {
			return nil, err
		}
		return &Result{
			Algorithm: FaultTolerant, N: res.N, NB: res.NB,
			Packed: res.Packed, Tau: res.Tau,
			SimSeconds: res.SimSeconds, ModelGFLOPS: res.ModelGFLOPS,
			Detections: res.Detections, Recoveries: res.Recoveries,
			CorrectedH: res.CorrectedH, QCorrections: res.QCorrections,
			DeviceLosses:        res.DeviceLosses,
			FailStopRecoveries:  res.FailStopRecoveries,
			SubstrateChecks:     res.SubstrateChecks,
			SubstrateDetections: res.SubstrateDetections,
		}, nil
	}
}

// Eigenvalues runs the full pipeline the Hessenberg reduction exists for:
// reduce (resiliently, by default) and then apply the Francis double-shift
// QR iteration to the Hessenberg factor.
func Eigenvalues(a *matrix.Matrix, opt Options) ([]lapack.Eig, *Result, error) {
	if opt.CostOnly {
		return nil, nil, errors.New("core: Eigenvalues requires real execution")
	}
	res, err := Reduce(a, opt)
	if err != nil {
		return nil, res, err
	}
	h := res.H()
	n := h.Rows
	wr := make([]float64, n)
	wi := make([]float64, n)
	if err := lapack.Dhseqr(n, h.Data, h.Stride, wr, wi); err != nil {
		return nil, res, err
	}
	eigs := make([]lapack.Eig, n)
	for i := range eigs {
		eigs[i] = lapack.Eig{Re: wr[i], Im: wi[i]}
	}
	lapack.SortEigs(eigs)
	return eigs, res, nil
}
