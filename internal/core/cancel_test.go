package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/ft"
	"repro/internal/gpu"
	"repro/internal/matrix"
	"repro/internal/sim"
)

// cancelHook cancels the context from inside the reduction at one
// iteration boundary and records how far the loop got afterwards — the
// proof that cancellation is observed within one iteration.
type cancelHook struct {
	cancel  context.CancelFunc
	at      int
	maxIter int
}

func (h *cancelHook) BeforeIteration(ic *ft.IterCtx) {
	if ic.Iter > h.maxIter {
		h.maxIter = ic.Iter
	}
	if ic.Iter == h.at {
		h.cancel()
	}
}

func (h *cancelHook) ConsumePendingH() int { return 0 }
func (h *cancelHook) PendingQ() int        { return 0 }

// TestReduceCancelMidIteration is the contract test for Options.Ctx: a
// cancel that lands between iterations surfaces as context.Canceled
// within one iteration, and both the device and the shared BLAS pool
// stay reusable — the same device immediately runs a full reduction.
func TestReduceCancelMidIteration(t *testing.T) {
	n, nb := 96, 8
	a := matrix.Random(n, n, 3)
	dev := gpu.New(sim.K40c(), gpu.Real)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	hook := &cancelHook{cancel: cancel, at: 2}
	res, err := Reduce(a, Options{Ctx: ctx, NB: nb, Device: dev, Hook: hook})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Reduce returned (%v, %v), want context.Canceled", res, err)
	}
	if hook.maxIter != hook.at {
		t.Fatalf("loop reached iteration %d after a cancel at %d (not within one iteration)",
			hook.maxIter, hook.at)
	}

	// The device and the BLAS pool must have been left reusable: rerun
	// the full reduction on the very same device.
	res, err = Reduce(a, Options{NB: nb, Device: dev})
	if err != nil {
		t.Fatalf("reduce after cancel on the same device: %v", err)
	}
	if r := res.Residual(a); r > 1e-13 {
		t.Fatalf("post-cancel residual %v", r)
	}
	if r := res.Orthogonality(); r > 1e-13 {
		t.Fatalf("post-cancel orthogonality %v", r)
	}
}

// TestReduceCancelledBeforeStart: an already-cancelled context stops
// every algorithm before any work.
func TestReduceCancelledBeforeStart(t *testing.T) {
	a := matrix.Random(32, 32, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, alg := range []Algorithm{FaultTolerant, Baseline, CPUOnly} {
		if _, err := Reduce(a, Options{Ctx: ctx, Algorithm: alg, NB: 8}); !errors.Is(err, context.Canceled) {
			t.Fatalf("%v with cancelled ctx: %v", alg, err)
		}
	}
	if _, err := ReduceSym(a, SymOptions{Ctx: ctx, NB: 8}); !errors.Is(err, context.Canceled) {
		t.Fatalf("hybrid ReduceSym with cancelled ctx: %v", err)
	}
	if _, err := ReduceSym(a, SymOptions{Ctx: ctx, NB: 8, FaultTolerant: true}); !errors.Is(err, context.Canceled) {
		t.Fatalf("ft ReduceSym with cancelled ctx: %v", err)
	}
}

// symCancelHook cancels the symmetric reduction at one iteration.
type symCancelHook struct {
	cancel  context.CancelFunc
	at      int
	maxIter int
}

func (h *symCancelHook) BeforeIteration(iter, panel int, w *matrix.Matrix) {
	if iter > h.maxIter {
		h.maxIter = iter
	}
	if iter == h.at {
		h.cancel()
	}
}

// TestReduceSymCancelMidIteration mirrors the general-path contract for
// the resilient tridiagonalization.
func TestReduceSymCancelMidIteration(t *testing.T) {
	n, nb := 96, 8
	a := matrix.Random(n, n, 5)
	for j := 0; j < n; j++ {
		for i := 0; i < j; i++ {
			a.Set(i, j, a.At(j, i))
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	hook := &symCancelHook{cancel: cancel, at: 1}
	_, err := ReduceSym(a, SymOptions{Ctx: ctx, NB: nb, FaultTolerant: true, Hook: hook})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled ReduceSym returned %v, want context.Canceled", err)
	}
	if hook.maxIter > hook.at+1 {
		t.Fatalf("symmetric loop reached iteration %d after a cancel at %d", hook.maxIter, hook.at)
	}

	// The shared BLAS pool must still work: run to completion.
	res, err := ReduceSym(a, SymOptions{NB: nb, FaultTolerant: true})
	if err != nil {
		t.Fatalf("reduce after cancel: %v", err)
	}
	if _, err := res.Eigenvalues(); err != nil {
		t.Fatalf("eigenvalues after cancel: %v", err)
	}
}

// TestReduceDeadlineExceeded: a deadline surfaces as DeadlineExceeded,
// distinguishable from a user cancel.
func TestReduceDeadlineExceeded(t *testing.T) {
	a := matrix.Random(32, 32, 1)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, err := Reduce(a, Options{Ctx: ctx, NB: 8}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadline Reduce: %v", err)
	}
}
