package core

import (
	"math"
	"testing"

	"repro/internal/fault"
	"repro/internal/gpu"
	"repro/internal/matrix"
	"repro/internal/sim"
)

func TestReduceAllAlgorithmsAgree(t *testing.T) {
	n := 100
	a := matrix.Random(n, n, 1)
	var packed []*matrix.Matrix
	for _, alg := range []Algorithm{FaultTolerant, Baseline, CPUOnly} {
		res, err := Reduce(a, Options{Algorithm: alg, NB: 16})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if res.Algorithm != alg {
			t.Fatalf("algorithm tag %v", res.Algorithm)
		}
		if !res.H().IsUpperHessenberg(0) {
			t.Fatalf("%v: not Hessenberg", alg)
		}
		if r := res.Residual(a); r > 1e-14 {
			t.Fatalf("%v: residual %v", alg, r)
		}
		if r := res.Orthogonality(); r > 1e-13 {
			t.Fatalf("%v: orthogonality %v", alg, r)
		}
		packed = append(packed, res.Packed)
	}
	if d := packed[0].Sub(packed[2]).MaxAbs(); d > 1e-11 {
		t.Fatalf("FT vs CPU packed differ by %v", d)
	}
	if d := packed[1].Sub(packed[2]).MaxAbs(); d > 1e-11 {
		t.Fatalf("hybrid vs CPU packed differ by %v", d)
	}
}

func TestReduceDefaultsToFT(t *testing.T) {
	a := matrix.Random(64, 64, 2)
	res, err := Reduce(a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Algorithm != FaultTolerant {
		t.Fatalf("default algorithm %v", res.Algorithm)
	}
	if res.NB != 32 {
		t.Fatalf("default NB %d", res.NB)
	}
}

func TestReduceWithInjection(t *testing.T) {
	n := 158
	a := matrix.Random(n, n, 3)
	in := fault.New(fault.Plan{Area: fault.Area2, TargetIter: 1, Seed: 4})
	res, err := Reduce(a, Options{Hook: in, NB: 32})
	if err != nil {
		t.Fatal(err)
	}
	if res.Detections == 0 || res.Recoveries == 0 {
		t.Fatalf("injection not handled: %+v", res)
	}
	if r := res.Residual(a); r > 1e-13 {
		t.Fatalf("residual %v", r)
	}
}

func TestEigenvaluesPipeline(t *testing.T) {
	n := 24
	a := matrix.New(n, n)
	want := make([]float64, n)
	for i := range want {
		want[i] = float64(i + 1)
		a.Set(i, i, want[i])
		if i > 0 {
			a.Set(i, i-1, 0.5) // non-normal but triangular-ish: eigenvalues stay the diagonal
		}
	}
	eigs, res, err := Eigenvalues(a, Options{NB: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res == nil || res.Algorithm != FaultTolerant {
		t.Fatal("missing reduction result")
	}
	for i, e := range eigs {
		if math.Abs(e.Re-want[i]) > 1e-8 || math.Abs(e.Im) > 1e-8 {
			t.Fatalf("eig %d = %v+%vi, want %v", i, e.Re, e.Im, want[i])
		}
	}
}

func TestEigenvaluesUnderInjection(t *testing.T) {
	// The end-to-end story: eigenvalues survive an injected soft error.
	n := 126
	a := matrix.RandomNormal(n, n, 5)
	clean, _, err := Eigenvalues(a, Options{NB: 16, Algorithm: Baseline})
	if err != nil {
		t.Fatal(err)
	}
	in := fault.New(fault.Plan{Area: fault.Area2, TargetIter: 2, Seed: 6})
	dirty, res, err := Eigenvalues(a, Options{NB: 16, Hook: in})
	if err != nil {
		t.Fatal(err)
	}
	if res.Recoveries == 0 {
		t.Fatal("no recovery")
	}
	for i := range clean {
		if math.Abs(clean[i].Re-dirty[i].Re) > 1e-6 || math.Abs(clean[i].Im-dirty[i].Im) > 1e-6 {
			t.Fatalf("eig %d drifted: %v vs %v", i, clean[i], dirty[i])
		}
	}
}

func TestEigenvaluesRejectsCostOnly(t *testing.T) {
	if _, _, err := Eigenvalues(matrix.New(4, 4), Options{CostOnly: true}); err == nil {
		t.Fatal("cost-only eigenvalues must error")
	}
}

func TestCostOnlyReduce(t *testing.T) {
	res, err := Reduce(matrix.New(512, 512), Options{CostOnly: true, NB: 32})
	if err != nil {
		t.Fatal(err)
	}
	if res.SimSeconds <= 0 || res.ModelGFLOPS <= 0 {
		t.Fatalf("cost-only stats: %v s %v GFLOPS", res.SimSeconds, res.ModelGFLOPS)
	}
}

func TestNonSquareRejected(t *testing.T) {
	for _, alg := range []Algorithm{FaultTolerant, Baseline, CPUOnly} {
		if _, err := Reduce(matrix.New(3, 4), Options{Algorithm: alg}); err == nil {
			t.Fatalf("%v accepted non-square", alg)
		}
	}
}

func TestAlgorithmString(t *testing.T) {
	if FaultTolerant.String() != "FT-Hess" || Baseline.String() != "MAGMA-Hess" || CPUOnly.String() != "LAPACK-DGEHRD" {
		t.Fatal("algorithm names changed")
	}
	if Algorithm(9).String() == "" {
		t.Fatal("unknown algorithm must still print")
	}
}

func TestReduceSymBothPaths(t *testing.T) {
	n := 100
	a := matrix.Random(n, n, 6)
	for j := 0; j < n; j++ {
		for i := 0; i < j; i++ {
			a.Set(i, j, a.At(j, i))
		}
	}
	hyb, err := ReduceSym(a, SymOptions{NB: 16})
	if err != nil {
		t.Fatal(err)
	}
	ftr, err := ReduceSym(a, SymOptions{NB: 16, FaultTolerant: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if math.Abs(hyb.D[i]-ftr.D[i]) > 1e-10 {
			t.Fatalf("d[%d]: hybrid %v vs FT %v", i, hyb.D[i], ftr.D[i])
		}
	}
	e1, err := hyb.Eigenvalues()
	if err != nil {
		t.Fatal(err)
	}
	e2, err := ftr.Eigenvalues()
	if err != nil {
		t.Fatal(err)
	}
	for i := range e1 {
		if math.Abs(e1[i]-e2[i]) > 1e-9 {
			t.Fatalf("λ_%d: %v vs %v", i, e1[i], e2[i])
		}
	}
	if hyb.SimSeconds <= 0 {
		t.Fatal("hybrid path must report simulated time")
	}
}

func TestReduceSymCostOnlyRules(t *testing.T) {
	a := matrix.New(64, 64)
	if _, err := ReduceSym(a, SymOptions{CostOnly: true}); err != nil {
		t.Fatal(err)
	}
	if _, err := ReduceSym(a, SymOptions{CostOnly: true, FaultTolerant: true}); err == nil {
		t.Fatal("FT+CostOnly must be rejected")
	}
}

func TestRealEigenvectorsFacade(t *testing.T) {
	n := 20
	a := matrix.Random(n, n, 7)
	for j := 0; j < n; j++ {
		for i := 0; i < j; i++ {
			a.Set(i, j, a.At(j, i))
		}
	}
	pairs, complexCount, err := RealEigenvectors(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	if complexCount != 0 || len(pairs) != n {
		t.Fatalf("pairs=%d complex=%d", len(pairs), complexCount)
	}
}

func TestEigenFacade(t *testing.T) {
	a := matrix.FromRows([][]float64{{0, -1}, {1, 0}})
	e, err := Eigen(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 2; j++ {
		if r := e.EigResidual(a, j); r > 1e-12 {
			t.Fatalf("eig %d residual %v", j, r)
		}
	}
}

func TestDeviceCountRoutesToPool(t *testing.T) {
	a := matrix.Random(96, 96, 42)
	for _, alg := range []Algorithm{Baseline, FaultTolerant} {
		// The multi-path contract is bit-identity across K (an explicit
		// one-device pool vs DeviceCount 2), and agreement with the
		// legacy single-device schedule to rounding.
		single, err := Reduce(a, Options{Algorithm: alg, NB: 16})
		if err != nil {
			t.Fatal(err)
		}
		one, err := Reduce(a, Options{Algorithm: alg, NB: 16,
			Devices: []*gpu.Device{gpu.NewIndexed(sim.K40c(), gpu.Real, 0)}})
		if err != nil {
			t.Fatal(err)
		}
		pooled, err := Reduce(a, Options{Algorithm: alg, NB: 16, DeviceCount: 2})
		if err != nil {
			t.Fatal(err)
		}
		if !pooled.Packed.Equal(one.Packed) {
			t.Fatalf("%v: K=2 result not bit-identical to one-device pool", alg)
		}
		if r := pooled.Residual(a); r > 1e-13 {
			t.Fatalf("%v: pooled residual %v", alg, r)
		}
		if d := pooled.Packed.Sub(single.Packed).MaxAbs(); d > 1e-10 {
			t.Fatalf("%v: pooled differs from legacy single-device by %v", alg, d)
		}
	}
	if _, err := Reduce(a, Options{Algorithm: CPUOnly, DeviceCount: 2}); err == nil {
		t.Fatal("CPUOnly must reject a device pool")
	}
}
