package core

import (
	"context"
	"errors"

	"repro/internal/ftsym"
	"repro/internal/gpu"
	"repro/internal/hybrid"
	"repro/internal/lapack"
	"repro/internal/matrix"
	"repro/internal/obs"
)

// SymOptions configures the symmetric (tridiagonalization) path — the
// paper's future-work factorization family.
type SymOptions struct {
	// Ctx, when non-nil, makes the reduction cancellable at blocked
	// iteration boundaries; ReduceSym then returns ctx.Err() within one
	// iteration of cancellation. See Options.Ctx.
	Ctx context.Context
	// NB is the block size (32 if zero).
	NB int
	// FaultTolerant selects the resilient host algorithm (internal/ftsym);
	// otherwise the hybrid device baseline runs (internal/hybrid).
	FaultTolerant bool
	// CostOnly models time only (baseline path only).
	CostOnly bool
	// Hook passes through to the fault-tolerant algorithm.
	Hook ftsym.Hook
	// Obs, when set, receives the run's metric series (ftsym_* counters
	// on the fault-tolerant path; device phase/op timers on the hybrid
	// baseline). Journal receives typed FT event records (fault-tolerant
	// path only).
	Obs     *obs.Registry
	Journal *obs.Journal
	// Trace scopes the run to a served request (see Options.Trace).
	Trace *obs.TraceContext
	// Devices requests a multi-device pool. The symmetric reduction has
	// no multi-device path on either algorithm (see
	// ftsym.Options.Devices for why the triangular storage resists the
	// 1-D slab partition); setting this returns
	// ftsym.ErrMultiDeviceUnsupported so the serving layer can map the
	// request shape to a structured client error.
	Devices []*gpu.Device
}

// SymResult carries the tridiagonal factorization T = QᵀAQ.
type SymResult struct {
	N, NB int
	// D, E: diagonal and subdiagonal of T.
	D, E []float64
	// Packed/Tau hold the reflectors.
	Packed *matrix.Matrix
	Tau    []float64
	// Resilience statistics (fault-tolerant path).
	Detections, Recoveries, Corrections int
	// Simulated performance (hybrid baseline path).
	SimSeconds, ModelGFLOPS float64
}

// Q forms the orthogonal factor explicitly.
func (r *SymResult) Q() *matrix.Matrix {
	return lapack.Dorghr(r.N, r.Packed.Data, r.Packed.Stride, r.Tau)
}

// Eigenvalues runs the QL iteration on the tridiagonal factor.
func (r *SymResult) Eigenvalues() ([]float64, error) {
	d := append([]float64(nil), r.D...)
	e := append([]float64(nil), r.E...)
	if err := lapack.Dsterf(r.N, d, e); err != nil {
		return nil, err
	}
	return d, nil
}

// ReduceSym tridiagonalizes a symmetric matrix (lower triangle referenced,
// not modified).
func ReduceSym(a *matrix.Matrix, opt SymOptions) (*SymResult, error) {
	nb := opt.NB
	if nb <= 0 {
		nb = hybrid.DefaultNB
	}
	if opt.FaultTolerant {
		if opt.CostOnly {
			return nil, errors.New("core: the fault-tolerant symmetric path is host-side (no cost-only mode)")
		}
		res, err := ftsym.Reduce(a, ftsym.Options{
			Ctx: opt.Ctx, NB: nb, Hook: opt.Hook,
			Obs: opt.Obs, Journal: opt.Journal, Trace: opt.Trace,
			Devices: opt.Devices,
		})
		if err != nil {
			return nil, err
		}
		return &SymResult{
			N: res.N, NB: res.NB, D: res.D, E: res.E,
			Packed: res.Packed, Tau: res.Tau,
			Detections: res.Detections, Recoveries: res.Recoveries,
			Corrections: len(res.Corrected),
		}, nil
	}
	if len(opt.Devices) > 0 {
		// The hybrid baseline has no symmetric multi-device schedule
		// either; surface the same typed error as the resilient path.
		return nil, ftsym.ErrMultiDeviceUnsupported
	}
	base := Options{NB: nb, CostOnly: opt.CostOnly}
	res, err := hybrid.ReduceSym(a, hybrid.Options{
		Ctx: opt.Ctx, NB: nb, Device: base.device(),
		Obs: opt.Obs, Trace: opt.Trace,
	})
	if err != nil {
		return nil, err
	}
	return &SymResult{
		N: res.N, NB: res.NB, D: res.D, E: res.E,
		Packed: res.Packed, Tau: res.Tau,
		SimSeconds: res.SimSeconds, ModelGFLOPS: res.ModelGFLOPS,
	}, nil
}

// RealEigenvectors is the full decomposition entry point: eigenvalues and
// unit right eigenvectors for the real part of the spectrum (every
// eigenpair for symmetric inputs), computed through the reduction the
// paper protects.
func RealEigenvectors(a *matrix.Matrix, nb int) ([]lapack.EigenPair, int, error) {
	if nb <= 0 {
		nb = hybrid.DefaultNB
	}
	return lapack.RealEigenvectors(a, nb)
}

// Eigen computes the complete eigendecomposition (all eigenvalues with
// right eigenvectors, complex pairs included) through the Hessenberg +
// HQR2 path.
func Eigen(a *matrix.Matrix, nb int) (*lapack.SchurEigen, error) {
	if nb <= 0 {
		nb = hybrid.DefaultNB
	}
	return lapack.Eigen(a, nb)
}
