package core

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"

	"repro/internal/matrix"
)

// MatrixDigest is the canonical SHA-256 fingerprint of a matrix: the
// IEEE-754 bit patterns of its elements in column-major order, each as 8
// little-endian bytes. Bit patterns (not values) make the digest exact —
// -0.0 and 0.0, or two NaN payloads, hash differently — which is what a
// bit-identical determinism contract needs.
func MatrixDigest(m *matrix.Matrix) string {
	h := sha256.New()
	var buf [8]byte
	for j := 0; j < m.Cols; j++ {
		for i := 0; i < m.Rows; i++ {
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(m.At(i, j)))
			h.Write(buf[:])
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Digest fingerprints the factorization: MatrixDigest of Packed followed
// by the Tau scalars. This is the digest `fthess -checksum` prints and CI
// compares across device counts, schedules, and substrates — the PR 5/7/9
// guarantees make it invariant to all three, so it keys the result cache.
func (r *Result) Digest() string {
	h := sha256.New()
	var buf [8]byte
	for j := 0; j < r.Packed.Cols; j++ {
		for i := 0; i < r.Packed.Rows; i++ {
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(r.Packed.At(i, j)))
			h.Write(buf[:])
		}
	}
	for _, tv := range r.Tau {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(tv))
		h.Write(buf[:])
	}
	return hex.EncodeToString(h.Sum(nil))
}
