package blas

import (
	"math"
	"testing"

	"repro/internal/matrix"
)

// symFull materializes a full symmetric matrix from the uplo triangle of a.
func symFull(a *matrix.Matrix, uplo Uplo) *matrix.Matrix {
	n := a.Rows
	s := matrix.New(n, n)
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			inTri := (uplo == Upper && i <= j) || (uplo == Lower && i >= j)
			if inTri {
				s.Set(i, j, a.At(i, j))
				s.Set(j, i, a.At(i, j))
			}
		}
	}
	return s
}

func TestDsymvAgainstRef(t *testing.T) {
	n := 7
	for _, uplo := range []Uplo{Upper, Lower} {
		a := matrix.Random(n, n, 3)
		s := symFull(a, uplo)
		x := matrix.Random(n, 1, 4).Col(0)
		y0 := matrix.Random(n, 1, 5).Col(0)
		alpha, beta := 1.7, -0.3

		want := make([]float64, n)
		for i := 0; i < n; i++ {
			sum := 0.0
			for j := 0; j < n; j++ {
				sum += s.At(i, j) * x[j]
			}
			want[i] = alpha*sum + beta*y0[i]
		}
		got := append([]float64(nil), y0...)
		Dsymv(uplo, n, alpha, a.Data, a.Stride, x, 1, beta, got, 1)
		for i := range want {
			if math.Abs(want[i]-got[i]) > 1e-12 {
				t.Fatalf("%v: y[%d] = %v, want %v", uplo, i, got[i], want[i])
			}
		}
	}
}

func TestDsymvOnlyReadsTriangle(t *testing.T) {
	// Poison the unreferenced triangle with NaN: the result must be clean.
	n := 5
	a := matrix.Random(n, n, 6)
	for j := 0; j < n; j++ {
		for i := 0; i < j; i++ {
			a.Set(i, j, math.NaN()) // upper garbage; use Lower
		}
	}
	x := matrix.Random(n, 1, 7).Col(0)
	y := make([]float64, n)
	Dsymv(Lower, n, 1, a.Data, a.Stride, x, 1, 0, y, 1)
	for i, v := range y {
		if math.IsNaN(v) {
			t.Fatalf("Dsymv read the unreferenced triangle (y[%d] is NaN)", i)
		}
	}
}

func TestDsyr2AgainstRef(t *testing.T) {
	n := 6
	for _, uplo := range []Uplo{Upper, Lower} {
		a := matrix.Random(n, n, 8)
		orig := a.Clone()
		x := matrix.Random(n, 1, 9).Col(0)
		y := matrix.Random(n, 1, 10).Col(0)
		alpha := 1.3
		Dsyr2(uplo, n, alpha, x, 1, y, 1, a.Data, a.Stride)
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				inTri := (uplo == Upper && i <= j) || (uplo == Lower && i >= j)
				want := orig.At(i, j)
				if inTri {
					want += alpha * (x[i]*y[j] + y[i]*x[j])
				}
				if math.Abs(a.At(i, j)-want) > 1e-13 {
					t.Fatalf("%v: (%d,%d) = %v, want %v", uplo, i, j, a.At(i, j), want)
				}
			}
		}
	}
}

func TestDsyr2kAgainstRef(t *testing.T) {
	n, k := 6, 3
	for _, uplo := range []Uplo{Upper, Lower} {
		a := matrix.Random(n, k, 11)
		b := matrix.Random(n, k, 12)
		c := matrix.Random(n, n, 13)
		orig := c.Clone()
		alpha, beta := -1.0, 0.5
		Dsyr2k(uplo, NoTrans, n, k, alpha, a.Data, a.Stride, b.Data, b.Stride, beta, c.Data, c.Stride)
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				inTri := (uplo == Upper && i <= j) || (uplo == Lower && i >= j)
				if !inTri {
					if c.At(i, j) != orig.At(i, j) {
						t.Fatalf("%v: untouched triangle modified at (%d,%d)", uplo, i, j)
					}
					continue
				}
				sum := 0.0
				for l := 0; l < k; l++ {
					sum += a.At(i, l)*b.At(j, l) + b.At(i, l)*a.At(j, l)
				}
				want := alpha*sum + beta*orig.At(i, j)
				if math.Abs(c.At(i, j)-want) > 1e-12 {
					t.Fatalf("%v: (%d,%d) = %v, want %v", uplo, i, j, c.At(i, j), want)
				}
			}
		}
	}
}

func TestDsyr2kRejectsTrans(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Dsyr2k must reject Trans")
		}
	}()
	Dsyr2k(Lower, Trans, 2, 2, 1, make([]float64, 4), 2, make([]float64, 4), 2, 0, make([]float64, 4), 2)
}

func TestDsymvSymmetryProperty(t *testing.T) {
	// For a symmetric operator, xᵀ(A·y) == yᵀ(A·x).
	n := 9
	a := matrix.Random(n, n, 20)
	x := matrix.Random(n, 1, 21).Col(0)
	y := matrix.Random(n, 1, 22).Col(0)
	ay := make([]float64, n)
	ax := make([]float64, n)
	Dsymv(Lower, n, 1, a.Data, a.Stride, y, 1, 0, ay, 1)
	Dsymv(Lower, n, 1, a.Data, a.Stride, x, 1, 0, ax, 1)
	if d := math.Abs(Ddot(n, x, 1, ay, 1) - Ddot(n, y, 1, ax, 1)); d > 1e-12 {
		t.Fatalf("symmetry violated by %v", d)
	}
}
