package blas

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Shared bounded worker pool for the parallel BLAS paths.
//
// Every routine that parallelizes (Dgemm, Dgemv, Dger, Dsyr2k, Dtrmm)
// dispatches onto one process-wide pool instead of spawning per-call
// goroutines. The pool grows lazily up to the largest ceiling ever
// requested via SetMaxProcs and never beyond it; idle workers cost one
// parked goroutine each. Work is distributed dynamically (an atomic index
// counter), so uneven shards — the triangular column costs of Dsyr2k, the
// ragged edge tiles of Dgemm — balance without static partitioning.
//
// Determinism: parallel shards only ever write disjoint regions of the
// output, and every output element is computed with exactly the same
// operation order regardless of the worker count, so results are bitwise
// identical between serial and parallel execution. That property is what
// lets the simulated device, the FT checksum proofs, and the tests treat
// SetMaxProcs as a pure performance knob.

// maxProcs bounds the number of shards any BLAS call fans out to. It is a
// variable rather than a constant so the simulated-GPU package can pin the
// "device" kernels to a chosen width and tests can force serial execution.
var (
	maxProcsMu sync.RWMutex
	maxProcs   = runtime.GOMAXPROCS(0)
)

// SetMaxProcs sets the parallelism ceiling for the BLAS routines and
// returns the previous value. n < 1 is treated as 1; n == 1 pins every
// routine to its serial path (no pool dispatch at all).
func SetMaxProcs(n int) int {
	if n < 1 {
		n = 1
	}
	maxProcsMu.Lock()
	prev := maxProcs
	maxProcs = n
	maxProcsMu.Unlock()
	return prev
}

func procs() int {
	maxProcsMu.RLock()
	defer maxProcsMu.RUnlock()
	return maxProcs
}

var (
	poolMu      sync.Mutex
	poolCh      chan func()
	poolWorkers int
)

// poolEnsure guarantees at least w resident workers (growing the pool, never
// shrinking it) and returns the submission channel.
func poolEnsure(w int) chan func() {
	poolMu.Lock()
	defer poolMu.Unlock()
	if poolCh == nil {
		poolCh = make(chan func(), 1024)
	}
	for poolWorkers < w {
		poolWorkers++
		go func() {
			for f := range poolCh {
				f()
			}
		}()
	}
	return poolCh
}

// parallelFor invokes fn(i) exactly once for every i in [0, n), using up to
// procs() concurrent shard runners that pull indices from a shared atomic
// counter. The calling goroutine always participates; if the pool's
// submission buffer is full the extra runners execute inline on the caller,
// so the call can never deadlock, even when BLAS routines are invoked
// concurrently from many goroutines.
func parallelFor(n int, fn func(int)) {
	p := procs()
	if p > n {
		p = n
	}
	if p <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	ch := poolEnsure(p - 1)
	var next atomic.Int64
	body := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			fn(i)
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < p-1; w++ {
		wg.Add(1)
		g := func() {
			defer wg.Done()
			body()
		}
		select {
		case ch <- g:
		default:
			g()
		}
	}
	body()
	wg.Wait()
}
