#include "textflag.h"

// AVX2+FMA micro-kernel for the packed Dgemm (see microkernel.go for the
// packing contract). Only used when cpuSupportsAVX2FMA() reports true.
//
// func microKernelAVX(kc int, alpha float64, pa, pb, c []float64, ldc int)
//
// The 4×4 tile lives in Y0..Y3, one YMM register (4 rows) per column of C.
// Each k step loads one packed A vector and broadcasts the four packed B
// values against it. The k loop is unrolled ×2 with a second accumulator
// set Y4..Y7 so eight FMA chains are in flight, hiding the 4-5 cycle FMA
// latency on two FMA ports.
TEXT ·microKernelAVX(SB), NOSPLIT, $0-96
	MOVQ kc+0(FP), CX
	MOVQ pa_base+16(FP), SI
	MOVQ pb_base+40(FP), DI
	MOVQ c_base+64(FP), DX
	MOVQ ldc+88(FP), R8
	SHLQ $3, R8               // column stride of C in bytes

	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
	VXORPD Y4, Y4, Y4
	VXORPD Y5, Y5, Y5
	VXORPD Y6, Y6, Y6
	VXORPD Y7, Y7, Y7

	MOVQ CX, R9
	SHRQ $1, R9               // kc/2 double steps
	JZ   tail

loop:
	VMOVUPD (SI), Y8
	VBROADCASTSD (DI), Y9
	VFMADD231PD Y8, Y9, Y0
	VBROADCASTSD 8(DI), Y10
	VFMADD231PD Y8, Y10, Y1
	VBROADCASTSD 16(DI), Y11
	VFMADD231PD Y8, Y11, Y2
	VBROADCASTSD 24(DI), Y12
	VFMADD231PD Y8, Y12, Y3

	VMOVUPD 32(SI), Y13
	VBROADCASTSD 32(DI), Y9
	VFMADD231PD Y13, Y9, Y4
	VBROADCASTSD 40(DI), Y10
	VFMADD231PD Y13, Y10, Y5
	VBROADCASTSD 48(DI), Y11
	VFMADD231PD Y13, Y11, Y6
	VBROADCASTSD 56(DI), Y12
	VFMADD231PD Y13, Y12, Y7

	ADDQ $64, SI
	ADDQ $64, DI
	DECQ R9
	JNZ  loop

tail:
	TESTQ $1, CX
	JZ    store

	VMOVUPD (SI), Y8
	VBROADCASTSD (DI), Y9
	VFMADD231PD Y8, Y9, Y0
	VBROADCASTSD 8(DI), Y10
	VFMADD231PD Y8, Y10, Y1
	VBROADCASTSD 16(DI), Y11
	VFMADD231PD Y8, Y11, Y2
	VBROADCASTSD 24(DI), Y12
	VFMADD231PD Y8, Y12, Y3

store:
	// Fold the two accumulator sets, then C(:,j) += alpha * acc_j.
	VADDPD Y4, Y0, Y0
	VADDPD Y5, Y1, Y1
	VADDPD Y6, Y2, Y2
	VADDPD Y7, Y3, Y3

	VBROADCASTSD alpha+8(FP), Y9

	VMOVUPD (DX), Y10
	VFMADD231PD Y0, Y9, Y10
	VMOVUPD Y10, (DX)
	ADDQ R8, DX
	VMOVUPD (DX), Y11
	VFMADD231PD Y1, Y9, Y11
	VMOVUPD Y11, (DX)
	ADDQ R8, DX
	VMOVUPD (DX), Y12
	VFMADD231PD Y2, Y9, Y12
	VMOVUPD Y12, (DX)
	ADDQ R8, DX
	VMOVUPD (DX), Y13
	VFMADD231PD Y3, Y9, Y13
	VMOVUPD Y13, (DX)

	VZEROUPPER
	RET

// func cpuid(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv() (eax, edx uint32)
TEXT ·xgetbv(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET
