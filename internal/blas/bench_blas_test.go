package blas

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/matrix"
)

// Substrate benchmarks for the blocked BLAS, one per shape class the
// Hessenberg reduction actually produces (see DESIGN.md §Host BLAS):
//
//   - square:       the worst-case dense product, pure throughput
//   - tall-skinny:  the per-panel update op(A)·V with m >> n (the shape the
//     pre-blocking Dgemm could barely parallelize)
//   - rank-nb:      the trailing-matrix update C -= Y·Wᵀ with k = nb
//
// Each benchmark reports achieved GFLOP/s; TestBenchBlasJSON regenerates
// the BENCH_blas.json artifact comparing the blocked kernel against the
// kept-private pre-blocking kernel (naiveGemm) shape by shape.

type gemmShape struct {
	name    string
	m, n, k int
}

var benchShapes = []gemmShape{
	{"square_512", 512, 512, 512},
	{"tall_skinny_panel_4096x8x128", 4096, 8, 128},
	{"rank_nb_trailing_1024x1024x32", 1024, 1024, 32},
}

func benchGemm(b *testing.B, m, n, k int, f func(m, n, k int, a, bb, c *matrix.Matrix)) {
	a := matrix.Random(m, k, 1)
	bb := matrix.Random(k, n, 2)
	c := matrix.New(m, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f(m, n, k, a, bb, c)
	}
	gflops := 2 * float64(m) * float64(n) * float64(k) * float64(b.N) / b.Elapsed().Seconds() / 1e9
	b.ReportMetric(gflops, "GFLOP/s")
}

func BenchmarkDgemmSquare512(b *testing.B) {
	s := benchShapes[0]
	benchGemm(b, s.m, s.n, s.k, func(m, n, k int, a, bb, c *matrix.Matrix) {
		Dgemm(NoTrans, NoTrans, m, n, k, 1, a.Data, a.Stride, bb.Data, bb.Stride, 0, c.Data, c.Stride)
	})
}

func BenchmarkDgemmTallSkinnyPanel(b *testing.B) {
	s := benchShapes[1]
	benchGemm(b, s.m, s.n, s.k, func(m, n, k int, a, bb, c *matrix.Matrix) {
		Dgemm(NoTrans, NoTrans, m, n, k, 1, a.Data, a.Stride, bb.Data, bb.Stride, 0, c.Data, c.Stride)
	})
}

func BenchmarkDgemmRankNBTrailing(b *testing.B) {
	s := benchShapes[2]
	benchGemm(b, s.m, s.n, s.k, func(m, n, k int, a, bb, c *matrix.Matrix) {
		Dgemm(NoTrans, NoTrans, m, n, k, 1, a.Data, a.Stride, bb.Data, bb.Stride, 0, c.Data, c.Stride)
	})
}

// BenchmarkDgemmFTSquare512 is the fused-ABFT variant of the square
// shape; the gap to BenchmarkDgemmSquare512 is the substrate's wall
// overhead (bounded at ≤8% by TestBenchBlasFTJSON).
func BenchmarkDgemmFTSquare512(b *testing.B) {
	s := benchShapes[0]
	benchGemm(b, s.m, s.n, s.k, func(m, n, k int, a, bb, c *matrix.Matrix) {
		if _, err := DgemmFT(NoTrans, NoTrans, m, n, k, 1, a.Data, a.Stride, bb.Data, bb.Stride, 0, c.Data, c.Stride); err != nil {
			b.Fatal(err)
		}
	})
}

// BenchmarkDgemmNaive512 is the pre-blocking kernel on the square shape —
// the baseline the BENCH_blas.json speedups are measured against.
func BenchmarkDgemmNaive512(b *testing.B) {
	s := benchShapes[0]
	benchGemm(b, s.m, s.n, s.k, func(m, n, k int, a, bb, c *matrix.Matrix) {
		naiveGemm(NoTrans, NoTrans, m, n, k, 1, a.Data, a.Stride, bb.Data, bb.Stride, 0, c.Data, c.Stride)
	})
}

func BenchmarkDgemv(b *testing.B) {
	const m, n = 2048, 2048
	a := matrix.Random(m, n, 3)
	x := matrix.Random(n, 1, 4)
	y := make([]float64, m)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Dgemv(NoTrans, m, n, 1, a.Data, a.Stride, x.Data, 1, 0, y, 1)
	}
	b.ReportMetric(2*float64(m)*float64(n)*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOP/s")
}

func BenchmarkDsyr2k(b *testing.B) {
	const n, k = 1024, 32
	a := matrix.Random(n, k, 5)
	bb := matrix.Random(n, k, 6)
	c := matrix.New(n, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Dsyr2k(Lower, NoTrans, n, k, 1, a.Data, a.Stride, bb.Data, bb.Stride, 0, c.Data, c.Stride)
	}
	b.ReportMetric(2*float64(n)*float64(n)*float64(k)*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOP/s")
}

// timeGemm returns the best-of-three GFLOP/s of f on an m×n×k product
// (one untimed warm-up run first).
func timeGemm(m, n, k int, f func()) float64 {
	f()
	best := time.Duration(1<<62 - 1)
	for r := 0; r < 3; r++ {
		t0 := time.Now()
		f()
		if d := time.Since(t0); d < best {
			best = d
		}
	}
	return 2 * float64(m) * float64(n) * float64(k) / best.Seconds() / 1e9
}

// TestBenchBlasJSON regenerates the host-GEMM substrate artifacts. The
// machine-independent part — the shape catalogue and the parallel task
// counts that explain why the tall-skinny panel shape can now engage
// every core (the pre-blocking path offered only min(p, n) column
// chunks) — goes to the committed BENCH_blas.json; it only changes when
// the kernel's blocking actually changes, so reruns no longer churn the
// repository. The wall-clock measurements (naive vs blocked vs parallel
// GFLOP/s, GOMAXPROCS, AVX availability) go to BENCH_blas.local.json,
// which is gitignored: those numbers are facts about the machine that
// ran the test, not about the code.
func TestBenchBlasJSON(t *testing.T) {
	if raceEnabled {
		t.Skip("wall-clock artifact: skipped under the race detector")
	}
	if testing.Short() {
		t.Skip("wall-clock artifact: skipped in -short mode")
	}

	// Machine-independent: the shape catalogue and the blocking geometry.
	type shapeRow struct {
		Shape         string `json:"shape"`
		M             int    `json:"m"`
		N             int    `json:"n"`
		K             int    `json:"k"`
		ParallelTasks int    `json:"parallel_tasks"`
	}
	type stableArtifact struct {
		BlockMC int        `json:"block_mc"`
		BlockNC int        `json:"block_nc"`
		BlockKC int        `json:"block_kc"`
		Rows    []shapeRow `json:"shapes"`
	}
	// Machine-dependent: the wall-clock measurements (gitignored).
	type row struct {
		Shape            string  `json:"shape"`
		M                int     `json:"m"`
		N                int     `json:"n"`
		K                int     `json:"k"`
		NaiveGFLOPS      float64 `json:"naive_gflops"`
		BlockedGFLOPS    float64 `json:"blocked_gflops"`
		ParallelGFLOPS   float64 `json:"parallel_gflops"`
		SpeedupVsNaive   float64 `json:"speedup_vs_naive"`
		ParallelTasks    int     `json:"parallel_tasks"`
		PrevColumnChunks int     `json:"prev_parallel_chunks"`
	}
	type artifact struct {
		GOMAXPROCS int   `json:"gomaxprocs"`
		NumCPU     int   `json:"numcpu"`
		AVXKernel  bool  `json:"avx_kernel"`
		Rows       []row `json:"shapes"`
	}

	p := runtime.GOMAXPROCS(0)
	stable := stableArtifact{BlockMC: gemmMC, BlockNC: gemmNC, BlockKC: gemmKC}
	out := artifact{GOMAXPROCS: p, NumCPU: runtime.NumCPU(), AVXKernel: useAVXKernel}
	for _, s := range benchShapes {
		a := matrix.Random(s.m, s.k, 1)
		bb := matrix.Random(s.k, s.n, 2)
		c := matrix.New(s.m, s.n)

		naive := timeGemm(s.m, s.n, s.k, func() {
			naiveGemm(NoTrans, NoTrans, s.m, s.n, s.k, 1, a.Data, a.Stride, bb.Data, bb.Stride, 0, c.Data, c.Stride)
		})
		orig := SetMaxProcs(1)
		serial := timeGemm(s.m, s.n, s.k, func() {
			Dgemm(NoTrans, NoTrans, s.m, s.n, s.k, 1, a.Data, a.Stride, bb.Data, bb.Stride, 0, c.Data, c.Stride)
		})
		SetMaxProcs(p)
		parallel := timeGemm(s.m, s.n, s.k, func() {
			Dgemm(NoTrans, NoTrans, s.m, s.n, s.k, 1, a.Data, a.Stride, bb.Data, bb.Stride, 0, c.Data, c.Stride)
		})
		SetMaxProcs(orig)

		mBlocks := (s.m + gemmMC - 1) / gemmMC
		nBlocks := (s.n + gemmNC - 1) / gemmNC
		stable.Rows = append(stable.Rows, shapeRow{
			Shape: s.name, M: s.m, N: s.n, K: s.k,
			ParallelTasks: mBlocks * nBlocks,
		})
		out.Rows = append(out.Rows, row{
			Shape: s.name, M: s.m, N: s.n, K: s.k,
			NaiveGFLOPS:      naive,
			BlockedGFLOPS:    serial,
			ParallelGFLOPS:   parallel,
			SpeedupVsNaive:   parallel / naive,
			ParallelTasks:    mBlocks * nBlocks,
			PrevColumnChunks: min(p, s.n),
		})
	}

	writeArtifact := func(path string, v any) {
		t.Helper()
		buf, err := json.MarshalIndent(v, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	writeArtifact("../../BENCH_blas.json", stable)
	writeArtifact("../../BENCH_blas.local.json", out)

	// The acceptance bar for this substrate: the blocked kernel must beat
	// the pre-blocking kernel by ≥2× on the square shape.
	if sq := out.Rows[0]; sq.SpeedupVsNaive < 2 {
		t.Errorf("square-shape speedup %.2fx below the 2x bar (naive %.2f, parallel %.2f GFLOP/s)",
			sq.SpeedupVsNaive, sq.NaiveGFLOPS, sq.ParallelGFLOPS)
	}
}
