// Package blas implements the subset of the BLAS (Basic Linear Algebra
// Subprograms) needed by the Hessenberg reduction and its fault-tolerant
// variant, in pure Go over column-major storage.
//
// The routines follow the netlib reference semantics: the same argument
// conventions (dimensions first, then alpha, then matrix/leading-dimension
// pairs), the same quick-return rules for zero dimensions and alpha==0, and
// the same in-place update orders for the triangular routines. Matching the
// reference exactly matters here because the LAPACK ports in
// internal/lapack, and the checksum-maintenance proofs of the paper, assume
// those semantics.
//
// Performance architecture: Dgemm is a BLIS-style blocked kernel — MC/KC/NC
// cache blocking over packed panels (pack.go), a register-blocked MR×NR
// micro-kernel unique across all four transpose cases (microkernel.go) —
// and the compute-heavy routines (Dgemm, Dgemv, Dger, Dsyr2k, Dtrmm) shard
// large problems onto one shared bounded worker pool (pool.go). Parallel
// shards write disjoint outputs with unchanged per-element operation order,
// so results are bitwise identical at every SetMaxProcs setting. SetObs
// optionally records achieved host GFLOP/s into the observability registry.
package blas

import "fmt"

// Transpose selects op(A) for the matrix-multiply routines.
type Transpose int

const (
	// NoTrans selects op(A) = A.
	NoTrans Transpose = iota
	// Trans selects op(A) = Aᵀ.
	Trans
)

func (t Transpose) String() string {
	if t == NoTrans {
		return "NoTrans"
	}
	return "Trans"
}

// Side selects whether the triangular matrix appears on the left or right.
type Side int

const (
	// Left means B := alpha * op(A) * B.
	Left Side = iota
	// Right means B := alpha * B * op(A).
	Right
)

// Uplo selects the triangle of a triangular matrix that is referenced.
type Uplo int

const (
	// Upper references the upper triangle.
	Upper Uplo = iota
	// Lower references the lower triangle.
	Lower
)

// Diag states whether a triangular matrix has an implicit unit diagonal.
type Diag int

const (
	// NonUnit reads the stored diagonal.
	NonUnit Diag = iota
	// Unit assumes a diagonal of ones and does not read the stored one.
	Unit
)

func badDim(routine string, args ...interface{}) {
	panic(fmt.Sprintf("blas: %s: invalid argument %v", routine, args))
}

func checkMatrix(routine string, r, c, ld int, a []float64) {
	if r < 0 || c < 0 {
		badDim(routine, r, c)
	}
	if r > 0 && ld < r {
		badDim(routine, "ld", ld, "rows", r)
	}
	if r > 0 && c > 0 && len(a) < ld*(c-1)+r {
		badDim(routine, "short slice", len(a), "need", ld*(c-1)+r)
	}
}
