package blas

import (
	"math"
	"testing"

	"repro/internal/matrix"
)

// --- naive reference implementations used as oracles ---

func refGemm(tA, tB Transpose, m, n, k int, alpha float64, a *matrix.Matrix, b *matrix.Matrix, beta float64, c *matrix.Matrix) *matrix.Matrix {
	out := c.Clone()
	opA := func(i, l int) float64 {
		if tA == Trans {
			return a.At(l, i)
		}
		return a.At(i, l)
	}
	opB := func(l, j int) float64 {
		if tB == Trans {
			return b.At(j, l)
		}
		return b.At(l, j)
	}
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			sum := 0.0
			for l := 0; l < k; l++ {
				sum += opA(i, l) * opB(l, j)
			}
			out.Set(i, j, alpha*sum+beta*c.At(i, j))
		}
	}
	return out
}

// triMat materializes the triangle of a as a full matrix according to
// uplo/diag so that triangular routines can be checked against refGemm.
func triMat(a *matrix.Matrix, uplo Uplo, diag Diag) *matrix.Matrix {
	n := a.Rows
	t := matrix.New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			inTri := (uplo == Upper && j >= i) || (uplo == Lower && j <= i)
			if !inTri {
				continue
			}
			if i == j && diag == Unit {
				t.Set(i, j, 1)
			} else {
				t.Set(i, j, a.At(i, j))
			}
		}
	}
	return t
}

func maxDiff(a, b *matrix.Matrix) float64 {
	return a.Sub(b).MaxAbs()
}

// --- level 1 ---

func TestDdot(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{4, 5, 6}
	if got := Ddot(3, x, 1, y, 1); got != 32 {
		t.Fatalf("Ddot = %v, want 32", got)
	}
}

func TestDdotStrided(t *testing.T) {
	x := []float64{1, 99, 2, 99, 3}
	y := []float64{4, 5, 6}
	if got := Ddot(3, x, 2, y, 1); got != 32 {
		t.Fatalf("strided Ddot = %v, want 32", got)
	}
}

func TestDaxpy(t *testing.T) {
	x := []float64{1, 2}
	y := []float64{10, 20}
	Daxpy(2, 3, x, 1, y, 1)
	if y[0] != 13 || y[1] != 26 {
		t.Fatalf("Daxpy result %v", y)
	}
	// alpha = 0 must be a no-op.
	Daxpy(2, 0, x, 1, y, 1)
	if y[0] != 13 || y[1] != 26 {
		t.Fatalf("Daxpy alpha=0 modified y: %v", y)
	}
}

func TestDscalDcopyDswap(t *testing.T) {
	x := []float64{1, 2, 3}
	Dscal(3, 2, x, 1)
	if x[2] != 6 {
		t.Fatalf("Dscal %v", x)
	}
	y := make([]float64, 3)
	Dcopy(3, x, 1, y, 1)
	if y[0] != 2 || y[2] != 6 {
		t.Fatalf("Dcopy %v", y)
	}
	z := []float64{9, 9, 9}
	Dswap(3, y, 1, z, 1)
	if y[0] != 9 || z[2] != 6 {
		t.Fatalf("Dswap y=%v z=%v", y, z)
	}
}

func TestDnrm2(t *testing.T) {
	x := []float64{3, 4}
	if got := Dnrm2(2, x, 1); math.Abs(got-5) > 1e-15 {
		t.Fatalf("Dnrm2 = %v", got)
	}
	// Overflow guard.
	big := []float64{1e300, 1e300}
	want := 1e300 * math.Sqrt(2)
	if got := Dnrm2(2, big, 1); math.Abs(got-want)/want > 1e-14 {
		t.Fatalf("Dnrm2 overflow: %v", got)
	}
	if Dnrm2(0, nil, 1) != 0 {
		t.Fatal("Dnrm2 empty")
	}
	if got := Dnrm2(1, []float64{-7}, 1); got != 7 {
		t.Fatalf("Dnrm2 single = %v", got)
	}
}

func TestDasumDsum(t *testing.T) {
	x := []float64{1, -2, 3}
	if Dasum(3, x, 1) != 6 {
		t.Fatal("Dasum")
	}
	if Dsum(3, x, 1) != 2 {
		t.Fatal("Dsum")
	}
}

func TestIdamax(t *testing.T) {
	x := []float64{1, -5, 3}
	if got := Idamax(3, x, 1); got != 1 {
		t.Fatalf("Idamax = %d", got)
	}
	if Idamax(0, nil, 1) != -1 {
		t.Fatal("Idamax empty should be -1")
	}
	// Ties resolve to the first occurrence, as in reference BLAS.
	if got := Idamax(3, []float64{2, -2, 2}, 1); got != 0 {
		t.Fatalf("Idamax tie = %d", got)
	}
}

// --- level 2 ---

func TestDgemvAgainstRef(t *testing.T) {
	for _, trans := range []Transpose{NoTrans, Trans} {
		for _, dims := range [][2]int{{5, 3}, {3, 5}, {1, 7}, {7, 1}, {4, 4}} {
			m, n := dims[0], dims[1]
			a := matrix.Random(m, n, uint64(m*10+n))
			lenX, lenY := n, m
			if trans == Trans {
				lenX, lenY = m, n
			}
			x := matrix.Random(lenX, 1, 3).Col(0)
			y := matrix.Random(lenY, 1, 4).Col(0)
			alpha, beta := 1.3, -0.7

			want := make([]float64, lenY)
			for i := range want {
				sum := 0.0
				for l := 0; l < lenX; l++ {
					if trans == NoTrans {
						sum += a.At(i, l) * x[l]
					} else {
						sum += a.At(l, i) * x[l]
					}
				}
				want[i] = alpha*sum + beta*y[i]
			}
			got := append([]float64(nil), y...)
			Dgemv(trans, m, n, alpha, a.Data, a.Stride, x, 1, beta, got, 1)
			for i := range want {
				if math.Abs(want[i]-got[i]) > 1e-12 {
					t.Fatalf("%v %dx%d: y[%d]=%v want %v", trans, m, n, i, got[i], want[i])
				}
			}
		}
	}
}

func TestDgemvBetaZeroOverwritesNaN(t *testing.T) {
	// beta == 0 must overwrite y even if it holds NaN (reference semantics).
	a := matrix.Identity(2)
	x := []float64{1, 2}
	y := []float64{math.NaN(), math.NaN()}
	Dgemv(NoTrans, 2, 2, 1, a.Data, a.Stride, x, 1, 0, y, 1)
	if y[0] != 1 || y[1] != 2 {
		t.Fatalf("beta=0 did not overwrite: %v", y)
	}
}

func TestDgemvStridedRowAccess(t *testing.T) {
	// Use inc = lda to treat a matrix row as a vector, as dlahr2 does.
	a := matrix.FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	row1 := a.Data[1:] // row 1 with stride a.Stride
	got := Ddot(3, row1, a.Stride, []float64{1, 1, 1}, 1)
	if got != 15 {
		t.Fatalf("row dot = %v, want 15", got)
	}
}

func TestDgerAgainstRef(t *testing.T) {
	m, n := 4, 3
	a := matrix.Random(m, n, 1)
	x := matrix.Random(m, 1, 2).Col(0)
	y := matrix.Random(n, 1, 3).Col(0)
	want := a.Clone()
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			want.Add(i, j, 2.5*x[i]*y[j])
		}
	}
	Dger(m, n, 2.5, x, 1, y, 1, a.Data, a.Stride)
	if maxDiff(want, a) > 1e-13 {
		t.Fatalf("Dger mismatch %v", maxDiff(want, a))
	}
}

func TestDtrmvAllVariants(t *testing.T) {
	n := 6
	for _, uplo := range []Uplo{Upper, Lower} {
		for _, trans := range []Transpose{NoTrans, Trans} {
			for _, diag := range []Diag{NonUnit, Unit} {
				a := matrix.Random(n, n, 11)
				tm := triMat(a, uplo, diag)
				x := matrix.Random(n, 1, 12).Col(0)
				want := make([]float64, n)
				for i := 0; i < n; i++ {
					for j := 0; j < n; j++ {
						if trans == NoTrans {
							want[i] += tm.At(i, j) * x[j]
						} else {
							want[i] += tm.At(j, i) * x[j]
						}
					}
				}
				got := append([]float64(nil), x...)
				Dtrmv(uplo, trans, diag, n, a.Data, a.Stride, got, 1)
				for i := range want {
					if math.Abs(want[i]-got[i]) > 1e-12 {
						t.Fatalf("Dtrmv %v %v %v: x[%d]=%v want %v", uplo, trans, diag, i, got[i], want[i])
					}
				}
			}
		}
	}
}

func TestDtrsvInvertsDtrmv(t *testing.T) {
	n := 8
	for _, uplo := range []Uplo{Upper, Lower} {
		for _, trans := range []Transpose{NoTrans, Trans} {
			for _, diag := range []Diag{NonUnit, Unit} {
				a := matrix.Random(n, n, 21)
				for i := 0; i < n; i++ {
					a.Add(i, i, 4) // keep well conditioned
				}
				x0 := matrix.Random(n, 1, 22).Col(0)
				x := append([]float64(nil), x0...)
				Dtrmv(uplo, trans, diag, n, a.Data, a.Stride, x, 1)
				Dtrsv(uplo, trans, diag, n, a.Data, a.Stride, x, 1)
				for i := range x0 {
					if math.Abs(x[i]-x0[i]) > 1e-10 {
						t.Fatalf("Dtrsv∘Dtrmv ≠ id (%v %v %v): %v vs %v", uplo, trans, diag, x[i], x0[i])
					}
				}
			}
		}
	}
}

// --- level 3 ---

func TestDgemmAllVariants(t *testing.T) {
	dims := [][3]int{{4, 5, 3}, {1, 1, 1}, {7, 2, 9}, {3, 8, 1}, {6, 6, 6}}
	for _, tA := range []Transpose{NoTrans, Trans} {
		for _, tB := range []Transpose{NoTrans, Trans} {
			for _, d := range dims {
				m, n, k := d[0], d[1], d[2]
				ar, ac := m, k
				if tA == Trans {
					ar, ac = k, m
				}
				br, bc := k, n
				if tB == Trans {
					br, bc = n, k
				}
				a := matrix.Random(ar, ac, uint64(m+n+k))
				b := matrix.Random(br, bc, uint64(m*n+k))
				c := matrix.Random(m, n, 77)
				want := refGemm(tA, tB, m, n, k, 1.5, a, b, -0.5, c)
				Dgemm(tA, tB, m, n, k, 1.5, a.Data, a.Stride, b.Data, b.Stride, -0.5, c.Data, c.Stride)
				if md := maxDiff(want, c); md > 1e-12 {
					t.Fatalf("Dgemm %v %v %v: maxdiff %v", tA, tB, d, md)
				}
			}
		}
	}
}

func TestDgemmQuickReturns(t *testing.T) {
	c := matrix.Random(3, 3, 5)
	orig := c.Clone()
	// alpha = 0, beta = 1: C unchanged.
	Dgemm(NoTrans, NoTrans, 3, 3, 3, 0, orig.Data, 3, orig.Data, 3, 1, c.Data, c.Stride)
	if !c.Equal(orig) {
		t.Fatal("alpha=0 beta=1 must not modify C")
	}
	// k = 0, beta = 0: C zeroed.
	Dgemm(NoTrans, NoTrans, 3, 3, 0, 1, nil, 3, nil, 3, 0, c.Data, c.Stride)
	if c.MaxAbs() != 0 {
		t.Fatal("k=0 beta=0 must zero C")
	}
}

func TestDgemmParallelMatchesSerial(t *testing.T) {
	m, n, k := 150, 160, 140 // above the parallel threshold
	a := matrix.Random(m, k, 1)
	b := matrix.Random(k, n, 2)
	c0 := matrix.Random(m, n, 3)

	serial := c0.Clone()
	prev := SetMaxProcs(1)
	Dgemm(NoTrans, NoTrans, m, n, k, 1, a.Data, a.Stride, b.Data, b.Stride, 1, serial.Data, serial.Stride)
	SetMaxProcs(8)
	par := c0.Clone()
	Dgemm(NoTrans, NoTrans, m, n, k, 1, a.Data, a.Stride, b.Data, b.Stride, 1, par.Data, par.Stride)
	SetMaxProcs(prev)

	if !serial.Equal(par) {
		t.Fatalf("parallel Dgemm differs from serial: maxdiff %v", maxDiff(serial, par))
	}
}

func TestDgemmSubmatrixStride(t *testing.T) {
	// Operate on views with stride > rows to catch lda handling bugs.
	big := matrix.Random(10, 10, 9)
	a := big.View(1, 1, 4, 3)
	b := big.View(5, 2, 3, 2)
	c := matrix.New(4, 2)
	want := refGemm(NoTrans, NoTrans, 4, 2, 3, 1, a.Clone(), b.Clone(), 0, c.Clone())
	Dgemm(NoTrans, NoTrans, 4, 2, 3, 1, a.Data, a.Stride, b.Data, b.Stride, 0, c.Data, c.Stride)
	if maxDiff(want, c) > 1e-13 {
		t.Fatal("Dgemm with non-tight stride wrong")
	}
}

func TestDtrmmAllVariants(t *testing.T) {
	m, n := 5, 4
	for _, side := range []Side{Left, Right} {
		for _, uplo := range []Uplo{Upper, Lower} {
			for _, trans := range []Transpose{NoTrans, Trans} {
				for _, diag := range []Diag{NonUnit, Unit} {
					na := m
					if side == Right {
						na = n
					}
					a := matrix.Random(na, na, uint64(na))
					b := matrix.Random(m, n, 33)
					tm := triMat(a, uplo, diag)
					var want *matrix.Matrix
					if side == Left {
						want = refGemm(trans, NoTrans, m, n, m, 2.0, tm, b, 0, matrix.New(m, n))
					} else {
						want = refGemm(NoTrans, trans, m, n, n, 2.0, b, tm, 0, matrix.New(m, n))
					}
					Dtrmm(side, uplo, trans, diag, m, n, 2.0, a.Data, a.Stride, b.Data, b.Stride)
					if md := maxDiff(want, b); md > 1e-12 {
						t.Fatalf("Dtrmm %v %v %v %v: maxdiff %v", side, uplo, trans, diag, md)
					}
				}
			}
		}
	}
}

func TestDtrsmInvertsDtrmm(t *testing.T) {
	m, n := 6, 5
	for _, side := range []Side{Left, Right} {
		for _, uplo := range []Uplo{Upper, Lower} {
			for _, trans := range []Transpose{NoTrans, Trans} {
				for _, diag := range []Diag{NonUnit, Unit} {
					na := m
					if side == Right {
						na = n
					}
					a := matrix.Random(na, na, uint64(7*na))
					for i := 0; i < na; i++ {
						a.Add(i, i, 3)
					}
					b0 := matrix.Random(m, n, 44)
					b := b0.Clone()
					Dtrmm(side, uplo, trans, diag, m, n, 1, a.Data, a.Stride, b.Data, b.Stride)
					Dtrsm(side, uplo, trans, diag, m, n, 1, a.Data, a.Stride, b.Data, b.Stride)
					if md := maxDiff(b0, b); md > 1e-10 {
						t.Fatalf("Dtrsm∘Dtrmm ≠ id (%v %v %v %v): %v", side, uplo, trans, diag, md)
					}
				}
			}
		}
	}
}

func TestDtrsmAlpha(t *testing.T) {
	// X solving A*X = alpha*B should equal alpha * (A^{-1} B).
	n := 4
	a := matrix.Random(n, n, 3)
	for i := 0; i < n; i++ {
		a.Add(i, i, 5)
	}
	b := matrix.Random(n, n, 4)
	one := b.Clone()
	Dtrsm(Left, Upper, NoTrans, NonUnit, n, n, 1, a.Data, a.Stride, one.Data, one.Stride)
	two := b.Clone()
	Dtrsm(Left, Upper, NoTrans, NonUnit, n, n, 2, a.Data, a.Stride, two.Data, two.Stride)
	one.Scale(2)
	if maxDiff(one, two) > 1e-11 {
		t.Fatal("Dtrsm alpha scaling wrong")
	}
}

func TestVectorArgChecks(t *testing.T) {
	for name, f := range map[string]func(){
		"negative n":   func() { Ddot(-1, nil, 1, nil, 1) },
		"zero inc":     func() { Dscal(2, 1, []float64{1, 2}, 0) },
		"short vector": func() { Dasum(5, []float64{1}, 1) },
		"short matrix": func() {
			Dgemm(NoTrans, NoTrans, 4, 4, 4, 1, make([]float64, 4), 4, make([]float64, 16), 4, 0, make([]float64, 16), 4)
		},
		"bad lda": func() {
			Dgemv(NoTrans, 4, 2, 1, make([]float64, 8), 2, make([]float64, 2), 1, 0, make([]float64, 4), 1)
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}
