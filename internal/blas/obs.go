package blas

import (
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Optional throughput instrumentation: when a registry is attached via
// SetObs, the compute-heavy routines record achieved host flops
// (blas_flops_total) and wall-clock seconds per operation family
// (blas_op_seconds_total{op=...}), so bench.Breakdown and the -metrics
// exports can report substrate GFLOP/s next to the modeled numbers.
// Detached (the default), the cost is one atomic load per call.

type blasObs struct {
	reg   *obs.Registry
	flops *obs.Counter
	secs  map[string]*obs.Counter
}

var obsState atomic.Pointer[blasObs]

// SetObs attaches a metrics registry to the package (nil detaches) and
// returns the previously attached registry so callers can restore it.
func SetObs(r *obs.Registry) *obs.Registry {
	var prev *obs.Registry
	if s := obsState.Load(); s != nil {
		prev = s.reg
	}
	if r == nil {
		obsState.Store(nil)
		return prev
	}
	s := &blasObs{reg: r, flops: r.Counter("blas_flops_total"), secs: map[string]*obs.Counter{}}
	for _, op := range []string{"gemm", "gemm_ft", "gemv", "gemv_ft", "ger", "ger_ft", "syr2k", "trmm"} {
		s.secs[op] = r.Counter("blas_op_seconds_total", obs.L("op", op))
	}
	obsState.Store(s)
	return prev
}

// opTimer starts timing one top-level BLAS call worth flops floating-point
// operations. It returns nil when no registry is attached; otherwise the
// returned func records the elapsed wall time and the flop count.
func opTimer(op string, flops float64) func() {
	s := obsState.Load()
	if s == nil {
		return nil
	}
	t0 := time.Now()
	return func() {
		s.secs[op].Add(time.Since(t0).Seconds())
		s.flops.Add(flops)
	}
}
