package blas

// Level-2 BLAS: matrix-vector operations over column-major storage.

// Dgemv computes y := alpha*op(A)*x + beta*y where A is m×n.
func Dgemv(trans Transpose, m, n int, alpha float64, a []float64, lda int, x []float64, incX int, beta float64, y []float64, incY int) {
	checkMatrix("Dgemv", m, n, lda, a)
	lenX, lenY := n, m
	if trans == Trans {
		lenX, lenY = m, n
	}
	checkVector("Dgemv", lenX, x, incX)
	checkVector("Dgemv", lenY, y, incY)
	if m == 0 || n == 0 {
		return
	}
	// y := beta*y
	if beta != 1 {
		if beta == 0 {
			for i, iy := 0, 0; i < lenY; i, iy = i+1, iy+incY {
				y[iy] = 0
			}
		} else {
			Dscal(lenY, beta, y, incY)
		}
	}
	if alpha == 0 {
		return
	}
	if trans == NoTrans {
		// y += alpha * A * x, one axpy per column of A.
		for j, jx := 0, 0; j < n; j, jx = j+1, jx+incX {
			t := alpha * x[jx]
			if t == 0 {
				continue
			}
			col := a[j*lda : j*lda+m]
			if incY == 1 {
				for i := 0; i < m; i++ {
					y[i] += t * col[i]
				}
			} else {
				for i, iy := 0, 0; i < m; i, iy = i+1, iy+incY {
					y[iy] += t * col[i]
				}
			}
		}
		return
	}
	// y += alpha * Aᵀ * x, one dot per column of A.
	for j, jy := 0, 0; j < n; j, jy = j+1, jy+incY {
		col := a[j*lda : j*lda+m]
		sum := 0.0
		if incX == 1 {
			for i := 0; i < m; i++ {
				sum += col[i] * x[i]
			}
		} else {
			for i, ix := 0, 0; i < m; i, ix = i+1, ix+incX {
				sum += col[i] * x[ix]
			}
		}
		y[jy] += alpha * sum
	}
}

// Dger computes the rank-1 update A := alpha*x*yᵀ + A where A is m×n.
func Dger(m, n int, alpha float64, x []float64, incX int, y []float64, incY int, a []float64, lda int) {
	checkMatrix("Dger", m, n, lda, a)
	checkVector("Dger", m, x, incX)
	checkVector("Dger", n, y, incY)
	if m == 0 || n == 0 || alpha == 0 {
		return
	}
	for j, jy := 0, 0; j < n; j, jy = j+1, jy+incY {
		t := alpha * y[jy]
		if t == 0 {
			continue
		}
		col := a[j*lda : j*lda+m]
		for i, ix := 0, 0; i < m; i, ix = i+1, ix+incX {
			col[i] += t * x[ix]
		}
	}
}

// Dtrmv computes x := op(A)*x where A is an n×n triangular matrix.
func Dtrmv(uplo Uplo, trans Transpose, diag Diag, n int, a []float64, lda int, x []float64, incX int) {
	checkMatrix("Dtrmv", n, n, lda, a)
	checkVector("Dtrmv", n, x, incX)
	if n == 0 {
		return
	}
	nonUnit := diag == NonUnit
	switch {
	case trans == NoTrans && uplo == Upper:
		// x := U*x, forward over columns.
		for j, jx := 0, 0; j < n; j, jx = j+1, jx+incX {
			t := x[jx]
			if t != 0 {
				col := a[j*lda:]
				for i, ix := 0, 0; i < j; i, ix = i+1, ix+incX {
					x[ix] += t * col[i]
				}
				if nonUnit {
					x[jx] = t * col[j]
				}
			} else if nonUnit {
				x[jx] = 0
			}
		}
	case trans == NoTrans && uplo == Lower:
		// x := L*x, backward over columns.
		for j, jx := n-1, (n-1)*incX; j >= 0; j, jx = j-1, jx-incX {
			t := x[jx]
			col := a[j*lda:]
			if t != 0 {
				for i, ix := n-1, (n-1)*incX; i > j; i, ix = i-1, ix-incX {
					x[ix] += t * col[i]
				}
				if nonUnit {
					x[jx] = t * col[j]
				}
			} else if nonUnit {
				x[jx] = 0
			}
		}
	case trans == Trans && uplo == Upper:
		// x := Uᵀ*x, backward.
		for j, jx := n-1, (n-1)*incX; j >= 0; j, jx = j-1, jx-incX {
			col := a[j*lda:]
			t := 0.0
			if nonUnit {
				t = x[jx] * col[j]
			} else {
				t = x[jx]
			}
			for i, ix := 0, 0; i < j; i, ix = i+1, ix+incX {
				t += col[i] * x[ix]
			}
			x[jx] = t
		}
	default: // trans == Trans && uplo == Lower
		// x := Lᵀ*x, forward.
		for j, jx := 0, 0; j < n; j, jx = j+1, jx+incX {
			col := a[j*lda:]
			t := 0.0
			if nonUnit {
				t = x[jx] * col[j]
			} else {
				t = x[jx]
			}
			for i, ix := j+1, (j+1)*incX; i < n; i, ix = i+1, ix+incX {
				t += col[i] * x[ix]
			}
			x[jx] = t
		}
	}
}

// Dtrsv solves op(A)*x = b for x in place, where A is n×n triangular and x
// holds b on entry.
func Dtrsv(uplo Uplo, trans Transpose, diag Diag, n int, a []float64, lda int, x []float64, incX int) {
	checkMatrix("Dtrsv", n, n, lda, a)
	checkVector("Dtrsv", n, x, incX)
	if n == 0 {
		return
	}
	nonUnit := diag == NonUnit
	switch {
	case trans == NoTrans && uplo == Upper:
		for j, jx := n-1, (n-1)*incX; j >= 0; j, jx = j-1, jx-incX {
			col := a[j*lda:]
			if nonUnit {
				x[jx] /= col[j]
			}
			t := x[jx]
			for i, ix := 0, 0; i < j; i, ix = i+1, ix+incX {
				x[ix] -= t * col[i]
			}
		}
	case trans == NoTrans && uplo == Lower:
		for j, jx := 0, 0; j < n; j, jx = j+1, jx+incX {
			col := a[j*lda:]
			if nonUnit {
				x[jx] /= col[j]
			}
			t := x[jx]
			for i, ix := j+1, (j+1)*incX; i < n; i, ix = i+1, ix+incX {
				x[ix] -= t * col[i]
			}
		}
	case trans == Trans && uplo == Upper:
		for j, jx := 0, 0; j < n; j, jx = j+1, jx+incX {
			col := a[j*lda:]
			t := x[jx]
			for i, ix := 0, 0; i < j; i, ix = i+1, ix+incX {
				t -= col[i] * x[ix]
			}
			if nonUnit {
				t /= col[j]
			}
			x[jx] = t
		}
	default: // trans == Trans && uplo == Lower
		for j, jx := n-1, (n-1)*incX; j >= 0; j, jx = j-1, jx-incX {
			col := a[j*lda:]
			t := x[jx]
			for i, ix := j+1, (j+1)*incX; i < n; i, ix = i+1, ix+incX {
				t -= col[i] * x[ix]
			}
			if nonUnit {
				t /= col[j]
			}
			x[jx] = t
		}
	}
}
