package blas

// Level-2 BLAS: matrix-vector operations over column-major storage.
// Dgemv and Dger dispatch onto the shared worker pool above
// parallelL2Threshold flops: Dgemv shards rows of y (NoTrans) or columns
// of A (Trans), Dger shards columns of A. Shards write disjoint output
// ranges with unchanged per-element operation order, so results are
// bitwise identical to serial execution.

// parallelL2Threshold is the flop count (2mn) above which the level-2
// routines shard across the pool; a variable so tests can force the
// parallel path.
var parallelL2Threshold = 1 << 20

// Dgemv computes y := alpha*op(A)*x + beta*y where A is m×n.
func Dgemv(trans Transpose, m, n int, alpha float64, a []float64, lda int, x []float64, incX int, beta float64, y []float64, incY int) {
	checkMatrix("Dgemv", m, n, lda, a)
	lenX, lenY := n, m
	if trans == Trans {
		lenX, lenY = m, n
	}
	checkVector("Dgemv", lenX, x, incX)
	checkVector("Dgemv", lenY, y, incY)
	if m == 0 || n == 0 {
		return
	}
	// y := beta*y
	if beta != 1 {
		if beta == 0 {
			for i, iy := 0, 0; i < lenY; i, iy = i+1, iy+incY {
				y[iy] = 0
			}
		} else {
			Dscal(lenY, beta, y, incY)
		}
	}
	if alpha == 0 {
		return
	}
	if done := opTimer("gemv", 2*float64(m)*float64(n)); done != nil {
		defer done()
	}
	p := procs()
	parallel := p > 1 && 2*m*n >= parallelL2Threshold
	if trans == NoTrans {
		if parallel && m > 1 {
			chunks := min(p, m)
			parallelFor(chunks, func(w int) {
				gemvNoTransRows(m, n, alpha, a, lda, x, incX, y, incY, w*m/chunks, (w+1)*m/chunks)
			})
			return
		}
		gemvNoTransRows(m, n, alpha, a, lda, x, incX, y, incY, 0, m)
		return
	}
	if parallel && n > 1 {
		chunks := min(p, n)
		parallelFor(chunks, func(w int) {
			gemvTransCols(m, n, alpha, a, lda, x, incX, y, incY, w*n/chunks, (w+1)*n/chunks)
		})
		return
	}
	gemvTransCols(m, n, alpha, a, lda, x, incX, y, incY, 0, n)
}

// gemvNoTransRows accumulates rows [i0, i1) of y += alpha*A*x, one axpy
// segment per column of A.
func gemvNoTransRows(m, n int, alpha float64, a []float64, lda int, x []float64, incX int, y []float64, incY, i0, i1 int) {
	for j, jx := 0, 0; j < n; j, jx = j+1, jx+incX {
		t := alpha * x[jx]
		if t == 0 {
			continue
		}
		col := a[j*lda : j*lda+m]
		if incY == 1 {
			yv := y[i0:i1]
			cv := col[i0:i1]
			for i := range yv {
				yv[i] += t * cv[i]
			}
		} else {
			for i, iy := i0, i0*incY; i < i1; i, iy = i+1, iy+incY {
				y[iy] += t * col[i]
			}
		}
	}
}

// gemvTransCols accumulates elements [j0, j1) of y += alpha*Aᵀ*x, one dot
// per column of A.
func gemvTransCols(m, n int, alpha float64, a []float64, lda int, x []float64, incX int, y []float64, incY, j0, j1 int) {
	for j, jy := j0, j0*incY; j < j1; j, jy = j+1, jy+incY {
		col := a[j*lda : j*lda+m]
		sum := 0.0
		if incX == 1 {
			for i := 0; i < m; i++ {
				sum += col[i] * x[i]
			}
		} else {
			for i, ix := 0, 0; i < m; i, ix = i+1, ix+incX {
				sum += col[i] * x[ix]
			}
		}
		y[jy] += alpha * sum
	}
}

// Dger computes the rank-1 update A := alpha*x*yᵀ + A where A is m×n.
func Dger(m, n int, alpha float64, x []float64, incX int, y []float64, incY int, a []float64, lda int) {
	checkMatrix("Dger", m, n, lda, a)
	checkVector("Dger", m, x, incX)
	checkVector("Dger", n, y, incY)
	if m == 0 || n == 0 || alpha == 0 {
		return
	}
	if done := opTimer("ger", 2*float64(m)*float64(n)); done != nil {
		defer done()
	}
	p := procs()
	if p > 1 && 2*m*n >= parallelL2Threshold && n > 1 {
		chunks := min(p, n)
		parallelFor(chunks, func(w int) {
			gerCols(m, n, alpha, x, incX, y, incY, a, lda, w*n/chunks, (w+1)*n/chunks)
		})
		return
	}
	gerCols(m, n, alpha, x, incX, y, incY, a, lda, 0, n)
}

// gerCols applies the rank-1 update to columns [j0, j1) of A.
func gerCols(m, n int, alpha float64, x []float64, incX int, y []float64, incY int, a []float64, lda, j0, j1 int) {
	for j, jy := j0, j0*incY; j < j1; j, jy = j+1, jy+incY {
		t := alpha * y[jy]
		if t == 0 {
			continue
		}
		col := a[j*lda : j*lda+m]
		for i, ix := 0, 0; i < m; i, ix = i+1, ix+incX {
			col[i] += t * x[ix]
		}
	}
}

// Dtrmv computes x := op(A)*x where A is an n×n triangular matrix.
func Dtrmv(uplo Uplo, trans Transpose, diag Diag, n int, a []float64, lda int, x []float64, incX int) {
	checkMatrix("Dtrmv", n, n, lda, a)
	checkVector("Dtrmv", n, x, incX)
	if n == 0 {
		return
	}
	nonUnit := diag == NonUnit
	switch {
	case trans == NoTrans && uplo == Upper:
		// x := U*x, forward over columns.
		for j, jx := 0, 0; j < n; j, jx = j+1, jx+incX {
			t := x[jx]
			if t != 0 {
				col := a[j*lda:]
				for i, ix := 0, 0; i < j; i, ix = i+1, ix+incX {
					x[ix] += t * col[i]
				}
				if nonUnit {
					x[jx] = t * col[j]
				}
			} else if nonUnit {
				x[jx] = 0
			}
		}
	case trans == NoTrans && uplo == Lower:
		// x := L*x, backward over columns.
		for j, jx := n-1, (n-1)*incX; j >= 0; j, jx = j-1, jx-incX {
			t := x[jx]
			col := a[j*lda:]
			if t != 0 {
				for i, ix := n-1, (n-1)*incX; i > j; i, ix = i-1, ix-incX {
					x[ix] += t * col[i]
				}
				if nonUnit {
					x[jx] = t * col[j]
				}
			} else if nonUnit {
				x[jx] = 0
			}
		}
	case trans == Trans && uplo == Upper:
		// x := Uᵀ*x, backward.
		for j, jx := n-1, (n-1)*incX; j >= 0; j, jx = j-1, jx-incX {
			col := a[j*lda:]
			t := 0.0
			if nonUnit {
				t = x[jx] * col[j]
			} else {
				t = x[jx]
			}
			for i, ix := 0, 0; i < j; i, ix = i+1, ix+incX {
				t += col[i] * x[ix]
			}
			x[jx] = t
		}
	default: // trans == Trans && uplo == Lower
		// x := Lᵀ*x, forward.
		for j, jx := 0, 0; j < n; j, jx = j+1, jx+incX {
			col := a[j*lda:]
			t := 0.0
			if nonUnit {
				t = x[jx] * col[j]
			} else {
				t = x[jx]
			}
			for i, ix := j+1, (j+1)*incX; i < n; i, ix = i+1, ix+incX {
				t += col[i] * x[ix]
			}
			x[jx] = t
		}
	}
}

// Dtrsv solves op(A)*x = b for x in place, where A is n×n triangular and x
// holds b on entry.
func Dtrsv(uplo Uplo, trans Transpose, diag Diag, n int, a []float64, lda int, x []float64, incX int) {
	checkMatrix("Dtrsv", n, n, lda, a)
	checkVector("Dtrsv", n, x, incX)
	if n == 0 {
		return
	}
	nonUnit := diag == NonUnit
	switch {
	case trans == NoTrans && uplo == Upper:
		for j, jx := n-1, (n-1)*incX; j >= 0; j, jx = j-1, jx-incX {
			col := a[j*lda:]
			if nonUnit {
				x[jx] /= col[j]
			}
			t := x[jx]
			for i, ix := 0, 0; i < j; i, ix = i+1, ix+incX {
				x[ix] -= t * col[i]
			}
		}
	case trans == NoTrans && uplo == Lower:
		for j, jx := 0, 0; j < n; j, jx = j+1, jx+incX {
			col := a[j*lda:]
			if nonUnit {
				x[jx] /= col[j]
			}
			t := x[jx]
			for i, ix := j+1, (j+1)*incX; i < n; i, ix = i+1, ix+incX {
				x[ix] -= t * col[i]
			}
		}
	case trans == Trans && uplo == Upper:
		for j, jx := 0, 0; j < n; j, jx = j+1, jx+incX {
			col := a[j*lda:]
			t := x[jx]
			for i, ix := 0, 0; i < j; i, ix = i+1, ix+incX {
				t -= col[i] * x[ix]
			}
			if nonUnit {
				t /= col[j]
			}
			x[jx] = t
		}
	default: // trans == Trans && uplo == Lower
		for j, jx := n-1, (n-1)*incX; j >= 0; j, jx = j-1, jx-incX {
			col := a[j*lda:]
			t := x[jx]
			for i, ix := j+1, (j+1)*incX; i < n; i, ix = i+1, ix+incX {
				t -= col[i] * x[ix]
			}
			if nonUnit {
				t /= col[j]
			}
			x[jx] = t
		}
	}
}
