package blas

// Hardware dispatch for the Dgemm micro-kernel on amd64. The packed layouts
// written by packA/packB line up with 256-bit vectors when MR = NR = 4: one
// k step of a packed A micro-panel is exactly one YMM load, and the four
// packed B values broadcast against it, so the AVX2+FMA kernel in
// microkernel_amd64.s computes the whole 4×4 tile with four FMA chains per
// k step (eight with the ×2 unroll) instead of sixteen scalar multiply-adds.
//
// useAVXKernel is a variable, not a constant, so tests can force the
// portable Go path and cross-check the two implementations.
var useAVXKernel = cpuSupportsAVX2FMA()

// cpuSupportsAVX2FMA reports whether both the CPU and the OS support the
// AVX2+FMA kernel: AVX, FMA, and OSXSAVE from CPUID leaf 1, YMM state
// enabled in XCR0, and AVX2 from leaf 7.
func cpuSupportsAVX2FMA() bool {
	maxLeaf, _, _, _ := cpuid(0, 0)
	if maxLeaf < 7 {
		return false
	}
	const (
		fma     = 1 << 12
		osxsave = 1 << 27
		avx     = 1 << 28
	)
	_, _, c1, _ := cpuid(1, 0)
	if c1&fma == 0 || c1&osxsave == 0 || c1&avx == 0 {
		return false
	}
	// XCR0 bits 1 (SSE) and 2 (AVX) must both be set or the OS does not
	// preserve YMM registers across context switches.
	xlo, _ := xgetbv()
	if xlo&0x6 != 0x6 {
		return false
	}
	const avx2 = 1 << 5
	_, b7, _, _ := cpuid(7, 0)
	return b7&avx2 != 0
}

// microKernelAVX computes the full MR×NR tile update C += alpha·op(A)·op(B)
// over kc packed steps, exactly like microKernelGo but vectorized.
// Implemented in microkernel_amd64.s.
//
//go:noescape
func microKernelAVX(kc int, alpha float64, pa, pb, c []float64, ldc int)

//go:noescape
func cpuid(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

//go:noescape
func xgetbv() (eax, edx uint32)
