package blas

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/matrix"
)

func TestSetMaxProcsClampAndReturn(t *testing.T) {
	orig := SetMaxProcs(3)
	defer SetMaxProcs(orig)
	if got := SetMaxProcs(0); got != 3 {
		t.Fatalf("SetMaxProcs(0) returned %d, want previous value 3", got)
	}
	// n < 1 clamps to 1.
	if got := procs(); got != 1 {
		t.Fatalf("procs() = %d after SetMaxProcs(0), want 1", got)
	}
}

func TestParallelForCoversEveryIndexOnce(t *testing.T) {
	orig := SetMaxProcs(8)
	defer SetMaxProcs(orig)
	const n = 1000
	var counts [n]atomic.Int32
	parallelFor(n, func(i int) {
		counts[i].Add(1)
	})
	for i := range counts {
		if got := counts[i].Load(); got != 1 {
			t.Fatalf("index %d ran %d times, want exactly once", i, got)
		}
	}
}

func TestParallelForSerialWhenPinned(t *testing.T) {
	orig := SetMaxProcs(1)
	defer SetMaxProcs(orig)
	var order []int
	parallelFor(5, func(i int) {
		order = append(order, i) // no lock: must be the caller's goroutine
	})
	for i, v := range order {
		if v != i {
			t.Fatalf("pinned parallelFor visited %v, want ascending order", order)
		}
	}
	if len(order) != 5 {
		t.Fatalf("pinned parallelFor ran %d indices, want 5", len(order))
	}
}

// TestParallelForConcurrentShards proves p independent shard runners really
// run concurrently: every shard blocks until all p have started, which can
// only resolve if the pool actually supplies p-1 workers alongside the
// caller.
func TestParallelForConcurrentShards(t *testing.T) {
	const p = 4
	orig := SetMaxProcs(p)
	defer SetMaxProcs(orig)
	var barrier sync.WaitGroup
	barrier.Add(p)
	done := make(chan struct{})
	go func() {
		parallelFor(p, func(i int) {
			barrier.Done()
			barrier.Wait()
		})
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("parallelFor deadlocked: fewer than p concurrent shard runners")
	}
}

// TestParallelForNestedDoesNotDeadlock exercises the caller-runs fallback:
// nested parallelFor calls from inside shards must complete even when every
// pool worker is already busy.
func TestParallelForNestedDoesNotDeadlock(t *testing.T) {
	orig := SetMaxProcs(4)
	defer SetMaxProcs(orig)
	var total atomic.Int64
	done := make(chan struct{})
	go func() {
		parallelFor(8, func(i int) {
			parallelFor(8, func(j int) {
				total.Add(1)
			})
		})
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("nested parallelFor deadlocked")
	}
	if got := total.Load(); got != 64 {
		t.Fatalf("nested parallelFor ran %d inner bodies, want 64", got)
	}
}

// TestDgemmTallSkinnyPanelShards is the regression test for the tall-skinny
// panel update (m=4096, n=8, k=128) — the shape the blocked Hessenberg
// reduction hits on every trailing-panel update. The pre-blocking Dgemm
// sharded only over columns (chunks = min(p, n)), so with p workers and
// n = 8 columns at most 8 cores could ever engage. The tile grid must now
// expose parallelism in the m dimension as well.
func TestDgemmTallSkinnyPanelShards(t *testing.T) {
	const m, n, k = 4096, 8, 128
	const p = 16

	// The shape must qualify for the parallel path at the production
	// threshold, not just under a test override.
	if flops := 2 * m * n * k; flops < parallelGemmThreshold {
		t.Fatalf("tall-skinny panel flops %d below parallelGemmThreshold %d: shape would stay serial", flops, parallelGemmThreshold)
	}

	// Structural assertion: the 2-D tile grid must offer at least p tasks
	// where the pre-blocking column sharding offered only min(p, n) = 8.
	mBlocks := (m + gemmMC - 1) / gemmMC
	nBlocks := (n + gemmNC - 1) / gemmNC
	tasks := mBlocks * nBlocks
	if prev := min(p, n); tasks <= prev {
		t.Fatalf("tile grid exposes %d tasks, no better than the pre-blocking %d column chunks", tasks, prev)
	}
	if tasks < p {
		t.Fatalf("tile grid exposes %d tasks for %d workers: cores would idle", tasks, p)
	}

	// Behavioral assertion: the parallel result is bitwise identical to the
	// serial one on this shape.
	a := matrix.Random(m, k, 11)
	b := matrix.Random(k, n, 12)
	want := matrix.Random(m, n, 13)
	got := want.Clone()

	orig := SetMaxProcs(1)
	defer SetMaxProcs(orig)
	Dgemm(NoTrans, NoTrans, m, n, k, 1.5, a.Data, a.Stride, b.Data, b.Stride, -0.5, want.Data, want.Stride)
	SetMaxProcs(p)
	Dgemm(NoTrans, NoTrans, m, n, k, 1.5, a.Data, a.Stride, b.Data, b.Stride, -0.5, got.Data, got.Stride)
	if !want.Equal(got) {
		t.Fatal("parallel tall-skinny Dgemm differs bitwise from serial")
	}
}

// TestParallelFusedRoutinesMatchSerialBitwise extends the determinism
// contract to the fused-ABFT substrate: DgemmFT output, its checksum
// report, and the DMR level-2 wrappers must reproduce the serial result
// bit for bit at any SetMaxProcs — the checksum accumulators are per-tile
// state reduced in slot order, never shared across workers.
func TestParallelFusedRoutinesMatchSerialBitwise(t *testing.T) {
	origProcs := SetMaxProcs(1)
	origGemm, origL2 := parallelGemmThreshold, parallelL2Threshold
	defer func() {
		SetMaxProcs(origProcs)
		parallelGemmThreshold, parallelL2Threshold = origGemm, origL2
	}()

	const m, n, k = 67, 45, 31
	a := matrix.Random(m, k, 41)
	b := matrix.Random(k, n, 42)
	x := matrix.Random(k, 1, 43)
	xg := matrix.Random(n, 1, 44)
	yv := matrix.Random(m, 1, 45)

	type result struct {
		gemm, ger *matrix.Matrix
		gemv      []float64
		rep       FTResult
	}
	run := func() result {
		var r result
		var err error
		r.gemm = matrix.Random(m, n, 46)
		r.rep, err = DgemmFT(NoTrans, NoTrans, m, n, k, 1.1, a.Data, a.Stride, b.Data, b.Stride, 0.3, r.gemm.Data, r.gemm.Stride)
		if err != nil {
			t.Fatalf("DgemmFT false positive: %v", err)
		}
		r.gemv = make([]float64, m)
		for i := range r.gemv {
			r.gemv[i] = float64(i)
		}
		if _, err = DgemvFT(NoTrans, m, k, 1.2, a.Data, a.Stride, x.Data, 1, 0.7, r.gemv, 1); err != nil {
			t.Fatalf("DgemvFT false positive: %v", err)
		}
		r.ger = matrix.Random(m, n, 47)
		if _, err = DgerFT(m, n, -0.4, yv.Data, 1, xg.Data, 1, r.ger.Data, r.ger.Stride); err != nil {
			t.Fatalf("DgerFT false positive: %v", err)
		}
		return r
	}

	serial := run()

	for _, p := range []int{2, 5, 9} {
		SetMaxProcs(p)
		parallelGemmThreshold, parallelL2Threshold = 1, 1
		par := run()
		if !serial.gemm.Equal(par.gemm) {
			t.Errorf("procs=%d: parallel DgemmFT differs bitwise from serial", p)
		}
		if serial.rep != par.rep {
			t.Errorf("procs=%d: DgemmFT report %+v differs from serial %+v", p, par.rep, serial.rep)
		}
		for i := range serial.gemv {
			if serial.gemv[i] != par.gemv[i] {
				t.Fatalf("procs=%d: parallel DgemvFT differs bitwise at %d", p, i)
			}
		}
		if !serial.ger.Equal(par.ger) {
			t.Errorf("procs=%d: parallel DgerFT differs bitwise from serial", p)
		}
	}
}

// TestParallelRoutinesMatchSerialBitwise pins the determinism contract for
// every routine that dispatches onto the pool: forcing the parallel path at
// tiny sizes must reproduce the serial result bit for bit.
func TestParallelRoutinesMatchSerialBitwise(t *testing.T) {
	origProcs := SetMaxProcs(1)
	origGemm, origTrmm := parallelGemmThreshold, parallelTrmmThreshold
	origL2, origSyr2k := parallelL2Threshold, parallelSyr2kThreshold
	defer func() {
		SetMaxProcs(origProcs)
		parallelGemmThreshold, parallelTrmmThreshold = origGemm, origTrmm
		parallelL2Threshold, parallelSyr2kThreshold = origL2, origSyr2k
	}()

	const m, n, k = 67, 45, 31
	a := matrix.Random(m, k, 21)
	b := matrix.Random(k, n, 22)
	tri := matrix.Random(n, n, 23)
	x := matrix.Random(k, 1, 24)
	y := matrix.Random(m, 1, 25)
	sa := matrix.Random(n, k, 26)
	sb := matrix.Random(n, k, 27)
	yg := matrix.Random(n, 1, 28)

	type result struct {
		gemm, trmm, ger, symm *matrix.Matrix
		gemv                  []float64
	}
	run := func() result {
		var r result
		r.gemm = matrix.Random(m, n, 31)
		Dgemm(NoTrans, Trans, m, n, k, 1.1, a.Data, a.Stride, b.T().Data, b.T().Stride, 0.3, r.gemm.Data, r.gemm.Stride)
		r.trmm = matrix.Random(m, n, 32)
		Dtrmm(Right, Upper, NoTrans, NonUnit, m, n, 0.9, tri.Data, tri.Stride, r.trmm.Data, r.trmm.Stride)
		r.gemv = make([]float64, m)
		for i := range r.gemv {
			r.gemv[i] = float64(i)
		}
		Dgemv(NoTrans, m, k, 1.2, a.Data, a.Stride, x.Data, 1, 0.7, r.gemv, 1)
		r.ger = matrix.Random(m, n, 33)
		Dger(m, n, -0.4, y.Data, 1, yg.Data, 1, r.ger.Data, r.ger.Stride)
		r.symm = matrix.Random(n, n, 34)
		Dsyr2k(Lower, NoTrans, n, k, 0.8, sa.Data, sa.Stride, sb.Data, sb.Stride, 0.6, r.symm.Data, r.symm.Stride)
		return r
	}

	serial := run()

	SetMaxProcs(7)
	parallelGemmThreshold, parallelTrmmThreshold = 1, 1
	parallelL2Threshold, parallelSyr2kThreshold = 1, 1
	par := run()

	if !serial.gemm.Equal(par.gemm) {
		t.Error("parallel Dgemm differs bitwise from serial")
	}
	if !serial.trmm.Equal(par.trmm) {
		t.Error("parallel Dtrmm differs bitwise from serial")
	}
	for i := range serial.gemv {
		if serial.gemv[i] != par.gemv[i] {
			t.Fatalf("parallel Dgemv differs bitwise from serial at %d", i)
		}
	}
	if !serial.ger.Equal(par.ger) {
		t.Error("parallel Dger differs bitwise from serial")
	}
	if !serial.symm.Equal(par.symm) {
		t.Error("parallel Dsyr2k differs bitwise from serial")
	}
}
