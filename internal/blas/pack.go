package blas

import "sync"

// Panel packing for the blocked Dgemm (BLIS-style). The macro-kernel only
// ever sees op(A) and op(B) through these packed buffers, so all four
// transpose cases are folded into the copy and the micro-kernel is unique.
//
// Layout:
//
//   - packA writes an mc×kc block of op(A) as ⌈mc/gemmMR⌉ consecutive
//     micro-panels; micro-panel i holds rows [i·MR, i·MR+MR) in k-major
//     order (MR contiguous row values per k step). Short edge panels are
//     zero-padded to MR so the micro-kernel never branches on m.
//   - packB writes a kc×nc block of op(B) as ⌈nc/gemmNR⌉ micro-panels;
//     micro-panel j holds columns [j·NR, j·NR+NR) in k-major order (NR
//     contiguous column values per k step), zero-padded to NR.
//
// Buffers are recycled through sync.Pools sized for the worst case
// (MC·KC and NC·KC doubles), so steady-state Dgemm does no allocation.

var packAPool = sync.Pool{New: func() any {
	buf := make([]float64, gemmMC*gemmKC)
	return &buf
}}

var packBPool = sync.Pool{New: func() any {
	buf := make([]float64, gemmNC*gemmKC)
	return &buf
}}

// packA packs the mc×kc block of op(A) with top-left element (i0, p0) —
// indices in op(A) coordinates — into buf. op(A)[i,l] is a[l*lda+i] for
// NoTrans and a[i*lda+l] for Trans.
func packA(tA Transpose, a []float64, lda, i0, p0, mc, kc int, buf []float64) {
	for ir, pi := 0, 0; ir < mc; ir, pi = ir+gemmMR, pi+1 {
		rows := mc - ir
		if rows > gemmMR {
			rows = gemmMR
		}
		base := pi * kc * gemmMR
		if tA == NoTrans {
			for p := 0; p < kc; p++ {
				src := a[(p0+p)*lda+i0+ir:]
				dst := buf[base+p*gemmMR : base+p*gemmMR+gemmMR]
				for r := 0; r < rows; r++ {
					dst[r] = src[r]
				}
				for r := rows; r < gemmMR; r++ {
					dst[r] = 0
				}
			}
		} else {
			for p := 0; p < kc; p++ {
				dst := buf[base+p*gemmMR : base+p*gemmMR+gemmMR]
				for r := 0; r < rows; r++ {
					dst[r] = a[(i0+ir+r)*lda+p0+p]
				}
				for r := rows; r < gemmMR; r++ {
					dst[r] = 0
				}
			}
		}
	}
}

// packB packs the kc×nc block of op(B) with top-left element (p0, j0) —
// indices in op(B) coordinates — into buf. op(B)[l,j] is b[j*ldb+l] for
// NoTrans and b[l*ldb+j] for Trans.
func packB(tB Transpose, b []float64, ldb, p0, j0, kc, nc int, buf []float64) {
	for jr, pj := 0, 0; jr < nc; jr, pj = jr+gemmNR, pj+1 {
		cols := nc - jr
		if cols > gemmNR {
			cols = gemmNR
		}
		base := pj * kc * gemmNR
		if tB == NoTrans {
			for c := 0; c < cols; c++ {
				src := b[(j0+jr+c)*ldb+p0:]
				for p := 0; p < kc; p++ {
					buf[base+p*gemmNR+c] = src[p]
				}
			}
			for c := cols; c < gemmNR; c++ {
				for p := 0; p < kc; p++ {
					buf[base+p*gemmNR+c] = 0
				}
			}
		} else {
			for p := 0; p < kc; p++ {
				src := b[(p0+p)*ldb+j0+jr:]
				dst := buf[base+p*gemmNR : base+p*gemmNR+gemmNR]
				for c := 0; c < cols; c++ {
					dst[c] = src[c]
				}
				for c := cols; c < gemmNR; c++ {
					dst[c] = 0
				}
			}
		}
	}
}
