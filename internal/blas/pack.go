package blas

import "sync"

// Panel packing for the blocked Dgemm (BLIS-style). The macro-kernel only
// ever sees op(A) and op(B) through these packed buffers, so all four
// transpose cases are folded into the copy and the micro-kernel is unique.
//
// Layout:
//
//   - packA writes an mc×kc block of op(A) as ⌈mc/gemmMR⌉ consecutive
//     micro-panels; micro-panel i holds rows [i·MR, i·MR+MR) in k-major
//     order (MR contiguous row values per k step). Short edge panels are
//     zero-padded to MR so the micro-kernel never branches on m.
//   - packB writes a kc×nc block of op(B) as ⌈nc/gemmNR⌉ micro-panels;
//     micro-panel j holds columns [j·NR, j·NR+NR) in k-major order (NR
//     contiguous column values per k step), zero-padded to NR.
//
// Buffers are recycled through sync.Pools sized for the worst case
// (MC·KC and NC·KC doubles), so steady-state Dgemm does no allocation.

var packAPool = sync.Pool{New: func() any {
	buf := make([]float64, gemmMC*gemmKC)
	return &buf
}}

var packBPool = sync.Pool{New: func() any {
	buf := make([]float64, gemmNC*gemmKC)
	return &buf
}}

// packA packs the mc×kc block of op(A) with top-left element (i0, p0) —
// indices in op(A) coordinates — into buf. op(A)[i,l] is a[l*lda+i] for
// NoTrans and a[i*lda+l] for Trans.
func packA(tA Transpose, a []float64, lda, i0, p0, mc, kc int, buf []float64) {
	for ir, pi := 0, 0; ir < mc; ir, pi = ir+gemmMR, pi+1 {
		rows := mc - ir
		if rows > gemmMR {
			rows = gemmMR
		}
		base := pi * kc * gemmMR
		if tA == NoTrans {
			for p := 0; p < kc; p++ {
				src := a[(p0+p)*lda+i0+ir:]
				dst := buf[base+p*gemmMR : base+p*gemmMR+gemmMR]
				for r := 0; r < rows; r++ {
					dst[r] = src[r]
				}
				for r := rows; r < gemmMR; r++ {
					dst[r] = 0
				}
			}
		} else {
			for p := 0; p < kc; p++ {
				dst := buf[base+p*gemmMR : base+p*gemmMR+gemmMR]
				for r := 0; r < rows; r++ {
					dst[r] = a[(i0+ir+r)*lda+p0+p]
				}
				for r := rows; r < gemmMR; r++ {
					dst[r] = 0
				}
			}
		}
	}
}

// packAFT packs exactly like packA — identical stores in identical order,
// so the data path of the fused-ABFT Dgemm stays bitwise equal to the
// plain kernel — while additionally accumulating the column sums of the
// packed block into sum: after the call, sum[p*gemmMR] holds
// Σ_i op(A)[i0+i, p0+p] for each k step p (lanes 1..3 stay zero). The sum
// buffer is laid out as one synthetic MR-wide micro-panel so it can be
// fed straight back through microKernel to predict column checksums
// (ftgemm.go). Zero-padded fringe lanes contribute exact zeros.
func packAFT(tA Transpose, a []float64, lda, i0, p0, mc, kc int, buf, sum []float64) {
	for p := 0; p < kc*gemmMR; p++ {
		sum[p] = 0
	}
	for ir, pi := 0, 0; ir < mc; ir, pi = ir+gemmMR, pi+1 {
		rows := mc - ir
		if rows > gemmMR {
			rows = gemmMR
		}
		base := pi * kc * gemmMR
		if tA == NoTrans {
			for p := 0; p < kc; p++ {
				src := a[(p0+p)*lda+i0+ir:]
				dst := buf[base+p*gemmMR : base+p*gemmMR+gemmMR]
				s := 0.0
				for r := 0; r < rows; r++ {
					dst[r] = src[r]
					s += src[r]
				}
				for r := rows; r < gemmMR; r++ {
					dst[r] = 0
				}
				sum[p*gemmMR] += s
			}
		} else {
			for p := 0; p < kc; p++ {
				dst := buf[base+p*gemmMR : base+p*gemmMR+gemmMR]
				s := 0.0
				for r := 0; r < rows; r++ {
					v := a[(i0+ir+r)*lda+p0+p]
					dst[r] = v
					s += v
				}
				for r := rows; r < gemmMR; r++ {
					dst[r] = 0
				}
				sum[p*gemmMR] += s
			}
		}
	}
}

// packB packs the kc×nc block of op(B) with top-left element (p0, j0) —
// indices in op(B) coordinates — into buf. op(B)[l,j] is b[j*ldb+l] for
// NoTrans and b[l*ldb+j] for Trans.
func packB(tB Transpose, b []float64, ldb, p0, j0, kc, nc int, buf []float64) {
	for jr, pj := 0, 0; jr < nc; jr, pj = jr+gemmNR, pj+1 {
		cols := nc - jr
		if cols > gemmNR {
			cols = gemmNR
		}
		base := pj * kc * gemmNR
		if tB == NoTrans {
			for c := 0; c < cols; c++ {
				src := b[(j0+jr+c)*ldb+p0:]
				for p := 0; p < kc; p++ {
					buf[base+p*gemmNR+c] = src[p]
				}
			}
			for c := cols; c < gemmNR; c++ {
				for p := 0; p < kc; p++ {
					buf[base+p*gemmNR+c] = 0
				}
			}
		} else {
			for p := 0; p < kc; p++ {
				src := b[(p0+p)*ldb+j0+jr:]
				dst := buf[base+p*gemmNR : base+p*gemmNR+gemmNR]
				for c := 0; c < cols; c++ {
					dst[c] = src[c]
				}
				for c := cols; c < gemmNR; c++ {
					dst[c] = 0
				}
			}
		}
	}
}

// packBFT packs exactly like packB (identical stores, identical order)
// while accumulating the row sums of the packed block into sum: after the
// call, sum[p*gemmNR] holds Σ_j op(B)[p0+p, j0+j] for each k step p
// (lanes 1..3 stay zero). The layout is one synthetic NR-wide micro-panel,
// ready to feed through microKernel as the B operand of the row-checksum
// prediction (ftgemm.go).
func packBFT(tB Transpose, b []float64, ldb, p0, j0, kc, nc int, buf, sum []float64) {
	for p := 0; p < kc*gemmNR; p++ {
		sum[p] = 0
	}
	for jr, pj := 0, 0; jr < nc; jr, pj = jr+gemmNR, pj+1 {
		cols := nc - jr
		if cols > gemmNR {
			cols = gemmNR
		}
		base := pj * kc * gemmNR
		if tB == NoTrans {
			// Full micro-panels take a fused single pass: NR sequential
			// source streams interleaved into one sequential write stream,
			// with the row sum folded in from values already in registers.
			// (packB's column-at-a-time scatter walks the 8KB micro-panel
			// NR times; this walks it once, so the accumulation rides along
			// at no extra memory traffic.) Stored values and the c-ascending
			// summation order are identical to the fringe path below.
			if cols == gemmNR && gemmNR == 4 {
				s0 := b[(j0+jr)*ldb+p0:]
				s1 := b[(j0+jr+1)*ldb+p0:]
				s2 := b[(j0+jr+2)*ldb+p0:]
				s3 := b[(j0+jr+3)*ldb+p0:]
				for p := 0; p < kc; p++ {
					v0, v1, v2, v3 := s0[p], s1[p], s2[p], s3[p]
					o := base + p*4
					buf[o] = v0
					buf[o+1] = v1
					buf[o+2] = v2
					buf[o+3] = v3
					sum[o-base] += v0 + v1 + v2 + v3
				}
				continue
			}
			for c := 0; c < cols; c++ {
				src := b[(j0+jr+c)*ldb+p0:]
				for p := 0; p < kc; p++ {
					buf[base+p*gemmNR+c] = src[p]
				}
			}
			for c := cols; c < gemmNR; c++ {
				for p := 0; p < kc; p++ {
					buf[base+p*gemmNR+c] = 0
				}
			}
			for p := 0; p < kc; p++ {
				s := 0.0
				for _, v := range buf[base+p*gemmNR : base+p*gemmNR+gemmNR] {
					s += v
				}
				sum[p*gemmNR] += s
			}
		} else {
			for p := 0; p < kc; p++ {
				src := b[(p0+p)*ldb+j0+jr:]
				dst := buf[base+p*gemmNR : base+p*gemmNR+gemmNR]
				s := 0.0
				for c := 0; c < cols; c++ {
					dst[c] = src[c]
					s += src[c]
				}
				for c := cols; c < gemmNR; c++ {
					dst[c] = 0
				}
				sum[p*gemmNR] += s
			}
		}
	}
}
