package blas

import "math"

// Level-1 BLAS: vector-vector operations. All routines accept an increment
// so that rows of a column-major matrix (inc = leading dimension) can be
// treated as vectors, which the LAPACK panel kernels rely on. Negative
// increments are not needed by this codebase and are rejected.

func checkVector(routine string, n int, x []float64, incX int) {
	if n < 0 {
		badDim(routine, "n", n)
	}
	if incX <= 0 {
		badDim(routine, "inc", incX)
	}
	if n > 0 && len(x) < (n-1)*incX+1 {
		badDim(routine, "short vector", len(x), "need", (n-1)*incX+1)
	}
}

// Ddot returns the dot product xᵀy.
func Ddot(n int, x []float64, incX int, y []float64, incY int) float64 {
	checkVector("Ddot", n, x, incX)
	checkVector("Ddot", n, y, incY)
	sum := 0.0
	if incX == 1 && incY == 1 {
		for i := 0; i < n; i++ {
			sum += x[i] * y[i]
		}
		return sum
	}
	for i, ix, iy := 0, 0, 0; i < n; i, ix, iy = i+1, ix+incX, iy+incY {
		sum += x[ix] * y[iy]
	}
	return sum
}

// Daxpy computes y := alpha*x + y.
func Daxpy(n int, alpha float64, x []float64, incX int, y []float64, incY int) {
	checkVector("Daxpy", n, x, incX)
	checkVector("Daxpy", n, y, incY)
	if alpha == 0 {
		return
	}
	if incX == 1 && incY == 1 {
		for i := 0; i < n; i++ {
			y[i] += alpha * x[i]
		}
		return
	}
	for i, ix, iy := 0, 0, 0; i < n; i, ix, iy = i+1, ix+incX, iy+incY {
		y[iy] += alpha * x[ix]
	}
}

// Dscal computes x := alpha*x.
func Dscal(n int, alpha float64, x []float64, incX int) {
	checkVector("Dscal", n, x, incX)
	if incX == 1 {
		for i := 0; i < n; i++ {
			x[i] *= alpha
		}
		return
	}
	for i, ix := 0, 0; i < n; i, ix = i+1, ix+incX {
		x[ix] *= alpha
	}
}

// Dcopy copies x into y.
func Dcopy(n int, x []float64, incX int, y []float64, incY int) {
	checkVector("Dcopy", n, x, incX)
	checkVector("Dcopy", n, y, incY)
	if incX == 1 && incY == 1 {
		copy(y[:n], x[:n])
		return
	}
	for i, ix, iy := 0, 0, 0; i < n; i, ix, iy = i+1, ix+incX, iy+incY {
		y[iy] = x[ix]
	}
}

// Dswap exchanges x and y.
func Dswap(n int, x []float64, incX int, y []float64, incY int) {
	checkVector("Dswap", n, x, incX)
	checkVector("Dswap", n, y, incY)
	for i, ix, iy := 0, 0, 0; i < n; i, ix, iy = i+1, ix+incX, iy+incY {
		x[ix], y[iy] = y[iy], x[ix]
	}
}

// Dnrm2 returns the Euclidean norm of x, guarding against overflow and
// underflow with the reference BLAS scaled accumulation.
func Dnrm2(n int, x []float64, incX int) float64 {
	checkVector("Dnrm2", n, x, incX)
	if n == 0 {
		return 0
	}
	if n == 1 {
		return math.Abs(x[0])
	}
	scale, ssq := 0.0, 1.0
	for i, ix := 0, 0; i < n; i, ix = i+1, ix+incX {
		v := x[ix]
		if v == 0 {
			continue
		}
		a := math.Abs(v)
		if scale < a {
			ssq = 1 + ssq*(scale/a)*(scale/a)
			scale = a
		} else {
			ssq += (a / scale) * (a / scale)
		}
	}
	return scale * math.Sqrt(ssq)
}

// Dasum returns the sum of absolute values of x.
func Dasum(n int, x []float64, incX int) float64 {
	checkVector("Dasum", n, x, incX)
	sum := 0.0
	for i, ix := 0, 0; i < n; i, ix = i+1, ix+incX {
		sum += math.Abs(x[ix])
	}
	return sum
}

// Dsum returns the plain (signed) sum of x; not a standard BLAS routine but
// the fundamental operation of the paper's checksum detection step
// (S_re = Σ A_re(i), S_ce = Σ A_ce(j)).
func Dsum(n int, x []float64, incX int) float64 {
	checkVector("Dsum", n, x, incX)
	sum := 0.0
	for i, ix := 0, 0; i < n; i, ix = i+1, ix+incX {
		sum += x[ix]
	}
	return sum
}

// Idamax returns the index of the element of x with the largest absolute
// value, or -1 if n == 0.
func Idamax(n int, x []float64, incX int) int {
	checkVector("Idamax", n, x, incX)
	if n == 0 {
		return -1
	}
	best, bestIdx := math.Abs(x[0]), 0
	for i, ix := 1, incX; i < n; i, ix = i+1, ix+incX {
		if a := math.Abs(x[ix]); a > best {
			best, bestIdx = a, i
		}
	}
	return bestIdx
}
