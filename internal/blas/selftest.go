package blas

import "math"

// FTSelfTestResult reports the power-on self-test of the FT substrate:
// for each detector, whether its planted fault was caught, plus the
// check counts the faulted calls performed. Healthy hardware (and a
// healthy build) answers true on every field.
type FTSelfTestResult struct {
	// GemmPacked: a bit flipped in the packed operand panels between the
	// pack and the micro-kernel was detected by the fused checksum verify.
	GemmPacked bool `json:"gemm_packed"`
	// GemmTile: an exponent bit flipped in the finished C tile before the
	// epilogue verify was detected.
	GemmTile bool `json:"gemm_tile"`
	// Gemv / Ger: a one-ulp corruption of the primary Level-2 output
	// between the DMR runs was detected by the bit compare.
	Gemv bool `json:"gemv"`
	Ger  bool `json:"ger"`
	// GemmChecks is the row+column comparisons one faulted DgemmFT ran;
	// DMRChecks the element compares across the faulted DgemvFT + DgerFT.
	GemmChecks int `json:"gemm_checks"`
	DMRChecks  int `json:"dmr_checks"`
}

// Passed reports whether every planted fault was detected.
func (r FTSelfTestResult) Passed() bool {
	return r.GemmPacked && r.GemmTile && r.Gemv && r.Ger
}

// FTSelfTest exercises every fused detector end-to-end against planted
// faults: a mantissa flip in the packed GEMM panels, an exponent flip in
// the accumulated C tile, and a one-ulp corruption of each DMR'd Level-2
// primary output. It is the substrate's power-on self-test — run it at
// startup or bench time to prove the detectors are alive, not just
// compiled in; BENCH_blasft.json records the outcome.
//
// The fault-planting hooks are process-global and unsynchronised, so
// FTSelfTest must not run concurrently with other FT BLAS calls.
func FTSelfTest() FTSelfTestResult {
	const n = 96 // one serial macro-tile: the hooks are not synchronised
	a := make([]float64, n*n)
	b := make([]float64, n*n)
	c := make([]float64, n*n)
	seed := uint64(0x9e3779b97f4a7c15)
	fill := func(s []float64) {
		for i := range s {
			seed = seed*6364136223846793005 + 1442695040888963407
			s[i] = float64(int64(seed>>33))/float64(1<<30) - 1
		}
	}
	fill(a)
	fill(b)
	fill(c)

	var res FTSelfTestResult

	ftTestCorruptPacked = func(bufA, bufB []float64) {
		bufA[7] = math.Float64frombits(math.Float64bits(bufA[7]) ^ (1 << 30))
	}
	rep, err := DgemmFT(NoTrans, NoTrans, n, n, n, 1, a, n, b, n, 1, c, n)
	ftTestCorruptPacked = nil
	res.GemmPacked = err != nil && rep.Detections > 0
	res.GemmChecks = rep.Checks

	ftTestCorruptTile = func(ct []float64, ldc, mc, nc int) {
		ct[3*ldc+5] = math.Float64frombits(math.Float64bits(ct[3*ldc+5]) ^ (1 << 55))
	}
	rep, err = DgemmFT(NoTrans, NoTrans, n, n, n, 1, a, n, b, n, 1, c, n)
	ftTestCorruptTile = nil
	res.GemmTile = err != nil && rep.Detections > 0

	ftTestCorruptDMR = func(out []float64, inc int) {
		out[2*inc] = math.Float64frombits(math.Float64bits(out[2*inc]) ^ 1)
	}
	x := make([]float64, n)
	y := make([]float64, n)
	fill(x)
	fill(y)
	rep, err = DgemvFT(NoTrans, n, n, 1, a, n, x, 1, 0, y, 1)
	res.Gemv = err != nil && rep.Detections > 0
	res.DMRChecks = rep.Checks
	rep, err = DgerFT(n, n, 1, x, 1, y, 1, a, n)
	ftTestCorruptDMR = nil
	res.Ger = err != nil && rep.Detections > 0
	res.DMRChecks += rep.Checks

	return res
}
