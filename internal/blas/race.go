//go:build race

package blas

// raceEnabled reports whether the race detector is compiled in; the
// wall-clock benchmarks skip artifact regeneration under its ~10-20×
// slowdown so BENCH_blas.json only ever holds representative numbers.
const raceEnabled = true
