//go:build !amd64

package blas

// Portable fallback: architectures without the assembly micro-kernel always
// take the Go path. The var (rather than const) keeps the dispatch sites
// identical across build targets.
var useAVXKernel = false

func microKernelAVX(kc int, alpha float64, pa, pb, c []float64, ldc int) {
	microKernelGo(kc, alpha, pa, pb, c, ldc)
}
