package blas

// Symmetric BLAS kernels needed by the tridiagonal (two-sided) reduction
// DSYTRD — the paper's stated future-work direction ("the rest of the
// hybrid two-sided factorizations"). Only the referenced triangle of the
// symmetric matrix is read or written, as in the reference BLAS.

// Dsymv computes y := alpha·A·x + beta·y where A is an n×n symmetric
// matrix of which only the uplo triangle is referenced.
func Dsymv(uplo Uplo, n int, alpha float64, a []float64, lda int, x []float64, incX int, beta float64, y []float64, incY int) {
	checkMatrix("Dsymv", n, n, lda, a)
	checkVector("Dsymv", n, x, incX)
	checkVector("Dsymv", n, y, incY)
	if n == 0 {
		return
	}
	if beta != 1 {
		if beta == 0 {
			for i, iy := 0, 0; i < n; i, iy = i+1, iy+incY {
				y[iy] = 0
			}
		} else {
			Dscal(n, beta, y, incY)
		}
	}
	if alpha == 0 {
		return
	}
	if uplo == Upper {
		for j, jx, jy := 0, 0, 0; j < n; j, jx, jy = j+1, jx+incX, jy+incY {
			t1 := alpha * x[jx]
			t2 := 0.0
			col := a[j*lda:]
			for i, ix, iy := 0, 0, 0; i < j; i, ix, iy = i+1, ix+incX, iy+incY {
				y[iy] += t1 * col[i]
				t2 += col[i] * x[ix]
			}
			y[jy] += t1*col[j] + alpha*t2
		}
		return
	}
	for j, jx, jy := 0, 0, 0; j < n; j, jx, jy = j+1, jx+incX, jy+incY {
		t1 := alpha * x[jx]
		t2 := 0.0
		col := a[j*lda:]
		y[jy] += t1 * col[j]
		for i, ix, iy := j+1, (j+1)*incX, (j+1)*incY; i < n; i, ix, iy = i+1, ix+incX, iy+incY {
			y[iy] += t1 * col[i]
			t2 += col[i] * x[ix]
		}
		y[jy] += alpha * t2
	}
}

// Dsyr2 performs the symmetric rank-2 update A := alpha·x·yᵀ + alpha·y·xᵀ + A
// on the uplo triangle of the n×n symmetric matrix A.
func Dsyr2(uplo Uplo, n int, alpha float64, x []float64, incX int, y []float64, incY int, a []float64, lda int) {
	checkMatrix("Dsyr2", n, n, lda, a)
	checkVector("Dsyr2", n, x, incX)
	checkVector("Dsyr2", n, y, incY)
	if n == 0 || alpha == 0 {
		return
	}
	for j, jx, jy := 0, 0, 0; j < n; j, jx, jy = j+1, jx+incX, jy+incY {
		if x[jx] == 0 && y[jy] == 0 {
			continue
		}
		t1 := alpha * y[jy]
		t2 := alpha * x[jx]
		col := a[j*lda:]
		if uplo == Upper {
			for i, ix, iy := 0, 0, 0; i <= j; i, ix, iy = i+1, ix+incX, iy+incY {
				col[i] += x[ix]*t1 + y[iy]*t2
			}
		} else {
			for i, ix, iy := j, j*incX, j*incY; i < n; i, ix, iy = i+1, ix+incX, iy+incY {
				col[i] += x[ix]*t1 + y[iy]*t2
			}
		}
	}
}

// parallelSyr2kThreshold is the flop count (2n²k) above which Dsyr2k
// shards column blocks across the worker pool; a variable so tests can
// force the parallel path.
var parallelSyr2kThreshold = 1 << 21

// Dsyr2k performs the symmetric rank-2k update
//
//	C := alpha·A·Bᵀ + alpha·B·Aᵀ + beta·C  (trans == NoTrans)
//
// on the uplo triangle of the n×n matrix C, with A and B n×k.
// (The Trans variant is not needed by this codebase and is rejected.)
//
// Columns of C update independently, so large problems shard column blocks
// across the worker pool; the triangular per-column cost is balanced by
// the pool's dynamic index distribution. Results are bitwise identical to
// serial execution.
func Dsyr2k(uplo Uplo, trans Transpose, n, k int, alpha float64, a []float64, lda int, b []float64, ldb int, beta float64, c []float64, ldc int) {
	if trans != NoTrans {
		badDim("Dsyr2k", "only NoTrans supported")
	}
	checkMatrix("Dsyr2k", n, k, lda, a)
	checkMatrix("Dsyr2k", n, k, ldb, b)
	checkMatrix("Dsyr2k", n, n, ldc, c)
	if n == 0 {
		return
	}
	if done := opTimer("syr2k", 2*float64(n)*float64(n)*float64(k)); done != nil {
		defer done()
	}
	p := procs()
	if p > 1 && 2*n*n*k >= parallelSyr2kThreshold && n > 1 {
		// More chunks than workers: dynamic distribution evens out the
		// triangular column costs.
		chunks := min(4*p, n)
		parallelFor(chunks, func(w int) {
			syr2kCols(uplo, n, k, alpha, a, lda, b, ldb, beta, c, ldc, w*n/chunks, (w+1)*n/chunks)
		})
		return
	}
	syr2kCols(uplo, n, k, alpha, a, lda, b, ldb, beta, c, ldc, 0, n)
}

// syr2kCols applies the rank-2k update to columns [j0, j1) of C.
func syr2kCols(uplo Uplo, n, k int, alpha float64, a []float64, lda int, b []float64, ldb int, beta float64, c []float64, ldc, j0, j1 int) {
	for j := j0; j < j1; j++ {
		lo, hi := 0, j+1
		if uplo == Lower {
			lo, hi = j, n
		}
		cc := c[j*ldc:]
		if beta != 1 {
			for i := lo; i < hi; i++ {
				cc[i] *= beta
			}
		}
		if alpha == 0 || k == 0 {
			continue
		}
		for l := 0; l < k; l++ {
			t1 := alpha * b[l*ldb+j]
			t2 := alpha * a[l*lda+j]
			if t1 == 0 && t2 == 0 {
				continue
			}
			ac := a[l*lda:]
			bc := b[l*ldb:]
			for i := lo; i < hi; i++ {
				cc[i] += ac[i]*t1 + bc[i]*t2
			}
		}
	}
}
