package blas

import (
	"math"
	"sync"
)

// Dual modular redundancy for the memory-bound Level-2 ops that dominate
// the panel factorization (FT-BLAS style). Checksum encoding cannot pay
// for itself on O(mn)-flop kernels — the encode is the same order as the
// op — and a rank-1 or matrix-vector product perturbs too few outputs for
// a column-sum sweep to localise cheaply. So DgemvFT/DgerFT instead run
// the public routine twice — once into the caller's output, once into a
// private contiguous shadow — and compare bit-for-bit.
//
// The compare is exact, not thresholded: the parallel shards and the
// incY != 1 paths keep per-element operation order identical to serial
// contiguous execution (the package-wide determinism contract), so the
// two runs agree in every bit unless a transient fault struck one of
// them. That catches even single-ulp mantissa flips that sit far below
// any norm-based threshold. Identical NaN payloads compare equal, so
// non-finite *inputs* are not misreported as faults; a bit gap involving
// a non-finite value sets FTResult.NonFinite.

// ftTestCorruptDMR, when non-nil, is called between the primary and
// shadow runs with the primary output (test hook: plants the fault the
// second run cannot see).
var ftTestCorruptDMR func(out []float64, inc int)

// dmrPool recycles shadow buffers so steady-state DMR calls do not
// allocate. Buffers grow to the largest size ever requested.
var dmrPool = sync.Pool{New: func() any {
	s := make([]float64, 0, 4096)
	return &s
}}

func dmrBuf(n int) *[]float64 {
	bp := dmrPool.Get().(*[]float64)
	if cap(*bp) < n {
		*bp = make([]float64, n)
	}
	*bp = (*bp)[:n]
	return bp
}

// dmrCompare bit-compares the primary output (stride inc) against the
// contiguous shadow, filling rep. Each element is one check.
func dmrCompare(rep *FTResult, out []float64, inc int, shadow []float64) {
	for i, iy := 0, 0; i < len(shadow); i, iy = i+1, iy+inc {
		rep.Checks++
		p, s := out[iy], shadow[i]
		if math.Float64bits(p) == math.Float64bits(s) {
			continue
		}
		rep.Detections++
		if math.IsNaN(p) || math.IsInf(p, 0) || math.IsNaN(s) || math.IsInf(s, 0) {
			rep.NonFinite = true
			rep.MaxResidual = math.Inf(1)
			continue
		}
		if d := math.Abs(p - s); d > rep.MaxResidual {
			rep.MaxResidual = d
		}
	}
}

// DgemvFT computes y := alpha*op(A)*x + beta*y exactly like Dgemv and
// verifies the result by dual modular redundancy. y holds the primary
// result either way; on any bit mismatch it returns ErrFTDetected.
func DgemvFT(trans Transpose, m, n int, alpha float64, a []float64, lda int, x []float64, incX int, beta float64, y []float64, incY int) (FTResult, error) {
	lenY := m
	if trans == Trans {
		lenY = n
	}
	var rep FTResult
	if m == 0 || n == 0 {
		Dgemv(trans, m, n, alpha, a, lda, x, incX, beta, y, incY)
		return rep, nil
	}
	if done := opTimer("gemv_ft", 0); done != nil {
		defer done()
	}
	bp := dmrBuf(lenY)
	shadow := *bp
	for i, iy := 0, 0; i < lenY; i, iy = i+1, iy+incY {
		shadow[i] = y[iy]
	}
	Dgemv(trans, m, n, alpha, a, lda, x, incX, beta, y, incY)
	if ftTestCorruptDMR != nil {
		ftTestCorruptDMR(y, incY)
	}
	Dgemv(trans, m, n, alpha, a, lda, x, incX, beta, shadow, 1)
	dmrCompare(&rep, y, incY, shadow)
	dmrPool.Put(bp)
	if rep.Detections > 0 {
		return rep, ErrFTDetected
	}
	return rep, nil
}

// DgerFT computes A := alpha*x*yᵀ + A exactly like Dger and verifies the
// m×n result block by dual modular redundancy.
func DgerFT(m, n int, alpha float64, x []float64, incX int, y []float64, incY int, a []float64, lda int) (FTResult, error) {
	var rep FTResult
	if m == 0 || n == 0 || alpha == 0 {
		Dger(m, n, alpha, x, incX, y, incY, a, lda)
		return rep, nil
	}
	if done := opTimer("ger_ft", 0); done != nil {
		defer done()
	}
	bp := dmrBuf(m * n)
	shadow := *bp
	for j := 0; j < n; j++ {
		copy(shadow[j*m:j*m+m], a[j*lda:j*lda+m])
	}
	Dger(m, n, alpha, x, incX, y, incY, a, lda)
	if ftTestCorruptDMR != nil {
		ftTestCorruptDMR(a, 1)
	}
	Dger(m, n, alpha, x, incX, y, incY, shadow, m)
	for j := 0; j < n; j++ {
		dmrCompare(&rep, a[j*lda:j*lda+m], 1, shadow[j*m:j*m+m])
	}
	dmrPool.Put(bp)
	if rep.Detections > 0 {
		return rep, ErrFTDetected
	}
	return rep, nil
}
