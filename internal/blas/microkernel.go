package blas

// Register-blocked micro-kernel of the packed Dgemm. One kernel serves all
// four transpose cases because packA/packB already present op(A) and op(B)
// in a canonical k-major layout.
//
// Blocking parameters, chosen so one packed k step of A is exactly one
// 256-bit vector for the AVX2 kernel (microkernel_amd64.s) while the
// portable Go kernel still fits its accumulators in the 15 usable amd64
// XMM registers:
//
//	MR×NR = 4×4   one 4×4 tile of C per micro-kernel call
//	MC×KC         the packed A block (256 KiB) targets L2
//	KC×NR         the packed B micro-panel (8 KiB) stays L1-resident
//	NC            bounds the packed B block (512 KiB, L3)
//
// MC and NC are multiples of MR and NR so pack buffers never overflow.
const (
	gemmMR = 4
	gemmNR = 4
	gemmMC = 128
	gemmKC = 256
	gemmNC = 256
)

// microKernel computes the full MR×NR tile update
//
//	C(0:4, 0:4) += alpha · Σ_p pa(:,p)·pb(p,:)ᵀ
//
// over kc packed steps, with c addressing the tile's top-left element and
// ldc its column stride. beta has already been applied by the caller.
// Requires kc >= 1 (the macro-kernel never runs a zero-length k block).
func microKernel(kc int, alpha float64, pa, pb, c []float64, ldc int) {
	if useAVXKernel {
		microKernelAVX(kc, alpha, pa, pb, c, ldc)
		return
	}
	microKernelGo(kc, alpha, pa, pb, c, ldc)
}

// microKernelGo is the portable tile kernel: two 4×2 half-tile passes over
// the packed panels. A 4×2 pass keeps 8 accumulators + 6 operands live —
// within the 15 usable XMM registers — where a single 4×4 pass would spill
// half its accumulators to the stack every iteration.
func microKernelGo(kc int, alpha float64, pa, pb, c []float64, ldc int) {
	microKernelGoHalf(kc, alpha, pa, pb, c, ldc)
	microKernelGoHalf(kc, alpha, pa, pb[2:], c[2*ldc:], ldc)
}

// microKernelGoHalf accumulates the 4×2 half tile c(0:4, 0:2) using packed B
// values pb[4p] and pb[4p+1] (the caller offsets pb to select the column
// pair). Requires kc >= 1.
func microKernelGoHalf(kc int, alpha float64, pa, pb, c []float64, ldc int) {
	var (
		c00, c10, c20, c30 float64
		c01, c11, c21, c31 float64
	)
	for {
		a3, a0, a1, a2 := pa[3], pa[0], pa[1], pa[2]
		b0, b1 := pb[0], pb[1]
		c00 += a0 * b0
		c10 += a1 * b0
		c20 += a2 * b0
		c30 += a3 * b0
		c01 += a0 * b1
		c11 += a1 * b1
		c21 += a2 * b1
		c31 += a3 * b1
		kc--
		if kc == 0 {
			break
		}
		pa = pa[4:]
		pb = pb[4:]
	}
	d0 := c[0:4]
	d1 := c[ldc : ldc+4]
	d0[0] += alpha * c00
	d0[1] += alpha * c10
	d0[2] += alpha * c20
	d0[3] += alpha * c30
	d1[0] += alpha * c01
	d1[1] += alpha * c11
	d1[2] += alpha * c21
	d1[3] += alpha * c31
}

// microKernelEdge is the masked path for partial tiles at the m/n fringes:
// it runs the full kernel into a zeroed MR×NR scratch tile (the packed
// panels are zero-padded, so the extra lanes contribute nothing) and stores
// back only the mr×nr valid elements. The scratch tile holds alpha·acc
// because microKernel applies alpha against the zero-initialized C.
func microKernelEdge(kc int, alpha float64, pa, pb, c []float64, ldc, mr, nr int) {
	var t [gemmMR * gemmNR]float64
	microKernel(kc, alpha, pa, pb, t[:], gemmMR)
	for j := 0; j < nr; j++ {
		col := c[j*ldc:]
		for i := 0; i < mr; i++ {
			col[i] += t[j*gemmMR+i]
		}
	}
}

// macroKernel sweeps the packed mc×kc A block against the packed kc×nc B
// block, tile by tile. Interior tiles update C in place; fringe tiles take
// the masked path.
func macroKernel(mc, nc, kc int, alpha float64, bufA, bufB []float64, c []float64, ldc int) {
	for jr := 0; jr < nc; jr += gemmNR {
		nr := nc - jr
		if nr > gemmNR {
			nr = gemmNR
		}
		pb := bufB[(jr/gemmNR)*kc*gemmNR:]
		for ir := 0; ir < mc; ir += gemmMR {
			mr := mc - ir
			if mr > gemmMR {
				mr = gemmMR
			}
			pa := bufA[(ir/gemmMR)*kc*gemmMR:]
			ct := c[jr*ldc+ir:]
			if mr == gemmMR && nr == gemmNR {
				microKernel(kc, alpha, pa, pb, ct, ldc)
			} else {
				microKernelEdge(kc, alpha, pa, pb, ct, ldc, mr, nr)
			}
		}
	}
}
