package blas

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/matrix"
)

// Property test for the blocked Dgemm: every transpose case, over sizes
// chosen to hit the awkward paths — odd and prime dimensions that leave
// ragged MR/NR edge tiles, and sizes straddling the MC/KC/NC cache-block
// boundaries — checked against the kept-private pre-blocking kernel
// (naiveGemm), on the serial path, the forced pool path, and both
// micro-kernel implementations.

// propSizes are small odd/prime/power-of-two dimensions; every (m, n, k)
// triple over them is tested.
var propSizes = []int{1, 2, 3, 5, 7, 11, 13, 16, 17}

// propEdgeShapes straddle the blocking parameters: one past a micro-tile,
// exactly one cache block, one past a cache block, and multi-block m with
// leftover k.
var propEdgeShapes = [][3]int{
	{gemmMR, gemmNR, gemmKC},               // exactly one micro-tile, full k block
	{gemmMC, gemmNR, gemmKC},               // exactly one MC×KC A block
	{gemmMC + 3, gemmNR + 1, gemmKC + 1},   // one past every boundary at once
	{2*gemmMC + 1, 3, gemmKC},              // multiple m blocks, ragged last
	{5, gemmNC + 1, 7},                     // multiple n blocks, tiny m and k
	{gemmMR - 1, gemmNR - 1, 2*gemmKC + 5}, // pure edge tile, deep k
}

// checkGemmAgainstNaive runs one (shape, transpose) case through Dgemm and
// compares against naiveGemm. The blocked kernel accumulates in a different
// association order (and through FMA on amd64), so comparison is by
// tolerance scaled with the inner-product length.
func checkGemmAgainstNaive(t *testing.T, tA, tB Transpose, m, n, k int) {
	t.Helper()
	const alpha, beta = 1.3, -0.7
	ar, ac := m, k
	if tA == Trans {
		ar, ac = k, m
	}
	br, bc := k, n
	if tB == Trans {
		br, bc = n, k
	}
	seed := uint64(m*1000003 + n*1009 + k*13)
	a := matrix.Random(ar, ac, seed)
	b := matrix.Random(br, bc, seed+1)
	c0 := matrix.Random(m, n, seed+2)

	want := c0.Clone()
	naiveGemm(tA, tB, m, n, k, alpha, a.Data, a.Stride, b.Data, b.Stride, beta, want.Data, want.Stride)
	got := c0.Clone()
	Dgemm(tA, tB, m, n, k, alpha, a.Data, a.Stride, b.Data, b.Stride, beta, got.Data, got.Stride)

	tol := 1e-12 * float64(k+1)
	for j := 0; j < n; j++ {
		for i := 0; i < m; i++ {
			w, g := want.At(i, j), got.At(i, j)
			if math.Abs(w-g) > tol*(math.Abs(w)+1) {
				t.Fatalf("Dgemm(%v,%v) m=%d n=%d k=%d: C(%d,%d) = %v, naive = %v",
					tA, tB, m, n, k, i, j, g, w)
			}
		}
	}
}

func runGemmProperty(t *testing.T, shapes [][3]int) {
	for _, tA := range []Transpose{NoTrans, Trans} {
		for _, tB := range []Transpose{NoTrans, Trans} {
			for _, s := range shapes {
				checkGemmAgainstNaive(t, tA, tB, s[0], s[1], s[2])
			}
		}
	}
}

// gemmPropConfigs runs fn under every combination of execution path
// (serial / forced-parallel) and micro-kernel implementation
// (vectorized / portable Go) available on this machine.
func gemmPropConfigs(t *testing.T, fn func(t *testing.T)) {
	kernels := []bool{useAVXKernel}
	if useAVXKernel {
		kernels = append(kernels, false) // also cover the portable kernel
	}
	for _, avx := range kernels {
		for _, par := range []bool{false, true} {
			name := fmt.Sprintf("kernel=%s/parallel=%v", map[bool]string{true: "avx", false: "go"}[avx], par)
			t.Run(name, func(t *testing.T) {
				origKernel := useAVXKernel
				origProcs := SetMaxProcs(1)
				origThresh := parallelGemmThreshold
				defer func() {
					useAVXKernel = origKernel
					SetMaxProcs(origProcs)
					parallelGemmThreshold = origThresh
				}()
				useAVXKernel = avx
				if par {
					SetMaxProcs(4)
					parallelGemmThreshold = 1
				}
				fn(t)
			})
		}
	}
}

func TestDgemmPropertyOddPrimeSizes(t *testing.T) {
	var shapes [][3]int
	for _, m := range propSizes {
		for _, n := range propSizes {
			for _, k := range propSizes {
				shapes = append(shapes, [3]int{m, n, k})
			}
		}
	}
	gemmPropConfigs(t, func(t *testing.T) { runGemmProperty(t, shapes) })
}

func TestDgemmPropertyBlockBoundaries(t *testing.T) {
	gemmPropConfigs(t, func(t *testing.T) { runGemmProperty(t, propEdgeShapes) })
}

// TestDgemmPropertyPaddedStride checks the blocked kernel against the naive
// one when all three matrices live in larger parent allocations (ld >
// rows), as every View-based call from the LAPACK layer does.
func TestDgemmPropertyPaddedStride(t *testing.T) {
	gemmPropConfigs(t, func(t *testing.T) {
		const m, n, k = 37, 29, 41
		const lda, ldb, ldc = m + 5, k + 3, m + 9
		const alpha, beta = 0.9, 0.4
		a := matrix.Random(lda, k, 51)
		b := matrix.Random(ldb, n, 52)
		c0 := matrix.Random(ldc, n, 53)
		want := c0.Clone()
		naiveGemm(NoTrans, NoTrans, m, n, k, alpha, a.Data, lda, b.Data, ldb, beta, want.Data, ldc)
		got := c0.Clone()
		Dgemm(NoTrans, NoTrans, m, n, k, alpha, a.Data, lda, b.Data, ldb, beta, got.Data, ldc)
		tol := 1e-12 * float64(k+1)
		for j := 0; j < n; j++ {
			for i := 0; i < m; i++ {
				w, g := want.At(i, j), got.At(i, j)
				if math.Abs(w-g) > tol*(math.Abs(w)+1) {
					t.Fatalf("padded-stride C(%d,%d) = %v, naive = %v", i, j, g, w)
				}
			}
		}
		// Rows below the logical m in each column are padding and must be
		// untouched.
		for j := 0; j < n; j++ {
			for i := m; i < ldc; i++ {
				if got.At(i, j) != c0.At(i, j) {
					t.Fatalf("Dgemm wrote past row %d into padding at (%d,%d)", m, i, j)
				}
			}
		}
	})
}
