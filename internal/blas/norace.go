//go:build !race

package blas

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = false
