package blas

import (
	"errors"
	"fmt"
	"math"
	"testing"

	"repro/internal/matrix"
)

// Kernel-equivalence + injection harness for the fused-ABFT substrate.
//
// Equivalence: DgemmFT must be bitwise-identical to Dgemm — not close,
// identical — because every digest-invariance guarantee in the repo
// (K=1 vs K=2, lookahead on/off, fail-stop recovery) rests on the BLAS
// layer being deterministic. The fused checksum work must therefore be a
// pure side computation.
//
// Injection: a planted bit flip in a packed panel or the accumulated C
// tile must be caught by the epilogue verify, across mantissa, exponent,
// and sign bits; non-finite totals must surface as NonFinite detections,
// never silence (the PR 3 exponent-bit lesson).

// checkFusedMatchesPlain runs one (shape, transpose) case through both
// kernels and requires bitwise-equal C and a clean report.
func checkFusedMatchesPlain(t *testing.T, tA, tB Transpose, m, n, k int) {
	t.Helper()
	const alpha, beta = 1.3, -0.7
	ar, ac := m, k
	if tA == Trans {
		ar, ac = k, m
	}
	br, bc := k, n
	if tB == Trans {
		br, bc = n, k
	}
	seed := uint64(m*2000003 + n*2011 + k*17)
	a := matrix.Random(ar, ac, seed)
	b := matrix.Random(br, bc, seed+1)
	c0 := matrix.Random(m, n, seed+2)

	want := c0.Clone()
	Dgemm(tA, tB, m, n, k, alpha, a.Data, a.Stride, b.Data, b.Stride, beta, want.Data, want.Stride)
	got := c0.Clone()
	res, err := DgemmFT(tA, tB, m, n, k, alpha, a.Data, a.Stride, b.Data, b.Stride, beta, got.Data, got.Stride)
	if err != nil {
		t.Fatalf("DgemmFT(%v,%v) m=%d n=%d k=%d: false positive: %v (res %+v)", tA, tB, m, n, k, err, res)
	}
	if res.Checks == 0 {
		t.Fatalf("DgemmFT(%v,%v) m=%d n=%d k=%d: ran zero checks", tA, tB, m, n, k)
	}
	if !want.Equal(got) {
		t.Fatalf("DgemmFT(%v,%v) m=%d n=%d k=%d differs bitwise from Dgemm", tA, tB, m, n, k)
	}
}

func runFusedProperty(t *testing.T, shapes [][3]int) {
	for _, tA := range []Transpose{NoTrans, Trans} {
		for _, tB := range []Transpose{NoTrans, Trans} {
			for _, s := range shapes {
				checkFusedMatchesPlain(t, tA, tB, s[0], s[1], s[2])
			}
		}
	}
}

// TestDgemmPropertyFusedBitwise: the fused-ABFT kernel is bitwise-equal
// to plain Dgemm over the odd/prime size grid and the cache-block
// boundary shapes, on the serial and forced-pool paths, under both
// micro-kernel implementations.
func TestDgemmPropertyFusedBitwise(t *testing.T) {
	var shapes [][3]int
	for _, m := range propSizes {
		for _, n := range propSizes {
			for _, k := range propSizes {
				shapes = append(shapes, [3]int{m, n, k})
			}
		}
	}
	shapes = append(shapes, propEdgeShapes...)
	gemmPropConfigs(t, func(t *testing.T) { runFusedProperty(t, shapes) })
}

// TestDgemmPropertyFusedReportDeterministic: the FTResult itself — not
// just C — must be identical at every SetMaxProcs value, since the ft
// layer journals its counts.
func TestDgemmPropertyFusedReportDeterministic(t *testing.T) {
	const m, n, k = gemmMC + 37, gemmNC + 11, 2*gemmKC + 5
	a := matrix.Random(m, k, 61)
	b := matrix.Random(k, n, 62)
	c0 := matrix.Random(m, n, 63)

	origProcs := SetMaxProcs(1)
	origThresh := parallelGemmThreshold
	defer func() {
		SetMaxProcs(origProcs)
		parallelGemmThreshold = origThresh
	}()
	parallelGemmThreshold = 1

	var base FTResult
	var baseC *matrix.Matrix
	for _, p := range []int{1, 2, 3, 7, 16} {
		SetMaxProcs(p)
		got := c0.Clone()
		res, err := DgemmFT(NoTrans, NoTrans, m, n, k, 1.1, a.Data, a.Stride, b.Data, b.Stride, 0.4, got.Data, got.Stride)
		if err != nil {
			t.Fatalf("procs=%d: false positive: %v", p, err)
		}
		if p == 1 {
			base, baseC = res, got
			continue
		}
		if res.Checks != base.Checks || res.Detections != base.Detections ||
			math.Float64bits(res.MaxResidual) != math.Float64bits(base.MaxResidual) ||
			res.NonFinite != base.NonFinite {
			t.Fatalf("procs=%d: FTResult %+v differs from serial %+v", p, res, base)
		}
		if !baseC.Equal(got) {
			t.Fatalf("procs=%d: fused C differs bitwise from serial", p)
		}
	}
}

// injectOnce arms a hook that fires exactly once.
func injectOnce(fire func()) func() bool {
	armed := true
	return func() bool {
		if !armed {
			return false
		}
		armed = false
		fire()
		return true
	}
}

// runFusedInjection runs DgemmFT with a one-shot corruption planted via
// the given hook setter and returns the report.
func runFusedInjection(t *testing.T, m, n, k int, plant func()) FTResult {
	t.Helper()
	a := matrix.Random(m, k, 71)
	b := matrix.Random(k, n, 72)
	c := matrix.Random(m, n, 73)
	plant()
	defer func() {
		ftTestCorruptPacked = nil
		ftTestCorruptTile = nil
	}()
	res, err := DgemmFT(NoTrans, NoTrans, m, n, k, 1.0, a.Data, a.Stride, b.Data, b.Stride, 1.0, c.Data, c.Stride)
	if res.Detections > 0 && err == nil {
		t.Fatal("detections reported but error is nil: silent detection")
	}
	if res.Detections == 0 && err != nil {
		t.Fatalf("no detections but error %v", err)
	}
	if err != nil && !errors.Is(err, ErrFTDetected) {
		t.Fatalf("unexpected error type: %v", err)
	}
	return res
}

// TestDgemmFTInjectionPackedBitSweep flips each bit position of one
// packed-A and one packed-B element in turn — mantissa bits down to the
// detectability floor, every exponent bit, and the sign — and requires
// the epilogue verify to catch every one. Exponent-bit flips that push
// totals to ±Inf/NaN must be flagged NonFinite, never silently passed.
func TestDgemmFTInjectionPackedBitSweep(t *testing.T) {
	origProcs := SetMaxProcs(1)
	defer SetMaxProcs(origProcs)
	const m, n, k = 48, 36, 24

	var bits []uint
	for b := uint(30); b < 64; b++ { // high mantissa, exponent 52–62, sign 63
		bits = append(bits, b)
	}
	for _, target := range []string{"packedA", "packedB"} {
		for _, bit := range bits {
			t.Run(fmt.Sprintf("%s/bit%d", target, bit), func(t *testing.T) {
				res := runFusedInjection(t, m, n, k, func() {
					fire := injectOnce(func() {})
					ftTestCorruptPacked = func(bufA, bufB []float64) {
						if !fire() {
							return
						}
						buf := bufA
						if target == "packedB" {
							buf = bufB
						}
						// element (2, k-step 1) of the first micro-panel
						buf[1*4+2] = math.Float64frombits(math.Float64bits(buf[1*4+2]) ^ (1 << bit))
					}
				})
				if res.Detections == 0 {
					t.Fatalf("bit %d flip in %s not detected (maxResidual %.3g)", bit, target, res.MaxResidual)
				}
				if res.NonFinite && res.MaxResidual != math.Inf(1) {
					t.Fatalf("NonFinite detection must pin MaxResidual to +Inf, got %v", res.MaxResidual)
				}
			})
		}
	}
}

// TestDgemmFTInjectionTileBitSweep plants the flip in the accumulated C
// tile after the micro-kernel sweeps but before the epilogue verify —
// the "fault in the output while hot in cache" case.
func TestDgemmFTInjectionTileBitSweep(t *testing.T) {
	origProcs := SetMaxProcs(1)
	defer SetMaxProcs(origProcs)
	const m, n, k = 48, 36, 24
	for bit := uint(30); bit < 64; bit++ {
		t.Run(fmt.Sprintf("bit%d", bit), func(t *testing.T) {
			res := runFusedInjection(t, m, n, k, func() {
				fire := injectOnce(func() {})
				ftTestCorruptTile = func(ct []float64, ldc, mc, nc int) {
					if !fire() {
						return
					}
					ct[3*ldc+5] = math.Float64frombits(math.Float64bits(ct[3*ldc+5]) ^ (1 << bit))
				}
			})
			if res.Detections == 0 {
				t.Fatalf("bit %d tile flip not detected (maxResidual %.3g)", bit, res.MaxResidual)
			}
			// A tile flip perturbs one row sum and one column sum; both
			// directions should fire for significant bits.
			if res.Detections < 1 || res.Checks != m+n {
				t.Fatalf("checks=%d detections=%d, want %d checks", res.Checks, res.Detections, m+n)
			}
		})
	}
}

// TestDgemmFTNonFiniteNeverSilent forces an exponent flip that drives the
// tile to ±Inf and requires the full non-finite contract: error returned,
// NonFinite set, MaxResidual pinned to +Inf.
func TestDgemmFTNonFiniteNeverSilent(t *testing.T) {
	origProcs := SetMaxProcs(1)
	defer SetMaxProcs(origProcs)
	const m, n, k = 16, 16, 8
	a := matrix.Random(m, k, 81)
	b := matrix.Random(k, n, 82)
	c := matrix.Random(m, n, 83)
	fire := injectOnce(func() {})
	ftTestCorruptTile = func(ct []float64, ldc, mc, nc int) {
		if !fire() {
			return
		}
		ct[0] = math.Inf(1)
	}
	defer func() { ftTestCorruptTile = nil }()
	res, err := DgemmFT(NoTrans, NoTrans, m, n, k, 1.0, a.Data, a.Stride, b.Data, b.Stride, 0.0, c.Data, c.Stride)
	if !errors.Is(err, ErrFTDetected) {
		t.Fatalf("non-finite tile returned err=%v, want ErrFTDetected", err)
	}
	if !res.NonFinite {
		t.Fatal("NonFinite not set for an Inf tile element")
	}
	if res.MaxResidual != math.Inf(1) {
		t.Fatalf("MaxResidual = %v, want +Inf", res.MaxResidual)
	}
}

// TestDgemvFTDMR: dual modular redundancy on Dgemv catches the flips the
// checksum path cannot — a single-ulp mantissa flip far below any
// norm-scaled threshold — and stays quiet on clean runs, for both
// transpose cases and strided y.
func TestDgemvFTDMR(t *testing.T) {
	const m, n = 37, 29
	a := matrix.Random(m, n, 91)
	x := matrix.Random(n, 1, 92)
	xT := matrix.Random(m, 1, 93)
	for _, tc := range []struct {
		name  string
		trans Transpose
		incY  int
	}{
		{"notrans", NoTrans, 1},
		{"trans", Trans, 1},
		{"notrans-strided", NoTrans, 3},
	} {
		t.Run(tc.name, func(t *testing.T) {
			lenY := m
			xx := x
			if tc.trans == Trans {
				lenY = n
				xx = xT
			}
			y := make([]float64, lenY*tc.incY)
			for i := range y {
				y[i] = 0.25 * float64(i)
			}
			// Clean run: bitwise agreement, no detections.
			res, err := DgemvFT(tc.trans, m, n, 1.1, a.Data, a.Stride, xx.Data, 1, 0.6, y, tc.incY)
			if err != nil || res.Detections != 0 {
				t.Fatalf("clean DMR run: err=%v res=%+v", err, res)
			}
			if res.Checks != lenY {
				t.Fatalf("checks=%d, want %d", res.Checks, lenY)
			}
			// Single-ulp flip in the primary between the runs.
			ftTestCorruptDMR = func(out []float64, inc int) {
				out[2*inc] = math.Float64frombits(math.Float64bits(out[2*inc]) ^ 1)
			}
			defer func() { ftTestCorruptDMR = nil }()
			res, err = DgemvFT(tc.trans, m, n, 1.1, a.Data, a.Stride, xx.Data, 1, 0.6, y, tc.incY)
			if !errors.Is(err, ErrFTDetected) {
				t.Fatalf("ulp flip not detected: err=%v res=%+v", err, res)
			}
			if res.Detections != 1 {
				t.Fatalf("detections=%d, want exactly the flipped element", res.Detections)
			}
		})
	}
}

// TestDgerFTDMR: same contract for the rank-1 update, including the
// non-finite flag when the flip lands in an exponent bit.
func TestDgerFTDMR(t *testing.T) {
	const m, n = 23, 17
	x := matrix.Random(m, 1, 94)
	y := matrix.Random(n, 1, 95)
	a0 := matrix.Random(m, n, 96)

	a := a0.Clone()
	res, err := DgerFT(m, n, -0.8, x.Data, 1, y.Data, 1, a.Data, a.Stride)
	if err != nil || res.Detections != 0 {
		t.Fatalf("clean DgerFT run: err=%v res=%+v", err, res)
	}
	want := a0.Clone()
	Dger(m, n, -0.8, x.Data, 1, y.Data, 1, want.Data, want.Stride)
	if !want.Equal(a) {
		t.Fatal("DgerFT differs bitwise from Dger")
	}

	a = a0.Clone()
	ftTestCorruptDMR = func(out []float64, inc int) {
		out[5] = math.Float64frombits(math.Float64bits(out[5]) ^ 1)
	}
	res, err = DgerFT(m, n, -0.8, x.Data, 1, y.Data, 1, a.Data, a.Stride)
	ftTestCorruptDMR = nil
	if !errors.Is(err, ErrFTDetected) || res.Detections != 1 {
		t.Fatalf("ulp flip in Dger output not detected: err=%v res=%+v", err, res)
	}

	a = a0.Clone()
	ftTestCorruptDMR = func(out []float64, inc int) {
		out[5] = math.Float64frombits(math.Float64bits(out[5]) ^ (1 << 62))
	}
	res, err = DgerFT(m, n, -0.8, x.Data, 1, y.Data, 1, a.Data, a.Stride)
	ftTestCorruptDMR = nil
	if !errors.Is(err, ErrFTDetected) {
		t.Fatalf("exponent flip not detected: err=%v", err)
	}
	if math.IsInf(a.Data[5], 0) || math.IsNaN(a.Data[5]) {
		if !res.NonFinite {
			t.Fatal("non-finite DMR mismatch must set NonFinite")
		}
	}
}

// TestFTGemmOverheadFracModel pins the modeled premium: a few percent at
// the 512³ bench shape, monotonically worse for thin shapes, zero for
// empty problems.
func TestFTGemmOverheadFracModel(t *testing.T) {
	if f := FTGemmOverheadFrac(512, 512, 512); f <= 0 || f > 0.08 {
		t.Fatalf("512^3 modeled overhead %.4f outside (0, 8%%]", f)
	}
	if f := FTGemmOverheadFrac(0, 4, 4); f != 0 {
		t.Fatalf("empty problem overhead %v, want 0", f)
	}
	if FTGemmOverheadFrac(8, 8, 256) <= FTGemmOverheadFrac(512, 512, 256) {
		t.Fatal("small tiles must carry a larger relative premium")
	}
}
