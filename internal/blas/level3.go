package blas

// Level-3 BLAS. Dgemm is a BLIS-style cache-blocked kernel: MC/KC/NC
// blocking over packed panels of op(A) and op(B) (pack.go), a
// register-blocked MR×NR micro-kernel (microkernel.go), and a 2-D shard of
// the tile grid across the shared worker pool (pool.go) for large
// problems. Dtrmm dispatches onto the same pool — by columns when the
// triangular factor is on the left, by rows when it is on the right.

// Parallelism thresholds in flops (2mnk for Dgemm). Below them the shard
// bookkeeping dominates and the routines stay on their serial path. They
// are variables so the property tests can force the pool path at tiny
// sizes.
var (
	parallelGemmThreshold = 1 << 21
	parallelTrmmThreshold = 1 << 21
)

// Dgemm computes C := alpha*op(A)*op(B) + beta*C where op(A) is m×k and
// op(B) is k×n.
//
// The computation is tiled over an ⌈m/MC⌉ × ⌈n/NC⌉ grid of C blocks; each
// tile packs its own A/B panels (recycled through pools) and runs the
// micro-kernel over them. Above parallelGemmThreshold the tile grid is
// sharded across the worker pool in both dimensions, so tall-skinny panel
// updates (m large, n small) parallelize as well as square products.
// Results are bitwise identical for every SetMaxProcs value.
func Dgemm(tA, tB Transpose, m, n, k int, alpha float64, a []float64, lda int, b []float64, ldb int, beta float64, c []float64, ldc int) {
	ar, ac := m, k
	if tA == Trans {
		ar, ac = k, m
	}
	br, bc := k, n
	if tB == Trans {
		br, bc = n, k
	}
	checkMatrix("Dgemm", ar, ac, lda, a)
	checkMatrix("Dgemm", br, bc, ldb, b)
	checkMatrix("Dgemm", m, n, ldc, c)
	if m == 0 || n == 0 {
		return
	}
	if alpha == 0 || k == 0 {
		scaleCols(m, n, beta, c, ldc, 0, n)
		return
	}
	if done := opTimer("gemm", 2*float64(m)*float64(n)*float64(k)); done != nil {
		defer done()
	}
	mBlocks := (m + gemmMC - 1) / gemmMC
	nBlocks := (n + gemmNC - 1) / gemmNC
	tile := func(t int) {
		ic := (t % mBlocks) * gemmMC
		jc := (t / mBlocks) * gemmNC
		gemmTile(tA, tB, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc, ic, jc)
	}
	tasks := mBlocks * nBlocks
	if procs() > 1 && tasks > 1 && 2*m*n*k >= parallelGemmThreshold {
		parallelFor(tasks, tile)
		return
	}
	for t := 0; t < tasks; t++ {
		tile(t)
	}
}

// gemmTile computes the MC×NC (or smaller, at the fringe) block of C with
// top-left element (ic, jc): it applies beta to the block once, then
// accumulates alpha·op(A)·op(B) over KC-deep packed panel pairs. Tiles are
// disjoint in C, so any number of them may run concurrently.
func gemmTile(tA, tB Transpose, m, n, k int, alpha float64, a []float64, lda int, b []float64, ldb int, beta float64, c []float64, ldc, ic, jc int) {
	mc := min(gemmMC, m-ic)
	nc := min(gemmNC, n-jc)
	ct := c[jc*ldc+ic:]
	scaleBlock(mc, nc, beta, ct, ldc)
	bufA := packAPool.Get().(*[]float64)
	bufB := packBPool.Get().(*[]float64)
	for pc := 0; pc < k; pc += gemmKC {
		kc := min(gemmKC, k-pc)
		packB(tB, b, ldb, pc, jc, kc, nc, *bufB)
		packA(tA, a, lda, ic, pc, mc, kc, *bufA)
		macroKernel(mc, nc, kc, alpha, *bufA, *bufB, ct, ldc)
	}
	packAPool.Put(bufA)
	packBPool.Put(bufB)
}

// scaleBlock scales the mc×nc block at c (column stride ldc) by beta,
// overwriting with zeros when beta == 0 (reference semantics: beta == 0
// must clear NaNs).
func scaleBlock(mc, nc int, beta float64, c []float64, ldc int) {
	if beta == 1 {
		return
	}
	for j := 0; j < nc; j++ {
		cc := c[j*ldc : j*ldc+mc]
		if beta == 0 {
			for i := range cc {
				cc[i] = 0
			}
		} else {
			for i := range cc {
				cc[i] *= beta
			}
		}
	}
}

// naiveGemm is the pre-blocking Dgemm kernel (one axpy or dot loop nest per
// transpose case), kept private as the oracle for the property tests and
// the baseline the BENCH_blas.json speedups are measured against.
func naiveGemm(tA, tB Transpose, m, n, k int, alpha float64, a []float64, lda int, b []float64, ldb int, beta float64, c []float64, ldc int) {
	if m == 0 || n == 0 {
		return
	}
	if alpha == 0 || k == 0 {
		scaleCols(m, n, beta, c, ldc, 0, n)
		return
	}
	naiveGemmCols(tA, tB, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc, 0, n)
}

// naiveGemmCols computes columns [j0, j1) of the Dgemm update cache-naively.
func naiveGemmCols(tA, tB Transpose, m, n, k int, alpha float64, a []float64, lda int, b []float64, ldb int, beta float64, c []float64, ldc int, j0, j1 int) {
	scaleCols(m, n, beta, c, ldc, j0, j1)
	switch {
	case tA == NoTrans && tB == NoTrans:
		// C(:,j) += alpha * Σ_l B(l,j) * A(:,l)
		for j := j0; j < j1; j++ {
			cc := c[j*ldc : j*ldc+m]
			for l := 0; l < k; l++ {
				t := alpha * b[j*ldb+l]
				if t == 0 {
					continue
				}
				ac := a[l*lda : l*lda+m]
				for i := range cc {
					cc[i] += t * ac[i]
				}
			}
		}
	case tA == NoTrans && tB == Trans:
		// C(:,j) += alpha * Σ_l B(j,l) * A(:,l)
		for j := j0; j < j1; j++ {
			cc := c[j*ldc : j*ldc+m]
			for l := 0; l < k; l++ {
				t := alpha * b[l*ldb+j]
				if t == 0 {
					continue
				}
				ac := a[l*lda : l*lda+m]
				for i := range cc {
					cc[i] += t * ac[i]
				}
			}
		}
	case tA == Trans && tB == NoTrans:
		// C(i,j) += alpha * dot(A(:,i), B(:,j))
		for j := j0; j < j1; j++ {
			bc := b[j*ldb : j*ldb+k]
			cc := c[j*ldc : j*ldc+m]
			for i := 0; i < m; i++ {
				ac := a[i*lda : i*lda+k]
				sum := 0.0
				for l := range bc {
					sum += ac[l] * bc[l]
				}
				cc[i] += alpha * sum
			}
		}
	default: // Trans, Trans
		// C(i,j) += alpha * Σ_l A(l,i) * B(j,l)
		for j := j0; j < j1; j++ {
			cc := c[j*ldc : j*ldc+m]
			for i := 0; i < m; i++ {
				ac := a[i*lda : i*lda+k]
				sum := 0.0
				for l := 0; l < k; l++ {
					sum += ac[l] * b[l*ldb+j]
				}
				cc[i] += alpha * sum
			}
		}
	}
}

func scaleCols(m, n int, beta float64, c []float64, ldc, j0, j1 int) {
	if beta == 1 {
		return
	}
	for j := j0; j < j1; j++ {
		cc := c[j*ldc : j*ldc+m]
		if beta == 0 {
			for i := range cc {
				cc[i] = 0
			}
		} else {
			for i := range cc {
				cc[i] *= beta
			}
		}
	}
}

// Dtrmm computes B := alpha*op(A)*B (Left) or B := alpha*B*op(A) (Right)
// where A is triangular and B is m×n.
//
// For side == Left each column of B transforms independently, so large
// problems shard columns across the worker pool; for side == Right each
// row transforms independently and rows are sharded instead. Either way
// every B element keeps its serial operation order.
func Dtrmm(side Side, uplo Uplo, trans Transpose, diag Diag, m, n int, alpha float64, a []float64, lda int, b []float64, ldb int) {
	na := m
	if side == Right {
		na = n
	}
	checkMatrix("Dtrmm", na, na, lda, a)
	checkMatrix("Dtrmm", m, n, ldb, b)
	if m == 0 || n == 0 {
		return
	}
	if alpha == 0 {
		scaleCols(m, n, 0, b, ldb, 0, n)
		return
	}
	if done := opTimer("trmm", float64(m)*float64(n)*float64(na)); done != nil {
		defer done()
	}
	span := n // Left: independent columns
	if side == Right {
		span = m // Right: independent rows
	}
	p := procs()
	if p > 1 && m*n*na >= parallelTrmmThreshold && span > 1 {
		chunks := min(p, span)
		parallelFor(chunks, func(w int) {
			lo := w * span / chunks
			hi := (w + 1) * span / chunks
			trmmRange(side, uplo, trans, diag, m, n, alpha, a, lda, b, ldb, lo, hi)
		})
		return
	}
	trmmRange(side, uplo, trans, diag, m, n, alpha, a, lda, b, ldb, 0, span)
}

// trmmRange applies the Dtrmm update to columns [lo, hi) of B when side ==
// Left, or to rows [lo, hi) when side == Right.
func trmmRange(side Side, uplo Uplo, trans Transpose, diag Diag, m, n int, alpha float64, a []float64, lda int, b []float64, ldb int, lo, hi int) {
	nonUnit := diag == NonUnit
	switch {
	case side == Left && trans == NoTrans && uplo == Upper:
		for j := lo; j < hi; j++ {
			bc := b[j*ldb:]
			for k := 0; k < m; k++ {
				if bc[k] == 0 {
					continue
				}
				t := alpha * bc[k]
				ac := a[k*lda:]
				for i := 0; i < k; i++ {
					bc[i] += t * ac[i]
				}
				if nonUnit {
					t *= ac[k]
				}
				bc[k] = t
			}
		}
	case side == Left && trans == NoTrans && uplo == Lower:
		for j := lo; j < hi; j++ {
			bc := b[j*ldb:]
			for k := m - 1; k >= 0; k-- {
				if bc[k] == 0 {
					continue
				}
				t := alpha * bc[k]
				ac := a[k*lda:]
				bc[k] = t
				if nonUnit {
					bc[k] *= ac[k]
				}
				for i := k + 1; i < m; i++ {
					bc[i] += t * ac[i]
				}
			}
		}
	case side == Left && trans == Trans && uplo == Upper:
		for j := lo; j < hi; j++ {
			bc := b[j*ldb:]
			for i := m - 1; i >= 0; i-- {
				ac := a[i*lda:]
				t := bc[i]
				if nonUnit {
					t *= ac[i]
				}
				for k := 0; k < i; k++ {
					t += ac[k] * bc[k]
				}
				bc[i] = alpha * t
			}
		}
	case side == Left && trans == Trans && uplo == Lower:
		for j := lo; j < hi; j++ {
			bc := b[j*ldb:]
			for i := 0; i < m; i++ {
				ac := a[i*lda:]
				t := bc[i]
				if nonUnit {
					t *= ac[i]
				}
				for k := i + 1; k < m; k++ {
					t += ac[k] * bc[k]
				}
				bc[i] = alpha * t
			}
		}
	case side == Right && trans == NoTrans && uplo == Upper:
		for j := n - 1; j >= 0; j-- {
			t := alpha
			if nonUnit {
				t *= a[j*lda+j]
			}
			bj := b[j*ldb+lo : j*ldb+hi]
			if t != 1 {
				for i := range bj {
					bj[i] *= t
				}
			}
			for k := 0; k < j; k++ {
				if a[j*lda+k] == 0 {
					continue
				}
				t = alpha * a[j*lda+k]
				bk := b[k*ldb+lo : k*ldb+hi]
				for i := range bj {
					bj[i] += t * bk[i]
				}
			}
		}
	case side == Right && trans == NoTrans && uplo == Lower:
		for j := 0; j < n; j++ {
			t := alpha
			if nonUnit {
				t *= a[j*lda+j]
			}
			bj := b[j*ldb+lo : j*ldb+hi]
			if t != 1 {
				for i := range bj {
					bj[i] *= t
				}
			}
			for k := j + 1; k < n; k++ {
				if a[j*lda+k] == 0 {
					continue
				}
				t = alpha * a[j*lda+k]
				bk := b[k*ldb+lo : k*ldb+hi]
				for i := range bj {
					bj[i] += t * bk[i]
				}
			}
		}
	case side == Right && trans == Trans && uplo == Upper:
		for k := 0; k < n; k++ {
			ak := a[k*lda:]
			bk := b[k*ldb+lo : k*ldb+hi]
			for j := 0; j < k; j++ {
				if ak[j] == 0 {
					continue
				}
				t := alpha * ak[j]
				bj := b[j*ldb+lo : j*ldb+hi]
				for i := range bj {
					bj[i] += t * bk[i]
				}
			}
			t := alpha
			if nonUnit {
				t *= ak[k]
			}
			if t != 1 {
				for i := range bk {
					bk[i] *= t
				}
			}
		}
	default: // Right, Trans, Lower
		for k := n - 1; k >= 0; k-- {
			ak := a[k*lda:]
			bk := b[k*ldb+lo : k*ldb+hi]
			for j := k + 1; j < n; j++ {
				if ak[j] == 0 {
					continue
				}
				t := alpha * ak[j]
				bj := b[j*ldb+lo : j*ldb+hi]
				for i := range bj {
					bj[i] += t * bk[i]
				}
			}
			t := alpha
			if nonUnit {
				t *= ak[k]
			}
			if t != 1 {
				for i := range bk {
					bk[i] *= t
				}
			}
		}
	}
}

// Dtrsm solves op(A)*X = alpha*B (Left) or X*op(A) = alpha*B (Right) for X,
// overwriting B with the solution. A is triangular, B is m×n. Dtrsm sits
// on no hot path of the reduction and stays serial.
func Dtrsm(side Side, uplo Uplo, trans Transpose, diag Diag, m, n int, alpha float64, a []float64, lda int, b []float64, ldb int) {
	na := m
	if side == Right {
		na = n
	}
	checkMatrix("Dtrsm", na, na, lda, a)
	checkMatrix("Dtrsm", m, n, ldb, b)
	if m == 0 || n == 0 {
		return
	}
	if alpha == 0 {
		scaleCols(m, n, 0, b, ldb, 0, n)
		return
	}
	nonUnit := diag == NonUnit
	switch {
	case side == Left && trans == NoTrans && uplo == Upper:
		for j := 0; j < n; j++ {
			bc := b[j*ldb:]
			if alpha != 1 {
				for i := 0; i < m; i++ {
					bc[i] *= alpha
				}
			}
			for k := m - 1; k >= 0; k-- {
				if bc[k] == 0 {
					continue
				}
				ac := a[k*lda:]
				if nonUnit {
					bc[k] /= ac[k]
				}
				t := bc[k]
				for i := 0; i < k; i++ {
					bc[i] -= t * ac[i]
				}
			}
		}
	case side == Left && trans == NoTrans && uplo == Lower:
		for j := 0; j < n; j++ {
			bc := b[j*ldb:]
			if alpha != 1 {
				for i := 0; i < m; i++ {
					bc[i] *= alpha
				}
			}
			for k := 0; k < m; k++ {
				if bc[k] == 0 {
					continue
				}
				ac := a[k*lda:]
				if nonUnit {
					bc[k] /= ac[k]
				}
				t := bc[k]
				for i := k + 1; i < m; i++ {
					bc[i] -= t * ac[i]
				}
			}
		}
	case side == Left && trans == Trans && uplo == Upper:
		for j := 0; j < n; j++ {
			bc := b[j*ldb:]
			for i := 0; i < m; i++ {
				ac := a[i*lda:]
				t := alpha * bc[i]
				for k := 0; k < i; k++ {
					t -= ac[k] * bc[k]
				}
				if nonUnit {
					t /= ac[i]
				}
				bc[i] = t
			}
		}
	case side == Left && trans == Trans && uplo == Lower:
		for j := 0; j < n; j++ {
			bc := b[j*ldb:]
			for i := m - 1; i >= 0; i-- {
				ac := a[i*lda:]
				t := alpha * bc[i]
				for k := i + 1; k < m; k++ {
					t -= ac[k] * bc[k]
				}
				if nonUnit {
					t /= ac[i]
				}
				bc[i] = t
			}
		}
	case side == Right && trans == NoTrans && uplo == Upper:
		for j := 0; j < n; j++ {
			bj := b[j*ldb : j*ldb+m]
			if alpha != 1 {
				for i := range bj {
					bj[i] *= alpha
				}
			}
			for k := 0; k < j; k++ {
				if a[j*lda+k] == 0 {
					continue
				}
				t := a[j*lda+k]
				bk := b[k*ldb : k*ldb+m]
				for i := range bj {
					bj[i] -= t * bk[i]
				}
			}
			if nonUnit {
				t := 1 / a[j*lda+j]
				for i := range bj {
					bj[i] *= t
				}
			}
		}
	case side == Right && trans == NoTrans && uplo == Lower:
		for j := n - 1; j >= 0; j-- {
			bj := b[j*ldb : j*ldb+m]
			if alpha != 1 {
				for i := range bj {
					bj[i] *= alpha
				}
			}
			for k := j + 1; k < n; k++ {
				if a[j*lda+k] == 0 {
					continue
				}
				t := a[j*lda+k]
				bk := b[k*ldb : k*ldb+m]
				for i := range bj {
					bj[i] -= t * bk[i]
				}
			}
			if nonUnit {
				t := 1 / a[j*lda+j]
				for i := range bj {
					bj[i] *= t
				}
			}
		}
	case side == Right && trans == Trans && uplo == Upper:
		for k := n - 1; k >= 0; k-- {
			ak := a[k*lda:]
			bk := b[k*ldb : k*ldb+m]
			if nonUnit {
				t := 1 / ak[k]
				for i := range bk {
					bk[i] *= t
				}
			}
			for j := 0; j < k; j++ {
				if ak[j] == 0 {
					continue
				}
				t := ak[j]
				bj := b[j*ldb : j*ldb+m]
				for i := range bj {
					bj[i] -= t * bk[i]
				}
			}
			if alpha != 1 {
				for i := range bk {
					bk[i] *= alpha
				}
			}
		}
	default: // Right, Trans, Lower
		for k := 0; k < n; k++ {
			ak := a[k*lda:]
			bk := b[k*ldb : k*ldb+m]
			if nonUnit {
				t := 1 / ak[k]
				for i := range bk {
					bk[i] *= t
				}
			}
			for j := k + 1; j < n; j++ {
				if ak[j] == 0 {
					continue
				}
				t := ak[j]
				bj := b[j*ldb : j*ldb+m]
				for i := range bj {
					bj[i] -= t * bk[i]
				}
			}
			if alpha != 1 {
				for i := range bk {
					bk[i] *= alpha
				}
			}
		}
	}
}
