package blas

import (
	"runtime"
	"sync"
)

// maxProcs bounds the number of goroutines Dgemm fans out to. It is a
// variable rather than a constant so the simulated-GPU package can pin the
// "device" kernels to a chosen width and tests can force serial execution.
var (
	maxProcsMu sync.RWMutex
	maxProcs   = runtime.GOMAXPROCS(0)
)

// SetMaxProcs sets the parallelism ceiling for Dgemm and returns the
// previous value. n < 1 is treated as 1.
func SetMaxProcs(n int) int {
	if n < 1 {
		n = 1
	}
	maxProcsMu.Lock()
	prev := maxProcs
	maxProcs = n
	maxProcsMu.Unlock()
	return prev
}

func procs() int {
	maxProcsMu.RLock()
	defer maxProcsMu.RUnlock()
	return maxProcs
}

// parallelGemmThreshold is the flop count (2mnk) above which Dgemm shards
// columns of C across goroutines. Below it the goroutine overhead dominates.
const parallelGemmThreshold = 1 << 21

// Dgemm computes C := alpha*op(A)*op(B) + beta*C where op(A) is m×k and
// op(B) is k×n.
func Dgemm(tA, tB Transpose, m, n, k int, alpha float64, a []float64, lda int, b []float64, ldb int, beta float64, c []float64, ldc int) {
	ar, ac := m, k
	if tA == Trans {
		ar, ac = k, m
	}
	br, bc := k, n
	if tB == Trans {
		br, bc = n, k
	}
	checkMatrix("Dgemm", ar, ac, lda, a)
	checkMatrix("Dgemm", br, bc, ldb, b)
	checkMatrix("Dgemm", m, n, ldc, c)
	if m == 0 || n == 0 {
		return
	}
	if alpha == 0 || k == 0 {
		scaleCols(m, n, beta, c, ldc, 0, n)
		return
	}
	p := procs()
	if p > 1 && 2*m*n*k >= parallelGemmThreshold && n > 1 {
		chunks := p
		if chunks > n {
			chunks = n
		}
		var wg sync.WaitGroup
		for w := 0; w < chunks; w++ {
			j0 := w * n / chunks
			j1 := (w + 1) * n / chunks
			if j0 == j1 {
				continue
			}
			wg.Add(1)
			go func(j0, j1 int) {
				defer wg.Done()
				gemmCols(tA, tB, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc, j0, j1)
			}(j0, j1)
		}
		wg.Wait()
		return
	}
	gemmCols(tA, tB, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc, 0, n)
}

// gemmCols computes columns [j0, j1) of the Dgemm update.
func gemmCols(tA, tB Transpose, m, n, k int, alpha float64, a []float64, lda int, b []float64, ldb int, beta float64, c []float64, ldc int, j0, j1 int) {
	scaleCols(m, n, beta, c, ldc, j0, j1)
	switch {
	case tA == NoTrans && tB == NoTrans:
		// C(:,j) += alpha * Σ_l B(l,j) * A(:,l)
		for j := j0; j < j1; j++ {
			cc := c[j*ldc : j*ldc+m]
			for l := 0; l < k; l++ {
				t := alpha * b[j*ldb+l]
				if t == 0 {
					continue
				}
				ac := a[l*lda : l*lda+m]
				for i := range cc {
					cc[i] += t * ac[i]
				}
			}
		}
	case tA == NoTrans && tB == Trans:
		// C(:,j) += alpha * Σ_l B(j,l) * A(:,l)
		for j := j0; j < j1; j++ {
			cc := c[j*ldc : j*ldc+m]
			for l := 0; l < k; l++ {
				t := alpha * b[l*ldb+j]
				if t == 0 {
					continue
				}
				ac := a[l*lda : l*lda+m]
				for i := range cc {
					cc[i] += t * ac[i]
				}
			}
		}
	case tA == Trans && tB == NoTrans:
		// C(i,j) += alpha * dot(A(:,i), B(:,j))
		for j := j0; j < j1; j++ {
			bc := b[j*ldb : j*ldb+k]
			cc := c[j*ldc : j*ldc+m]
			for i := 0; i < m; i++ {
				ac := a[i*lda : i*lda+k]
				sum := 0.0
				for l := range bc {
					sum += ac[l] * bc[l]
				}
				cc[i] += alpha * sum
			}
		}
	default: // Trans, Trans
		// C(i,j) += alpha * Σ_l A(l,i) * B(j,l)
		for j := j0; j < j1; j++ {
			cc := c[j*ldc : j*ldc+m]
			for i := 0; i < m; i++ {
				ac := a[i*lda : i*lda+k]
				sum := 0.0
				for l := 0; l < k; l++ {
					sum += ac[l] * b[l*ldb+j]
				}
				cc[i] += alpha * sum
			}
		}
	}
}

func scaleCols(m, n int, beta float64, c []float64, ldc, j0, j1 int) {
	if beta == 1 {
		return
	}
	for j := j0; j < j1; j++ {
		cc := c[j*ldc : j*ldc+m]
		if beta == 0 {
			for i := range cc {
				cc[i] = 0
			}
		} else {
			for i := range cc {
				cc[i] *= beta
			}
		}
	}
}

// Dtrmm computes B := alpha*op(A)*B (Left) or B := alpha*B*op(A) (Right)
// where A is triangular and B is m×n.
func Dtrmm(side Side, uplo Uplo, trans Transpose, diag Diag, m, n int, alpha float64, a []float64, lda int, b []float64, ldb int) {
	na := m
	if side == Right {
		na = n
	}
	checkMatrix("Dtrmm", na, na, lda, a)
	checkMatrix("Dtrmm", m, n, ldb, b)
	if m == 0 || n == 0 {
		return
	}
	if alpha == 0 {
		scaleCols(m, n, 0, b, ldb, 0, n)
		return
	}
	nonUnit := diag == NonUnit
	switch {
	case side == Left && trans == NoTrans && uplo == Upper:
		for j := 0; j < n; j++ {
			bc := b[j*ldb:]
			for k := 0; k < m; k++ {
				if bc[k] == 0 {
					continue
				}
				t := alpha * bc[k]
				ac := a[k*lda:]
				for i := 0; i < k; i++ {
					bc[i] += t * ac[i]
				}
				if nonUnit {
					t *= ac[k]
				}
				bc[k] = t
			}
		}
	case side == Left && trans == NoTrans && uplo == Lower:
		for j := 0; j < n; j++ {
			bc := b[j*ldb:]
			for k := m - 1; k >= 0; k-- {
				if bc[k] == 0 {
					continue
				}
				t := alpha * bc[k]
				ac := a[k*lda:]
				bc[k] = t
				if nonUnit {
					bc[k] *= ac[k]
				}
				for i := k + 1; i < m; i++ {
					bc[i] += t * ac[i]
				}
			}
		}
	case side == Left && trans == Trans && uplo == Upper:
		for j := 0; j < n; j++ {
			bc := b[j*ldb:]
			for i := m - 1; i >= 0; i-- {
				ac := a[i*lda:]
				t := bc[i]
				if nonUnit {
					t *= ac[i]
				}
				for k := 0; k < i; k++ {
					t += ac[k] * bc[k]
				}
				bc[i] = alpha * t
			}
		}
	case side == Left && trans == Trans && uplo == Lower:
		for j := 0; j < n; j++ {
			bc := b[j*ldb:]
			for i := 0; i < m; i++ {
				ac := a[i*lda:]
				t := bc[i]
				if nonUnit {
					t *= ac[i]
				}
				for k := i + 1; k < m; k++ {
					t += ac[k] * bc[k]
				}
				bc[i] = alpha * t
			}
		}
	case side == Right && trans == NoTrans && uplo == Upper:
		for j := n - 1; j >= 0; j-- {
			t := alpha
			if nonUnit {
				t *= a[j*lda+j]
			}
			bj := b[j*ldb : j*ldb+m]
			if t != 1 {
				for i := range bj {
					bj[i] *= t
				}
			}
			for k := 0; k < j; k++ {
				if a[j*lda+k] == 0 {
					continue
				}
				t = alpha * a[j*lda+k]
				bk := b[k*ldb : k*ldb+m]
				for i := range bj {
					bj[i] += t * bk[i]
				}
			}
		}
	case side == Right && trans == NoTrans && uplo == Lower:
		for j := 0; j < n; j++ {
			t := alpha
			if nonUnit {
				t *= a[j*lda+j]
			}
			bj := b[j*ldb : j*ldb+m]
			if t != 1 {
				for i := range bj {
					bj[i] *= t
				}
			}
			for k := j + 1; k < n; k++ {
				if a[j*lda+k] == 0 {
					continue
				}
				t = alpha * a[j*lda+k]
				bk := b[k*ldb : k*ldb+m]
				for i := range bj {
					bj[i] += t * bk[i]
				}
			}
		}
	case side == Right && trans == Trans && uplo == Upper:
		for k := 0; k < n; k++ {
			ak := a[k*lda:]
			bk := b[k*ldb : k*ldb+m]
			for j := 0; j < k; j++ {
				if ak[j] == 0 {
					continue
				}
				t := alpha * ak[j]
				bj := b[j*ldb : j*ldb+m]
				for i := range bj {
					bj[i] += t * bk[i]
				}
			}
			t := alpha
			if nonUnit {
				t *= ak[k]
			}
			if t != 1 {
				for i := range bk {
					bk[i] *= t
				}
			}
		}
	default: // Right, Trans, Lower
		for k := n - 1; k >= 0; k-- {
			ak := a[k*lda:]
			bk := b[k*ldb : k*ldb+m]
			for j := k + 1; j < n; j++ {
				if ak[j] == 0 {
					continue
				}
				t := alpha * ak[j]
				bj := b[j*ldb : j*ldb+m]
				for i := range bj {
					bj[i] += t * bk[i]
				}
			}
			t := alpha
			if nonUnit {
				t *= ak[k]
			}
			if t != 1 {
				for i := range bk {
					bk[i] *= t
				}
			}
		}
	}
}

// Dtrsm solves op(A)*X = alpha*B (Left) or X*op(A) = alpha*B (Right) for X,
// overwriting B with the solution. A is triangular, B is m×n.
func Dtrsm(side Side, uplo Uplo, trans Transpose, diag Diag, m, n int, alpha float64, a []float64, lda int, b []float64, ldb int) {
	na := m
	if side == Right {
		na = n
	}
	checkMatrix("Dtrsm", na, na, lda, a)
	checkMatrix("Dtrsm", m, n, ldb, b)
	if m == 0 || n == 0 {
		return
	}
	if alpha == 0 {
		scaleCols(m, n, 0, b, ldb, 0, n)
		return
	}
	nonUnit := diag == NonUnit
	switch {
	case side == Left && trans == NoTrans && uplo == Upper:
		for j := 0; j < n; j++ {
			bc := b[j*ldb:]
			if alpha != 1 {
				for i := 0; i < m; i++ {
					bc[i] *= alpha
				}
			}
			for k := m - 1; k >= 0; k-- {
				if bc[k] == 0 {
					continue
				}
				ac := a[k*lda:]
				if nonUnit {
					bc[k] /= ac[k]
				}
				t := bc[k]
				for i := 0; i < k; i++ {
					bc[i] -= t * ac[i]
				}
			}
		}
	case side == Left && trans == NoTrans && uplo == Lower:
		for j := 0; j < n; j++ {
			bc := b[j*ldb:]
			if alpha != 1 {
				for i := 0; i < m; i++ {
					bc[i] *= alpha
				}
			}
			for k := 0; k < m; k++ {
				if bc[k] == 0 {
					continue
				}
				ac := a[k*lda:]
				if nonUnit {
					bc[k] /= ac[k]
				}
				t := bc[k]
				for i := k + 1; i < m; i++ {
					bc[i] -= t * ac[i]
				}
			}
		}
	case side == Left && trans == Trans && uplo == Upper:
		for j := 0; j < n; j++ {
			bc := b[j*ldb:]
			for i := 0; i < m; i++ {
				ac := a[i*lda:]
				t := alpha * bc[i]
				for k := 0; k < i; k++ {
					t -= ac[k] * bc[k]
				}
				if nonUnit {
					t /= ac[i]
				}
				bc[i] = t
			}
		}
	case side == Left && trans == Trans && uplo == Lower:
		for j := 0; j < n; j++ {
			bc := b[j*ldb:]
			for i := m - 1; i >= 0; i-- {
				ac := a[i*lda:]
				t := alpha * bc[i]
				for k := i + 1; k < m; k++ {
					t -= ac[k] * bc[k]
				}
				if nonUnit {
					t /= ac[i]
				}
				bc[i] = t
			}
		}
	case side == Right && trans == NoTrans && uplo == Upper:
		for j := 0; j < n; j++ {
			bj := b[j*ldb : j*ldb+m]
			if alpha != 1 {
				for i := range bj {
					bj[i] *= alpha
				}
			}
			for k := 0; k < j; k++ {
				if a[j*lda+k] == 0 {
					continue
				}
				t := a[j*lda+k]
				bk := b[k*ldb : k*ldb+m]
				for i := range bj {
					bj[i] -= t * bk[i]
				}
			}
			if nonUnit {
				t := 1 / a[j*lda+j]
				for i := range bj {
					bj[i] *= t
				}
			}
		}
	case side == Right && trans == NoTrans && uplo == Lower:
		for j := n - 1; j >= 0; j-- {
			bj := b[j*ldb : j*ldb+m]
			if alpha != 1 {
				for i := range bj {
					bj[i] *= alpha
				}
			}
			for k := j + 1; k < n; k++ {
				if a[j*lda+k] == 0 {
					continue
				}
				t := a[j*lda+k]
				bk := b[k*ldb : k*ldb+m]
				for i := range bj {
					bj[i] -= t * bk[i]
				}
			}
			if nonUnit {
				t := 1 / a[j*lda+j]
				for i := range bj {
					bj[i] *= t
				}
			}
		}
	case side == Right && trans == Trans && uplo == Upper:
		for k := n - 1; k >= 0; k-- {
			ak := a[k*lda:]
			bk := b[k*ldb : k*ldb+m]
			if nonUnit {
				t := 1 / ak[k]
				for i := range bk {
					bk[i] *= t
				}
			}
			for j := 0; j < k; j++ {
				if ak[j] == 0 {
					continue
				}
				t := ak[j]
				bj := b[j*ldb : j*ldb+m]
				for i := range bj {
					bj[i] -= t * bk[i]
				}
			}
			if alpha != 1 {
				for i := range bk {
					bk[i] *= alpha
				}
			}
		}
	default: // Right, Trans, Lower
		for k := 0; k < n; k++ {
			ak := a[k*lda:]
			bk := b[k*ldb : k*ldb+m]
			if nonUnit {
				t := 1 / ak[k]
				for i := range bk {
					bk[i] *= t
				}
			}
			for j := k + 1; j < n; j++ {
				if ak[j] == 0 {
					continue
				}
				t := ak[j]
				bj := b[j*ldb : j*ldb+m]
				for i := range bj {
					bj[i] -= t * bk[i]
				}
			}
			if alpha != 1 {
				for i := range bk {
					bk[i] *= alpha
				}
			}
		}
	}
}
