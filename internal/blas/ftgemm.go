package blas

import (
	"errors"
	"math"
	"sync"
)

// Fused-ABFT Dgemm (FT-BLAS / "Anatomy of High-Performance GEMM with
// Online Fault Tolerance" style): the checksum encode rides inside the
// packing step, the checksum product rides through the same MR×NR
// micro-kernel as the data (AVX asm path included), and the verify runs
// in the macro-kernel epilogue while the C tile is still hot in cache.
//
// Algebra, per MC×NC tile and KC-deep panel pair:
//
//	column check:  Σ_i ΔC[i,j] = alpha · Σ_p (Σ_i A[i,p]) · B[p,j]
//	row check:     Σ_j ΔC[i,j] = alpha · Σ_p A[i,p] · (Σ_j B[p,j])
//
// packAFT/packBFT accumulate the inner parenthesised sums for free while
// packing; the outer products are one extra micro-kernel sweep per packed
// panel (a single synthetic micro-panel against every real one), so the
// predicted row/column sums of the update are computed by the very kernel
// being checked. The epilogue compares them against one fresh pass over
// the finished tile. Extra flops ≈ 4/MC + 4/NC ≈ 4.7% at blocking size,
// amortising further with k (see FTGemmOverheadFrac).
//
// The data path — scaleBlock, pack stores, macroKernel — is instruction-
// for-instruction the plain Dgemm path, so DgemmFT results are bitwise
// identical to Dgemm at any SetMaxProcs value (property-tested).

// ErrFTDetected reports that a fused-ABFT or DMR check observed a
// mismatch between computed and predicted results. The output buffer
// holds the (possibly corrupted) primary result; correction is the
// caller's job — see DESIGN.md §14.
var ErrFTDetected = errors.New("blas: fault detected by fused ABFT check")

// FTThresholdFactor scales the fused checksum comparison threshold, in
// units of the accumulated roundoff bound (same 200× convention as the
// ft package's sweep detector). A variable so tests can tighten it.
var FTThresholdFactor = 200.0

// ftMacheps is the double-precision unit roundoff.
const ftMacheps = 2.220446049250313e-16

// FTResult reports the outcome of one fused-ABFT BLAS call.
type FTResult struct {
	// Checks counts row + column checksum comparisons (Dgemm) or
	// element compares (DMR level-2).
	Checks int
	// Detections counts comparisons that exceeded their threshold.
	Detections int
	// MaxResidual is the largest observed |gap|/threshold ratio
	// (>1 means a detection); for DMR it is the largest |Δ|.
	MaxResidual float64
	// NonFinite reports that a checksum total or compared element was
	// NaN/±Inf. Non-finite totals defeat any threshold, so they are
	// always counted as detections, never silently passed (the PR 3
	// exponent-bit lesson).
	NonFinite bool
}

// merge folds a per-tile report into the aggregate. Order-independent
// (sum/max/or), so the serial reduction over the tile-slot array is
// deterministic at any worker count.
func (r *FTResult) merge(t FTResult) {
	r.Checks += t.Checks
	r.Detections += t.Detections
	if t.MaxResidual > r.MaxResidual {
		r.MaxResidual = t.MaxResidual
	}
	r.NonFinite = r.NonFinite || t.NonFinite
}

// FTGemmOverheadFrac models the extra-flop fraction of DgemmFT over plain
// Dgemm for an m×n×k product: one synthetic micro-panel sweep per packed
// panel in each direction (4/MC + 4/NC of the tile flops), the packing
// adds, and the pre/epilogue passes over C (≈3/k). The simulated device
// charges fused GEMMs this premium (internal/gpu).
func FTGemmOverheadFrac(m, n, k int) float64 {
	if m <= 0 || n <= 0 || k <= 0 {
		return 0
	}
	mc := float64(min(gemmMC, m))
	nc := float64(min(gemmNC, n))
	return 4/mc + 4/nc + 3/float64(k) + (mc+nc)/(2*mc*nc)
}

// Test hooks (nil in production): called from inside gemmTileFT to plant
// faults at the two places a transient flip can land — the packed panels
// feeding the micro-kernel, and the accumulated C tile before the
// epilogue verify. Serial-path tests only; not synchronised.
var (
	ftTestCorruptPacked func(bufA, bufB []float64)
	ftTestCorruptTile   func(ct []float64, ldc, mc, nc int)
)

// ftTileBufs carries the per-tile checksum state: the synthetic sum
// micro-panels and the expected/observed row/column aggregates. Recycled
// through a pool so steady-state DgemmFT does no allocation beyond the
// report slots.
type ftTileBufs struct {
	sumA [gemmKC * gemmMR]float64 // packed-A column sums, MR-lane layout
	sumB [gemmKC * gemmNR]float64 // packed-B row sums, NR-lane layout
	// expected final sums: beta·(pre-update sums) + alpha·(predicted
	// update sums), accumulated over KC chunks.
	expRow [gemmMC]float64
	expCol [gemmNC]float64
	// absolute-value sums anchoring the comparison thresholds.
	preAbsRow [gemmMC]float64
	preAbsCol [gemmNC]float64
	rowSum    [gemmMC]float64
	rowAbs    [gemmMC]float64
}

var ftBufPool = sync.Pool{New: func() any { return new(ftTileBufs) }}

// DgemmFT computes C := alpha*op(A)*op(B) + beta*C exactly like Dgemm —
// bitwise-identical output at any SetMaxProcs — and additionally verifies
// every C tile against fused row/column checksums before returning. On a
// mismatch (or any non-finite checksum total) it returns ErrFTDetected
// with the counts in FTResult; C holds the primary result either way.
func DgemmFT(tA, tB Transpose, m, n, k int, alpha float64, a []float64, lda int, b []float64, ldb int, beta float64, c []float64, ldc int) (FTResult, error) {
	ar, ac := m, k
	if tA == Trans {
		ar, ac = k, m
	}
	br, bc := k, n
	if tB == Trans {
		br, bc = n, k
	}
	checkMatrix("DgemmFT", ar, ac, lda, a)
	checkMatrix("DgemmFT", br, bc, ldb, b)
	checkMatrix("DgemmFT", m, n, ldc, c)
	if m == 0 || n == 0 {
		return FTResult{}, nil
	}
	if alpha == 0 || k == 0 {
		scaleCols(m, n, beta, c, ldc, 0, n)
		return FTResult{}, nil
	}
	flops := 2 * float64(m) * float64(n) * float64(k)
	if done := opTimer("gemm_ft", flops*(1+FTGemmOverheadFrac(m, n, k))); done != nil {
		defer done()
	}
	mBlocks := (m + gemmMC - 1) / gemmMC
	nBlocks := (n + gemmNC - 1) / gemmNC
	tasks := mBlocks * nBlocks
	reports := make([]FTResult, tasks)
	tile := func(t int) {
		ic := (t % mBlocks) * gemmMC
		jc := (t / mBlocks) * gemmNC
		gemmTileFT(tA, tB, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc, ic, jc, &reports[t])
	}
	if procs() > 1 && tasks > 1 && 2*m*n*k >= parallelGemmThreshold {
		parallelFor(tasks, tile)
	} else {
		for t := 0; t < tasks; t++ {
			tile(t)
		}
	}
	var res FTResult
	for t := range reports {
		res.merge(reports[t])
	}
	if res.Detections > 0 {
		return res, ErrFTDetected
	}
	return res, nil
}

// gemmTileFT is gemmTile with the fused checksum dataflow threaded
// through it. The tile writes only its own report slot, so any number of
// tiles may run concurrently and the final reduction stays deterministic.
func gemmTileFT(tA, tB Transpose, m, n, k int, alpha float64, a []float64, lda int, b []float64, ldb int, beta float64, c []float64, ldc, ic, jc int, rep *FTResult) {
	mc := min(gemmMC, m-ic)
	nc := min(gemmNC, n-jc)
	ct := c[jc*ldc+ic:]
	fb := ftBufPool.Get().(*ftTileBufs)
	defer ftBufPool.Put(fb)

	// Pre-update pass: expected sums start from beta·C, thresholds from
	// |beta·C|. beta == 0 clears the tile, so both start at zero.
	for i := 0; i < mc; i++ {
		fb.expRow[i] = 0
		fb.preAbsRow[i] = 0
	}
	for j := 0; j < nc; j++ {
		fb.expCol[j] = 0
		fb.preAbsCol[j] = 0
	}
	if beta != 0 {
		babs := math.Abs(beta)
		jp := 0
		for ; jp+4 <= nc; jp += 4 {
			c0 := ct[jp*ldc : jp*ldc+mc]
			c1 := ct[(jp+1)*ldc : (jp+1)*ldc+mc]
			c2 := ct[(jp+2)*ldc : (jp+2)*ldc+mc]
			c3 := ct[(jp+3)*ldc : (jp+3)*ldc+mc]
			var s0, s1, s2, s3, a0, a1, a2, a3 float64
			for i := 0; i < mc; i++ {
				v0, v1, v2, v3 := c0[i], c1[i], c2[i], c3[i]
				w0, w1, w2, w3 := math.Abs(v0), math.Abs(v1), math.Abs(v2), math.Abs(v3)
				s0 += v0
				s1 += v1
				s2 += v2
				s3 += v3
				a0 += w0
				a1 += w1
				a2 += w2
				a3 += w3
				fb.expRow[i] += beta * (v0 + v1 + v2 + v3)
				fb.preAbsRow[i] += babs * (w0 + w1 + w2 + w3)
			}
			fb.expCol[jp] = beta * s0
			fb.expCol[jp+1] = beta * s1
			fb.expCol[jp+2] = beta * s2
			fb.expCol[jp+3] = beta * s3
			fb.preAbsCol[jp] = babs * a0
			fb.preAbsCol[jp+1] = babs * a1
			fb.preAbsCol[jp+2] = babs * a2
			fb.preAbsCol[jp+3] = babs * a3
		}
		for ; jp < nc; jp++ {
			cc := ct[jp*ldc : jp*ldc+mc]
			colSum, colAbs := 0.0, 0.0
			for i, v := range cc {
				colSum += v
				av := math.Abs(v)
				colAbs += av
				fb.expRow[i] += beta * v
				fb.preAbsRow[i] += babs * av
			}
			fb.expCol[jp] = beta * colSum
			fb.preAbsCol[jp] = babs * colAbs
		}
	}

	// Data path — identical to gemmTile — plus one synthetic micro-panel
	// sweep per direction per KC chunk to accumulate the predicted
	// update sums through the same micro-kernel.
	scaleBlock(mc, nc, beta, ct, ldc)
	bufA := packAPool.Get().(*[]float64)
	bufB := packBPool.Get().(*[]float64)
	for pc := 0; pc < k; pc += gemmKC {
		kc := min(gemmKC, k-pc)
		packBFT(tB, b, ldb, pc, jc, kc, nc, *bufB, fb.sumB[:])
		packAFT(tA, a, lda, ic, pc, mc, kc, *bufA, fb.sumA[:])
		if ftTestCorruptPacked != nil {
			ftTestCorruptPacked(*bufA, *bufB)
		}
		macroKernel(mc, nc, kc, alpha, *bufA, *bufB, ct, ldc)
		// Column predictions: sumA (1×kc, lane 0) against every packed
		// B micro-panel; row 0 of each scratch tile is alpha·uᵀB.
		for jr := 0; jr < nc; jr += gemmNR {
			pb := (*bufB)[(jr/gemmNR)*kc*gemmNR:]
			var t [gemmMR * gemmNR]float64
			microKernel(kc, alpha, fb.sumA[:], pb, t[:], gemmMR)
			nr := min(gemmNR, nc-jr)
			for cj := 0; cj < nr; cj++ {
				fb.expCol[jr+cj] += t[cj*gemmMR]
			}
		}
		// Row predictions: every packed A micro-panel against sumB
		// (kc×1, lane 0); column 0 of each scratch tile is alpha·Av.
		for ir := 0; ir < mc; ir += gemmMR {
			pa := (*bufA)[(ir/gemmMR)*kc*gemmMR:]
			var t [gemmMR * gemmNR]float64
			microKernel(kc, alpha, pa, fb.sumB[:], t[:], gemmMR)
			mr := min(gemmMR, mc-ir)
			for r := 0; r < mr; r++ {
				fb.expRow[ir+r] += t[r]
			}
		}
	}
	packAPool.Put(bufA)
	packBPool.Put(bufB)

	if ftTestCorruptTile != nil {
		ftTestCorruptTile(ct, ldc, mc, nc)
	}

	// Epilogue verify: one fresh pass over the finished tile computes
	// observed row/column sums and their absolute anchors, compared
	// against the expectations while the tile is still cache-hot. Columns
	// go four at a time so the rowSum/rowAbs updates amortize to one
	// read-modify-write per four elements — this pass is the whole of the
	// 3/k overhead term, so its constant matters for the short-k trailing
	// updates. (The grouping only regroups the checksum additions, within
	// the comparison tolerance; the data path is untouched.)
	for i := 0; i < mc; i++ {
		fb.rowSum[i] = 0
		fb.rowAbs[i] = 0
	}
	scale := FTThresholdFactor * ftMacheps * float64(k+2)
	j := 0
	for ; j+4 <= nc; j += 4 {
		c0 := ct[j*ldc : j*ldc+mc]
		c1 := ct[(j+1)*ldc : (j+1)*ldc+mc]
		c2 := ct[(j+2)*ldc : (j+2)*ldc+mc]
		c3 := ct[(j+3)*ldc : (j+3)*ldc+mc]
		var s0, s1, s2, s3, a0, a1, a2, a3 float64
		for i := 0; i < mc; i++ {
			v0, v1, v2, v3 := c0[i], c1[i], c2[i], c3[i]
			w0, w1, w2, w3 := math.Abs(v0), math.Abs(v1), math.Abs(v2), math.Abs(v3)
			s0 += v0
			s1 += v1
			s2 += v2
			s3 += v3
			a0 += w0
			a1 += w1
			a2 += w2
			a3 += w3
			fb.rowSum[i] += v0 + v1 + v2 + v3
			fb.rowAbs[i] += w0 + w1 + w2 + w3
		}
		ftCheck(rep, s0, fb.expCol[j], scale*(fb.preAbsCol[j]+a0+1))
		ftCheck(rep, s1, fb.expCol[j+1], scale*(fb.preAbsCol[j+1]+a1+1))
		ftCheck(rep, s2, fb.expCol[j+2], scale*(fb.preAbsCol[j+2]+a2+1))
		ftCheck(rep, s3, fb.expCol[j+3], scale*(fb.preAbsCol[j+3]+a3+1))
	}
	for ; j < nc; j++ {
		cc := ct[j*ldc : j*ldc+mc]
		colSum, colAbs := 0.0, 0.0
		for i, v := range cc {
			colSum += v
			av := math.Abs(v)
			colAbs += av
			fb.rowSum[i] += v
			fb.rowAbs[i] += av
		}
		ftCheck(rep, colSum, fb.expCol[j], scale*(fb.preAbsCol[j]+colAbs+1))
	}
	for i := 0; i < mc; i++ {
		ftCheck(rep, fb.rowSum[i], fb.expRow[i], scale*(fb.preAbsRow[i]+fb.rowAbs[i]+1))
	}
}

// ftCheck compares one observed sum against its prediction. Non-finite
// values on either side are unconditional detections: a NaN/Inf gap
// cannot be thresholded, and silence is the one forbidden outcome.
func ftCheck(rep *FTResult, got, want, tol float64) {
	rep.Checks++
	gap := math.Abs(got - want)
	if math.IsNaN(gap) || math.IsInf(gap, 0) {
		rep.Detections++
		rep.NonFinite = true
		rep.MaxResidual = math.Inf(1)
		return
	}
	ratio := gap / tol
	if ratio > rep.MaxResidual {
		rep.MaxResidual = ratio
	}
	if ratio > 1 {
		rep.Detections++
	}
}
