package ft

import (
	"context"
	"errors"
	"math"
	"testing"

	"repro/internal/devpool"
	"repro/internal/gpu"
	"repro/internal/hybrid"
	"repro/internal/lapack"
	"repro/internal/leakcheck"
	"repro/internal/matrix"
	"repro/internal/sim"
)

// The lookahead schedule reorders when work is issued, never what is
// computed: splitting the trailing updates into a priority part (panel
// k+1's columns) and a remainder applies per-element arithmetic identical
// to the unsplit kernels restricted to disjoint column ranges. The
// property test pins that down as byte identity of the packed result and
// tau across the schedule switch, for both hybrid algorithms, at every
// pool size (0 = the legacy single-device path) and panel width — and
// zero detections on the FT runs, which proves the split Sre/Sce
// checksum maintenance tracked the split data updates exactly (any
// divergence would fire a phantom mismatch at the next boundary sweep).
func TestLookaheadDigestInvariance(t *testing.T) {
	n := 160
	a := matrix.Random(n, n, 41)
	for _, nb := range []int{8, 32} {
		for _, k := range []int{0, 1, 2, 4} {
			pool := func() []*gpu.Device {
				if k == 0 {
					return nil
				}
				return newDevs(k, gpu.Real)
			}
			hOn, err := hybrid.Reduce(a, hybrid.Options{NB: nb, Devices: pool(), Device: single(k)})
			if err != nil {
				t.Fatal(err)
			}
			hOff, err := hybrid.Reduce(a, hybrid.Options{NB: nb, Devices: pool(), Device: single(k), DisableLookahead: true})
			if err != nil {
				t.Fatal(err)
			}
			comparePackedTau(t, "hybrid", nb, k, hOn.Packed, hOff.Packed, hOn.Tau, hOff.Tau)

			fOn, err := Reduce(a, Options{NB: nb, Devices: pool(), Device: single(k)})
			if err != nil {
				t.Fatal(err)
			}
			fOff, err := Reduce(a, Options{NB: nb, Devices: pool(), Device: single(k), DisableLookahead: true})
			if err != nil {
				t.Fatal(err)
			}
			comparePackedTau(t, "ft", nb, k, fOn.Packed, fOff.Packed, fOn.Tau, fOff.Tau)
			if fOn.Detections != 0 || fOff.Detections != 0 {
				t.Fatalf("nb=%d k=%d: phantom detections (lookahead on %d, off %d) — the split checksum algebra drifted",
					nb, k, fOn.Detections, fOff.Detections)
			}
			if !fOn.Packed.Equal(hOn.Packed) {
				t.Fatalf("nb=%d k=%d: FT lookahead result differs from hybrid's", nb, k)
			}
		}
	}
}

// single builds the legacy single-device override for k == 0 (nil
// otherwise, letting the pool drive the run).
func single(k int) *gpu.Device {
	if k != 0 {
		return nil
	}
	return gpu.New(sim.K40c(), gpu.Real)
}

func comparePackedTau(t *testing.T, alg string, nb, k int, pOn, pOff *matrix.Matrix, tOn, tOff []float64) {
	t.Helper()
	if !pOn.Equal(pOff) {
		d := pOn.Sub(pOff).MaxAbs()
		t.Fatalf("%s nb=%d k=%d: packed not byte-identical across the lookahead switch (max |Δ| = %g)", alg, nb, k, d)
	}
	for i := range tOn {
		if tOn[i] != tOff[i] {
			t.Fatalf("%s nb=%d k=%d: tau[%d] = %v with lookahead vs %v without", alg, nb, k, i, tOn[i], tOff[i])
		}
	}
}

// cancelHook cancels the run's context at one iteration boundary — after
// the lookahead split state of the previous iteration has been issued, so
// the unwind crosses a schedule with a factorization in flight.
type cancelHook struct {
	iter   int
	cancel context.CancelFunc
}

func (h *cancelHook) BeforeIteration(ctx *IterCtx) {
	if ctx.Iter == h.iter {
		h.cancel()
	}
}
func (h *cancelHook) ConsumePendingH() int { return 0 }
func (h *cancelHook) PendingQ() int        { return 0 }

// Cancelling mid-lookahead must unwind within one blocked iteration,
// leak nothing (run under -race), and leave the pool reusable: the same
// devices then complete a clean reduction whose result is byte-identical
// to one on a fresh pool.
func TestLookaheadMidRunCancellation(t *testing.T) {
	leakcheck.Check(t)
	n, nb := 192, 16
	a := matrix.Random(n, n, 9)

	// Multi-device: cancel at iteration 2, when iteration 1's priority
	// update and hidden panel factorization have already run.
	devs := newDevs(2, gpu.Real)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, err := Reduce(a, Options{NB: nb, Devices: devs, Ctx: ctx, Hook: &cancelHook{iter: 2, cancel: cancel}})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("multi: got %v, want context.Canceled", err)
	}
	res, err := Reduce(a, Options{NB: nb, Devices: devs})
	if err != nil {
		t.Fatalf("pool not reusable after cancellation: %v", err)
	}
	fresh, err := Reduce(a, Options{NB: nb, Devices: newDevs(2, gpu.Real)})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Packed.Equal(fresh.Packed) {
		t.Fatal("reduction on a cancelled-then-reused pool differs from a fresh pool's")
	}

	// Single-device legacy path: same contract.
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	_, err = Reduce(a, Options{NB: nb, Device: single(0), Ctx: ctx2, Hook: &cancelHook{iter: 2, cancel: cancel2}})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("single: got %v, want context.Canceled", err)
	}
}

// Corruption landing in columns the lookahead schedule already updated
// early — the priority region [p+nb, p+2nb) maintained through the split
// right/left kernels and the chkrow ride — must be detected at the next
// boundary sweep and corrected in place, exactly like a fault in a
// whole-slab update. Column 40 sits in the priority part of the split
// slab, column 55 in its remainder: both halves of the split algebra are
// exercised. (Geometry: n=192, nb=16, K=2 shards into width-32 slabs;
// iteration 1's panel is at p=16, so its priority region is [32,48) in
// slab 1 while the panel lives in slab 0.)
func TestLookaheadPriorityColumnFaultCorrected(t *testing.T) {
	n, nb, k := 192, 16, 2
	part := devpool.NewPartition(n, nb, k)
	if part.Width != 32 || part.SlabOf(40) != 1 || part.SlabOf(16) != 0 {
		t.Fatalf("partition geometry changed (width %d); re-site the injections", part.Width)
	}
	a := matrix.Random(n, n, 27)
	for _, col := range []int{40, 55} {
		hook := &multiPokeHook{iter: 2, pokes: []Injection{{Row: 120, Col: col, Delta: 2.5}}}
		res, err := Reduce(a, Options{NB: nb, Devices: newDevs(k, gpu.Real), Hook: hook})
		if err != nil {
			t.Fatalf("col %d: %v", col, err)
		}
		if res.Detections == 0 || res.Recoveries == 0 {
			t.Fatalf("col %d: fault in a priority-updated column not handled: %+v", col, res)
		}
		if res.Checkpoints != 0 || res.Reexecutions != 0 {
			t.Fatalf("col %d: recovery was not in-place: %d checkpoints, %d re-executions",
				col, res.Checkpoints, res.Reexecutions)
		}
		if len(res.CorrectedH) != 1 {
			t.Fatalf("col %d: corrected %d positions", col, len(res.CorrectedH))
		}
		c := res.CorrectedH[0]
		if c.Row != 120 || c.Col != col || math.Abs(c.Delta-2.5) > 1e-6 {
			t.Fatalf("col %d: wrong correction %+v", col, c)
		}
		h := res.H()
		q := res.Q()
		if r := lapack.FactorizationResidual(a, q, h); r > 1e-13 {
			t.Fatalf("col %d: residual after recovery %v", col, r)
		}
	}
}
