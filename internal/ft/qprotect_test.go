package ft

import (
	"errors"
	"testing"

	"repro/internal/gpu"
	"repro/internal/matrix"
	"repro/internal/sim"
)

// qFixture builds a packed host matrix whose sub-subdiagonal region plays
// the role of the Householder storage, absorbed panel by panel.
func qFixture(n, nb, panels int) (*gpu.Device, *matrix.Matrix, *qChecksums) {
	dev := gpu.New(sim.K40c(), gpu.Real)
	host := matrix.Random(n, n, 77)
	q := newQChecksums(n)
	for p := 0; p < panels*nb; p += nb {
		q.absorbPanel(dev, dev.Params, host, p, nb)
	}
	return dev, host, q
}

func TestQChecksumsCleanVerify(t *testing.T) {
	dev, host, q := qFixture(64, 8, 4)
	fixes, err := q.verifyAndCorrect(dev, dev.Params, host, 32, 1e-9, nil, 0)
	if err != nil || fixes != 0 {
		t.Fatalf("clean verify: fixes=%d err=%v", fixes, err)
	}
}

func TestQChecksumsSingleCorrection(t *testing.T) {
	dev, host, q := qFixture(64, 8, 4)
	orig := host.At(40, 10)
	host.Add(40, 10, 2.5) // inside the protected region (row ≥ col+2, col < 32)
	fixes, err := q.verifyAndCorrect(dev, dev.Params, host, 32, 1e-9, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if fixes != 1 {
		t.Fatalf("fixes = %d", fixes)
	}
	if d := host.At(40, 10) - orig; d > 1e-9 || d < -1e-9 {
		t.Fatalf("element not restored: off by %v", d)
	}
}

func TestQChecksumsMultipleDistinctCorrections(t *testing.T) {
	dev, host, q := qFixture(64, 8, 4)
	host.Add(40, 10, 1.0)
	host.Add(50, 20, 2.0)
	fixes, err := q.verifyAndCorrect(dev, dev.Params, host, 32, 1e-9, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if fixes != 2 {
		t.Fatalf("fixes = %d", fixes)
	}
}

func TestQChecksumsSharedColumn(t *testing.T) {
	dev, host, q := qFixture(64, 8, 4)
	host.Add(40, 10, 1.0)
	host.Add(50, 10, 2.0) // same column, distinct rows
	fixes, err := q.verifyAndCorrect(dev, dev.Params, host, 32, 1e-9, nil, 0)
	if err != nil || fixes != 2 {
		t.Fatalf("fixes=%d err=%v", fixes, err)
	}
}

func TestQChecksumsAmbiguous(t *testing.T) {
	dev, host, q := qFixture(64, 8, 4)
	host.Add(40, 10, 2.0)
	host.Add(50, 20, 2.0) // equal deltas, distinct rows and columns
	_, err := q.verifyAndCorrect(dev, dev.Params, host, 32, 1e-9, nil, 0)
	if !errors.Is(err, ErrUncorrectable) {
		t.Fatalf("expected ErrUncorrectable, got %v", err)
	}
}

func TestQChecksumsChecksumElementError(t *testing.T) {
	dev, host, q := qFixture(64, 8, 4)
	q.rowChk[40] += 3.0 // corrupt the checksum itself
	fixes, err := q.verifyAndCorrect(dev, dev.Params, host, 32, 1e-9, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if fixes != 0 {
		t.Fatalf("checksum-only error should refresh, not fix data: %d", fixes)
	}
	// A second verify must now be clean.
	if fixes, err = q.verifyAndCorrect(dev, dev.Params, host, 32, 1e-9, nil, 0); err != nil || fixes != 0 {
		t.Fatalf("post-refresh verify: fixes=%d err=%v", fixes, err)
	}
}

func TestQChecksumsReabsorption(t *testing.T) {
	// Re-absorbing the same panel (the recovery re-execution path) must
	// retract the previous contribution, not double it.
	dev, host, q := qFixture(64, 8, 3)
	q.absorbPanel(dev, dev.Params, host, 16, 8) // re-absorb the most recent panel
	fixes, err := q.verifyAndCorrect(dev, dev.Params, host, 24, 1e-9, nil, 0)
	if err != nil || fixes != 0 {
		t.Fatalf("after re-absorption: fixes=%d err=%v", fixes, err)
	}
}

func TestQChecksumsReabsorbChangedPanel(t *testing.T) {
	dev, host, q := qFixture(64, 8, 3)
	// The panel data changed between absorptions (a corrected error).
	host.Add(30, 18, 4.0)
	q.absorbPanel(dev, dev.Params, host, 16, 8)
	fixes, err := q.verifyAndCorrect(dev, dev.Params, host, 24, 1e-9, nil, 0)
	if err != nil || fixes != 0 {
		t.Fatalf("checksums must track the re-absorbed data: fixes=%d err=%v", fixes, err)
	}
}

func TestQChecksumsLimitClamp(t *testing.T) {
	dev, host, q := qFixture(64, 8, 2) // absorbed columns 0..15
	// Verifying "through column 40" must clamp to the absorbed range.
	if _, err := q.verifyAndCorrect(dev, dev.Params, host, 40, 1e-9, nil, 0); err != nil {
		t.Fatal(err)
	}
}
