package ft_test

// End-to-end observability check: one fault-tolerant run with an injected
// error must leave the metrics registry, the event journal, and the
// Result statistics telling the same story.

import (
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/ft"
	"repro/internal/gpu"
	"repro/internal/matrix"
	"repro/internal/obs"
	"repro/internal/sim"
)

func TestObservabilityEndToEnd(t *testing.T) {
	const n = 256
	a := matrix.Random(n, n, 5)
	reg := obs.NewRegistry()
	jr := obs.NewJournal()
	in := fault.New(fault.Plan{Area: fault.Area1, TargetIter: 2, Seed: 3})
	in.Journal = jr
	res, err := ft.Reduce(a, ft.Options{
		NB: 32, Device: gpu.New(sim.K40c(), gpu.Real),
		Hook: in, Obs: reg, Journal: jr,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Detections != 1 || res.Recoveries != 1 {
		t.Fatalf("expected 1 detection + 1 recovery, got %d/%d", res.Detections, res.Recoveries)
	}

	// The Prometheus exposition must carry the FT counters and the
	// per-phase timers the acceptance criteria name.
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		"ft_detections_total", "ft_corrections_total", "ft_reexecutions_total",
		"ft_checksum_checks_total", "ft_recoveries_total", "ft_checkpoints_total",
		"phase_seconds_bucket", `phase="panel"`, `phase="right_update"`,
		`phase="left_update"`, `phase="d2h_overlap"`, `phase="detect"`,
		`phase="recovery"`, "op_seconds_total", "sim_makespan_seconds",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics exposition missing %q", want)
		}
	}

	// Counters, Result statistics, and journal tallies must agree.
	counts := jr.Counts()
	checks := []struct {
		counter string
		kind    obs.Kind
		result  int
	}{
		{"ft_detections_total", obs.KindDetection, res.Detections},
		{"ft_corrections_total", obs.KindCorrection, len(res.CorrectedH)},
		{"ft_recoveries_total", obs.KindReverse, res.Recoveries},
		{"ft_reexecutions_total", obs.KindReexecution, res.Recoveries},
	}
	for _, c := range checks {
		v := reg.CounterValue(c.counter)
		if int(v) != c.result {
			t.Errorf("%s = %v, Result says %d", c.counter, v, c.result)
		}
		if counts[c.kind] != c.result {
			t.Errorf("journal has %d %s records, Result says %d", counts[c.kind], c.kind, c.result)
		}
	}
	if got := counts[obs.KindInjection]; got != len(in.Log) {
		t.Errorf("journal has %d injections, injector logged %d", got, len(in.Log))
	}

	// Journal records must be ordered by simulated time, and the recovery
	// chain must appear in causal order: detection → location →
	// correction → re-execution.
	events := jr.Events()
	if len(events) == 0 {
		t.Fatal("empty journal")
	}
	last := -1.0
	idx := map[obs.Kind]int{}
	for i, e := range events {
		if e.Seq != i {
			t.Fatalf("event %d has seq %d", i, e.Seq)
		}
		if e.SimTime < last {
			t.Fatalf("event %d: sim_time %v < previous %v", i, e.SimTime, last)
		}
		last = e.SimTime
		if _, seen := idx[e.Kind]; !seen {
			idx[e.Kind] = i
		}
	}
	chain := []obs.Kind{obs.KindDetection, obs.KindLocation, obs.KindCorrection, obs.KindReexecution}
	for i := 1; i < len(chain); i++ {
		a, aok := idx[chain[i-1]]
		b, bok := idx[chain[i]]
		if !aok || !bok {
			t.Fatalf("journal missing %s or %s", chain[i-1], chain[i])
		}
		if a > b {
			t.Errorf("first %s (seq %d) after first %s (seq %d)", chain[i-1], a, chain[i], b)
		}
	}
}
