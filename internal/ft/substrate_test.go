package ft

import (
	"math"
	"strings"
	"testing"

	"repro/internal/gpu"
	"repro/internal/lapack"
	"repro/internal/matrix"
	"repro/internal/obs"
	"repro/internal/sim"
)

// The fused-ABFT substrate changes how checksums are produced — inside
// the BLAS kernels and, on the multi path, as an incremental panel-slab
// halo refresh — never what the data path computes. The property test
// pins that down as byte identity of the packed result and tau across
// the substrate switch, at every pool size (0 = the legacy single-device
// path) and panel width, with zero detections either way: a drifted
// incremental halo would fire a phantom mismatch at the next boundary
// sweep, and a broken fused kernel would fire its own epilogue check.
func TestSubstrateDigestInvariance(t *testing.T) {
	n := 160
	a := matrix.Random(n, n, 53)
	for _, nb := range []int{8, 32} {
		for _, k := range []int{0, 1, 2, 4} {
			pool := func() []*gpu.Device {
				if k == 0 {
					return nil
				}
				return newDevs(k, gpu.Real)
			}
			swept, err := Reduce(a, Options{NB: nb, Devices: pool(), Device: single(k), Substrate: SubstrateSwept})
			if err != nil {
				t.Fatal(err)
			}
			fused, err := Reduce(a, Options{NB: nb, Devices: pool(), Device: single(k), Substrate: SubstrateFused})
			if err != nil {
				t.Fatal(err)
			}
			comparePackedTau(t, "substrate", nb, k, fused.Packed, swept.Packed, fused.Tau, swept.Tau)
			if fused.Detections != 0 || swept.Detections != 0 {
				t.Fatalf("nb=%d k=%d: phantom detections (fused %d, swept %d)",
					nb, k, fused.Detections, swept.Detections)
			}
			if fused.SubstrateChecks == 0 {
				t.Fatalf("nb=%d k=%d: fused run accumulated zero substrate checks", nb, k)
			}
			if fused.SubstrateDetections != 0 {
				t.Fatalf("nb=%d k=%d: clean fused run reported %d substrate detections", nb, k, fused.SubstrateDetections)
			}
			if swept.SubstrateChecks != 0 || swept.SubstrateDetections != 0 {
				t.Fatalf("nb=%d k=%d: swept run touched substrate counters: %+v", nb, k, swept)
			}
		}
	}
}

func TestSubstrateUnknownRejected(t *testing.T) {
	a := matrix.Random(32, 32, 7)
	for _, devs := range [][]*gpu.Device{nil, newDevs(2, gpu.Real)} {
		_, err := Reduce(a, Options{NB: 8, Devices: devs, Device: single(len(devs)), Substrate: "bogus"})
		if err == nil || !strings.Contains(err.Error(), "bogus") {
			t.Fatalf("devices=%d: unknown substrate accepted (err=%v)", len(devs), err)
		}
	}
}

// A memory fault injected at an iteration boundary corrupts the *inputs*
// of the next kernels; the fused epilogue verifies each call against its
// own (corrupted) inputs, so the boundary sweep must remain the
// authoritative detector and corrector under the fused substrate too.
func TestSubstrateFusedFaultStillSweptAndCorrected(t *testing.T) {
	n, nb := 192, 16
	a := matrix.Random(n, n, 27)
	hook := &multiPokeHook{iter: 1, pokes: []Injection{{Row: 100, Col: 170, Delta: 3.5}}}
	res, err := Reduce(a, Options{NB: nb, Devices: newDevs(2, gpu.Real), Hook: hook, Substrate: SubstrateFused})
	if err != nil {
		t.Fatal(err)
	}
	if res.Detections == 0 || res.Recoveries == 0 {
		t.Fatalf("fault not handled under fused substrate: %+v", res)
	}
	if len(res.CorrectedH) != 1 {
		t.Fatalf("corrected %d positions, want 1", len(res.CorrectedH))
	}
	c := res.CorrectedH[0]
	if c.Row != 100 || c.Col != 170 || math.Abs(c.Delta-3.5) > 1e-6 {
		t.Fatalf("wrong correction %+v", c)
	}
	h := res.H()
	q := res.Q()
	if r := lapack.FactorizationResidual(a, q, h); r > 1e-13 {
		t.Fatalf("residual after recovery under fused substrate: %v", r)
	}
}

// Fail-stop device loss under the fused substrate: the lost device may
// carry the frozen-prefix accumulator, which is not parity-protected and
// must be rebuilt from the reconstructed slab — the run still finishes
// bit-identical to a fault-free one.
func TestSubstrateFusedSurvivesDeviceLoss(t *testing.T) {
	n, nb := 192, 16
	a := matrix.Random(n, n, 33)
	clean, err := Reduce(a, Options{NB: nb, Devices: newDevs(2, gpu.Real), Substrate: SubstrateFused})
	if err != nil {
		t.Fatal(err)
	}
	for _, point := range []string{"boundary", "update"} {
		hook := &killHook{kills: []killSpec{{iter: 2, dev: 0, point: point}}}
		res, err := Reduce(a, Options{NB: nb, Devices: newDevs(2, gpu.Real), FailStop: true, Hook: hook, Substrate: SubstrateFused})
		if err != nil {
			t.Fatalf("point %s: %v", point, err)
		}
		if res.FailStopRecoveries != 1 {
			t.Fatalf("point %s: %d reconstructions, want 1", point, res.FailStopRecoveries)
		}
		if !res.Packed.Equal(clean.Packed) {
			t.Fatalf("point %s: post-recovery result differs from fault-free fused run", point)
		}
	}
}

// The point of the incremental refresh: the checksum_maintenance phase
// must get measurably cheaper when the substrate carries the frozen
// prefix forward instead of re-encoding the whole panel slab every
// iteration. Cost-only mode exposes the modeled phase time exactly.
func TestSubstrateMaintenancePhaseDrops(t *testing.T) {
	n, nb := 512, 16
	a := matrix.Random(n, n, 61)
	phaseTime := func(substrate string) float64 {
		reg := obs.NewRegistry()
		_, err := Reduce(a, Options{NB: nb, Devices: newDevs(2, gpu.CostOnly), Obs: reg, Substrate: substrate})
		if err != nil {
			t.Fatal(err)
		}
		return obs.SumBy(reg, "phase_seconds", "phase")["checksum_maintenance"]
	}
	swept := phaseTime(SubstrateSwept)
	fused := phaseTime(SubstrateFused)
	if swept <= 0 || fused <= 0 {
		t.Fatalf("checksum_maintenance phase unreported (swept %v, fused %v)", swept, fused)
	}
	// The frozen prefix covers half the slab on average; require at
	// least a 20% drop so the assertion has teeth without overfitting
	// the cost model.
	if fused > 0.8*swept {
		t.Fatalf("maintenance did not drop measurably: fused %v vs swept %v", fused, swept)
	}
}

// The substrate counters must surface through the registry like every
// other FT counter, pre-touched at zero on clean swept runs.
func TestSubstrateCountersExposed(t *testing.T) {
	a := matrix.Random(96, 96, 19)
	reg := obs.NewRegistry()
	res, err := Reduce(a, Options{NB: 8, Device: gpu.New(sim.K40c(), gpu.Real), Obs: reg, Substrate: SubstrateFused})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	if !strings.Contains(text, "ft_substrate_checks_total") || !strings.Contains(text, "ft_substrate_detections_total") {
		t.Fatalf("substrate counters missing from export:\n%s", text)
	}
	if res.SubstrateChecks == 0 {
		t.Fatal("Result.SubstrateChecks stayed zero on a Real-mode fused run")
	}
}
