package ft

import (
	"fmt"
	"math"

	"repro/internal/matrix"
	"repro/internal/obs"
	"repro/internal/sim"
)

// hostLane abstracts the serial-CPU lane the Q checksums run on: the
// single device's host timeline on the legacy path, the pool's
// main-host lane on the multi-device path.
type hostLane interface {
	HostOp(cost float64, f func())
}

// qChecksums protects the Householder vectors accumulating on the host
// (the Q matrix, Section IV-E of the paper). A column of row checksums
// (Qr_chk) is accumulated panel by panel, and a row of column checksums
// (Qc_chk) is generated one segment per panel and never changes — the
// solid/dashed lines of the paper's Figure 5. Generation runs on the CPU
// while the device updates the trailing matrix, so its cost hides in the
// otherwise idle host time.
//
// The protected region is the strictly-below-first-subdiagonal storage of
// the packed factorization (rows ≥ c+2 of column c).
type qChecksums struct {
	n      int
	rowChk []float64 // Qr_chk: per-row sums over all absorbed panels
	colChk []float64 // Qc_chk: per-column sums, one segment per panel
	// lastPanel and lastRowContrib allow a panel's contribution to be
	// re-absorbed after a recovery re-executes it with corrected data.
	lastPanel      int
	lastRowContrib []float64
	absorbedCols   int // first column not yet covered
}

func newQChecksums(n int) *qChecksums {
	return &qChecksums{
		n:              n,
		rowChk:         make([]float64, n),
		colChk:         make([]float64, n),
		lastPanel:      -1,
		lastRowContrib: make([]float64, n),
	}
}

// absorbPanel folds the Householder vectors of panel columns p..p+ib-1
// into the checksums. Calling it again for the same panel (after a
// recovery re-execution) first retracts the previous contribution.
func (q *qChecksums) absorbPanel(h hostLane, pp sim.Params, hostA *matrix.Matrix, p, ib int) {
	n := q.n
	cost := pp.GemvHost(n-p, ib)
	h.HostOp(cost, func() {
		if q.lastPanel == p {
			// Re-absorption after recovery: retract the stale sums.
			for i := 0; i < n; i++ {
				q.rowChk[i] -= q.lastRowContrib[i]
				q.lastRowContrib[i] = 0
			}
		} else {
			q.lastPanel = p
			for i := range q.lastRowContrib {
				q.lastRowContrib[i] = 0
			}
		}
		for j := 0; j < ib; j++ {
			c := p + j
			s := 0.0
			for i := c + 2; i < n; i++ {
				v := hostA.At(i, c)
				s += v
				q.rowChk[i] += v
				q.lastRowContrib[i] += v
			}
			q.colChk[c] = s
		}
		q.absorbedCols = p + ib
	})
}

// verifyAndCorrect recomputes fresh checksums over the protected region
// (columns 0..limit-1) and repairs any mismatching element in hostA,
// returning the number of corrections. Ambiguous patterns (rectangles)
// return ErrUncorrectable. Run once at the end of the factorization, as
// the paper prescribes — an error in Q never propagates, so per-iteration
// checks are unnecessary. journal (optional) receives the records for
// the check and each repaired element, tagged with iteration iter.
func (q *qChecksums) verifyAndCorrect(h hostLane, pp sim.Params, hostA *matrix.Matrix, limit int, tol float64, journal func(obs.Event), iter int) (int, error) {
	if limit > q.absorbedCols {
		limit = q.absorbedCols
	}
	n := q.n
	fixes := 0
	var vErr error
	h.HostOp(pp.GemvHost(n, max(limit, 1)), func() {
		freshRow := make([]float64, n)
		freshCol := make([]float64, n)
		for c := 0; c < limit; c++ {
			for i := c + 2; i < n; i++ {
				v := hostA.At(i, c)
				freshRow[i] += v
				freshCol[c] += v
			}
		}
		var rows, cols []int
		rRes := make([]float64, n)
		cRes := make([]float64, n)
		for i := 0; i < n; i++ {
			rRes[i] = freshRow[i] - q.rowChk[i]
			if math.Abs(rRes[i]) > tol {
				rows = append(rows, i)
			}
		}
		for c := 0; c < limit; c++ {
			cRes[c] = freshCol[c] - q.colChk[c]
			if math.Abs(cRes[c]) > tol {
				cols = append(cols, c)
			}
		}
		correct := func(i, c int, delta float64) {
			hostA.Add(i, c, -delta)
			fixes++
			if journal != nil {
				ev := obs.Ev(obs.KindCorrection, iter)
				ev.Target = obs.TargetQ
				ev.Row, ev.Col, ev.Value = i, c, obs.Float(delta)
				journal(ev)
			}
		}
		if journal != nil {
			ev := obs.Ev(obs.KindChecksumCheck, iter)
			ev.Target = obs.TargetQ
			ev.Outcome = "clean"
			if len(rows) > 0 || len(cols) > 0 {
				ev.Outcome = "mismatch"
			}
			journal(ev)
		}
		switch {
		case len(rows) == 0 && len(cols) == 0:
			return
		case len(rows) == 0 || len(cols) == 0:
			// The checksum vectors themselves took the hit; refresh them.
			for _, i := range rows {
				q.rowChk[i] = freshRow[i]
			}
			for _, c := range cols {
				q.colChk[c] = freshCol[c]
			}
			return
		case len(rows) == 1:
			for _, c := range cols {
				correct(rows[0], c, cRes[c])
			}
		case len(cols) == 1:
			for _, i := range rows {
				correct(i, cols[0], rRes[i])
			}
		default:
			if len(rows) != len(cols) {
				vErr = fmt.Errorf("%w: Q check flagged %d rows vs %d columns", ErrUncorrectable, len(rows), len(cols))
				return
			}
			usedCol := make([]bool, len(cols))
			for _, i := range rows {
				match := -1
				for cj, c := range cols {
					if usedCol[cj] {
						continue
					}
					if math.Abs(rRes[i]-cRes[c]) <= tol {
						if match >= 0 {
							vErr = fmt.Errorf("%w: ambiguous Q residual match", ErrUncorrectable)
							return
						}
						match = cj
					}
				}
				if match < 0 {
					vErr = fmt.Errorf("%w: unmatched Q row residual", ErrUncorrectable)
					return
				}
				usedCol[match] = true
				correct(i, cols[match], rRes[i])
			}
		}
	})
	return fixes, vErr
}
