package ft

import (
	"errors"
	"math"
	"testing"

	"repro/internal/devpool"
	"repro/internal/gpu"
	"repro/internal/hybrid"
	"repro/internal/lapack"
	"repro/internal/matrix"
	"repro/internal/obs"
	"repro/internal/sim"
)

func newDevs(k int, mode gpu.Mode) []*gpu.Device {
	devs := make([]*gpu.Device, k)
	for i := range devs {
		devs[i] = gpu.NewIndexed(sim.K40c(), mode, i)
	}
	return devs
}

// multiPokeHook injects explicit pokes at one iteration boundary through
// the routing accessors, so it works on both the single- and multi-device
// paths.
type multiPokeHook struct {
	iter    int
	pokes   []Injection
	pending int
	fired   bool
}

func (h *multiPokeHook) BeforeIteration(ctx *IterCtx) {
	if ctx.Iter != h.iter || h.fired {
		return
	}
	h.fired = true
	for _, p := range h.pokes {
		ctx.PokeH(p.Row, p.Col, p.Delta)
		h.pending++
	}
}
func (h *multiPokeHook) ConsumePendingH() int { c := h.pending; h.pending = 0; return c }
func (h *multiPokeHook) PendingQ() int        { return 0 }

// The checksum halo must never leak into the data path: a clean FT run on
// K devices is bit-identical to the plain hybrid multi-device reduction —
// and therefore (by hybrid's own contract) bit-identical at every K.
func TestMultiFaultFreeBitIdenticalToHybrid(t *testing.T) {
	n, nb := 192, 16
	a := matrix.Random(n, n, 31)
	ref, err := hybrid.Reduce(a, hybrid.Options{NB: nb, Devices: newDevs(1, gpu.Real)})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{1, 2, 4} {
		res, err := Reduce(a, Options{NB: nb, Devices: newDevs(k, gpu.Real)})
		if err != nil {
			t.Fatal(err)
		}
		if res.Detections != 0 || res.Recoveries != 0 || res.QCorrections != 0 {
			t.Fatalf("k=%d: phantom resilience events: %+v", k, res)
		}
		if !res.Packed.Equal(ref.Packed) {
			d := res.Packed.Sub(ref.Packed).MaxAbs()
			t.Fatalf("k=%d: packed not bit-identical to hybrid (max |Δ| = %g)", k, d)
		}
		for i := range ref.Tau {
			if res.Tau[i] != ref.Tau[i] {
				t.Fatalf("k=%d: tau[%d] = %v vs hybrid's %v", k, i, res.Tau[i], ref.Tau[i])
			}
		}
	}
}

// A corrupted slab is detected at the next iteration boundary — before the
// fault can propagate — and corrected in place, with no checkpoints and no
// re-execution.
func TestMultiRecoversPokeWithoutReexecution(t *testing.T) {
	n, nb := 192, 16
	a := matrix.Random(n, n, 8)
	hook := &multiPokeHook{iter: 1, pokes: []Injection{{Row: 100, Col: 170, Delta: 3.5}}}
	res, err := Reduce(a, Options{NB: nb, Devices: newDevs(2, gpu.Real), Hook: hook})
	if err != nil {
		t.Fatal(err)
	}
	if res.Detections == 0 || res.Recoveries == 0 {
		t.Fatalf("fault not handled: %+v", res)
	}
	if res.Checkpoints != 0 || res.Reexecutions != 0 {
		t.Fatalf("multi path must correct in place: %d checkpoints, %d re-executions",
			res.Checkpoints, res.Reexecutions)
	}
	if len(res.CorrectedH) != 1 {
		t.Fatalf("corrected %d positions", len(res.CorrectedH))
	}
	c := res.CorrectedH[0]
	if c.Row != 100 || c.Col != 170 || math.Abs(c.Delta-3.5) > 1e-6 {
		t.Fatalf("wrong correction: %+v", c)
	}
	h := res.H()
	q := res.Q()
	if r := lapack.FactorizationResidual(a, q, h); r > 1e-13 {
		t.Fatalf("residual after recovery %v", r)
	}
	if r := lapack.OrthogonalityResidual(q); r > 1e-13 {
		t.Fatalf("orthogonality after recovery %v", r)
	}
}

// The acceptance criterion for slab-local recovery: a fault confined to
// one device's slab is corrected entirely on that device. Every other
// device's transfer counters are identical to a clean run's — nothing was
// recomputed or re-shipped on their behalf.
func TestMultiRecoveryIsSlabLocal(t *testing.T) {
	n, nb, k := 192, 16, 2
	a := matrix.Random(n, n, 13)
	row, col := 100, 170
	part := devpool.NewPartition(n, nb, k)
	owner := part.Slabs[part.SlabOf(col)].Owner

	run := func(hook Hook) []*gpu.Device {
		devs := newDevs(k, gpu.Real)
		if _, err := Reduce(a, Options{NB: nb, Devices: devs, Hook: hook}); err != nil {
			t.Fatal(err)
		}
		return devs
	}
	clean := run(nil)
	faulted := run(&multiPokeHook{iter: 1, pokes: []Injection{{Row: row, Col: col, Delta: 2.0}}})

	for d := 0; d < k; d++ {
		cc, cb := clean[d].TransferStats()
		fc, fb := faulted[d].TransferStats()
		if d == owner {
			if fc <= cc {
				t.Fatalf("owner device %d: expected extra recovery transfers, clean %d vs faulted %d", d, cc, fc)
			}
			continue
		}
		if fc != cc || fb != cb {
			t.Fatalf("device %d (not the owner) moved different data under a fault: clean %d/%dB, faulted %d/%dB",
				d, cc, cb, fc, fb)
		}
	}
}

// An exponent-field hit that drives a value non-finite is unrecoverable by
// residual arithmetic; the multi path must fail loudly, never silently.
func TestMultiNonFiniteUncorrectable(t *testing.T) {
	n, nb := 192, 16
	a := matrix.Random(n, n, 17)
	hook := &multiPokeHook{iter: 1, pokes: []Injection{{Row: 50, Col: 100, Delta: math.Inf(1)}}}
	_, err := Reduce(a, Options{NB: nb, Devices: newDevs(2, gpu.Real), Hook: hook})
	if !errors.Is(err, ErrUncorrectable) {
		t.Fatalf("expected ErrUncorrectable, got %v", err)
	}
}

// Cost-only mode: detection is hook-driven, recovery kernels are charged,
// and the faulted run's simulated makespan strictly exceeds the clean one.
func TestMultiCostOnlyChargesRecovery(t *testing.T) {
	n, nb := 256, 32
	a := matrix.Random(n, n, 3)
	clean, err := Reduce(a, Options{NB: nb, Devices: newDevs(2, gpu.CostOnly)})
	if err != nil {
		t.Fatal(err)
	}
	hook := &multiPokeHook{iter: 1, pokes: []Injection{{Row: 9, Col: 120, Delta: 1}}}
	res, err := Reduce(a, Options{NB: nb, Devices: newDevs(2, gpu.CostOnly), Hook: hook})
	if err != nil {
		t.Fatal(err)
	}
	if res.Detections == 0 || res.Recoveries == 0 {
		t.Fatalf("cost-only detection did not fire: %+v", res)
	}
	if res.SimSeconds <= clean.SimSeconds {
		t.Fatalf("recovery charged no time: clean %v vs faulted %v", clean.SimSeconds, res.SimSeconds)
	}
}

// Snapshot resume is a single-device feature; combining it with a pool
// must fail fast rather than silently ignore the pool.
func TestMultiRejectsSnapshotResume(t *testing.T) {
	a := matrix.Random(64, 64, 5)
	snap := &Snapshot{}
	if _, err := reduceFrom(a, snap, Options{NB: 16, Devices: newDevs(2, gpu.Real)}); err == nil {
		t.Fatal("expected an error resuming a snapshot on the multi-device path")
	}
}

// Counters and journal: the multi path reports through the same obs
// vocabulary as the single-device path.
func TestMultiObsCountersAndJournal(t *testing.T) {
	n, nb := 192, 16
	a := matrix.Random(n, n, 23)
	reg := obs.NewRegistry()
	j := obs.NewJournal()
	hook := &multiPokeHook{iter: 1, pokes: []Injection{{Row: 80, Col: 40, Delta: 1.5}}}
	res, err := Reduce(a, Options{NB: nb, Devices: newDevs(2, gpu.Real), Hook: hook, Obs: reg, Journal: j})
	if err != nil {
		t.Fatal(err)
	}
	counters := map[string]float64{}
	gauges := map[string]float64{}
	for _, p := range reg.Snapshot() {
		switch p.Kind {
		case "counter":
			counters[p.Name] += p.Value
		case "gauge":
			gauges[p.Name] += p.Value
		}
	}
	if counters["ft_detections_total"] != float64(res.Detections) {
		t.Fatalf("detections counter %v vs result %d", counters["ft_detections_total"], res.Detections)
	}
	if counters["ft_checksum_checks_total"] == 0 {
		t.Fatal("no checksum checks counted")
	}
	if counters["ft_corrections_total"] == 0 {
		t.Fatal("no corrections counted")
	}
	kinds := map[obs.Kind]int{}
	for _, ev := range j.Events() {
		kinds[ev.Kind]++
	}
	for _, k := range []obs.Kind{obs.KindChecksumCheck, obs.KindDetection, obs.KindLocation, obs.KindCorrection} {
		if kinds[k] == 0 {
			t.Fatalf("journal is missing %v events (have %v)", k, kinds)
		}
	}
	if _, ok := gauges["sim_makespan_seconds"]; !ok {
		t.Fatalf("pool did not publish makespan gauge: %v", gauges)
	}
}
