package ft

import (
	"fmt"
	"math"

	"repro/internal/blas"
	"repro/internal/gpu"
	"repro/internal/matrix"
	"repro/internal/obs"
	"repro/internal/sim"
)

// detectAt runs Algorithm 3's lines 12-13: sum the checksum column and the
// checksum row on the device and compare the totals against the threshold.
// Both totals estimate the grand sum of the mathematical matrix; a data
// corruption during the iteration leaves an asymmetric footprint in the
// maintained checksums and the totals diverge. iter identifies the blocked
// iteration for the event journal. dataReady is the iteration's
// left-update completion event, the last writer of both checksums.
//
// Under the lookahead schedule the check is optimistic: the totals run on
// the device's lookahead stream and the host charges the verdict's
// round-trip only when a mismatch actually fires — a clean boundary never
// blocks the next panel's factorization. The comparison itself still
// happens here, in program order, before the next iteration consumes
// anything, so the detection boundary (and every recovery decision) is
// identical to the serialized schedule.
func (r *reducer) detectAt(iter int, dataReady sim.Event) bool {
	dev := r.dev
	n := r.n
	prevPhase := dev.SetPhase("detect")
	defer dev.SetPhase(prevPhase)
	var sre, sce float64
	var verdict sim.Event
	if r.la {
		// The totals stay on the compute queue (they are its tail: FIFO
		// order puts them right after the remainder update they verify),
		// and the verdict rides back through device-mapped reads on the
		// same stream — the copy engine stays free for the next panel.
		e1 := dev.Sum(r.dA, 0, n, n, &sre, dataReady)
		r1 := dev.ReadScalarTail(e1)
		e2 := dev.SumRow(r.dA, n, 0, n, &sce, dataReady)
		verdict = dev.ReadScalarTail(e2, r1)
	} else {
		e1 := dev.Sum(r.dA, 0, n, n, &sre)
		dev.ReadScalar(e1)
		e2 := dev.SumRow(r.dA, n, 0, n, &sce)
		dev.ReadScalar(e2)
	}

	var mismatch bool
	if dev.Mode == gpu.CostOnly {
		// No data to compare: the injection hook drives the branch so the
		// recovery cost is charged exactly when a fault was injected.
		r.lastDetectGap = 0
		mismatch = r.opt.Hook != nil && r.opt.Hook.ConsumePendingH() > 0
	} else {
		if r.opt.Hook != nil {
			r.opt.Hook.ConsumePendingH() // keep hook state consistent
		}
		r.lastDetectGap = math.Abs(sre - sce)
		mismatch = r.lastDetectGap > r.tauDet
		// Overflow blindness: a flip landing in the exponent can drive a
		// value — and with it both running totals — to ±Inf or NaN, where
		// Inf−Inf = NaN compares false against every τ. A clean reduction
		// keeps both totals finite (‖A‖₁ is bounded), so a non-finite
		// total is itself proof of corruption.
		if math.IsNaN(r.lastDetectGap) || math.IsInf(sre, 0) || math.IsInf(sce, 0) {
			mismatch = true
		}
	}
	if mismatch && r.la {
		// Pessimistic path: the host only learns the verdict once the
		// detection read lands, so charge that wait before recovering.
		dev.Sync(verdict)
	}
	r.count("ft_checksum_checks_total")
	ev := obs.Ev(obs.KindChecksumCheck, iter)
	ev.Target = obs.TargetH
	ev.Value = obs.Float(r.lastDetectGap)
	ev.Outcome = "clean"
	if mismatch {
		ev.Outcome = "mismatch"
	}
	r.journal(ev)
	return mismatch
}

// recover implements lines 14-15: reverse the left and right updates with
// the retained intermediates (S, Y, V, T), restore the panel from the
// diskless checkpoint, then locate and correct the error(s). The caller
// re-executes the iteration afterwards.
func (r *reducer) recover(iter, p, ib int) error {
	dev := r.dev
	n, k := r.n, p+1
	prevPhase := dev.SetPhase("recovery")
	defer dev.SetPhase(prevPhase)

	// Reverse the left update: C += V·Sᵀ and the checksum row gets the
	// opposite Vce correction; the checksum column rides along as an
	// extra column of C exactly as in the forward direction.
	e := r.applyVS(p, ib, +1, sim.Event{})
	e = r.kernChkRowLeft(p, ib, +1, e)

	// Reverse the right update with the retained Y (sign-flipped GEMMs).
	ei := r.hostA.At(p+ib, p+ib-1)
	e = dev.Set(r.dA, p+ib, p+ib-1, 1, e)
	e = dev.Gemm(blas.NoTrans, blas.Trans, k, n-p-ib, ib, +1, r.dY, 0, 0, r.dA, p+ib, p, 1, r.dA, 0, p+ib, e)
	e = dev.Gemm(blas.NoTrans, blas.Trans, n+1-k, n-p-ib, ib, +1, r.dY, k, 0, r.dA, p+ib, p, 1, r.dA, k, p+ib, e)
	e = dev.Gemv(blas.NoTrans, n, ib, +1, r.dY, 0, 0, r.dVsum, 0, 0, 1, r.dA, 0, n, e)
	e = dev.Set(r.dA, p+ib, p+ib-1, ei, e)
	rev := obs.Ev(obs.KindReverse, iter)
	rev.Target = obs.TargetH
	r.journal(rev)

	// Restore the panel columns and their checksum-row segment from the
	// diskless checkpoint (host memory → device).
	up := dev.H2DAsync(r.dA, 0, p, r.ckPanel.View(0, 0, n, ib), e)
	up = dev.H2DAsync(r.dA, n, p, r.ckChkRow.View(0, 0, 1, ib), up)
	dev.Sync(up)
	ck := obs.Ev(obs.KindCheckpointRestore, iter)
	ck.Target = obs.TargetH
	r.journal(ck)

	// Locate and correct (line 15).
	return r.locateAndCorrect(iter, p, p, true)
}

// locateAndCorrect recomputes fresh mathematical checksums (Hessenberg-
// aware for the finished columns left of split), compares them with the
// maintained ones, and corrects the flagged elements on the device.
// If patchPanel is set, corrections falling inside the current panel are
// also applied to the host-side checkpoint so the re-execution is clean.
func (r *reducer) locateAndCorrect(iter, split, panel int, patchPanel bool) error {
	dev := r.dev
	n := r.n
	pp := dev.Params

	// Fresh row sums of the mathematical matrix: finished columns
	// contribute only their Hessenberg entries (rows i ≤ j+1); active
	// columns contribute fully.
	dA, dFresh := r.dA, r.dFresh
	eR := dev.Custom(pp.GemvDevice(n, n), func() {
		for i := 0; i < n; i++ {
			dFresh.Data[i] = 0
		}
		for j := 0; j < n; j++ {
			top := n - 1
			if j < split {
				top = min(j+1, n-1)
			}
			for i := 0; i <= top; i++ {
				dFresh.Data[i] += dA.At(i, j)
			}
		}
	})
	eC := dev.Custom(pp.GemvDevice(n, n), func() {
		for j := 0; j < n; j++ {
			top := n - 1
			if j < split {
				top = min(j+1, n-1)
			}
			s := 0.0
			for i := 0; i <= top; i++ {
				s += dA.At(i, j)
			}
			dFresh.Data[dFresh.Stride+j] = s
		}
	})

	// Bring the fresh and maintained checksums to the host.
	freshHost := matrix.New(n, 2)
	chkColHost := matrix.New(n, 1)
	chkRowHost := matrix.New(1, n)
	e := dev.D2HAsync(freshHost, dFresh, 0, 0, eR, eC)
	e = dev.D2HAsync(chkColHost, dA, 0, n, e)
	dev.Sync(dev.D2HAsync(chkRowHost, dA, n, 0, e))

	if dev.Mode == gpu.CostOnly {
		// Charge a representative correction kernel; the hook already
		// consumed the injection, so the re-execution will run clean.
		dev.Add(dA, 0, 0, 0)
		loc := obs.Ev(obs.KindLocation, iter)
		loc.Target = obs.TargetH
		loc.Outcome = "cost-only"
		r.journal(loc)
		corr := obs.Ev(obs.KindCorrection, iter)
		corr.Target = obs.TargetH
		corr.Outcome = "cost-only"
		r.journal(corr)
		r.count("ft_corrections_total")
		return nil
	}

	tol := r.tauDet
	var rows, cols []int
	rRes := make([]float64, n)
	cRes := make([]float64, n)
	for i := 0; i < n; i++ {
		rRes[i] = freshHost.At(i, 0) - chkColHost.At(i, 0)
		if math.Abs(rRes[i]) > tol {
			rows = append(rows, i)
		}
	}
	for j := 0; j < n; j++ {
		cRes[j] = freshHost.At(j, 1) - chkRowHost.At(0, j)
		if math.Abs(cRes[j]) > tol {
			cols = append(cols, j)
		}
	}

	loc := obs.Ev(obs.KindLocation, iter)
	loc.Target = obs.TargetH
	loc.Outcome = fmt.Sprintf("%d rows, %d cols flagged", len(rows), len(cols))
	r.journal(loc)

	apply := func(i, j int, delta float64) {
		dev.Add(r.dA, i, j, -delta)
		r.res.CorrectedH = append(r.res.CorrectedH, Injection{Row: i, Col: j, Delta: delta, Target: TargetH, Iter: iter})
		if patchPanel && j >= panel && j < panel+r.nb {
			r.ckPanel.Add(i, j-panel, -delta)
		}
		r.count("ft_corrections_total")
		corr := obs.Ev(obs.KindCorrection, iter)
		corr.Target = obs.TargetH
		corr.Row, corr.Col, corr.Value = i, j, obs.Float(delta)
		r.journal(corr)
	}

	switch {
	case len(rows) == 0 && len(cols) == 0:
		// Threshold-level noise triggered detection but nothing locates:
		// treat as a transient false positive and re-execute.
		return nil
	case len(rows) == 0:
		// The maintained checksum row itself was corrupted: the fresh
		// column sums are the truth.
		for _, j := range cols {
			dev.Set(r.dA, n, j, freshHost.At(j, 1))
		}
		return nil
	case len(cols) == 0:
		// The maintained checksum column was corrupted.
		for _, i := range rows {
			dev.Set(r.dA, i, n, freshHost.At(i, 0))
		}
		return nil
	case len(rows) == 1:
		// All errors share one row: column residuals give each delta.
		for _, j := range cols {
			apply(rows[0], j, cRes[j])
		}
		return nil
	case len(cols) == 1:
		for _, i := range rows {
			apply(i, cols[0], rRes[i])
		}
		return nil
	default:
		// General case: match row residuals to column residuals by value.
		// A unique matching exists exactly when the error positions do
		// not form the rectangle pattern the paper excludes.
		if len(rows) != len(cols) {
			return fmt.Errorf("%w: %d rows vs %d columns flagged", ErrUncorrectable, len(rows), len(cols))
		}
		usedCol := make([]bool, len(cols))
		for _, i := range rows {
			match := -1
			for cj, j := range cols {
				if usedCol[cj] {
					continue
				}
				if math.Abs(rRes[i]-cRes[j]) <= tol {
					if match >= 0 {
						return fmt.Errorf("%w: ambiguous residual match", ErrUncorrectable)
					}
					match = cj
				}
			}
			if match < 0 {
				return fmt.Errorf("%w: unmatched row residual", ErrUncorrectable)
			}
			usedCol[match] = true
			apply(i, cols[match], rRes[i])
		}
		return nil
	}
}

// finalHCheck verifies the whole device-resident matrix (finished columns
// Hessenberg-aware) once after the last blocked iteration — an extension
// beyond the paper catching late errors in already-finished H data. The
// corrected elements are also patched in the host copy.
func (r *reducer) finalHCheck(split int) error {
	before := len(r.res.CorrectedH)
	if err := r.locateAndCorrect(r.res.BlockedIters, split, 0, false); err != nil {
		return err
	}
	if r.dev.Mode != gpu.CostOnly {
		for _, c := range r.res.CorrectedH[before:] {
			if c.Col < split {
				// Finished columns were already transferred to the host;
				// mirror the corrected device value (the host copy may
				// predate or postdate the corruption, the device value
				// after correction is authoritative either way).
				r.hostA.Set(c.Row, c.Col, r.dA.At(c.Row, c.Col))
			}
		}
	}
	return nil
}
