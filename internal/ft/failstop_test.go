package ft

import (
	"errors"
	"testing"

	"repro/internal/gpu"
	"repro/internal/lapack"
	"repro/internal/matrix"
	"repro/internal/sim"
)

// killSpec arms one device kill at one iteration.
type killSpec struct {
	iter  int
	dev   int
	point string
}

// killHook arms fail-stop device kills through IterCtx.KillDevice; it
// performs no transient injections.
type killHook struct {
	kills []killSpec
}

func (h *killHook) BeforeIteration(ctx *IterCtx) {
	for _, k := range h.kills {
		if ctx.Iter == k.iter {
			ctx.KillDevice(k.dev, k.point)
		}
	}
}
func (h *killHook) ConsumePendingH() int { return 0 }
func (h *killHook) PendingQ() int        { return 0 }

// mustReduceClean runs a fault-free reduction as the bit-identical
// reference.
func mustReduceClean(t *testing.T, a *matrix.Matrix, nb, k int) *Result {
	t.Helper()
	res, err := Reduce(a, Options{NB: nb, Devices: newDevs(k, gpu.Real)})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func checkBitIdentical(t *testing.T, res, ref *Result, label string) {
	t.Helper()
	if !res.Packed.Equal(ref.Packed) {
		d := res.Packed.Sub(ref.Packed).MaxAbs()
		t.Fatalf("%s: packed not bit-identical to fault-free run (max |Δ| = %g)", label, d)
	}
	for i := range ref.Tau {
		if res.Tau[i] != ref.Tau[i] {
			t.Fatalf("%s: tau[%d] = %v vs clean %v", label, i, res.Tau[i], ref.Tau[i])
		}
	}
}

// The parity layer must never leak into the data path: a clean run with
// fail-stop on is bit-identical to one with it off, with no phantom
// loss or reconstruction events.
func TestFailStopCleanBitIdentical(t *testing.T) {
	n, nb := 192, 16
	a := matrix.Random(n, n, 41)
	for _, k := range []int{1, 2, 3} {
		ref := mustReduceClean(t, a, nb, k)
		res, err := Reduce(a, Options{NB: nb, Devices: newDevs(k, gpu.Real), FailStop: true})
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if res.DeviceLosses != 0 || res.FailStopRecoveries != 0 {
			t.Fatalf("k=%d: phantom fail-stop events: %+v", k, res)
		}
		checkBitIdentical(t, res, ref, "clean failstop")
	}
}

// A device killed at each recovery window — iteration boundary, panel
// offload, and mid trailing update (the lookahead-split window) — is
// reconstructed onto a spare and the result stays bit-identical to the
// fault-free run.
func TestFailStopKillPointsBitIdentical(t *testing.T) {
	n, nb, k := 192, 16, 3
	a := matrix.Random(n, n, 42)
	ref := mustReduceClean(t, a, nb, k)
	for _, point := range []string{"boundary", "panel", "update"} {
		for dev := 0; dev < k; dev++ {
			hook := &killHook{kills: []killSpec{{iter: 2, dev: dev, point: point}}}
			res, err := Reduce(a, Options{
				NB: nb, Devices: newDevs(k, gpu.Real), FailStop: true, Hook: hook,
			})
			if err != nil {
				t.Fatalf("%s d%d: %v", point, dev, err)
			}
			if res.DeviceLosses != 1 || res.FailStopRecoveries != 1 {
				t.Fatalf("%s d%d: losses=%d recoveries=%d", point, dev,
					res.DeviceLosses, res.FailStopRecoveries)
			}
			checkBitIdentical(t, res, ref, point+" kill")
			h, q := res.H(), res.Q()
			if r := lapack.FactorizationResidual(a, q, h); r > 1e-13 {
				t.Fatalf("%s d%d: residual after recovery %v", point, dev, r)
			}
		}
	}
}

// Killing the panel slab's owner as the offload begins exercises the
// sharpest window: the reconstructed slab immediately feeds the host
// factorization. Run with lookahead disabled too — the recovery must
// not depend on the schedule.
func TestFailStopNoLookaheadKill(t *testing.T) {
	n, nb, k := 192, 16, 2
	a := matrix.Random(n, n, 43)
	ref, err := Reduce(a, Options{NB: nb, Devices: newDevs(k, gpu.Real), DisableLookahead: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, point := range []string{"panel", "update"} {
		hook := &killHook{kills: []killSpec{{iter: 1, dev: 1, point: point}}}
		res, err := Reduce(a, Options{
			NB: nb, Devices: newDevs(k, gpu.Real), FailStop: true,
			DisableLookahead: true, Hook: hook,
		})
		if err != nil {
			t.Fatalf("%s: %v", point, err)
		}
		if res.FailStopRecoveries != 1 {
			t.Fatalf("%s: recoveries=%d", point, res.FailStopRecoveries)
		}
		checkBitIdentical(t, res, ref, "no-lookahead "+point)
	}
}

// A second device lost while reconstruction is in flight exceeds the
// parity's single-loss budget: the run must fail with ErrUncorrectable,
// never silently.
func TestFailStopDoubleFaultUncorrectable(t *testing.T) {
	n, nb, k := 192, 16, 3
	a := matrix.Random(n, n, 44)
	hook := &killHook{kills: []killSpec{
		{iter: 2, dev: 0, point: "update"},
		{iter: 2, dev: 1, point: "recovery"},
	}}
	res, err := Reduce(a, Options{
		NB: nb, Devices: newDevs(k, gpu.Real), FailStop: true, Hook: hook,
	})
	if !errors.Is(err, ErrUncorrectable) {
		t.Fatalf("double fault: err = %v, want ErrUncorrectable", err)
	}
	if res.DeviceLosses != 2 {
		t.Fatalf("double fault: losses=%d, want 2", res.DeviceLosses)
	}
	if res.FailStopRecoveries != 0 {
		t.Fatalf("double fault: phantom recovery")
	}
}

// A device loss with fail-stop recovery disabled must fail loudly.
func TestFailStopDisabledKillUncorrectable(t *testing.T) {
	n, nb, k := 192, 16, 2
	a := matrix.Random(n, n, 45)
	hook := &killHook{kills: []killSpec{{iter: 1, dev: 0, point: "boundary"}}}
	res, err := Reduce(a, Options{NB: nb, Devices: newDevs(k, gpu.Real), Hook: hook})
	if !errors.Is(err, ErrUncorrectable) {
		t.Fatalf("failstop off: err = %v, want ErrUncorrectable", err)
	}
	if res.DeviceLosses != 1 {
		t.Fatalf("failstop off: losses=%d, want 1", res.DeviceLosses)
	}
}

// The single-device path has no peers to reconstruct from: a kill there
// is always fatal, with or without FailStop.
func TestFailStopSingleDeviceKillUncorrectable(t *testing.T) {
	n, nb := 96, 16
	a := matrix.Random(n, n, 46)
	hook := &killHook{kills: []killSpec{{iter: 1, dev: 0, point: "boundary"}}}
	_, err := Reduce(a, Options{NB: nb, Device: gpu.New(sim.K40c(), gpu.Real), Hook: hook})
	if !errors.Is(err, ErrUncorrectable) {
		t.Fatalf("single device: err = %v, want ErrUncorrectable", err)
	}
}

// Cost-only mode carries the fail-stop machinery too (the bench sweeps
// run there): kills, reconstruction charges, and counters all behave,
// and the modeled makespan with a recovery exceeds the clean one.
func TestFailStopCostOnlyRecovery(t *testing.T) {
	n, nb, k := 384, 32, 3
	a := matrix.Random(n, n, 47)
	clean, err := Reduce(a, Options{NB: nb, Devices: newDevs(k, gpu.CostOnly), FailStop: true})
	if err != nil {
		t.Fatal(err)
	}
	hook := &killHook{kills: []killSpec{{iter: 2, dev: 1, point: "update"}}}
	res, err := Reduce(a, Options{
		NB: nb, Devices: newDevs(k, gpu.CostOnly), FailStop: true, Hook: hook,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FailStopRecoveries != 1 || res.DeviceLosses != 1 {
		t.Fatalf("cost-only: losses=%d recoveries=%d", res.DeviceLosses, res.FailStopRecoveries)
	}
	if res.SimSeconds <= clean.SimSeconds {
		t.Fatalf("reconstruction charged no time: killed %v <= clean %v",
			res.SimSeconds, clean.SimSeconds)
	}
}
