package ft

// Fail-stop device-loss recovery for the multi-device path (beyond-
// paper, DESIGN.md §13). The transient-error machinery of the paper
// assumes memory that still answers; this layer survives a device that
// never answers again. A devpool.Parity on a dedicated checksum device
// holds the bitwise XOR of every snake round's slabs, refreshed at two
// parity-consistent sync points per blocked iteration:
//
//   - after the right update — the mid-iteration point where the
//     lookahead split leaves priority columns ahead of the remainder;
//     whatever bits the slabs hold there are captured as-is;
//   - at the end of the iteration, after the panel slab's re-encode —
//     the boundary-consistent state.
//
// Kills (fault.KillPoint) fire only at these consistent points, so
// reconstruction — parity ⊕ survivors, an exact GF(2) identity —
// reproduces the precise bits of the last refresh with no replay, and
// the resumed schedule computes values identical to a fault-free run.
// A kill mid trailing update additionally needs the iteration's
// broadcast operands (dense V, T, Y) re-uploaded to the spare; all
// three still live in host memory, so Shard.Rebroadcast restores the
// exact bits and the cached V column sums are recomputed from them.
//
// A second loss while recovery is in flight (or any loss with FailStop
// off) exceeds the single-loss budget of the encoding and surfaces as
// ErrUncorrectable — never silently.

import (
	"fmt"

	"repro/internal/devpool"
	"repro/internal/gpu"
	"repro/internal/obs"
)

// failStop is the per-run state of the fail-stop layer.
type failStop struct {
	parity *devpool.Parity
	// spare supplies replacement devices (Options.SpareDevice or the
	// fabricated default).
	spare func() *gpu.Device
	// kills maps an armed kill point to the device index that dies
	// there (IterCtx.KillDevice); cleared as each kill fires.
	kills map[string]int
}

// fsArm registers a device kill for the current iteration at the given
// point. Out-of-range devices are ignored. Arming works regardless of
// Options.FailStop: a loss with recovery disabled must still fire so it
// can fail loudly instead of being silently dropped.
func (r *multiReducer) fsArm(d int, point string) {
	if d < 0 || d >= r.pool.K() {
		return
	}
	if r.fsKills == nil {
		r.fsKills = map[string]int{}
	}
	r.fsKills[point] = d
}

// fsSetup initializes the fail-stop layer after the slabs hold their
// encoded initial content: allocates the parity device, computes the
// initial encoding, and returns a cleanup func.
func (r *multiReducer) fsSetup() func() {
	if !r.opt.FailStop {
		return func() {}
	}
	spare := r.opt.SpareDevice
	if spare == nil {
		next := r.pool.K()
		spare = func() *gpu.Device {
			dev := gpu.NewIndexed(r.pool.Params, r.pool.Mode, next)
			next++
			return dev
		}
	}
	prev := r.pool.SetPhase("parity")
	fs := &failStop{parity: devpool.NewParity(r.sh, spare()), spare: spare}
	fs.parity.RefreshAll()
	r.pool.SetPhase(prev)
	r.fs = fs
	return func() { fs.parity.Free() }
}

// fsRefresh brings the parity up to date with the slabs at a sync point
// of the iteration at panel p. No-op with FailStop off.
func (r *multiReducer) fsRefresh(p int) {
	if r.fs == nil {
		return
	}
	prev := r.pool.SetPhase("parity")
	r.fs.parity.Refresh(p)
	r.pool.SetPhase(prev)
}

// fsRefreshRoundOf re-encodes the parity round containing slab s after
// a transient correction rewrote slab content already folded into
// parity. No-op with FailStop off.
func (r *multiReducer) fsRefreshRoundOf(s int) {
	if r.fs == nil {
		return
	}
	prev := r.pool.SetPhase("parity")
	r.fs.parity.RefreshRoundOf(s)
	r.pool.SetPhase(prev)
}

// fsKill marks device d dead and journals the loss.
func (r *multiReducer) fsKill(d int, point string, iter int) {
	dev := r.pool.Devices[d]
	dev.Kill()
	r.res.DeviceLosses++
	r.count("ft_device_losses_total")
	ev := obs.Ev(obs.KindDeviceLoss, iter)
	ev.Target = obs.TargetH
	ev.Outcome = point
	ev.Device = dev.Name()
	r.journal(ev)
}

// fsKillAt fires an armed kill at the named point of iteration iter
// (panel p, k = p+1, panel width ib) and drives recovery. Returns nil
// when no kill is armed for the point or recovery succeeded.
func (r *multiReducer) fsKillAt(point string, iter, p, k, ib int) error {
	d, ok := r.fsKills[point]
	if !ok {
		return nil
	}
	delete(r.fsKills, point)
	r.fsKill(d, point, iter)
	return r.fsRecover(d, point, iter, p, k, ib)
}

// fsRecover reconstructs dead device d's slabs onto a spare and resumes
// the schedule in place: replace the pool slot, reallocate the shard's
// device-resident state there, rebuild the slabs from parity ⊕
// survivors, and — for a mid-update loss — re-upload the iteration's
// broadcast operands from host memory.
func (r *multiReducer) fsRecover(d int, point string, iter, p, k, ib int) error {
	pool := r.pool
	lost := pool.Devices[d].Name()
	// An armed recovery-point kill models the double fault: the second
	// device dies the moment reconstruction begins.
	if d2, ok := r.fsKills[killRecovery]; ok {
		delete(r.fsKills, killRecovery)
		r.fsKill(d2, killRecovery, iter)
	}
	if r.fs == nil {
		return fmt.Errorf("%w: device %s lost at iteration %d with fail-stop recovery disabled", ErrUncorrectable, lost, iter)
	}
	prev := pool.SetPhase("failstop_recovery")
	defer pool.SetPhase(prev)
	// Single-loss budget: every surviving peer and the parity device
	// must be alive. (Parity.Reconstruct re-checks per slab; this scan
	// reports the double fault before any partial work.)
	for i, dev := range pool.Devices {
		if i != d && dev.Dead() {
			return fmt.Errorf("%w: devices %s and %s lost concurrently (fail-stop parity covers a single loss)", ErrUncorrectable, lost, dev.Name())
		}
	}
	if r.fs.parity.Dev.Dead() {
		return fmt.Errorf("%w: parity device lost with device %s (fail-stop parity covers a single loss)", ErrUncorrectable, lost)
	}
	if r.finDev == pool.Devices[d] {
		// The lost device carried the panel slab's frozen-prefix
		// accumulator, which is not parity-protected; drop it so the next
		// maintenance rebuilds the prefix from the reconstructed slab.
		r.finCol, r.finDev, r.finSlab = nil, nil, -1
	}
	pool.ReplaceDevice(d, r.fs.spare())
	if r.fused {
		pool.Devices[d].SetSubstrateFused(true)
	}
	r.sh.Reattach(d)
	if err := r.fs.parity.Reconstruct(d); err != nil {
		return fmt.Errorf("%w: %v", ErrUncorrectable, err)
	}
	if point == killUpdate {
		// Mid-iteration loss: the spare needs this iteration's broadcast
		// V/T/Y (host-resident, exact bits) for the pending left update.
		r.sh.Rebroadcast(d, r.tHost, r.yHost, k, ib)
	}
	r.res.FailStopRecoveries++
	r.count("ft_failstop_reconstructions_total")
	ev := obs.Ev(obs.KindReconstruction, iter)
	ev.Target = obs.TargetH
	ev.Outcome = fmt.Sprintf("%s: %s -> %s", point, lost, pool.Devices[d].Name())
	ev.Device = pool.Devices[d].Name()
	r.journal(ev)
	return nil
}

// Kill-point names, mirrored from fault.KillPoint (ft cannot import
// fault — fault imports ft for the Hook interface).
const (
	killBoundary = "boundary"
	killPanel    = "panel"
	killUpdate   = "update"
	killRecovery = "recovery"
)
