package ft

import (
	"testing"

	"repro/internal/gpu"
	"repro/internal/hybrid"
	"repro/internal/matrix"
	"repro/internal/sim"
)

func TestSmokeFaultFree(t *testing.T) {
	n := 100
	a := matrix.Random(n, n, 1)
	res, err := Reduce(a, Options{NB: 16, Device: gpu.New(sim.K40c(), gpu.Real)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Detections != 0 {
		t.Fatalf("false detections: %d", res.Detections)
	}
	ref, err := hybrid.Reduce(a, hybrid.Options{NB: 16, Device: gpu.New(sim.K40c(), gpu.Real)})
	if err != nil {
		t.Fatal(err)
	}
	if d := res.Packed.Sub(ref.Packed).MaxAbs(); d > 1e-11 {
		t.Fatalf("FT result differs from baseline by %v", d)
	}
}
