package ft_test

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/ft"
	"repro/internal/gpu"
	"repro/internal/matrix"
	"repro/internal/sim"
)

// ExampleReduce injects one soft error into the lower trailing matrix
// (Area 2 of the paper's Figure 2a) during the fault-tolerant reduction
// and shows the scheme detecting, recovering, and re-executing the
// iteration — the Algorithm 3 pipeline end to end.
func ExampleReduce() {
	a := matrix.Random(96, 96, 1)
	in := fault.New(fault.Plan{Area: fault.Area2, TargetIter: 1, Delta: 5})
	res, err := ft.Reduce(a, ft.Options{
		NB:     16,
		Device: gpu.New(sim.K40c(), gpu.Real),
		Hook:   in,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("detections=%d recoveries=%d reexecutions=%d\n",
		res.Detections, res.Recoveries, res.Reexecutions)
	// Output: detections=1 recoveries=1 reexecutions=1
}
