// Package ft implements the paper's contribution: the soft-error-resilient
// hybrid Hessenberg reduction (Algorithm 3, FT_DGEHRD).
//
// The input matrix on the device is encoded with a checksum column
// (A·e, appended as column n) and a checksum row (eᵀ·A, appended as row n).
// Every iteration maintains both checksums *through* the two-sided updates:
//
//   - the right update is applied to the checksum column by extending Vᵀ
//     with its column-sum vector (Vᵀe), and to the checksum row by treating
//     it as an extra matrix row updated with Yce = eᵀY = (eᵀA)·V·T
//     (computed from the maintained checksum row itself, the paper's
//     line 6);
//   - the left update is applied to the checksum column by including it as
//     an extra matrix column, and to the checksum row with the extended
//     reflector Vce = [V; eᵀV] (the paper's line 11). The intermediate
//     S = (CᵀV)·T is kept in device memory — the "panel worth of work
//     space" of the paper's storage analysis — which makes the reverse
//     computation a sign flip of the same GEMMs.
//
// At the end of every iteration the algorithm compares the total of the
// checksum column against the total of the checksum row (|Sre−Sce| > τ).
// On detection it reverses the left and right updates with the retained
// intermediates, restores the panel from the diskless checkpoint, locates
// the error(s) by comparing freshly computed checksums against the
// maintained ones, corrects them, and re-executes the iteration.
//
// The Householder vectors accumulating on the host (the Q matrix) are
// protected separately with host-side row/column checksums generated on
// the otherwise idle CPU and verified once after the last iteration
// (the paper's Section IV-E/F).
package ft

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/blas"
	"repro/internal/gpu"
	"repro/internal/hybrid"
	"repro/internal/lapack"
	"repro/internal/matrix"
	"repro/internal/obs"
	"repro/internal/sim"
)

// macheps is the double-precision unit roundoff.
const macheps = 2.220446049250313e-16

// ErrUncorrectable reports an error pattern the checksums cannot resolve
// (e.g. positions forming a rectangle, the case the paper excludes).
var ErrUncorrectable = errors.New("ft: detected errors are not correctable")

// ErrDetectionStorm reports that detection kept firing after the maximum
// number of recovery attempts for one iteration.
var ErrDetectionStorm = errors.New("ft: recovery retries exhausted")

// Target identifies which memory a fault was injected into.
type Target int

const (
	// TargetH is the device-resident data matrix (trailing matrix / H).
	TargetH Target = iota
	// TargetQ is the host-resident Householder-vector storage.
	TargetQ
)

// Injection describes one injected fault (used by hooks and reports).
type Injection struct {
	Row, Col int
	Delta    float64
	Target   Target
	Iter     int
}

// IterCtx gives an injection hook access to the live state at an
// iteration boundary. On the multi-device path Dev and DA are nil — the
// trailing matrix lives in per-device slabs — so hooks should corrupt
// device memory through PokeH/FlipBitH, which route a global coordinate
// to the owning slab on every path.
type IterCtx struct {
	Dev *gpu.Device
	// DA is the extended (n+1)×(n+1) device matrix (data + checksums).
	// Nil on the multi-device path.
	DA *gpu.Matrix
	// Host is the packed host matrix accumulating V and H.
	Host *matrix.Matrix
	// Iter, Panel, NB, N describe the upcoming iteration.
	Iter, Panel, NB, N int
	// reducer backs the process-level snapshot capture (snapshot.go).
	reducer *reducer
	// multi backs the accessor methods on the multi-device path.
	multi *multiReducer
}

// Mode reports the execution mode of the device(s) backing the run.
func (c *IterCtx) Mode() gpu.Mode {
	if c.multi != nil {
		return c.multi.pool.Mode
	}
	return c.Dev.Mode
}

// SimTime returns the current simulated time (for stamping events).
func (c *IterCtx) SimTime() float64 {
	if c.multi != nil {
		return c.multi.pool.Elapsed()
	}
	return c.Dev.Elapsed()
}

// PokeH adds delta to the device-resident trailing-matrix element at
// global (row, col), routing to the owning slab on the multi-device
// path. No-op in cost-only mode.
func (c *IterCtx) PokeH(row, col int, delta float64) {
	if c.multi != nil {
		c.multi.pokeH(row, col, delta)
		return
	}
	c.Dev.Poke(c.DA, row, col, delta)
}

// FlipBitH flips one bit of the device-resident element at global
// (row, col) and returns the applied delta (new − old); 0 in cost-only
// mode, where device data does not exist.
func (c *IterCtx) FlipBitH(row, col int, bit uint) float64 {
	if c.multi != nil {
		return c.multi.flipBitH(row, col, bit)
	}
	old := c.Dev.FlipBit(c.DA, row, col, bit)
	if c.Dev.Mode == gpu.Real {
		return c.DA.At(row, col) - old
	}
	return 0
}

// KillDevice arms a fail-stop device loss for the upcoming iteration:
// pool device d dies permanently at the named program point ("boundary",
// "panel", "update", or "recovery" — see fault.KillPoint). On the
// multi-device path the loss fires at that sync point and, with
// Options.FailStop, is recovered by parity reconstruction; without it
// the run fails with ErrUncorrectable. On the single-device path a lost
// device is always fatal (there are no peers to reconstruct from).
// Out-of-range device indices are ignored.
func (c *IterCtx) KillDevice(d int, point string) {
	if c.multi != nil {
		c.multi.fsArm(d, point)
		return
	}
	if c.reducer != nil {
		c.reducer.deviceLost = true
	}
}

// Hook lets a fault campaign inject errors at iteration boundaries, the
// paper's failure model ("the error is injected when iteration i has
// finished and iteration i+1 has not yet started").
type Hook interface {
	// BeforeIteration may inject faults into ctx.DA (device) or ctx.Host.
	BeforeIteration(ctx *IterCtx)
	// ConsumePendingH returns and clears the count of H-target injections
	// since the last call. In cost-only mode this drives the detection
	// branch (the data does not exist to be compared); in real mode the
	// data-driven detector is authoritative and this is used only to keep
	// the hook's state consistent.
	ConsumePendingH() int
	// PendingQ returns the count of Q-target injections not yet repaired.
	PendingQ() int
}

// Options configures the fault-tolerant reduction.
type Options struct {
	// Ctx, when non-nil, cancels the reduction: it is checked at every
	// blocked-iteration boundary (including re-execution attempts) and
	// between panel columns, so cancellation is observed within one
	// iteration and Reduce returns ctx.Err(). Device allocations are
	// freed and the BLAS pool left idle, so both stay reusable.
	Ctx context.Context
	// NB is the block size (hybrid.DefaultNB if zero).
	NB int
	// Device is the simulated accelerator. Required unless Devices is
	// set.
	Device *gpu.Device
	// Devices, when non-empty, selects the multi-device path: the
	// trailing matrix is sharded block-column wise across the pool
	// (internal/devpool) with a checksum halo per slab, so detection,
	// location, and correction run on the owning device and a faulty
	// slab recovers without touching its neighbors. Boundary checks
	// compare fresh per-slab data totals against the maintained halos
	// *before* the iteration's updates consume the data, so a corrupted
	// slab is corrected in place — the path takes no panel checkpoints
	// and never re-executes (Checkpoints and Reexecutions stay zero),
	// and every check sweeps whole slabs, finished columns included, so
	// FinalHCheck is implied. Device and DisableOverlap are ignored,
	// snapshot resume is unsupported. For a fixed input, results are
	// bit-identical at every device count.
	Devices []*gpu.Device
	// ThresholdFactor scales the detection threshold
	// τ = ThresholdFactor·ε·N·‖A‖₁ (paper: "2 to 3 orders of magnitude
	// above machine epsilon"). Default 200.
	ThresholdFactor float64
	// MaxRecoveries bounds recovery attempts per iteration (default 3).
	MaxRecoveries int
	// DisableOverlap serializes the finished-block transfer with the
	// trailing update (ablation).
	DisableOverlap bool
	// DisableLookahead turns off the depth-1 lookahead schedule and
	// reverts to the fully serialized iteration (ablation). Under
	// lookahead — the default — each trailing update (and the Sre/Sce
	// checksum-maintenance algebra riding on it) is split into a priority
	// part covering only the next panel's columns and a remainder part,
	// so the next panel's offload and host factorization overlap the
	// remainder. Detection stays at every iteration boundary and the
	// results are bit-identical either way.
	DisableLookahead bool
	// DisableQProtection turns off the host-side Q checksums (ablation).
	DisableQProtection bool
	// FinalHCheck adds a whole-matrix fresh-vs-maintained checksum sweep
	// after the last blocked iteration, catching errors that struck
	// already-finished H data (an extension beyond the paper).
	FinalHCheck bool
	// FailStop enables the fail-stop device-loss layer on the multi-device
	// path (beyond-paper, DESIGN.md §13): a parity copy of every snake
	// round's slabs — the bitwise XOR, so reconstruction is exact — lives
	// on a dedicated checksum device and is refreshed at two sync points
	// per iteration; when a pool device dies (gpu.Device.Kill), its slabs
	// are rebuilt from parity ⊕ survivors onto a spare and the reduction
	// resumes in place, bit-identical to a fault-free run. Ignored on the
	// single-device path.
	FailStop bool
	// SpareDevice supplies replacement devices for the fail-stop layer:
	// called once at setup for the parity device and once per device
	// loss. When nil, spares are fabricated with the pool's params and
	// mode (indices above the pool). The serving layer passes a farm
	// lease here so recovery draws on real capacity when available.
	SpareDevice func() *gpu.Device
	// PostProcess switches to the post-processing detection scheme of the
	// prior work the paper compares against (Du et al.): checksums are
	// still maintained, but the Sre/Sce comparison runs only once, after
	// the last iteration. By then the error has propagated through every
	// subsequent update, so the only recovery is re-executing the whole
	// factorization. Implemented as a comparator for the ablation studies.
	PostProcess bool
	// Hook receives iteration-boundary callbacks for fault injection.
	Hook Hook
	// Obs, if set, receives FT counters (ft_detections_total, ...),
	// per-phase timers including the protection steps of the paper's
	// Table II, and end-of-run lane gauges.
	Obs *obs.Registry
	// Journal, if set, receives the typed FT event records (checksum
	// checks, detections, corrections, checkpoints, re-executions, ...)
	// stamped with the simulated time.
	Journal *obs.Journal
	// Trace, if set, scopes the run to a served request: every metric
	// series (FT counters, device phase timers, operation costs) gains a
	// job=<id> label, and the run's coarse stages appear as wall-clock
	// spans on the context's tracer, parented under Trace.Parent.
	Trace *obs.TraceContext
	// Substrate selects the BLAS fault-tolerance substrate. "" or "swept"
	// (the default) relies solely on the iteration-boundary checksum
	// sweeps; "fused" additionally switches the device kernels to the
	// fused-ABFT routines (blas.DgemmFT verifies column/row checksums in
	// the macro-kernel epilogue of every call, DMR shadows Dgemv/Dger),
	// charging their modeled overhead and reporting per-call checks and
	// detections in the Result. On the multi-device path the fused
	// substrate also replaces the panel slab's full end-of-iteration halo
	// re-encode with an incremental refresh of only the columns the
	// iteration changed — the frozen-column prefix is carried forward —
	// shrinking the checksum_maintenance phase. H and tau are
	// bit-identical across substrates.
	Substrate string
}

// Substrate values for Options.Substrate.
const (
	// SubstrateSwept is the default: checksum maintenance and detection
	// run as separate sweeps at iteration boundaries.
	SubstrateSwept = "swept"
	// SubstrateFused turns on the fused-ABFT BLAS substrate: kernels
	// verify their own output per call, and the multi-device panel-slab
	// halo is refreshed incrementally instead of re-encoded from scratch.
	SubstrateFused = "fused"
)

// substrateFused resolves Options.Substrate, rejecting unknown values.
func substrateFused(opt Options) (bool, error) {
	switch opt.Substrate {
	case "", SubstrateSwept:
		return false, nil
	case SubstrateFused:
		return true, nil
	}
	return false, fmt.Errorf("ft: unknown Substrate %q (want %q or %q)", opt.Substrate, SubstrateSwept, SubstrateFused)
}

// Result extends the hybrid result with resilience statistics.
type Result struct {
	N  int
	NB int
	// Packed, Tau: the factorization in LAPACK layout, as in hybrid.
	Packed *matrix.Matrix
	Tau    []float64
	// BlockedIters counts blocked iterations (excluding re-executions).
	BlockedIters int
	// Detections counts iteration-end checksum mismatches.
	Detections int
	// Recoveries counts successful reverse+correct+re-execute cycles.
	Recoveries int
	// Reexecutions counts blocked iterations repeated after recovery
	// (equals the ft_reexecutions_total counter).
	Reexecutions int
	// Checkpoints counts diskless panel-checkpoint captures (equals the
	// ft_checkpoints_total counter).
	Checkpoints int
	// CorrectedH lists the corrected device-matrix positions.
	CorrectedH []Injection
	// QCorrections counts elements repaired by the Q checksum check.
	QCorrections int
	// DeviceLosses counts fail-stop device deaths observed during the run
	// (equals the ft_device_losses_total counter).
	DeviceLosses int
	// FailStopRecoveries counts successful parity reconstructions onto a
	// spare (equals the ft_failstop_reconstructions_total counter).
	FailStopRecoveries int
	// SubstrateChecks and SubstrateDetections count the fused-ABFT
	// substrate's per-call checksum verifications and detections across
	// all devices (Options.Substrate = "fused"; zero under the swept
	// substrate). Substrate detection is report-only — the boundary
	// sweeps remain the corrector — except a non-finite checksum total,
	// which fails the run with ErrUncorrectable rather than risking
	// silent NaN propagation.
	SubstrateChecks     int
	SubstrateDetections int
	// SimSeconds and ModelGFLOPS report the simulated performance.
	SimSeconds  float64
	ModelGFLOPS float64
}

// H extracts the upper Hessenberg factor.
func (r *Result) H() *matrix.Matrix {
	return lapack.HessFromPacked(r.N, r.Packed.Data, r.Packed.Stride)
}

// Q forms the orthogonal factor explicitly.
func (r *Result) Q() *matrix.Matrix {
	return lapack.Dorghr(r.N, r.Packed.Data, r.Packed.Stride, r.Tau)
}

// reducer carries the state of one fault-tolerant reduction.
type reducer struct {
	opt   Options
	dev   *gpu.Device
	n, nb int
	// host state
	hostA *matrix.Matrix
	tau   []float64
	yHost *matrix.Matrix
	tHost *matrix.Matrix
	// device state: dA is (n+1)×(n+1) — data plus checksum column (col n)
	// and checksum row (row n). dY is (n+1)×nb with row n = Yce. dS keeps
	// the left-update intermediate for reverse computation.
	dA, dT, dY, dS, dW *gpu.Matrix
	dVcol, dYcol       *gpu.Matrix
	dVsum              *gpu.Matrix
	dFresh             *gpu.Matrix
	// diskless checkpoint (host memory): pristine panel columns and their
	// checksum-row segment.
	ckPanel  *matrix.Matrix
	ckChkRow *matrix.Matrix
	// fused mirrors Options.Substrate == SubstrateFused.
	fused bool
	// lookahead schedule: la mirrors !Options.DisableLookahead, and
	// panelReady is the completion event of the priority part of the most
	// recent trailing update — the earliest instant the next panel's
	// columns (checksum-row segment included) are final on the device.
	la         bool
	panelReady sim.Event
	// thresholds
	normA1 float64
	tauDet float64
	// lastDetectGap is |Sre−Sce| from the most recent detect() (Real mode).
	lastDetectGap float64
	// deviceLost marks a fail-stop kill request (IterCtx.KillDevice):
	// with a single device there are no peers to reconstruct from, so
	// the reduction fails immediately rather than computing on poison.
	deviceLost bool
	// Q protection
	qprot *qChecksums
	res   *Result
}

// journal appends one FT event stamped with the current simulated time
// and the device it concerns (pool members only; the classic unnamed
// single device leaves the field empty).
func (r *reducer) journal(e obs.Event) {
	e.SimTime = r.dev.Elapsed()
	if e.Device == "" {
		e.Device = r.dev.Name()
	}
	r.opt.Journal.Append(e)
}

// count increments an FT counter (no-op without a registry).
func (r *reducer) count(name string) {
	r.opt.Obs.Counter(name, ftLabels(r.opt)...).Inc()
}

// collectSubstrateStats folds one device's fused-substrate statistics
// into the result and the FT counter set. Runs from a defer on both
// reduction paths so the counts survive early error returns.
func collectSubstrateStats(dev *gpu.Device, res *Result, opt Options, journal func(obs.Event)) {
	checks, det, _ := dev.FTStats()
	res.SubstrateChecks += int(checks)
	res.SubstrateDetections += int(det)
	opt.Obs.Counter("ft_substrate_checks_total", ftLabels(opt)...).Add(float64(checks))
	opt.Obs.Counter("ft_substrate_detections_total", ftLabels(opt)...).Add(float64(det))
	if det > 0 {
		ev := obs.Ev(obs.KindDetection, res.BlockedIters)
		ev.Target = obs.TargetH
		ev.Outcome = "substrate"
		ev.Value = obs.Float(float64(det))
		ev.Device = dev.Name()
		journal(ev)
	}
}

// ftLabels returns the job label set for the run's FT counters (empty
// for offline runs without a trace context).
func ftLabels(opt Options) []obs.Label {
	if job := opt.Trace.JobID(); job != "" {
		return []obs.Label{obs.L("job", job)}
	}
	return nil
}

// ftCounterNames lists every counter the reduction can emit; they are
// pre-touched at run start so a clean run still exposes them at zero.
var ftCounterNames = []string{
	"ft_checksum_checks_total",
	"ft_detections_total",
	"ft_corrections_total",
	"ft_recoveries_total",
	"ft_reexecutions_total",
	"ft_checkpoints_total",
	"ft_q_corrections_total",
	"ft_device_losses_total",
	"ft_failstop_reconstructions_total",
	"ft_substrate_checks_total",
	"ft_substrate_detections_total",
}

// Reduce runs the fault-tolerant hybrid Hessenberg reduction of a
// (not modified).
func Reduce(a *matrix.Matrix, opt Options) (*Result, error) {
	return reduceFrom(a, nil, opt)
}

// reduceFrom is the shared body of Reduce and Resume: with a nil snapshot
// it starts from scratch (transfer + encode); with a snapshot it reloads
// the saved state and continues from the recorded iteration.
func reduceFrom(a *matrix.Matrix, snap *Snapshot, opt Options) (*Result, error) {
	n := a.Rows
	if n != a.Cols {
		return nil, errors.New("ft: matrix must be square")
	}
	fused, err := substrateFused(opt)
	if err != nil {
		return nil, err
	}
	if len(opt.Devices) > 0 {
		if snap != nil {
			return nil, errors.New("ft: snapshot resume is not supported on the multi-device path")
		}
		return reduceMulti(a, opt)
	}
	if opt.Device == nil {
		return nil, errors.New("ft: Options.Device is required")
	}
	nb := opt.NB
	if nb <= 0 {
		nb = hybrid.DefaultNB
	}
	if opt.ThresholdFactor <= 0 {
		opt.ThresholdFactor = 200
	}
	if opt.MaxRecoveries <= 0 {
		opt.MaxRecoveries = 3
	}
	dev := opt.Device
	if opt.Obs != nil {
		dev.SetObs(opt.Obs)
		for _, name := range ftCounterNames {
			opt.Obs.Counter(name, ftLabels(opt)...)
		}
	}
	dev.SetJob(opt.Trace.JobID())
	sp := opt.Trace.Span("ft.reduce", opt.Trace.ParentSpan())
	defer opt.Trace.EndSpan(sp)
	ctx := opt.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	dev.SetContext(ctx)

	r := &reducer{
		opt:   opt,
		dev:   dev,
		la:    !opt.DisableLookahead,
		fused: fused,
		n:     n,
		nb:    nb,
		hostA: a.Clone(),
		tau:   make([]float64, max(n-1, 1)),
		res:   &Result{N: n, NB: nb},
	}
	if fused {
		prevFused := dev.SetSubstrateFused(true)
		dev.ResetFTStats()
		defer func() {
			collectSubstrateStats(dev, r.res, r.opt, r.journal)
			dev.SetSubstrateFused(prevFused)
		}()
	}
	r.res.Packed = r.hostA
	r.res.Tau = r.tau
	if n <= 1 {
		return r.res, nil
	}

	pp := dev.Params
	dev.SetPhase("setup")
	// ‖A‖₁ anchors the detection threshold (one host pass over the data).
	dev.HostOp(pp.GemvHost(n, n), func() {
		r.normA1 = a.Norm1()
	})
	r.tauDet = opt.ThresholdFactor * macheps * float64(n) * math.Max(r.normA1, 1)

	// Allocate the extended device matrix and workspaces.
	r.dA = dev.Alloc(n+1, n+1)
	r.dT = dev.Alloc(nb, nb)
	r.dY = dev.Alloc(n+1, nb)
	r.dS = dev.Alloc(n+1, nb)
	r.dW = dev.Alloc(n+1, nb)
	r.dVcol = dev.Alloc(n, 1)
	r.dYcol = dev.Alloc(n, 1)
	r.dVsum = dev.Alloc(nb, 1)
	r.dFresh = dev.Alloc(n+1, 2)
	defer func() {
		for _, m := range []*gpu.Matrix{r.dA, r.dT, r.dY, r.dS, r.dW, r.dVcol, r.dYcol, r.dVsum, r.dFresh} {
			dev.Free(m)
		}
	}()
	r.yHost = matrix.New(n, nb)
	r.tHost = matrix.New(nb, nb)
	r.ckPanel = matrix.New(n, nb)
	r.ckChkRow = matrix.New(1, nb)
	r.qprot = newQChecksums(n)

	if snap == nil {
		// Algorithm 3, lines 1-2: transfer and encode.
		dev.H2D(r.dA, 0, 0, r.hostA)
		dev.SetPhase("encode")
		r.encode()
	} else {
		// Diskless restart: reload the extended device matrix (data +
		// valid checksums), the reflector factors, and the Q checksums.
		hostDA := matrix.FromColMajor(n+1, n+1, n+1, snap.DA)
		dev.H2D(r.dA, 0, 0, hostDA)
		copy(r.tau, snap.Tau)
		if snap.QRowChk != nil {
			copy(r.qprot.rowChk, snap.QRowChk)
			copy(r.qprot.colChk, snap.QColChk)
			r.qprot.absorbedCols = snap.QCols
		}
		ev := obs.Ev(obs.KindSnapshotRestore, snap.Iter)
		ev.Target = obs.TargetH
		r.journal(ev)
	}

	nx := nb
	if nx < 2 {
		nx = 2
	}
	var prevLeft sim.Event
	p := 0
	iter := 0
	if snap != nil {
		p = snap.Panel
		iter = snap.Iter
	}
	for ; n-1-p > nx; p += nb {
		if err := ctx.Err(); err != nil {
			return r.res, err
		}
		ib := min(nb, n-1-p)

		if opt.Hook != nil {
			opt.Hook.BeforeIteration(&IterCtx{
				Dev: dev, DA: r.dA, Host: r.hostA,
				Iter: iter, Panel: p, NB: ib, N: n,
				reducer: r,
			})
		}
		if r.deviceLost {
			r.res.DeviceLosses++
			r.count("ft_device_losses_total")
			ev := obs.Ev(obs.KindDeviceLoss, iter)
			ev.Target = obs.TargetH
			r.journal(ev)
			return r.res, fmt.Errorf("%w: device lost at iteration %d (fail-stop recovery requires the multi-device path)", ErrUncorrectable, iter)
		}

		recovered := 0
		for attempt := 0; ; attempt++ {
			var err error
			prevLeft, err = r.iteration(iter, p, ib, prevLeft, attempt > 0)
			if err != nil {
				return r.res, err
			}
			if opt.PostProcess {
				// Comparator mode: no per-iteration check; errors keep
				// propagating until the single end-of-run detection.
				break
			}
			if !r.detectAt(iter, prevLeft) {
				break
			}
			r.res.Detections++
			r.count("ft_detections_total")
			det := obs.Ev(obs.KindDetection, iter)
			det.Target = obs.TargetH
			det.Value = obs.Float(r.lastDetectGap)
			r.journal(det)
			if attempt >= opt.MaxRecoveries {
				return r.res, fmt.Errorf("%w (iteration %d)", ErrDetectionStorm, iter)
			}
			if err := r.recover(iter, p, ib); err != nil {
				return r.res, err
			}
			recovered++
			r.count("ft_recoveries_total")
		}
		r.res.Recoveries += recovered
		iter++
	}
	r.res.BlockedIters = iter

	// Post-processing comparator: one detection at the end; a propagated
	// error cannot be located and corrected anymore, so recovery means
	// re-executing the entire factorization with per-iteration checks.
	if opt.PostProcess && iter > 0 && r.detectAt(iter, prevLeft) {
		r.res.Detections++
		r.count("ft_detections_total")
		det := obs.Ev(obs.KindDetection, iter)
		det.Target = obs.TargetH
		det.Value = obs.Float(r.lastDetectGap)
		det.Outcome = "post-process"
		r.journal(det)
		retryOpt := opt
		retryOpt.PostProcess = false
		retryOpt.Hook = nil // transient errors do not re-occur on redo
		retry, err := Reduce(a, retryOpt)
		if err != nil {
			return r.res, err
		}
		retry.Detections += r.res.Detections
		retry.Recoveries = r.res.Recoveries + 1
		return retry, nil
	}

	if err := ctx.Err(); err != nil {
		return r.res, err
	}
	// Optional whole-matrix verification of the device-resident H data.
	if opt.FinalHCheck {
		dev.SetPhase("final_check")
		if err := r.finalHCheck(p); err != nil {
			return r.res, err
		}
	}

	// Bring the remaining trailing columns home and finish on the host.
	dev.SetPhase("cleanup")
	if p < n {
		rem := r.hostA.View(0, p, n, n-p)
		dev.Sync(dev.D2HAsync(rem, r.dA, 0, p, prevLeft))
	}
	work := make([]float64, n)
	dev.HostOp(cleanupCost(pp, n, p), func() {
		lapack.Dgehd2(n, p, r.hostA.Data, r.hostA.Stride, r.tau, work)
	})

	// Section IV-E/F: verify and repair the Householder vectors once, at
	// the end of the factorization.
	if !opt.DisableQProtection {
		dev.SetPhase("q_protect")
		fixes, err := r.qprot.verifyAndCorrect(dev, pp, r.hostA, p, r.tauDet, r.journal, r.res.BlockedIters)
		if err != nil {
			return r.res, err
		}
		r.res.QCorrections += fixes
		r.opt.Obs.Counter("ft_q_corrections_total", ftLabels(r.opt)...).Add(float64(fixes))
	}
	dev.DeviceSynchronize()
	dev.SetPhase("")
	dev.FinishRun()
	if r.fused {
		if _, _, nonFinite := dev.FTStats(); nonFinite {
			return r.res, fmt.Errorf("%w: fused substrate observed a non-finite checksum total", ErrUncorrectable)
		}
	}

	r.res.SimSeconds = dev.Elapsed()
	if r.res.SimSeconds > 0 {
		r.res.ModelGFLOPS = sim.HessenbergFlops(n) / r.res.SimSeconds / 1e9
	}
	return r.res, nil
}

// cleanupCost mirrors hybrid's unblocked-remainder cost model.
func cleanupCost(pp sim.Params, n, p int) float64 {
	cost := 0.0
	for c := p; c < n-1; c++ {
		m1 := n - 1 - c
		cost += 2 * pp.VecHost(m1)
		cost += 2 * pp.GemvHost(n, m1)
		cost += 2 * pp.GemvHost(m1, n-c-1)
	}
	return cost
}

// encode computes the initial checksum column and row on the device
// (Algorithm 3, line 2: two DGEMV-class kernels).
func (r *reducer) encode() {
	n := r.n
	r.dev.RowSums(r.dA, 0, 0, n, n, r.dA, 0, n)
	r.dev.ColSums(r.dA, 0, 0, n, n, r.dA, n, 0)
}

// iteration executes one blocked iteration (Algorithm 3, lines 4-11) for
// the panel starting at column p, returning the left-update completion
// event. redo marks a re-execution after recovery (the panel is taken
// from the checkpoint instead of the device).
func (r *reducer) iteration(iter, p, ib int, prevLeft sim.Event, redo bool) (sim.Event, error) {
	dev := r.dev
	n := r.n
	k := p + 1
	pp := dev.Params

	// Under lookahead the panel's offload and host factorization overlap
	// the previous iteration's remainder update: the offload waits only
	// for the priority part (panelReady), and the hidden work is reported
	// under its own phase. A re-execution reads the checkpoint instead,
	// with the whole previous attempt already reversed, so it never hides.
	hidden := r.la && iter > 0 && !redo
	panelPhase := "panel"
	if hidden {
		panelPhase = "panel_hidden"
	}
	panelDep := prevLeft
	if r.la {
		panelDep = r.panelReady
	}

	if redo {
		// Retrieve the pre-factorized panel from the diskless checkpoint
		// (host memory), as the paper's recovery procedure does.
		dev.SetPhase("checkpoint")
		dev.HostOp(pp.VecHost((n-k)*ib), func() {
			r.hostA.View(k, p, n-k, ib).CopyFrom(r.ckPanel.View(k, 0, n-k, ib))
		})
		r.count("ft_reexecutions_total")
		r.res.Reexecutions++
		re := obs.Ev(obs.KindReexecution, iter)
		re.Target = obs.TargetH
		r.journal(re)
	} else {
		// Line 4: send the panel to the host. The fault-tolerant variant
		// transfers the full column height: the extra top rows are the
		// diskless checkpoint of the data the device-side right update
		// will overwrite.
		dev.SetPhase(panelPhase)
		panel := r.hostA.View(0, p, n, ib)
		dev.Sync(dev.D2HAsync(panel, r.dA, 0, p, panelDep))
		dev.SetPhase("checkpoint")
		dev.HostOp(pp.VecHost(n*ib), func() {
			r.ckPanel.View(0, 0, n, ib).CopyFrom(panel)
		})
		// Checkpoint the checksum-row segment of the panel columns, which
		// the end-of-iteration refresh overwrites.
		ckSeg := r.ckChkRow.View(0, 0, 1, ib)
		dev.Sync(dev.D2HAsync(ckSeg, r.dA, n, p, panelDep))
		r.count("ft_checkpoints_total")
		r.res.Checkpoints++
		ck := obs.Ev(obs.KindCheckpointSave, iter)
		ck.Target = obs.TargetH
		r.journal(ck)
	}

	// Line 5: hybrid panel factorization (CPU + device GEMV), identical to
	// the non-fault-tolerant algorithm.
	dev.SetPhase(panelPhase)
	if err := hybrid.PanelFactor(dev, r.hostA, r.yHost, r.tHost, r.tau, r.dataView(), r.dVcol, r.dYcol, n, p, k, ib, hidden); err != nil {
		return prevLeft, err
	}

	// Maintain the Q checksums on the otherwise idle CPU (Section IV-E,
	// Figure 5) — overlapped with the device work below.
	if !r.opt.DisableQProtection {
		dev.SetPhase("q_protect")
		r.qprot.absorbPanel(dev, pp, r.hostA, p, ib)
	}

	// Upload the factored panel, Y's lower rows, and T. The panel columns
	// belong to the previous priority part, so that copy is free to land;
	// dY/dT are still read by the in-flight remainder kernels and must
	// wait for them (prevLeft) — a no-op when nothing overlaps.
	dev.SetPhase("right_update")
	dev.H2D(r.dA, k, p, r.hostA.View(k, p, n-k, ib))
	dev.Sync(dev.H2DAsync(r.dY, k, 0, r.yHost.View(k, 0, n-k, ib), prevLeft))
	dev.Sync(dev.H2DAsync(r.dT, 0, 0, r.tHost.View(0, 0, ib, ib), prevLeft))

	// Line 7: column sums of V (unit-diagonal aware), Vce's extension row.
	dev.SetPhase("checksum_maintenance")
	vsumDone := r.kernVsum(p, ib)
	// Line 6: Yce = eᵀY = (eᵀA)·V·T computed from the maintained checksum
	// row (must read the checksum row before it is refreshed below).
	ychkDone := r.kernYce(p, ib, vsumDone)

	// Y's top rows on the device, as in the baseline.
	dev.SetPhase("right_update")
	e := dev.CopyBlock(r.dY, 0, 0, r.dA, 0, p+1, k, ib)
	e = dev.Trmm(blas.Right, blas.Lower, blas.NoTrans, blas.Unit, k, ib, 1, r.dA, k, p, r.dY, 0, 0, e)
	if n > k+ib {
		e = dev.Gemm(blas.NoTrans, blas.NoTrans, k, ib, n-k-ib, 1, r.dA, 0, p+ib+1, r.dA, k+ib, p, 1, r.dY, 0, 0, e)
	}
	ytopDone := dev.Trmm(blas.Right, blas.Upper, blas.NoTrans, blas.NonUnit, k, ib, 1, r.dT, 0, 0, r.dY, 0, 0, e)

	// Right update of the panel columns' top rows.
	aDone := ytopDone
	if ib > 1 {
		aDone = dev.CopyBlock(r.dW, 0, 0, r.dY, 0, 0, k, ib-1, ytopDone)
		aDone = dev.Trmm(blas.Right, blas.Lower, blas.Trans, blas.Unit, k, ib-1, 1, r.dA, k, p, r.dW, 0, 0, aDone)
		aDone = dev.SubBlock(r.dA, 0, p+1, r.dW, 0, 0, k, ib-1, aDone)
	}
	// Refresh the checksum-row entries of the now-final panel columns
	// directly from the Hessenberg data (their mathematical column sums).
	dev.SetPhase("checksum_maintenance")
	chkSegDone := r.kernPanelColSums(p, ib, aDone, ychkDone)

	// Line 9: asynchronous transfer of the finished block, overlapped with
	// the remaining device updates (or serialized after them under the
	// DisableOverlap ablation).
	finished := r.hostA.View(0, p, k, ib)
	if !r.opt.DisableOverlap {
		dev.SetPhase("d2h_overlap")
		dev.D2HAsync(finished, r.dA, 0, p, aDone)
	}

	// Lines 8 and 10: right update of Mre (top rows + checksum handling)
	// and Gfe (lower rows + checksum row), with the EI corner trick. Under
	// lookahead the update — and the checksum-row maintenance riding on it
	// — is split column-wise: a priority part covering only the next
	// panel's ib2 columns (all n+1 extended rows) completes first and
	// gates the next panel offload; the remainder streams behind it. The
	// checksum COLUMN's Gemv stays whole inside the remainder so its
	// summation order, and hence the Sre/Sce comparison, is untouched.
	dev.SetPhase("right_update")
	ei := r.hostA.At(p+ib, p+ib-1)
	e1 := dev.Set(r.dA, p+ib, p+ib-1, 1, ytopDone, ychkDone)
	var left sim.Event
	if ib2 := min(ib, n-1-(p+ib)); r.la && n-1-(p+ib) > max(r.nb, 2) {
		// Priority: next panel's columns, top rows then rows k..n.
		eMp := dev.Gemm(blas.NoTrans, blas.Trans, k, ib2, ib, -1, r.dY, 0, 0, r.dA, p+ib, p, 1, r.dA, 0, p+ib, e1)
		eGp := dev.Gemm(blas.NoTrans, blas.Trans, n+1-k, ib2, ib, -1, r.dY, k, 0, r.dA, p+ib, p, 1, r.dA, k, p+ib, eMp, chkSegDone)
		dev.SetPhase("left_update")
		r.panelReady = r.leftUpdateCols(p, ib, 0, ib2, eGp)
		// Remainder: every other trailing column plus the checksum column.
		dev.SetPhase("right_update")
		eM := dev.Gemm(blas.NoTrans, blas.Trans, k, n-p-ib-ib2, ib, -1, r.dY, 0, 0, r.dA, p+ib+ib2, p, 1, r.dA, 0, p+ib+ib2, e1)
		eG := dev.Gemm(blas.NoTrans, blas.Trans, n+1-k, n-p-ib-ib2, ib, -1, r.dY, k, 0, r.dA, p+ib+ib2, p, 1, r.dA, k, p+ib+ib2, eM, chkSegDone)
		dev.SetPhase("checksum_maintenance")
		eCk := dev.Gemv(blas.NoTrans, n, ib, -1, r.dY, 0, 0, r.dVsum, 0, 0, 1, r.dA, 0, n, eG)
		dev.SetPhase("right_update")
		eC := dev.Set(r.dA, p+ib, p+ib-1, ei, eCk)
		dev.SetPhase("left_update")
		left = r.leftUpdateCols(p, ib, ib2, n-p-ib+1, eC)
	} else {
		eM := dev.Gemm(blas.NoTrans, blas.Trans, k, n-p-ib, ib, -1, r.dY, 0, 0, r.dA, p+ib, p, 1, r.dA, 0, p+ib, e1)
		// G rows k..n-1 plus the checksum row n in one GEMM (dY row n = Yce).
		eG := dev.Gemm(blas.NoTrans, blas.Trans, n+1-k, n-p-ib, ib, -1, r.dY, k, 0, r.dA, p+ib, p, 1, r.dA, k, p+ib, eM, chkSegDone)
		// Checksum column under the right update: Ace −= Y·(Vᵀe).
		dev.SetPhase("checksum_maintenance")
		eCk := dev.Gemv(blas.NoTrans, n, ib, -1, r.dY, 0, 0, r.dVsum, 0, 0, 1, r.dA, 0, n, eG)
		dev.SetPhase("right_update")
		eC := dev.Set(r.dA, p+ib, p+ib-1, ei, eCk)

		// Line 11: left update of trail(A)fe — data columns p+ib..n-1 plus
		// the checksum column (col n), with the checksum row updated
		// through the retained intermediate S.
		dev.SetPhase("left_update")
		left = r.leftUpdate(p, ib, eC)
		r.panelReady = left
	}
	if r.opt.DisableOverlap {
		dev.SetPhase("d2h_overlap")
		dev.Sync(dev.D2HAsync(finished, r.dA, 0, p, aDone, left))
	}
	return left, nil
}

// dataView returns the n×n data region of the extended device matrix.
func (r *reducer) dataView() *gpu.Matrix {
	// The panel-factorization device GEMV only needs the data region;
	// dA's extra row/column are outside every (k, p+ib) block it reads.
	return r.dA
}

// kernVsum computes vsum = Vᵀe (unit-diagonal-aware column sums of the
// stored Householder panel) into dVsum.
func (r *reducer) kernVsum(p, ib int) sim.Event {
	dev := r.dev
	n, k := r.n, p+1
	cost := dev.Params.GemvDevice(n-k, ib)
	dA, dVsum := r.dA, r.dVsum
	return dev.Custom(cost, func() {
		for j := 0; j < ib; j++ {
			s := 1.0 // implicit unit diagonal of V
			for row := k + j + 1; row < n; row++ {
				s += dA.At(row, p+j)
			}
			dVsum.Data[j] = s
		}
	})
}

// kernYce computes Yce = (eᵀA)·V·T from the maintained checksum row into
// row n of dY (the paper's line 6: the checksums of Y derived from the
// checksums of the trailing matrix).
func (r *reducer) kernYce(p, ib int, deps ...sim.Event) sim.Event {
	dev := r.dev
	n, k := r.n, p+1
	cost := dev.Params.GemvDevice(n-k, ib) + dev.Params.VecDevice(ib*ib/2)
	dA, dY, dT := r.dA, r.dY, r.dT
	return dev.Custom(cost, func() {
		w := make([]float64, ib)
		for j := 0; j < ib; j++ {
			// chkrow index k+j pairs with V's implicit unit diagonal.
			s := dA.At(n, k+j)
			for row := k + j + 1; row < n; row++ {
				s += dA.At(n, row) * dA.At(row, p+j)
			}
			w[j] = s
		}
		// w := Tᵀ·w  (row vector times T).
		blas.Dtrmv(blas.Upper, blas.Trans, blas.NonUnit, ib, dT.Data, dT.Stride, w, 1)
		for j := 0; j < ib; j++ {
			dY.Data[j*dY.Stride+n] = w[j]
		}
	}, deps...)
}

// kernPanelColSums refreshes the checksum-row entries of the finished
// panel columns from their final Hessenberg values (sum of rows 0..c+1,
// the rest being implicit zeros).
func (r *reducer) kernPanelColSums(p, ib int, deps ...sim.Event) sim.Event {
	dev := r.dev
	n := r.n
	cost := dev.Params.GemvDevice(p+ib+1, ib)
	dA := r.dA
	return dev.Custom(cost, func() {
		for j := 0; j < ib; j++ {
			c := p + j
			top := min(c+1, n-1)
			s := 0.0
			for i := 0; i <= top; i++ {
				s += dA.At(i, c)
			}
			dA.Data[c*dA.Stride+n] = s
		}
	}, deps...)
}

// leftUpdate applies trail(A)fe := trail(A)fe − Vce·Tᵀ·Vᵀ·trail(A)fe:
// the data columns and checksum column get the orthogonal left update,
// the checksum row gets the Vce extension. The intermediate S = (CᵀV)·T
// is retained in dS for reverse computation.
func (r *reducer) leftUpdate(p, ib int, dep sim.Event) sim.Event {
	return r.leftUpdateCols(p, ib, 0, r.n-p-ib+1, dep)
}

// leftUpdateCols is the left update restricted to trailing columns
// [lo, hi) — column c here means global column p+ib+c, with c =
// n-p-ib addressing the checksum column. Each part builds its own rows
// of S, so S's row c always holds column c's intermediate regardless of
// how the update was split, and the recovery reversal (a full-range
// call) reads the exact values the forward pass retained.
func (r *reducer) leftUpdateCols(p, ib, lo, hi int, dep sim.Event) sim.Event {
	dev := r.dev
	n, k := r.n, p+1
	cnt := hi - lo

	// S[lo:hi] := C1ᵀ·V1 + C2ᵀ·V2  (cnt×ib), C = dA(k:n-1, p+ib+lo..p+ib+hi).
	e := dev.Custom(dev.Params.KernelLaunchSec+16*float64(cnt)*float64(ib)/(dev.Params.GPUBandwidthGBps*1e9), func() {
		for j := 0; j < ib; j++ {
			blas.Dcopy(cnt, r.dA.Data[(p+ib+lo)*r.dA.Stride+k+j:], r.dA.Stride, r.dS.Data[j*r.dS.Stride+lo:], 1)
		}
	}, dep)
	e = dev.Trmm(blas.Right, blas.Lower, blas.NoTrans, blas.Unit, cnt, ib, 1, r.dA, k, p, r.dS, lo, 0, e)
	if n-k > ib {
		e = dev.Gemm(blas.Trans, blas.NoTrans, cnt, ib, n-k-ib, 1, r.dA, k+ib, p+ib+lo, r.dA, k+ib, p, 1, r.dS, lo, 0, e)
	}
	// S := S·T  (Hᵀ uses T here; see lapack.Dlarfb's TRANST convention).
	e = dev.Trmm(blas.Right, blas.Upper, blas.NoTrans, blas.NonUnit, cnt, ib, 1, r.dT, 0, 0, r.dS, lo, 0, e)
	// C := C sign·V·Sᵀ, split as in DLARFB because V's stored upper
	// triangle holds H data, not zeros.
	e = r.applyVSCols(p, ib, lo, hi, -1, e)
	// Checksum row: chkrow(j) −= S[j,:]·vsum for the data columns.
	prevPhase := dev.SetPhase("checksum_maintenance")
	e = r.kernChkRowLeftCols(p, ib, lo, hi, -1, e)
	dev.SetPhase(prevPhase)
	return e
}

// applyVS computes C := C + sign·V·Sᵀ over C = dA(k:n-1, p+ib..n) using
// the retained S, honoring V's implicit unit lower-triangular leading
// block. sign=-1 is the forward left update; sign=+1 reverses it.
func (r *reducer) applyVS(p, ib int, sign float64, dep sim.Event) sim.Event {
	return r.applyVSCols(p, ib, 0, r.n-p-ib+1, sign, dep)
}

// applyVSCols is applyVS restricted to trailing columns [lo, hi), using
// S rows [lo, hi) and the matching rows of the W workspace.
func (r *reducer) applyVSCols(p, ib, lo, hi int, sign float64, dep sim.Event) sim.Event {
	dev := r.dev
	n, k := r.n, p+1
	cnt := hi - lo
	// C2 (rows ib..) gets the dense part: C2 += sign·V2·Sᵀ.
	e := dep
	if n-k > ib {
		e = dev.Gemm(blas.NoTrans, blas.Trans, n-k-ib, cnt, ib, sign, r.dA, k+ib, p, r.dS, lo, 0, 1, r.dA, k+ib, p+ib+lo, e)
	}
	// C1 (rows 0..ib-1): W := S·V1ᵀ (unit lower), then C1 += sign·Wᵀ.
	e = dev.CopyBlock(r.dW, lo, 0, r.dS, lo, 0, cnt, ib, e)
	e = dev.Trmm(blas.Right, blas.Lower, blas.Trans, blas.Unit, cnt, ib, 1, r.dA, k, p, r.dW, lo, 0, e)
	cost := dev.Params.KernelLaunchSec + 24*float64(cnt)*float64(ib)/(dev.Params.GPUBandwidthGBps*1e9)
	dA, dW := r.dA, r.dW
	return dev.Custom(cost, func() {
		for j := 0; j < ib; j++ {
			for i := lo; i < hi; i++ {
				dA.Data[(p+ib+i)*dA.Stride+k+j] += sign * dW.Data[j*dW.Stride+i]
			}
		}
	}, e)
}

// kernChkRowLeft applies sign·(eᵀV)·Tᵀ·Vᵀ·C to the checksum-row entries of
// the trailing data columns, using the retained intermediate S.
func (r *reducer) kernChkRowLeft(p, ib int, sign float64, deps ...sim.Event) sim.Event {
	return r.kernChkRowLeftCols(p, ib, 0, r.n-p-ib, sign, deps...)
}

// kernChkRowLeftCols is kernChkRowLeft over trailing columns [lo, hi),
// clamped to the data columns (the checksum column has no row entry).
func (r *reducer) kernChkRowLeftCols(p, ib, lo, hi int, sign float64, deps ...sim.Event) sim.Event {
	dev := r.dev
	n := r.n
	if ndata := n - p - ib; hi > ndata {
		hi = ndata
	}
	cost := dev.Params.GemvDevice(hi-lo, ib)
	dA, dS, dVsum := r.dA, r.dS, r.dVsum
	return dev.Custom(cost, func() {
		for j := lo; j < hi; j++ {
			s := 0.0
			for l := 0; l < ib; l++ {
				s += dS.Data[l*dS.Stride+j] * dVsum.Data[l]
			}
			dA.Data[(p+ib+j)*dA.Stride+n] += sign * s
		}
	}, deps...)
}
