package ft

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/gpu"
	"repro/internal/hybrid"
	"repro/internal/lapack"
	"repro/internal/matrix"
	"repro/internal/sim"
)

func newDev() *gpu.Device { return gpu.New(sim.K40c(), gpu.Real) }

func TestFaultFreeMatchesBaselineAcrossSizes(t *testing.T) {
	for _, tc := range []struct{ n, nb int }{
		{40, 8}, {64, 16}, {100, 16}, {158, 32}, {200, 32},
	} {
		a := matrix.Random(tc.n, tc.n, uint64(tc.n))
		res, err := Reduce(a, Options{NB: tc.nb, Device: newDev()})
		if err != nil {
			t.Fatal(err)
		}
		if res.Detections != 0 || res.Recoveries != 0 || res.QCorrections != 0 {
			t.Fatalf("n=%d: phantom resilience events: %+v", tc.n, res)
		}
		ref, err := hybrid.Reduce(a, hybrid.Options{NB: tc.nb, Device: newDev()})
		if err != nil {
			t.Fatal(err)
		}
		if d := res.Packed.Sub(ref.Packed).MaxAbs(); d > 1e-11 {
			t.Fatalf("n=%d nb=%d: FT differs from baseline by %v", tc.n, tc.nb, d)
		}
	}
}

func TestFaultFreeResiduals(t *testing.T) {
	n := 150
	a := matrix.Random(n, n, 5)
	res, err := Reduce(a, Options{NB: 32, Device: newDev()})
	if err != nil {
		t.Fatal(err)
	}
	h := res.H()
	q := res.Q()
	if !h.IsUpperHessenberg(0) {
		t.Fatal("not Hessenberg")
	}
	if r := lapack.FactorizationResidual(a, q, h); r > 1e-14 {
		t.Fatalf("residual %v", r)
	}
	if r := lapack.OrthogonalityResidual(q); r > 1e-13 {
		t.Fatalf("orthogonality %v", r)
	}
}

func TestInputValidation(t *testing.T) {
	if _, err := Reduce(matrix.New(3, 4), Options{Device: newDev()}); err == nil {
		t.Fatal("non-square accepted")
	}
	if _, err := Reduce(matrix.New(3, 3), Options{}); err == nil {
		t.Fatal("nil device accepted")
	}
}

func TestTinyMatrices(t *testing.T) {
	for n := 0; n <= 5; n++ {
		a := matrix.Random(n, n, uint64(n))
		res, err := Reduce(a, Options{NB: 4, Device: newDev()})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if n >= 1 {
			if r := lapack.FactorizationResidual(a, res.Q(), res.H()); r > 1e-13 {
				t.Fatalf("n=%d: residual %v", n, r)
			}
		}
	}
}

// checksumAuditHook verifies Theorem 1 at every iteration boundary: the
// maintained checksum column/row must match freshly computed mathematical
// sums (Hessenberg-aware in the finished columns).
type checksumAuditHook struct {
	t        *testing.T
	failures int
	checked  int
	tol      float64
}

func (h *checksumAuditHook) BeforeIteration(ctx *IterCtx) {
	n := ctx.N
	split := ctx.Panel // columns left of the upcoming panel are finished
	for i := 0; i < n; i++ {
		fresh := 0.0
		for j := 0; j < n; j++ {
			top := n - 1
			if j < split {
				top = min(j+1, n-1)
			}
			if i <= top {
				fresh += ctx.DA.At(i, j)
			}
		}
		if math.Abs(fresh-ctx.DA.At(i, n)) > h.tol {
			h.failures++
			h.t.Errorf("iter %d: row checksum %d drifted: fresh %v vs maintained %v",
				ctx.Iter, i, fresh, ctx.DA.At(i, n))
			return
		}
	}
	for j := 0; j < n; j++ {
		top := n - 1
		if j < split {
			top = min(j+1, n-1)
		}
		fresh := 0.0
		for i := 0; i <= top; i++ {
			fresh += ctx.DA.At(i, j)
		}
		if math.Abs(fresh-ctx.DA.At(n, j)) > h.tol {
			h.failures++
			h.t.Errorf("iter %d: column checksum %d drifted: fresh %v vs maintained %v",
				ctx.Iter, j, fresh, ctx.DA.At(n, j))
			return
		}
	}
	h.checked++
}

func (h *checksumAuditHook) ConsumePendingH() int { return 0 }
func (h *checksumAuditHook) PendingQ() int        { return 0 }

func TestTheorem1ChecksumInvariant(t *testing.T) {
	// The paper's Theorem 1: the checksum column and row are valid at the
	// end of each iteration (checked here at the next iteration's start).
	n := 158
	a := matrix.Random(n, n, 7)
	hook := &checksumAuditHook{t: t, tol: 1e-9}
	if _, err := Reduce(a, Options{NB: 32, Device: newDev(), Hook: hook}); err != nil {
		t.Fatal(err)
	}
	if hook.checked < 2 {
		t.Fatalf("audit ran on %d iterations only", hook.checked)
	}
	if hook.failures > 0 {
		t.Fatalf("checksum invariant violated %d times", hook.failures)
	}
}

// pokeHook injects explicit device pokes at one iteration boundary.
type pokeHook struct {
	iter    int
	pokes   []Injection
	pending int
	fired   bool
}

func (h *pokeHook) BeforeIteration(ctx *IterCtx) {
	if ctx.Iter != h.iter || h.fired {
		return
	}
	h.fired = true
	for _, p := range h.pokes {
		ctx.Dev.Poke(ctx.DA, p.Row, p.Col, p.Delta)
		h.pending++
	}
}
func (h *pokeHook) ConsumePendingH() int { c := h.pending; h.pending = 0; return c }
func (h *pokeHook) PendingQ() int        { return 0 }

func TestCorrectedPositionsReported(t *testing.T) {
	n := 126
	a := matrix.Random(n, n, 4)
	hook := &pokeHook{iter: 1, pokes: []Injection{{Row: 70, Col: 90, Delta: 3.5}}}
	res, err := Reduce(a, Options{NB: 16, Device: newDev(), Hook: hook})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.CorrectedH) != 1 {
		t.Fatalf("corrected %d positions", len(res.CorrectedH))
	}
	c := res.CorrectedH[0]
	if c.Row != 70 || c.Col != 90 || math.Abs(c.Delta-3.5) > 1e-6 {
		t.Fatalf("wrong correction: %+v", c)
	}
}

func TestErrorInPanelColumnRecovered(t *testing.T) {
	// Corrupt the panel that is about to be factorized: recovery must
	// patch the diskless checkpoint too, or the re-execution reproduces
	// the error. Exercises the checkpoint-patch path and the Q-checksum
	// re-absorption.
	n, nb := 158, 32
	a := matrix.Random(n, n, 6)
	// Panel of iteration 1 starts at column 32; row below the diagonal.
	hook := &pokeHook{iter: 1, pokes: []Injection{{Row: 100, Col: 40, Delta: 2.0}}}
	res, err := Reduce(a, Options{NB: nb, Device: newDev(), Hook: hook})
	if err != nil {
		t.Fatal(err)
	}
	if res.Recoveries == 0 {
		t.Fatal("panel error not recovered")
	}
	if r := lapack.FactorizationResidual(a, res.Q(), res.H()); r > 1e-13 {
		t.Fatalf("residual %v", r)
	}
}

func TestChecksumElementErrorRepaired(t *testing.T) {
	// Corrupt the checksum column itself: detection fires, location sees
	// a row flag with no column flag, and the maintained checksum is
	// refreshed from the data.
	n := 126
	a := matrix.Random(n, n, 8)
	hook := &pokeHook{iter: 1, pokes: []Injection{{Row: 60, Col: n, Delta: 5}}}
	res, err := Reduce(a, Options{NB: 16, Device: newDev(), Hook: hook})
	if err != nil {
		t.Fatal(err)
	}
	if res.Detections == 0 {
		t.Fatal("checksum corruption not detected")
	}
	if len(res.CorrectedH) != 0 {
		t.Fatalf("data corrections %v for a checksum-only error", res.CorrectedH)
	}
	if r := lapack.FactorizationResidual(a, res.Q(), res.H()); r > 1e-13 {
		t.Fatalf("residual %v", r)
	}
}

func TestAmbiguousPatternRejected(t *testing.T) {
	// Two simultaneous errors with identical magnitude in distinct rows
	// and columns cannot be attributed (any matching explains the
	// residuals); the algorithm must refuse rather than mis-correct.
	n := 126
	a := matrix.Random(n, n, 9)
	hook := &pokeHook{iter: 1, pokes: []Injection{
		{Row: 60, Col: 80, Delta: 2.0},
		{Row: 70, Col: 90, Delta: 2.0},
	}}
	_, err := Reduce(a, Options{NB: 16, Device: newDev(), Hook: hook})
	if !errors.Is(err, ErrUncorrectable) {
		t.Fatalf("expected ErrUncorrectable, got %v", err)
	}
}

func TestNonFiniteCorruptionNeverSilent(t *testing.T) {
	// An exponent-bit flip can turn an element into ±Inf or NaN, driving
	// both checksum totals non-finite — where |Sre−Sce| = NaN compares
	// false against every τ and the unguarded detector goes blind. The
	// pollution is irreversible (Inf−Inf = NaN defeats reverse
	// computation), so the contract is: detect and refuse, never return a
	// silently corrupted factorization. Found by a cmd/campaign sweep.
	n := 126
	for _, delta := range []float64{math.Inf(1), math.NaN()} {
		a := matrix.Random(n, n, 12)
		hook := &pokeHook{iter: 1, pokes: []Injection{{Row: 80, Col: 70, Delta: delta}}}
		res, err := Reduce(a, Options{NB: 16, Device: newDev(), Hook: hook})
		if err == nil {
			r := lapack.FactorizationResidual(a, res.Q(), res.H())
			t.Fatalf("delta %v: non-finite corruption returned without error (residual %v)", delta, r)
		}
		if !errors.Is(err, ErrUncorrectable) && !errors.Is(err, ErrDetectionStorm) {
			t.Fatalf("delta %v: unexpected error %v", delta, err)
		}
		if res.Detections == 0 {
			t.Fatalf("delta %v: detector stayed blind", delta)
		}
	}
}

// stormHook always reports a pending error (cost-only), forcing endless
// detection.
type stormHook struct{}

func (stormHook) BeforeIteration(*IterCtx) {}
func (stormHook) ConsumePendingH() int     { return 1 }
func (stormHook) PendingQ() int            { return 0 }

func TestDetectionStormBails(t *testing.T) {
	a := matrix.New(126, 126)
	_, err := Reduce(a, Options{NB: 16, Device: gpu.New(sim.K40c(), gpu.CostOnly), Hook: stormHook{}, MaxRecoveries: 2})
	if !errors.Is(err, ErrDetectionStorm) {
		t.Fatalf("expected ErrDetectionStorm, got %v", err)
	}
}

func TestFinalHCheckCatchesLateError(t *testing.T) {
	// Corrupt already-finished H data on the device (upper triangle of a
	// finished column): the per-iteration Sre/Sce comparison is blind to
	// finished regions, but the optional final sweep catches it.
	n, nb := 158, 32
	a := matrix.Random(n, n, 10)
	hook := &pokeHook{iter: 3, pokes: []Injection{{Row: 5, Col: 20, Delta: 4}}}
	res, err := Reduce(a, Options{NB: nb, Device: newDev(), Hook: hook, FinalHCheck: true})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, c := range res.CorrectedH {
		if c.Row == 5 && c.Col == 20 {
			found = true
		}
	}
	if !found {
		t.Fatalf("final H check missed the late error: %+v", res.CorrectedH)
	}
	if r := lapack.FactorizationResidual(a, res.Q(), res.H()); r > 1e-13 {
		t.Fatalf("residual %v", r)
	}
}

func TestOverheadIsSmall(t *testing.T) {
	// The headline claim: FT overhead under a few percent of the baseline
	// in simulated time, shrinking as N grows (O(N⁻¹) extra work).
	overhead := func(n int) float64 {
		a := matrix.New(n, n)
		base, err := hybrid.Reduce(a, hybrid.Options{NB: 32, Device: gpu.New(sim.K40c(), gpu.CostOnly)})
		if err != nil {
			t.Fatal(err)
		}
		ftRes, err := Reduce(a, Options{NB: 32, Device: gpu.New(sim.K40c(), gpu.CostOnly)})
		if err != nil {
			t.Fatal(err)
		}
		return (ftRes.SimSeconds - base.SimSeconds) / base.SimSeconds
	}
	small := overhead(1022)
	large := overhead(4030)
	if small < 0 {
		t.Fatalf("FT faster than baseline? overhead %v", small)
	}
	if large >= small {
		t.Fatalf("overhead must shrink with N: %.4f (1022) vs %.4f (4030)", small, large)
	}
	if large > 0.10 {
		t.Fatalf("overhead at N=4030 too large: %.2f%%", 100*large)
	}
}

func TestDisableQProtectionLeavesErrorIn(t *testing.T) {
	n, nb := 158, 32
	a := matrix.Random(n, n, 11)
	clean, err := Reduce(a, Options{NB: nb, Device: newDev()})
	if err != nil {
		t.Fatal(err)
	}
	// Inject into host V storage through a hook.
	inject := func(ctx *IterCtx) {
		if ctx.Iter == 2 {
			ctx.Host.Add(50, 10, 1.0)
		}
	}
	res, err := Reduce(a, Options{NB: nb, Device: newDev(), DisableQProtection: true,
		Hook: funcHook{before: inject}})
	if err != nil {
		t.Fatal(err)
	}
	if d := clean.Packed.Sub(res.Packed).MaxAbs(); d < 0.5 {
		t.Fatalf("Q error should survive with protection disabled, diff %v", d)
	}
}

// funcHook adapts plain functions to the Hook interface.
type funcHook struct {
	before func(*IterCtx)
}

func (f funcHook) BeforeIteration(ctx *IterCtx) {
	if f.before != nil {
		f.before(ctx)
	}
}
func (funcHook) ConsumePendingH() int { return 0 }
func (funcHook) PendingQ() int        { return 0 }

// Property: for random sizes and block sizes, the fault-free FT reduction
// is numerically indistinguishable from the plain LAPACK reduction.
func TestPropFaultFreeEqualsLAPACK(t *testing.T) {
	f := func(seed uint64) bool {
		n := 20 + int(seed%60)
		nb := 4 + int((seed>>8)%12)
		a := matrix.RandomNormal(n, n, seed)
		res, err := Reduce(a, Options{NB: nb, Device: newDev()})
		if err != nil || res.Detections != 0 {
			return false
		}
		packed := a.Clone()
		tau := make([]float64, max(n-1, 1))
		lapack.Dgehrd(n, nb, packed.Data, packed.Stride, tau)
		return res.Packed.Sub(packed).MaxAbs() < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// Property: a single off-diagonal error injected anywhere in the trailing
// matrix at any iteration is recovered and the result matches machine
// precision.
func TestPropSingleErrorAlwaysRecovered(t *testing.T) {
	f := func(seed uint64) bool {
		n, nb := 126, 16
		a := matrix.RandomNormal(n, n, seed)
		rng := matrix.NewRNG(seed)
		iter := rng.Intn(4)
		p := iter * nb
		row := p + 1 + rng.Intn(n-p-1)
		col := p + rng.Intn(n-p)
		if row == col {
			col = (col + 1) % n
			if col < p {
				col = p
			}
			if row == col {
				return true // skip degenerate draw
			}
		}
		delta := 0.5 + rng.Float64()*10
		hook := &pokeHook{iter: iter, pokes: []Injection{{Row: row, Col: col, Delta: delta}}}
		res, err := Reduce(a, Options{NB: nb, Device: newDev(), Hook: hook})
		if err != nil {
			t.Logf("seed %d (%d,%d)@%d: %v", seed, row, col, iter, err)
			return false
		}
		if res.Detections == 0 {
			t.Logf("seed %d (%d,%d)@%d: not detected", seed, row, col, iter)
			return false
		}
		r := lapack.FactorizationResidual(a, res.Q(), res.H())
		if r > 1e-13 {
			t.Logf("seed %d: residual %v", seed, r)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

func TestPostProcessComparatorRecovers(t *testing.T) {
	// The prior-work comparator: detection only at the end, recovery by
	// full re-execution. The result must still be correct, at much higher
	// recovery cost (asserted in TestPostProcessCostsMore).
	n, nb := 158, 32
	a := matrix.Random(n, n, 13)
	hook := &pokeHook{iter: 1, pokes: []Injection{{Row: 80, Col: 100, Delta: 2}}}
	res, err := Reduce(a, Options{NB: nb, Device: newDev(), Hook: hook, PostProcess: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Detections == 0 || res.Recoveries == 0 {
		t.Fatalf("post-process comparator missed the fault: %+v", res)
	}
	if r := lapack.FactorizationResidual(a, res.Q(), res.H()); r > 1e-13 {
		t.Fatalf("residual %v", r)
	}
}

func TestPostProcessCostsMore(t *testing.T) {
	// The paper's motivation for per-iteration detection: recovering at
	// the end costs a whole factorization, recovering per iteration costs
	// one iteration. Compare simulated times in cost-only mode.
	n, nb := 2046, 32
	a := matrix.New(n, n)
	mk := func(post bool) float64 {
		hook := &stormOnceHook{}
		res, err := Reduce(a, Options{NB: nb, Device: gpu.New(sim.K40c(), gpu.CostOnly), Hook: hook, PostProcess: post})
		if err != nil {
			t.Fatal(err)
		}
		if res.Detections == 0 {
			t.Fatal("fault not detected")
		}
		return res.SimSeconds
	}
	perIter := mk(false)
	post := mk(true)
	if post < 1.5*perIter {
		t.Fatalf("post-processing recovery should cost far more: %.4fs vs %.4fs", post, perIter)
	}
}

// stormOnceHook reports exactly one pending H error (cost-only driver).
type stormOnceHook struct{ consumed bool }

func (h *stormOnceHook) BeforeIteration(*IterCtx) {}
func (h *stormOnceHook) ConsumePendingH() int {
	if h.consumed {
		return 0
	}
	h.consumed = true
	return 1
}
func (h *stormOnceHook) PendingQ() int { return 0 }
