package ft

import (
	"testing"

	"repro/internal/gpu"
	"repro/internal/matrix"
	"repro/internal/sim"
)

func TestSnapshotResumeMatchesUninterrupted(t *testing.T) {
	n, nb := 190, 32
	a := matrix.Random(n, n, 77)
	full, err := Reduce(a, Options{NB: nb, Device: newDev()})
	if err != nil {
		t.Fatal(err)
	}

	res, snap, err := ReduceWithSnapshots(a, CheckpointOptions{
		Options: Options{NB: nb, Device: newDev()},
		Every:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if snap == nil {
		t.Fatal("no snapshot taken")
	}
	if d := res.Packed.Sub(full.Packed).MaxAbs(); d > 1e-12 {
		t.Fatalf("snapshotting changed the result by %v", d)
	}

	// Round-trip through serialization (the diskless "remote memory").
	blob, err := snap.Encode()
	if err != nil {
		t.Fatal(err)
	}
	snap2, err := DecodeSnapshot(blob)
	if err != nil {
		t.Fatal(err)
	}
	if snap2.Iter != snap.Iter || snap2.Panel != snap.Panel {
		t.Fatalf("snapshot metadata lost: %d/%d vs %d/%d", snap2.Iter, snap2.Panel, snap.Iter, snap.Panel)
	}

	// "Process failure": resume on a fresh device from the snapshot alone.
	resumed, err := Resume(snap2, Options{NB: nb, Device: newDev()})
	if err != nil {
		t.Fatal(err)
	}
	if d := resumed.Packed.Sub(full.Packed).MaxAbs(); d > 1e-11 {
		t.Fatalf("resumed result differs from uninterrupted run by %v", d)
	}
	if resumed.Detections != 0 {
		t.Fatalf("resume triggered %d phantom detections", resumed.Detections)
	}
}

func TestSnapshotResumeSurvivesLaterFault(t *testing.T) {
	// Resume, then hit the continued run with a soft error: both
	// resilience layers compose.
	n, nb := 190, 32
	a := matrix.Random(n, n, 5)
	clean, err := Reduce(a, Options{NB: nb, Device: newDev()})
	if err != nil {
		t.Fatal(err)
	}
	_, snap, err := ReduceWithSnapshots(a, CheckpointOptions{
		Options: Options{NB: nb, Device: newDev()},
		Every:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Inject at the first resumed iteration (the last snapshot may be at
	// the final blocked iteration, so +1 could be out of range).
	hook := &pokeHook{iter: snap.Iter, pokes: []Injection{{Row: n - 10, Col: n - 20, Delta: 2}}}
	resumed, err := Resume(snap, Options{NB: nb, Device: newDev(), Hook: hook})
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Detections == 0 || resumed.Recoveries == 0 {
		t.Fatalf("post-resume fault not handled: %+v", resumed)
	}
	if d := resumed.Packed.Sub(clean.Packed).MaxAbs(); d > 1e-9 {
		t.Fatalf("post-resume recovery wrong by %v", d)
	}
}

func TestSnapshotValidation(t *testing.T) {
	a := matrix.Random(64, 64, 1)
	if _, _, err := ReduceWithSnapshots(a, CheckpointOptions{Options: Options{NB: 16, Device: newDev()}}); err == nil {
		t.Fatal("Every=0 accepted")
	}
	if _, _, err := ReduceWithSnapshots(a, CheckpointOptions{
		Options: Options{NB: 16, Device: gpu.New(sim.K40c(), gpu.CostOnly)}, Every: 1,
	}); err == nil {
		t.Fatal("cost-only snapshots accepted")
	}
	if _, err := Resume(nil, Options{Device: newDev()}); err == nil {
		t.Fatal("nil snapshot accepted")
	}
	snap := &Snapshot{N: 8, NB: 4}
	if _, err := Resume(snap, Options{NB: 8, Device: newDev()}); err == nil {
		t.Fatal("block-size mismatch accepted")
	}
}

func TestSnapshotCostCharged(t *testing.T) {
	// Snapshots must cost simulated time (the D2H of the full state).
	n, nb := 190, 32
	a := matrix.Random(n, n, 9)
	plain, err := Reduce(a, Options{NB: nb, Device: newDev()})
	if err != nil {
		t.Fatal(err)
	}
	snapped, _, err := ReduceWithSnapshots(a, CheckpointOptions{
		Options: Options{NB: nb, Device: newDev()}, Every: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !(snapped.SimSeconds > plain.SimSeconds) {
		t.Fatalf("snapshot cost not charged: %v vs %v", snapped.SimSeconds, plain.SimSeconds)
	}
}
