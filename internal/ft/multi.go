// Multi-device fault-tolerant reduction: the trailing matrix is sharded
// block-column wise across a devpool.Pool (as in hybrid's multi-device
// path) and every slab carries its own ABFT halo — a checksum column of
// row sums and a checksum row of column sums, maintained *through* the
// right and left updates on the owning device (devpool.Shard, Pad = 1).
//
// The detection schedule differs from the single-device Algorithm 3 in
// one deliberate way. The failure model injects faults at blocked-
// iteration boundaries, and a boundary is exactly where this path
// checks: at the start of every iteration (and once after the last),
// each device compares every owned slab's fresh data total against the
// totals of its maintained halo. A fresh corruption therefore surfaces
// *before* the iteration's updates consume the data, so recovery is a
// slab-local locate-and-correct on the owning device — no update
// reversal, no diskless panel checkpoint, no re-execution, and no data
// movement on any other device. The per-iteration sweep reads each
// slab once (O(n²/K) per device), the price of trading the legacy
// reverse/re-execute machinery for in-place correction.
//
// Determinism: the data-path kernels are exactly the hybrid multi
// schedule's (the halo rides as padding rows/columns that never feed a
// data element), so a clean run produces H, Q, and tau bit-identical to
// the plain multi-device hybrid reduction — and hence bit-identical at
// every device count.
package ft

import (
	"context"
	"fmt"
	"math"

	"repro/internal/devpool"
	"repro/internal/gpu"
	"repro/internal/hybrid"
	"repro/internal/lapack"
	"repro/internal/matrix"
	"repro/internal/obs"
	"repro/internal/sim"
)

// multiReducer carries the state of one multi-device fault-tolerant
// reduction.
type multiReducer struct {
	opt   Options
	pool  *devpool.Pool
	sh    *devpool.Shard
	n, nb int

	hostA *matrix.Matrix
	tau   []float64
	// yHost is (n+1)×nb: rows 0..n-1 hold Y, row n the Yce checksum row.
	yHost *matrix.Matrix
	tHost *matrix.Matrix

	// Per-device detection staging: dChk[d] collects one column per
	// owned slab — fresh data total, maintained checksum-column total,
	// maintained checksum-row total — and chkHost[d] receives it in a
	// single transfer per device.
	dChk    []*gpu.Matrix
	chkHost []*matrix.Matrix

	normA1  float64
	tauDet  float64
	lastGap float64
	// la enables depth-1 lookahead: panel k+1's columns are priority-
	// updated and its factorization overlaps the remainder update, with
	// boundary detection running optimistically (see detectSweep).
	la bool

	qprot *qChecksums
	res   *Result

	// fused mirrors Options.Substrate == SubstrateFused. Under the fused
	// substrate the panel slab's halo is refreshed incrementally: finCol
	// (n×1, on the slab's owner) accumulates the row sums of the slab's
	// frozen-column prefix — columns left of the current panel, which no
	// later iteration touches — so maintenance only re-reads the columns
	// the iteration actually changed. finSlab/finDev identify the slab
	// and device the accumulator belongs to (finSlab = -1: invalid,
	// rebuilt on next touch, e.g. after a fail-stop device loss).
	fused   bool
	finCol  *gpu.Matrix
	finDev  *gpu.Device
	finSlab int

	// fs is the fail-stop recovery state (failstop.go), nil with
	// Options.FailStop off. fsKills holds armed device kills keyed by
	// kill point — populated via IterCtx.KillDevice regardless of
	// FailStop, so a loss with recovery disabled still fails loudly.
	fs      *failStop
	fsKills map[string]int
}

// journal appends one FT event stamped with the pool's simulated time.
func (r *multiReducer) journal(e obs.Event) {
	e.SimTime = r.pool.Elapsed()
	r.opt.Journal.Append(e)
}

// count increments an FT counter (no-op without a registry).
func (r *multiReducer) count(name string) {
	r.opt.Obs.Counter(name, ftLabels(r.opt)...).Inc()
}

// pokeH adds delta to the trailing-matrix element at global (row, col),
// routed to the owning slab (IterCtx.PokeH on the multi path).
func (r *multiReducer) pokeH(row, col int, delta float64) {
	s := r.sh.Part.SlabOf(col)
	r.sh.Owner(s).Poke(r.sh.SlabM[s], row, col-r.sh.Part.Slabs[s].Start, delta)
}

// flipBitH flips one bit of the element at global (row, col) on its
// owning slab, returning the applied delta (0 in cost-only mode).
func (r *multiReducer) flipBitH(row, col int, bit uint) float64 {
	s := r.sh.Part.SlabOf(col)
	m := r.sh.SlabM[s]
	lc := col - r.sh.Part.Slabs[s].Start
	old := r.sh.Owner(s).FlipBit(m, row, lc, bit)
	if r.pool.Mode == gpu.Real {
		return m.At(row, lc) - old
	}
	return 0
}

// reduceMulti is the multi-device body of Reduce, selected when
// Options.Devices is non-empty.
func reduceMulti(a *matrix.Matrix, opt Options) (*Result, error) {
	n := a.Rows
	nb := opt.NB
	if nb <= 0 {
		nb = hybrid.DefaultNB
	}
	if opt.ThresholdFactor <= 0 {
		opt.ThresholdFactor = 200
	}
	if opt.MaxRecoveries <= 0 {
		opt.MaxRecoveries = 3
	}
	pool := devpool.Wrap(opt.Devices)
	pp := pool.Params
	if opt.Obs != nil {
		pool.SetObs(opt.Obs)
		for _, name := range ftCounterNames {
			opt.Obs.Counter(name, ftLabels(opt)...)
		}
	}
	pool.SetJob(opt.Trace.JobID())
	sp := opt.Trace.Span("ft.reduce_multi", opt.Trace.ParentSpan())
	defer opt.Trace.EndSpan(sp)
	ctx := opt.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	pool.SetContext(ctx)

	fused, err := substrateFused(opt)
	if err != nil {
		return nil, err
	}
	r := &multiReducer{
		opt:     opt,
		pool:    pool,
		n:       n,
		nb:      nb,
		hostA:   a.Clone(),
		tau:     make([]float64, max(n-1, 1)),
		res:     &Result{N: n, NB: nb},
		la:      !opt.DisableLookahead,
		fused:   fused,
		finSlab: -1,
	}
	r.res.Packed = r.hostA
	r.res.Tau = r.tau
	if n <= 1 {
		return r.res, nil
	}
	if fused {
		for _, dev := range pool.Devices {
			dev.SetSubstrateFused(true)
			dev.ResetFTStats()
		}
		defer func() {
			// pool.Devices reflects fail-stop replacements, so this sweeps
			// every device that computed for the run at its final state.
			for _, dev := range pool.Devices {
				collectSubstrateStats(dev, r.res, r.opt, r.journal)
				dev.SetSubstrateFused(false)
			}
		}()
		defer func() {
			if r.finCol != nil {
				r.finDev.Free(r.finCol)
			}
		}()
	}

	pool.SetPhase("setup")
	// ‖A‖₁ anchors the detection threshold (one host pass over the data).
	pool.HostOp(pp.GemvHost(n, n), func() {
		r.normA1 = a.Norm1()
	})
	r.tauDet = opt.ThresholdFactor * macheps * float64(n) * math.Max(r.normA1, 1)

	sh := devpool.NewShard(pool, n, nb, 1)
	defer sh.Free()
	r.sh = sh
	maxSlabs := sh.Part.MaxSlabsPerOwner(pool.K())
	r.dChk = make([]*gpu.Matrix, pool.K())
	r.chkHost = make([]*matrix.Matrix, pool.K())
	for d, dev := range pool.Devices {
		if len(sh.DevSlabs[d]) == 0 {
			continue
		}
		r.dChk[d] = dev.Alloc(3, maxSlabs)
		r.chkHost[d] = matrix.New(3, maxSlabs)
	}
	defer func() {
		for d, dev := range pool.Devices {
			if r.dChk[d] != nil {
				dev.Free(r.dChk[d])
			}
		}
	}()

	sh.Upload(r.hostA)
	pool.SetPhase("encode")
	for s := range sh.Part.Slabs {
		r.encodeSlab(s)
	}
	defer r.fsSetup()()
	r.yHost = matrix.New(n+1, nb)
	r.tHost = matrix.New(nb, nb)
	r.qprot = newQChecksums(n)

	nx := nb
	if nx < 2 {
		nx = 2
	}
	p := 0
	iter := 0
	for ; n-1-p > nx; p += nb {
		if err := ctx.Err(); err != nil {
			return r.res, err
		}
		ib := min(nb, n-1-p)
		k := p + 1

		if opt.Hook != nil {
			opt.Hook.BeforeIteration(&IterCtx{
				Host: r.hostA,
				Iter: iter, Panel: p, NB: ib, N: n,
				multi: r,
			})
		}

		// A boundary-point device loss strikes here: the dead device holds
		// only completed iterations, all captured by the last parity
		// refresh, so reconstruction restores the boundary state exactly.
		if err := r.fsKillAt(killBoundary, iter, p, k, ib); err != nil {
			return r.res, err
		}

		// Boundary check: a fault injected between iterations is caught
		// here, before this iteration's updates consume the data.
		if !opt.PostProcess {
			if err := r.checkAll(iter, p); err != nil {
				return r.res, err
			}
		}

		// A panel-point loss strikes as the panel offload begins — after
		// the boundary sweep, before PanelD2H reads the panel slab. No
		// kernel has written any slab since the boundary refresh, so the
		// reconstruction is again exact; PanelD2H then reads the spare.
		if err := r.fsKillAt(killPanel, iter, p, k, ib); err != nil {
			return r.res, err
		}

		// After the first iteration of a lookahead run the panel's columns
		// were priority-updated ahead of the remainder, so the offload and
		// the host factorization hide under the in-flight trailing update.
		hidden := r.la && iter > 0
		if hidden {
			pool.SetPhase("panel_hidden")
		} else {
			pool.SetPhase("panel")
		}
		sh.PanelD2H(r.hostA, p, k, ib)
		if err := hybrid.PanelFactorMulti(sh, r.hostA, r.yHost, r.tHost, r.tau, n, p, k, ib, hidden); err != nil {
			return r.res, err
		}

		// Maintain the Q checksums on the otherwise idle CPU.
		if !opt.DisableQProtection {
			pool.SetPhase("q_protect")
			r.qprot.absorbPanel(pool, pp, r.hostA, p, ib)
		}

		// The broadcast V/T/Y drive both the data updates and the halo
		// maintenance; the panel slab's own checksum row still holds the
		// pre-factorization column sums YTop's Yce partial needs.
		pool.SetPhase("right_update")
		sh.Broadcast(r.hostA, r.tHost, p, k, ib)
		sh.YTop(r.yHost, r.tHost, p, k, ib)
		sh.BroadcastY(r.yHost, ib)
		if r.la && n-1-(p+nb) > nx {
			sh.PriorityUpdate(p, k, ib, nb)
		}
		sh.RightUpdate(p, k, ib)

		// Mid-iteration parity sync point: capture the post-right-update
		// state (priority columns ahead of the remainder included, exactly
		// as the lookahead split left them) so an update-point loss
		// reconstructs to precisely this state and the left update resumes
		// on the spare with the rebroadcast V/T/Y.
		r.fsRefresh(p)
		if err := r.fsKillAt(killUpdate, iter, p, k, ib); err != nil {
			return r.res, err
		}

		pool.SetPhase("left_update")
		sh.LeftUpdate(p, k, ib)

		// The panel slab was updated data-only (its columns were being
		// rewritten by the host factorization); refresh its halo from
		// the final data so the next boundary check sees it consistent.
		// The fused substrate verifies every update kernel's output per
		// call, so the maintenance pass skips the slab's frozen-column
		// prefix and re-reads only what this iteration changed.
		pool.SetPhase("checksum_maintenance")
		if r.fused {
			r.refreshPanelSlab(p, ib)
		} else {
			r.encodeSlab(sh.Part.SlabOf(p))
		}

		// Boundary parity sync point: the iteration's writes are complete.
		r.fsRefresh(p)
		iter++
	}
	r.res.BlockedIters = iter

	if err := ctx.Err(); err != nil {
		return r.res, err
	}

	if opt.PostProcess {
		// Post-processing comparator: the single end-of-run detection of
		// the prior work the paper compares against. A propagated error
		// cannot be located anymore; recovery re-executes the entire
		// factorization with per-iteration checks.
		if iter > 0 {
			if bad := r.detectSweep(iter, p); len(bad) > 0 {
				r.res.Detections++
				r.count("ft_detections_total")
				det := obs.Ev(obs.KindDetection, iter)
				det.Target = obs.TargetH
				det.Value = obs.Float(r.lastGap)
				det.Outcome = "post-process"
				r.journal(det)
				retryOpt := opt
				retryOpt.PostProcess = false
				retryOpt.Hook = nil // transient errors do not re-occur on redo
				retry, err := Reduce(a, retryOpt)
				if err != nil {
					return r.res, err
				}
				retry.Detections += r.res.Detections
				retry.Recoveries = r.res.Recoveries + 1
				return retry, nil
			}
		}
	} else {
		// Final boundary check covers the last iteration's updates.
		if err := r.checkAll(iter, p); err != nil {
			return r.res, err
		}
	}

	// Verify and repair the host-side Householder storage before the
	// gather: the gather overwrites it with the (halo-protected) device
	// slabs, so this pass is what reports host-only (Area 3) hits.
	if !opt.DisableQProtection {
		pool.SetPhase("q_protect")
		fixes, err := r.qprot.verifyAndCorrect(pool, pp, r.hostA, p, r.tauDet, r.journal, r.res.BlockedIters)
		if err != nil {
			return r.res, err
		}
		r.res.QCorrections += fixes
		r.opt.Obs.Counter("ft_q_corrections_total", ftLabels(r.opt)...).Add(float64(fixes))
	}

	// Bring every slab home in one sweep (the device copies are
	// authoritative for the whole matrix) and finish on the host.
	pool.SetPhase("cleanup")
	sh.Gather(r.hostA)
	work := make([]float64, n)
	pool.HostOp(cleanupCost(pp, n, p), func() {
		lapack.Dgehd2(n, p, r.hostA.Data, r.hostA.Stride, r.tau, work)
	})
	pool.WaitAll()
	pool.SetPhase("")
	pool.FinishRun()
	if r.fused {
		for _, dev := range pool.Devices {
			if _, _, nonFinite := dev.FTStats(); nonFinite {
				return r.res, fmt.Errorf("%w: fused substrate observed a non-finite checksum total on %s", ErrUncorrectable, dev.Name())
			}
		}
	}

	r.res.SimSeconds = pool.Elapsed()
	if r.res.SimSeconds > 0 {
		r.res.ModelGFLOPS = sim.HessenbergFlops(n) / r.res.SimSeconds / 1e9
	}
	return r.res, nil
}

// encodeSlab (re)computes slab s's checksum halo from its data on the
// owning device: the checksum column (row sums of the data columns),
// then the checksum row including the grand-total corner (column sums
// over data columns plus the fresh checksum column).
func (r *multiReducer) encodeSlab(s int) {
	sh := r.sh
	sl := sh.Part.Slabs[s]
	dev := sh.Owner(s)
	r.pool.Issue(dev)
	e := dev.RowSums(sh.SlabM[s], 0, 0, r.n, sl.Cols, sh.SlabM[s], 0, sl.Cols, sh.Last[s])
	e = dev.ColSums(sh.SlabM[s], 0, 0, r.n, sl.Cols+1, sh.SlabM[s], r.n, 0, e)
	sh.Last[s] = e
}

// refreshPanelSlab is the fused-substrate replacement for the panel
// slab's end-of-iteration encodeSlab. Columns left of the panel are
// frozen — no later iteration writes them — and their row sums are
// carried in the finCol accumulator, so the refresh reads only the
// columns this iteration changed ([p, slab end)). One fused kernel
// (encodeSlab needs two, and per-kernel launch latency dominates these
// bandwidth-bound sweeps) produces everything in a single pass: the
// changed columns' sums rewrite the checksum-row segment (frozen
// entries keep their last written values, which still match the frozen
// data), their row sums merge with the prefix into the checksum column,
// the grand total lands in the corner, and the newly finished panel
// columns fold into the prefix for the next iteration. The prefix
// accumulates column-by-column in ascending order — exactly the order a
// from-scratch rebuild uses — so a post-loss rebuild from parity-
// reconstructed data is bit-identical to the incremental value. The
// accumulator only ever feeds the halo, never a data element, so H and
// tau stay bit-identical to the swept substrate; the halo's rounding
// drift against a full re-encode is O(ε·‖A‖), far below τ.
func (r *multiReducer) refreshPanelSlab(p, ib int) {
	sh := r.sh
	s := sh.Part.SlabOf(p)
	sl := sh.Part.Slabs[s]
	dev := sh.Owner(s)
	m := sh.SlabM[s]
	n := r.n
	cols := sl.Cols
	lp0 := p - sl.Start
	pp := r.pool.Params
	r.pool.Issue(dev)

	if r.finDev != dev || r.finSlab != s {
		// First panel of this slab, or the previous carrier was lost to a
		// fail-stop kill: (re)build the accumulator on the owning device.
		// Frozen columns never change, so the prefix recomputes exactly
		// from the (possibly parity-reconstructed) data.
		if r.finCol != nil {
			r.finDev.Free(r.finCol)
		}
		r.finCol = dev.Alloc(n, 1)
		r.finDev = dev
		r.finSlab = s
		fin := r.finCol
		sh.Last[s] = dev.Custom(pp.GemvDevice(n, lp0+1), func() {
			for i := 0; i < n; i++ {
				fin.Data[i] = 0
			}
			for j := 0; j < lp0; j++ {
				col := m.Data[j*m.Stride : j*m.Stride+n]
				for i, v := range col {
					fin.Data[i] += v
				}
			}
		}, sh.Last[s])
	}

	// One launch; bandwidth for the changed columns plus the checksum
	// column and prefix traffic (3 n-vectors).
	fin := r.finCol
	cost := pp.KernelLaunchSec + 8*float64(n)*float64(cols-lp0+3)/(pp.GPUBandwidthGBps*1e9)
	sh.Last[s] = dev.Custom(cost, func() {
		chk := m.Data[cols*m.Stride : cols*m.Stride+n]
		copy(chk, fin.Data[:n])
		for j := lp0; j < cols; j++ {
			col := m.Data[j*m.Stride : j*m.Stride+n]
			cs := 0.0
			for i, v := range col {
				cs += v
				chk[i] += v
			}
			m.Data[j*m.Stride+n] = cs
			if j < lp0+ib {
				for i, v := range col {
					fin.Data[i] += v
				}
			}
		}
		corner := 0.0
		for _, v := range chk {
			corner += v
		}
		m.Data[cols*m.Stride+n] = corner
	}, sh.Last[s])
}

// slabTotals issues slab s's detection kernel on its owner: the fresh
// grand total of the data region and the totals of the maintained halo,
// written to column pos of the device's staging block.
func (r *multiReducer) slabTotals(s, pos int, dchk *gpu.Matrix) sim.Event {
	sh := r.sh
	sl := sh.Part.Slabs[s]
	dev := sh.Owner(s)
	n := r.n
	m := sh.SlabM[s]
	cols := sl.Cols
	kg := dev.Custom(r.pool.Params.GemvDevice(n, cols), func() {
		td, sre, sce := 0.0, 0.0, 0.0
		for j := 0; j < cols; j++ {
			col := m.Data[j*m.Stride : j*m.Stride+n]
			for _, v := range col {
				td += v
			}
			sce += m.Data[j*m.Stride+n]
		}
		chk := m.Data[cols*m.Stride : cols*m.Stride+n]
		for _, v := range chk {
			sre += v
		}
		dchk.Data[pos*dchk.Stride+0] = td
		dchk.Data[pos*dchk.Stride+1] = sre
		dchk.Data[pos*dchk.Stride+2] = sce
	}, sh.Last[s])
	sh.Last[s] = kg
	return kg
}

// slabMismatch applies the detection criterion to one staged totals
// column, updating lastGap. A non-finite total is itself proof of
// corruption (Inf−Inf = NaN compares false against every threshold).
func (r *multiReducer) slabMismatch(st *matrix.Matrix, pos int) bool {
	td, sre, sce := st.At(0, pos), st.At(1, pos), st.At(2, pos)
	g1 := math.Abs(td - sre)
	g2 := math.Abs(td - sce)
	gap := math.Max(g1, g2)
	if gap > r.lastGap || math.IsNaN(gap) {
		r.lastGap = gap
	}
	if math.IsNaN(gap) || math.IsInf(td, 0) || math.IsInf(sre, 0) || math.IsInf(sce, 0) {
		return true
	}
	return gap > r.tauDet
}

// detectSweep runs one pool-wide boundary check: every device batches
// its owned slabs' totals and returns them in a single transfer; the
// host flags mismatching slabs. In cost-only mode the data does not
// exist to compare, so the injection hook drives the branch and the
// mismatch is attributed to the panel slab (as the legacy path does).
func (r *multiReducer) detectSweep(iter, p int) []int {
	pool := r.pool
	sh := r.sh
	type devBatch struct {
		ev     sim.Event
		d      int
		active []int
	}
	var batches []devBatch
	for d, dev := range pool.Devices {
		var kgs []sim.Event
		var active []int
		for _, s := range sh.DevSlabs[d] {
			if len(active) == 0 {
				pool.Issue(dev)
			}
			kgs = append(kgs, r.slabTotals(s, len(active), r.dChk[d]))
			active = append(active, s)
		}
		if len(active) == 0 {
			continue
		}
		var ev sim.Event
		if r.la {
			// Lookahead: the verdict rides the compute stream's tail
			// (device-mapped read), naturally behind the update kernels
			// that produce the totals, without occupying the copy engine —
			// an async copy depending on the whole remainder would make
			// the next panel offload queue behind it.
			ev = dev.D2HTail(r.chkHost[d].View(0, 0, 3, len(active)), r.dChk[d], 0, 0, kgs...)
		} else {
			ev = dev.D2HAsync(r.chkHost[d].View(0, 0, 3, len(active)), r.dChk[d], 0, 0, kgs...)
		}
		batches = append(batches, devBatch{ev: ev, d: d, active: active})
	}
	if !r.la {
		for _, b := range batches {
			pool.Wait(b.ev)
		}
	}
	r.count("ft_checksum_checks_total")

	r.lastGap = 0
	var bad []int
	if pool.Mode == gpu.CostOnly {
		if r.opt.Hook != nil && r.opt.Hook.ConsumePendingH() > 0 {
			bad = append(bad, sh.Part.SlabOf(p))
		}
	} else {
		if r.opt.Hook != nil {
			r.opt.Hook.ConsumePendingH() // keep hook state consistent
		}
		for _, b := range batches {
			for pos, s := range b.active {
				if r.slabMismatch(r.chkHost[b.d], pos) {
					bad = append(bad, s)
				}
			}
		}
	}
	if r.la && len(bad) > 0 {
		// Optimistic clock: the staged totals were produced eagerly in
		// program order, so a clean sweep never blocks the host on the
		// verdict — detection cost is charged on the compute streams and
		// the boundary stays eager. Only a mismatch pays the
		// synchronization, because recovery must observe the verdict.
		for _, b := range batches {
			pool.Wait(b.ev)
		}
	}
	ev := obs.Ev(obs.KindChecksumCheck, iter)
	ev.Target = obs.TargetH
	ev.Value = obs.Float(r.lastGap)
	ev.Outcome = "clean"
	if len(bad) > 0 {
		ev.Outcome = "mismatch"
	}
	r.journal(ev)
	return bad
}

// recheckSlab re-runs the detection for a single slab after a
// correction attempt.
func (r *multiReducer) recheckSlab(iter, s int) bool {
	pool := r.pool
	if pool.Mode == gpu.CostOnly {
		// The hook's pending injection was consumed; a re-check is clean.
		return false
	}
	sh := r.sh
	d := sh.Part.Slabs[s].Owner
	dev := sh.Owner(s)
	pool.Issue(dev)
	kg := r.slabTotals(s, 0, r.dChk[d])
	pool.Wait(dev.D2HAsync(r.chkHost[d].View(0, 0, 3, 1), r.dChk[d], 0, 0, kg))
	r.count("ft_checksum_checks_total")
	r.lastGap = 0
	mismatch := r.slabMismatch(r.chkHost[d], 0)
	ev := obs.Ev(obs.KindChecksumCheck, iter)
	ev.Target = obs.TargetH
	ev.Value = obs.Float(r.lastGap)
	ev.Outcome = "clean"
	if mismatch {
		ev.Outcome = "mismatch"
	}
	r.journal(ev)
	return mismatch
}

// checkAll runs one boundary check and drives slab-local recovery for
// every flagged slab, bounded by MaxRecoveries attempts per slab.
func (r *multiReducer) checkAll(iter, p int) error {
	pool := r.pool
	prev := pool.SetPhase("detect")
	defer pool.SetPhase(prev)
	for _, s := range r.detectSweep(iter, p) {
		r.res.Detections++
		r.count("ft_detections_total")
		det := obs.Ev(obs.KindDetection, iter)
		det.Target = obs.TargetH
		det.Value = obs.Float(r.lastGap)
		det.Outcome = fmt.Sprintf("slab %d on %s", s, r.sh.Owner(s).Name())
		det.Device = r.sh.Owner(s).Name()
		r.journal(det)
		for attempt := 0; ; attempt++ {
			if err := r.locateAndCorrectSlab(iter, s); err != nil {
				return err
			}
			r.res.Recoveries++
			r.count("ft_recoveries_total")
			if !r.recheckSlab(iter, s) {
				break
			}
			r.res.Detections++
			r.count("ft_detections_total")
			if attempt+1 >= r.opt.MaxRecoveries {
				return fmt.Errorf("%w (iteration %d, slab %d)", ErrDetectionStorm, iter, s)
			}
		}
		// The correction rewrote slab content already folded into the
		// fail-stop parity; re-encode its round so a later loss does not
		// resurrect the corrupted bits.
		r.fsRefreshRoundOf(s)
	}
	return nil
}

// locateAndCorrectSlab recomputes slab s's fresh row and column sums on
// its owner, compares them with the maintained halo on the host, and
// corrects the flagged elements in place — all without touching any
// other device. Mirrors the single-device locateAndCorrect, except the
// comparison is plain (no Hessenberg-aware split: finished columns keep
// whole-column sums, their reflector rows included, because they stay
// device-resident until the final gather).
func (r *multiReducer) locateAndCorrectSlab(iter, s int) error {
	pool := r.pool
	sh := r.sh
	sl := sh.Part.Slabs[s]
	dev := sh.Owner(s)
	n := r.n
	cols := sl.Cols
	pp := pool.Params
	prevPhase := pool.SetPhase("recovery")
	defer pool.SetPhase(prevPhase)

	m := sh.SlabM[s]
	dFresh := dev.Alloc(n, 2)
	defer dev.Free(dFresh)
	pool.Issue(dev)
	eR := dev.Custom(pp.GemvDevice(n, cols), func() {
		for i := 0; i < n; i++ {
			dFresh.Data[i] = 0
		}
		for j := 0; j < cols; j++ {
			col := m.Data[j*m.Stride : j*m.Stride+n]
			for i, v := range col {
				dFresh.Data[i] += v
			}
		}
	}, sh.Last[s])
	eC := dev.Custom(pp.GemvDevice(n, cols), func() {
		for j := 0; j < cols; j++ {
			s := 0.0
			for _, v := range m.Data[j*m.Stride : j*m.Stride+n] {
				s += v
			}
			dFresh.Data[dFresh.Stride+j] = s
		}
	}, eR)

	freshHost := matrix.New(n, 2)
	chkColHost := matrix.New(n, 1)
	chkRowHost := matrix.New(1, cols)
	e := dev.D2HAsync(freshHost, dFresh, 0, 0, eR, eC)
	e = dev.D2HAsync(chkColHost, m, 0, cols, e)
	e = dev.D2HAsync(chkRowHost, m, n, 0, e)
	sh.Last[s] = e
	pool.Wait(e)

	if pool.Mode == gpu.CostOnly {
		// Charge a representative correction kernel; the hook already
		// consumed the injection, so the re-check runs clean.
		sh.Last[s] = dev.Add(m, 0, 0, 0, sh.Last[s])
		loc := obs.Ev(obs.KindLocation, iter)
		loc.Target = obs.TargetH
		loc.Outcome = "cost-only"
		loc.Device = dev.Name()
		r.journal(loc)
		corr := obs.Ev(obs.KindCorrection, iter)
		corr.Target = obs.TargetH
		corr.Outcome = "cost-only"
		corr.Device = dev.Name()
		r.journal(corr)
		r.count("ft_corrections_total")
		return nil
	}

	tol := r.tauDet
	var rows, colsF []int
	rRes := make([]float64, n)
	cRes := make([]float64, cols)
	nonFinite := false
	for i := 0; i < n; i++ {
		rRes[i] = freshHost.At(i, 0) - chkColHost.At(i, 0)
		if math.IsNaN(rRes[i]) || math.IsInf(rRes[i], 0) {
			nonFinite = true
		}
		if math.Abs(rRes[i]) > tol {
			rows = append(rows, i)
		}
	}
	for j := 0; j < cols; j++ {
		cRes[j] = freshHost.At(j, 1) - chkRowHost.At(0, j)
		if math.IsNaN(cRes[j]) || math.IsInf(cRes[j], 0) {
			nonFinite = true
		}
		if math.Abs(cRes[j]) > tol {
			colsF = append(colsF, j)
		}
	}
	if nonFinite {
		// An exponent hit drove a value to ±Inf/NaN; the residual
		// arithmetic cannot recover the original value.
		return fmt.Errorf("%w: non-finite residual in slab %d", ErrUncorrectable, s)
	}

	loc := obs.Ev(obs.KindLocation, iter)
	loc.Target = obs.TargetH
	loc.Outcome = fmt.Sprintf("slab %d: %d rows, %d cols flagged", s, len(rows), len(colsF))
	loc.Device = dev.Name()
	r.journal(loc)

	apply := func(i, j int, delta float64) {
		sh.Last[s] = dev.Add(m, i, j, -delta, sh.Last[s])
		r.res.CorrectedH = append(r.res.CorrectedH,
			Injection{Row: i, Col: sl.Start + j, Delta: delta, Target: TargetH, Iter: iter})
		r.count("ft_corrections_total")
		corr := obs.Ev(obs.KindCorrection, iter)
		corr.Target = obs.TargetH
		corr.Row, corr.Col, corr.Value = i, sl.Start+j, obs.Float(delta)
		corr.Device = dev.Name()
		r.journal(corr)
	}

	switch {
	case len(rows) == 0 && len(colsF) == 0:
		// Threshold-level noise triggered detection but nothing locates:
		// treat as a transient false positive.
		return nil
	case len(rows) == 0:
		// The maintained checksum row itself was corrupted: the fresh
		// column sums are the truth.
		for _, j := range colsF {
			sh.Last[s] = dev.Set(m, n, j, freshHost.At(j, 1), sh.Last[s])
		}
		return nil
	case len(colsF) == 0:
		// The maintained checksum column was corrupted.
		for _, i := range rows {
			sh.Last[s] = dev.Set(m, i, cols, freshHost.At(i, 0), sh.Last[s])
		}
		return nil
	case len(rows) == 1:
		for _, j := range colsF {
			apply(rows[0], j, cRes[j])
		}
		return nil
	case len(colsF) == 1:
		for _, i := range rows {
			apply(i, colsF[0], rRes[i])
		}
		return nil
	default:
		// General case: match row residuals to column residuals by
		// value. A unique matching exists exactly when the error
		// positions do not form the rectangle pattern the paper
		// excludes.
		if len(rows) != len(colsF) {
			return fmt.Errorf("%w: slab %d flagged %d rows vs %d columns", ErrUncorrectable, s, len(rows), len(colsF))
		}
		usedCol := make([]bool, len(colsF))
		for _, i := range rows {
			match := -1
			for cj, j := range colsF {
				if usedCol[cj] {
					continue
				}
				if math.Abs(rRes[i]-cRes[j]) <= tol {
					if match >= 0 {
						return fmt.Errorf("%w: ambiguous residual match in slab %d", ErrUncorrectable, s)
					}
					match = cj
				}
			}
			if match < 0 {
				return fmt.Errorf("%w: unmatched row residual in slab %d", ErrUncorrectable, s)
			}
			usedCol[match] = true
			apply(i, colsF[match], rRes[i])
		}
		return nil
	}
}
