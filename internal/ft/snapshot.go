package ft

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"

	"repro/internal/gpu"
	"repro/internal/matrix"
	"repro/internal/obs"
)

// Process-level diskless checkpointing (Plank et al. [21] of the paper,
// surveyed in its §II): in addition to the per-iteration panel checkpoint
// that drives soft-error recovery, the reduction can periodically
// serialize its complete state to host memory. If the process (or the
// device) is lost mid-factorization — a fail-stop error rather than a
// silent one — a new run resumes from the last snapshot instead of
// starting over. Snapshots serialize with encoding/gob, so a caller may
// also ship them to a peer node's memory, which is exactly the diskless
// checkpointing setting of the original paper.

// Snapshot is a resumable factorization state.
type Snapshot struct {
	// N, NB identify the problem; Iter/Panel the completed progress.
	N, NB int
	Iter  int
	Panel int
	// DA is the extended device matrix (data + checksums) at the end of
	// iteration Iter; HostA/Tau the host-side packed progress; the Q
	// checksums ride along so protection survives the restart.
	DA      []float64
	HostA   []float64
	Tau     []float64
	QRowChk []float64
	QColChk []float64
	QCols   int
}

// Encode serializes the snapshot (gob).
func (s *Snapshot) Encode() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(s); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeSnapshot deserializes a snapshot produced by Encode.
func DecodeSnapshot(b []byte) (*Snapshot, error) {
	var s Snapshot
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&s); err != nil {
		return nil, err
	}
	return &s, nil
}

// snapshotHook captures the state every `every` completed iterations.
// It runs on the host timeline (the serialization cost is charged) and
// keeps only the most recent snapshot, as diskless checkpointing does.
type snapshotHook struct {
	every int
	last  *Snapshot
}

// CheckpointOptions extends Options with process-level snapshots.
// Snapshots are only available in Real mode (the state must exist).
type CheckpointOptions struct {
	Options
	// Every takes a snapshot after each `Every` completed blocked
	// iterations (≥1).
	Every int
}

// ReduceWithSnapshots runs the fault-tolerant reduction, returning the
// result and the last snapshot taken (nil if the run finished before the
// first snapshot point). The snapshot can later resume via Resume.
func ReduceWithSnapshots(a *matrix.Matrix, opt CheckpointOptions) (*Result, *Snapshot, error) {
	if opt.Every < 1 {
		return nil, nil, errors.New("ft: CheckpointOptions.Every must be ≥ 1")
	}
	if opt.Device == nil || opt.Device.Mode != gpu.Real {
		return nil, nil, errors.New("ft: snapshots require a Real-mode device")
	}
	hk := &snapshotHook{every: opt.Every}
	inner := opt.Options
	userHook := inner.Hook
	inner.Hook = &chainedHook{user: userHook, snap: hk}
	res, err := Reduce(a, inner)
	return res, hk.last, err
}

// chainedHook lets the snapshot observer coexist with a user fault hook.
type chainedHook struct {
	user Hook
	snap *snapshotHook
}

func (c *chainedHook) BeforeIteration(ctx *IterCtx) {
	// Snapshot first: the state observed is the end of iteration
	// ctx.Iter-1, before any new fault is injected by the user hook.
	if ctx.Iter > 0 && ctx.Iter%c.snap.every == 0 {
		c.snap.capture(ctx)
	}
	if c.user != nil {
		c.user.BeforeIteration(ctx)
	}
}

func (c *chainedHook) ConsumePendingH() int {
	if c.user != nil {
		return c.user.ConsumePendingH()
	}
	return 0
}

func (c *chainedHook) PendingQ() int {
	if c.user != nil {
		return c.user.PendingQ()
	}
	return 0
}

func (s *snapshotHook) capture(ctx *IterCtx) {
	n := ctx.N
	snap := &Snapshot{
		N: n, NB: ctx.NB, Iter: ctx.Iter, Panel: ctx.Panel,
		DA:    make([]float64, (n+1)*(n+1)),
		HostA: make([]float64, n*n),
		Tau:   make([]float64, max(n-1, 1)),
	}
	// The device matrix (with checksums) comes home as one D2H; its cost
	// is what the paper's §II attributes to checkpointing schemes.
	hostDA := matrix.FromColMajor(n+1, n+1, n+1, snap.DA)
	ctx.Dev.D2H(hostDA, ctx.DA, 0, 0)
	host := matrix.FromColMajor(n, n, n, snap.HostA)
	ctx.Dev.HostOp(ctx.Dev.Params.GemvHost(n, n), func() {
		host.CopyFrom(ctx.Host)
	})
	if r := ctx.reducer; r != nil {
		copy(snap.Tau, r.tau)
		if r.qprot != nil {
			snap.QRowChk = append([]float64(nil), r.qprot.rowChk...)
			snap.QColChk = append([]float64(nil), r.qprot.colChk...)
			snap.QCols = r.qprot.absorbedCols
		}
		ev := obs.Ev(obs.KindSnapshotSave, ctx.Iter)
		ev.Target = obs.TargetH
		r.journal(ev)
	}
	s.last = snap
}

// Resume continues a factorization from a snapshot on a fresh device,
// returning the completed result. The original input matrix is not
// needed — the snapshot is self-contained, as a diskless checkpoint
// must be.
func Resume(snap *Snapshot, opt Options) (*Result, error) {
	if opt.Device == nil || opt.Device.Mode != gpu.Real {
		return nil, errors.New("ft: Resume requires a Real-mode device")
	}
	if snap == nil {
		return nil, errors.New("ft: nil snapshot")
	}
	if opt.NB != 0 && opt.NB != snap.NB {
		return nil, fmt.Errorf("ft: snapshot block size %d differs from requested %d", snap.NB, opt.NB)
	}
	opt.NB = snap.NB
	host := matrix.FromColMajor(snap.N, snap.N, snap.N, snap.HostA)
	return reduceFrom(host, snap, opt)
}
