package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGemmFlops(t *testing.T) {
	if GemmFlops(2, 3, 4) != 48 {
		t.Fatalf("GemmFlops = %v", GemmFlops(2, 3, 4))
	}
	if GemvFlops(5, 6) != 60 {
		t.Fatalf("GemvFlops = %v", GemvFlops(5, 6))
	}
	if math.Abs(HessenbergFlops(100)-10.0/3.0*1e6) > 1 {
		t.Fatalf("HessenbergFlops = %v", HessenbergFlops(100))
	}
}

func TestGemmDeviceMonotonic(t *testing.T) {
	p := K40c()
	small := p.GemmDevice(100, 100, 32)
	large := p.GemmDevice(1000, 1000, 32)
	if large <= small {
		t.Fatalf("larger GEMM must cost more: %v vs %v", large, small)
	}
	// Efficiency should improve with size: GFLOPS(large) > GFLOPS(small).
	gs := GemmFlops(100, 100, 32) / small
	gl := GemmFlops(1000, 1000, 32) / large
	if gl <= gs {
		t.Fatalf("efficiency should improve with size: %v vs %v GFLOP/s", gl/1e9, gs/1e9)
	}
}

func TestGemmDeviceBelowPeak(t *testing.T) {
	p := K40c()
	d := p.GemmDevice(8000, 8000, 8000)
	rate := GemmFlops(8000, 8000, 8000) / d / 1e9
	if rate >= p.GPUGemmPeakGFLOPS {
		t.Fatalf("model exceeds peak: %v GFLOP/s", rate)
	}
	if rate < 0.5*p.GPUGemmPeakGFLOPS {
		t.Fatalf("huge GEMM should approach peak: %v GFLOP/s", rate)
	}
}

func TestGemvDeviceBandwidthBound(t *testing.T) {
	p := K40c()
	d := p.GemvDevice(4000, 4000) - p.KernelLaunchSec
	wantBytes := 8.0 * 4000 * 4000
	want := wantBytes / (p.GPUBandwidthGBps * 1e9)
	if math.Abs(d-want)/want > 1e-9 {
		t.Fatalf("GEMV time %v, want %v", d, want)
	}
}

func TestTransferIncludesLatency(t *testing.T) {
	p := K40c()
	if p.Transfer(0) != p.PCIeLatencySec {
		t.Fatal("zero-byte transfer should cost exactly the latency")
	}
	mb := p.Transfer(1 << 20)
	if mb <= p.PCIeLatencySec {
		t.Fatal("1MB transfer must cost more than latency")
	}
}

func TestHostCosts(t *testing.T) {
	p := K40c()
	if p.GemmHost(100, 100, 100) <= 0 || p.GemvHost(10, 10) <= 0 || p.VecHost(5) <= 0 {
		t.Fatal("host costs must be positive")
	}
	// Host GEMM rate equals the configured sustained rate.
	rate := GemmFlops(500, 500, 500) / p.GemmHost(500, 500, 500) / 1e9
	if math.Abs(rate-p.CPUGemmGFLOPS) > 1e-6 {
		t.Fatalf("host GEMM rate %v, want %v", rate, p.CPUGemmGFLOPS)
	}
}

func TestTimelineFIFO(t *testing.T) {
	tl := NewTimeline("stream0")
	e1 := tl.Schedule(1.0)
	e2 := tl.Schedule(2.0)
	if e1.At != 1.0 || e2.At != 3.0 {
		t.Fatalf("FIFO times %v %v", e1.At, e2.At)
	}
	if tl.Tail() != 3.0 || tl.Busy() != 3.0 {
		t.Fatalf("tail %v busy %v", tl.Tail(), tl.Busy())
	}
}

func TestTimelineDependencies(t *testing.T) {
	a := NewTimeline("a")
	b := NewTimeline("b")
	ea := a.Schedule(5.0)
	// b's op depends on a's: cannot start before t=5.
	eb := b.Schedule(1.0, ea)
	if eb.At != 6.0 {
		t.Fatalf("dependent op completed at %v, want 6", eb.At)
	}
	// Independent op on b starts after the previous b op (FIFO).
	eb2 := b.Schedule(1.0)
	if eb2.At != 7.0 {
		t.Fatalf("FIFO after dependency: %v, want 7", eb2.At)
	}
}

func TestTimelineOverlapModel(t *testing.T) {
	// Two independent lanes overlap: makespan is the max, not the sum.
	c := NewTimeline("compute")
	x := NewTimeline("copy")
	c.Schedule(3.0)
	x.Schedule(2.0)
	if Makespan(c, x) != 3.0 {
		t.Fatalf("makespan %v, want 3", Makespan(c, x))
	}
}

func TestAdvanceTo(t *testing.T) {
	h := NewTimeline("host")
	h.Schedule(1.0)
	h.AdvanceTo(10)
	if h.Tail() != 10 {
		t.Fatalf("AdvanceTo: %v", h.Tail())
	}
	h.AdvanceTo(5) // must not move backwards
	if h.Tail() != 10 {
		t.Fatalf("AdvanceTo moved backwards: %v", h.Tail())
	}
	// Busy time excludes waiting.
	if h.Busy() != 1.0 {
		t.Fatalf("busy %v, want 1", h.Busy())
	}
}

func TestReset(t *testing.T) {
	h := NewTimeline("host")
	h.Schedule(4)
	h.Reset()
	if h.Tail() != 0 || h.Busy() != 0 {
		t.Fatal("reset failed")
	}
}

// Property: scheduling never moves time backwards and durations accumulate.
func TestPropScheduleMonotonic(t *testing.T) {
	f := func(durs []float64) bool {
		tl := NewTimeline("p")
		prev := 0.0
		for _, d := range durs {
			if d < 0 || math.IsNaN(d) || math.IsInf(d, 0) {
				d = 0.5
			}
			d = math.Mod(d, 10)
			if d < 0 {
				d = -d
			}
			e := tl.Schedule(d)
			if e.At < prev {
				return false
			}
			prev = e.At
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
