package sim

// Discrete-event timelines for the hybrid execution: one host timeline and
// one timeline per device stream. The algorithms enqueue operations with a
// duration and optional event dependencies; the timelines compute start
// times under stream FIFO ordering, exactly like CUDA stream semantics,
// so that overlap (or its absence) shows up in the simulated makespan.

// Event marks the completion instant of an asynchronous operation.
type Event struct {
	// At is the simulated completion time in seconds.
	At float64
}

// Timeline is a FIFO execution lane (the host, or one device stream).
type Timeline struct {
	name string
	tail float64
	busy float64 // accumulated busy seconds, for utilization reporting
	ops  int64   // number of scheduled operations
}

// NewTimeline returns an empty timeline with the given display name.
func NewTimeline(name string) *Timeline {
	return &Timeline{name: name}
}

// Name returns the timeline's display name.
func (t *Timeline) Name() string { return t.name }

// Tail returns the completion time of the last scheduled operation.
func (t *Timeline) Tail() float64 { return t.tail }

// Busy returns the accumulated busy time.
func (t *Timeline) Busy() float64 { return t.busy }

// Ops returns the number of operations scheduled so far.
func (t *Timeline) Ops() int64 { return t.ops }

// Utilization returns the busy fraction of the given makespan, in [0, 1];
// zero when the makespan is zero.
func (t *Timeline) Utilization(makespan float64) float64 {
	if makespan <= 0 {
		return 0
	}
	return t.busy / makespan
}

// Schedule places an operation of the given duration on the timeline,
// starting no earlier than the timeline's tail and all dependencies.
// It returns the operation's completion event.
func (t *Timeline) Schedule(duration float64, deps ...Event) Event {
	start := t.tail
	for _, d := range deps {
		if d.At > start {
			start = d.At
		}
	}
	end := start + duration
	t.tail = end
	t.busy += duration
	t.ops++
	return Event{At: end}
}

// AdvanceTo moves the timeline's tail forward to at least instant;
// used when the host blocks on an event (synchronize).
func (t *Timeline) AdvanceTo(instant float64) {
	if instant > t.tail {
		t.tail = instant
	}
}

// Reset clears the timeline back to t = 0.
func (t *Timeline) Reset() {
	t.tail = 0
	t.busy = 0
	t.ops = 0
}

// Makespan returns the maximum tail across the given timelines — the
// simulated wall-clock of the whole run.
func Makespan(lanes ...*Timeline) float64 {
	m := 0.0
	for _, l := range lanes {
		if l.tail > m {
			m = l.tail
		}
	}
	return m
}
