// Package sim provides the analytic cost model and discrete-event
// timelines that stand in for the paper's hardware testbed (Table I:
// Intel Xeon E5-2670 + NVIDIA Tesla K40c over PCIe).
//
// The model charges each BLAS kernel, host computation, and host↔device
// transfer a duration derived from its operation count: GEMM-like kernels
// are compute-bound with a size-dependent efficiency, GEMV-like kernels
// and copies are bandwidth-bound, and every device kernel pays a launch
// latency. Absolute times are not the point — the paper's Figure 6 reports
// the *relative* overhead of the fault-tolerant algorithm and its trend
// with matrix size, which depend only on how operation counts translate
// into time, and that is what the model preserves.
package sim

// Params calibrates the cost model. The defaults (see K40c) approximate
// the paper's testbed from Table I.
type Params struct {
	// CPUGemmGFLOPS is the sustained host DGEMM rate (all cores).
	CPUGemmGFLOPS float64
	// CPUBandwidthGBps bounds host memory-bound (level-1/2) operations.
	CPUBandwidthGBps float64

	// GPUGemmPeakGFLOPS is the asymptotic device DGEMM rate.
	GPUGemmPeakGFLOPS float64
	// GPUGemmK0 and GPUGemmS0 shape the efficiency curve: a DGEMM with
	// inner dimension k and minimum outer dimension s runs at
	// peak · k/(k+K0) · s/(s+S0).
	GPUGemmK0 float64
	GPUGemmS0 float64
	// GPUBandwidthGBps bounds device memory-bound kernels (GEMV, copies
	// inside device memory).
	GPUBandwidthGBps float64
	// KernelLaunchSec is charged per device kernel.
	KernelLaunchSec float64

	// PCIeGBps and PCIeLatencySec model the host↔device link.
	PCIeGBps       float64
	PCIeLatencySec float64
}

// K40c returns parameters approximating the paper's testbed: a Tesla K40c
// (1.43 TFLOP/s peak DP, 288 GB/s GDDR5) attached over PCIe gen3 to a
// Sandy Bridge Xeon E5-2670 running MKL.
func K40c() Params {
	return Params{
		CPUGemmGFLOPS:     110,
		CPUBandwidthGBps:  35,
		GPUGemmPeakGFLOPS: 1430,
		GPUGemmK0:         48,
		GPUGemmS0:         384,
		GPUBandwidthGBps:  200, // sustained, of 288 peak
		KernelLaunchSec:   8e-6,
		PCIeGBps:          6,
		PCIeLatencySec:    12e-6,
	}
}

// GemmFlops returns the floating-point operation count of an m×n×k GEMM.
func GemmFlops(m, n, k int) float64 { return 2 * float64(m) * float64(n) * float64(k) }

// GemvFlops returns the operation count of an m×n GEMV.
func GemvFlops(m, n int) float64 { return 2 * float64(m) * float64(n) }

// HessenbergFlops returns the classical operation count of a Hessenberg
// reduction of order n, 10/3·n³.
func HessenbergFlops(n int) float64 { return 10.0 / 3.0 * float64(n) * float64(n) * float64(n) }

func minDim(a, b int) float64 {
	if a < b {
		return float64(a)
	}
	return float64(b)
}

// GemmDevice returns the device time for an m×n×k GEMM, including launch.
func (p Params) GemmDevice(m, n, k int) float64 {
	if m == 0 || n == 0 || k == 0 {
		return p.KernelLaunchSec
	}
	eff := p.GPUGemmPeakGFLOPS * (float64(k) / (float64(k) + p.GPUGemmK0)) *
		(minDim(m, n) / (minDim(m, n) + p.GPUGemmS0))
	// Never below the bandwidth bound: a GEMM must at least stream C.
	t := GemmFlops(m, n, k) / (eff * 1e9)
	if bw := p.deviceBytes(8 * float64(m) * float64(n)); t < bw {
		t = bw
	}
	return p.KernelLaunchSec + t
}

// TrmmDevice returns the device time for a triangular multiply of an m×n
// operand with a t×t triangle (half the flops of the corresponding GEMM).
func (p Params) TrmmDevice(m, n, t int) float64 {
	if m == 0 || n == 0 || t == 0 {
		return p.KernelLaunchSec
	}
	return p.KernelLaunchSec + GemmFlops(m, n, t)/2/(0.5*p.GPUGemmPeakGFLOPS*1e9)
}

// GemvDevice returns the device time for an m×n GEMV (bandwidth-bound).
func (p Params) GemvDevice(m, n int) float64 {
	return p.KernelLaunchSec + p.deviceBytes(8*float64(m)*float64(n))
}

// VecDevice returns the device time for a vector kernel touching n elements.
func (p Params) VecDevice(n int) float64 {
	return p.KernelLaunchSec + p.deviceBytes(8*2*float64(n))
}

func (p Params) deviceBytes(b float64) float64 {
	return b / (p.GPUBandwidthGBps * 1e9)
}

// GemmHost returns the host time for an m×n×k GEMM.
func (p Params) GemmHost(m, n, k int) float64 {
	return GemmFlops(m, n, k) / (p.CPUGemmGFLOPS * 1e9)
}

// GemvHost returns the host time for an m×n GEMV (bandwidth-bound).
func (p Params) GemvHost(m, n int) float64 {
	return 8 * float64(m) * float64(n) / (p.CPUBandwidthGBps * 1e9)
}

// VecHost returns the host time for level-1 work on n elements.
func (p Params) VecHost(n int) float64 {
	return 8 * 2 * float64(n) / (p.CPUBandwidthGBps * 1e9)
}

// Transfer returns the PCIe time to move b bytes in either direction.
func (p Params) Transfer(bytes int) float64 {
	return p.PCIeLatencySec + float64(bytes)/(p.PCIeGBps*1e9)
}
