package bench

import (
	"encoding/json"
	"os"
	"strings"
	"testing"

	"repro/internal/sim"
)

// TestBenchMultiGPUJSON regenerates BENCH_multigpu.json — the modeled
// device-scaling curve of the block-column-sharded trailing update at
// the acceptance size (N=2048, nb=16) — and enforces the scaling bar:
// the K=4 pool must cut the baseline's makespan by ≥2× versus K=1.
// (The bar was 2.5× before the lookahead schedule; lookahead hides the
// serial panel factorization that used to dominate K=1, so the K=1
// baseline got faster and the ratio compressed even though absolute
// makespans improved at every K.) Cost-only runs are deterministic, so
// the artifact is committed and only changes when the schedule or the
// cost model changes.
func TestBenchMultiGPUJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("N=2048 cost-only sweep: skipped in -short mode")
	}
	art, err := MultiGPU(2048, 16, []int{1, 2, 4}, sim.K40c())
	if err != nil {
		t.Fatal(err)
	}

	var sb strings.Builder
	MultiGPUReport(&sb, art)
	t.Log("\n" + sb.String())

	buf, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("../../BENCH_multigpu.json", append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}

	if len(art.Rows) != 3 || art.Rows[0].Devices != 1 {
		t.Fatalf("unexpected rows: %+v", art.Rows)
	}
	k4 := art.Rows[2]
	if k4.HybridSpeedup < 2.0 {
		t.Errorf("K=4 hybrid speedup %.2fx below the 2x bar (K=1 %.4fs, K=4 %.4fs)",
			k4.HybridSpeedup, art.Rows[0].HybridSimSeconds, k4.HybridSimSeconds)
	}
	if k4.FTSpeedup < 2.0 {
		t.Errorf("K=4 FT speedup %.2fx below the 2x bar", k4.FTSpeedup)
	}
	for _, r := range art.Rows {
		if r.FTSimSeconds <= r.HybridSimSeconds {
			t.Errorf("K=%d: FT makespan %.4fs not above hybrid %.4fs (protection is not free)",
				r.Devices, r.FTSimSeconds, r.HybridSimSeconds)
		}
	}
}
