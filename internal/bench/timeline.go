package bench

import (
	"fmt"
	"io"
	"os"

	"repro/internal/ft"
	"repro/internal/gpu"
	"repro/internal/matrix"
	"repro/internal/sim"
)

// Timeline runs one fault-tolerant reduction with execution tracing and
// summarizes lane occupancy; with a non-empty tracePath it also writes a
// Chrome trace-event JSON (open in chrome://tracing or Perfetto) — the
// visual counterpart of the paper's Figure 1/4 iteration diagrams.
func Timeline(w io.Writer, n, nb int, params sim.Params, tracePath string) {
	dev := gpu.New(params, gpu.CostOnly)
	dev.EnableTrace()
	if _, err := ft.Reduce(matrix.New(n, n), ft.Options{NB: nb, Device: dev}); err != nil {
		panic(err)
	}
	fmt.Fprintf(w, "Execution timeline of FT-Hess at N=%d, nb=%d (simulated lanes):\n", n, nb)
	dev.TraceSummary(w)
	fmt.Fprintf(w, "  makespan %.4fs\n", dev.Elapsed())
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			panic(err)
		}
		defer f.Close()
		if err := dev.WriteChromeTrace(f); err != nil {
			panic(err)
		}
		fmt.Fprintf(w, "  Chrome trace written to %s (%d spans)\n", tracePath, len(dev.Trace()))
	}
}
