package bench

import (
	"encoding/json"
	"os"
	"strings"
	"testing"

	"repro/internal/sim"
)

// TestBenchLookaheadJSON regenerates BENCH_lookahead.json — the modeled
// effect of the depth-1 lookahead schedule across N ∈ {512,1024,2048}
// and pool sizes K ∈ {1,2,4} — and enforces the acceptance bars: at the
// largest cell (N=2048, K=4) the FT reduction must clear 1.2× the
// pre-lookahead anchor of 81.7 modeled GFLOPS (the shared checksum-vector
// caching that landed with the schedule also sped up the lookahead-off
// cells, so the on/off ratio within this artifact understates the gain
// over the previous release), lookahead-on must still beat lookahead-off,
// and the hidden share of panel-factorization time must be material
// (>80%: every panel after the first runs under the previous trailing
// update). Cost-only runs are deterministic, so the artifact is committed
// and only changes with the schedule or the cost model.
func TestBenchLookaheadJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("cost-only grid up to N=2048: skipped in -short mode")
	}
	art, err := Lookahead([]int{512, 1024, 2048}, []int{1, 2, 4}, 32, sim.K40c())
	if err != nil {
		t.Fatal(err)
	}

	var sb strings.Builder
	if err := LookaheadReport(&sb, art, ""); err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + sb.String())

	buf, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("../../BENCH_lookahead.json", append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}

	if got := len(art.Cells); got != 18 {
		t.Fatalf("expected 18 cells (2 schedules × 3 sizes × 3 pools), got %d", got)
	}
	const preLookaheadGFLOPS = 81.7 // FT N=2048 K=4 nb=32 before this schedule landed
	for _, c := range art.Cells {
		if c.N == 2048 && c.Devices == 4 && c.Lookahead {
			if c.GFLOPS < 1.2*preLookaheadGFLOPS {
				t.Errorf("FT N=2048 K=4 with lookahead: %.1f GFLOPS below the 1.2x-over-%.1f bar",
					c.GFLOPS, preLookaheadGFLOPS)
			}
		}
	}
	if sp := art.Speedup(2048, 4); sp <= 1.0 {
		t.Errorf("lookahead on/off speedup %.2fx at N=2048 K=4 is not a win", sp)
	}
	for _, c := range art.Cells {
		if !c.Lookahead && c.PanelHiddenFrac != 0 {
			t.Errorf("N=%d K=%d: lookahead off but panel_hidden_frac=%.3f", c.N, c.Devices, c.PanelHiddenFrac)
		}
		if c.Lookahead && c.PanelHiddenFrac < 0.8 {
			t.Errorf("N=%d K=%d: panel_hidden_frac=%.3f below 0.8 — the schedule is not hiding panels",
				c.N, c.Devices, c.PanelHiddenFrac)
		}
	}
}
