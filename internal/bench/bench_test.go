package bench

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestTableI(t *testing.T) {
	var b bytes.Buffer
	TableI(&b, sim.K40c())
	out := b.String()
	for _, want := range []string{"Xeon E5-2670", "Tesla K40c", "PCIe", "Kernel launch"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table I missing %q:\n%s", want, out)
		}
	}
}

func TestFig2ShapesMatchPaper(t *testing.T) {
	var b bytes.Buffer
	res := Fig2(&b, 158)
	if len(res) != 3 {
		t.Fatalf("%d cases", len(res))
	}
	// Fig 2(b): Area 3 — exactly one polluted element.
	if res[0].Polluted != 1 {
		t.Fatalf("Area 3 polluted %d elements, want 1", res[0].Polluted)
	}
	// Fig 2(c): Area 1 — pollutes (part of) one row: few rows, many cols.
	if res[1].Rows > 3 || res[1].Cols < 10 {
		t.Fatalf("Area 1 footprint %d rows × %d cols, want row-wise spread", res[1].Rows, res[1].Cols)
	}
	// Fig 2(d): Area 2 — pollutes a large trailing block.
	if res[2].Polluted < 50*50 {
		t.Fatalf("Area 2 polluted only %d elements", res[2].Polluted)
	}
	if res[2].Polluted <= res[1].Polluted || res[1].Polluted <= res[0].Polluted {
		t.Fatalf("pollution ordering A3 < A1 < A2 violated: %d, %d, %d",
			res[0].Polluted, res[1].Polluted, res[2].Polluted)
	}
}

func TestFig6ShapesMatchPaper(t *testing.T) {
	var b bytes.Buffer
	sizes := []int{1022, 2046, 4030}
	panels := Fig6(&b, sizes, 32, sim.K40c())
	if len(panels) != 3 {
		t.Fatalf("%d panels", len(panels))
	}
	for _, p := range panels {
		if len(p.Rows) != len(sizes) {
			t.Fatalf("%v: %d rows", p.Area, len(p.Rows))
		}
		for i, r := range p.Rows {
			if r.BaseGFLOPS <= 0 || r.FTGFLOPS <= 0 {
				t.Fatalf("%v N=%d: bad GFLOPS", p.Area, r.N)
			}
			if r.FTGFLOPS > r.BaseGFLOPS {
				t.Fatalf("%v N=%d: FT faster than baseline", p.Area, r.N)
			}
			if r.OverheadNoFault < 0 || r.OverheadMax < r.OverheadMin {
				t.Fatalf("%v N=%d: bad overhead band [%v,%v]", p.Area, r.N, r.OverheadMin, r.OverheadMax)
			}
			if r.OverheadMin < r.OverheadNoFault-1e-9 {
				t.Fatalf("%v N=%d: fault overhead below no-fault overhead", p.Area, r.N)
			}
			// GFLOPS grow with N (the rising curves of Figure 6).
			if i > 0 && r.BaseGFLOPS <= p.Rows[i-1].BaseGFLOPS {
				t.Fatalf("%v: baseline GFLOPS not increasing at N=%d", p.Area, r.N)
			}
		}
		// Overhead decreases with N (the paper's headline trend).
		first, last := p.Rows[0], p.Rows[len(p.Rows)-1]
		if last.OverheadNoFault >= first.OverheadNoFault {
			t.Fatalf("%v: no-fault overhead not decreasing: %v → %v", p.Area, first.OverheadNoFault, last.OverheadNoFault)
		}
		if last.OverheadMax > 0.10 {
			t.Fatalf("%v: overhead at N=%d is %.1f%%, expected small", p.Area, last.N, 100*last.OverheadMax)
		}
	}
	// Area 3 recovery is the cheapest (flat, near the no-fault line).
	a2 := panels[1].Rows[len(sizes)-1]
	a3 := panels[2].Rows[len(sizes)-1]
	if a3.OverheadMax > a2.OverheadMax+1e-9 {
		t.Fatalf("Area 3 overhead (%v) should not exceed Area 2 (%v)", a3.OverheadMax, a2.OverheadMax)
	}
}

func TestTables23ShapesMatchPaper(t *testing.T) {
	var b bytes.Buffer
	rows := Tables23(&b, []int{126, 190}, 32)
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		magmaRes := r.Residual[0]
		for cell := 1; cell <= 6; cell++ {
			// Areas 1 and 2: residuals on the order of the fault-free run.
			if r.Residual[cell] > 100*magmaRes {
				t.Fatalf("N=%d %s: residual %v vs MAGMA %v", r.N, StabilityCells[cell], r.Residual[cell], magmaRes)
			}
		}
		for cell := 0; cell < 8; cell++ {
			if r.Residual[cell] > 1e-10 {
				t.Fatalf("N=%d %s: residual %v unacceptable", r.N, StabilityCells[cell], r.Residual[cell])
			}
			if r.Orthogonality[cell] > 1e-10 {
				t.Fatalf("N=%d %s: orthogonality %v unacceptable", r.N, StabilityCells[cell], r.Orthogonality[cell])
			}
		}
	}
	out := b.String()
	if !strings.Contains(out, "Table II") || !strings.Contains(out, "Table III") {
		t.Fatal("missing table headers")
	}
}

func TestAblationsRun(t *testing.T) {
	var b bytes.Buffer
	Ablations(&b, 1022, sim.K40c())
	out := b.String()
	for _, want := range []string{"overlap", "Q checksums", "detection", "nb="} {
		if !strings.Contains(out, want) {
			t.Fatalf("ablations missing %q:\n%s", want, out)
		}
	}
}

func TestTraceRuns(t *testing.T) {
	var b bytes.Buffer
	Trace(&b, 158, 32)
	if !strings.Contains(b.String(), "blocked iterations") {
		t.Fatalf("trace output:\n%s", b.String())
	}
}

func TestBreakdownRuns(t *testing.T) {
	var b bytes.Buffer
	Breakdown(&b, 1022, 32, sim.K40c())
	out := b.String()
	for _, want := range []string{"gemm", "gemv", "h2d", "d2h", "host", "FT extra",
		"Host BLAS substrate", "GFLOP/s"} {
		if !strings.Contains(out, want) {
			t.Fatalf("breakdown missing %q:\n%s", want, out)
		}
	}
}

func TestMultiErrorNoSilentMiscorrection(t *testing.T) {
	var b bytes.Buffer
	rows := MultiError(&b, 158, 32, 6, 9)
	if len(rows) != 5 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.MisCorrected != 0 {
			t.Fatalf("count=%d: %d silent mis-corrections", r.Count, r.MisCorrected)
		}
		if r.Recovered+r.Refused != r.Trials {
			t.Fatalf("count=%d: outcomes do not add up: %+v", r.Count, r)
		}
	}
	// Single errors always recover.
	if rows[0].Recovered != rows[0].Trials {
		t.Fatalf("single errors must always recover: %+v", rows[0])
	}
}

func TestTimelineRuns(t *testing.T) {
	var b bytes.Buffer
	Timeline(&b, 256, 32, sim.K40c(), "")
	out := b.String()
	for _, want := range []string{"gpu-compute", "gpu-copy", "makespan"} {
		if !strings.Contains(out, want) {
			t.Fatalf("timeline missing %q:\n%s", want, out)
		}
	}
}
