package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"repro/internal/blas"
	"repro/internal/ft"
	"repro/internal/gpu"
	"repro/internal/matrix"
	"repro/internal/obs"
	"repro/internal/sim"
)

// The fused-ABFT substrate study behind BENCH_blasft.json, in three parts:
//
//  1. Wall-clock overhead of DgemmFT over Dgemm on the host substrate, per
//     GEMM shape, min-of-reps (the acceptance bar is ≤8% at 512³ — the
//     checksum encode rides the packing and the verify reuses the
//     micro-kernel, so the overhead is a few percent, not the 2× of DMR).
//  2. The substrate's power-on self-test: planted faults in the packed
//     panels, the C tile, and the DMR'd Level-2 outputs must all be
//     detected (blas.FTSelfTest).
//  3. What the substrate buys the reduction: with Options.Substrate =
//     "fused", the multi-device FT schedule refreshes the panel slab's
//     checksum halo incrementally instead of re-encoding it, so the
//     modeled checksum_maintenance phase shrinks.

// BlasFTGemmCell is one GEMM shape of the overhead study. Seconds are the
// minimum over Reps interleaved plain/fused timings — min, not mean,
// because scheduler noise only ever adds time.
type BlasFTGemmCell struct {
	M int `json:"m"`
	N int `json:"n"`
	K int `json:"k"`
	// PlainSec / FusedSec are min-of-reps wall times for Dgemm / DgemmFT.
	PlainSec float64 `json:"plain_sec"`
	FusedSec float64 `json:"fused_sec"`
	// OverheadPct is 100·(FusedSec/PlainSec − 1); ModelOverheadPct is the
	// extra-flop model the simulated device charges (FTGemmOverheadFrac).
	OverheadPct      float64 `json:"overhead_pct"`
	ModelOverheadPct float64 `json:"model_overhead_pct"`
	// Checks is the row+column checksum comparisons one fused call runs.
	Checks int `json:"checks"`
	// GFLOPS of the fused call, for scale.
	FusedGFLOPS float64 `json:"fused_gflops"`
}

// BlasFTMaintenance compares the modeled checksum_maintenance phase of the
// multi-device FT reduction across substrates at one (N, NB, K) point.
type BlasFTMaintenance struct {
	N       int `json:"n"`
	NB      int `json:"nb"`
	Devices int `json:"devices"`
	// SweptSec / FusedSec are the modeled checksum_maintenance busy
	// seconds with the sweeps-only and fused substrates.
	SweptSec float64 `json:"swept_sec"`
	FusedSec float64 `json:"fused_sec"`
	// DropPct is 100·(1 − FusedSec/SweptSec).
	DropPct float64 `json:"drop_pct"`
}

// BlasFTRealRun records a small real-execution fused reduction proving
// the end-to-end wiring: every device BLAS call verified in-kernel, zero
// detections on a clean run.
type BlasFTRealRun struct {
	N       int `json:"n"`
	NB      int `json:"nb"`
	Devices int `json:"devices"`
	// SubstrateChecks / SubstrateDetections as the run reported them.
	SubstrateChecks     int `json:"substrate_checks"`
	SubstrateDetections int `json:"substrate_detections"`
}

// BlasFTArtifact is the committed BENCH_blasft.json.
type BlasFTArtifact struct {
	Procs int              `json:"procs"`
	Reps  int              `json:"reps"`
	Gemm  []BlasFTGemmCell `json:"gemm"`
	// SelfTest is the planted-fault detection record; Passed must be true.
	SelfTest    blas.FTSelfTestResult `json:"self_test"`
	Maintenance BlasFTMaintenance     `json:"maintenance"`
	RealRun     BlasFTRealRun         `json:"real_run"`
}

// BlasFTShapes is the GEMM shape grid: the acceptance point (512³) plus
// the two shapes the reduction actually leans on (rank-nb trailing
// update, tall-skinny panel product).
var BlasFTShapes = [][3]int{
	{512, 512, 512},
	{1024, 1024, 32},
	{2048, 32, 512},
}

// BlasFT runs the substrate study: wall overhead per shape (min over reps,
// interleaved), the planted-fault self-test, and the modeled
// checksum_maintenance comparison at (N=512, NB=16, K=2).
func BlasFT(shapes [][3]int, reps int, params sim.Params) (*BlasFTArtifact, error) {
	art := &BlasFTArtifact{Procs: runtime.GOMAXPROCS(0), Reps: reps}
	for _, s := range shapes {
		m, n, k := s[0], s[1], s[2]
		a := matrix.Random(m, k, 1)
		b := matrix.Random(k, n, 2)
		c := matrix.New(m, n)
		cell := BlasFTGemmCell{
			M: m, N: n, K: k,
			PlainSec:         1e300,
			FusedSec:         1e300,
			ModelOverheadPct: 100 * blas.FTGemmOverheadFrac(m, n, k),
		}
		for r := 0; r < reps; r++ {
			t0 := time.Now()
			blas.Dgemm(blas.NoTrans, blas.NoTrans, m, n, k, 1, a.Data, a.Stride, b.Data, b.Stride, 0, c.Data, c.Stride)
			if d := time.Since(t0).Seconds(); d < cell.PlainSec {
				cell.PlainSec = d
			}
			t0 = time.Now()
			rep, err := blas.DgemmFT(blas.NoTrans, blas.NoTrans, m, n, k, 1, a.Data, a.Stride, b.Data, b.Stride, 0, c.Data, c.Stride)
			if d := time.Since(t0).Seconds(); d < cell.FusedSec {
				cell.FusedSec = d
			}
			if err != nil {
				return nil, fmt.Errorf("DgemmFT %dx%dx%d: spurious detection: %w (max residual %.3g)", m, n, k, err, rep.MaxResidual)
			}
			cell.Checks = rep.Checks
		}
		cell.OverheadPct = 100 * (cell.FusedSec/cell.PlainSec - 1)
		cell.FusedGFLOPS = 2 * float64(m) * float64(n) * float64(k) / cell.FusedSec / 1e9
		art.Gemm = append(art.Gemm, cell)
	}

	art.SelfTest = blas.FTSelfTest()

	mnt := BlasFTMaintenance{N: 512, NB: 16, Devices: 2}
	for _, sub := range []string{ft.SubstrateSwept, ft.SubstrateFused} {
		a := matrix.New(mnt.N, mnt.N)
		devs := make([]*gpu.Device, mnt.Devices)
		for i := range devs {
			devs[i] = gpu.NewIndexed(params, gpu.CostOnly, i)
		}
		reg := obs.NewRegistry()
		if _, err := ft.Reduce(a, ft.Options{NB: mnt.NB, Devices: devs, Substrate: sub, Obs: reg}); err != nil {
			return nil, fmt.Errorf("ft N=%d K=%d substrate=%s: %w", mnt.N, mnt.Devices, sub, err)
		}
		sec := obs.SumBy(reg, "phase_seconds", "phase")["checksum_maintenance"]
		if sub == ft.SubstrateFused {
			mnt.FusedSec = sec
		} else {
			mnt.SweptSec = sec
		}
	}
	if mnt.SweptSec > 0 {
		mnt.DropPct = 100 * (1 - mnt.FusedSec/mnt.SweptSec)
	}
	art.Maintenance = mnt

	// Cost-only devices never execute kernels, so the check counters above
	// stay zero; a small real-execution run records the live wiring.
	rr := BlasFTRealRun{N: 192, NB: 16, Devices: 2}
	{
		a := matrix.Random(rr.N, rr.N, 3)
		devs := make([]*gpu.Device, rr.Devices)
		for i := range devs {
			devs[i] = gpu.NewIndexed(params, gpu.Real, i)
		}
		res, err := ft.Reduce(a, ft.Options{NB: rr.NB, Devices: devs, Substrate: ft.SubstrateFused})
		if err != nil {
			return nil, fmt.Errorf("real fused run N=%d K=%d: %w", rr.N, rr.Devices, err)
		}
		rr.SubstrateChecks = res.SubstrateChecks
		rr.SubstrateDetections = res.SubstrateDetections
	}
	art.RealRun = rr
	return art, nil
}

// BlasFTReport prints the study as a table and, when jsonPath is
// non-empty, writes the artifact there (wired into cmd/experiments).
func BlasFTReport(w io.Writer, art *BlasFTArtifact, jsonPath string) error {
	fmt.Fprintf(w, "Fused-ABFT BLAS substrate study (procs=%d, min of %d reps)\n", art.Procs, art.Reps)
	fmt.Fprintf(w, "%-16s %12s %12s %10s %10s %8s %9s\n",
		"gemm m×n×k", "plain", "fused", "overhead", "model", "checks", "GFLOP/s")
	for _, c := range art.Gemm {
		fmt.Fprintf(w, "%-16s %11.3fms %11.3fms %9.2f%% %9.2f%% %8d %9.1f\n",
			fmt.Sprintf("%dx%dx%d", c.M, c.N, c.K),
			1e3*c.PlainSec, 1e3*c.FusedSec, c.OverheadPct, c.ModelOverheadPct,
			c.Checks, c.FusedGFLOPS)
	}
	st := art.SelfTest
	fmt.Fprintf(w, "self-test: packed=%v tile=%v gemv=%v ger=%v (%d gemm checks, %d DMR checks) — passed=%v\n",
		st.GemmPacked, st.GemmTile, st.Gemv, st.Ger, st.GemmChecks, st.DMRChecks, st.Passed())
	m := art.Maintenance
	fmt.Fprintf(w, "checksum_maintenance, FT N=%d nb=%d K=%d (modeled): swept %.4fms, fused %.4fms — %.1f%% drop\n",
		m.N, m.NB, m.Devices, 1e3*m.SweptSec, 1e3*m.FusedSec, m.DropPct)
	rr := art.RealRun
	fmt.Fprintf(w, "real fused run, FT N=%d nb=%d K=%d: %d in-kernel checks, %d detections\n",
		rr.N, rr.NB, rr.Devices, rr.SubstrateChecks, rr.SubstrateDetections)
	if jsonPath == "" {
		return nil
	}
	buf, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(jsonPath, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "wrote %s\n", jsonPath)
	return nil
}
